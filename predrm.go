package predrm

import (
	"predrm/internal/core"
	"predrm/internal/critical"
	"predrm/internal/exact"
	"predrm/internal/experiments"
	"predrm/internal/gantt"
	"predrm/internal/milpform"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/sim"
	"predrm/internal/static"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// Platform modelling.
type (
	// Platform is a fixed set of heterogeneous resources.
	Platform = platform.Platform
	// Resource is one computation resource.
	Resource = platform.Resource
)

// NewPlatform builds a platform with the given CPU and GPU counts.
func NewPlatform(cpus, gpus int) *Platform { return platform.New(cpus, gpus) }

// DefaultPlatform returns the paper's 5-CPU + 1-GPU evaluation platform.
func DefaultPlatform() *Platform { return platform.Default() }

// Task and trace modelling.
type (
	// TaskType describes one task's per-resource WCET/energy and migration
	// overheads.
	TaskType = task.Type
	// TaskSet is a collection of task types over a platform.
	TaskSet = task.Set
	// TaskGenConfig parameterises the synthetic task-set generator.
	TaskGenConfig = task.GenConfig
	// Request is one trace entry.
	Request = trace.Request
	// Trace is a stream of requests.
	Trace = trace.Trace
	// TraceGenConfig parameterises the trace generator.
	TraceGenConfig = trace.GenConfig
	// Tightness selects the deadline group (VeryTight or LessTight).
	Tightness = trace.Tightness
)

// Deadline tightness groups (Sec 5.1).
const (
	VeryTight = trace.VeryTight
	LessTight = trace.LessTight
)

// NotExecutable marks a (task, resource) pair on which the task cannot
// run, in TaskType.WCET and TaskType.Energy.
const NotExecutable = task.NotExecutable

// DefaultTaskGenConfig returns the paper's Sec 5.1 task parameters.
func DefaultTaskGenConfig() TaskGenConfig { return task.DefaultGenConfig() }

// GenerateTaskSet builds a synthetic task set, deterministic in seed.
func GenerateTaskSet(p *Platform, cfg TaskGenConfig, seed uint64) (*TaskSet, error) {
	return task.Generate(p, cfg, rng.New(seed))
}

// MotivationalTaskSet returns the Sec 3 / Table 1 task set (with its 2-CPU
// + 1-GPU platform in TaskSet.Platform).
func MotivationalTaskSet() *TaskSet { return task.Motivational() }

// DefaultTraceGenConfig returns the paper's Sec 5.1 trace parameters for a
// tightness group.
func DefaultTraceGenConfig(t Tightness) TraceGenConfig { return trace.DefaultGenConfig(t) }

// GenerateTrace builds one request trace, deterministic in seed.
func GenerateTrace(s *TaskSet, cfg TraceGenConfig, seed uint64) (*Trace, error) {
	return trace.Generate(s, cfg, rng.New(seed))
}

// ReadTraceFile loads a JSON trace.
func ReadTraceFile(path string) (*Trace, error) { return trace.ReadFile(path) }

// Scheduling and solving.
type (
	// Job is a runtime task instance under management.
	Job = sched.Job
	// Problem is one resource-management decision instance.
	Problem = sched.Problem
	// MigrationPolicy selects when relocations are charged.
	MigrationPolicy = sched.MigrationPolicy
	// Decision is a solver's mapping answer.
	Decision = core.Decision
	// Solver maps all jobs of a problem at once.
	Solver = core.Solver
	// Heuristic is the paper's Algorithm 1.
	Heuristic = core.Heuristic
	// Optimal is the exact reference solver (the MILP optimum via branch
	// and bound).
	Optimal = exact.Optimal
	// MILPSolver solves activations through the paper's literal MILP
	// formulation on the built-in simplex / branch-and-bound stack.
	MILPSolver = milpform.Solver
)

// Migration charging policies.
const (
	ChargeStartedOnly = sched.ChargeStartedOnly
	ChargeAlways      = sched.ChargeAlways
)

// NewJob builds a fresh unmapped job.
func NewJob(id int, ty *TaskType, arrival, relDeadline float64) *Job {
	return sched.NewJob(id, ty, arrival, relDeadline)
}

// NewHeuristic returns the paper's Algorithm 1 solver. The solver reuses
// an internal scratch arena across Solve calls and is not safe for
// concurrent use; give each goroutine its own instance.
func NewHeuristic() *Heuristic { return &core.Heuristic{} }

// NewOptimal returns the exact reference solver. Like the heuristic it
// keeps per-solve scratch state and is not safe for concurrent use.
func NewOptimal() *Optimal { return &exact.Optimal{} }

// Admit runs the Sec 4.1 admission protocol (solve with the predicted job,
// fall back without it) on any solver.
func Admit(s Solver, p *Problem) (Decision, bool) { return core.Admit(s, p) }

// Prediction.
type (
	// Predictor forecasts the next request.
	Predictor = predict.Predictor
	// Prediction is one forecast.
	Prediction = predict.Prediction
	// Oracle is the accuracy-dialed evaluation predictor.
	Oracle = predict.Oracle
	// OracleConfig parameterises NewOracle.
	OracleConfig = predict.OracleConfig
	// Markov is the online type/interarrival predictor.
	Markov = predict.Markov
	// InterarrivalEstimator learns the arrival gap process.
	InterarrivalEstimator = predict.InterarrivalEstimator
)

// NewOracle builds the evaluation predictor over a trace.
func NewOracle(tr *Trace, cfg OracleConfig) (*Oracle, error) { return predict.NewOracle(tr, cfg) }

// NewMarkov builds the online predictor (nil estimator = EWMA 0.2).
func NewMarkov(numTypes int, est InterarrivalEstimator, overhead float64) (*Markov, error) {
	return predict.NewMarkov(numTypes, est, overhead)
}

// NewEWMA returns an exponentially-weighted interarrival estimator.
func NewEWMA(alpha float64) InterarrivalEstimator { return predict.NewEWMA(alpha) }

// NewTwoPhase returns the two-phase interarrival estimator.
func NewTwoPhase(alpha float64) InterarrivalEstimator { return predict.NewTwoPhase(alpha) }

// Simulation.
type (
	// SimConfig assembles one simulation.
	SimConfig = sim.Config
	// SimResult aggregates one trace's outcomes.
	SimResult = sim.Result
	// JobRecord is the per-request outcome.
	JobRecord = sim.JobRecord
)

// Simulate drives a trace through the platform and resource manager.
func Simulate(cfg SimConfig, tr *Trace) (*SimResult, error) { return sim.Run(cfg, tr) }

// Telemetry (see the README's Observability section). Attach a Tracer
// and/or a Registry to SimConfig to record the structured event stream and
// the decision metrics of a simulation; both are optional and cost nothing
// when absent.
type (
	// Tracer records structured simulation events (SimConfig.Tracer).
	Tracer = telemetry.Tracer
	// TracerOptions parameterises NewTracer (ring size, JSONL sink).
	TracerOptions = telemetry.TracerOptions
	// TraceEvent is one structured simulation event.
	TraceEvent = telemetry.Event
	// MetricsRegistry collects counters, gauges, and latency histograms
	// (SimConfig.Metrics).
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is an immutable registry snapshot (SimResult.Telemetry).
	MetricsSnapshot = telemetry.Snapshot
)

// NewTracer builds a structured event tracer.
func NewTracer(opts TracerOptions) *Tracer { return telemetry.NewTracer(opts) }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// MergeSnapshots combines metric snapshots across runs: counters and
// histogram buckets sum, gauges keep the last value and the overall max.
func MergeSnapshots(snaps ...*MetricsSnapshot) *MetricsSnapshot { return telemetry.Merge(snaps...) }

// StaticTable is the quasi-static baseline's design-time artefact.
type StaticTable = static.Table

// BuildStaticTable derives per-type resource preferences from a task set
// at "design time" (by ascending energy).
func BuildStaticTable(s *TaskSet) StaticTable { return static.BuildTable(s) }

// NewStaticRM returns the quasi-static baseline resource manager: it
// applies design-time placements and never remaps admitted tasks
// (the related-work family the paper contrasts itself against).
func NewStaticRM(table StaticTable) Solver { return static.New(table) }

// Safety-critical workload (Sec 2).
type (
	// CriticalTask is one design-time-allocated hard real-time task.
	CriticalTask = critical.Task
	// CriticalSet is the design-time critical workload; attach it to
	// SimConfig.Critical.
	CriticalSet = critical.Set
)

// Schedule visualisation.
type (
	// ExecSegment is one executed schedule piece (SimConfig.RecordExecution).
	ExecSegment = sim.ExecSegment
	// GanttChart renders executed schedules as text.
	GanttChart = gantt.Chart
)

// NewGantt builds a chart over recorded execution segments.
func NewGantt(p *Platform, segs []ExecSegment) (*GanttChart, error) {
	return gantt.New(p, segs)
}

// Experiments (the paper's evaluation).
type (
	// ExperimentConfig drives the evaluation harness.
	ExperimentConfig = experiments.Config
	// ExperimentProfile selects workload parameters.
	ExperimentProfile = experiments.Profile
	// ResultTable is a printable experiment result.
	ResultTable = experiments.Table
)

// DefaultExperimentConfig returns a laptop-scale evaluation configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// PaperProfile returns the paper's literal Sec 5.1 workload parameters.
func PaperProfile() ExperimentProfile { return experiments.PaperProfile() }

// CalibratedProfile returns the load-calibrated workload parameters
// (see DESIGN.md and EXPERIMENTS.md).
func CalibratedProfile() ExperimentProfile { return experiments.CalibratedProfile() }
