package predrm_test

import (
	"math"
	"testing"

	"predrm"
)

// TestFacadeEndToEnd exercises the public API exactly as the doc-comment
// quick start does.
func TestFacadeEndToEnd(t *testing.T) {
	plat := predrm.DefaultPlatform()
	if plat.Len() != 6 {
		t.Fatalf("platform size %d", plat.Len())
	}
	set, err := predrm.GenerateTaskSet(plat, predrm.DefaultTaskGenConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := predrm.DefaultTraceGenConfig(predrm.VeryTight)
	tcfg.Length = 120
	tcfg.InterarrivalMean = 2.5
	tcfg.InterarrivalStd = 0.8
	tr, err := predrm.GenerateTrace(set, tcfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := predrm.NewOracle(tr, predrm.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := predrm.Simulate(predrm.SimConfig{
		Platform:  plat,
		TaskSet:   set,
		Solver:    predrm.NewHeuristic(),
		Predictor: oracle,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 120 || res.DeadlineMisses != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

// TestFacadeSolvers exercises the three solver constructors on the
// motivational problem.
func TestFacadeSolvers(t *testing.T) {
	set := predrm.MotivationalTaskSet()
	j1 := predrm.NewJob(0, set.Type(0), 0, 8)
	jp := predrm.NewJob(1, set.Type(1), 1, 5)
	jp.Predicted = true
	p := &predrm.Problem{Platform: set.Platform, Time: 0, Jobs: []*predrm.Job{j1, jp}}

	for _, s := range []predrm.Solver{predrm.NewHeuristic(), predrm.NewOptimal(), &predrm.MILPSolver{}} {
		// The MILP formulation bars predicted tasks from the GPU; the
		// fallback admission still accepts τ1.
		d, ok := predrm.Admit(s, p)
		if !ok {
			t.Fatalf("%T rejected the motivational problem", s)
		}
		if d.Mapping[0] == -1 {
			t.Fatalf("%T left τ1 unmapped", s)
		}
	}

	// Heuristic and exact agree on the scenario (b) optimum.
	dh, _ := predrm.Admit(predrm.NewHeuristic(), p)
	do, _ := predrm.Admit(predrm.NewOptimal(), p)
	if math.Abs(dh.Energy-8.8) > 1e-9 || math.Abs(do.Energy-8.8) > 1e-9 {
		t.Fatalf("energies %v / %v, want 8.8", dh.Energy, do.Energy)
	}
}

// TestFacadePredictors exercises the online-predictor constructors.
func TestFacadePredictors(t *testing.T) {
	m, err := predrm.NewMarkov(10, predrm.NewTwoPhase(0.3), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.Overhead() != 0.05 {
		t.Fatalf("overhead %v", m.Overhead())
	}
	if _, err := predrm.NewMarkov(0, predrm.NewEWMA(0.2), 0); err == nil {
		t.Fatal("accepted zero types")
	}
}

// TestFacadeStaticAndCritical exercises the baseline RM, the critical
// workload, and the Gantt chart through the public API.
func TestFacadeStaticAndCritical(t *testing.T) {
	plat := predrm.DefaultPlatform()
	set, err := predrm.GenerateTaskSet(plat, predrm.DefaultTaskGenConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := predrm.DefaultTraceGenConfig(predrm.VeryTight)
	tcfg.Length = 80
	tcfg.InterarrivalMean = 2.5
	tcfg.InterarrivalStd = 0.8
	tr, err := predrm.GenerateTrace(set, tcfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	res, err := predrm.Simulate(predrm.SimConfig{
		Platform: plat,
		TaskSet:  set,
		Solver:   predrm.NewStaticRM(predrm.BuildStaticTable(set)),
		Critical: &predrm.CriticalSet{Tasks: []*predrm.CriticalTask{
			{ID: 0, Name: "ctrl", Resource: 0, Period: 15, WCET: 3, Energy: 1, Deadline: 10},
		}},
		RecordExecution: true,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 || res.CriticalMisses != 0 {
		t.Fatalf("misses: %d/%d", res.DeadlineMisses, res.CriticalMisses)
	}
	if res.CriticalJobs == 0 {
		t.Fatal("critical workload not served")
	}
	chart, err := predrm.NewGantt(plat, res.Execution)
	if err != nil {
		t.Fatal(err)
	}
	if u := chart.Utilization(); len(u) != plat.Len() {
		t.Fatalf("utilization size %d", len(u))
	}
}

// TestFacadeLookahead exercises the multi-step horizon through the public
// API.
func TestFacadeLookahead(t *testing.T) {
	plat := predrm.DefaultPlatform()
	set, err := predrm.GenerateTaskSet(plat, predrm.DefaultTaskGenConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := predrm.DefaultTraceGenConfig(predrm.VeryTight)
	tcfg.Length = 60
	tcfg.InterarrivalMean = 2.5
	tcfg.InterarrivalStd = 0.8
	tr, err := predrm.GenerateTrace(set, tcfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := predrm.NewOracle(tr, predrm.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := predrm.Simulate(predrm.SimConfig{
		Platform:  plat,
		TaskSet:   set,
		Solver:    predrm.NewOptimal(),
		Predictor: oracle,
		Lookahead: 3,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d misses", res.DeadlineMisses)
	}
}

// TestFacadeProfiles checks the experiment-facing re-exports.
func TestFacadeProfiles(t *testing.T) {
	if predrm.PaperProfile().InterarrivalMean != 1.2 {
		t.Fatal("paper profile wrong")
	}
	if predrm.CalibratedProfile().Name != "calibrated" {
		t.Fatal("calibrated profile wrong")
	}
	cfg := predrm.DefaultExperimentConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
