package predrm_test

import (
	"fmt"
	"log"

	"predrm"
)

// ExampleAdmit replays the paper's motivational example (Sec 3): with a
// prediction of τ2, the resource manager reserves the GPU and steers τ1
// to CPU1.
func ExampleAdmit() {
	set := predrm.MotivationalTaskSet()
	j1 := predrm.NewJob(0, set.Type(0), 0, 8)
	predicted := predrm.NewJob(1, set.Type(1), 1, 5)
	predicted.Predicted = true
	problem := &predrm.Problem{
		Platform: set.Platform,
		Time:     0,
		Jobs:     []*predrm.Job{j1, predicted},
	}
	decision, admitted := predrm.Admit(predrm.NewOptimal(), problem)
	fmt.Println("admitted:", admitted)
	fmt.Println("tau1 on:", set.Platform.Resource(decision.Mapping[0]).Name)
	fmt.Println("reserved for tau2:", set.Platform.Resource(decision.Mapping[1]).Name)
	fmt.Printf("planned energy: %.1f J\n", decision.Energy)
	// Output:
	// admitted: true
	// tau1 on: CPU1
	// reserved for tau2: GPU1
	// planned energy: 8.8 J
}

// ExampleSimulate runs a small workload end to end with the paper's
// heuristic and a perfect next-request oracle.
func ExampleSimulate() {
	plat := predrm.DefaultPlatform()
	set, err := predrm.GenerateTaskSet(plat, predrm.DefaultTaskGenConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := predrm.DefaultTraceGenConfig(predrm.VeryTight)
	cfg.Length = 100
	cfg.InterarrivalMean = 2.5
	cfg.InterarrivalStd = 0.8
	tr, err := predrm.GenerateTrace(set, cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := predrm.NewOracle(tr, predrm.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len()})
	if err != nil {
		log.Fatal(err)
	}
	res, err := predrm.Simulate(predrm.SimConfig{
		Platform:  plat,
		TaskSet:   set,
		Solver:    predrm.NewHeuristic(),
		Predictor: oracle,
	}, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("requests:", res.Requests)
	fmt.Println("deadline misses:", res.DeadlineMisses)
	fmt.Println("every accepted task met its deadline:", res.DeadlineMisses == 0)
	// Output:
	// requests: 100
	// deadline misses: 0
	// every accepted task met its deadline: true
}
