// Command tracetool analyses the structured JSONL event traces written by
// rmsim/experiments (-trace-out): it reconstructs what the resource
// manager actually did and renders, checks, or compares it.
//
// Usage:
//
//	tracetool report events.jsonl              # text report + gantt chart
//	tracetool chrome -o trace.json events.jsonl  # open in ui.perfetto.dev
//	tracetool csv events.jsonl                 # decision-level timeseries
//	tracetool check events.jsonl               # replay auditor (exit 1 on violations)
//	tracetool diff base.jsonl pred.jsonl       # deltas between two runs
//	tracetool explain 7 events.jsonl           # why was request 7 admitted/rejected?
//	tracetool explain all events.jsonl         # narrate every rejection
//	tracetool tail -f events.jsonl             # follow a growing trace live
//
// The platform's preemption kinds and resource names are not serialised
// into traces; -cpus/-gpus (default 5/1, the paper's platform) supply
// them. The auditor's GPU-preemption check and the report's gantt labels
// depend on getting these right.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"predrm/internal/platform"
	"predrm/internal/telemetry"
	"predrm/internal/traceview"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet("tracetool "+cmd, flag.ExitOnError)
	var (
		cpus    = fs.Int("cpus", 5, "preemptable resources in the emitting platform")
		gpus    = fs.Int("gpus", 1, "non-preemptable resources in the emitting platform")
		outPath = fs.String("o", "", "output file (default stdout)")
		ganttN  = fs.Int("gantt", 100, "gantt chart columns in report (0 disables)")
		strict  = fs.Bool("strict", false, "check: treat reader diagnostics as failures too")
		follow  = fs.Bool("f", false, "tail: keep following the file as it grows")
		poll    = fs.Duration("poll", traceview.DefaultPoll, "tail -f: poll interval for file growth")
		raw     = fs.Bool("raw", false, "tail: pass events through as raw JSONL instead of formatting")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *cpus < 0 || *gpus < 0 || *cpus+*gpus == 0 {
		fatalf("-cpus %d -gpus %d: need at least one resource", *cpus, *gpus)
	}
	plat := platform.New(*cpus, *gpus)

	paths := fs.Args()
	want := 1
	switch cmd {
	case "diff":
		want = 2
	case "explain":
		// explain takes <req-id|all> <trace>; the id is split off below.
		want = 2
	}
	if len(paths) != want {
		if cmd == "explain" {
			fatalf("explain takes <req-id|all> <trace.jsonl>, got %d argument(s)", len(paths))
		}
		fatalf("%s takes %d trace file(s), got %d", cmd, want, len(paths))
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
		out = f
	}

	switch cmd {
	case "report":
		d := read(paths[0])
		if err := traceview.WriteReport(out, traceview.BuildTimeline(d), plat, *ganttN); err != nil {
			fatalf("report: %v", err)
		}
	case "chrome":
		d := read(paths[0])
		names := make([]string, plat.Len())
		for i := range names {
			names[i] = plat.Resource(i).Name
		}
		if err := traceview.WriteChromeTrace(out, traceview.BuildTimeline(d), names); err != nil {
			fatalf("chrome: %v", err)
		}
	case "csv":
		d := read(paths[0])
		if err := traceview.WriteCSV(out, d); err != nil {
			fatalf("csv: %v", err)
		}
	case "check":
		d := read(paths[0])
		for _, diag := range d.Diags {
			fmt.Fprintf(os.Stderr, "tracetool: diagnostic: %s\n", diag)
		}
		violations := traceview.Audit(d, traceview.AuditOptions{Platform: plat})
		for _, v := range violations {
			fmt.Fprintf(out, "VIOLATION %s\n", v)
		}
		switch {
		case len(violations) > 0:
			fatalf("check: %s: %d invariant violation(s)", paths[0], len(violations))
		case *strict && len(d.Diags) > 0:
			fatalf("check: %s: %d diagnostic(s) under -strict", paths[0], len(d.Diags))
		}
		fmt.Fprintf(out, "ok: %d events, %d requests audited, 0 violations\n",
			len(d.Events), len(traceview.BuildTimeline(d).Requests))
	case "diff":
		a := traceview.BuildTimeline(read(paths[0])).Summarize()
		b := traceview.BuildTimeline(read(paths[1])).Summarize()
		if err := traceview.WriteDiff(out, label(paths[0]), a, label(paths[1]), b); err != nil {
			fatalf("diff: %v", err)
		}
	case "explain":
		tl := traceview.BuildTimeline(read(paths[1]))
		var reqs []int
		if paths[0] == "all" {
			reqs = tl.RejectedRequests()
			if len(reqs) == 0 {
				fmt.Fprintln(out, "no rejected requests in the trace")
				return
			}
		} else {
			req, err := strconv.Atoi(paths[0])
			if err != nil {
				fatalf("explain: request id %q is not a number (or \"all\")", paths[0])
			}
			reqs = []int{req}
		}
		for i, req := range reqs {
			if i > 0 {
				fmt.Fprintln(out)
			}
			x, err := traceview.Explain(tl, req)
			if err != nil {
				fatalf("explain: %v", err)
			}
			if err := traceview.WriteExplanation(out, x); err != nil {
				fatalf("explain: %v", err)
			}
		}
	case "tail":
		if err := tail(out, paths[0], *follow, *poll, *raw); err != nil {
			fatalf("tail: %v", err)
		}
	default:
		usage()
	}
}

// tail streams the events of a (possibly still growing) trace file,
// validating incrementally: diagnostics go to stderr as they are found,
// events to out as they complete. With follow set it never returns on its
// own — interrupt it like tail -f.
func tail(out io.Writer, path string, follow bool, poll time.Duration, raw bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t := traceview.NewTailer(f)
	t.Follow = follow
	t.Poll = poll
	t.OnDiag = func(d traceview.Diagnostic) {
		fmt.Fprintf(os.Stderr, "tracetool: diagnostic: %s\n", d)
	}
	for {
		e, err := t.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if raw {
			buf, err := json.Marshal(e)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s\n", buf)
		} else {
			fmt.Fprintln(out, formatEvent(e))
		}
	}
}

// formatEvent renders one event as a compact fixed-layout line.
func formatEvent(e telemetry.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8d  t=%-12.4f %-24s", e.Seq, e.T, e.Type)
	if e.Req >= 0 {
		fmt.Fprintf(&b, " req=%-4d", e.Req)
	}
	if e.Task >= 0 {
		fmt.Fprintf(&b, " task=%-4d", e.Task)
	}
	if e.Res >= 0 {
		fmt.Fprintf(&b, " res=%d", e.Res)
	}
	if e.Value != 0 {
		fmt.Fprintf(&b, " value=%.4g", e.Value)
	}
	if e.Reason != "" {
		fmt.Fprintf(&b, " reason=%s", e.Reason)
	}
	return b.String()
}

// read decodes one trace file, failing hard on I/O errors only (schema
// problems surface as diagnostics downstream).
func read(path string) *traceview.Decoded {
	d, err := traceview.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	return d
}

// label shortens a path for diff column headers.
func label(path string) string {
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	if len(base) > 16 {
		base = base[:16]
	}
	return base
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: tracetool <command> [flags] <trace.jsonl> [trace2.jsonl]

commands:
  report   text summary + reconstructed gantt chart
  chrome   Chrome trace-event JSON (Perfetto / chrome://tracing)
  csv      decision-level timeseries
  check    replay auditor: verify RM invariants from the trace alone
  diff     compare two traces (e.g. predictive vs. baseline, same seed)
  explain  narrate one request's admission decision from its provenance
           record ("explain all" narrates every rejection); record the
           trace with provenance on (rmsim -provenance) for full detail
  tail     stream a trace file's events; -f follows it as it grows

flags (before the trace path):
  -cpus N, -gpus N   emitting platform shape (default 5/1)
  -o FILE            write output to FILE instead of stdout
  -gantt N           report chart width in columns (0 disables)
  -strict            check fails on reader diagnostics too
  -f                 tail: follow the file as it grows (like tail -f)
  -poll D            tail -f: growth poll interval (default 200ms)
  -raw               tail: raw JSONL pass-through instead of formatting
`)
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracetool: "+format+"\n", args...)
	os.Exit(1)
}
