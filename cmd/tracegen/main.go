// Command tracegen generates synthetic workload traces following the
// paper's Sec 5.1 methodology and writes them as JSON files — or, with
// -fire, replays a workload live against an rmserve instance as a load
// generator.
//
// Usage:
//
//	tracegen -out traces/ -count 10 -len 500 -group VT -seed 1
//	tracegen -out testdata/scale -count 1 -platform 64c8g -rate 2 -len 2000 -seed 42
//	tracegen -fire http://localhost:8080 -len 200 -seed 1 -fire-speed 50
//	tracegen -fire http://localhost:8080 -replay traces/trace-VT-000.json
//
// In fire mode each request is POSTed to /v1/requests when its arrival
// comes up on the replay clock (trace time divided by -fire-speed), and
// the synchronous admission decisions are tallied. -replay loads a
// recorded trace (serve rmserve the matching taskset.json so the type
// universe agrees); without it, one trace is generated in memory from
// the usual generator flags — the same workload identity either way, so
// a simulated run and a live serving run are directly comparable.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/task"
	"predrm/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		count    = flag.Int("count", 10, "number of traces")
		length   = flag.Int("len", 500, "requests per trace")
		group    = flag.String("group", "VT", "deadline group: VT or LT")
		seed     = flag.Uint64("seed", 1, "generator seed")
		meanIA   = flag.Float64("interarrival", 1.2, "mean interarrival time")
		stdIA    = flag.Float64("interarrival-std", 0.4, "interarrival std deviation")
		rate     = flag.Float64("rate", 0, "arrival rate in requests per time unit; a scale-friendly alternative to -interarrival (sets mean 1/rate, std 1/(3*rate))")
		types    = flag.Int("types", 0, "task types in the generated set (0: sized to the platform, max(100, 2 per resource))")
		platSpec = flag.String("platform", "5c1g", "platform spec like 5c1g or 112c16g (pool counts per kind)")

		fireURL   = flag.String("fire", "", "replay the workload live against this rmserve base URL instead of writing files")
		replay    = flag.String("replay", "", "trace JSON file to fire (requires -fire; empty: generate one trace in memory)")
		fireSpeed = flag.Float64("fire-speed", 1, "replay compression for -fire: trace time units per real second")
		verbose   = flag.Bool("v", false, "print each decision in fire mode")
	)
	flag.Parse()
	if *fireURL == "" && (*replay != "" || flagWasSet("fire-speed") || *verbose) {
		fatalf("-replay, -fire-speed and -v only apply with -fire")
	}
	if *fireSpeed <= 0 {
		fatalf("-fire-speed %g must be positive", *fireSpeed)
	}
	if *fireURL != "" && *replay != "" {
		tr, err := trace.ReadFile(*replay)
		if err != nil {
			fatalf("load trace: %v", err)
		}
		fire(*fireURL, tr, *fireSpeed, *verbose)
		return
	}
	if *rate != 0 {
		if flagWasSet("interarrival") || flagWasSet("interarrival-std") {
			fatalf("-rate and -interarrival/-interarrival-std are two spellings of the same knob; give one")
		}
		if *rate < 0 {
			fatalf("-rate %g must be positive", *rate)
		}
		*meanIA = 1 / *rate
		*stdIA = *meanIA / 3
	}
	plat, err := platform.Parse(*platSpec)
	if err != nil {
		fatalf("platform: %v", err)
	}
	if *types == 0 {
		// Size the type mix to the platform: a 512-resource machine needs a
		// wider mix than the paper's 100 types to load every pool.
		*types = 2 * plat.Len()
		if *types < 100 {
			*types = 100
		}
	}
	validateFlags(*count, *length, *types, *meanIA, *stdIA)

	var tight trace.Tightness
	switch *group {
	case "VT", "vt":
		tight = trace.VeryTight
	case "LT", "lt":
		tight = trace.LessTight
	default:
		fatalf("unknown group %q (want VT or LT)", *group)
	}

	root := rng.New(*seed)
	tcfg := task.DefaultGenConfig()
	tcfg.NumTypes = *types
	set, err := task.Generate(plat, tcfg, root.Split())
	if err != nil {
		fatalf("generate task set: %v", err)
	}

	gcfg := trace.GenConfig{
		Length:           *length,
		InterarrivalMean: *meanIA,
		InterarrivalStd:  *stdIA,
		Tightness:        tight,
	}
	if *fireURL != "" {
		tr, err := trace.Generate(set, gcfg, root.Split())
		if err != nil {
			fatalf("generate trace: %v", err)
		}
		fire(*fireURL, tr, *fireSpeed, *verbose)
		return
	}
	traces, err := trace.GenerateGroup(set, gcfg, *count, root.Split())
	if err != nil {
		fatalf("generate traces: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("create output dir: %v", err)
	}
	setPath := filepath.Join(*out, "taskset.json")
	if err := set.WriteFile(setPath); err != nil {
		fatalf("write task set: %v", err)
	}
	fmt.Printf("%s  (%d types on %s)\n", setPath, set.Len(), plat)
	for i, tr := range traces {
		path := filepath.Join(*out, fmt.Sprintf("trace-%s-%03d.json", tight, i))
		if err := tr.WriteFile(path); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fmt.Printf("%s  (%d requests, mean interarrival %.3f)\n", path, tr.Len(), tr.MeanInterarrival())
	}
}

// validateFlags rejects out-of-range generator parameters up front with
// actionable messages instead of failing inside the generators.
func validateFlags(count, length, types int, meanIA, stdIA float64) {
	switch {
	case count <= 0:
		fatalf("-count %d must be positive", count)
	case length <= 0:
		fatalf("-len %d must be positive", length)
	case types <= 0:
		fatalf("-types %d must be positive", types)
	case meanIA <= 0:
		fatalf("-interarrival %g must be positive", meanIA)
	case stdIA < 0:
		fatalf("-interarrival-std %g must be non-negative", stdIA)
	}
}

// flagWasSet reports whether the named flag was given explicitly on the
// command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
