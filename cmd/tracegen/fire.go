package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"predrm/internal/trace"
)

// decision mirrors the server's DecisionRecord fields the tally needs
// (internal/serve's full record carries more).
type decision struct {
	ID       int     `json:"id"`
	Accepted bool    `json:"accepted"`
	Resource int     `json:"resource"`
	Reason   string  `json:"reason"`
	Time     float64 `json:"time"`
}

// fire replays a trace live against an rmserve instance: each request is
// POSTed to /v1/requests when its arrival time comes up on the replay
// clock (trace time scaled by speed), and the synchronous decisions are
// tallied. Ctrl-C stops the replay cleanly after the in-flight POST.
//
// The trace is either loaded from -replay or generated in memory with
// the same flags the file-writing mode uses — so a recorded simulation
// workload and a live serving run can share one workload identity.
func fire(url string, tr *trace.Trace, speed float64, verbose bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &http.Client{}
	start := time.Now()
	accepted, rejected, failed := 0, 0, 0
	reasons := map[string]int{}
	for i, req := range tr.Requests {
		due := time.Duration(req.Arrival / speed * float64(time.Second))
		if wait := due - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				fmt.Fprintf(os.Stderr, "tracegen: interrupted after %d/%d requests\n", i, len(tr.Requests))
				summarize(accepted, rejected, failed, reasons)
				return
			}
		}
		body, _ := json.Marshal(map[string]any{"type": req.Type, "deadline": req.Deadline})
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/requests", bytes.NewReader(body))
		if err != nil {
			fatalf("fire: %v", err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hreq)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "tracegen: interrupted after %d/%d requests\n", i, len(tr.Requests))
				summarize(accepted, rejected, failed, reasons)
				return
			}
			failed++
			fmt.Fprintf(os.Stderr, "tracegen: request %d: %v\n", i, err)
			continue
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			failed++
			fmt.Fprintf(os.Stderr, "tracegen: request %d: status %d: %s\n", i, resp.StatusCode, bytes.TrimSpace(rb))
			continue
		}
		var d decision
		if err := json.Unmarshal(rb, &d); err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "tracegen: request %d: bad decision: %v\n", i, err)
			continue
		}
		if d.Accepted {
			accepted++
		} else {
			rejected++
		}
		reasons[d.Reason]++
		if verbose {
			status := "rejected"
			if d.Accepted {
				status = fmt.Sprintf("accepted on res %d", d.Resource)
			}
			fmt.Printf("req %3d type %3d t %9.3f  %s (%s)\n", d.ID, req.Type, d.Time, status, d.Reason)
		}
	}
	summarize(accepted, rejected, failed, reasons)
}

func summarize(accepted, rejected, failed int, reasons map[string]int) {
	total := accepted + rejected
	fmt.Printf("fired:            %d decisions (%d failed sends)\n", total, failed)
	if total == 0 {
		return
	}
	fmt.Printf("accepted:         %d\n", accepted)
	fmt.Printf("rejected:         %d (%.2f%%)\n", rejected, 100*float64(rejected)/float64(total))
	names := make([]string, 0, len(reasons))
	for reason := range reasons {
		names = append(names, reason)
	}
	sort.Strings(names)
	for _, reason := range names {
		fmt.Printf("reason %-20s %d\n", reason, reasons[reason])
	}
}
