package main

import (
	"regexp"
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func TestParseBench(t *testing.T) {
	b, ok := parseBench("predrm/internal/exact",
		"BenchmarkHeuristicSolve-8   	 2203842	       542.4 ns/op	      25 B/op	       1 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if b.Name != "HeuristicSolve" || b.Pkg != "predrm/internal/exact" {
		t.Fatalf("parsed %+v", b)
	}
	if b.NsPerOp != 542.4 || *b.BytesPerOp != 25 || *b.AllocsPerOp != 1 {
		t.Fatalf("parsed metrics %+v", b)
	}
	if _, ok := parseBench("p", "ok  	predrm	0.1s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if b, ok := parseBench("p", "BenchmarkResourceFeasible/preemptable-future-8 	 100 	 358.2 ns/op"); !ok || b.Name != "ResourceFeasible/preemptable-future" {
		t.Fatalf("sub-benchmark parsed as %+v ok=%v", b, ok)
	}
}

func TestCompareGate(t *testing.T) {
	hot := regexp.MustCompile(defaultHot)
	base := []Benchmark{
		{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 500, AllocsPerOp: i64(1)},
		{Pkg: "p", Name: "ResourceFeasible/preemptable-allready", NsPerOp: 70, AllocsPerOp: i64(0)},
		{Pkg: "p", Name: "Fig2a", NsPerOp: 1000, AllocsPerOp: i64(9)},
	}

	t.Run("within-budget", func(t *testing.T) {
		cur := []Benchmark{
			{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 560, AllocsPerOp: i64(1)}, // +12% < +15%
			{Pkg: "p", Name: "ResourceFeasible/preemptable-allready", NsPerOp: 69, AllocsPerOp: i64(0)},
		}
		regs, compared, fresh, missing := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 2 || len(fresh) != 0 || len(missing) != 0 {
			t.Fatalf("regs=%v compared=%d fresh=%v missing=%v", regs, compared, fresh, missing)
		}
	})

	t.Run("ns-regression", func(t *testing.T) {
		cur := []Benchmark{{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 600, AllocsPerOp: i64(1)}} // +20%
		regs, _, _, _ := compare(base, cur, hot, 0.15)
		if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
			t.Fatalf("regs=%v", regs)
		}
	})

	t.Run("alloc-regression", func(t *testing.T) {
		cur := []Benchmark{{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 500, AllocsPerOp: i64(2)}}
		regs, _, _, _ := compare(base, cur, hot, 0.15)
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
			t.Fatalf("regs=%v", regs)
		}
	})

	t.Run("cold-benchmarks-ignored", func(t *testing.T) {
		cur := []Benchmark{
			{Pkg: "p", Name: "Fig2a", NsPerOp: 5000, AllocsPerOp: i64(90)}, // not hot
			{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 500, AllocsPerOp: i64(1)},
			{Pkg: "p", Name: "ResourceFeasible/preemptable-allready", NsPerOp: 69, AllocsPerOp: i64(0)},
		}
		regs, compared, fresh, missing := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 2 || len(fresh) != 0 || len(missing) != 0 {
			t.Fatalf("regs=%v compared=%d fresh=%v missing=%v", regs, compared, fresh, missing)
		}
	})

	t.Run("baseline-only-hot-benchmarks-reported-missing", func(t *testing.T) {
		// A hot benchmark in the baseline but absent from the run must not
		// regress the gate (a package-subset run legitimately skips some),
		// but it must be surfaced so a silently dropped or renamed hot
		// benchmark does not evade the gate forever. Cold baseline-only
		// benchmarks (Fig2a) stay out of the missing list entirely.
		cur := []Benchmark{{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 500, AllocsPerOp: i64(1)}}
		regs, compared, fresh, missing := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 1 || len(fresh) != 0 {
			t.Fatalf("regs=%v compared=%d fresh=%v", regs, compared, fresh)
		}
		if len(missing) != 1 || missing[0] != "p.ResourceFeasible/preemptable-allready" {
			t.Fatalf("missing=%v", missing)
		}
	})

	t.Run("new-hot-benchmark-passes", func(t *testing.T) {
		// A hot benchmark absent from the baseline — e.g. a freshly added
		// OptimalSolveParallel case — must be reported as new, not gated,
		// even when it would trivially "regress" against nothing.
		cur := []Benchmark{{Pkg: "p", Name: "OptimalSolveParallel/workers=1", NsPerOp: 1e9, AllocsPerOp: i64(99)}}
		regs, compared, fresh, _ := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 0 {
			t.Fatalf("regs=%v compared=%d", regs, compared)
		}
		if len(fresh) != 1 || fresh[0] != "p.OptimalSolveParallel/workers=1" {
			t.Fatalf("fresh=%v", fresh)
		}
	})

	t.Run("multi-worker-parallel-not-gated", func(t *testing.T) {
		// Multi-worker timings are goroutine-scheduling noise on small
		// machines; only workers=1 is in the hot set.
		cur := []Benchmark{{Pkg: "p", Name: "OptimalSolveParallel/workers=4", NsPerOp: 1e9, AllocsPerOp: i64(99)}}
		regs, compared, fresh, _ := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 0 || len(fresh) != 0 {
			t.Fatalf("regs=%v compared=%d fresh=%v", regs, compared, fresh)
		}
	})

	t.Run("missing-benchmem-tolerated", func(t *testing.T) {
		cur := []Benchmark{{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 510}}
		regs, compared, _, _ := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 1 {
			t.Fatalf("regs=%v compared=%d", regs, compared)
		}
	})

	t.Run("warmstart-benchmarks-are-hot", func(t *testing.T) {
		// The repair/warm-start benchmarks gate the delta-solve fast path;
		// they must be inside the default hot set including sub-benchmarks.
		for _, name := range []string{
			"HeuristicRepair/repair", "HeuristicRepair", "OptimalWarmStart/warm",
		} {
			if !hot.MatchString(name) {
				t.Fatalf("%s not matched by defaultHot", name)
			}
		}
	})
}
