package main

import (
	"regexp"
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func TestParseBench(t *testing.T) {
	b, ok := parseBench("predrm/internal/exact",
		"BenchmarkHeuristicSolve-8   	 2203842	       542.4 ns/op	      25 B/op	       1 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if b.Name != "HeuristicSolve" || b.Pkg != "predrm/internal/exact" {
		t.Fatalf("parsed %+v", b)
	}
	if b.NsPerOp != 542.4 || *b.BytesPerOp != 25 || *b.AllocsPerOp != 1 {
		t.Fatalf("parsed metrics %+v", b)
	}
	if _, ok := parseBench("p", "ok  	predrm	0.1s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if b, ok := parseBench("p", "BenchmarkResourceFeasible/preemptable-future-8 	 100 	 358.2 ns/op"); !ok || b.Name != "ResourceFeasible/preemptable-future" {
		t.Fatalf("sub-benchmark parsed as %+v ok=%v", b, ok)
	}
}

func TestCompareGate(t *testing.T) {
	hot := regexp.MustCompile(defaultHot)
	base := []Benchmark{
		{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 500, AllocsPerOp: i64(1)},
		{Pkg: "p", Name: "ResourceFeasible/preemptable-allready", NsPerOp: 70, AllocsPerOp: i64(0)},
		{Pkg: "p", Name: "Fig2a", NsPerOp: 1000, AllocsPerOp: i64(9)},
	}

	t.Run("within-budget", func(t *testing.T) {
		cur := []Benchmark{
			{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 560, AllocsPerOp: i64(1)}, // +12% < +15%
			{Pkg: "p", Name: "ResourceFeasible/preemptable-allready", NsPerOp: 69, AllocsPerOp: i64(0)},
		}
		regs, compared := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 2 {
			t.Fatalf("regs=%v compared=%d", regs, compared)
		}
	})

	t.Run("ns-regression", func(t *testing.T) {
		cur := []Benchmark{{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 600, AllocsPerOp: i64(1)}} // +20%
		regs, _ := compare(base, cur, hot, 0.15)
		if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
			t.Fatalf("regs=%v", regs)
		}
	})

	t.Run("alloc-regression", func(t *testing.T) {
		cur := []Benchmark{{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 500, AllocsPerOp: i64(2)}}
		regs, _ := compare(base, cur, hot, 0.15)
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
			t.Fatalf("regs=%v", regs)
		}
	})

	t.Run("cold-benchmarks-ignored", func(t *testing.T) {
		cur := []Benchmark{
			{Pkg: "p", Name: "Fig2a", NsPerOp: 5000, AllocsPerOp: i64(90)}, // not hot
			{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 500, AllocsPerOp: i64(1)},
		}
		regs, compared := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 1 {
			t.Fatalf("regs=%v compared=%d", regs, compared)
		}
	})

	t.Run("one-sided-benchmarks-skipped", func(t *testing.T) {
		cur := []Benchmark{{Pkg: "p", Name: "SimulateEDF/new-case", NsPerOp: 1, AllocsPerOp: i64(99)}}
		regs, compared := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 0 {
			t.Fatalf("regs=%v compared=%d", regs, compared)
		}
	})

	t.Run("missing-benchmem-tolerated", func(t *testing.T) {
		cur := []Benchmark{{Pkg: "p", Name: "HeuristicSolve", NsPerOp: 510}}
		regs, compared := compare(base, cur, hot, 0.15)
		if len(regs) != 0 || compared != 1 {
			t.Fatalf("regs=%v compared=%d", regs, compared)
		}
	})
}
