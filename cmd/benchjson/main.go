// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON summary while passing the original text through,
// so one run feeds both the terminal and tooling:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH.json
//
// The JSON records, per benchmark: package, name (GOMAXPROCS suffix
// stripped), iterations, ns/op, and — when -benchmem was given — B/op and
// allocs/op. Lines that are not benchmark results (goos/pkg headers, PASS,
// ok) are echoed but otherwise ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Pkg is the import path from the preceding "pkg:" header.
	Pkg string `json:"pkg"`
	// Name is the benchmark name without the Benchmark prefix and the
	// -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op (fractional for sub-ns operations).
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem; nil when absent.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH.json", "write the JSON summary to this file")
	flag.Parse()

	var (
		benches []Benchmark
		pkg     string
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if p, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if b, ok := parseBench(pkg, line); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read stdin: %v", err)
	}

	buf, err := json.MarshalIndent(map[string]any{"benchmarks": benches}, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) -> %s\n", len(benches), *out)
}

// parseBench decodes one "BenchmarkX-8  N  T ns/op [B B/op  A allocs/op]"
// line; ok is false for anything else.
func parseBench(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: name, Iterations: iters}
	// The remainder is "value unit" pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if b.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return Benchmark{}, false
			}
			seen = true
		case "B/op":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.BytesPerOp = &n
		case "allocs/op":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.AllocsPerOp = &n
		}
	}
	return b, seen
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
