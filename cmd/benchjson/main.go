// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON summary while passing the original text through,
// so one run feeds both the terminal and tooling:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH.json
//
// The JSON records, per benchmark: package, name (GOMAXPROCS suffix
// stripped), iterations, ns/op, and — when -benchmem was given — B/op and
// allocs/op. Lines that are not benchmark results (goos/pkg headers, PASS,
// ok) are echoed but otherwise ignored.
//
// With -compare the tool additionally acts as a regression gate: the
// parsed results are checked against a previously written baseline, and
// any hot-path benchmark (selected by -hot) that got slower than
// -ns-threshold, or that allocates more per op than it used to, fails the
// run with a non-zero exit. Hot benchmarks missing from the baseline are
// reported as NEW and pass, so adding a benchmark does not fail the gate
// before the baseline is regenerated. Baseline-only hot benchmarks are
// reported as MISSING and warn by default — a subset run can be gated
// against a full baseline — and fail the run under -fail-missing, which
// catches a hot benchmark being silently dropped or renamed:
//
//	go test -bench='HeuristicSolve' -benchmem ./internal/exact/ |
//	    benchjson -out= -compare BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultHot selects the decision hot-path benchmarks: the solver entry
// points, the per-activation feasibility probes, and the end-to-end
// simulation run. Sub-benchmarks (Name/case) are matched by the ($|/).
// Only the workers=1 case of the parallel solver is gated: multi-worker
// timings depend on goroutine scheduling and swing well past the noise
// threshold on small or contended machines, so gating them just flakes.
const defaultHot = `^(HeuristicSolve|HeuristicRepair|OptimalSolve|OptimalSolveParallel/workers=1|OptimalWarmStart|Run|ResourceFeasible|SimulateEDF|FeasibleSorted)($|/)`

// Benchmark is one parsed result line.
type Benchmark struct {
	// Pkg is the import path from the preceding "pkg:" header.
	Pkg string `json:"pkg"`
	// Name is the benchmark name without the Benchmark prefix and the
	// -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op (fractional for sub-ns operations).
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem; nil when absent.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH.json", "write the JSON summary to this file (empty: don't write)")
	compareWith := flag.String("compare", "", "baseline JSON to gate against; regressions exit non-zero")
	nsThreshold := flag.Float64("ns-threshold", 0.15, "allowed fractional ns/op increase on hot benchmarks")
	hot := flag.String("hot", defaultHot, "regexp selecting the hot-path benchmarks the gate applies to")
	failMissing := flag.Bool("fail-missing", false, "treat hot baseline benchmarks missing from the run as regressions (default: warn only, so a package-subset run can be gated against a full baseline)")
	flag.Parse()

	hotRe, err := regexp.Compile(*hot)
	if err != nil {
		fatalf("bad -hot regexp: %v", err)
	}

	var (
		benches []Benchmark
		pkg     string
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if p, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if b, ok := parseBench(pkg, line); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read stdin: %v", err)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(map[string]any{"benchmarks": benches}, "", "  ")
		if err != nil {
			fatalf("encode: %v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) -> %s\n", len(benches), *out)
	}

	if *compareWith != "" {
		baseline, err := loadBaseline(*compareWith)
		if err != nil {
			fatalf("%v", err)
		}
		regressions, compared, fresh, missing := compare(baseline, benches, hotRe, *nsThreshold)
		if compared == 0 && len(fresh) == 0 {
			fatalf("compare %s: no hot benchmarks in common with the baseline", *compareWith)
		}
		for _, name := range fresh {
			fmt.Fprintf(os.Stderr, "benchjson: NEW: %s (not in baseline, no gate applied — refresh the baseline to start gating it)\n", name)
		}
		for _, name := range missing {
			if *failMissing {
				regressions = append(regressions, fmt.Sprintf(
					"%s: in the baseline but missing from this run (-fail-missing)", name))
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: MISSING: %s (in the baseline but not in this run — a dropped or renamed hot benchmark evades the gate; expected for package-subset runs)\n", name)
			}
		}
		for _, msg := range regressions {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", msg)
		}
		if len(regressions) > 0 {
			fatalf("%d regression(s) vs %s (threshold +%.0f%% ns/op, +0 allocs/op)",
				len(regressions), *compareWith, *nsThreshold*100)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d hot benchmark(s) within budget of %s, %d new, %d baseline-only\n",
			compared, *compareWith, len(fresh), len(missing))
	}
}

// loadBaseline reads a JSON summary previously written by -out.
func loadBaseline(path string) ([]Benchmark, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks []Benchmark `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	return doc.Benchmarks, nil
}

// compare gates cur against base: for every hot benchmark present on both
// sides, the ns/op may not grow by more than nsThreshold (fractional) and
// allocs/op may not grow at all. It returns the regression descriptions,
// the number of benchmarks actually compared, the hot benchmarks that are
// new — present in cur but absent from the baseline — and the hot
// benchmarks that are missing — present in the baseline but absent from
// cur. New benchmarks pass (there is nothing to regress against yet).
// Missing ones are the caller's call: a package-subset run legitimately
// skips baseline benchmarks, but a silently dropped or renamed hot
// benchmark evades the gate, so they are at least reported (-fail-missing
// upgrades them to failures).
func compare(base, cur []Benchmark, hot *regexp.Regexp, nsThreshold float64) (regressions []string, compared int, fresh, missing []string) {
	old := make(map[string]Benchmark, len(base))
	for _, b := range base {
		old[b.Pkg+"."+b.Name] = b
	}
	seen := make(map[string]bool, len(cur))
	for _, b := range cur {
		if !hot.MatchString(b.Name) {
			continue
		}
		key := b.Pkg + "." + b.Name
		seen[key] = true
		prev, ok := old[key]
		if !ok {
			fresh = append(fresh, key)
			continue
		}
		compared++
		if prev.NsPerOp > 0 && b.NsPerOp > prev.NsPerOp*(1+nsThreshold) {
			regressions = append(regressions, fmt.Sprintf(
				"%s %s: %.1f ns/op, baseline %.1f (+%.0f%% > +%.0f%% budget)",
				b.Pkg, b.Name, b.NsPerOp, prev.NsPerOp,
				(b.NsPerOp/prev.NsPerOp-1)*100, nsThreshold*100))
		}
		if prev.AllocsPerOp != nil && b.AllocsPerOp != nil && *b.AllocsPerOp > *prev.AllocsPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s %s: %d allocs/op, baseline %d (allocation budget is +0)",
				b.Pkg, b.Name, *b.AllocsPerOp, *prev.AllocsPerOp))
		}
	}
	for _, b := range base {
		key := b.Pkg + "." + b.Name
		if hot.MatchString(b.Name) && !seen[key] {
			missing = append(missing, key)
		}
	}
	sort.Strings(missing)
	return regressions, compared, fresh, missing
}

// parseBench decodes one "BenchmarkX-8  N  T ns/op [B B/op  A allocs/op]"
// line; ok is false for anything else.
func parseBench(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: name, Iterations: iters}
	// The remainder is "value unit" pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if b.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return Benchmark{}, false
			}
			seen = true
		case "B/op":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.BytesPerOp = &n
		case "allocs/op":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.AllocsPerOp = &n
		}
	}
	return b, seen
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
