// Command rmserve runs the resource manager as a long-lived wall-clock
// service: the same activation engine the simulator drives (admission
// protocol, EDF dispatch, migration charging), fed live over HTTP
// instead of from a recorded trace.
//
// Usage:
//
//	rmserve -addr :8080 -engine heuristic
//	rmserve -addr :8080 -taskset traces/taskset.json -engine milp -speed 50
//	rmserve -addr :8080 -solver-budget 5ms -provenance -trace-out events.jsonl
//
// Submit requests with `tracegen -fire http://localhost:8080` (live
// load generation / trace replay) or plain curl:
//
//	curl -d '{"type": 3, "deadline": 12.5}' localhost:8080/v1/requests
//	curl localhost:8080/v1/decisions/0
//
// Every non-/v1 path is the live introspection plane (internal/obs):
// /metrics, /statusz, /explainz, /trace/tail, /debug/pprof.
//
// -speed scales engine time against wall time (speed N means N engine
// time units per real second), so recorded traces can be replayed live
// at any compression without changing a single admission decision.
//
// On SIGINT/SIGTERM the server shuts down gracefully: intake answers
// 503, open tail streams get their terminal event, in-flight activations
// finish, and the remaining admitted jobs drain before the final
// rmsim-style summary prints. A second signal — or -drain-timeout —
// abandons the drain and exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"predrm/internal/core"
	"predrm/internal/engine"
	"predrm/internal/exact"
	"predrm/internal/obs"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/serve"
	"predrm/internal/task"
	"predrm/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "address to serve the RM API and introspection plane on (:0 picks a free port)")
		setPath   = flag.String("taskset", "", "task-set JSON file written by tracegen (empty: generate from -seed)")
		platSpec  = flag.String("platform", "", "platform spec like 5c1g or 64c8g (empty: the paper's 5c1g default; invalid with -taskset, which carries its platform)")
		shards    = flag.Int("shards", 1, "partition the platform into this many shards, each admitting against only its own resources (scale-out mode)")
		engName   = flag.String("engine", "heuristic", "mapping engine: heuristic, greedy, or milp")
		exactWork = flag.Int("exact-workers", 0, "search goroutines for -engine milp (0 or 1: serial; results are identical either way)")
		warmStart = flag.Bool("warmstart", true, "reuse the previous activation's work across live activations (milp: repair-based pruning bound; heuristic: EDF probe cache); decisions are identical either way")
		seed      = flag.Uint64("seed", 1, "task-set seed (ignored with -taskset)")
		types     = flag.Int("types", 100, "generated task types (ignored with -taskset)")
		workCons  = flag.Bool("work-conserving", false, "ignore predicted-task reservations between activations")
		speed     = flag.Float64("speed", 1, "engine time units per real second (replay compression; decisions are speed-invariant)")

		solverBudget = flag.String("solver-budget", "", "per-activation solver budget: a node count (e.g. 20000) or a wall duration (e.g. 5ms); enables the budgeted fallback chain for graceful degradation under load")

		traceOut     = flag.String("trace-out", "", "write the structured event stream as JSONL to this file")
		provOn       = flag.Bool("provenance", false, "record decision provenance into the event stream (inspect via /explainz or tracetool explain)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown may wait for in-flight jobs to drain")
	)
	flag.Parse()
	if *speed <= 0 {
		fatalf("-speed %g must be positive", *speed)
	}
	if *exactWork < 0 {
		fatalf("-exact-workers %d must be non-negative", *exactWork)
	}
	if *engName != "milp" && flagWasSet("exact-workers") {
		fatalf("-exact-workers has no effect with -engine %s", *engName)
	}
	if *shards < 1 {
		fatalf("-shards %d must be at least 1", *shards)
	}
	if *shards > 1 {
		// Multi-shard engines reject globally-stateful features (see
		// engine.NewSharded); /trace/tail and /explainz go dark, the rest
		// of the plane (metrics, statusz, SLO burn) stays live.
		if *traceOut != "" {
			fatalf("-trace-out is not supported with -shards > 1 (per-shard event streams would interleave)")
		}
		if *provOn {
			fatalf("-provenance is not supported with -shards > 1")
		}
	}

	var (
		set *task.Set
		err error
	)
	if *setPath != "" {
		if *platSpec != "" {
			fatalf("-platform has no effect with -taskset (the task set carries its platform)")
		}
		set, err = task.ReadFile(*setPath)
		if err != nil {
			fatalf("load task set: %v", err)
		}
	} else {
		plat := platform.Default()
		if *platSpec != "" {
			plat, err = platform.Parse(*platSpec)
			if err != nil {
				fatalf("platform: %v", err)
			}
		}
		tcfg := task.DefaultGenConfig()
		tcfg.NumTypes = *types
		set, err = task.Generate(plat, tcfg, rng.New(*seed).Split())
		if err != nil {
			fatalf("task set: %v", err)
		}
	}

	cfg := engine.Config{
		Platform:       set.Platform,
		TaskSet:        set,
		WorkConserving: *workCons,
		Metrics:        telemetry.NewRegistry(),
	}
	// newSolver builds one solver instance; shards cannot share solver
	// state, so the sharded engine calls it once per shard (each with its
	// own warm cache and, under -solver-budget, its own fallback chain).
	newSolver := func() core.Solver {
		var warmCache *sched.FeasCache
		if *warmStart && *engName != "milp" {
			warmCache = sched.NewFeasCache(0)
		}
		var s core.Solver
		switch *engName {
		case "heuristic":
			s = &core.Heuristic{Cache: warmCache}
		case "greedy":
			s = &core.Heuristic{Greedy: true, Cache: warmCache}
		case "milp":
			s = &exact.Optimal{Workers: *exactWork, WarmStart: *warmStart}
		default:
			fatalf("unknown engine %q", *engName)
		}
		if *shards > 1 && *solverBudget != "" {
			budget, err := parseBudget(*solverBudget)
			if err != nil {
				fatalf("solver-budget: %v", err)
			}
			s = &core.BudgetedSolver{
				Stages: []core.Stage{
					{Name: *engName, Solver: s},
					{Name: "heuristic", Solver: &core.Heuristic{}},
				},
				Budget: budget,
			}
		}
		return s
	}
	if *shards == 1 {
		cfg.Solver = newSolver()
	}

	var (
		traceFile *os.File
		tracer    *telemetry.Tracer
	)
	if *shards == 1 {
		topts := telemetry.TracerOptions{}
		if *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				fatalf("trace-out: %v", err)
			}
			topts.Sink = traceFile
		}
		tracer = telemetry.NewTracer(topts)
		cfg.Tracer = tracer
		cfg.Provenance = *provOn

		if *solverBudget != "" {
			budget, err := parseBudget(*solverBudget)
			if err != nil {
				fatalf("solver-budget: %v", err)
			}
			cfg.Solver = &core.BudgetedSolver{
				Stages: []core.Stage{
					{Name: *engName, Solver: cfg.Solver},
					{Name: "heuristic", Solver: &core.Heuristic{}},
				},
				Budget: budget,
				Tracer: tracer,
			}
		}
	}

	plane := obs.NewPlane(obs.Options{
		Snapshot: cfg.Metrics.Snapshot,
		Tracer:   tracer,
	})
	srv, err := serve.New(serve.Config{
		Engine: cfg,
		Shard:  engine.ShardConfig{Shards: *shards, NewSolver: newSolver},
		Clock:  serve.NewWallClock(*speed),
		Plane:  plane,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := srv.Listen(*addr); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "rmserve: serving on %s (engine %s, platform %s, %d shard(s), speed %gx)\n",
		srv.URL(), *engName, set.Platform.Spec(), *shards, *speed)
	fmt.Fprintf(os.Stderr, "rmserve: POST %s/v1/requests, introspection at %s/statusz\n", srv.URL(), srv.URL())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop() // a second signal kills the process the default way
	fmt.Fprintf(os.Stderr, "rmserve: signal received, draining (up to %v; signal again to abort)\n", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(dctx)
	res := srv.Result()

	if traceFile != nil && tracer != nil {
		if err := tracer.Flush(); err != nil {
			fatalf("trace-out: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("trace-out: %v", err)
		}
		if err := tracer.Err(); err != nil {
			fatalf("trace-out: event stream truncated: %v", err)
		}
	}

	fmt.Printf("engine:           %s (speed %gx)\n", *engName, *speed)
	fmt.Printf("platform:         %s\n", set.Platform.Spec())
	if *shards > 1 {
		fmt.Printf("scale-out:        %d shards\n", *shards)
	}
	fmt.Printf("requests:         %d\n", res.Requests)
	fmt.Printf("accepted:         %d\n", res.Accepted)
	fmt.Printf("rejected:         %d (%.2f%%)\n", res.Rejected, res.RejectionPct())
	fmt.Printf("total energy:     %.2f J\n", res.TotalEnergy)
	fmt.Printf("migrations:       %d (%.2f J)\n", res.Migrations, res.MigrationEnergy)
	fmt.Printf("makespan:         %.2f\n", res.MakeSpan)
	fmt.Printf("deadline misses:  %d\n", res.DeadlineMisses)
	if res.Telemetry != nil {
		printReasonLine("admit reasons:    ", res.Telemetry.Counters, "sim.admit_reason.")
		printReasonLine("reject reasons:   ", res.Telemetry.Counters, "sim.reject_reason.")
		lat := res.Telemetry.Histograms["sim.solver_seconds"]
		if lat.Count > 0 {
			fmt.Printf("solver latency:   p50 %.1f µs, p95 %.1f µs, max %.1f µs (%d activations)\n",
				lat.Quantile(0.50)*1e6, lat.Quantile(0.95)*1e6, lat.Max*1e6, lat.Count)
		}
	}
	rep := plane.SLO().Report()
	fmt.Printf("slo:              rejection %.1f%% of %.0f%% budget; miss %.2g%% of %.2g%% budget\n",
		100*rep.TotalRejectionRate, 100*rep.RejectionTarget,
		100*rep.TotalMissRate, 100*rep.MissTarget)

	if shutdownErr != nil {
		fatalf("shutdown: %v", shutdownErr)
	}
	if err := srv.Err(); err != nil {
		fatalf("engine: %v", err)
	}
	if res.DeadlineMisses > 0 {
		fatalf("deadline misses detected: resource-manager invariant broken")
	}
}

func parseBudget(s string) (core.Budget, error) {
	if s == "" {
		return core.Budget{}, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return core.Budget{}, fmt.Errorf("node budget %d must be positive", n)
		}
		return core.Budget{Nodes: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return core.Budget{}, fmt.Errorf("%q is neither a node count nor a duration", s)
	}
	if d <= 0 {
		return core.Budget{}, fmt.Errorf("wall budget %v must be positive", d)
	}
	return core.Budget{Wall: d}, nil
}

// printReasonLine renders one decision-reason histogram from the counters
// under prefix, sorted by reason; nothing is printed when empty.
func printReasonLine(label string, counters map[string]int64, prefix string) {
	var reasons []string
	for name := range counters {
		if strings.HasPrefix(name, prefix) {
			reasons = append(reasons, strings.TrimPrefix(name, prefix))
		}
	}
	if len(reasons) == 0 {
		return
	}
	sort.Strings(reasons)
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%s %d", r, counters[prefix+r])
	}
	fmt.Printf("%s%s\n", label, strings.Join(parts, ", "))
}

// flagWasSet reports whether the named flag was given explicitly on the
// command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rmserve: "+format+"\n", args...)
	os.Exit(1)
}
