// Command experiments regenerates the paper's evaluation: every table and
// figure of Sec 5 plus this repository's ablations.
//
// Usage:
//
//	experiments -exp all                    # everything, laptop scale
//	experiments -exp fig2b -traces 100      # one figure, more traces
//	experiments -exp fig5 -profile paper    # literal Sec 5.1 parameters
//
// Experiment ids: motivational, milp-vs-heuristic, fig2a, fig2b, fig3a,
// fig3b, fig4a, fig4b, fig5, ablation-regret, ablation-migration,
// online-predictors, lookahead, baseline-static, load-surface, telemetry,
// fault-sweep, scale-sweep, all.
//
// Observability: -metrics-out writes the merged telemetry snapshot of the
// experiments that collect one (currently "telemetry") as JSON, -trace-out
// streams their structured event logs as JSONL (analysable with
// tracetool), -cpuprofile/-memprofile capture runtime/pprof profiles of
// the whole run, and -ops-addr serves the live introspection plane
// (/metrics, /statusz, /trace/tail — see internal/obs) while the sweep
// runs; -ops-linger keeps it up after the last experiment so a final
// scrape can be taken.
//
// Scale-out: -platform gives the comma-separated platform specs the
// scale-sweep experiment grows across (default "8c1g,16c2g,64c8g"; see
// platform.Parse for the spec grammar). The paper experiments always run
// on the paper's 5c1g platform.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"predrm/internal/experiments"
	"predrm/internal/obs"
	"predrm/internal/platform"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see doc comment)")
		traces   = flag.Int("traces", 30, "traces per group (paper: 500)")
		traceLen = flag.Int("len", 200, "requests per trace (paper: 500)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		profile  = flag.String("profile", "calibrated", "workload profile: calibrated or paper")
		nodes    = flag.Int("exact-nodes", 0, "exact-solver node limit per activation (0 = default)")
		warm     = flag.Bool("warmstart", true, "let solvers reuse the previous activation's work (warm pruning bound for the exact engine, cross-activation probe cache for the heuristics); results are bit-identical either way")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")

		metricsOut = flag.String("metrics-out", "", "write the merged telemetry snapshot as JSON to this file")
		traceOut   = flag.String("trace-out", "", "write telemetry-collecting runs' event streams as JSONL to this file (concatenates one stream per simulated trace; for tracetool check/diff record a single run with rmsim)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
		opsAddr    = flag.String("ops-addr", "", "serve the live introspection plane (metrics, statusz, trace tail, pprof) on this address while the sweep runs")
		opsLinger  = flag.Duration("ops-linger", 0, "keep the -ops-addr server up this long after the last experiment")
		platSpecs  = flag.String("platform", "8c1g,16c2g,64c8g", "comma-separated platform specs the scale-sweep experiment grows across (other experiments run the paper's 5c1g platform)")
	)
	flag.Parse()
	validateFlags(*traces, *traceLen, *nodes)
	if *opsLinger > 0 && *opsAddr == "" {
		fatalf("-ops-linger needs -ops-addr")
	}

	cfg := experiments.DefaultConfig()
	cfg.Traces = *traces
	cfg.TraceLen = *traceLen
	cfg.Seed = *seed
	cfg.ExactNodeLimit = *nodes
	cfg.WarmStart = *warm
	switch *profile {
	case "calibrated":
		cfg.Profile = experiments.CalibratedProfile()
	case "paper":
		cfg.Profile = experiments.PaperProfile()
	default:
		fatalf("unknown profile %q", *profile)
	}

	var scaleSpecs []string
	for _, s := range strings.Split(*platSpecs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, err := platform.Parse(s); err != nil {
			fatalf("-platform: %v", err)
		}
		scaleSpecs = append(scaleSpecs, s)
	}
	if len(scaleSpecs) == 0 {
		fatalf("-platform %q: no specs", *platSpecs)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		// impact-lt/impact-vt print Fig 2 and Fig 3 from a single run.
		ids = []string{
			"motivational", "milp-vs-heuristic",
			"impact-lt", "impact-vt",
			"fig4a", "fig4b", "fig5",
			"ablation-regret", "ablation-migration", "online-predictors",
			"lookahead", "baseline-static", "load-surface", "telemetry",
			"fault-sweep", "scale-sweep",
		}
	}
	var traceFile *os.File
	if *traceOut != "" {
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fatalf("trace-out: %v", err)
		}
		cfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: traceFile})
	}
	// Merged snapshot of the telemetry-collecting experiments finished so
	// far, refreshed after each id; the ops plane scrapes it live.
	var merged atomic.Pointer[telemetry.Snapshot]
	var opsSrv *obs.Server
	if *opsAddr != "" {
		if cfg.Tracer == nil {
			// Ring-only tracer: no JSONL sink, but /trace/tail subscribers
			// can still stream the telemetry experiments' events live.
			cfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{})
		}
		plane := obs.NewPlane(obs.Options{
			Snapshot: func() *telemetry.Snapshot { return merged.Load() },
			Tracer:   cfg.Tracer,
		})
		cfg.StateProbe = plane.Probe
		var err error
		opsSrv, err = obs.Serve(*opsAddr, plane)
		if err != nil {
			fatalf("ops-addr: %v", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: ops server on %s (try %s/statusz)\n", opsSrv.URL(), opsSrv.URL())
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
	}
	start := time.Now()
	var snaps []*telemetry.Snapshot
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tables, snap, err := run(id, cfg, scaleSpecs)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		if snap != nil {
			snaps = append(snaps, snap)
			merged.Store(telemetry.Merge(snaps...))
		}
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fatalf("%s: %v", id, err)
			}
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, id, tables); err != nil {
				fatalf("%s: %v", id, err)
			}
		}
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if traceFile != nil {
		// A sink write failure means the JSONL stream on disk is silently
		// truncated; surface it rather than shipping a partial trace.
		if err := cfg.Tracer.Flush(); err != nil {
			fatalf("trace-out: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("trace-out: %v", err)
		}
		if err := cfg.Tracer.Err(); err != nil {
			fatalf("trace-out: event stream truncated: %v", err)
		}
	}
	if cfg.Tracer != nil {
		if n := cfg.Tracer.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: warning: tracer dropped %d event(s) (ring overwritten faster than drained)\n", n)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		runtime.GC() // settle the heap so the profile reflects retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("memprofile: %v", err)
		}
	}
	if *metricsOut != "" {
		merged := telemetry.Merge(snaps...)
		buf, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			fatalf("metrics-out: %v", err)
		}
		if err := os.WriteFile(*metricsOut, append(buf, '\n'), 0o644); err != nil {
			fatalf("metrics-out: %v", err)
		}
	}
	if opsSrv != nil {
		if *opsLinger > 0 {
			// Interruptible linger: Ctrl-C must still reach opsSrv.Close so
			// open /trace/tail streams get their clean terminal event
			// instead of dying with the process.
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			fmt.Fprintf(os.Stderr, "experiments: ops server lingering for %v on %s (Ctrl-C to stop)\n", *opsLinger, opsSrv.URL())
			select {
			case <-time.After(*opsLinger):
			case <-ctx.Done():
				fmt.Fprintln(os.Stderr, "experiments: interrupted, closing ops server")
			}
			stop()
		}
		if err := opsSrv.Close(); err != nil {
			fatalf("ops-addr: %v", err)
		}
	}
	if len(snaps) > 0 {
		// Decision-reason histograms over every telemetry-collecting
		// experiment in the sweep (the enumerated vocabulary makes these
		// comparable across runs and profiles).
		m := telemetry.Merge(snaps...)
		printReasonLine("admit reasons:  ", m.Counters, "sim.admit_reason.")
		printReasonLine("reject reasons: ", m.Counters, "sim.reject_reason.")
	}
	fmt.Printf("done in %v (profile=%s, %d traces x %d requests)\n",
		time.Since(start).Round(time.Millisecond), cfg.Profile.Name, cfg.Traces, cfg.TraceLen)
}

// printReasonLine renders one decision-reason histogram from the counters
// under prefix, sorted by reason; empty histograms print nothing.
func printReasonLine(label string, counters map[string]int64, prefix string) {
	var reasons []string
	for name := range counters {
		if strings.HasPrefix(name, prefix) {
			reasons = append(reasons, strings.TrimPrefix(name, prefix))
		}
	}
	if len(reasons) == 0 {
		return
	}
	sort.Strings(reasons)
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%s %d", r, counters[prefix+r])
	}
	fmt.Printf("%s%s\n", label, strings.Join(parts, ", "))
}

// run executes one experiment and returns its tables plus, for
// telemetry-collecting experiments, the merged metrics snapshot.
func run(id string, cfg experiments.Config, scaleSpecs []string) ([]*experiments.Table, *telemetry.Snapshot, error) {
	sweep := []float64{0.25, 0.5, 0.75, 1.0}
	switch id {
	case "motivational":
		r, err := experiments.Motivational()
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "milp-vs-heuristic":
		r, err := experiments.MILPvsHeuristic(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "fig2a", "fig3b", "impact-lt":
		r, err := experiments.PredictionImpact(cfg, trace.LessTight)
		if err != nil {
			return nil, nil, err
		}
		switch id {
		case "fig2a":
			return []*experiments.Table{r.RejectionTable}, nil, nil
		case "fig3b":
			return []*experiments.Table{r.EnergyTable}, nil, nil
		}
		return []*experiments.Table{r.RejectionTable, r.EnergyTable}, nil, nil
	case "fig2b", "fig3a", "impact-vt":
		r, err := experiments.PredictionImpact(cfg, trace.VeryTight)
		if err != nil {
			return nil, nil, err
		}
		switch id {
		case "fig2b":
			return []*experiments.Table{r.RejectionTable}, nil, nil
		case "fig3a":
			return []*experiments.Table{r.EnergyTable}, nil, nil
		}
		return []*experiments.Table{r.RejectionTable, r.EnergyTable}, nil, nil
	case "fig4a":
		r, err := experiments.Fig4a(cfg, sweep)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "fig4b":
		r, err := experiments.Fig4b(cfg, sweep)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "fig5":
		r, err := experiments.Fig5(cfg, []float64{0, 0.01, 0.02, 0.04, 0.08, 0.25, 0.5, 1.0})
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "ablation-regret":
		r, err := experiments.AblationRegret(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "ablation-migration":
		r, err := experiments.AblationMigration(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "baseline-static":
		r, err := experiments.BaselineStatic(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "lookahead":
		r, err := experiments.LookaheadSweep(cfg, []int{1, 2, 3, 4})
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "online-predictors":
		r, err := experiments.OnlinePredictors(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "telemetry":
		r, err := experiments.TelemetryProbe(cfg)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, r.Merged, nil
	case "load-surface":
		r, err := experiments.LoadSurface(cfg, []float64{1.2, 1.7, 2.2, 3.0, 4.5})
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "scale-sweep":
		r, err := experiments.ScaleSweep(cfg, scaleSpecs)
		if err != nil {
			return nil, nil, err
		}
		return []*experiments.Table{r.Table}, nil, nil
	case "fault-sweep":
		r, err := experiments.FaultSweep(cfg, []float64{0, 0.1, 0.25, 0.5})
		if err != nil {
			return nil, nil, err
		}
		var snaps []*telemetry.Snapshot
		for _, s := range r.PerRate {
			snaps = append(snaps, s)
		}
		return []*experiments.Table{r.Table}, telemetry.Merge(snaps...), nil
	default:
		return nil, nil, fmt.Errorf("unknown experiment id %q", id)
	}
}

// writeCSVs exports an experiment's tables into dir.
func writeCSVs(dir, id string, tables []*experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range tables {
		name := id
		if len(tables) > 1 {
			name = fmt.Sprintf("%s-%d", id, i+1)
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// validateFlags rejects out-of-range workload parameters up front with
// actionable messages instead of failing deep inside the first experiment.
func validateFlags(traces, traceLen, nodes int) {
	switch {
	case traces <= 0:
		fatalf("-traces %d must be positive", traces)
	case traceLen <= 0:
		fatalf("-len %d must be positive", traceLen)
	case nodes < 0:
		fatalf("-exact-nodes %d must be non-negative (0 = solver default)", nodes)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
