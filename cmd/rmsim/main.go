// Command rmsim runs one resource-management simulation over a generated
// or loaded trace and reports acceptance, energy and migration statistics.
//
// Usage:
//
//	rmsim -engine heuristic -predict -accuracy 0.9 -seed 1
//	rmsim -taskset traces/taskset.json -trace traces/trace-VT-000.json -engine milp -gantt 60
//	rmsim -predict -trace-out events.jsonl -metrics-out metrics.json -cpuprofile cpu.pprof
//
// A trace produced by tracegen should be loaded together with its
// taskset.json (task-set generation is part of the workload's identity);
// without -taskset, rmsim regenerates the set from -seed and -types.
//
// Observability: -trace-out streams the structured simulation event log as
// JSONL (see the README's Observability section for the schema),
// -metrics-out writes the run's metrics snapshot as JSON and prints a
// solver-latency summary, and -cpuprofile/-memprofile write runtime/pprof
// profiles of the simulation. -provenance records each admission
// decision's full causal chain into the event stream (decision events;
// inspect with `tracetool explain` or the ops server's /explainz).
// -ops-addr mounts the live introspection plane (internal/obs) for the
// duration of the run: /metrics in Prometheus exposition format, /statusz
// JSON RM state with SLO burn rates, /explainz decision narratives,
// /trace/tail live event streaming, and /debug/pprof; -ops-linger keeps
// it up after the run so the end state can be inspected.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"predrm/internal/core"
	"predrm/internal/exact"
	"predrm/internal/faultinject"
	"predrm/internal/gantt"
	"predrm/internal/obs"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace JSON file (empty: generate)")
		setPath   = flag.String("taskset", "", "task-set JSON file written by tracegen (empty: generate from -seed)")
		engine    = flag.String("engine", "heuristic", "mapping engine: heuristic, greedy, or milp")
		exactWork = flag.Int("exact-workers", 0, "search goroutines for -engine milp (0 or 1: serial; results are identical either way)")
		warmStart = flag.Bool("warmstart", true, "reuse the previous activation's work: the milp engine repairs its last mapping into a pruning bound, the heuristic engines cache EDF probe verdicts across activations; decisions are identical either way")
		platSpec  = flag.String("platform", "", "platform spec like 5c1g or 64c8g (empty: the paper's 5c1g default; invalid with -taskset, which carries its platform)")
		shards    = flag.Int("shards", 1, "partition the platform into this many shards, each admitting against only its own resources (scale-out mode)")
		batchWin  = flag.Float64("batch-window", 0, "collect arrivals for this many time units and admit each window as one batch epoch (0: the paper's one-by-one protocol)")
		shardWork = flag.Int("shard-workers", 0, "concurrent shard solves per batch epoch (0: min(shards, GOMAXPROCS))")
		usePred   = flag.Bool("predict", false, "enable the oracle predictor")
		accuracy  = flag.Float64("accuracy", 1.0, "oracle task-type accuracy in [0,1]")
		timeErr   = flag.Float64("time-error", 0, "oracle arrival-time normalized RMSE")
		overhead  = flag.Float64("overhead", 0, "prediction overhead in time units")
		seed      = flag.Uint64("seed", 1, "workload seed")
		length    = flag.Int("len", 500, "generated trace length")
		group     = flag.String("group", "VT", "deadline group: VT or LT")
		meanIA    = flag.Float64("interarrival", 3.0, "generated mean interarrival")
		types     = flag.Int("types", 100, "task types")
		workCons  = flag.Bool("work-conserving", false, "ignore predicted-task reservations between activations")
		verbose   = flag.Bool("v", false, "print per-request outcomes")
		showGantt = flag.Int("gantt", 0, "render the first N time units of the executed schedule")

		solverBudget = flag.String("solver-budget", "", "per-activation solver budget: a node count (e.g. 20000) or a wall duration (e.g. 5ms); enables the budgeted fallback chain")
		faultPlan    = flag.String("fault-plan", "", "deterministic fault plan, e.g. seed=7,solver-error=0.2,latency-rate=0.1,latency=0.5 (see internal/faultinject); enables the fallback chain")

		traceOut   = flag.String("trace-out", "", "write the structured event stream as JSONL to this file")
		provOn     = flag.Bool("provenance", false, "record decision provenance (per-candidate verdicts, solver-chain hops) into the event stream; requires -trace-out or -ops-addr")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot as JSON to this file")
		opsAddr    = flag.String("ops-addr", "", "serve the live introspection plane (/metrics, /statusz, /trace/tail, pprof) on this address (:0 picks a free port)")
		opsLinger  = flag.Duration("ops-linger", 0, "keep the ops server up this long after the run finishes (requires -ops-addr)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the simulation to this file")
	)
	flag.Parse()
	validateFlags(*usePred, *accuracy, *timeErr, *overhead, *length, *types, *meanIA, *showGantt, *group)
	if *exactWork < 0 {
		fatalf("-exact-workers %d must be non-negative", *exactWork)
	}
	if *engine != "milp" && flagWasSet("exact-workers") {
		fatalf("-exact-workers has no effect with -engine %s", *engine)
	}
	if *opsAddr == "" && flagWasSet("ops-linger") {
		fatalf("-ops-linger has no effect without -ops-addr")
	}
	if *shards < 1 {
		fatalf("-shards %d must be at least 1", *shards)
	}
	if *batchWin < 0 {
		fatalf("-batch-window %g must be non-negative", *batchWin)
	}
	if *shards == 1 && flagWasSet("shard-workers") {
		fatalf("-shard-workers has no effect without -shards > 1")
	}
	if *shards > 1 {
		// Multi-shard engines reject globally-stateful features (see
		// engine.NewSharded); fail on the flag rather than deep in setup.
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{*usePred, "predict"},
			{*provOn, "provenance"},
			{*traceOut != "", "trace-out"},
			{*opsAddr != "", "ops-addr"},
			{*faultPlan != "", "fault-plan"},
		} {
			if bad.set {
				fatalf("-%s is not supported with -shards > 1 (its state is global; see DESIGN.md §12)", bad.name)
			}
		}
	}

	root := rng.New(*seed)
	var (
		plat *platform.Platform
		set  *task.Set
		err  error
	)
	if *setPath != "" {
		if *platSpec != "" {
			fatalf("-platform has no effect with -taskset (the task set carries its platform)")
		}
		set, err = task.ReadFile(*setPath)
		if err != nil {
			fatalf("load task set: %v", err)
		}
		plat = set.Platform
		root.Split() // keep the trace stream aligned with the generate path
	} else {
		plat = platform.Default()
		if *platSpec != "" {
			plat, err = platform.Parse(*platSpec)
			if err != nil {
				fatalf("platform: %v", err)
			}
		}
		tcfg := task.DefaultGenConfig()
		tcfg.NumTypes = *types
		set, err = task.Generate(plat, tcfg, root.Split())
		if err != nil {
			fatalf("task set: %v", err)
		}
	}

	var tr *trace.Trace
	if *tracePath != "" {
		tr, err = trace.ReadFile(*tracePath)
		if err != nil {
			fatalf("load trace: %v", err)
		}
	} else {
		tight := trace.VeryTight
		if *group == "LT" || *group == "lt" {
			tight = trace.LessTight
		}
		gcfg := trace.GenConfig{
			Length:           *length,
			InterarrivalMean: *meanIA,
			InterarrivalStd:  *meanIA / 3,
			Tightness:        tight,
		}
		tr, err = trace.Generate(set, gcfg, root.Split())
		if err != nil {
			fatalf("generate trace: %v", err)
		}
	}

	cfg := sim.Config{
		Platform:        plat,
		TaskSet:         set,
		WorkConserving:  *workCons,
		RecordExecution: *showGantt > 0,
	}
	// newSolver builds one solver instance; shards cannot share solver
	// state, so the sharded runner calls it once per shard (each with its
	// own warm cache and, under -solver-budget, its own fallback chain).
	newSolver := func() core.Solver {
		var warmCache *sched.FeasCache
		if *warmStart && *engine != "milp" {
			warmCache = sched.NewFeasCache(0)
		}
		var s core.Solver
		switch *engine {
		case "heuristic":
			s = &core.Heuristic{Cache: warmCache}
		case "greedy":
			s = &core.Heuristic{Greedy: true, Cache: warmCache}
		case "milp":
			s = &exact.Optimal{Workers: *exactWork, WarmStart: *warmStart}
		default:
			fatalf("unknown engine %q", *engine)
		}
		if *shards > 1 && *solverBudget != "" {
			budget, err := parseBudget(*solverBudget)
			if err != nil {
				fatalf("solver-budget: %v", err)
			}
			s = &core.BudgetedSolver{
				Stages: []core.Stage{
					{Name: *engine, Solver: s},
					{Name: "heuristic", Solver: &core.Heuristic{}},
				},
				Budget: budget,
			}
		}
		return s
	}
	if *shards == 1 {
		cfg.Solver = newSolver()
	}
	if *usePred {
		o, err := predict.NewOracle(tr, predict.OracleConfig{
			TypeAccuracy: *accuracy,
			TimeError:    *timeErr,
			Overhead:     *overhead,
			NumTypes:     set.Len(),
			Seed:         *seed + 17,
		})
		if err != nil {
			fatalf("oracle: %v", err)
		}
		cfg.Predictor = o
	}

	var (
		tracer    *telemetry.Tracer
		traceFile *os.File
	)
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fatalf("trace-out: %v", err)
		}
		tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: traceFile})
		cfg.Tracer = tracer
	}
	if *opsAddr != "" && tracer == nil {
		// The introspection plane tails the event stream live; without
		// -trace-out a ring-only tracer backs /trace/tail.
		tracer = telemetry.NewTracer(telemetry.TracerOptions{})
		cfg.Tracer = tracer
	}
	if *provOn {
		if tracer == nil {
			fatalf("-provenance has no effect without -trace-out or -ops-addr (decision records ride the event stream)")
		}
		cfg.Provenance = true
	}
	resilient := *solverBudget != "" || *faultPlan != ""
	if *metricsOut != "" || resilient || *opsAddr != "" {
		// The resilience chain always collects metrics so the degraded-mode
		// summary below can report what actually happened; the ops server
		// renders the same registry on /metrics.
		cfg.Metrics = telemetry.NewRegistry()
	}
	if resilient && *shards == 1 {
		// With -shards > 1 the per-shard factory above owns the budget
		// wiring (and -fault-plan was rejected at flag validation).
		budget, err := parseBudget(*solverBudget)
		if err != nil {
			fatalf("solver-budget: %v", err)
		}
		primary := cfg.Solver
		if *faultPlan != "" {
			plan, err := faultinject.ParsePlan(*faultPlan)
			if err != nil {
				fatalf("fault-plan: %v", err)
			}
			p := &plan
			primary = p.Solver(primary, tracer)
			cfg.OverheadHook = p.Hook(tracer, cfg.Metrics)
			if cfg.Predictor != nil {
				cfg.Predictor = p.Predictor(cfg.Predictor, tracer, cfg.Metrics)
			}
		}
		cfg.Solver = &core.BudgetedSolver{
			Stages: []core.Stage{
				{Name: *engine, Solver: primary},
				{Name: "heuristic", Solver: &core.Heuristic{}},
			},
			Budget: budget,
			Tracer: tracer,
		}
	}
	var (
		plane  *obs.Plane
		opsSrv *obs.Server
	)
	if *opsAddr != "" {
		plane = obs.NewPlane(obs.Options{
			Snapshot: cfg.Metrics.Snapshot,
			Tracer:   tracer,
		})
		cfg.StateProbe = plane.Probe
		opsSrv, err = obs.Serve(*opsAddr, plane)
		if err != nil {
			fatalf("ops-addr: %v", err)
		}
		fmt.Fprintf(os.Stderr, "rmsim: ops server on %s (try %s/statusz)\n", opsSrv.URL(), opsSrv.URL())
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
	}

	var res *sim.Result
	if *shards > 1 || *batchWin > 0 {
		res, err = sim.RunSharded(cfg, sim.ShardConfig{
			Shards:      *shards,
			BatchWindow: *batchWin,
			Workers:     *shardWork,
			NewSolver:   newSolver,
		}, tr)
	} else {
		res, err = sim.Run(cfg, tr)
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fatalf("simulate: %v", err)
	}
	if traceFile != nil {
		// A sink write failure means the JSONL stream on disk is silently
		// truncated; surface it rather than shipping a partial trace.
		if err := tracer.Flush(); err != nil {
			fatalf("trace-out: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("trace-out: %v", err)
		}
		if err := tracer.Err(); err != nil {
			fatalf("trace-out: event stream truncated: %v", err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		runtime.GC() // settle the heap so the profile reflects retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("memprofile: %v", err)
		}
	}
	if *metricsOut != "" {
		buf, err := json.MarshalIndent(res.Telemetry, "", "  ")
		if err != nil {
			fatalf("metrics-out: %v", err)
		}
		if err := os.WriteFile(*metricsOut, append(buf, '\n'), 0o644); err != nil {
			fatalf("metrics-out: %v", err)
		}
	}

	if *verbose {
		for _, j := range res.Jobs {
			status := "rejected"
			if j.Accepted {
				status = fmt.Sprintf("finished %.3f", j.FinishTime)
			}
			fmt.Printf("req %3d type %3d arr %9.3f dl %9.3f  %s\n",
				j.ID, j.Type, j.Arrival, j.AbsDeadline, status)
		}
	}
	fmt.Printf("engine:           %s (prediction %v)\n", *engine, *usePred)
	fmt.Printf("platform:         %s\n", plat.Spec())
	if *shards > 1 || *batchWin > 0 {
		fmt.Printf("scale-out:        %d shard(s), batch window %g\n", *shards, *batchWin)
	}
	fmt.Printf("requests:         %d\n", res.Requests)
	fmt.Printf("accepted:         %d\n", res.Accepted)
	fmt.Printf("rejected:         %d (%.2f%%)\n", res.Rejected, res.RejectionPct())
	fmt.Printf("total energy:     %.2f J\n", res.TotalEnergy)
	fmt.Printf("migrations:       %d (%.2f J)\n", res.Migrations, res.MigrationEnergy)
	fmt.Printf("makespan:         %.2f\n", res.MakeSpan)
	fmt.Printf("deadline misses:  %d\n", res.DeadlineMisses)
	if res.Telemetry != nil {
		printReasonLine("admit reasons:    ", res.Telemetry.Counters, "sim.admit_reason.")
		printReasonLine("reject reasons:   ", res.Telemetry.Counters, "sim.reject_reason.")
	}
	if res.Telemetry != nil {
		lat := res.Telemetry.Histograms["sim.solver_seconds"]
		fmt.Printf("solver latency:   p50 %.1f µs, p95 %.1f µs, max %.1f µs (%d activations)\n",
			lat.Quantile(0.50)*1e6, lat.Quantile(0.95)*1e6, lat.Max*1e6, lat.Count)
		c := res.Telemetry.Counters
		if probes := c["exact.cache.hits"] + c["exact.cache.misses"]; probes > 0 {
			fmt.Printf("feascache:        %.1f%% hit rate (%d hits, %d misses)\n",
				100*float64(c["exact.cache.hits"])/float64(probes),
				c["exact.cache.hits"], c["exact.cache.misses"])
		}
		if probes := c["core.cache.hits"] + c["core.cache.misses"]; probes > 0 {
			fmt.Printf("feascache:        %.1f%% hit rate (%d hits, %d misses; heuristic probe cache)\n",
				100*float64(c["core.cache.hits"])/float64(probes),
				c["core.cache.hits"], c["core.cache.misses"])
		}
		if attempts := c["exact.warmstart.attempts"]; attempts > 0 {
			fmt.Printf("warmstart:        %.1f%% seed-feasible (%d/%d repairs), %d bound cuts\n",
				100*float64(c["exact.warmstart.seeded"])/float64(attempts),
				c["exact.warmstart.seeded"], attempts, c["exact.warmstart.bound_cuts"])
		}
	}
	if plane != nil {
		rep := plane.SLO().Report()
		fmt.Printf("slo:              rejection %.1f%% of %.0f%% budget; miss %.2g%% of %.2g%% budget\n",
			100*rep.TotalRejectionRate, 100*rep.RejectionTarget,
			100*rep.TotalMissRate, 100*rep.MissTarget)
		for _, w := range rep.Windows {
			fmt.Printf("slo window %-6g rejection burn %.2f, miss burn %.2f\n",
				w.Window, w.RejectionBurn, w.MissBurn)
		}
	}
	if tracer != nil {
		if n := tracer.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr,
				"rmsim: warning: event ring overflowed, %d event(s) lost from the in-memory buffer (-trace-out streams are unaffected)\n", n)
		}
	}
	if resilient && res.Telemetry != nil {
		c := res.Telemetry.Counters
		fmt.Printf("resilience:       %d fallbacks (%d stage errors, %d budget exhaustions), %d reject-only\n",
			c["resilience.fallbacks"], c["resilience.stage_errors"],
			c["resilience.budget_exhausted"], c["resilience.reject_only"])
		if n := c["faultinject.solver_errors"] + c["faultinject.latency_spikes"] +
			c["faultinject.predictor_outages"] + c["faultinject.predictor_corruptions"]; n > 0 {
			fmt.Printf("faults injected:  %d (%d solver, %d latency, %d outage, %d corrupt)\n", n,
				c["faultinject.solver_errors"], c["faultinject.latency_spikes"],
				c["faultinject.predictor_outages"], c["faultinject.predictor_corruptions"])
		}
	}
	if *showGantt > 0 {
		opening := gantt.Clip(res.Execution, 0, float64(*showGantt))
		if chart, err := gantt.New(plat, opening); err == nil {
			fmt.Printf("\nexecuted schedule, t in [0, %d):\n", *showGantt)
			if err := chart.Render(os.Stdout, 100); err != nil {
				fatalf("render: %v", err)
			}
		}
	}
	if opsSrv != nil {
		if *opsLinger > 0 {
			// Interruptible linger: Ctrl-C must still reach opsSrv.Close so
			// open /trace/tail streams get their clean terminal event
			// instead of dying with the process.
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			fmt.Fprintf(os.Stderr, "rmsim: ops server lingering for %v on %s (Ctrl-C to stop)\n", *opsLinger, opsSrv.URL())
			select {
			case <-time.After(*opsLinger):
			case <-ctx.Done():
				fmt.Fprintln(os.Stderr, "rmsim: interrupted, closing ops server")
			}
			stop()
		}
		if err := opsSrv.Close(); err != nil {
			fatalf("ops-addr: %v", err)
		}
	}
	if res.DeadlineMisses > 0 {
		fatalf("deadline misses detected: resource-manager invariant broken")
	}
}

// validateFlags rejects combinations the simulation would otherwise
// silently misinterpret: prediction-shaping flags are errors without
// -predict (they would be read but have no effect), and workload
// parameters must stay in their meaningful ranges.
func validateFlags(usePred bool, accuracy, timeErr, overhead float64, length, types int, meanIA float64, ganttLen int, group string) {
	if !usePred {
		for _, name := range []string{"accuracy", "time-error", "overhead"} {
			if flagWasSet(name) {
				fatalf("-%s has no effect without -predict", name)
			}
		}
	}
	switch {
	case accuracy < 0 || accuracy > 1:
		fatalf("-accuracy %g outside [0,1]", accuracy)
	case timeErr < 0:
		fatalf("-time-error %g must be non-negative", timeErr)
	case overhead < 0:
		fatalf("-overhead %g must be non-negative", overhead)
	case length <= 0:
		fatalf("-len %d must be positive", length)
	case types <= 0:
		fatalf("-types %d must be positive", types)
	case meanIA <= 0:
		fatalf("-interarrival %g must be positive", meanIA)
	case ganttLen < 0:
		fatalf("-gantt %d must be non-negative", ganttLen)
	}
	switch group {
	case "VT", "vt", "LT", "lt":
	default:
		fatalf("unknown deadline group %q (want VT or LT)", group)
	}
}

// parseBudget reads the -solver-budget syntax: an integer is a node
// budget, a Go duration (5ms, 1s) a wall-clock budget. Empty means no
// bound (the chain still absorbs errors).
func parseBudget(s string) (core.Budget, error) {
	if s == "" {
		return core.Budget{}, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return core.Budget{}, fmt.Errorf("node budget %d must be positive", n)
		}
		return core.Budget{Nodes: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return core.Budget{}, fmt.Errorf("%q is neither a node count nor a duration", s)
	}
	if d <= 0 {
		return core.Budget{}, fmt.Errorf("wall budget %v must be positive", d)
	}
	return core.Budget{Wall: d}, nil
}

// printReasonLine renders one decision-reason histogram ("plain 12,
// prediction_dropped 3") from the counters under prefix, sorted by reason;
// nothing is printed when the histogram is empty.
func printReasonLine(label string, counters map[string]int64, prefix string) {
	var reasons []string
	for name := range counters {
		if strings.HasPrefix(name, prefix) {
			reasons = append(reasons, strings.TrimPrefix(name, prefix))
		}
	}
	if len(reasons) == 0 {
		return
	}
	sort.Strings(reasons)
	parts := make([]string, len(reasons))
	for i, r := range reasons {
		parts[i] = fmt.Sprintf("%s %d", r, counters[prefix+r])
	}
	fmt.Printf("%s%s\n", label, strings.Join(parts, ", "))
}

// flagWasSet reports whether the named flag was given explicitly on the
// command line (flag.Visit only walks flags that were set).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rmsim: "+format+"\n", args...)
	os.Exit(1)
}
