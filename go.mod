module predrm

go 1.22
