// Custom-platform shows the library on a platform the paper never ran:
// a big.LITTLE-style system with two fast cores, four slow cores and two
// accelerators, with a hand-built task set — demonstrating that nothing in
// the resource manager is tied to the 5-CPU+1-GPU evaluation setup.
package main

import (
	"fmt"
	"log"

	"predrm"
)

func main() {
	// 6 preemptable cores + 2 non-preemptable accelerators.
	plat := predrm.NewPlatform(6, 2)
	fmt.Println("platform:", plat)

	// Hand-built task types. Index order: CPU1..CPU6, GPU1, GPU2.
	// "big" cores (CPU1, CPU2) are fast but hungry; "LITTLE" cores
	// (CPU3..CPU6) are slow but frugal; accelerators are fastest and
	// cheapest but non-preemptable — and the DSP kernel (type 2) cannot
	// run on the accelerators at all.
	na := predrm.NotExecutable
	set := &predrm.TaskSet{
		Platform: plat,
		Types: []*predrm.TaskType{
			{ // type 0: vision kernel
				ID:      0,
				WCET:    []float64{20, 20, 44, 44, 44, 44, 6, 6},
				Energy:  []float64{18, 18, 9, 9, 9, 9, 3, 3},
				MigTime: 3, MigEnergy: 1.2,
			},
			{ // type 1: control loop, short everywhere
				ID:      1,
				WCET:    []float64{8, 8, 17, 17, 17, 17, 4, 4},
				Energy:  []float64{7, 7, 3.5, 3.5, 3.5, 3.5, 1.5, 1.5},
				MigTime: 1.5, MigEnergy: 0.6,
			},
			{ // type 2: DSP kernel, CPU only
				ID:      2,
				WCET:    []float64{30, 30, 66, 66, 66, 66, na, na},
				Energy:  []float64{26, 26, 13, 13, 13, 13, na, na},
				MigTime: 4, MigEnergy: 2,
			},
		},
	}
	if err := set.Validate(); err != nil {
		log.Fatal(err)
	}

	// A bursty trace: tight control-loop requests interleaved with heavy
	// vision/DSP work.
	var reqs []predrm.Request
	now := 0.0
	for i := 0; i < 120; i++ {
		ty := i % 3
		deadline := map[int]float64{0: 18, 1: 10, 2: 85}[ty]
		reqs = append(reqs, predrm.Request{Arrival: now, Type: ty, Deadline: deadline})
		if i%3 == 2 {
			now += 4.5 // gap between bursts
		} else {
			now += 1.1
		}
	}
	tr := &predrm.Trace{Requests: reqs}
	if err := tr.Validate(set); err != nil {
		log.Fatal(err)
	}

	for _, engine := range []struct {
		name   string
		solver predrm.Solver
	}{
		{"heuristic", predrm.NewHeuristic()},
		{"exact", predrm.NewOptimal()},
	} {
		for _, withPred := range []bool{false, true} {
			cfg := predrm.SimConfig{Platform: plat, TaskSet: set, Solver: engine.solver}
			if withPred {
				o, err := predrm.NewOracle(tr, predrm.OracleConfig{
					TypeAccuracy: 1, NumTypes: set.Len(), Seed: 5,
				})
				if err != nil {
					log.Fatal(err)
				}
				cfg.Predictor = o
			}
			res, err := predrm.Simulate(cfg, tr)
			if err != nil {
				log.Fatal(err)
			}
			if res.DeadlineMisses > 0 {
				log.Fatalf("deadline misses: %d", res.DeadlineMisses)
			}
			fmt.Printf("%-9s pred=%-5v rejection %5.1f%%  energy %7.1f J  migrations %d\n",
				engine.name, withPred, res.RejectionPct(), res.TotalEnergy, res.Migrations)
		}
	}
}
