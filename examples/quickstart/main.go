// Quickstart: generate a workload, run the prediction-aware resource
// manager with and without a perfect predictor, and compare outcomes.
package main

import (
	"fmt"
	"log"

	"predrm"
)

func main() {
	// The paper's evaluation platform: five CPUs and one GPU.
	plat := predrm.DefaultPlatform()
	fmt.Println("platform:", plat)

	// 100 synthetic task types (Sec 5.1 parameters), deterministic in the
	// seed.
	set, err := predrm.GenerateTaskSet(plat, predrm.DefaultTaskGenConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}

	// A very-tight-deadline trace at a load where the platform has to
	// reject some requests.
	tcfg := predrm.DefaultTraceGenConfig(predrm.VeryTight)
	tcfg.Length = 300
	tcfg.InterarrivalMean = 2.5
	tcfg.InterarrivalStd = 0.8
	tr, err := predrm.GenerateTrace(set, tcfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d requests, mean interarrival %.2f\n\n", tr.Len(), tr.MeanInterarrival())

	// Without prediction.
	base := predrm.SimConfig{Platform: plat, TaskSet: set, Solver: predrm.NewHeuristic()}
	off, err := predrm.Simulate(base, tr)
	if err != nil {
		log.Fatal(err)
	}

	// With a perfect next-request oracle (the paper's "predictor on").
	oracle, err := predrm.NewOracle(tr, predrm.OracleConfig{
		TypeAccuracy: 1,
		NumTypes:     set.Len(),
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	withPred := base
	withPred.Predictor = oracle
	on, err := predrm.Simulate(withPred, tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "predictor off", "predictor on")
	fmt.Printf("%-22s %12.2f%% %12.2f%%\n", "rejection", off.RejectionPct(), on.RejectionPct())
	fmt.Printf("%-22s %12.1f %12.1f\n", "total energy (J)", off.TotalEnergy, on.TotalEnergy)
	fmt.Printf("%-22s %12d %12d\n", "migrations", off.Migrations, on.Migrations)
	fmt.Printf("%-22s %12d %12d\n", "deadline misses", off.DeadlineMisses, on.DeadlineMisses)

	if off.DeadlineMisses != 0 || on.DeadlineMisses != 0 {
		log.Fatal("resource-manager invariant broken: accepted job missed its deadline")
	}
}
