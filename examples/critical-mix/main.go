// Critical-mix demonstrates the paper's Sec 2 mixed-criticality setup: a
// design-time-allocated hard real-time workload (control loop + sensor
// fusion, statically mapped to CPUs) running underneath the adaptive
// prediction-based resource manager, which serves a fluctuating request
// stream on the remaining capacity. It finishes with a Gantt chart of the
// opening of the executed schedule.
package main

import (
	"fmt"
	"log"
	"os"

	"predrm"
)

func main() {
	plat := predrm.DefaultPlatform()
	set, err := predrm.GenerateTaskSet(plat, predrm.DefaultTaskGenConfig(), 11)
	if err != nil {
		log.Fatal(err)
	}

	// The safety-critical workload: decided at design time, guaranteed at
	// runtime. Density: CPU1 30%, CPU2 20%.
	crit := &predrm.CriticalSet{Tasks: []*predrm.CriticalTask{
		{ID: 0, Name: "control-loop", Resource: 0, Period: 10, WCET: 3, Energy: 1.2, Deadline: 6},
		{ID: 1, Name: "sensor-fusion", Resource: 1, Period: 25, Offset: 4, WCET: 5, Energy: 2.0, Deadline: 20},
	}}

	tcfg := predrm.DefaultTraceGenConfig(predrm.VeryTight)
	tcfg.Length = 200
	tcfg.InterarrivalMean = 2.6
	tcfg.InterarrivalStd = 0.8
	tr, err := predrm.GenerateTrace(set, tcfg, 12)
	if err != nil {
		log.Fatal(err)
	}

	oracle, err := predrm.NewOracle(tr, predrm.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	for _, withCritical := range []bool{false, true} {
		cfg := predrm.SimConfig{
			Platform:        plat,
			TaskSet:         set,
			Solver:          predrm.NewHeuristic(),
			Predictor:       oracle,
			RecordExecution: withCritical,
		}
		label := "adaptive only     "
		if withCritical {
			cfg.Critical = crit
			label = "with critical load"
		}
		res, err := predrm.Simulate(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		if res.DeadlineMisses > 0 || res.CriticalMisses > 0 {
			log.Fatalf("deadline misses: %d adaptive, %d critical", res.DeadlineMisses, res.CriticalMisses)
		}
		fmt.Printf("%s  rejection %6.2f%%  adaptive energy %7.1f J  critical jobs %3d (%.1f J, 0 misses)\n",
			label, res.RejectionPct(), res.TotalEnergy, res.CriticalJobs, res.CriticalEnergy)

		if withCritical {
			// Render the first 60 time units of the executed schedule.
			var opening []predrm.ExecSegment
			for _, s := range res.Execution {
				if s.Start < 60 {
					if s.End > 60 {
						s.End = 60
					}
					opening = append(opening, s)
				}
			}
			chart, err := predrm.NewGantt(plat, opening)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("\nexecuted schedule, t in [0, 60) (critical jobs have negative ids):")
			if err := chart.Render(os.Stdout, 100); err != nil {
				log.Fatal(err)
			}
			u := chart.Utilization()
			fmt.Print("utilization:")
			for i, v := range u {
				fmt.Printf(" %s %.0f%%", plat.Resource(i).Name, 100*v)
			}
			fmt.Println()
		}
	}
}
