// Accuracy-sweep reproduces the question behind the paper's Fig 4: how
// accurate does prediction have to be before it helps rather than harms?
// It sweeps the oracle's task-type accuracy and arrival-time error over a
// shared set of very-tight-deadline traces and prints rejection rates
// against the predictor-off baseline.
package main

import (
	"fmt"
	"log"

	"predrm"
)

const (
	numTraces = 6
	traceLen  = 150
)

func main() {
	plat := predrm.DefaultPlatform()
	set, err := predrm.GenerateTaskSet(plat, predrm.DefaultTaskGenConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := predrm.DefaultTraceGenConfig(predrm.VeryTight)
	tcfg.Length = traceLen
	tcfg.InterarrivalMean = 2.2
	tcfg.InterarrivalStd = 0.7

	traces := make([]*predrm.Trace, numTraces)
	for i := range traces {
		tr, err := predrm.GenerateTrace(set, tcfg, 100+uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		traces[i] = tr
	}

	run := func(mk func(tr *predrm.Trace, seed uint64) (predrm.Predictor, error)) float64 {
		var rej float64
		for i, tr := range traces {
			cfg := predrm.SimConfig{Platform: plat, TaskSet: set, Solver: predrm.NewHeuristic()}
			if mk != nil {
				p, err := mk(tr, uint64(i))
				if err != nil {
					log.Fatal(err)
				}
				cfg.Predictor = p
			}
			res, err := predrm.Simulate(cfg, tr)
			if err != nil {
				log.Fatal(err)
			}
			if res.DeadlineMisses > 0 {
				log.Fatalf("deadline misses: %d", res.DeadlineMisses)
			}
			rej += res.RejectionPct()
		}
		return rej / numTraces
	}

	off := run(nil)
	fmt.Printf("predictor off:           rejection %6.2f%%\n\n", off)

	fmt.Println("task-type accuracy sweep (arrival time exact):")
	for _, acc := range []float64{0.25, 0.5, 0.75, 1.0} {
		rej := run(func(tr *predrm.Trace, seed uint64) (predrm.Predictor, error) {
			return predrm.NewOracle(tr, predrm.OracleConfig{
				TypeAccuracy: acc, NumTypes: set.Len(), Seed: seed,
			})
		})
		fmt.Printf("  accuracy %.2f: rejection %6.2f%%  (vs off: %+.2fpp)\n", acc, rej, rej-off)
	}

	fmt.Println("\narrival-time accuracy sweep (task type exact):")
	for _, acc := range []float64{0.25, 0.5, 0.75, 1.0} {
		rej := run(func(tr *predrm.Trace, seed uint64) (predrm.Predictor, error) {
			return predrm.NewOracle(tr, predrm.OracleConfig{
				TypeAccuracy: 1, TimeError: 1 - acc, NumTypes: set.Len(), Seed: seed,
			})
		})
		fmt.Printf("  accuracy %.2f: rejection %6.2f%%  (vs off: %+.2fpp)\n", acc, rej, rej-off)
	}

	fmt.Println("\nonline predictors (no oracle):")
	for _, variant := range []struct {
		name string
		mk   func() (predrm.Predictor, error)
	}{
		{"markov + EWMA", func() (predrm.Predictor, error) {
			return predrm.NewMarkov(set.Len(), predrm.NewEWMA(0.2), 0)
		}},
		{"markov + two-phase", func() (predrm.Predictor, error) {
			return predrm.NewMarkov(set.Len(), predrm.NewTwoPhase(0.3), 0)
		}},
	} {
		rej := run(func(*predrm.Trace, uint64) (predrm.Predictor, error) { return variant.mk() })
		fmt.Printf("  %-18s rejection %6.2f%%  (vs off: %+.2fpp)\n", variant.name, rej, rej-off)
	}
}
