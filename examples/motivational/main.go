// Motivational replays the paper's Sec 3 example (Table 1, Fig 1) step by
// step: two CPUs + one GPU, tasks τ1 and τ2, and the difference between a
// resource manager that only sees the current state and one that also sees
// a prediction of τ2's arrival.
package main

import (
	"fmt"
	"log"

	"predrm"
)

func main() {
	set := predrm.MotivationalTaskSet()
	plat := set.Platform
	fmt.Println("platform:", plat)
	fmt.Println("tasks (Table 1):")
	for _, ty := range set.Types {
		fmt.Printf("  tau%d: WCET %v  energy %v\n", ty.ID+1, ty.WCET, ty.Energy)
	}
	fmt.Println()

	solver := predrm.NewOptimal()

	// --- Scenario (a): no prediction -----------------------------------
	// t=0: τ1 (deadline 8) arrives alone; minimum energy puts it on the GPU.
	j1 := predrm.NewJob(0, set.Type(0), 0, 8)
	p0 := &predrm.Problem{Platform: plat, Time: 0, Jobs: []*predrm.Job{j1}}
	d0, ok := predrm.Admit(solver, p0)
	if !ok {
		log.Fatal("τ1 rejected at t=0")
	}
	fmt.Printf("scenario (a) t=0: τ1 -> %s (energy %.1f J)\n",
		plat.Resource(d0.Mapping[0]).Name, d0.Energy)

	// t=1: τ1 has run 1 of its 5 GPU-ms; τ2 (deadline 5) arrives. The GPU
	// is non-preemptable, so τ1 is pinned and τ2 cannot make its deadline
	// anywhere.
	j1.Resource = d0.Mapping[0]
	j1.Started = true
	j1.ExecRes = j1.Resource
	j1.Frac = 1 - 1.0/5
	j2 := predrm.NewJob(1, set.Type(1), 1, 5)
	p1 := &predrm.Problem{Platform: plat, Time: 1, Jobs: []*predrm.Job{j1, j2}}
	if _, ok := predrm.Admit(solver, p1); ok {
		log.Fatal("unexpected: τ2 admitted in scenario (a)")
	}
	fmt.Println("scenario (a) t=1: τ2 REJECTED — acceptance 1/2 (matches the paper)")
	fmt.Println()

	// --- Scenario (b): with prediction ---------------------------------
	// t=0: the RM also sees the predicted τ2 (arrival 1, deadline 5) and
	// reserves the GPU for it, steering τ1 to CPU1.
	j1b := predrm.NewJob(0, set.Type(0), 0, 8)
	jp := predrm.NewJob(1, set.Type(1), 1, 5)
	jp.Predicted = true
	pb := &predrm.Problem{Platform: plat, Time: 0, Jobs: []*predrm.Job{j1b, jp}}
	db, ok := predrm.Admit(solver, pb)
	if !ok {
		log.Fatal("scenario (b) rejected")
	}
	fmt.Printf("scenario (b) t=0: τ1 -> %s, predicted τ2 -> %s (planned energy %.1f J)\n",
		plat.Resource(db.Mapping[0]).Name, plat.Resource(db.Mapping[1]).Name, db.Energy)
	fmt.Println("scenario (b): both tasks meet their deadlines — acceptance 2/2")
	fmt.Println()

	// --- The inaccuracy discussion -------------------------------------
	// If τ2 in fact arrives at t=3, the no-prediction RM would have
	// serialised both on the GPU for far less energy (3.5 J in the paper):
	// the cost of planning around a prediction that was wrong.
	j1c := predrm.NewJob(0, set.Type(0), 0, 8)
	j1c.Resource = 2
	j1c.Started = true
	j1c.ExecRes = 2
	j1c.Frac = 1 - 3.0/5
	j2c := predrm.NewJob(1, set.Type(1), 3, 5)
	pc := &predrm.Problem{Platform: plat, Time: 3, Jobs: []*predrm.Job{j1c, j2c}}
	dc, ok := predrm.Admit(solver, pc)
	if !ok {
		log.Fatal("late-arrival scenario rejected")
	}
	total := 2.0 + 1.5 // τ1 full GPU energy + τ2 GPU energy
	fmt.Printf("late arrival (t=3), no prediction: τ2 -> %s behind τ1; total GPU energy %.1f J\n",
		plat.Resource(dc.Mapping[1]).Name, total)
	fmt.Printf("with the (wrong) prediction the plan had cost 8.8 J: inaccurate prediction can do harm.\n")
}
