// Package milpform encodes the paper's MILP formulation (Sec 4.2) on top
// of this repository's own LP/branch-and-bound stack (internal/lp,
// internal/milp) and exposes it as a core.Solver.
//
// Encoding summary (big-M method, as in the paper):
//
//   - binaries x_{j,i} per (job, executable resource); resources on which
//     constraint (2) — cpm_{j,i} ≤ t_left_j — fails are eliminated up
//     front, and pinned jobs have their x fixed;
//   - constraint (1): Σ_i x_{j,i} = 1;
//   - constraint (3): cumulative EDF demand per resource over the
//     deadline-sorted task list (valid for every task whether or not it is
//     mapped there — the mapped predecessor's constraint dominates). On
//     non-preemptable resources a pinned occupant is ordered first;
//   - constraints (4)-(5): the predicted task starts no earlier than
//     max(s_p, end of earlier-deadline work);
//   - constraints (6)-(14): instead of the paper's chunk variables, the
//     planned preemption is encoded with indicator binaries: an SL2 task j
//     mapped with τ_p on resource i is delayed by the full cp_{p,i} iff
//     τ_p arrives before j's undelayed completion. This is the closed form
//     of the two-chunk split and is linear after one product
//     linearisation (w ≥ x_{p,i} + z_{j,i} − 1).
//
// Limitations, stated plainly: like the paper's own constraint set, the
// closed-form preemption encoding covers preemptable resources; this
// package therefore never maps the predicted task to a non-preemptable
// resource. A problem with several predicted jobs (the lookahead
// extension) only encodes the first; and future-released Fixed jobs
// (upcoming critical releases) are treated as ready now, which is
// conservative — the formulation may reject a schedulable instance but
// never accepts an unschedulable one. The combinatorial optimum in
// internal/exact has none of these restrictions and is what the
// experiments use; this package exists to reproduce the paper's
// formulation faithfully and to cross-validate the two solvers (see
// milpform_test.go).
package milpform

import (
	"math"
	"sort"

	"predrm/internal/core"
	"predrm/internal/lp"
	"predrm/internal/milp"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
)

// bigMFor returns a problem-scaled big-M: the total possible demand plus
// the decision window safely dominates every time expression in the
// formulation, and a tight M keeps the LP relaxation strong (a huge
// constant makes the branch-and-bound tree explode).
func bigMFor(p *sched.Problem) float64 {
	m := p.Window() + 1
	for _, j := range p.Jobs {
		worst := 0.0
		for i := 0; i < p.Platform.Len(); i++ {
			cpm := j.CPM(i, p.Policy)
			if cpm != task.NotExecutable && cpm > worst {
				worst = cpm
			}
		}
		m += worst
		if j.Predicted {
			m += math.Max(j.Arrival-p.Time, 0)
		}
	}
	return m
}

// Solver solves RM activations through the literal MILP formulation.
// The zero value is ready to use. Not safe for concurrent use.
type Solver struct {
	// MaxNodes caps the branch-and-bound tree (0 = milp.DefaultMaxNodes).
	MaxNodes int
	// LastStatus reports the most recent MILP outcome.
	LastStatus milp.Status

	// Telemetry (nil-safe no-ops until AttachMetrics). The registry is
	// also handed to the underlying branch and bound via milp.Options.
	metrics              *telemetry.Registry
	mSolves, mInfeasible *telemetry.Counter
	mVars                *telemetry.Histogram
}

var _ core.Solver = (*Solver)(nil)
var _ telemetry.Instrumentable = (*Solver)(nil)

// AttachMetrics registers the solver's instruments on reg: counters
// milpform.solves and milpform.infeasible, histogram milpform.vars (MILP
// columns per activation), plus the underlying milp.solves/milp.nodes/
// milp.truncated counters recorded by internal/milp.
func (s *Solver) AttachMetrics(reg *telemetry.Registry) {
	s.metrics = reg
	s.mSolves = reg.Counter("milpform.solves")
	s.mInfeasible = reg.Counter("milpform.infeasible")
	s.mVars = reg.Histogram("milpform.vars", telemetry.NodeBuckets)
}

// model is the variable bookkeeping for one activation.
type model struct {
	p    *sched.Problem
	prob milp.Problem
	// xIdx[j][i] is the column of x_{j,i}, or -1 when eliminated.
	xIdx [][]int
	next int
}

func (m *model) newVar(cost float64) int {
	idx := m.next
	m.next++
	m.prob.NumVars = m.next
	for len(m.prob.Objective) < m.next {
		m.prob.Objective = append(m.prob.Objective, 0)
	}
	m.prob.Objective[idx] = cost
	return idx
}

func (m *model) addConstraint(coeffs map[int]float64, sense lp.Sense, rhs float64) {
	maxIdx := -1
	for j := range coeffs {
		if j > maxIdx {
			maxIdx = j
		}
	}
	row := make([]float64, maxIdx+1)
	for j, v := range coeffs {
		row[j] = v
	}
	m.prob.Constraints = append(m.prob.Constraints, lp.Constraint{Coeffs: row, Sense: sense, RHS: rhs})
}

// Solve maps all jobs of the problem by solving the Sec 4.2 MILP.
func (s *Solver) Solve(p *sched.Problem) core.Decision {
	s.mSolves.Inc()
	infeasible := func() core.Decision {
		s.mInfeasible.Inc()
		mapping := make([]int, len(p.Jobs))
		for i := range mapping {
			mapping[i] = sched.Unmapped
		}
		return core.Decision{Mapping: mapping, Feasible: false}
	}

	if len(p.Jobs) == 0 {
		return core.Decision{Feasible: true}
	}

	m := &model{p: p}
	n := p.Platform.Len()
	m.xIdx = make([][]int, len(p.Jobs))

	// Variables x_{j,i} with up-front elimination.
	var binaries []int
	for j, job := range p.Jobs {
		m.xIdx[j] = make([]int, n)
		any := false
		for i := 0; i < n; i++ {
			m.xIdx[j][i] = -1
			cpm := job.CPM(i, p.Policy)
			if cpm == task.NotExecutable {
				continue
			}
			// Constraint (2): x_{j,i}·cpm ≤ t_left as elimination.
			if cpm > job.AbsDeadline-math.Max(job.Arrival, p.Time)+sched.Eps {
				continue
			}
			if (job.Fixed || job.Pinned(p.Platform)) && i != job.Resource {
				continue
			}
			if job.Predicted && !p.Platform.Resource(i).Preemptable() {
				continue // see package comment
			}
			idx := m.newVar(job.EPM(i, p.Policy))
			m.xIdx[j][i] = idx
			binaries = append(binaries, idx)
			any = true
		}
		if !any {
			return infeasible()
		}
	}

	// Constraint (1): each job on exactly one resource.
	for j := range p.Jobs {
		coeffs := map[int]float64{}
		for i := 0; i < n; i++ {
			if m.xIdx[j][i] >= 0 {
				coeffs[m.xIdx[j][i]] = 1
			}
		}
		m.addConstraint(coeffs, lp.EQ, 1)
	}

	predIdx := p.PredIndex()

	// Deadline-sorted real-job order per resource; pinned occupants first
	// on non-preemptable resources (they cannot be overtaken).
	realJobs := make([]int, 0, len(p.Jobs))
	for j := range p.Jobs {
		if j != predIdx {
			realJobs = append(realJobs, j)
		}
	}
	orderFor := func(resource int) []int {
		order := append([]int(nil), realJobs...)
		preemptable := p.Platform.Resource(resource).Preemptable()
		sort.SliceStable(order, func(a, b int) bool {
			ja, jb := p.Jobs[order[a]], p.Jobs[order[b]]
			if !preemptable {
				pa := ja.Pinned(p.Platform) && ja.Resource == resource
				pb := jb.Pinned(p.Platform) && jb.Resource == resource
				if pa != pb {
					return pa
				}
			}
			return ja.AbsDeadline < jb.AbsDeadline
		})
		return order
	}

	// Constraint (3)/(6): cumulative EDF demand.
	for i := 0; i < n; i++ {
		order := orderFor(i)
		for pos, j := range order {
			// The constraint is valid (and merely redundant) even when j
			// itself cannot map to i: the last mapped predecessor's
			// constraint dominates it.
			coeffs := map[int]float64{}
			for _, k := range order[:pos+1] {
				if idx := m.xIdx[k][i]; idx >= 0 {
					coeffs[idx] = p.Jobs[k].CPM(i, p.Policy)
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			m.addConstraint(coeffs, lp.LE, p.Jobs[j].TimeLeft(p.Time))
		}
	}

	// Predicted-task constraints.
	if predIdx >= 0 {
		bigM := bigMFor(p)
		pred := p.Jobs[predIdx]
		sp := math.Max(pred.Arrival, p.Time)
		for i := 0; i < n; i++ {
			xp := m.xIdx[predIdx][i]
			if xp < 0 {
				continue
			}
			cpp := pred.CPM(i, p.Policy)
			// (5): s_p + cp_p ≤ D_p when mapped to i.
			if sp+cpp > pred.AbsDeadline+sched.Eps {
				// Unsatisfiable for this resource: eliminate.
				m.addConstraint(map[int]float64{xp: 1}, lp.EQ, 0)
				continue
			}
			// (4): work of earlier-or-equal-deadline (SL1) jobs on i
			// precedes τ_p: t + W_SL1 + cp_p ≤ D_p + M(1−x_p).
			coeffs := map[int]float64{xp: cpp + bigM}
			for _, j := range realJobs {
				if p.Jobs[j].AbsDeadline <= pred.AbsDeadline+sched.Eps {
					if idx := m.xIdx[j][i]; idx >= 0 {
						coeffs[idx] = p.Jobs[j].CPM(i, p.Policy)
					}
				}
			}
			m.addConstraint(coeffs, lp.LE, pred.TimeLeft(p.Time)+bigM)

			// (8)-(14) closed form: every later-deadline (SL2) job j on i
			// is delayed by cp_p iff τ_p arrives before j's undelayed
			// completion C_j0 = t + W_{≤j,i}.
			order := orderFor(i)
			for pos, j := range order {
				if p.Jobs[j].AbsDeadline <= pred.AbsDeadline+sched.Eps {
					continue
				}
				xj := m.xIdx[j][i]
				if xj < 0 {
					continue
				}
				z := m.newVar(0)
				w := m.newVar(0)
				binaries = append(binaries, z, w)
				// Forcing z: C_j0 − s_p ≤ M·z + M(1−x_j).
				cum := map[int]float64{}
				for _, k := range order[:pos+1] {
					if idx := m.xIdx[k][i]; idx >= 0 {
						cum[idx] = p.Jobs[k].CPM(i, p.Policy)
					}
				}
				force := cloneCoeffs(cum)
				force[z] = -bigM
				force[xj] += bigM
				m.addConstraint(force, lp.LE, sp-p.Time+bigM)
				// Linearised product: w ≥ x_p + z − 1.
				m.addConstraint(map[int]float64{w: 1, xp: -1, z: -1}, lp.GE, -1)
				// Deadline with delay: C_j0 + cp_p·w ≤ D_j + M(1−x_j).
				dl := cloneCoeffs(cum)
				dl[w] = cpp
				dl[xj] += bigM
				m.addConstraint(dl, lp.LE, p.Jobs[j].TimeLeft(p.Time)+bigM)
			}
		}
	}

	m.prob.Integer = make([]bool, m.prob.NumVars)
	for _, b := range binaries {
		m.prob.Integer[b] = true
		m.addConstraint(map[int]float64{b: 1}, lp.LE, 1)
	}

	// Objective cutoff: Algorithm 1's solution is an upper bound on the
	// optimum (the MILP dominates the heuristic), which prunes the
	// branch-and-bound tree dramatically without affecting optimality.
	if h := (&core.Heuristic{}).Solve(p); h.Feasible {
		coeffs := map[int]float64{}
		for j := range p.Jobs {
			for i := 0; i < n; i++ {
				if idx := m.xIdx[j][i]; idx >= 0 {
					coeffs[idx] = p.Jobs[j].EPM(i, p.Policy)
				}
			}
		}
		m.addConstraint(coeffs, lp.LE, h.Energy+1e-7)
	}

	s.mVars.Observe(float64(m.prob.NumVars))
	sol, err := milp.Solve(&m.prob, milp.Options{MaxNodes: s.MaxNodes, Metrics: s.metrics})
	if err != nil {
		s.LastStatus = milp.Infeasible
		return infeasible()
	}
	s.LastStatus = sol.Status
	if !sol.HasIncumbent {
		return infeasible()
	}
	mapping := make([]int, len(p.Jobs))
	for j := range p.Jobs {
		mapping[j] = sched.Unmapped
		for i := 0; i < n; i++ {
			if idx := m.xIdx[j][i]; idx >= 0 && sol.X[idx] > 0.5 {
				mapping[j] = i
				break
			}
		}
		if mapping[j] == sched.Unmapped {
			return infeasible()
		}
	}
	return core.Decision{Mapping: mapping, Feasible: true, Energy: p.Energy(mapping)}
}

func cloneCoeffs(c map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(c)+2)
	for k, v := range c {
		out[k] = v
	}
	return out
}
