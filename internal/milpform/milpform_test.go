package milpform

import (
	"math"
	"testing"

	"predrm/internal/exact"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// cpuOnlyPredSet returns a task set where every type is also GPU-capable
// except the types reserved for predicted jobs — used so the MILP's
// "no predicted task on non-preemptable resources" restriction matches the
// reference solver exactly.
func barGPUs(ty *task.Type, plat *platform.Platform) *task.Type {
	clone := &task.Type{
		ID:        ty.ID,
		WCET:      append([]float64(nil), ty.WCET...),
		Energy:    append([]float64(nil), ty.Energy...),
		MigTime:   ty.MigTime,
		MigEnergy: ty.MigEnergy,
	}
	for i := 0; i < plat.Len(); i++ {
		if !plat.Resource(i).Preemptable() {
			clone.WCET[i] = task.NotExecutable
			clone.Energy[i] = task.NotExecutable
		}
	}
	return clone
}

func randomProblem(r *rng.Rand, plat *platform.Platform, set *task.Set, withPred bool) *sched.Problem {
	now := r.Uniform(0, 40)
	n := 1 + r.Intn(3)
	jobs := make([]*sched.Job, 0, n+1)
	for i := 0; i < n; i++ {
		ty := set.Type(r.Intn(set.Len()))
		arr := now - r.Uniform(0, 10)
		j := sched.NewJob(i, ty, arr, r.Uniform(15, 150))
		if j.AbsDeadline <= now {
			j.AbsDeadline = now + r.Uniform(3, 80)
		}
		if r.Float64() < 0.5 {
			j.Resource = r.Intn(plat.Len())
			if r.Float64() < 0.5 {
				j.Started = true
				j.ExecRes = j.Resource
				j.Frac = r.Uniform(0.2, 1)
			}
		}
		jobs = append(jobs, j)
	}
	if withPred {
		ty := barGPUs(set.Type(r.Intn(set.Len())), plat)
		jp := sched.NewJob(n, ty, now+r.Uniform(0, 4), r.Uniform(15, 150))
		jp.Predicted = true
		jobs = append(jobs, jp)
	}
	return &sched.Problem{Platform: plat, Time: now, Jobs: jobs}
}

// crossValidate compares the MILP formulation against internal/exact on
// randomized instances: identical feasibility verdicts and optimal energy.
func crossValidate(t *testing.T, plat *platform.Platform, withPred bool, trials int, seed uint64) {
	t.Helper()
	cfg := task.DefaultGenConfig()
	cfg.NumTypes = 30
	set, err := task.Generate(plat, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 1000)
	ms := &Solver{}
	ref := &exact.Optimal{}
	feasibleSeen := 0
	for trial := 0; trial < trials; trial++ {
		p := randomProblem(r, plat, set, withPred)
		md := ms.Solve(p)
		rd := ref.Solve(p)
		if md.Feasible != rd.Feasible {
			t.Fatalf("trial %d (pred=%v): milp feasible=%v, exact=%v\njobs=%v",
				trial, withPred, md.Feasible, rd.Feasible, p.Jobs)
		}
		if !md.Feasible {
			continue
		}
		feasibleSeen++
		if !p.FeasibleMapping(md.Mapping) {
			t.Fatalf("trial %d: MILP mapping %v fails the EDF check", trial, md.Mapping)
		}
		if math.Abs(md.Energy-rd.Energy) > 1e-5 {
			t.Fatalf("trial %d: MILP energy %v != exact %v (mappings %v vs %v)",
				trial, md.Energy, rd.Energy, md.Mapping, rd.Mapping)
		}
	}
	if feasibleSeen < trials/5 {
		t.Fatalf("only %d/%d feasible instances; generator too harsh", feasibleSeen, trials)
	}
}

func TestCrossValidateNoPredictionMixedPlatform(t *testing.T) {
	crossValidate(t, platform.Motivational(), false, 120, 3)
}

func TestCrossValidateNoPredictionCPUOnly(t *testing.T) {
	crossValidate(t, platform.New(3, 0), false, 120, 5)
}

func TestCrossValidateWithPredictionCPUOnly(t *testing.T) {
	crossValidate(t, platform.New(3, 0), true, 120, 7)
}

func TestCrossValidateWithPredictionMixedPlatform(t *testing.T) {
	// Predicted types are barred from the GPU in both solvers (see
	// barGPUs), so the comparison is apples to apples.
	crossValidate(t, platform.Motivational(), true, 120, 9)
}

func TestMotivationalScenarioB(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 8)
	jp := sched.NewJob(1, barGPUs(ts.Type(1), plat), 1, 5)
	jp.Predicted = true
	// With the GPU barred for τ_p, the best plan is τ_p on CPU1
	// (6.2 J, fits 1..8? WCET 7 > deadline 5+1−1... τ_p needs CPU1 7ms in
	// [1,6]: infeasible; CPU2 8.5ms: infeasible) — so the joint problem is
	// infeasible and Solve must say so.
	p := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j1, jp}}
	if d := (&Solver{}).Solve(p); d.Feasible {
		t.Fatalf("CPU-only τ_p cannot meet its deadline, got %v", d.Mapping)
	}
	// Without prediction the MILP maps τ1 to the GPU.
	q := p.WithoutPred()
	d := (&Solver{}).Solve(q)
	if !d.Feasible || d.Mapping[0] != 2 {
		t.Fatalf("no-pred solve: %+v", d)
	}
	if math.Abs(d.Energy-2) > 1e-9 {
		t.Fatalf("energy %v, want 2", d.Energy)
	}
}

func TestPredictedPreemptionPlanned(t *testing.T) {
	// One CPU, one real job with a loose deadline, a predicted job with a
	// tight deadline arriving mid-execution: the formulation must accept
	// (preemptive EDF) and account for the full delay of the real job.
	plat := platform.New(1, 0)
	ty := &task.Type{ID: 0, WCET: []float64{10}, Energy: []float64{5}}
	tyP := &task.Type{ID: 1, WCET: []float64{3}, Energy: []float64{2}}
	j := sched.NewJob(0, ty, 0, 14) // needs 10 by 14: 4 slack
	jp := sched.NewJob(1, tyP, 4, 5)
	jp.Predicted = true
	p := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j, jp}}
	d := (&Solver{}).Solve(p)
	if !d.Feasible {
		t.Fatal("preemption plan must be feasible: j runs 0-4 and 7-13, τ_p 4-7")
	}
	// Tighten the real deadline below 13: must become infeasible.
	j2 := sched.NewJob(0, ty, 0, 12.5)
	p2 := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j2, jp}}
	if d := (&Solver{}).Solve(p2); d.Feasible {
		t.Fatal("delay through planned preemption not accounted for")
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &sched.Problem{Platform: platform.Default(), Time: 0}
	if d := (&Solver{}).Solve(p); !d.Feasible {
		t.Fatal("empty problem must be feasible")
	}
}

func TestHopelessJob(t *testing.T) {
	ts := task.Motivational()
	j := sched.NewJob(0, ts.Type(0), 0, 1) // deadline below every WCET
	p := &sched.Problem{Platform: platform.Motivational(), Time: 0, Jobs: []*sched.Job{j}}
	if d := (&Solver{}).Solve(p); d.Feasible {
		t.Fatal("hopeless job accepted")
	}
}
