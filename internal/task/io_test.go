package task

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
)

func TestSetJSONRoundTrip(t *testing.T) {
	s, err := Generate(platform.Default(), DefaultGenConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform.NumCPUs() != 5 || got.Platform.NumGPUs() != 1 {
		t.Fatalf("platform shape lost: %v", got.Platform)
	}
	for i := range s.Types {
		if !reflect.DeepEqual(s.Types[i], got.Types[i]) {
			t.Fatalf("type %d changed in round trip:\n%+v\n%+v", i, s.Types[i], got.Types[i])
		}
	}
}

func TestSetJSONNotExecutableRoundTrip(t *testing.T) {
	s := &Set{
		Platform: platform.New(1, 1),
		Types: []*Type{{
			ID:     0,
			WCET:   []float64{4, NotExecutable},
			Energy: []float64{2, NotExecutable},
		}},
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "null") {
		t.Fatal("NotExecutable not encoded as null")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Types[0].WCET[1] != NotExecutable || got.Types[0].Energy[1] != NotExecutable {
		t.Fatal("NotExecutable lost in round trip")
	}
}

func TestSetFileRoundTrip(t *testing.T) {
	s := Motivational()
	path := filepath.Join(t.TempDir(), "set.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Types[0].WCET[2] != 5 {
		t.Fatalf("file round trip wrong: %+v", got.Types)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"cpus":0,"gpus":0,"types":[]}`,
		`{"cpus":1,"gpus":0,"types":[]}`, // empty set fails Validate
		`{"cpus":1,"gpus":0,"types":[{"id":0,"wcet":[null],"energy":[null]}]}`,
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: Read accepted %q", i, c)
		}
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("ReadFile accepted missing file")
	}
}

func TestWriteRejectsInvalidSet(t *testing.T) {
	s := &Set{Platform: platform.Default()}
	var buf bytes.Buffer
	if err := s.Write(&buf); err == nil {
		t.Fatal("Write accepted empty set")
	}
}
