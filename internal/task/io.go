package task

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"predrm/internal/platform"
)

// setJSON is the serialised form of a Set. Executability is encoded by
// substituting nulls for NotExecutable (MaxFloat64 does not round-trip
// through JSON).
type setJSON struct {
	CPUs  int        `json:"cpus"`
	GPUs  int        `json:"gpus"`
	Types []typeJSON `json:"types"`
}

type typeJSON struct {
	ID        int        `json:"id"`
	WCET      []*float64 `json:"wcet"`
	Energy    []*float64 `json:"energy"`
	MigTime   float64    `json:"migTime"`
	MigEnergy float64    `json:"migEnergy"`
}

func encodeVals(vals []float64) []*float64 {
	out := make([]*float64, len(vals))
	for i, v := range vals {
		if v != NotExecutable {
			v := v
			out[i] = &v
		}
	}
	return out
}

func decodeVals(vals []*float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v == nil {
			out[i] = NotExecutable
		} else {
			out[i] = *v
		}
	}
	return out
}

// Write serialises the set (platform shape and all types) as JSON.
func (s *Set) Write(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	doc := setJSON{CPUs: s.Platform.NumCPUs(), GPUs: s.Platform.NumGPUs()}
	for _, ty := range s.Types {
		doc.Types = append(doc.Types, typeJSON{
			ID:        ty.ID,
			WCET:      encodeVals(ty.WCET),
			Energy:    encodeVals(ty.Energy),
			MigTime:   ty.MigTime,
			MigEnergy: ty.MigEnergy,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("task: encode: %w", err)
	}
	return nil
}

// Read parses a JSON task set and validates it.
func Read(r io.Reader) (*Set, error) {
	var doc setJSON
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("task: decode: %w", err)
	}
	if doc.CPUs < 0 || doc.GPUs < 0 || doc.CPUs+doc.GPUs == 0 {
		return nil, fmt.Errorf("task: invalid platform shape %d CPUs + %d GPUs", doc.CPUs, doc.GPUs)
	}
	s := &Set{Platform: platform.New(doc.CPUs, doc.GPUs)}
	for _, tj := range doc.Types {
		for _, v := range append(append([]*float64{}, tj.WCET...), tj.Energy...) {
			if v != nil && (math.IsNaN(*v) || math.IsInf(*v, 0)) {
				return nil, fmt.Errorf("task: type %d has non-finite value", tj.ID)
			}
		}
		s.Types = append(s.Types, &Type{
			ID:        tj.ID,
			WCET:      decodeVals(tj.WCET),
			Energy:    decodeVals(tj.Energy),
			MigTime:   tj.MigTime,
			MigEnergy: tj.MigEnergy,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteFile writes the set to the named file.
func (s *Set) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("task: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := s.Write(w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("task: flush %s: %w", path, err)
	}
	return f.Close()
}

// ReadFile reads a set from the named file.
func ReadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("task: %w", err)
	}
	defer f.Close()
	return Read(f)
}
