package task

import (
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
)

func TestProjectSlicesVectors(t *testing.T) {
	p, err := platform.Parse("4c2g")
	if err != nil {
		t.Fatal(err)
	}
	set, err := Generate(p, DefaultGenConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	shards, err := p.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	for s, sh := range shards {
		sub, err := set.Project(sh.Platform, sh.GlobalIDs)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if sub.Len() != set.Len() {
			t.Fatalf("shard %d: %d types, want %d", s, sub.Len(), set.Len())
		}
		for _, ty := range sub.Types {
			orig := set.Type(ty.ID)
			if ty.MigTime != orig.MigTime || ty.MigEnergy != orig.MigEnergy {
				t.Fatalf("type %d: migration overheads changed", ty.ID)
			}
			for local, global := range sh.GlobalIDs {
				if ty.WCET[local] != orig.WCET[global] || ty.Energy[local] != orig.Energy[global] {
					t.Fatalf("type %d: local %d differs from global %d", ty.ID, local, global)
				}
			}
		}
	}
}

func TestProjectRejectsBadMapping(t *testing.T) {
	p := platform.New(2, 1)
	set := Motivational() // 2c1g platform
	if _, err := set.Project(p, []int{0, 1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := set.Project(p, []int{0, 1, 9}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// Kind mismatch: local GPU slot mapped to a global CPU.
	if _, err := set.Project(p, []int{0, 1, 0}); err == nil {
		t.Fatal("expected kind-mismatch error")
	}
}
