// Package task models the workload's task types and implements the paper's
// synthetic task-set generator (Sec 5.1).
//
// A task type τ_j carries, for every platform resource r_i, a worst-case
// execution time c_{j,i} and an average energy consumption e_{j,i}, plus
// migration overheads cm_j (time) and em_j (energy) charged when an already
// started instance is relocated between resources.
package task

import (
	"errors"
	"fmt"
	"math"

	"predrm/internal/platform"
	"predrm/internal/rng"
)

// NotExecutable marks a (task, resource) pair on which the task cannot run.
// WCET and Energy hold this sentinel for such pairs (the paper's "specific
// dummy values", Sec 2 footnote 1).
const NotExecutable = math.MaxFloat64

// Type describes one task type τ_j.
type Type struct {
	// ID identifies the type within its Set (0-based).
	ID int
	// WCET[i] is the worst-case execution time c_{j,i} on resource i, or
	// NotExecutable.
	WCET []float64
	// Energy[i] is the average energy e_{j,i} on resource i, or
	// NotExecutable.
	Energy []float64
	// MigTime is cm_j: the extra execution time charged when a started
	// instance migrates between two distinct resources.
	MigTime float64
	// MigEnergy is em_j: the energy charged for such a migration.
	MigEnergy float64
}

// ExecutableOn reports whether the type can run on resource i.
func (t *Type) ExecutableOn(i int) bool {
	return i >= 0 && i < len(t.WCET) && t.WCET[i] != NotExecutable
}

// NumExecutable returns on how many resources the type can run.
func (t *Type) NumExecutable() int {
	n := 0
	for i := range t.WCET {
		if t.ExecutableOn(i) {
			n++
		}
	}
	return n
}

// MinWCET returns the smallest WCET over executable resources and the
// resource achieving it.
func (t *Type) MinWCET() (wcet float64, resource int) {
	wcet, resource = NotExecutable, -1
	for i, c := range t.WCET {
		if t.ExecutableOn(i) && c < wcet {
			wcet, resource = c, i
		}
	}
	return wcet, resource
}

// MinEnergy returns the smallest energy over executable resources and the
// resource achieving it.
func (t *Type) MinEnergy() (energy float64, resource int) {
	energy, resource = NotExecutable, -1
	for i, e := range t.Energy {
		if t.ExecutableOn(i) && e < energy {
			energy, resource = e, i
		}
	}
	return energy, resource
}

// Validate checks internal consistency against a platform of n resources.
func (t *Type) Validate(n int) error {
	if len(t.WCET) != n || len(t.Energy) != n {
		return fmt.Errorf("task %d: got %d WCETs and %d energies, platform has %d resources",
			t.ID, len(t.WCET), len(t.Energy), n)
	}
	executable := false
	for i := 0; i < n; i++ {
		cw, ce := t.WCET[i], t.Energy[i]
		if (cw == NotExecutable) != (ce == NotExecutable) {
			return fmt.Errorf("task %d: resource %d has inconsistent executability", t.ID, i)
		}
		if cw == NotExecutable {
			continue
		}
		executable = true
		if cw <= 0 || math.IsNaN(cw) || math.IsInf(cw, 0) {
			return fmt.Errorf("task %d: invalid WCET %v on resource %d", t.ID, cw, i)
		}
		if ce <= 0 || math.IsNaN(ce) || math.IsInf(ce, 0) {
			return fmt.Errorf("task %d: invalid energy %v on resource %d", t.ID, ce, i)
		}
	}
	if !executable {
		return fmt.Errorf("task %d: not executable on any resource", t.ID)
	}
	if t.MigTime < 0 || t.MigEnergy < 0 {
		return fmt.Errorf("task %d: negative migration overhead", t.ID)
	}
	return nil
}

// Set is a collection of task types over a common platform.
type Set struct {
	// Platform the WCET/energy vectors are indexed against.
	Platform *platform.Platform
	// Types holds the task types; Types[k].ID == k.
	Types []*Type
}

// Len returns the number of task types.
func (s *Set) Len() int { return len(s.Types) }

// Type returns task type id. It panics if id is out of range.
func (s *Set) Type(id int) *Type { return s.Types[id] }

// Validate checks every type against the set's platform.
func (s *Set) Validate() error {
	if s.Platform == nil {
		return errors.New("task: set has no platform")
	}
	if len(s.Types) == 0 {
		return errors.New("task: empty set")
	}
	for k, t := range s.Types {
		if t.ID != k {
			return fmt.Errorf("task: type at index %d has ID %d", k, t.ID)
		}
		if err := t.Validate(s.Platform.Len()); err != nil {
			return err
		}
	}
	return nil
}

// GenConfig parameterises the synthetic task-set generator. The defaults
// (see DefaultGenConfig) are the paper's Sec 5.1 values.
type GenConfig struct {
	// NumTypes is the number of task types to create (paper: 100).
	NumTypes int
	// WCETMean/WCETStd parameterise the Gaussian CPU WCET (paper: 40, 9).
	WCETMean, WCETStd float64
	// EnergyMean/EnergyStd parameterise the Gaussian CPU energy
	// (paper: 15, 3).
	EnergyMean, EnergyStd float64
	// GPUDivMin/GPUDivMax bound the uniform divisor applied to the average
	// CPU WCET and energy to obtain the GPU values (paper: 2, 10).
	GPUDivMin, GPUDivMax float64
	// MigMin/MigMax bound the uniform migration-overhead fraction of the
	// average WCET and energy over all resources (paper: 0.1, 0.2).
	MigMin, MigMax float64
}

// DefaultGenConfig returns the paper's Sec 5.1 generator parameters.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		NumTypes: 100,
		WCETMean: 40, WCETStd: 9,
		EnergyMean: 15, EnergyStd: 3,
		GPUDivMin: 2, GPUDivMax: 10,
		MigMin: 0.1, MigMax: 0.2,
	}
}

// Validate checks the configuration for obviously broken parameters.
func (c GenConfig) Validate() error {
	switch {
	case c.NumTypes <= 0:
		return errors.New("task: NumTypes must be positive")
	case c.WCETMean <= 0 || c.WCETStd < 0:
		return errors.New("task: invalid WCET distribution")
	case c.EnergyMean <= 0 || c.EnergyStd < 0:
		return errors.New("task: invalid energy distribution")
	case c.GPUDivMin < 1 || c.GPUDivMax < c.GPUDivMin:
		return errors.New("task: invalid GPU divisor range")
	case c.MigMin < 0 || c.MigMax < c.MigMin:
		return errors.New("task: invalid migration fraction range")
	}
	return nil
}

// Generate creates a synthetic task set for p following Sec 5.1: per-CPU
// Gaussian WCET and energy draws, GPU values derived by dividing the CPU
// averages by a uniform factor, and migration overheads as a uniform
// fraction of the per-task averages. Generation is deterministic in r.
func Generate(p *platform.Platform, cfg GenConfig, r *rng.Rand) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Set{Platform: p, Types: make([]*Type, 0, cfg.NumTypes)}
	for id := 0; id < cfg.NumTypes; id++ {
		t := &Type{
			ID:     id,
			WCET:   make([]float64, p.Len()),
			Energy: make([]float64, p.Len()),
		}
		var cpuWCETSum, cpuEnergySum float64
		cpus := 0
		for i := 0; i < p.Len(); i++ {
			if p.Resource(i).Kind != platform.CPU {
				continue
			}
			// Truncate at a small positive floor so degenerate draws can
			// never produce non-positive work.
			w := r.TruncGaussian(cfg.WCETMean, cfg.WCETStd, cfg.WCETMean/100, cfg.WCETMean*4)
			e := r.TruncGaussian(cfg.EnergyMean, cfg.EnergyStd, cfg.EnergyMean/100, cfg.EnergyMean*4)
			t.WCET[i], t.Energy[i] = w, e
			cpuWCETSum += w
			cpuEnergySum += e
			cpus++
		}
		avgWCET := cpuWCETSum / float64(cpus)
		avgEnergy := cpuEnergySum / float64(cpus)
		div := r.Uniform(cfg.GPUDivMin, cfg.GPUDivMax)
		for i := 0; i < p.Len(); i++ {
			if p.Resource(i).Kind != platform.GPU {
				continue
			}
			t.WCET[i] = avgWCET / div
			t.Energy[i] = avgEnergy / div
		}
		// Migration overhead: a fraction of the average WCET/energy over
		// all resources (Sec 5.1, last paragraph).
		var allWCET, allEnergy float64
		for i := 0; i < p.Len(); i++ {
			allWCET += t.WCET[i]
			allEnergy += t.Energy[i]
		}
		allWCET /= float64(p.Len())
		allEnergy /= float64(p.Len())
		t.MigTime = r.Uniform(cfg.MigMin, cfg.MigMax) * allWCET
		t.MigEnergy = r.Uniform(cfg.MigMin, cfg.MigMax) * allEnergy
		s.Types = append(s.Types, t)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Motivational returns the exact task set of the paper's motivational
// example (Table 1): two tasks on a 2-CPU + 1-GPU platform, with zero
// migration overhead (the example does not model migration cost).
func Motivational() *Set {
	p := platform.Motivational()
	return &Set{
		Platform: p,
		Types: []*Type{
			{
				ID:     0, // τ1
				WCET:   []float64{8, 12, 5},
				Energy: []float64{7.3, 8.4, 2},
			},
			{
				ID:     1, // τ2
				WCET:   []float64{7, 8.5, 3},
				Energy: []float64{6.2, 7.5, 1.5},
			},
		},
	}
}
