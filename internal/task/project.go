// Shard projection: slicing a task set's per-resource vectors down to a
// sub-platform, so a platform shard (platform.Partition) can run the
// unmodified admission machinery against local resource ids.
package task

import (
	"fmt"

	"predrm/internal/platform"
)

// Project returns the set restricted to the sub-platform sub, whose
// local resource i corresponds to s.Platform resource globalIDs[i].
// Type IDs are preserved, so request streams keep referring to the same
// types. MigTime/MigEnergy carry over unchanged: a migration inside a
// shard costs what it costs on the full platform.
//
// A type may end up executable on none of the shard's resources; its
// projected vectors are all NotExecutable. Such a projection does not
// pass Set.Validate — shard routing is expected to send requests of a
// type only to shards that can execute it, so the projected set is
// checked pairwise here instead of through Validate.
func (s *Set) Project(sub *platform.Platform, globalIDs []int) (*Set, error) {
	if sub == nil {
		return nil, fmt.Errorf("task: project onto nil platform")
	}
	if len(globalIDs) != sub.Len() {
		return nil, fmt.Errorf("task: %d global ids for %d shard resources", len(globalIDs), sub.Len())
	}
	n := s.Platform.Len()
	for local, global := range globalIDs {
		if global < 0 || global >= n {
			return nil, fmt.Errorf("task: shard resource %d maps to out-of-range global id %d", local, global)
		}
		if s.Platform.Resource(global).Kind != sub.Resource(local).Kind {
			return nil, fmt.Errorf("task: shard resource %d (%s) maps to global %d (%s): kind mismatch",
				local, sub.Resource(local).Kind, global, s.Platform.Resource(global).Kind)
		}
	}
	out := &Set{Platform: sub, Types: make([]*Type, 0, len(s.Types))}
	for _, t := range s.Types {
		pt := &Type{
			ID:        t.ID,
			WCET:      make([]float64, sub.Len()),
			Energy:    make([]float64, sub.Len()),
			MigTime:   t.MigTime,
			MigEnergy: t.MigEnergy,
		}
		for local, global := range globalIDs {
			pt.WCET[local] = t.WCET[global]
			pt.Energy[local] = t.Energy[global]
		}
		out.Types = append(out.Types, pt)
	}
	return out, nil
}
