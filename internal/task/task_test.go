package task

import (
	"math"
	"testing"
	"testing/quick"

	"predrm/internal/platform"
	"predrm/internal/rng"
)

func mustGenerate(t *testing.T, seed uint64) *Set {
	t.Helper()
	s, err := Generate(platform.Default(), DefaultGenConfig(), rng.New(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

func TestGenerateBasics(t *testing.T) {
	s := mustGenerate(t, 1)
	if s.Len() != 100 {
		t.Fatalf("got %d types, want 100", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, 42)
	b := mustGenerate(t, 42)
	for i := range a.Types {
		for r := range a.Types[i].WCET {
			if a.Types[i].WCET[r] != b.Types[i].WCET[r] {
				t.Fatalf("type %d WCET[%d] differs across runs", i, r)
			}
			if a.Types[i].Energy[r] != b.Types[i].Energy[r] {
				t.Fatalf("type %d Energy[%d] differs across runs", i, r)
			}
		}
	}
}

func TestGenerateGPUFaster(t *testing.T) {
	// The GPU divisor is in [2,10], so GPU WCET/energy must be strictly
	// below the CPU average for every type.
	s := mustGenerate(t, 7)
	p := s.Platform
	gpu := -1
	for i := 0; i < p.Len(); i++ {
		if p.Resource(i).Kind == platform.GPU {
			gpu = i
		}
	}
	for _, ty := range s.Types {
		var avg float64
		n := 0
		for i := 0; i < p.Len(); i++ {
			if p.Resource(i).Kind == platform.CPU {
				avg += ty.WCET[i]
				n++
			}
		}
		avg /= float64(n)
		if ty.WCET[gpu] >= avg/2 || ty.WCET[gpu] <= avg/10-1e-12 {
			t.Fatalf("type %d: GPU WCET %.3f not in (avg/10, avg/2] for avg %.3f",
				ty.ID, ty.WCET[gpu], avg)
		}
	}
}

func TestGenerateWCETDistribution(t *testing.T) {
	// Across many types x 5 CPUs the sample mean/std should approach the
	// configured Gaussian(40, 9^2).
	cfg := DefaultGenConfig()
	cfg.NumTypes = 2000
	s, err := Generate(platform.Default(), cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	n := 0
	for _, ty := range s.Types {
		for i := 0; i < 5; i++ { // CPUs are resources 0..4
			sum += ty.WCET[i]
			sumSq += ty.WCET[i] * ty.WCET[i]
			n++
		}
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-40) > 0.5 {
		t.Errorf("WCET mean %.3f, want ~40", mean)
	}
	if math.Abs(std-9) > 0.5 {
		t.Errorf("WCET std %.3f, want ~9", std)
	}
}

func TestMigrationOverheadRange(t *testing.T) {
	s := mustGenerate(t, 9)
	for _, ty := range s.Types {
		var avgW, avgE float64
		for i := range ty.WCET {
			avgW += ty.WCET[i]
			avgE += ty.Energy[i]
		}
		avgW /= float64(len(ty.WCET))
		avgE /= float64(len(ty.Energy))
		if ty.MigTime < 0.1*avgW-1e-9 || ty.MigTime > 0.2*avgW+1e-9 {
			t.Fatalf("type %d MigTime %.3f outside [0.1,0.2]x%.3f", ty.ID, ty.MigTime, avgW)
		}
		if ty.MigEnergy < 0.1*avgE-1e-9 || ty.MigEnergy > 0.2*avgE+1e-9 {
			t.Fatalf("type %d MigEnergy %.3f outside [0.1,0.2]x%.3f", ty.ID, ty.MigEnergy, avgE)
		}
	}
}

func TestExecutability(t *testing.T) {
	ty := &Type{
		ID:     0,
		WCET:   []float64{10, NotExecutable, 5},
		Energy: []float64{3, NotExecutable, 1},
	}
	if !ty.ExecutableOn(0) || ty.ExecutableOn(1) || !ty.ExecutableOn(2) {
		t.Fatal("ExecutableOn wrong")
	}
	if ty.ExecutableOn(-1) || ty.ExecutableOn(3) {
		t.Fatal("ExecutableOn out-of-range should be false")
	}
	if ty.NumExecutable() != 2 {
		t.Fatalf("NumExecutable = %d, want 2", ty.NumExecutable())
	}
	w, r := ty.MinWCET()
	if w != 5 || r != 2 {
		t.Fatalf("MinWCET = %v on %d", w, r)
	}
	e, r := ty.MinEnergy()
	if e != 1 || r != 2 {
		t.Fatalf("MinEnergy = %v on %d", e, r)
	}
}

func TestValidateRejectsBadTypes(t *testing.T) {
	cases := []struct {
		name string
		ty   Type
	}{
		{"wrong-len", Type{WCET: []float64{1}, Energy: []float64{1}}},
		{"inconsistent", Type{WCET: []float64{1, NotExecutable}, Energy: []float64{1, 2}}},
		{"nowhere", Type{WCET: []float64{NotExecutable, NotExecutable}, Energy: []float64{NotExecutable, NotExecutable}}},
		{"zero-wcet", Type{WCET: []float64{0, 1}, Energy: []float64{1, 1}}},
		{"neg-energy", Type{WCET: []float64{1, 1}, Energy: []float64{-1, 1}}},
		{"neg-mig", Type{WCET: []float64{1, 1}, Energy: []float64{1, 1}, MigTime: -1}},
		{"nan", Type{WCET: []float64{math.NaN(), 1}, Energy: []float64{1, 1}}},
	}
	for _, c := range cases {
		if err := c.ty.Validate(2); err == nil {
			t.Errorf("%s: Validate accepted invalid type", c.name)
		}
	}
}

func TestSetValidate(t *testing.T) {
	s := mustGenerate(t, 11)
	s.Types[3].ID = 7
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-order ID")
	}
	if err := (&Set{}).Validate(); err == nil {
		t.Fatal("Validate accepted missing platform")
	}
	if err := (&Set{Platform: platform.Default()}).Validate(); err == nil {
		t.Fatal("Validate accepted empty set")
	}
}

func TestGenConfigValidate(t *testing.T) {
	bad := []GenConfig{
		{},
		{NumTypes: 10, WCETMean: -1, EnergyMean: 1, GPUDivMin: 2, GPUDivMax: 3},
		{NumTypes: 10, WCETMean: 1, EnergyMean: 1, GPUDivMin: 0.5, GPUDivMax: 3},
		{NumTypes: 10, WCETMean: 1, EnergyMean: 1, GPUDivMin: 2, GPUDivMax: 1},
		{NumTypes: 10, WCETMean: 1, EnergyMean: 1, GPUDivMin: 2, GPUDivMax: 3, MigMin: 0.3, MigMax: 0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad config", i)
		}
	}
	if err := DefaultGenConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestMotivationalMatchesTable1(t *testing.T) {
	s := Motivational()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	t1, t2 := s.Type(0), s.Type(1)
	// Table 1 values, resources ordered CPU1, CPU2, GPU.
	wantW1 := []float64{8, 12, 5}
	wantE1 := []float64{7.3, 8.4, 2}
	wantW2 := []float64{7, 8.5, 3}
	wantE2 := []float64{6.2, 7.5, 1.5}
	for i := range wantW1 {
		if t1.WCET[i] != wantW1[i] || t1.Energy[i] != wantE1[i] {
			t.Errorf("tau1 resource %d: got (%v,%v), want (%v,%v)",
				i, t1.WCET[i], t1.Energy[i], wantW1[i], wantE1[i])
		}
		if t2.WCET[i] != wantW2[i] || t2.Energy[i] != wantE2[i] {
			t.Errorf("tau2 resource %d: got (%v,%v), want (%v,%v)",
				i, t2.WCET[i], t2.Energy[i], wantW2[i], wantE2[i])
		}
	}
}

func TestGeneratePropertyAllPositive(t *testing.T) {
	f := func(seed uint64) bool {
		s, err := Generate(platform.Default(), DefaultGenConfig(), rng.New(seed))
		if err != nil {
			return false
		}
		for _, ty := range s.Types {
			for i := range ty.WCET {
				if ty.WCET[i] <= 0 || ty.Energy[i] <= 0 {
					return false
				}
			}
			if ty.MigTime <= 0 || ty.MigEnergy <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	_, err := Generate(platform.Default(), GenConfig{}, rng.New(1))
	if err == nil {
		t.Fatal("Generate accepted zero config")
	}
}
