// Resilience layer: budgeted solving with a degradation chain.
//
// The paper requires the RM to decide at every arrival within a bounded
// overhead (Sec 5.5), but the exact reference solver has unbounded
// worst-case latency, and a production RM must also survive solver
// failures. BudgetedSolver makes degraded operation first-class: it gives
// any Solver a per-activation budget and, when a stage exhausts its budget
// without a usable answer, errors, or panics, falls through a configurable
// chain of progressively cheaper solvers. The terminal behaviour is always
// reject-only — refusing the arriving request is sound under the admission
// protocol (the standing mappings are untouched), so the chain degrades
// admission quality but never the deadline invariant.

package core

import (
	"fmt"
	"time"

	"predrm/internal/sched"
	"predrm/internal/telemetry"
)

// Budget bounds one solver activation. The zero value means unlimited.
// For a solver that parallelises internally the bound covers the whole
// activation, not each goroutine: exact.Optimal's workers drain one shared
// node counter, so a parallel solve stops within a small batching slack of
// the same Nodes cap a serial solve gets.
type Budget struct {
	// Nodes caps the search nodes a BudgetAware solver may expand,
	// aggregated across all internal workers of one Solve.
	Nodes int
	// Wall caps the wall-clock time of one Solve. Wall budgets make
	// decisions timing-dependent and therefore nondeterministic across
	// runs; prefer Nodes wherever reproducibility matters.
	Wall time.Duration
}

// IsZero reports whether the budget imposes no bound.
func (b Budget) IsZero() bool { return b.Nodes <= 0 && b.Wall <= 0 }

// BudgetUse reports what a budgeted solve consumed.
type BudgetUse struct {
	// Nodes is the number of search nodes expanded, summed over the
	// solver's internal workers for a parallel solve.
	Nodes int
	// Exhausted reports that the budget ran out before the search space
	// was exhausted; the decision is then the best anytime incumbent.
	Exhausted bool
}

// BudgetAware is implemented by solvers whose search can be bounded per
// activation (exact.Optimal). ApplyBudget is called before each Solve
// attempt; BudgetUsed reports on the most recent one.
type BudgetAware interface {
	Solver
	ApplyBudget(Budget)
	BudgetUsed() BudgetUse
}

// FallibleSolver is implemented by solvers that can fail outright —
// injected faults (internal/faultinject), backend outages — instead of
// merely returning an infeasible decision. AdmitChecked and BudgetedSolver
// prefer SolveChecked when available; plain Solve must map failures to an
// infeasible decision.
type FallibleSolver interface {
	Solver
	SolveChecked(p *sched.Problem) (Decision, error)
}

// RejectOnly is the terminal degradation mode: it refuses every problem,
// so the admission protocol rejects the arriving request and keeps the
// standing mappings untouched. Useful as an explicit chain stage and as
// the ablation floor ("what if the RM could only say no").
type RejectOnly struct{}

var _ Solver = RejectOnly{}

// Solve returns the all-unmapped infeasible decision.
func (RejectOnly) Solve(p *sched.Problem) Decision { return rejectAll(p) }

// rejectAll builds the infeasible decision leaving every job unmapped.
func rejectAll(p *sched.Problem) Decision {
	mapping := make([]int, len(p.Jobs))
	for i := range mapping {
		mapping[i] = sched.Unmapped
	}
	return Decision{Mapping: mapping, Feasible: false}
}

// Stage is one solver in a BudgetedSolver chain.
type Stage struct {
	// Name labels the stage in telemetry and trace events.
	Name string
	// Solver answers the problems this stage is asked.
	Solver Solver
}

// BudgetedSolver wraps a chain of solvers with a per-activation budget and
// falls through the chain on failure: a stage that errors (or panics), or
// that exhausts its budget without producing a feasible decision, hands
// the problem to the next stage. A stage that exhausts its budget but
// still holds a feasible anytime incumbent (exact.Optimal seeds its search
// with Algorithm 1, so truncation never loses feasibility) is used as-is
// and only accounted as a budget exhaustion. When every stage fails the
// solver degrades to reject-only, which is always sound.
//
// BudgetedSolver itself never errors and never panics; it is the outermost
// solver a simulation should see when faults may occur. Like the solvers
// it wraps it is not safe for concurrent use.
type BudgetedSolver struct {
	// Stages are tried in order. An empty chain is pure reject-only.
	Stages []Stage
	// Budget is applied to every BudgetAware stage before its attempt.
	Budget Budget
	// Tracer, when non-nil, receives a solver_fallback event for every
	// chain transition, timestamped with the problem's simulated time.
	Tracer *telemetry.Tracer

	// Telemetry instruments (nil-safe no-ops until AttachMetrics).
	mFallbacks, mRejectOnly *telemetry.Counter
	mExhausted, mErrors     *telemetry.Counter
	hDepth, hNodes          *telemetry.Histogram

	// prov, when attached, records one StageHop per chain attempt with the
	// stage's outcome, error text, and node/wall spend.
	prov *telemetry.ProvRecorder
}

var _ Solver = (*BudgetedSolver)(nil)
var _ telemetry.Instrumentable = (*BudgetedSolver)(nil)
var _ telemetry.ProvenanceAware = (*BudgetedSolver)(nil)

// AttachMetrics registers the chain's degraded-mode instruments on reg —
// counters resilience.fallbacks, resilience.reject_only,
// resilience.budget_exhausted and resilience.stage_errors, histogram
// resilience.fallback_depth (stage index serving each activation) and
// resilience.budget_nodes (nodes consumed per budgeted solve) — and
// forwards the registry to every stage solver that is Instrumentable.
func (b *BudgetedSolver) AttachMetrics(reg *telemetry.Registry) {
	b.mFallbacks = reg.Counter("resilience.fallbacks")
	b.mRejectOnly = reg.Counter("resilience.reject_only")
	b.mExhausted = reg.Counter("resilience.budget_exhausted")
	b.mErrors = reg.Counter("resilience.stage_errors")
	b.hDepth = reg.Histogram("resilience.fallback_depth", telemetry.CountBuckets)
	b.hNodes = reg.Histogram("resilience.budget_nodes", telemetry.NodeBuckets)
	for _, st := range b.Stages {
		if inst, ok := st.Solver.(telemetry.Instrumentable); ok {
			inst.AttachMetrics(reg)
		}
	}
}

// AttachProvenance installs the decision-provenance recorder and forwards
// it to every stage solver that is ProvenanceAware, so one recorder
// collects the whole chain's causal record.
func (b *BudgetedSolver) AttachProvenance(rec *telemetry.ProvRecorder) {
	b.prov = rec
	for _, st := range b.Stages {
		if pa, ok := st.Solver.(telemetry.ProvenanceAware); ok {
			pa.AttachProvenance(rec)
		}
	}
}

// Solve runs the chain on p. It never fails: the worst outcome is the
// reject-only decision.
func (b *BudgetedSolver) Solve(p *sched.Problem) Decision {
	recording := b.prov.Enabled()
	for si, st := range b.Stages {
		ba, bounded := st.Solver.(BudgetAware)
		if bounded {
			ba.ApplyBudget(b.Budget)
		}
		var stageStart time.Time
		if recording {
			stageStart = time.Now()
		}
		d, err, panicked := attempt(st.Solver, p)
		var use BudgetUse
		if bounded {
			use = ba.BudgetUsed()
			b.hNodes.Observe(float64(use.Nodes))
			if use.Exhausted {
				b.mExhausted.Inc()
			}
		}
		hop := telemetry.StageHop{Stage: si, Name: st.Name, Nodes: use.Nodes}
		if recording {
			hop.WallNs = time.Since(stageStart).Nanoseconds()
		}
		switch {
		case err != nil:
			b.mErrors.Inc()
			reason := telemetry.ReasonError
			if panicked {
				reason = telemetry.ReasonPanic
			}
			if recording {
				hop.Outcome, hop.Err = reason, err.Error()
				b.prov.Stage(hop)
			}
			b.fellThrough(p, si+1, reason)
			continue
		case use.Exhausted && !d.Feasible:
			// The budget ran out before any incumbent was found; a deeper
			// (cheaper, bounded) stage may still admit.
			if recording {
				hop.Outcome = telemetry.StageBudget
				b.prov.Stage(hop)
			}
			b.fellThrough(p, si+1, telemetry.ReasonBudget)
			continue
		}
		if recording {
			hop.Outcome = telemetry.StageServed
			b.prov.Stage(hop)
		}
		b.hDepth.Observe(float64(si))
		return d
	}
	// The whole chain failed: degrade to reject-only.
	b.mRejectOnly.Inc()
	b.hDepth.Observe(float64(len(b.Stages)))
	if recording {
		b.prov.Stage(telemetry.StageHop{
			Stage: len(b.Stages), Outcome: telemetry.StageRejectOnly,
		})
	}
	b.emit(p, len(b.Stages), telemetry.ReasonRejectOnly)
	return rejectAll(p)
}

// fellThrough accounts one chain transition to stage `to`.
func (b *BudgetedSolver) fellThrough(p *sched.Problem, to int, reason string) {
	b.mFallbacks.Inc()
	if to < len(b.Stages) {
		b.emit(p, to, reason)
	}
	// The terminal transition is emitted by Solve as reject_only.
}

// emit reports a solver_fallback trace event. Value is the stage index
// fallen to (len(Stages) = reject-only).
func (b *BudgetedSolver) emit(p *sched.Problem, to int, reason string) {
	if b.Tracer == nil {
		return
	}
	e := telemetry.NewEvent(p.Time, telemetry.EvSolverFallback)
	e.Req = arrivingID(p)
	e.Value = float64(to)
	e.Reason = reason
	b.Tracer.Emit(e)
}

// attempt runs one stage, converting errors and panics into a Go error so
// the chain can absorb them. panicked distinguishes a recovered panic from
// an ordinary solver error for the fallback reason vocabulary.
func attempt(s Solver, p *sched.Problem) (d Decision, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: solver panicked: %v", r)
			panicked = true
		}
	}()
	if fs, ok := s.(FallibleSolver); ok {
		d, err = fs.SolveChecked(p)
		return d, err, false
	}
	return s.Solve(p), nil, false
}

// arrivingID returns the trace id of the arriving request in p — the
// largest job id, since active jobs are earlier requests and predicted or
// critical planning copies carry negative ids — or -1 when the problem
// holds none (solver invoked outside the admission protocol).
func arrivingID(p *sched.Problem) int {
	id := -1
	for _, j := range p.Jobs {
		if j.ID > id {
			id = j.ID
		}
	}
	return id
}

// AdmitChecked is the Sec 4.1 admission protocol for solvers that can fail
// (FallibleSolver): any Solve failure aborts the protocol and is returned
// to the caller, with no decision taken. Wrap fallible solvers in a
// BudgetedSolver to absorb failures into graceful degradation instead.
// For plain solvers it behaves exactly like Admit.
func AdmitChecked(s Solver, p *sched.Problem) (d Decision, admitted bool, err error) {
	return AdmitProv(s, p, nil)
}

// AdmitProv is AdmitChecked with decision-provenance recording: each
// protocol attempt (the Sec 4.1 drop-a-prediction loop) is opened on rec
// before its solve and closed with the solve's outcome, so candidate
// verdicts and chain hops recorded by the solver are stamped with the
// attempt that produced them. A nil rec records nothing.
func AdmitProv(s Solver, p *sched.Problem, rec *telemetry.ProvRecorder) (d Decision, admitted bool, err error) {
	fs, fallible := s.(FallibleSolver)
	cur := p
	for {
		rec.BeginAttempt(len(cur.Jobs), countPredicted(cur.Jobs))
		if fallible {
			d, err = fs.SolveChecked(cur)
			if err != nil {
				rec.EndAttempt(false, 0)
				return Decision{}, false, err
			}
		} else {
			d = s.Solve(cur)
		}
		rec.EndAttempt(d.Feasible, d.Energy)
		if d.Feasible {
			return inflate(p, cur, d), true, nil
		}
		// Drop the latest-arriving predicted job, if any remain.
		drop := -1
		for i, j := range cur.Jobs {
			if j.Predicted && (drop == -1 || j.Arrival > cur.Jobs[drop].Arrival) {
				drop = i
			}
		}
		if drop == -1 {
			return rejectAll(p), false, nil
		}
		cur = cur.Without(drop)
	}
}

// countPredicted counts the predicted planning jobs in jobs.
func countPredicted(jobs []*sched.Job) int {
	n := 0
	for _, j := range jobs {
		if j.Predicted {
			n++
		}
	}
	return n
}
