// Indexed candidate scan: Algorithm 1 without the m×n matrices.
//
// The plain Solve materialises cpm/desirability for every (job,
// resource) pair — O(jobs × resources) per activation, fine for the
// paper's 6-resource platform but quadratic waste on a 512-resource one
// where each job only ever touches its one or two most desirable
// candidates. This file keeps the algorithm bit-identical while making
// the scan sublinear in platform size:
//
//   - per task type, a candidate index: the executable resources sorted
//     by (energy, id). Desirability is a positive scaling of energy plus
//     a per-job constant (migration surcharge) and the bigM deadline
//     penalty, so walking the index yields candidates in exactly the
//     (desirability, resource) order the plain path's arg-min scans
//     produce — the kind-bucketed resource index of the scale-out
//     design (DESIGN.md §12).
//   - per job, only the best/second candidate summary is cached (the
//     regret inputs), recomputed only when a booking evicts the job's
//     best or second resource — the same incremental discipline as the
//     plain path's invalidateColumn, minus the matrix.
//
// Equivalence argument. The plain path consumes the matrices through
// exactly two queries: "the two smallest desirabilities over the
// feasible set, scanning resources in ascending id with strict <" (the
// regret inputs) and "feasible-set members in ascending (desirability,
// id) order" (the placement loop). Both are order queries over the same
// multiset of (des, r) pairs, so producing candidates in ascending
// (des, r) order reproduces them verbatim. Within one solve a job's
// desirability is energy[r]·Frac + constant (+bigM), monotone in
// energy[r] over each of the three candidate streams — non-penalised,
// penalised (+bigM), and the job's current resource (no migration
// surcharge) — so each stream is already sorted by the index order and
// a 3-way merge yields the global order. Equal desirabilities across
// different energies (a rounding collision) are handled by buffering
// each equal-desirability run and emitting it in ascending resource id,
// which is the plain scan's tie-break. TestIndexedHeuristicMatchesPlain
// pins the equivalence over randomized problems; the shardcheck gate
// runs it on every `make check`.
package core

import (
	"math"
	"sort"

	"predrm/internal/sched"
	"predrm/internal/task"
)

// indexedMinResources gates the indexed path: below it the matrices are
// small enough that the plain path's tight loops win (and the committed
// golden traces and benchmarks of the 6-resource platform stay on the
// code path they were recorded against).
const indexedMinResources = 32

// candSummary caches one job's regret inputs: the best and second-best
// (desirability, resource) over its current feasible set.
type candSummary struct {
	bestR, secondR     int32 // -1 when absent
	bestDes, secondDes float64
	empty              bool // feasible set is empty (line 22: no solution)
}

// runCand is one buffered candidate of an equal-desirability run.
type runCand struct {
	r        int32
	des, cpm float64
}

// candStream walks one desirability-sorted slice of a job's candidates:
// the non-penalised members (pen false) or the bigM-penalised ones (pen
// true). Equal-desirability runs are buffered and sorted by resource id
// so ties break exactly as the plain path's ascending-id scans do.
type candStream struct {
	pen bool
	i   int       // cursor into the type's candidate order
	run []runCand // current equal-des run, ascending resource id
	ri  int       // next unconsumed run element
}

// candIter merges a job's three candidate streams — non-penalised,
// penalised, and the current-resource singleton (which carries no
// migration surcharge and therefore sorts independently) — into one
// ascending (desirability, resource) sequence. One iterator lives on
// the Heuristic and is re-initialised per walk; its run buffers are
// part of the scratch arena.
type candIter struct {
	j      *sched.Job
	tl     float64
	ord    []int32
	a, b   candStream // non-penalised / penalised walks over ord
	curR   int        // current-resource candidate; -1 absent or consumed
	curDes float64
	curCpm float64
}

// typeOrder returns t's candidate index: executable resources sorted by
// (energy, id). Orders are immutable and cached per *task.Type — task
// types are immutable and live as long as their Set, so the cache is
// bounded by the type universe of the workload.
func (h *Heuristic) typeOrder(t *task.Type) []int32 {
	if h.ord == nil {
		h.ord = make(map[*task.Type][]int32)
	}
	if o, ok := h.ord[t]; ok {
		return o
	}
	o := make([]int32, 0, len(t.Energy))
	for r := range t.Energy {
		if t.ExecutableOn(r) {
			o = append(o, int32(r))
		}
	}
	sort.Slice(o, func(a, b int) bool {
		ea, eb := t.Energy[o[a]], t.Energy[o[b]]
		if ea != eb {
			return ea < eb
		}
		return o[a] < o[b]
	})
	h.ord[t] = o
	return o
}

// growIndexed sizes the indexed path's arena: the common pieces plus
// the per-job candidate summaries. No m×n allocation happens here.
func (h *Heuristic) growIndexed(m, n int) {
	h.growCommon(m, n)
	if cap(h.cand) < m {
		h.cand = make([]candSummary, m)
	}
}

// itInit points the shared iterator at job ji's candidates. Streams are
// filled lazily by itNext, so a walk the caller abandons after one or
// two candidates (rewalk) never scans past what it consumed.
func (h *Heuristic) itInit(ji int) {
	j := h.p.Jobs[ji]
	it := &h.it
	it.j = j
	it.tl = j.TimeLeft(h.p.Time)
	it.ord = h.typeOrder(j.Type)
	it.a.pen, it.a.i, it.a.ri = false, 0, 0
	it.a.run = it.a.run[:0]
	it.b.pen, it.b.i, it.b.ri = true, 0, 0
	it.b.run = it.b.run[:0]
	it.curR = -1
	if r := j.Resource; r != sched.Unmapped && j.Type.ExecutableOn(r) {
		c := j.CPM(r, h.p.Policy) // staying put: no migration surcharge
		if c <= h.capacity[r]+sched.Eps {
			des := j.EPM(r, h.p.Policy)
			if c > it.tl+sched.Eps {
				des += bigM
			}
			it.curR, it.curDes, it.curCpm = r, des, c
		}
	}
}

// itAdvance refills stream s with its next equal-desirability run of
// feasible-set members. Desirability is non-decreasing along the type
// order within one stream, so the run ends at the first member whose
// desirability strictly exceeds the run's; the cursor parks there for
// the next refill. The run is kept in ascending resource id.
func (h *Heuristic) itAdvance(s *candStream) {
	it := &h.it
	s.run = s.run[:0]
	s.ri = 0
	j, pol := it.j, h.p.Policy
	skip := j.Resource
	var runDes float64
	for ; s.i < len(it.ord); s.i++ {
		r := int(it.ord[s.i])
		if r == skip {
			continue // merged separately as the singleton stream
		}
		c := j.CPM(r, pol) // executable by construction of ord
		if c > h.capacity[r]+sched.Eps {
			continue // not in the feasible set (line 10)
		}
		pen := c > it.tl+sched.Eps
		if pen != s.pen {
			continue // belongs to the other stream
		}
		des := j.EPM(r, pol)
		if pen {
			des += bigM
		}
		if len(s.run) == 0 {
			runDes = des
		} else if des != runDes {
			break // next run starts here
		}
		// Insertion keeps the run ascending in r (runs are nearly always
		// singletons; a multi-element run is an exact float collision).
		k := len(s.run)
		s.run = append(s.run, runCand{r: int32(r), des: des, cpm: c})
		for k > 0 && s.run[k-1].r > s.run[k].r {
			s.run[k-1], s.run[k] = s.run[k], s.run[k-1]
			k--
		}
	}
}

// itNext yields the next candidate in ascending (desirability, resource)
// order: resource, desirability, cpm. ok is false when the feasible set
// is exhausted.
//
// The penalised stream is not even scanned until every non-penalised
// candidate has been consumed: a penalised desirability carries +bigM
// and a non-penalised one is a plain EPM in [0, bigM), so all of stream
// a (and a non-penalised current-resource candidate) sort strictly
// before all of stream b. This is the same dominance bigM's value is
// chosen for, and it is what keeps the common-case walk — rewalk's two
// candidates, nothing near its deadline — from paying an O(platform)
// scan for penalised members that do not exist.
func (h *Heuristic) itNext() (int, float64, float64, bool) {
	it := &h.it
	if it.a.ri == len(it.a.run) && it.a.i < len(it.ord) {
		h.itAdvance(&it.a)
	}
	aOK := it.a.ri < len(it.a.run)
	if !aOK && !(it.curR >= 0 && it.curDes < bigM) &&
		it.b.ri == len(it.b.run) && it.b.i < len(it.ord) {
		h.itAdvance(&it.b)
	}
	const (
		srcNone = iota
		srcA
		srcB
		srcCur
	)
	src := srcNone
	var r int32
	var des, c float64
	if aOK {
		head := &it.a.run[it.a.ri]
		src, r, des, c = srcA, head.r, head.des, head.cpm
	}
	if it.b.ri < len(it.b.run) {
		head := &it.b.run[it.b.ri]
		if src == srcNone || head.des < des || (head.des == des && head.r < r) {
			src, r, des, c = srcB, head.r, head.des, head.cpm
		}
	}
	if it.curR >= 0 {
		if src == srcNone || it.curDes < des || (it.curDes == des && int32(it.curR) < r) {
			src, r, des, c = srcCur, int32(it.curR), it.curDes, it.curCpm
		}
	}
	switch src {
	case srcNone:
		return 0, 0, 0, false
	case srcA:
		it.a.ri++
	case srcB:
		it.b.ri++
	case srcCur:
		it.curR = -1
	}
	return int(r), des, c, true
}

// rewalk recomputes job ji's candidate summary — the first two
// candidates of the merged order, i.e. exactly the plain refresh's
// best/second over the feasible set.
func (h *Heuristic) rewalk(ji int) {
	h.itInit(ji)
	cc := &h.cand[ji]
	r, des, _, ok := h.itNext()
	if !ok {
		*cc = candSummary{bestR: -1, secondR: -1,
			bestDes: math.Inf(1), secondDes: math.Inf(1), empty: true}
		return
	}
	cc.empty = false
	cc.bestR, cc.bestDes = int32(r), des
	if r2, des2, _, ok2 := h.itNext(); ok2 {
		cc.secondR, cc.secondDes = int32(r2), des2
	} else {
		cc.secondR, cc.secondDes = -1, math.Inf(1) // |F_j| == 1 (line 14)
	}
}

// solveIndexed is Solve on the candidate index: the same pre-assignment,
// max-regret selection, placement probing and booking as the plain path,
// with every matrix read replaced by an index walk. Provenance recording
// stays on the plain path (Solve gates on it), so no verdict bookkeeping
// appears here.
func (h *Heuristic) solveIndexed(p *sched.Problem) Decision {
	jobs := p.Jobs
	m, n := len(jobs), p.Platform.Len()
	h.p, h.n = p, n
	h.growIndexed(m, n)

	mapping := h.mapping[:m]
	for i := range mapping {
		mapping[i] = sched.Unmapped
	}

	window := p.Window()
	capacity := h.capacity[:n]
	for i := range capacity {
		capacity[i] = window
		h.lists[i].Reset()
		if h.Cache != nil {
			h.lists[i].EnableFingerprint(p.Time)
		}
	}

	// Pinned pre-assignment, identical to the plain path but with cpm
	// computed at the point of use.
	unassigned := h.unassigned[:0]
	for idx, j := range jobs {
		if j.Fixed || j.Pinned(p.Platform) {
			c := j.CPM(j.Resource, p.Policy)
			mapping[idx] = j.Resource
			capacity[j.Resource] -= c
			h.insertEntryC(idx, j.Resource, c)
			continue
		}
		unassigned = append(unassigned, idx)
	}
	h.unassigned = unassigned

	for _, ji := range unassigned {
		h.rewalk(ji)
	}

	for len(unassigned) > 0 {
		pick := -1
		if h.Greedy {
			pick = 0
			if h.cand[unassigned[0]].empty {
				return h.fail(mapping, unassigned[0])
			}
		} else {
			dStar := math.Inf(-1)
			for u, ji := range unassigned {
				cc := &h.cand[ji]
				if cc.empty {
					return h.fail(mapping, ji)
				}
				if d := cc.secondDes - cc.bestDes; d > dStar {
					dStar = d
					pick = u
				}
			}
		}
		jobIdx := unassigned[pick]
		unassigned = append(unassigned[:pick], unassigned[pick+1:]...)

		// Placement: walk the candidates in (desirability, id) order with
		// the same trial-insert EDF probes as the plain loop.
		placed := false
		var placedR int
		var placedCpm float64
		h.itInit(jobIdx)
		for {
			r, _, c, ok := h.itNext()
			if !ok {
				break
			}
			pos := h.insertEntryC(jobIdx, r, c)
			if h.lists[r].FeasibleCached(p.Platform.Resource(r).Preemptable(), p.Time,
				h.Cache, &h.edf, &h.hitsDelta, &h.missDelta) {
				mapping[jobIdx] = r
				placed, placedR, placedCpm = true, r, c
				break
			}
			h.lists[r].Remove(p.Time, pos)
		}
		if !placed {
			return h.fail(mapping, jobIdx)
		}

		// Booking shrank one resource. A job's cached summary changes only
		// if it just lost membership of that resource AND the resource was
		// its best or second (otherwise the plain refresh would recompute
		// identical values) — the matrix-free invalidateColumn.
		oldCap := capacity[placedR]
		capacity[placedR] -= placedCpm
		newCap := capacity[placedR]
		for _, ji := range unassigned {
			cji := jobs[ji].CPM(placedR, p.Policy)
			if cji == task.NotExecutable || cji > oldCap+sched.Eps || cji <= newCap+sched.Eps {
				continue // was not a member, or still is
			}
			if cc := &h.cand[ji]; cc.bestR == int32(placedR) || cc.secondR == int32(placedR) {
				h.rewalk(ji)
			}
		}
	}

	h.flushCacheStats()
	out := append([]int(nil), mapping...)
	return Decision{Mapping: out, Feasible: true, Energy: p.Energy(out)}
}
