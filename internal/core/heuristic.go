// Package core implements the paper's primary contribution: the fast
// knapsack-style mapping heuristic (Algorithm 1, Sec 4.3) and the admission
// protocol that wraps any mapping solver with the with-/without-prediction
// fallback (Sec 4.1).
//
// The heuristic treats resources as knapsacks whose capacity is the
// available processing time within the decision window K̄, and tasks as
// items weighted by cpm. Tasks are assigned in max-regret order: the task
// whose best and second-best resources differ most in desirability is
// placed first, on its most desirable resource that passes the EDF
// schedulability check.
package core

import (
	"math"

	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
)

// bigM is the Algorithm 1 penalty making a resource undesirable when the
// task's execution demand exceeds its deadline slack. Any value safely
// above all reachable energy sums works; energies are O(10) per task and
// problems hold tens of tasks.
const bigM = 1e9

// Decision is a solver's answer for one Problem.
type Decision struct {
	// Mapping assigns Problem.Jobs[i] to resource Mapping[i]; sched.Unmapped
	// if the solver failed.
	Mapping []int
	// Feasible reports whether Mapping schedules every job (including a
	// predicted one) within its deadline.
	Feasible bool
	// Energy is the objective value of Mapping when feasible.
	Energy float64
}

// Solver maps all jobs of a problem at once. Implementations must treat
// the problem as read-only.
type Solver interface {
	Solve(p *sched.Problem) Decision
}

// Heuristic is the paper's Algorithm 1. The zero value is ready to use.
type Heuristic struct {
	// Greedy disables the max-regret task ordering and assigns jobs in
	// index order instead (ablation A1). The per-resource capacity and
	// schedulability machinery is unchanged.
	Greedy bool

	// Telemetry instruments (nil-safe no-ops until AttachMetrics).
	solves, infeasible *telemetry.Counter
	problemJobs        *telemetry.Histogram
}

var _ Solver = (*Heuristic)(nil)
var _ telemetry.Instrumentable = (*Heuristic)(nil)

// AttachMetrics registers the heuristic's instruments on reg: counters
// core.solves and core.infeasible, histogram core.problem_jobs.
func (h *Heuristic) AttachMetrics(reg *telemetry.Registry) {
	h.solves = reg.Counter("core.solves")
	h.infeasible = reg.Counter("core.infeasible")
	h.problemJobs = reg.Histogram("core.problem_jobs", telemetry.CountBuckets)
}

// Solve runs Algorithm 1 on p.
func (h *Heuristic) Solve(p *sched.Problem) Decision {
	h.solves.Inc()
	h.problemJobs.Observe(float64(len(p.Jobs)))
	n := p.Platform.Len()
	jobs := p.Jobs
	mapping := make([]int, len(jobs))
	for i := range mapping {
		mapping[i] = sched.Unmapped
	}

	// Per-resource remaining capacity K̄_i and the entries mapped so far
	// (for IsSchedulable).
	window := p.Window()
	capacity := make([]float64, n)
	for i := range capacity {
		capacity[i] = window
	}
	entries := make([][]sched.Entry, n)

	assign := func(jobIdx, r int) {
		mapping[jobIdx] = r
		cpm := jobs[jobIdx].CPM(r, p.Policy)
		capacity[r] -= cpm
		j := jobs[jobIdx]
		entries[r] = append(entries[r], sched.Entry{
			ReadyAt:     math.Max(j.Arrival, p.Time),
			Deadline:    j.AbsDeadline,
			Rem:         cpm,
			PinnedFirst: j.Pinned(p.Platform) && j.Resource == r,
		})
	}

	// Pinned jobs are not free decisions: pre-assign them so the heuristic
	// plans around the work it cannot move.
	unassigned := make([]int, 0, len(jobs))
	for idx, j := range jobs {
		if j.Fixed || j.Pinned(p.Platform) {
			assign(idx, j.Resource)
			continue
		}
		unassigned = append(unassigned, idx)
	}

	// Desirability f_{j,i} = ep + em + M·(cpm > t_left); +Inf when the
	// type cannot run on i (line 6 of Algorithm 1).
	desirability := func(jobIdx, r int) float64 {
		j := jobs[jobIdx]
		e := j.EPM(r, p.Policy)
		if e == task.NotExecutable {
			return math.Inf(1)
		}
		if j.CPM(r, p.Policy) > j.TimeLeft(p.Time)+sched.Eps {
			e += bigM
		}
		return e
	}

	isSchedulable := func(jobIdx, r int) bool {
		j := jobs[jobIdx]
		cand := sched.Entry{
			ReadyAt:  math.Max(j.Arrival, p.Time),
			Deadline: j.AbsDeadline,
			Rem:      j.CPM(r, p.Policy),
		}
		trial := append(append(make([]sched.Entry, 0, len(entries[r])+1), entries[r]...), cand)
		return sched.ResourceFeasible(p.Platform.Resource(r).Preemptable(), p.Time, trial)
	}

	// feasibleSet returns F_j: resources whose remaining capacity fits the
	// job (line 10).
	feasibleSet := func(jobIdx int) []int {
		var fs []int
		for r := 0; r < n; r++ {
			cpm := jobs[jobIdx].CPM(r, p.Policy)
			if cpm != task.NotExecutable && cpm <= capacity[r]+sched.Eps {
				fs = append(fs, r)
			}
		}
		return fs
	}

	for len(unassigned) > 0 {
		// Select the next job: max regret d* (lines 8-20), or first in
		// index order for the greedy ablation.
		pick := -1
		var pickSet []int
		if h.Greedy {
			pick = 0
			pickSet = feasibleSet(unassigned[0])
			if len(pickSet) == 0 {
				h.infeasible.Inc()
				return Decision{Mapping: mapping, Feasible: false}
			}
		} else {
			dStar := math.Inf(-1)
			for u, jobIdx := range unassigned {
				fs := feasibleSet(jobIdx)
				if len(fs) == 0 {
					// Line 22: no solution.
					h.infeasible.Inc()
					return Decision{Mapping: mapping, Feasible: false}
				}
				best, second := math.Inf(1), math.Inf(1)
				for _, r := range fs {
					f := desirability(jobIdx, r)
					if f < best {
						best, second = f, best
					} else if f < second {
						second = f
					}
				}
				d := second - best // +Inf when |F_j| == 1 (line 14)
				if d > dStar {
					dStar = d
					pick = u
					pickSet = fs
				}
			}
		}

		jobIdx := unassigned[pick]
		unassigned = append(unassigned[:pick], unassigned[pick+1:]...)

		// Map j* to the most desirable schedulable resource (lines 24-34).
		placed := false
		for len(pickSet) > 0 {
			bi, bf := -1, math.Inf(1)
			for k, r := range pickSet {
				if f := desirability(jobIdx, r); f < bf {
					bf, bi = f, k
				}
			}
			r := pickSet[bi]
			if isSchedulable(jobIdx, r) {
				assign(jobIdx, r)
				placed = true
				break
			}
			pickSet = append(pickSet[:bi], pickSet[bi+1:]...)
		}
		if !placed {
			// Lines 31-32: no more resources.
			h.infeasible.Inc()
			return Decision{Mapping: mapping, Feasible: false}
		}
	}

	return Decision{Mapping: mapping, Feasible: true, Energy: p.Energy(mapping)}
}

// Admit runs the Sec 4.1 admission protocol: solve with the predicted
// job(s) included; on failure, drop predicted jobs one at a time —
// farthest forecast horizon first, since distant forecasts are both least
// certain and least binding — and re-solve, finally attempting the plain
// no-prediction problem. The returned mapping always covers p.Jobs
// (dropped predicted jobs map to sched.Unmapped); admitted reports whether
// the arriving task is accepted. With the paper's single-step prediction
// this reduces exactly to Sec 4.1's with/without fallback.
func Admit(s Solver, p *sched.Problem) (d Decision, admitted bool) {
	cur := p
	for {
		d = s.Solve(cur)
		if d.Feasible {
			return inflate(p, cur, d), true
		}
		// Drop the latest-arriving predicted job, if any remain.
		drop := -1
		for i, j := range cur.Jobs {
			if j.Predicted && (drop == -1 || j.Arrival > cur.Jobs[drop].Arrival) {
				drop = i
			}
		}
		if drop == -1 {
			mapping := make([]int, len(p.Jobs))
			for i := range mapping {
				mapping[i] = sched.Unmapped
			}
			return Decision{Mapping: mapping, Feasible: false}, false
		}
		cur = cur.Without(drop)
	}
}

// inflate lifts a sub-problem decision back onto the original problem's
// job order; jobs dropped from the sub-problem become Unmapped.
func inflate(p, cur *sched.Problem, d Decision) Decision {
	if len(cur.Jobs) == len(p.Jobs) {
		return d
	}
	byJob := make(map[*sched.Job]int, len(cur.Jobs))
	for i, j := range cur.Jobs {
		byJob[j] = d.Mapping[i]
	}
	full := make([]int, len(p.Jobs))
	for i, j := range p.Jobs {
		if r, ok := byJob[j]; ok {
			full[i] = r
		} else {
			full[i] = sched.Unmapped
		}
	}
	return Decision{Mapping: full, Feasible: true, Energy: d.Energy}
}
