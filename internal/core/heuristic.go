// Package core implements the paper's primary contribution: the fast
// knapsack-style mapping heuristic (Algorithm 1, Sec 4.3) and the admission
// protocol that wraps any mapping solver with the with-/without-prediction
// fallback (Sec 4.1).
//
// The heuristic treats resources as knapsacks whose capacity is the
// available processing time within the decision window K̄, and tasks as
// items weighted by cpm. Tasks are assigned in max-regret order: the task
// whose best and second-best resources differ most in desirability is
// placed first, on its most desirable resource that passes the EDF
// schedulability check.
package core

import (
	"math"

	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
)

// bigM is the Algorithm 1 penalty making a resource undesirable when the
// task's execution demand exceeds its deadline slack. Any value safely
// above all reachable energy sums works; energies are O(10) per task and
// problems hold tens of tasks.
const bigM = 1e9

// Decision is a solver's answer for one Problem.
type Decision struct {
	// Mapping assigns Problem.Jobs[i] to resource Mapping[i]; sched.Unmapped
	// if the solver failed.
	Mapping []int
	// Feasible reports whether Mapping schedules every job (including a
	// predicted one) within its deadline.
	Feasible bool
	// Energy is the objective value of Mapping when feasible.
	Energy float64
}

// Solver maps all jobs of a problem at once. Implementations must treat
// the problem as read-only — also because a solver may parallelise
// internally (exact.Optimal with Workers > 1 shares one Problem across its
// search goroutines). The concurrency contract is one-sided: Solve is
// called from a single goroutine at a time per instance, and whatever
// concurrency an implementation uses stays behind that call.
type Solver interface {
	Solve(p *sched.Problem) Decision
}

// Heuristic is the paper's Algorithm 1. The zero value is ready to use.
//
// A Heuristic keeps a reusable scratch arena (mapping, capacities,
// per-resource entry lists, the cpm/desirability matrices and the
// incremental feasible-set caches) that is reset — not reallocated — on
// every Solve, so the decision hot path is allocation-free in steady state
// apart from the returned Decision.Mapping. It is therefore not safe for
// concurrent use: give each goroutine its own instance.
type Heuristic struct {
	// Greedy disables the max-regret task ordering and assigns jobs in
	// index order instead (ablation A1). The per-resource capacity and
	// schedulability machinery is unchanged.
	Greedy bool

	// Cache, when non-nil, routes the placement EDF probes through a
	// cross-activation feasibility cache (sched.FeasCache) keyed by the
	// PR 5 entry-list fingerprints. A cached verdict is by construction
	// the verdict the probe would have computed, so decisions are
	// unchanged — this is the heuristic's warm start: consecutive
	// activations answer most probes from each other's work. Nil (the
	// zero value) keeps the probes direct and pays nothing.
	Cache *sched.FeasCache

	// Telemetry instruments (nil-safe no-ops until AttachMetrics).
	solves, infeasible   *telemetry.Counter
	problemJobs          *telemetry.Histogram
	repairs, repairFail  *telemetry.Counter
	cacheHits, cacheMiss *telemetry.Counter
	cacheRate            *telemetry.Gauge

	// prov, when attached, records candidate feasibility verdicts and the
	// regret placement order (nil-safe no-op otherwise; the hot path pays
	// one nil check).
	prov *telemetry.ProvRecorder

	// Per-solve state, valid between the top of Solve and its return.
	p *sched.Problem
	n int // p.Platform.Len()

	// Scratch arena. cpm and des flatten the [job][resource] matrices as
	// job*n+r; feas flattens the feasible-set membership the same way.
	mapping    []int
	capacity   []float64
	lists      []sched.EntryList
	edf        sched.EDFScratch
	cpm        []float64
	des        []float64
	feas       []bool
	feasCount  []int
	best       []float64 // best desirability over the current feasible set
	second     []float64 // second-best desirability (+Inf when |F_j| == 1)
	unassigned []int
	pickSet    []int

	// delta is the Repair scratch; hitsDelta/missDelta batch the cache
	// probe statistics per solve (flushed into Cache and the instruments).
	delta                sched.MappingDelta
	hitsDelta, missDelta int64

	// Indexed candidate-scan state (indexed.go): the per-type candidate
	// orders, the per-job best/second summaries and the shared candidate
	// iterator. noIndex pins the plain path for differential tests.
	ord     map[*task.Type][]int32
	cand    []candSummary
	it      candIter
	noIndex bool
}

var _ Solver = (*Heuristic)(nil)
var _ telemetry.Instrumentable = (*Heuristic)(nil)
var _ telemetry.ProvenanceAware = (*Heuristic)(nil)

// AttachMetrics registers the heuristic's instruments on reg: counters
// core.solves and core.infeasible, histogram core.problem_jobs, the
// warm-start counters core.warmstart.repairs / core.warmstart.repair_fail
// (Repair attempts and fallbacks), and the probe-cache counters
// core.cache.hits / core.cache.misses plus the core.cache.hit_rate gauge
// (all zero while Cache is nil).
func (h *Heuristic) AttachMetrics(reg *telemetry.Registry) {
	h.solves = reg.Counter("core.solves")
	h.infeasible = reg.Counter("core.infeasible")
	h.problemJobs = reg.Histogram("core.problem_jobs", telemetry.CountBuckets)
	h.repairs = reg.Counter("core.warmstart.repairs")
	h.repairFail = reg.Counter("core.warmstart.repair_fail")
	h.cacheHits = reg.Counter("core.cache.hits")
	h.cacheMiss = reg.Counter("core.cache.misses")
	h.cacheRate = reg.Gauge("core.cache.hit_rate")
}

// flushCacheStats folds the batched probe counters into the cache and the
// instruments. Cheap no-op without a cache.
func (h *Heuristic) flushCacheStats() {
	if h.Cache == nil {
		return
	}
	h.Cache.AddStats(h.hitsDelta, h.missDelta)
	h.cacheHits.Add(h.hitsDelta)
	h.cacheMiss.Add(h.missDelta)
	h.hitsDelta, h.missDelta = 0, 0
	h.cacheRate.Set(h.Cache.Stats().HitRate())
}

// AttachProvenance installs the decision-provenance recorder
// (telemetry.ProvenanceAware). While attached, Solve records one
// CandidateVerdict per (job, resource) consideration — with the tightest
// slack and broken deadline of failed EDF probes — and one PickStep per
// max-regret placement.
func (h *Heuristic) AttachProvenance(rec *telemetry.ProvRecorder) { h.prov = rec }

// growCommon sizes the arena pieces shared by the plain and indexed
// paths: job-indexed scratch, per-resource capacities and entry lists.
func (h *Heuristic) growCommon(m, n int) {
	if cap(h.mapping) < m {
		h.mapping = make([]int, m)
		h.feasCount = make([]int, m)
		h.best = make([]float64, m)
		h.second = make([]float64, m)
		h.unassigned = make([]int, 0, m)
	}
	if cap(h.capacity) < n {
		h.capacity = make([]float64, n)
		h.pickSet = make([]int, 0, n)
	}
	if len(h.lists) < n {
		h.lists = append(h.lists, make([]sched.EntryList, n-len(h.lists))...)
	}
}

// grow sizes the arena for m jobs on n resources, reusing prior capacity.
// The m×n matrices are the plain path's; the indexed path (indexed.go)
// deliberately never materialises them.
func (h *Heuristic) grow(m, n int) {
	h.growCommon(m, n)
	if cap(h.cpm) < m*n {
		h.cpm = make([]float64, m*n)
		h.des = make([]float64, m*n)
		h.feas = make([]bool, m*n)
	}
}

// Solve runs Algorithm 1 on p. On large platforms the candidate scan
// runs through the per-type resource index (indexed.go) instead of the
// materialised m×n matrices; the decision is identical either way.
func (h *Heuristic) Solve(p *sched.Problem) Decision {
	h.solves.Inc()
	h.problemJobs.Observe(float64(len(p.Jobs)))
	h.Cache.Advance()
	if p.Platform.Len() >= indexedMinResources && !h.prov.Enabled() && !h.noIndex {
		return h.solveIndexed(p)
	}
	jobs := p.Jobs
	m, n := len(jobs), p.Platform.Len()
	h.p, h.n = p, n
	h.grow(m, n)

	mapping := h.mapping[:m]
	for i := range mapping {
		mapping[i] = sched.Unmapped
	}

	// Per-resource remaining capacity K̄_i and the entries mapped so far
	// (for the schedulability probes), kept in FeasibleSorted service order.
	window := p.Window()
	capacity := h.capacity[:n]
	for i := range capacity {
		capacity[i] = window
		h.lists[i].Reset()
		if h.Cache != nil {
			h.lists[i].EnableFingerprint(p.Time)
		}
	}

	// Desirability f_{j,i} = ep + em + M·(cpm > t_left); +Inf when the
	// type cannot run on i (line 6 of Algorithm 1). cpm, epm and t_left
	// are invariant over one solve, so the matrix is evaluated once and
	// serves both the max-regret loop and the placement loop.
	cpm := h.cpm[:m*n]
	des := h.des[:m*n]
	for ji, j := range jobs {
		tl := j.TimeLeft(p.Time)
		base := ji * n
		for r := 0; r < n; r++ {
			c := j.CPM(r, p.Policy)
			cpm[base+r] = c
			if c == task.NotExecutable {
				des[base+r] = math.Inf(1)
				continue
			}
			e := j.EPM(r, p.Policy)
			if c > tl+sched.Eps {
				e += bigM
			}
			des[base+r] = e
		}
	}

	// Pinned jobs are not free decisions: pre-assign them so the heuristic
	// plans around the work it cannot move.
	unassigned := h.unassigned[:0]
	for idx, j := range jobs {
		if j.Fixed || j.Pinned(p.Platform) {
			h.assign(idx, j.Resource)
			continue
		}
		unassigned = append(unassigned, idx)
	}
	h.unassigned = unassigned

	// Seed F_j, best/second desirability and thereby the regrets. From
	// here the caches are maintained incrementally: an assignment changes
	// only one resource's capacity, so only that column can evict members.
	for _, ji := range unassigned {
		h.refresh(ji)
	}

	for len(unassigned) > 0 {
		// Select the next job: max regret d* (lines 8-20), or first in
		// index order for the greedy ablation.
		pick := -1
		if h.Greedy {
			pick = 0
			if h.feasCount[unassigned[0]] == 0 {
				return h.fail(mapping, unassigned[0])
			}
		} else {
			dStar := math.Inf(-1)
			for u, ji := range unassigned {
				if h.feasCount[ji] == 0 {
					// Line 22: no solution.
					return h.fail(mapping, ji)
				}
				d := h.second[ji] - h.best[ji] // +Inf when |F_j| == 1 (line 14)
				if d > dStar {
					dStar = d
					pick = u
				}
			}
		}

		jobIdx := unassigned[pick]
		unassigned = append(unassigned[:pick], unassigned[pick+1:]...)

		// Map j* to the most desirable schedulable resource (lines 24-34).
		base := jobIdx * n
		ps := h.pickSet[:0]
		for r := 0; r < n; r++ {
			if h.feas[base+r] {
				ps = append(ps, r)
			}
		}
		recording := h.prov.Enabled()
		placed := false
		for len(ps) > 0 {
			bi, bf := -1, math.Inf(1)
			for k, r := range ps {
				if f := des[base+r]; f < bf {
					bf, bi = f, k
				}
			}
			r := ps[bi]
			// Trial-insert the candidate at its service position; on
			// success the entry is already final, on failure it is backed
			// out and the next resource tried.
			pos := h.insertEntry(jobIdx, r)
			preempt := p.Platform.Resource(r).Preemptable()
			var ok bool
			if recording {
				// Explain-mode probe: same verdict, plus the tightest
				// slack and the deadline that broke.
				fv := h.lists[r].FeasibleExplain(preempt, p.Time)
				ok = fv.Feasible
				cv := telemetry.CandidateVerdict{
					Job: jobs[jobIdx].ID, Res: r, Des: bf,
					Slack: fv.Slack, Preempt: preempt, EDFPath: fv.EDFPath,
				}
				if ok {
					cv.Verdict = telemetry.VerdictChosen
				} else {
					cv.Verdict = telemetry.VerdictEDFInfeasible
					cv.Deadline = fv.BreachDeadline
				}
				h.prov.Candidate(cv)
			} else {
				ok = h.lists[r].FeasibleCached(preempt, p.Time, h.Cache, &h.edf,
					&h.hitsDelta, &h.missDelta)
			}
			if ok {
				mapping[jobIdx] = r
				capacity[r] -= cpm[base+r]
				h.invalidateColumn(r, unassigned)
				if recording {
					regret := h.second[jobIdx] - h.best[jobIdx]
					h.prov.Pick(jobs[jobIdx].ID, regret, r)
					for _, nr := range ps {
						if nr == r {
							continue
						}
						h.prov.Candidate(telemetry.CandidateVerdict{
							Job: jobs[jobIdx].ID, Res: nr,
							Verdict: telemetry.VerdictNotTried, Des: des[base+nr],
						})
					}
				}
				placed = true
				break
			}
			h.lists[r].Remove(p.Time, pos)
			ps = append(ps[:bi], ps[bi+1:]...)
		}
		if !placed {
			// Lines 31-32: no more resources.
			return h.fail(mapping, jobIdx)
		}
	}

	h.flushCacheStats()
	out := append([]int(nil), mapping...)
	return Decision{Mapping: out, Feasible: true, Energy: p.Energy(out)}
}

// assign books job jobIdx onto resource r: mapping, capacity, entry list.
// Used for the pinned pre-assignments; free jobs are booked inline by the
// placement loop, whose trial insert already placed the entry.
func (h *Heuristic) assign(jobIdx, r int) {
	h.mapping[jobIdx] = r
	h.capacity[r] -= h.cpm[jobIdx*h.n+r]
	h.insertEntry(jobIdx, r)
}

// insertEntry places job jobIdx's feasibility entry for resource r into
// the resource's sorted list and returns its position.
func (h *Heuristic) insertEntry(jobIdx, r int) int {
	return h.insertEntryC(jobIdx, r, h.cpm[jobIdx*h.n+r])
}

// insertEntryC is insertEntry with the cpm value supplied by the caller
// — the indexed path computes cpm on demand instead of reading the
// matrix.
func (h *Heuristic) insertEntryC(jobIdx, r int, c float64) int {
	j := h.p.Jobs[jobIdx]
	return h.lists[r].Insert(h.p.Time, sched.Entry{
		ReadyAt:     math.Max(j.Arrival, h.p.Time),
		Deadline:    j.AbsDeadline,
		Rem:         c,
		PinnedFirst: j.Pinned(h.p.Platform) && j.Resource == r,
	})
}

// refresh recomputes job ji's feasible set F_j — resources whose remaining
// capacity fits the job (line 10) — and its cached best/second
// desirabilities from the current capacities.
func (h *Heuristic) refresh(ji int) {
	base := ji * h.n
	cnt := 0
	b, s := math.Inf(1), math.Inf(1)
	for r := 0; r < h.n; r++ {
		c := h.cpm[base+r]
		ok := c != task.NotExecutable && c <= h.capacity[r]+sched.Eps
		h.feas[base+r] = ok
		if !ok {
			continue
		}
		cnt++
		if f := h.des[base+r]; f < b {
			b, s = f, b
		} else if f < s {
			s = f
		}
	}
	h.feasCount[ji] = cnt
	h.best[ji] = b
	h.second[ji] = s
}

// invalidateColumn re-evaluates resource r's membership for every job in
// unassigned after r's capacity shrank. Capacities only ever decrease, so
// membership can only be lost; jobs whose F_j kept r are untouched and
// their cached regrets stay valid.
func (h *Heuristic) invalidateColumn(r int, unassigned []int) {
	for _, ji := range unassigned {
		if h.feas[ji*h.n+r] && h.cpm[ji*h.n+r] > h.capacity[r]+sched.Eps {
			h.refresh(ji)
		}
	}
}

// fail returns the infeasible decision over a copy of the partial mapping.
// failJob is the job that killed the solve; under provenance its remaining
// candidate verdicts are recorded so every rejection explains the full
// resource picture for the job that could not be placed.
func (h *Heuristic) fail(mapping []int, failJob int) Decision {
	h.infeasible.Inc()
	h.flushCacheStats()
	if h.prov.Enabled() {
		h.recordExcluded(failJob)
	}
	return Decision{Mapping: append([]int(nil), mapping...), Feasible: false}
}

// recordExcluded records why each resource outside job ji's feasible set
// was never probed: the type cannot run there, or the remaining window
// capacity no longer fits. Resources still in the set were (or are about to
// be counted as) probed by the placement loop and are skipped here.
func (h *Heuristic) recordExcluded(ji int) {
	base := ji * h.n
	jobID := h.p.Jobs[ji].ID
	for r := 0; r < h.n; r++ {
		if h.feas[base+r] {
			continue
		}
		cv := telemetry.CandidateVerdict{Job: jobID, Res: r}
		if h.cpm[base+r] == task.NotExecutable {
			cv.Verdict = telemetry.VerdictNotExecutable
		} else {
			cv.Verdict = telemetry.VerdictNoCapacity
			cv.Des = h.des[base+r]
		}
		h.prov.Candidate(cv)
	}
}

// Admit runs the Sec 4.1 admission protocol: solve with the predicted
// job(s) included; on failure, drop predicted jobs one at a time —
// farthest forecast horizon first, since distant forecasts are both least
// certain and least binding — and re-solve, finally attempting the plain
// no-prediction problem. The returned mapping always covers p.Jobs
// (dropped predicted jobs map to sched.Unmapped); admitted reports whether
// the arriving task is accepted. With the paper's single-step prediction
// this reduces exactly to Sec 4.1's with/without fallback.
//
// A FallibleSolver failure is mapped to a rejection; callers that need
// the cause (the simulator) use AdmitChecked instead.
func Admit(s Solver, p *sched.Problem) (d Decision, admitted bool) {
	d, admitted, err := AdmitChecked(s, p)
	if err != nil {
		return rejectAll(p), false
	}
	return d, admitted
}

// inflate lifts a sub-problem decision back onto the original problem's
// job order; jobs dropped from the sub-problem become Unmapped.
func inflate(p, cur *sched.Problem, d Decision) Decision {
	if len(cur.Jobs) == len(p.Jobs) {
		return d
	}
	byJob := make(map[*sched.Job]int, len(cur.Jobs))
	for i, j := range cur.Jobs {
		byJob[j] = d.Mapping[i]
	}
	full := make([]int, len(p.Jobs))
	for i, j := range p.Jobs {
		if r, ok := byJob[j]; ok {
			full[i] = r
		} else {
			full[i] = sched.Unmapped
		}
	}
	return Decision{Mapping: full, Feasible: true, Energy: d.Energy}
}
