package core

import (
	"strings"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
)

// TestProvenanceHeuristicCandidates checks the heuristic's recording on
// the motivational instance: an admitted job leaves a chosen verdict, a
// pick step, and not_tried verdicts for the losing candidates.
func TestProvenanceHeuristicCandidates(t *testing.T) {
	rec := telemetry.NewProvRecorder()
	h := &Heuristic{}
	h.AttachProvenance(rec)
	d := h.Solve(motivationalProblem(false))
	if !d.Feasible {
		t.Fatal("motivational instance must be feasible")
	}
	p := rec.Snapshot()
	if len(p.Picks) != 1 || p.Picks[0].Job != 0 || p.Picks[0].Res != 2 {
		t.Fatalf("picks = %+v, want job 0 on GPU (2)", p.Picks)
	}
	chosen, notTried := 0, 0
	for _, c := range p.Candidates {
		switch c.Verdict {
		case telemetry.VerdictChosen:
			chosen++
			if c.Res != 2 || c.Slack <= 0 {
				t.Fatalf("chosen verdict = %+v, want GPU with positive slack", c)
			}
		case telemetry.VerdictNotTried:
			notTried++
		default:
			t.Fatalf("unexpected verdict %+v", c)
		}
	}
	if chosen != 1 || notTried < 1 {
		t.Fatalf("verdicts: %d chosen, %d not_tried (want 1, >=1): %+v", chosen, notTried, p.Candidates)
	}
}

// TestProvenanceHeuristicRejection checks that rejections record the full
// resource picture for the failing job, for both ways Algorithm 1 can
// fail: a capacity-empty feasible set (line 22), and EDF probes breaking
// on every candidate (lines 31-32).
func TestProvenanceHeuristicRejection(t *testing.T) {
	ts := task.Motivational()

	// Capacity exhaustion: both tasks only fit the GPU within their
	// deadlines and the GPU cannot hold both, so the second job's feasible
	// set empties before any EDF probe (see TestHeuristicInfeasibleOverload).
	j1 := sched.NewJob(0, ts.Type(0), 0, 5.5)
	j2 := sched.NewJob(1, ts.Type(1), 0, 3.5)
	p := &sched.Problem{
		Platform: platform.Motivational(),
		Time:     0,
		Jobs:     []*sched.Job{j1, j2},
	}
	rec := telemetry.NewProvRecorder()
	h := &Heuristic{}
	h.AttachProvenance(rec)
	if d := h.Solve(p); d.Feasible {
		t.Fatalf("overloaded GPU accepted: %v", d.Mapping)
	}
	excluded := 0
	for _, c := range rec.Snapshot().Candidates {
		if c.Verdict == telemetry.VerdictNoCapacity || c.Verdict == telemetry.VerdictNotExecutable {
			excluded++
			if c.Job != 1 {
				t.Fatalf("excluded verdict for job %d, want failing job 1: %+v", c.Job, c)
			}
		}
	}
	if excluded == 0 {
		t.Fatal("capacity rejection recorded no excluded resources")
	}

	// Deadline breach: job 1's deadline (2.5) is shorter than its fastest
	// execution anywhere, so every resource stays in the feasible set by
	// capacity but fails the EDF probe.
	j3 := sched.NewJob(0, ts.Type(0), 0, 8)
	j4 := sched.NewJob(1, ts.Type(1), 0, 2.5)
	p = &sched.Problem{
		Platform: platform.Motivational(),
		Time:     0,
		Jobs:     []*sched.Job{j3, j4},
	}
	rec.Reset()
	if d := h.Solve(p); d.Feasible {
		t.Fatalf("unmeetable deadline accepted: %v", d.Mapping)
	}
	edfInfeasible := 0
	for _, c := range rec.Snapshot().Candidates {
		if c.Verdict != telemetry.VerdictEDFInfeasible {
			continue
		}
		edfInfeasible++
		if c.Job != 1 || c.Slack >= 0 || c.Deadline != 2.5 {
			t.Fatalf("edf_infeasible verdict carries no breach: %+v", c)
		}
	}
	if edfInfeasible == 0 {
		t.Fatal("deadline rejection recorded no failed EDF probe")
	}
}

// TestProvenanceStageHops checks the chain recording: each stage attempt
// leaves a hop with its outcome (error text and panic distinguished), and
// a chain that bottoms out leaves a terminal reject_only hop.
func TestProvenanceStageHops(t *testing.T) {
	rec := telemetry.NewProvRecorder()
	b := &BudgetedSolver{Stages: []Stage{
		{Name: "flaky", Solver: &errStub{}},
		{Name: "crashy", Solver: panicStub{}},
		{Name: "safe", Solver: &okStub{}},
	}}
	b.AttachProvenance(rec)
	if d := b.Solve(testProblem()); !d.Feasible {
		t.Fatal("chain should reach the feasible stage")
	}
	hops := rec.Snapshot().Stages
	if len(hops) != 3 {
		t.Fatalf("hops = %+v, want 3", hops)
	}
	if hops[0].Outcome != telemetry.StageError || !strings.Contains(hops[0].Err, "stub failure") {
		t.Fatalf("hop 0 = %+v, want error with stub failure text", hops[0])
	}
	if hops[1].Outcome != telemetry.StagePanic || !strings.Contains(hops[1].Err, "stub panic") {
		t.Fatalf("hop 1 = %+v, want recovered panic", hops[1])
	}
	if hops[2].Outcome != telemetry.StageServed || hops[2].Name != "safe" {
		t.Fatalf("hop 2 = %+v, want served by safe", hops[2])
	}

	rec.Reset()
	bottom := &BudgetedSolver{Stages: []Stage{{Name: "flaky", Solver: &errStub{}}}}
	bottom.AttachProvenance(rec)
	if d := bottom.Solve(testProblem()); d.Feasible {
		t.Fatal("single failing stage must reject")
	}
	hops = rec.Snapshot().Stages
	if len(hops) != 2 || hops[1].Outcome != telemetry.StageRejectOnly || hops[1].Stage != 1 {
		t.Fatalf("bottom-out hops = %+v, want terminal reject_only at stage 1", hops)
	}
}

// TestProvenanceAdmitAttempts checks AdmitProv's protocol recording: one
// attempt per solve, with the predicted-job count and outcome of each.
func TestProvenanceAdmitAttempts(t *testing.T) {
	ts := task.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 8)
	jp := sched.NewJob(1, ts.Type(1), 1, 5)
	jp.Predicted = true
	p := &sched.Problem{
		Platform: platform.Motivational(),
		Time:     0,
		Jobs:     []*sched.Job{j1, jp},
	}
	// Scripted solver: infeasible while the prediction is present, feasible
	// once dropped — forcing exactly one protocol fallback.
	s := &predRejectStub{}
	rec := telemetry.NewProvRecorder()
	d, admitted, err := AdmitProv(s, p, rec)
	if err != nil || !admitted || !d.Feasible {
		t.Fatalf("admit = (%v, %v, %v)", d, admitted, err)
	}
	a := rec.Snapshot().Attempts
	if len(a) != 2 {
		t.Fatalf("attempts = %+v, want 2", a)
	}
	if a[0].Jobs != 2 || a[0].Predicted != 1 || a[0].Feasible {
		t.Fatalf("attempt 0 = %+v, want infeasible 2-job solve with 1 prediction", a[0])
	}
	if a[1].Jobs != 1 || a[1].Predicted != 0 || !a[1].Feasible {
		t.Fatalf("attempt 1 = %+v, want feasible plain solve", a[1])
	}
}

// predRejectStub rejects any problem containing a predicted job.
type predRejectStub struct{}

func (predRejectStub) Solve(p *sched.Problem) Decision {
	mapping := make([]int, len(p.Jobs))
	for _, j := range p.Jobs {
		if j.Predicted {
			for i := range mapping {
				mapping[i] = sched.Unmapped
			}
			return Decision{Mapping: mapping, Feasible: false}
		}
	}
	return Decision{Mapping: mapping, Feasible: true, Energy: 1}
}
