package core

// referenceSolve is the seed implementation of Algorithm 1, kept verbatim
// as the behavioural oracle for the optimized Heuristic: it recomputes
// feasible sets and desirabilities from scratch on every max-regret
// iteration and allocates fresh trial buffers per schedulability probe.
// The differential test below asserts the arena-based solver produces
// bit-identical decisions over large seeded problem populations.

import (
	"math"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

func referenceSolve(p *sched.Problem, greedy bool) Decision {
	n := p.Platform.Len()
	jobs := p.Jobs
	mapping := make([]int, len(jobs))
	for i := range mapping {
		mapping[i] = sched.Unmapped
	}

	window := p.Window()
	capacity := make([]float64, n)
	for i := range capacity {
		capacity[i] = window
	}
	entries := make([][]sched.Entry, n)

	assign := func(jobIdx, r int) {
		mapping[jobIdx] = r
		cpm := jobs[jobIdx].CPM(r, p.Policy)
		capacity[r] -= cpm
		j := jobs[jobIdx]
		entries[r] = append(entries[r], sched.Entry{
			ReadyAt:     math.Max(j.Arrival, p.Time),
			Deadline:    j.AbsDeadline,
			Rem:         cpm,
			PinnedFirst: j.Pinned(p.Platform) && j.Resource == r,
		})
	}

	unassigned := make([]int, 0, len(jobs))
	for idx, j := range jobs {
		if j.Fixed || j.Pinned(p.Platform) {
			assign(idx, j.Resource)
			continue
		}
		unassigned = append(unassigned, idx)
	}

	desirability := func(jobIdx, r int) float64 {
		j := jobs[jobIdx]
		e := j.EPM(r, p.Policy)
		if e == task.NotExecutable {
			return math.Inf(1)
		}
		if j.CPM(r, p.Policy) > j.TimeLeft(p.Time)+sched.Eps {
			e += bigM
		}
		return e
	}

	isSchedulable := func(jobIdx, r int) bool {
		j := jobs[jobIdx]
		cand := sched.Entry{
			ReadyAt:  math.Max(j.Arrival, p.Time),
			Deadline: j.AbsDeadline,
			Rem:      j.CPM(r, p.Policy),
		}
		trial := append(append(make([]sched.Entry, 0, len(entries[r])+1), entries[r]...), cand)
		return sched.ResourceFeasible(p.Platform.Resource(r).Preemptable(), p.Time, trial)
	}

	feasibleSet := func(jobIdx int) []int {
		var fs []int
		for r := 0; r < n; r++ {
			cpm := jobs[jobIdx].CPM(r, p.Policy)
			if cpm != task.NotExecutable && cpm <= capacity[r]+sched.Eps {
				fs = append(fs, r)
			}
		}
		return fs
	}

	for len(unassigned) > 0 {
		pick := -1
		var pickSet []int
		if greedy {
			pick = 0
			pickSet = feasibleSet(unassigned[0])
			if len(pickSet) == 0 {
				return Decision{Mapping: mapping, Feasible: false}
			}
		} else {
			dStar := math.Inf(-1)
			for u, jobIdx := range unassigned {
				fs := feasibleSet(jobIdx)
				if len(fs) == 0 {
					return Decision{Mapping: mapping, Feasible: false}
				}
				best, second := math.Inf(1), math.Inf(1)
				for _, r := range fs {
					f := desirability(jobIdx, r)
					if f < best {
						best, second = f, best
					} else if f < second {
						second = f
					}
				}
				d := second - best
				if d > dStar {
					dStar = d
					pick = u
					pickSet = fs
				}
			}
		}

		jobIdx := unassigned[pick]
		unassigned = append(unassigned[:pick], unassigned[pick+1:]...)

		placed := false
		for len(pickSet) > 0 {
			bi, bf := -1, math.Inf(1)
			for k, r := range pickSet {
				if f := desirability(jobIdx, r); f < bf {
					bf, bi = f, k
				}
			}
			r := pickSet[bi]
			if isSchedulable(jobIdx, r) {
				assign(jobIdx, r)
				placed = true
				break
			}
			pickSet = append(pickSet[:bi], pickSet[bi+1:]...)
		}
		if !placed {
			return Decision{Mapping: mapping, Feasible: false}
		}
	}

	return Decision{Mapping: mapping, Feasible: true, Energy: p.Energy(mapping)}
}

// diffProblems yields the differential-test population: the default 5-CPU
// + 1-GPU platform and the motivational 2-CPU + 1-GPU one, with jobs
// mixing fresh, mapped, started (pinned), fixed, and predicted states.
func diffProblems(t *testing.T, trials int) []*sched.Problem {
	t.Helper()
	platD := platform.Default()
	setD, err := task.Generate(platD, task.DefaultGenConfig(), rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	platM := platform.Motivational()
	setM, err := task.Generate(platM, func() task.GenConfig {
		c := task.DefaultGenConfig()
		c.NumTypes = 40
		return c
	}(), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(97)
	ps := make([]*sched.Problem, 0, trials)
	for i := 0; i < trials; i++ {
		if i%2 == 0 {
			ps = append(ps, randomProblem(r, platD, setD))
		} else {
			ps = append(ps, randomProblem(r, platM, setM))
		}
	}
	return ps
}

// TestHeuristicMatchesReference is the refactor's equivalence proof: the
// optimized solver must produce the identical Decision — mapping,
// feasibility, and energy — as the seed implementation on every problem of
// a large seeded population, in both max-regret and greedy modes, reusing
// one solver instance throughout so stale arena state would be caught.
func TestHeuristicMatchesReference(t *testing.T) {
	problems := diffProblems(t, 1200)
	solvers := map[string]*Heuristic{
		"regret": {},
		"greedy": {Greedy: true},
	}
	for name, h := range solvers {
		feasible := 0
		for i, p := range problems {
			got := h.Solve(p)
			want := referenceSolve(p, h.Greedy)
			if got.Feasible != want.Feasible {
				t.Fatalf("%s trial %d: feasible=%v, reference=%v", name, i, got.Feasible, want.Feasible)
			}
			if len(got.Mapping) != len(want.Mapping) {
				t.Fatalf("%s trial %d: mapping length %d, reference %d", name, i, len(got.Mapping), len(want.Mapping))
			}
			for k := range got.Mapping {
				if got.Mapping[k] != want.Mapping[k] {
					t.Fatalf("%s trial %d: mapping %v, reference %v", name, i, got.Mapping, want.Mapping)
				}
			}
			if got.Energy != want.Energy {
				t.Fatalf("%s trial %d: energy %v, reference %v", name, i, got.Energy, want.Energy)
			}
			if want.Feasible {
				feasible++
			}
		}
		if feasible == 0 {
			t.Fatalf("%s: no feasible instances; generator too harsh for a meaningful test", name)
		}
	}
}

// TestHeuristicEntryListInvariant is the sorted-insertion property test:
// after every solve, each per-resource entry list must satisfy the
// FeasibleSorted precondition (pinned prefix group, non-decreasing
// deadlines) with a correct future-release count — the invariant the
// allocation-free fast path depends on.
func TestHeuristicEntryListInvariant(t *testing.T) {
	problems := diffProblems(t, 400)
	h := &Heuristic{}
	for i, p := range problems {
		h.Solve(p)
		for r := 0; r < p.Platform.Len(); r++ {
			if err := h.lists[r].Invariant(p.Time); err != nil {
				t.Fatalf("trial %d resource %d: %v", i, r, err)
			}
		}
	}
}
