package core

import (
	"errors"
	"strings"
	"testing"

	"predrm/internal/sched"
	"predrm/internal/telemetry"
)

// okStub returns a fixed feasible decision.
type okStub struct{ calls int }

func (s *okStub) Solve(p *sched.Problem) Decision {
	s.calls++
	mapping := make([]int, len(p.Jobs))
	return Decision{Mapping: mapping, Feasible: true, Energy: 1}
}

// errStub always fails through SolveChecked.
type errStub struct{ calls int }

func (s *errStub) Solve(p *sched.Problem) Decision {
	d, _ := s.SolveChecked(p)
	return d
}

func (s *errStub) SolveChecked(p *sched.Problem) (Decision, error) {
	s.calls++
	return Decision{}, errors.New("stub failure")
}

// panicStub panics on every solve.
type panicStub struct{}

func (panicStub) Solve(p *sched.Problem) Decision { panic("stub panic") }

// budgetStub is a BudgetAware solver with scripted outcomes.
type budgetStub struct {
	feasible  bool
	exhausted bool
	nodes     int
	applied   Budget
}

func (s *budgetStub) Solve(p *sched.Problem) Decision {
	mapping := make([]int, len(p.Jobs))
	if !s.feasible {
		for i := range mapping {
			mapping[i] = sched.Unmapped
		}
	}
	return Decision{Mapping: mapping, Feasible: s.feasible}
}

func (s *budgetStub) ApplyBudget(b Budget) { s.applied = b }
func (s *budgetStub) BudgetUsed() BudgetUse {
	return BudgetUse{Nodes: s.nodes, Exhausted: s.exhausted}
}

func testProblem() *sched.Problem {
	return motivationalProblem(false)
}

func TestRejectOnly(t *testing.T) {
	p := testProblem()
	d := RejectOnly{}.Solve(p)
	if d.Feasible {
		t.Fatal("reject-only must be infeasible")
	}
	for i, m := range d.Mapping {
		if m != sched.Unmapped {
			t.Fatalf("job %d mapped to %d", i, m)
		}
	}
}

func TestBudgetedSolverFallsThroughOnError(t *testing.T) {
	primary := &errStub{}
	backup := &okStub{}
	b := &BudgetedSolver{Stages: []Stage{
		{Name: "primary", Solver: primary},
		{Name: "backup", Solver: backup},
	}}
	reg := telemetry.NewRegistry()
	b.AttachMetrics(reg)

	d := b.Solve(testProblem())
	if !d.Feasible {
		t.Fatal("backup stage should have answered")
	}
	if primary.calls != 1 || backup.calls != 1 {
		t.Fatalf("calls = %d/%d, want 1/1", primary.calls, backup.calls)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["resilience.fallbacks"]; got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
	if got := snap.Counters["resilience.stage_errors"]; got != 1 {
		t.Fatalf("stage_errors = %d, want 1", got)
	}
	if got := snap.Counters["resilience.reject_only"]; got != 0 {
		t.Fatalf("reject_only = %d, want 0", got)
	}
}

func TestBudgetedSolverPanicAbsorbed(t *testing.T) {
	b := &BudgetedSolver{Stages: []Stage{
		{Name: "boom", Solver: panicStub{}},
		{Name: "backup", Solver: &okStub{}},
	}}
	d := b.Solve(testProblem())
	if !d.Feasible {
		t.Fatal("panic must fall through, not propagate")
	}
}

func TestBudgetedSolverRejectOnlyTerminal(t *testing.T) {
	b := &BudgetedSolver{Stages: []Stage{{Name: "primary", Solver: &errStub{}}}}
	reg := telemetry.NewRegistry()
	b.AttachMetrics(reg)
	var sink strings.Builder
	b.Tracer = telemetry.NewTracer(telemetry.TracerOptions{})

	d := b.Solve(testProblem())
	if d.Feasible {
		t.Fatal("exhausted chain must reject")
	}
	for _, m := range d.Mapping {
		if m != sched.Unmapped {
			t.Fatalf("reject-only decision maps a job: %v", d.Mapping)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["resilience.reject_only"]; got != 1 {
		t.Fatalf("reject_only = %d, want 1", got)
	}
	events := b.Tracer.Events()
	var sawTerminal bool
	for _, e := range events {
		if e.Type == telemetry.EvSolverFallback && e.Reason == "reject_only" {
			sawTerminal = true
			if int(e.Value) != len(b.Stages) {
				t.Fatalf("terminal fallback Value = %v, want %d", e.Value, len(b.Stages))
			}
		}
	}
	if !sawTerminal {
		t.Fatalf("no reject_only fallback event in %v%s", events, sink.String())
	}
}

func TestBudgetedSolverBudgetFallthrough(t *testing.T) {
	// Budget exhausted with no incumbent: fall through to the next stage.
	primary := &budgetStub{feasible: false, exhausted: true, nodes: 7}
	backup := &okStub{}
	b := &BudgetedSolver{
		Stages: []Stage{{Name: "primary", Solver: primary}, {Name: "backup", Solver: backup}},
		Budget: Budget{Nodes: 7},
	}
	reg := telemetry.NewRegistry()
	b.AttachMetrics(reg)

	d := b.Solve(testProblem())
	if !d.Feasible {
		t.Fatal("backup should have answered")
	}
	if primary.applied != b.Budget {
		t.Fatalf("budget not applied: %+v", primary.applied)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["resilience.budget_exhausted"]; got != 1 {
		t.Fatalf("budget_exhausted = %d, want 1", got)
	}
	if got := snap.Counters["resilience.fallbacks"]; got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
}

func TestBudgetedSolverExhaustedIncumbentUsed(t *testing.T) {
	// Budget exhausted but the anytime incumbent is feasible: use it and
	// only account the exhaustion.
	primary := &budgetStub{feasible: true, exhausted: true, nodes: 7}
	backup := &okStub{}
	b := &BudgetedSolver{
		Stages: []Stage{{Name: "primary", Solver: primary}, {Name: "backup", Solver: backup}},
		Budget: Budget{Nodes: 7},
	}
	reg := telemetry.NewRegistry()
	b.AttachMetrics(reg)

	d := b.Solve(testProblem())
	if !d.Feasible {
		t.Fatal("incumbent should be used")
	}
	if backup.calls != 0 {
		t.Fatal("must not fall through with a feasible incumbent")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["resilience.budget_exhausted"]; got != 1 {
		t.Fatalf("budget_exhausted = %d, want 1", got)
	}
	if got := snap.Counters["resilience.fallbacks"]; got != 0 {
		t.Fatalf("fallbacks = %d, want 0", got)
	}
}

func TestBudgetedSolverEmptyChain(t *testing.T) {
	b := &BudgetedSolver{}
	d := b.Solve(testProblem())
	if d.Feasible {
		t.Fatal("empty chain must reject")
	}
}

func TestAdmitCheckedPropagatesError(t *testing.T) {
	_, admitted, err := AdmitChecked(&errStub{}, testProblem())
	if err == nil {
		t.Fatal("error not propagated")
	}
	if admitted {
		t.Fatal("failed solve must not admit")
	}
}

func TestAdmitAbsorbsError(t *testing.T) {
	d, admitted := Admit(&errStub{}, testProblem())
	if admitted || d.Feasible {
		t.Fatal("Admit must degrade a solver failure to rejection")
	}
}
