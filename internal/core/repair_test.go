package core

import (
	"math"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// nextActivation advances p to its successor activation: the given mapping
// is applied, each mapped job executes for a while (some to completion),
// predicted jobs are discarded (a forecast is re-decided every time), and
// addN fresh arrivals join. Surviving *Job pointers are carried over —
// that is the identity WarmState matches on.
func nextActivation(r *rng.Rand, p *sched.Problem, mapping []int, set *task.Set, nextID *int, addN int) *sched.Problem {
	now := p.Time + r.Uniform(0.5, 2)
	jobs := make([]*sched.Job, 0, len(p.Jobs)+addN)
	for i, j := range p.Jobs {
		if j.Predicted || mapping[i] == sched.Unmapped {
			continue
		}
		j.Resource = mapping[i]
		if r.Float64() < 0.3 {
			continue // completed since the previous activation
		}
		if r.Float64() < 0.7 {
			j.Started = true
			j.ExecRes = j.Resource
			j.Frac *= r.Uniform(0.4, 1)
		}
		if j.AbsDeadline <= now+sched.Eps {
			continue // expired; the simulator would have dropped it
		}
		jobs = append(jobs, j)
	}
	for k := 0; k < addN; k++ {
		ty := set.Type(r.Intn(set.Len()))
		jobs = append(jobs, sched.NewJob(*nextID, ty, now, r.Uniform(20, 120)))
		*nextID++
	}
	return &sched.Problem{Platform: p.Platform, Time: now, Jobs: jobs}
}

// TestRepairProducesFeasibleMappings: over random activation sequences,
// every successful Repair must hand back a mapping that passes the
// independent feasibility check, report its true energy, and keep every
// retained free job exactly where the previous activation put it.
func TestRepairProducesFeasibleMappings(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	repaired, attempted := 0, 0
	var delta sched.MappingDelta
	for trial := 0; trial < 150; trial++ {
		h := &Heuristic{Cache: sched.NewFeasCache(0)}
		var ws sched.WarmState
		p := randomProblem(r, plat, set)
		nextID := 1000
		for step := 0; step < 5; step++ {
			d := h.Solve(p)
			if !d.Feasible {
				break
			}
			ws.Record(p, d.Mapping)
			p = nextActivation(r, p, d.Mapping, set, &nextID, r.Intn(3))
			attempted++
			m, e, ok := h.Repair(p, &ws)
			if !ok {
				continue
			}
			repaired++
			if !p.FeasibleMapping(m) {
				t.Fatalf("trial %d step %d: repaired mapping %v not feasible", trial, step, m)
			}
			if got := p.Energy(m); math.Abs(got-e) > 1e-9 {
				t.Fatalf("trial %d step %d: reported energy %v != %v", trial, step, e, got)
			}
			if !ws.Delta(p, &delta) {
				t.Fatalf("trial %d step %d: warm state lost its recording", trial, step)
			}
			for i, j := range p.Jobs {
				if prev := delta.PrevRes[i]; prev != sched.Unmapped &&
					!j.Fixed && !j.Pinned(plat) && m[i] != prev {
					t.Fatalf("trial %d step %d: retained job %d moved %d -> %d",
						trial, step, i, prev, m[i])
				}
			}
		}
	}
	if repaired == 0 {
		t.Fatalf("no repair succeeded in %d attempts; sequence generator too harsh", attempted)
	}
	t.Logf("repaired %d/%d consecutive activations", repaired, attempted)
}

// TestRepairWithoutWarmState: an empty or nil warm state must fall back
// immediately — there is nothing to repair from.
func TestRepairWithoutWarmState(t *testing.T) {
	h := &Heuristic{}
	p := motivationalProblem(false)
	var ws sched.WarmState
	if _, _, ok := h.Repair(p, &ws); ok {
		t.Fatal("Repair succeeded from an empty WarmState")
	}
	if _, _, ok := h.Repair(p, nil); ok {
		t.Fatal("Repair succeeded from a nil WarmState")
	}
}

// TestRepairDeltaGuard: when the activation delta exceeds repairMaxDelta,
// retention covers too little of the problem and Repair must decline so
// the caller re-solves in full.
func TestRepairDeltaGuard(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 50)
	p1 := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j1}}
	h := &Heuristic{}
	d := h.Solve(p1)
	if !d.Feasible {
		t.Fatal("seed activation infeasible")
	}
	var ws sched.WarmState
	ws.Record(p1, d.Mapping)

	// Successor keeps j1 and adds five arrivals: delta 5 > repairMaxDelta(6)=4.
	jobs := []*sched.Job{j1}
	for i := 1; i <= 5; i++ {
		jobs = append(jobs, sched.NewJob(i, ts.Type(0), 1, 50))
	}
	p2 := &sched.Problem{Platform: plat, Time: 1, Jobs: jobs}
	if _, _, ok := h.Repair(p2, &ws); ok {
		t.Fatal("Repair accepted a delta past the drift guard")
	}

	if got, want := repairMaxDelta(4), 4; got != want {
		t.Fatalf("repairMaxDelta(4) = %d, want %d", got, want)
	}
	if got, want := repairMaxDelta(20), 10; got != want {
		t.Fatalf("repairMaxDelta(20) = %d, want %d", got, want)
	}
}

// TestRepairRetainedDeadlineMiss: a retained assignment that no longer
// fits its deadline (the job aged past it without completing) must abort
// the repair rather than hand back an infeasible mapping.
func TestRepairRetainedDeadlineMiss(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 8)
	p1 := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j1}}
	h := &Heuristic{}
	d := h.Solve(p1)
	if !d.Feasible {
		t.Fatal("seed activation infeasible")
	}
	var ws sched.WarmState
	ws.Record(p1, d.Mapping)

	p2 := &sched.Problem{Platform: plat, Time: j1.AbsDeadline + 1, Jobs: []*sched.Job{j1}}
	if _, _, ok := h.Repair(p2, &ws); ok {
		t.Fatal("Repair retained an assignment past its deadline")
	}
}

// benchActivationPair builds a steady-state consecutive activation pair:
// p1 is a feasible 128-job activation (a loaded system, where delta-solving
// pays), p2 its successor with a delta of one completion and one arrival.
// Returns ok=false if the generator never hits a feasible seed
// (deterministic, so this is a hard failure in practice).
func benchActivationPair() (p1, p2 *sched.Problem, mapping []int, ok bool) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(3))
	if err != nil {
		return nil, nil, nil, false
	}
	r := rng.New(41)
	for attempt := 0; attempt < 100; attempt++ {
		jobs := make([]*sched.Job, 128)
		for i := range jobs {
			ty := set.Type(r.Intn(set.Len()))
			jobs[i] = sched.NewJob(i, ty, 0, r.Uniform(900, 1400))
		}
		p1 = &sched.Problem{Platform: plat, Time: 0, Jobs: jobs}
		h := &Heuristic{}
		d := h.Solve(p1)
		if !d.Feasible {
			continue
		}
		mapping = append([]int(nil), d.Mapping...)
		next := append([]*sched.Job(nil), jobs[1:]...) // jobs[0] completed
		arr := sched.NewJob(99, set.Type(r.Intn(set.Len())), 1.5, 120)
		next = append(next, arr)
		p2 = &sched.Problem{Platform: plat, Time: 1.5, Jobs: next}
		return p1, p2, mapping, true
	}
	return nil, nil, nil, false
}

// BenchmarkHeuristicRepair compares delta-solving a successor activation
// against re-running Algorithm 1 from scratch on it — the tentpole claim
// is that repair costs proportional to the delta (here: one completion,
// one arrival against 127 retained jobs), not the problem. The repair
// path must stay allocation-free in steady state.
func BenchmarkHeuristicRepair(b *testing.B) {
	p1, p2, mapping, ok := benchActivationPair()
	if !ok {
		b.Fatal("no feasible steady-state activation pair found")
	}

	b.Run("full", func(b *testing.B) {
		h := &Heuristic{}
		if d := h.Solve(p2); !d.Feasible {
			b.Fatal("successor activation infeasible for the cold solver")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Solve(p2)
		}
	})

	b.Run("repair", func(b *testing.B) {
		h := &Heuristic{Cache: sched.NewFeasCache(0)}
		var ws sched.WarmState
		ws.Record(p1, mapping)
		if _, _, ok := h.Repair(p2, &ws); !ok {
			b.Fatal("repair failed on the steady-state pair")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Repair(p2, &ws)
		}
	})
}
