// Warm-start repair: delta-solving the admission problem.
//
// Consecutive RM activations differ by one arrival or completion, so
// instead of re-running Algorithm 1 from scratch the heuristic can keep
// the previous activation's mapping, retain the assignments of surviving
// jobs, and run the regret machinery only over the added jobs — cost
// proportional to the change, not the problem. Repair is that path. It is
// a seeding/bounding primitive, not a decision path of its own: the exact
// solver uses it to build a pruning bound that provably cannot change its
// answer (DESIGN.md §10), and budget-constrained callers may use it as a
// fast primary with the full Solve as fallback, accepting that a repaired
// mapping is generally not the mapping a cold Algorithm 1 would produce.
package core

import (
	"math"

	"predrm/internal/sched"
	"predrm/internal/task"
)

// repairMaxDelta bounds how large an activation delta Repair will attempt.
// Past it, retention covers too little of the problem for the repaired
// mapping to stay close to a fresh solve (the "drift" fallback): the
// caller should re-solve in full. The bound is deliberately generous —
// repair stays cheap well past it — and exists to keep repaired quality
// honest, not to save time.
func repairMaxDelta(jobs int) int {
	if jobs < 8 {
		return 4
	}
	return jobs / 2
}

// Repair extends the previous activation's mapping (recorded in ws) to
// problem p: surviving jobs keep their resources, pinned and fixed jobs
// go where they must, and only the added jobs — the arriving request and
// fresh predictions — are placed, in max-regret order with the same
// trial-insert EDF probes as Solve. Every touched resource is re-verified,
// so an ok result is a feasible mapping of p with energy p.Energy(mapping).
//
// Repair reports ok=false — and the caller must fall back to a full
// Solve — when ws records nothing, the delta exceeds repairMaxDelta (the
// drift guard), a retained assignment no longer fits its deadline, or an
// added job cannot be placed without disturbing retained work.
//
// The returned mapping is borrowed from the heuristic's scratch arena and
// is invalidated by the next Solve or Repair call; steady-state Repair
// allocates nothing. Provenance is not recorded: repair output seeds and
// bounds other searches, it is never itself an admission decision.
func (h *Heuristic) Repair(p *sched.Problem, ws *sched.WarmState) (mapping []int, energy float64, ok bool) {
	h.repairs.Inc()
	if !ws.Delta(p, &h.delta) {
		h.repairFail.Inc()
		return nil, 0, false
	}
	d := &h.delta
	jobs := p.Jobs
	m, n := len(jobs), p.Platform.Len()
	if d.Added+d.Removed > repairMaxDelta(m) {
		h.repairFail.Inc()
		return nil, 0, false
	}
	h.p, h.n = p, n
	h.grow(m, n)
	h.Cache.Advance()

	mapping = h.mapping[:m]
	window := p.Window()
	capacity := h.capacity[:n]
	for i := range capacity {
		capacity[i] = window
		h.lists[i].Reset()
		if h.Cache != nil {
			h.lists[i].EnableFingerprint(p.Time)
		}
	}

	// Retain: re-book every surviving job on its previous resource (pinned
	// and fixed jobs on their mandatory one). Only the cpm cells actually
	// read are computed — this loop is the O(kept) part of repair.
	added := h.unassigned[:0]
	for i, j := range jobs {
		r := d.PrevRes[i]
		if j.Fixed || j.Pinned(p.Platform) {
			r = j.Resource
		}
		if r == sched.Unmapped {
			mapping[i] = sched.Unmapped
			added = append(added, i)
			continue
		}
		c := j.CPM(r, p.Policy)
		if c == task.NotExecutable || c > j.TimeLeft(p.Time)+sched.Eps {
			return h.repairFailed()
		}
		h.cpm[i*n+r] = c
		mapping[i] = r
		capacity[r] -= c
		h.insertEntry(i, r)
	}
	h.unassigned = added

	// Verify the retained state before investing in placement: a kept job
	// that executed since the recording can only have gotten easier, but a
	// migrated-in pinned job or drifted debt can break a list.
	for r := 0; r < n; r++ {
		if h.lists[r].Len() > 0 && !h.probe(r) {
			return h.repairFailed()
		}
	}

	// Desirability rows for the added jobs only (same f_{j,i} as Solve).
	for _, ji := range added {
		j := jobs[ji]
		tl := j.TimeLeft(p.Time)
		base := ji * n
		for r := 0; r < n; r++ {
			c := j.CPM(r, p.Policy)
			h.cpm[base+r] = c
			if c == task.NotExecutable {
				h.des[base+r] = math.Inf(1)
				continue
			}
			e := j.EPM(r, p.Policy)
			if c > tl+sched.Eps {
				e += bigM
			}
			h.des[base+r] = e
		}
	}

	// Place the added jobs in max-regret order among themselves, each on
	// its most desirable resource that passes the EDF trial insert —
	// Algorithm 1's lines 8-34 restricted to the delta.
	for len(added) > 0 {
		pick := -1
		dStar := math.Inf(-1)
		for k, ji := range added {
			base := ji * n
			best, second := math.Inf(1), math.Inf(1)
			cnt := 0
			for r := 0; r < n; r++ {
				c := h.cpm[base+r]
				if c == task.NotExecutable || c > capacity[r]+sched.Eps {
					continue
				}
				cnt++
				if f := h.des[base+r]; f < best {
					best, second = f, best
				} else if f < second {
					second = f
				}
			}
			if cnt == 0 {
				return h.repairFailed()
			}
			if reg := second - best; reg > dStar {
				dStar = reg
				pick = k
			}
		}
		ji := added[pick]
		added = append(added[:pick], added[pick+1:]...)

		base := ji * n
		ps := h.pickSet[:0]
		for r := 0; r < n; r++ {
			if c := h.cpm[base+r]; c != task.NotExecutable && c <= capacity[r]+sched.Eps {
				ps = append(ps, r)
			}
		}
		placed := false
		for len(ps) > 0 {
			bi, bf := -1, math.Inf(1)
			for k, r := range ps {
				if f := h.des[base+r]; f < bf {
					bf, bi = f, k
				}
			}
			r := ps[bi]
			pos := h.insertEntry(ji, r)
			if h.probe(r) {
				mapping[ji] = r
				capacity[r] -= h.cpm[base+r]
				placed = true
				break
			}
			h.lists[r].Remove(p.Time, pos)
			ps = append(ps[:bi], ps[bi+1:]...)
		}
		if !placed {
			return h.repairFailed()
		}
	}

	h.flushCacheStats()
	return mapping, p.Energy(mapping), true
}

// probe checks resource r's current entry list, through the cache when
// one is attached.
func (h *Heuristic) probe(r int) bool {
	return h.lists[r].FeasibleCached(h.p.Platform.Resource(r).Preemptable(), h.p.Time,
		h.Cache, &h.edf, &h.hitsDelta, &h.missDelta)
}

// repairFailed counts and reports an abandoned repair.
func (h *Heuristic) repairFailed() ([]int, float64, bool) {
	h.repairFail.Inc()
	h.flushCacheStats()
	return nil, 0, false
}
