package core

import (
	"math"
	"reflect"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// coarseSet builds a task set whose WCET/energy values are quantised to a
// handful of levels, so exact desirability ties across resources — the
// indexed path's equal-des run buffering — occur constantly rather than
// only on GPU columns.
func coarseSet(p *platform.Platform, r *rng.Rand, types int) *task.Set {
	s := &task.Set{Platform: p, Types: make([]*task.Type, 0, types)}
	for id := 0; id < types; id++ {
		t := &task.Type{
			ID:     id,
			WCET:   make([]float64, p.Len()),
			Energy: make([]float64, p.Len()),
		}
		for i := 0; i < p.Len(); i++ {
			if p.Resource(i).Kind == platform.GPU {
				t.WCET[i] = float64(2 + r.Intn(3))
				t.Energy[i] = float64(1 + r.Intn(2))
			} else {
				t.WCET[i] = float64(10 + 5*r.Intn(4))
				t.Energy[i] = float64(4 + 2*r.Intn(3))
			}
		}
		t.MigTime = 0.5
		t.MigEnergy = 0.25
		s.Types = append(s.Types, t)
	}
	return s
}

// bigProblem builds a randomized activation snapshot on a large platform:
// fresh arrivals, mapped and started jobs, pinned GPU jobs, fixed jobs,
// migration debt, drained (Frac≈0) jobs and tight deadlines that push
// candidates into the bigM-penalised stream.
// base keeps problem times monotone across trials — the FeasCache
// fingerprint discipline assumes activations never move backwards.
func bigProblem(r *rng.Rand, plat *platform.Platform, set *task.Set, base float64) *sched.Problem {
	now := base + r.Uniform(0, 50)
	n := 4 + r.Intn(36)
	jobs := make([]*sched.Job, 0, n+2)
	for i := 0; i < n; i++ {
		ty := set.Type(r.Intn(set.Len()))
		arr := now - r.Uniform(0, 10)
		j := sched.NewJob(i, ty, arr, r.Uniform(20, 160))
		if j.AbsDeadline <= now {
			j.AbsDeadline = now + r.Uniform(5, 60)
		}
		switch {
		case r.Float64() < 0.1:
			// Tight deadline: cpm likely exceeds the slack somewhere, so
			// the penalised candidate stream is non-empty.
			j.AbsDeadline = now + r.Uniform(1, 8)
		}
		if r.Float64() < 0.6 {
			j.Resource = r.Intn(plat.Len())
			if r.Float64() < 0.6 {
				j.Started = true
				j.ExecRes = j.Resource
				j.Frac = r.Uniform(0.2, 1)
				if r.Float64() < 0.3 {
					j.MigDebt = r.Uniform(0.1, 1)
				}
				if r.Float64() < 0.1 {
					j.Frac = 0 // only migration debt left
					j.MigDebt = r.Uniform(0.1, 1)
				}
			}
			if r.Float64() < 0.1 {
				j.Fixed = true
			}
		}
		jobs = append(jobs, j)
	}
	if r.Float64() < 0.5 {
		ty := set.Type(r.Intn(set.Len()))
		jp := sched.NewJob(n, ty, now+r.Uniform(0, 5), r.Uniform(20, 160))
		jp.Predicted = true
		jobs = append(jobs, jp)
	}
	return &sched.Problem{Platform: plat, Time: now, Jobs: jobs}
}

// inheritedFeasible reports whether the problem's Fixed/pinned jobs are
// feasible where they sit, considered alone.
func inheritedFeasible(p *sched.Problem) bool {
	sub := &sched.Problem{Platform: p.Platform, Time: p.Time, Policy: p.Policy}
	var mapping []int
	for _, j := range p.Jobs {
		if j.Fixed || j.Pinned(p.Platform) {
			sub.Jobs = append(sub.Jobs, j)
			mapping = append(mapping, j.Resource)
		}
	}
	return len(sub.Jobs) == 0 || sub.FeasibleMapping(mapping)
}

// TestIndexedHeuristicMatchesPlain pins the tentpole equivalence: on
// platforms at and above indexedMinResources, Solve's indexed candidate
// scan must produce byte-identical decisions to the plain matrix path
// over randomized problems — including infeasible outcomes, greedy mode
// and cache-assisted probing. Both heuristics are long-lived so the
// scratch arenas and the per-type candidate-order cache are reused
// across trials exactly as in a simulation run.
func TestIndexedHeuristicMatchesPlain(t *testing.T) {
	for _, spec := range []string{"28c4g", "56c8g", "112c16g"} {
		plat, err := platform.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if plat.Len() < indexedMinResources {
			t.Fatalf("%s: test platform below the indexed gate", spec)
		}
		r := rng.New(uint64(len(spec)) * 101)
		gen, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		coarse := coarseSet(plat, rng.New(6), 12)
		for _, tc := range []struct {
			name   string
			set    *task.Set
			greedy bool
			cache  bool
		}{
			{"regret", gen, false, false},
			{"regret-cache", gen, false, true},
			{"greedy", gen, true, false},
			{"coarse-ties", coarse, false, false},
		} {
			indexed := &Heuristic{Greedy: tc.greedy}
			plain := &Heuristic{Greedy: tc.greedy, noIndex: true}
			if tc.cache {
				indexed.Cache = sched.NewFeasCache(0)
				plain.Cache = sched.NewFeasCache(0)
			}
			feasible, infeasible := 0, 0
			for trial := 0; trial < 60; trial++ {
				p := bigProblem(r, plat, tc.set, float64(trial)*60)
				di := indexed.Solve(p)
				dp := plain.Solve(p)
				if di.Feasible != dp.Feasible {
					t.Fatalf("%s/%s trial %d: feasible %v (indexed) vs %v (plain)",
						spec, tc.name, trial, di.Feasible, dp.Feasible)
				}
				if !reflect.DeepEqual(di.Mapping, dp.Mapping) {
					t.Fatalf("%s/%s trial %d: mapping diverged\nindexed: %v\nplain:   %v",
						spec, tc.name, trial, di.Mapping, dp.Mapping)
				}
				if di.Energy != dp.Energy { // bit-identical, not approximately
					t.Fatalf("%s/%s trial %d: energy %v vs %v",
						spec, tc.name, trial, di.Energy, dp.Energy)
				}
				if di.Feasible {
					feasible++
					// The independent feasibility check covers the inherited
					// Fixed/pinned jobs too, which Solve pre-assigns without
					// probing (the engine guarantees inherited state was
					// admitted feasibly; this random generator does not). The
					// full-mapping assertion is therefore valid only when the
					// inherited subset is feasible on its own.
					if inheritedFeasible(p) && !p.FeasibleMapping(di.Mapping) {
						t.Fatalf("%s/%s trial %d: indexed mapping fails the independent check",
							spec, tc.name, trial)
					}
					if got := p.Energy(di.Mapping); math.Abs(got-di.Energy) > 1e-9 {
						t.Fatalf("%s/%s trial %d: energy %v, recompute %v",
							spec, tc.name, trial, di.Energy, got)
					}
				} else {
					infeasible++
				}
			}
			if feasible == 0 || infeasible == 0 {
				t.Logf("%s/%s: one-sided coverage (%d feasible, %d infeasible)",
					spec, tc.name, feasible, infeasible)
			}
		}
	}
}

// TestIndexedGateUsesPlainPathBelowThreshold: small platforms (the
// paper's 6-resource default) must stay on the matrix path, and the
// provenance recorder must force it at any size — indexed solving records
// no candidate verdicts.
func TestIndexedGateUsesPlainPathBelowThreshold(t *testing.T) {
	small := platform.Default()
	if small.Len() >= indexedMinResources {
		t.Fatalf("default platform unexpectedly large: %d", small.Len())
	}
	set, err := task.Generate(small, task.DefaultGenConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	h := &Heuristic{}
	r := rng.New(11)
	p := randomProblem(r, small, set)
	h.Solve(p)
	if h.cand != nil || h.ord != nil {
		t.Fatal("small-platform solve touched the indexed scratch")
	}
}
