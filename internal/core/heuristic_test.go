package core

import (
	"math"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

func motivationalProblem(withPred bool) *sched.Problem {
	ts := task.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 8)
	p := &sched.Problem{
		Platform: platform.Motivational(),
		Time:     0,
		Jobs:     []*sched.Job{j1},
	}
	if withPred {
		jp := sched.NewJob(1, ts.Type(1), 1, 5)
		jp.Predicted = true
		p.Jobs = append(p.Jobs, jp)
	}
	return p
}

func TestHeuristicMotivationalNoPrediction(t *testing.T) {
	// Without prediction the heuristic puts τ1 on the GPU: minimum energy.
	p := motivationalProblem(false)
	d := (&Heuristic{}).Solve(p)
	if !d.Feasible {
		t.Fatal("single-task problem must be feasible")
	}
	if d.Mapping[0] != 2 {
		t.Fatalf("τ1 mapped to %d, want GPU (2)", d.Mapping[0])
	}
	if math.Abs(d.Energy-2) > 1e-12 {
		t.Fatalf("energy = %v, want 2", d.Energy)
	}
}

func TestHeuristicMotivationalWithPrediction(t *testing.T) {
	// With the predicted τ2 (arrival 1, deadline 5), the GPU must be
	// reserved: τ1 goes to CPU1 — the paper's scenario (b).
	p := motivationalProblem(true)
	d := (&Heuristic{}).Solve(p)
	if !d.Feasible {
		t.Fatal("scenario (b) must be feasible")
	}
	if d.Mapping[0] != 0 || d.Mapping[1] != 2 {
		t.Fatalf("mapping = %v, want [0 2]", d.Mapping)
	}
	if math.Abs(d.Energy-8.8) > 1e-12 {
		t.Fatalf("energy = %v, want 8.8 (7.3 + 1.5)", d.Energy)
	}
}

func TestHeuristicRespectsPinned(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()
	// τ1 started on the GPU: pinned. τ2 arrives; even though the GPU is
	// τ2's cheapest resource, it must not be planned there if infeasible,
	// and τ1 must stay.
	j1 := sched.NewJob(0, ts.Type(0), 0, 20)
	j1.Resource = 2
	j1.Started = true
	j1.ExecRes = j1.Resource
	j1.Frac = 0.9
	j2 := sched.NewJob(1, ts.Type(1), 1, 30)
	p := &sched.Problem{Platform: plat, Time: 1, Jobs: []*sched.Job{j1, j2}}
	d := (&Heuristic{}).Solve(p)
	if !d.Feasible {
		t.Fatal("must be feasible")
	}
	if d.Mapping[0] != 2 {
		t.Fatalf("pinned τ1 moved to %d", d.Mapping[0])
	}
	// τ2 fits behind τ1 on the GPU (τ1 ends at 1+4.5=5.5, τ2 runs to 8.5
	// ≤ 31): cheapest is still the GPU.
	if d.Mapping[1] != 2 {
		t.Fatalf("τ2 mapped to %d, want GPU", d.Mapping[1])
	}
}

func TestHeuristicInfeasibleOverload(t *testing.T) {
	// Two tasks, both only feasible on the GPU within their deadlines, and
	// the GPU cannot hold both.
	ts := task.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 5.5) // only GPU (5) fits in 5.5
	j2 := sched.NewJob(1, ts.Type(1), 0, 3.5) // only GPU (3) fits in 3.5
	p := &sched.Problem{
		Platform: platform.Motivational(),
		Time:     0,
		Jobs:     []*sched.Job{j1, j2},
	}
	d := (&Heuristic{}).Solve(p)
	if d.Feasible {
		t.Fatalf("overloaded GPU accepted: %v", d.Mapping)
	}
}

func TestHeuristicMaxRegretOrder(t *testing.T) {
	// Construct a case where greedy-by-index fails but max-regret
	// succeeds: job A is flexible (two resources), job B only fits on
	// resource 0. Max-regret places B first.
	plat := platform.New(2, 0)
	tyA := &task.Type{ID: 0, WCET: []float64{4, 4}, Energy: []float64{1, 1.05}}
	tyB := &task.Type{ID: 1, WCET: []float64{4, task.NotExecutable}, Energy: []float64{5, task.NotExecutable}}
	jA := sched.NewJob(0, tyA, 0, 4)
	jB := sched.NewJob(1, tyB, 0, 4)
	p := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{jA, jB}}

	d := (&Heuristic{}).Solve(p)
	if !d.Feasible {
		t.Fatalf("max-regret should solve this: %v", d.Mapping)
	}
	if d.Mapping[0] != 1 || d.Mapping[1] != 0 {
		t.Fatalf("mapping = %v, want [1 0]", d.Mapping)
	}
}

func TestGreedyAblationCanBeWorse(t *testing.T) {
	// Same instance: the greedy variant maps job A first (to resource 0,
	// its cheapest), leaving job B stuck — documenting why max-regret
	// ordering matters (ablation A1).
	plat := platform.New(2, 0)
	tyA := &task.Type{ID: 0, WCET: []float64{4, 4}, Energy: []float64{1, 1.05}}
	tyB := &task.Type{ID: 1, WCET: []float64{4, task.NotExecutable}, Energy: []float64{5, task.NotExecutable}}
	jA := sched.NewJob(0, tyA, 0, 4)
	jB := sched.NewJob(1, tyB, 0, 4)
	p := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{jA, jB}}

	d := (&Heuristic{Greedy: true}).Solve(p)
	if d.Feasible {
		t.Fatalf("expected greedy to fail here, got %v", d.Mapping)
	}
}

func TestHeuristicMappingsAlwaysFeasibleProperty(t *testing.T) {
	// Whenever the heuristic claims feasibility, the mapping must pass the
	// independent Problem.FeasibleMapping check.
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	solved := 0
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(r, plat, set)
		d := (&Heuristic{}).Solve(p)
		if !d.Feasible {
			continue
		}
		solved++
		if !p.FeasibleMapping(d.Mapping) {
			t.Fatalf("trial %d: heuristic mapping %v not actually feasible", trial, d.Mapping)
		}
		if got := p.Energy(d.Mapping); math.Abs(got-d.Energy) > 1e-9 {
			t.Fatalf("trial %d: reported energy %v != %v", trial, d.Energy, got)
		}
	}
	if solved == 0 {
		t.Fatal("no random problem was solvable; generator too harsh")
	}
}

// randomProblem builds a random RM activation with a mix of fresh, mapped,
// started and predicted jobs.
func randomProblem(r *rng.Rand, plat *platform.Platform, set *task.Set) *sched.Problem {
	now := r.Uniform(0, 50)
	n := 1 + r.Intn(6)
	jobs := make([]*sched.Job, 0, n+1)
	for i := 0; i < n; i++ {
		ty := set.Type(r.Intn(set.Len()))
		arr := now - r.Uniform(0, 10)
		j := sched.NewJob(i, ty, arr, r.Uniform(20, 120))
		if j.AbsDeadline <= now {
			j.AbsDeadline = now + r.Uniform(5, 60)
		}
		if r.Float64() < 0.6 {
			j.Resource = r.Intn(plat.Len())
			if r.Float64() < 0.6 {
				j.Started = true
				j.ExecRes = j.Resource
				j.Frac = r.Uniform(0.2, 1)
			}
		}
		jobs = append(jobs, j)
	}
	if r.Float64() < 0.5 {
		ty := set.Type(r.Intn(set.Len()))
		jp := sched.NewJob(n, ty, now+r.Uniform(0, 5), r.Uniform(20, 120))
		jp.Predicted = true
		jobs = append(jobs, jp)
	}
	return &sched.Problem{Platform: plat, Time: now, Jobs: jobs}
}

func TestAdmitFallsBackWithoutPrediction(t *testing.T) {
	// τ1 arriving with a predicted job that makes the joint problem
	// infeasible: Admit must retry without the prediction and accept.
	ts := task.Motivational()
	plat := platform.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 5.5) // only GPU fits
	jp := sched.NewJob(1, ts.Type(1), 0, 3.5) // only GPU fits: conflict
	jp.Predicted = true
	p := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j1, jp}}

	d, admitted := Admit(&Heuristic{}, p)
	if !admitted {
		t.Fatal("fallback admission failed")
	}
	if d.Mapping[0] != 2 {
		t.Fatalf("τ1 on %d, want GPU", d.Mapping[0])
	}
	if d.Mapping[1] != sched.Unmapped {
		t.Fatalf("dropped prediction still mapped: %v", d.Mapping)
	}
}

func TestAdmitRejectsWhenHopeless(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()
	// Deadline shorter than every WCET: hopeless with or without pred.
	j1 := sched.NewJob(0, ts.Type(0), 0, 1)
	p := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j1}}
	if _, admitted := Admit(&Heuristic{}, p); admitted {
		t.Fatal("hopeless task admitted")
	}
}

func TestAdmitAcceptsDirectly(t *testing.T) {
	p := motivationalProblem(true)
	d, admitted := Admit(&Heuristic{}, p)
	if !admitted || !d.Feasible {
		t.Fatal("direct admission failed")
	}
	if d.Mapping[1] == sched.Unmapped {
		t.Fatal("prediction dropped although joint solve succeeded")
	}
}
