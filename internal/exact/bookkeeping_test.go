package exact

import (
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// TestInsertRemoveBookkeeping fuzzes the sorted-entry maintenance the
// branch-and-bound search depends on, through the solver's own lists and
// with the DFS's LIFO insert/remove discipline: after any interleaving the
// per-resource lists must satisfy the FeasibleSorted precondition with
// exact future-release counters (sched.EntryList.Invariant). The broader
// order-randomised property test lives with EntryList in internal/sched.
func TestInsertRemoveBookkeeping(t *testing.T) {
	plat := platform.Default()
	now := 10.0
	o := &Optimal{
		p:     &sched.Problem{Platform: plat, Time: now},
		lists: make([]sched.EntryList, plat.Len()),
	}
	r := rng.New(77)
	type placed struct {
		res, pos int
	}
	var stack []placed
	for step := 0; step < 5000; step++ {
		if len(stack) > 0 && (r.Float64() < 0.4 || len(stack) > 30) {
			// Remove in LIFO order, like the DFS does.
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			o.lists[top.res].Remove(now, top.pos)
		} else {
			res := r.Intn(plat.Len())
			e := sched.Entry{
				ReadyAt:  now,
				Deadline: now + r.Uniform(1, 100),
				Rem:      r.Uniform(0.5, 5),
			}
			if r.Float64() < 0.2 {
				e.ReadyAt = now + r.Uniform(0.1, 5) // future release
			}
			if !plat.Resource(res).Preemptable() && r.Float64() < 0.3 {
				e.PinnedFirst = true // occasionally several: the group must stay ordered
			}
			pos := o.lists[res].Insert(now, e)
			stack = append(stack, placed{res, pos})
		}
		for res := 0; res < plat.Len(); res++ {
			if err := o.lists[res].Invariant(now); err != nil {
				t.Fatalf("step %d: resource %d: %v", step, res, err)
			}
		}
	}
}

// TestSolveReentrant verifies the scratch-state reuse across Solves of
// different shapes (the same Optimal is reused across a whole trace).
func TestSolveReentrant(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimal{}
	r := rng.New(123)
	for trial := 0; trial < 100; trial++ {
		p := randomSmallProblem(r, plat, set)
		d1 := o.Solve(p)
		d2 := (&Optimal{}).Solve(p) // fresh solver, same problem
		if d1.Feasible != d2.Feasible {
			t.Fatalf("trial %d: reused solver feasibility %v vs fresh %v", trial, d1.Feasible, d2.Feasible)
		}
		if d1.Feasible && d1.Energy != d2.Energy {
			t.Fatalf("trial %d: reused solver energy %v vs fresh %v", trial, d1.Energy, d2.Energy)
		}
	}
}
