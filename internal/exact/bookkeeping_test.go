package exact

import (
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// TestInsertRemoveBookkeeping fuzzes the sorted-entry maintenance the
// branch-and-bound search depends on: after any interleaving of inserts
// and removes the per-resource lists must stay sorted (pinned first, then
// deadline) and the future-release counters exact.
func TestInsertRemoveBookkeeping(t *testing.T) {
	plat := platform.Default()
	o := &Optimal{
		p:       &sched.Problem{Platform: plat, Time: 10},
		entries: make([][]sched.Entry, plat.Len()),
		future:  make([]int, plat.Len()),
	}
	r := rng.New(77)
	type placed struct {
		res, pos int
	}
	var stack []placed
	for step := 0; step < 5000; step++ {
		if len(stack) > 0 && (r.Float64() < 0.4 || len(stack) > 30) {
			// Remove in LIFO order, like the DFS does.
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			o.remove(top.res, top.pos)
		} else {
			res := r.Intn(plat.Len())
			e := sched.Entry{
				ReadyAt:  10,
				Deadline: 10 + r.Uniform(1, 100),
				Rem:      r.Uniform(0.5, 5),
			}
			if r.Float64() < 0.2 {
				e.ReadyAt = 10 + r.Uniform(0.1, 5) // future release
			}
			// One pinned occupant max per resource; only at the front.
			if !plat.Resource(res).Preemptable() && len(o.entries[res]) == 0 && r.Float64() < 0.3 {
				e.PinnedFirst = true
			}
			pos := o.insert(res, e)
			stack = append(stack, placed{res, pos})
		}
		// Invariants.
		for res := 0; res < plat.Len(); res++ {
			futures := 0
			for i, e := range o.entries[res] {
				if e.ReadyAt > o.p.Time+sched.Eps {
					futures++
				}
				if i == 0 {
					continue
				}
				prev := o.entries[res][i-1]
				if prev.PinnedFirst {
					continue // pinned head precedes everything
				}
				if e.PinnedFirst {
					t.Fatalf("step %d: pinned entry not at the front of resource %d", step, res)
				}
				if prev.Deadline > e.Deadline+sched.Eps {
					t.Fatalf("step %d: resource %d order violated at %d", step, res, i)
				}
			}
			if futures != o.future[res] {
				t.Fatalf("step %d: future counter %d != actual %d on resource %d",
					step, o.future[res], futures, res)
			}
		}
	}
}

// TestSolveReentrant verifies the scratch-state reuse across Solves of
// different shapes (the same Optimal is reused across a whole trace).
func TestSolveReentrant(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimal{}
	r := rng.New(123)
	for trial := 0; trial < 100; trial++ {
		p := randomSmallProblem(r, plat, set)
		d1 := o.Solve(p)
		d2 := (&Optimal{}).Solve(p) // fresh solver, same problem
		if d1.Feasible != d2.Feasible {
			t.Fatalf("trial %d: reused solver feasibility %v vs fresh %v", trial, d1.Feasible, d2.Feasible)
		}
		if d1.Feasible && d1.Energy != d2.Energy {
			t.Fatalf("trial %d: reused solver energy %v vs fresh %v", trial, d1.Energy, d2.Energy)
		}
	}
}
