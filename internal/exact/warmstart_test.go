package exact

import (
	"runtime"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// evolveActivation builds the successor activation of p under mapping:
// mapped jobs execute (a few to completion), predicted jobs are discarded
// (a forecast is re-decided every time), and a couple of fresh arrivals
// join. Surviving *Job pointers carry over — the identity the warm state
// matches on.
func evolveActivation(r *rng.Rand, p *sched.Problem, mapping []int, set *task.Set, nextID *int) *sched.Problem {
	now := p.Time + r.Uniform(0.5, 2)
	jobs := make([]*sched.Job, 0, len(p.Jobs)+2)
	for i, j := range p.Jobs {
		if j.Predicted || mapping[i] == sched.Unmapped {
			continue
		}
		j.Resource = mapping[i]
		if r.Float64() < 0.2 {
			continue // completed since the previous activation
		}
		if r.Float64() < 0.6 {
			j.Started = true
			j.ExecRes = j.Resource
			j.Frac *= r.Uniform(0.5, 1)
		}
		if j.AbsDeadline <= now+sched.Eps {
			continue
		}
		jobs = append(jobs, j)
	}
	for k := r.Intn(3); k > 0; k-- {
		ty := set.Type(r.Intn(set.Len()))
		jobs = append(jobs, sched.NewJob(*nextID, ty, now, r.Uniform(40, 120)))
		*nextID++
	}
	if r.Float64() < 0.5 {
		ty := set.Type(r.Intn(set.Len()))
		jp := sched.NewJob(*nextID, ty, now+r.Uniform(0, 4), r.Uniform(40, 120))
		jp.Predicted = true
		*nextID++
		jobs = append(jobs, jp)
	}
	return &sched.Problem{Platform: p.Platform, Time: now, Jobs: jobs}
}

// runWarmColdSequences drives random activation sequences through a
// warm-started and a cold solver and requires bit-identical decisions on
// every completed solve. It returns how many solves the warm solver
// actually seeded and how many nodes its bound cut, so callers can insist
// the warm path was genuinely exercised rather than vacuously agreeing.
func runWarmColdSequences(t *testing.T, warm, cold *Optimal, seed uint64, trials int) (seeded, cuts int) {
	t.Helper()
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	for trial := 0; trial < trials; trial++ {
		p := randomWideProblem(r, plat, set)
		nextID := 1000
		for step := 0; step < 5; step++ {
			cd := cold.Solve(p)
			if cold.LastStats.Truncated {
				break // anytime regime: no determinism claim
			}
			wd := warm.Solve(p)
			if warm.LastStats.Truncated {
				t.Fatalf("trial %d step %d: warm truncated where cold completed", trial, step)
			}
			if warm.LastStats.WarmSeeded {
				seeded++
				cuts += warm.LastStats.WarmCuts
			}
			assertSameDecision(t, trial*10+step, cd, wd)
			if !cd.Feasible {
				break
			}
			p = evolveActivation(r, p, cd.Mapping, set, &nextID)
		}
	}
	return seeded, cuts
}

// TestWarmStartMatchesColdSerial is the tentpole soundness contract
// (DESIGN.md §10): across consecutive activations, the warm-started exact
// solver must return bit-identical decisions to a cold solver — same
// feasibility, same mapping, exactly equal energy — while actually seeding
// and pruning.
func TestWarmStartMatchesColdSerial(t *testing.T) {
	warm := &Optimal{NodeLimit: 2_000_000, WarmStart: true}
	cold := &Optimal{NodeLimit: 2_000_000}
	seeded, cuts := runWarmColdSequences(t, warm, cold, 909, 40)
	if seeded == 0 {
		t.Fatal("warm solver never seeded a bound; the differential test is vacuous")
	}
	t.Logf("seeded %d warm solves, %d warm-only cuts", seeded, cuts)
}

// TestWarmStartMatchesColdParallel repeats the differential check with the
// parallel search on both sides: the warm bound is shared read-only across
// workers and must not perturb the deterministic reduction.
func TestWarmStartMatchesColdParallel(t *testing.T) {
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		warm := &Optimal{NodeLimit: 2_000_000, WarmStart: true, Workers: 4}
		cold := &Optimal{NodeLimit: 2_000_000, Workers: 4}
		seeded, _ := runWarmColdSequences(t, warm, cold, uint64(333+procs), 25)
		runtime.GOMAXPROCS(old)
		if seeded == 0 {
			t.Fatalf("procs=%d: warm solver never seeded a bound", procs)
		}
	}
}

// TestWarmStartAgainstSerialCold crosses the modes: a parallel warm solver
// against a serial cold one, so a warm-bound bug that happened to be
// mode-symmetric would still be caught.
func TestWarmStartAgainstSerialCold(t *testing.T) {
	warm := &Optimal{NodeLimit: 2_000_000, WarmStart: true, Workers: 4}
	cold := &Optimal{NodeLimit: 2_000_000}
	if seeded, _ := runWarmColdSequences(t, warm, cold, 4242, 25); seeded == 0 {
		t.Fatal("warm solver never seeded a bound")
	}
}

// TestWarmStartOffRecordsNothing: with WarmStart unset the solver must
// behave exactly as before the feature existed — no recording, no
// seeding, zero-value stats — so existing golden traces remain valid.
func TestWarmStartOffRecordsNothing(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	o := &Optimal{NodeLimit: 2_000_000}
	for trial := 0; trial < 10; trial++ {
		p := randomWideProblem(r, plat, set)
		o.Solve(p)
		if o.LastStats.WarmSeeded || o.LastStats.WarmCuts != 0 {
			t.Fatalf("trial %d: WarmStart=false solver reported warm activity: %+v", trial, o.LastStats)
		}
		if o.warm.Valid() {
			t.Fatalf("trial %d: WarmStart=false solver recorded warm state", trial)
		}
	}
}

// BenchmarkOptimalWarmStart measures the node-count payoff of the warm
// bound on a steady-state activation: the warm solver re-solves the same
// successor over and over (delta zero after its first solve — the best
// case, analogous to the repeated AdmitProv solves within one
// activation), the cold solver starts from scratch each time.
func BenchmarkOptimalWarmStart(b *testing.B) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(29)
	var p1, p2 *sched.Problem
	bestSaved, bestCold := 0, 0
	probe := &Optimal{}
	for attempt := 0; attempt < 400; attempt++ {
		cand := wideProblem(r, plat, set, 12, 30, 70)
		d := probe.Solve(cand)
		if !d.Feasible || probe.LastStats.Truncated {
			continue
		}
		nextID := 1000
		succ := evolveActivation(r, cand, d.Mapping, set, &nextID)
		d2 := probe.Solve(succ)
		if !d2.Feasible || probe.LastStats.Truncated {
			continue
		}
		coldNodes := probe.LastStats.Nodes
		wp := &Optimal{WarmStart: true}
		wp.Solve(cand)
		wp.Solve(succ)
		// Prefer the pair where the warm bound actually cuts: the payoff
		// case is a successor whose heuristic incumbent is weak, so the
		// previous activation's repaired solution out-prunes it.
		if saved := coldNodes - wp.LastStats.Nodes; wp.LastStats.WarmSeeded && saved > bestSaved {
			bestSaved, bestCold = saved, coldNodes
			p1, p2 = cand, succ
		}
	}
	if p2 == nil {
		b.Fatal("no steady-state pair where the warm bound cuts nodes")
	}
	b.Logf("successor tree: %d nodes cold, %d saved warm", bestCold, bestSaved)

	b.Run("cold", func(b *testing.B) {
		o := &Optimal{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Solve(p2)
		}
	})

	b.Run("warm", func(b *testing.B) {
		o := &Optimal{WarmStart: true}
		o.Solve(p1) // record the previous activation
		if d := o.Solve(p2); !d.Feasible || !o.LastStats.WarmSeeded {
			b.Fatalf("warm solve not seeded on the steady-state pair: %+v", o.LastStats)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Solve(p2)
		}
	})
}
