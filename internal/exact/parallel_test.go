package exact

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
)

// wideProblem draws an instance with n free-ish jobs and relative
// deadlines in [dlo, dhi]. Tight deadlines keep the energy-cheapest
// resource (usually the GPU) from holding every job, so the greedy seed is
// suboptimal and the branch-and-bound tree is genuinely wide — the regime
// the parallel search exists for.
func wideProblem(r *rng.Rand, plat *platform.Platform, set *task.Set, n int, dlo, dhi float64) *sched.Problem {
	now := r.Uniform(0, 50)
	jobs := make([]*sched.Job, 0, n+1)
	for i := 0; i < n; i++ {
		ty := set.Type(r.Intn(set.Len()))
		arr := now - r.Uniform(0, 10)
		j := sched.NewJob(i, ty, arr, r.Uniform(dlo, dhi))
		if j.AbsDeadline <= now {
			j.AbsDeadline = now + r.Uniform(10, dhi)
		}
		if r.Float64() < 0.2 {
			j.Resource = r.Intn(plat.Len())
			if r.Float64() < 0.5 {
				j.Started = true
				j.ExecRes = j.Resource
				j.Frac = r.Uniform(0.2, 1)
			}
		}
		jobs = append(jobs, j)
	}
	if r.Float64() < 0.5 {
		ty := set.Type(r.Intn(set.Len()))
		jp := sched.NewJob(n, ty, now+r.Uniform(0, 4), r.Uniform(dlo, dhi))
		jp.Predicted = true
		jobs = append(jobs, jp)
	}
	return &sched.Problem{Platform: plat, Time: now, Jobs: jobs}
}

// randomWideProblem is the test-sized wide instance: 8-12 jobs under
// contended deadlines, a few hundred branch-and-bound nodes on average.
func randomWideProblem(r *rng.Rand, plat *platform.Platform, set *task.Set) *sched.Problem {
	return wideProblem(r, plat, set, 8+r.Intn(5), 40, 90)
}

// assertSameDecision requires the two decisions to be bit-identical: same
// feasibility, same mapping, and exactly equal energy (==, no tolerance —
// the parallel search performs the same float additions in the same order).
func assertSameDecision(t *testing.T, trial int, serial, par core.Decision) {
	t.Helper()
	if serial.Feasible != par.Feasible {
		t.Fatalf("trial %d: serial feasible=%v, parallel=%v", trial, serial.Feasible, par.Feasible)
	}
	if serial.Energy != par.Energy {
		t.Fatalf("trial %d: serial energy %v != parallel %v (diff %g)",
			trial, serial.Energy, par.Energy, par.Energy-serial.Energy)
	}
	if len(serial.Mapping) != len(par.Mapping) {
		t.Fatalf("trial %d: mapping lengths differ", trial)
	}
	for i := range serial.Mapping {
		if serial.Mapping[i] != par.Mapping[i] {
			t.Fatalf("trial %d: mapping differs at %d: serial %v, parallel %v",
				trial, i, serial.Mapping, par.Mapping)
		}
	}
}

// TestParallelMatchesSerial is the determinism contract: for every
// GOMAXPROCS and worker count, a completed parallel solve must be
// bit-identical to the serial one.
func TestParallelMatchesSerial(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		for _, workers := range []int{2, 4, 8} {
			r := rng.New(uint64(1000*procs + workers))
			serial := &Optimal{NodeLimit: 2_000_000}
			par := &Optimal{NodeLimit: 2_000_000, Workers: workers}
			parallelSolves := 0
			for trial := 0; trial < 60; trial++ {
				var p *sched.Problem
				if trial%3 == 0 {
					p = randomSmallProblem(r, plat, set)
				} else {
					p = randomWideProblem(r, plat, set)
				}
				sd := serial.Solve(p)
				if serial.LastStats.Truncated {
					continue // anytime regime: no determinism claim
				}
				pd := par.Solve(p)
				if par.LastStats.Truncated {
					t.Fatalf("trial %d: parallel truncated where serial completed", trial)
				}
				if par.LastStats.Workers > 0 {
					parallelSolves++
				}
				assertSameDecision(t, trial, sd, pd)
			}
			if parallelSolves == 0 {
				t.Fatalf("procs=%d workers=%d: no solve actually took the parallel path", procs, workers)
			}
		}
	}
}

// TestParallelMatchesSerialNoCache repeats the differential check with the
// pruning cache disabled on both sides: determinism must not depend on the
// cache, and the cache must not change results.
func TestParallelMatchesSerialNoCache(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	serial := &Optimal{NodeLimit: 2_000_000, CacheSlots: -1}
	par := &Optimal{NodeLimit: 2_000_000, Workers: 4, CacheSlots: -1}
	withCache := &Optimal{NodeLimit: 2_000_000, Workers: 4}
	for trial := 0; trial < 40; trial++ {
		p := randomWideProblem(r, plat, set)
		sd := serial.Solve(p)
		if serial.LastStats.Truncated {
			continue
		}
		pd := par.Solve(p)
		cd := withCache.Solve(p)
		assertSameDecision(t, trial, sd, pd)
		assertSameDecision(t, trial, sd, cd)
	}
}

// TestParallelStats: a parallel solve must report its task and worker
// counts and feed the exact.parallel.* instruments.
func TestParallelStats(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	o := &Optimal{Workers: 4}
	o.AttachMetrics(reg)
	r := rng.New(31)
	sawParallel := false
	for trial := 0; trial < 20 && !sawParallel; trial++ {
		p := randomWideProblem(r, plat, set)
		o.Solve(p)
		if o.LastStats.Workers > 0 {
			sawParallel = true
			if o.LastStats.Tasks < 2 {
				t.Fatalf("parallel solve with %d tasks", o.LastStats.Tasks)
			}
			if o.LastStats.Workers > 4 {
				t.Fatalf("more workers than configured: %d", o.LastStats.Workers)
			}
			if o.LastStats.Nodes == 0 {
				t.Fatal("parallel solve reported zero nodes")
			}
		}
	}
	if !sawParallel {
		t.Fatal("no solve took the parallel path")
	}
	if reg.Counter("exact.parallel.solves").Value() == 0 {
		t.Fatal("exact.parallel.solves not counted")
	}
	if reg.Gauge("exact.parallel.workers").Value() == 0 {
		t.Fatal("exact.parallel.workers gauge not set")
	}
}

// TestParallelAnytimeUnderNodeLimit: when the node budget truncates the
// parallel search, the result must still be feasible and no worse than the
// heuristic seed (anytime soundness), and the node accounting must respect
// the limit up to the workers' batching slack.
func TestParallelAnytimeUnderNodeLimit(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(41)
	h := &core.Heuristic{}
	const limit = 200
	o := &Optimal{NodeLimit: limit, Workers: 8}
	for trial := 0; trial < 60; trial++ {
		p := randomWideProblem(r, plat, set)
		hd := h.Solve(p)
		od := o.Solve(p)
		if hd.Feasible {
			if !od.Feasible {
				t.Fatalf("trial %d: seed feasible but truncated exact infeasible", trial)
			}
			if od.Energy > hd.Energy+1e-9 {
				t.Fatalf("trial %d: anytime result %v worse than seed %v", trial, od.Energy, hd.Energy)
			}
			if !p.FeasibleMapping(od.Mapping) {
				t.Fatalf("trial %d: anytime mapping infeasible", trial)
			}
		}
		if slack := limit + 8*nodeBatch + 64; o.LastStats.Nodes > slack {
			t.Fatalf("trial %d: %d nodes expanded, limit %d (max slack %d)",
				trial, o.LastStats.Nodes, limit, slack)
		}
	}
}

// TestParallelBudgetedFallthrough drives the parallel solver inside a
// BudgetedSolver chain with a node budget small enough to exhaust
// mid-search: decisions must stay sound (feasible means schedulable),
// exhaustion must be reported, and the chain must fall through to its
// cheaper stage rather than wedge. Run under -race this also exercises the
// worker pool shutdown on budget exhaustion.
func TestParallelBudgetedFallthrough(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(53)
	o := &Optimal{Workers: 8}
	chain := &core.BudgetedSolver{
		Stages: []core.Stage{
			{Name: "exact", Solver: o},
			{Name: "heuristic", Solver: &core.Heuristic{}},
		},
		Budget: core.Budget{Nodes: 64},
	}
	exhausted := 0
	for trial := 0; trial < 80; trial++ {
		p := randomWideProblem(r, plat, set)
		d := chain.Solve(p)
		if o.BudgetUsed().Exhausted {
			exhausted++
		}
		if d.Feasible && !p.FeasibleMapping(d.Mapping) {
			t.Fatalf("trial %d: chain returned an infeasible mapping as feasible", trial)
		}
	}
	if exhausted == 0 {
		t.Fatal("budget never exhausted: the test exercised nothing")
	}
}

// TestCacheHitsAcrossActivations: re-solving shared state must be answered
// from the cross-activation cache, visibly in telemetry.
func TestCacheHitsAcrossActivations(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	o := &Optimal{}
	o.AttachMetrics(reg)
	r := rng.New(61)
	p := randomWideProblem(r, plat, set)
	d1 := o.Solve(p)
	firstHits := reg.Counter("exact.cache.hits").Value()
	if reg.Counter("exact.cache.misses").Value() == 0 {
		t.Fatal("no probes reached the cache")
	}
	d2 := o.Solve(p)
	assertSameDecision(t, 0, d1, d2)
	hits := reg.Counter("exact.cache.hits").Value()
	if hits <= firstHits {
		t.Fatalf("re-solving an identical activation gained no cache hits (%d -> %d)", firstHits, hits)
	}
	if rate := reg.Gauge("exact.cache.hit_rate").Value(); rate <= 0 || rate > 1 {
		t.Fatalf("hit rate gauge %v outside (0,1]", rate)
	}
}

// TestCacheDisabled: CacheSlots < 0 must bypass the cache entirely and keep
// its instruments silent.
func TestCacheDisabled(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	o := &Optimal{CacheSlots: -1}
	o.AttachMetrics(reg)
	r := rng.New(61)
	for trial := 0; trial < 10; trial++ {
		o.Solve(randomSmallProblem(r, plat, set))
	}
	if h, m := reg.Counter("exact.cache.hits").Value(), reg.Counter("exact.cache.misses").Value(); h != 0 || m != 0 {
		t.Fatalf("disabled cache counted probes: hits=%d misses=%d", h, m)
	}
}

// TestParallelMatchesBruteForce anchors the parallel path to ground truth
// on small instances (the serial differential already covers the rest).
func TestParallelMatchesBruteForce(t *testing.T) {
	plat := platform.Motivational()
	set, err := task.Generate(plat, func() task.GenConfig {
		c := task.DefaultGenConfig()
		c.NumTypes = 30
		return c
	}(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(71)
	o := &Optimal{Workers: 4}
	for trial := 0; trial < 150; trial++ {
		p := randomSmallProblem(r, plat, set)
		d := o.Solve(p)
		_, wantE, found := bruteForce(p)
		if d.Feasible != found {
			t.Fatalf("trial %d: parallel feasible=%v, brute force=%v", trial, d.Feasible, found)
		}
		if found && math.Abs(d.Energy-wantE) > 1e-9 {
			t.Fatalf("trial %d: parallel energy %v != brute force %v", trial, d.Energy, wantE)
		}
	}
}

// BenchmarkOptimalSolveParallel measures the parallel search against the
// serial baseline on wide instances. workers=1 is the serial path on the
// same problem set, so sub-benchmark ratios are the parallel speedup.
func BenchmarkOptimalSolveParallel(b *testing.B) {
	plat := platform.Default()
	set, _ := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	r := rng.New(97)
	problems := make([]*sched.Problem, 16)
	for i := range problems {
		problems[i] = wideProblem(r, plat, set, 14, 45, 95)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := &Optimal{NodeLimit: 2_000_000, Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Solve(problems[i%len(problems)])
			}
		})
	}
}
