package exact

import (
	"math"
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// bruteForce enumerates every mapping and returns the optimal feasible one.
func bruteForce(p *sched.Problem) (best []int, bestE float64, found bool) {
	n := p.Platform.Len()
	m := len(p.Jobs)
	mapping := make([]int, m)
	bestE = math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == m {
			if p.FeasibleMapping(mapping) {
				if e := p.Energy(mapping); e < bestE {
					bestE = e
					best = append(best[:0], mapping...)
					found = true
				}
			}
			return
		}
		for r := 0; r < n; r++ {
			mapping[k] = r
			rec(k + 1)
		}
	}
	rec(0)
	return best, bestE, found
}

func randomSmallProblem(r *rng.Rand, plat *platform.Platform, set *task.Set) *sched.Problem {
	now := r.Uniform(0, 50)
	n := 1 + r.Intn(4)
	jobs := make([]*sched.Job, 0, n+1)
	for i := 0; i < n; i++ {
		ty := set.Type(r.Intn(set.Len()))
		arr := now - r.Uniform(0, 10)
		j := sched.NewJob(i, ty, arr, r.Uniform(15, 150))
		if j.AbsDeadline <= now {
			j.AbsDeadline = now + r.Uniform(3, 80)
		}
		if r.Float64() < 0.5 {
			j.Resource = r.Intn(plat.Len())
			if r.Float64() < 0.5 {
				j.Started = true
				j.ExecRes = j.Resource
				j.Frac = r.Uniform(0.2, 1)
			}
		}
		jobs = append(jobs, j)
	}
	if r.Float64() < 0.5 {
		ty := set.Type(r.Intn(set.Len()))
		jp := sched.NewJob(n, ty, now+r.Uniform(0, 4), r.Uniform(15, 150))
		jp.Predicted = true
		jobs = append(jobs, jp)
	}
	return &sched.Problem{Platform: plat, Time: now, Jobs: jobs}
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	plat := platform.Motivational() // 3 resources: brute force tractable
	set, err := task.Generate(plat, func() task.GenConfig {
		c := task.DefaultGenConfig()
		c.NumTypes = 30
		return c
	}(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(71)
	o := &Optimal{}
	agreeFeasible, agreeInfeasible := 0, 0
	for trial := 0; trial < 300; trial++ {
		p := randomSmallProblem(r, plat, set)
		d := o.Solve(p)
		if o.LastStats.Truncated {
			t.Fatalf("trial %d: truncated on a tiny instance", trial)
		}
		_, wantE, found := bruteForce(p)
		if d.Feasible != found {
			t.Fatalf("trial %d: exact feasible=%v, brute force=%v", trial, d.Feasible, found)
		}
		if !found {
			agreeInfeasible++
			continue
		}
		agreeFeasible++
		if math.Abs(d.Energy-wantE) > 1e-9 {
			t.Fatalf("trial %d: exact energy %v != brute force %v", trial, d.Energy, wantE)
		}
		if !p.FeasibleMapping(d.Mapping) {
			t.Fatalf("trial %d: exact mapping not feasible", trial)
		}
	}
	if agreeFeasible < 50 {
		t.Fatalf("only %d feasible instances; generator too harsh for a meaningful test", agreeFeasible)
	}
	if agreeInfeasible == 0 {
		t.Log("note: no infeasible instances sampled")
	}
}

func TestOptimalNeverWorseThanHeuristic(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	h := &core.Heuristic{}
	o := &Optimal{}
	hFeasible, oStrictlyBetter := 0, 0
	for trial := 0; trial < 300; trial++ {
		p := randomSmallProblem(r, plat, set)
		hd := h.Solve(p)
		od := o.Solve(p)
		if hd.Feasible {
			hFeasible++
			if !od.Feasible {
				t.Fatalf("trial %d: heuristic feasible but exact not", trial)
			}
			if od.Energy > hd.Energy+1e-9 {
				t.Fatalf("trial %d: exact %v worse than heuristic %v", trial, od.Energy, hd.Energy)
			}
			if od.Energy < hd.Energy-1e-9 {
				oStrictlyBetter++
			}
		}
	}
	if hFeasible == 0 {
		t.Fatal("no feasible instances")
	}
	if oStrictlyBetter == 0 {
		t.Log("note: exact never strictly improved on the heuristic in this sample")
	}
}

func TestOptimalMotivational(t *testing.T) {
	ts := task.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 8)
	jp := sched.NewJob(1, ts.Type(1), 1, 5)
	jp.Predicted = true
	p := &sched.Problem{
		Platform: platform.Motivational(),
		Time:     0,
		Jobs:     []*sched.Job{j1, jp},
	}
	d := (&Optimal{}).Solve(p)
	if !d.Feasible {
		t.Fatal("scenario (b) must be feasible")
	}
	if d.Mapping[0] != 0 || d.Mapping[1] != 2 {
		t.Fatalf("mapping = %v, want [0 2]", d.Mapping)
	}
	if math.Abs(d.Energy-8.8) > 1e-12 {
		t.Fatalf("energy = %v, want 8.8", d.Energy)
	}
}

func TestOptimalRespectsPinned(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 50)
	j1.Resource = 2
	j1.Started = true
	j1.ExecRes = j1.Resource
	j1.Frac = 0.5
	p := &sched.Problem{Platform: plat, Time: 2, Jobs: []*sched.Job{j1}}
	d := (&Optimal{}).Solve(p)
	if !d.Feasible || d.Mapping[0] != 2 {
		t.Fatalf("pinned job moved: %+v", d)
	}
}

func TestOptimalInfeasiblePinnedState(t *testing.T) {
	// A pinned job that can no longer meet its deadline: Solve must report
	// infeasible without crashing.
	ts := task.Motivational()
	plat := platform.Motivational()
	j1 := sched.NewJob(0, ts.Type(0), 0, 8)
	j1.Resource = 2
	j1.Started = true
	j1.ExecRes = j1.Resource
	j1.Frac = 1
	p := &sched.Problem{Platform: plat, Time: 7, Jobs: []*sched.Job{j1}}
	// 5 time units of GPU work left, deadline at 8, now 7: impossible.
	if d := (&Optimal{}).Solve(p); d.Feasible {
		t.Fatal("infeasible pinned state accepted")
	}
}

func TestOptimalNodeLimitAnytime(t *testing.T) {
	// With a node limit of 1 the search cannot expand, but the heuristic
	// seed must still be returned.
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	o := &Optimal{NodeLimit: 1}
	h := &core.Heuristic{}
	for trial := 0; trial < 50; trial++ {
		p := randomSmallProblem(r, plat, set)
		hd := h.Solve(p)
		od := o.Solve(p)
		if hd.Feasible && (!od.Feasible || od.Energy > hd.Energy+1e-9) {
			t.Fatalf("trial %d: anytime result worse than seed", trial)
		}
	}
}

func TestOptimalEmptyProblem(t *testing.T) {
	p := &sched.Problem{Platform: platform.Default(), Time: 0}
	d := (&Optimal{}).Solve(p)
	if !d.Feasible || d.Energy != 0 {
		t.Fatalf("empty problem: %+v", d)
	}
}

func BenchmarkOptimalSolve(b *testing.B) {
	plat := platform.Default()
	set, _ := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	r := rng.New(13)
	problems := make([]*sched.Problem, 64)
	for i := range problems {
		problems[i] = randomSmallProblem(r, plat, set)
	}
	o := &Optimal{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Solve(problems[i%len(problems)])
	}
}

func BenchmarkHeuristicSolve(b *testing.B) {
	plat := platform.Default()
	set, _ := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	r := rng.New(13)
	problems := make([]*sched.Problem, 64)
	for i := range problems {
		problems[i] = randomSmallProblem(r, plat, set)
	}
	h := &core.Heuristic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Solve(problems[i%len(problems)])
	}
}
