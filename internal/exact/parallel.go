package exact

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"predrm/internal/core"
	"predrm/internal/sched"
)

// Parallel branch and bound.
//
// The root of the depth-first tree is split into independent subtree tasks
// — every feasible, unpruned prefix of the branching order down to a depth
// where the frontier is comfortably wider than the worker count — and the
// tasks are searched by a bounded pool of goroutines sharing one atomic
// incumbent. Tasks are numbered in depth-first (lexicographic) order; that
// index induces a total order on leaves,
//
//	a beats b  iff  a.e < b.e - Eps, or |a.e - b.e| <= Eps and a
//	                precedes b (seed first, then lower task index,
//	                then first-found within a task),
//
// which is exactly the order in which the serial search improves its
// incumbent. Workers prune with the incumbent asymmetrically: against the
// seed or an incumbent from a task at or before their own they prune ties
// (lb >= inc.e - Eps, the serial rule), while against an incumbent from a
// later task they only prune strictly worse subtrees (lb > inc.e + Eps),
// because a leaf of theirs tying that value would precede it in the total
// order and must be found. The surviving incumbent is therefore the
// total-order minimum regardless of worker interleaving, which makes a
// completed parallel solve bit-identical to the serial one — the energy
// sums are even the same float additions in the same depth order. DESIGN.md
// §7 carries the full argument; truncated solves remain anytime-sound but,
// like any budget-cut search, depend on where the budget landed.

// tasksPerWorker oversizes the task frontier relative to the pool so the
// tail imbalance of uneven subtrees is amortised by work stealing from the
// shared cursor.
const tasksPerWorker = 4

// nodeBatch is how many nodes a worker expands between flushes into the
// shared counter; the shared limit is enforced with at most this much
// per-worker slack.
const nodeBatch = 64

// incumbent is an immutable snapshot of the best known solution, published
// through an atomic pointer. seed marks the heuristic warm start, which
// wins every tie; task orders worker leaves.
type incumbent struct {
	e       float64
	seed    bool
	task    int
	mapping []int // nil for the seed (Optimal.bestMap already holds it)
}

// subtask is one root subtree: a prefix of branch choices (indices into
// resOrder per depth) plus the energy accumulated along it.
type subtask struct {
	choices []int
	energy  float64
}

// parWorker is one search goroutine's private scratch, persistent across
// solves.
type parWorker struct {
	lists   []sched.EntryList
	edf     sched.EDFScratch
	mapping []int

	// Batched accounting: local counts flushed into the shared atomics
	// every nodeBatch nodes (seen caches the last shared total observed).
	local    int64
	seen     int64
	wallTick int64

	hits, misses int64
	warmCuts     int
}

// parSearch is the shared coordination state of one parallel solve.
type parSearch struct {
	inc   atomic.Pointer[incumbent]
	incMu sync.Mutex // serialises leaf offers; prune reads stay lock-free

	sharedNodes atomic.Int64
	next        atomic.Int64 // task-claim cursor
	stop        atomic.Bool  // node/wall budget exhausted
	wallHit     atomic.Bool

	workers []*parWorker
	prefix  []int // split-time scratch: insert positions of the applied prefix
}

// splitRoot expands the root frontier level by level — every task at depth
// d is replaced by its feasible, unpruned children at depth d+1, children
// enumerated in resource order — until at least target tasks exist or one
// undecided depth remains. Expanding whole levels in task order keeps the
// frontier in depth-first (lexicographic) order, which is what the task
// index ordering relies on. Pruning here uses only the heuristic seed
// bound, fixed before any worker runs, so the task set is deterministic.
func (o *Optimal) splitRoot(target int, pinnedEnergy float64) []subtask {
	ps := &o.par
	cur := []subtask{{energy: pinnedEnergy}}
	for depth := 0; depth < len(o.order)-1 && len(cur) < target; depth++ {
		next := make([]subtask, 0, 2*len(cur))
		for _, t := range cur {
			// Re-apply this task's prefix to the shared lists; positions are
			// recorded so the inserts unwind LIFO like the serial search.
			pos := ps.prefix[:0]
			for d, ri := range t.choices {
				r := o.resOrder[d][ri]
				pos = append(pos, o.lists[r].Insert(o.p.Time, o.cand[d][ri]))
			}
			for ri, r := range o.resOrder[depth] {
				if o.nodes >= o.limit {
					break
				}
				o.nodes++
				e := t.energy + o.candE[depth][ri]
				if e+o.sufMinE[depth+1] >= o.bestE-sched.Eps {
					continue
				}
				cpos := o.lists[r].Insert(o.p.Time, o.cand[depth][ri])
				if o.feasible(r) {
					choices := make([]int, len(t.choices)+1)
					copy(choices, t.choices)
					choices[len(t.choices)] = ri
					next = append(next, subtask{choices: choices, energy: e})
				}
				o.lists[r].Remove(o.p.Time, cpos)
			}
			for d := len(pos) - 1; d >= 0; d-- {
				o.lists[o.resOrder[d][t.choices[d]]].Remove(o.p.Time, pos[d])
			}
			ps.prefix = pos[:0]
		}
		cur = next
	}
	return cur
}

// solveParallel runs the parallel search. It returns the task and worker
// counts; workers == 0 means the root was too narrow to split and the
// caller should fall back to the serial search.
func (o *Optimal) solveParallel(h core.Decision, pinnedEnergy float64) (tasks, workers int) {
	ps := &o.par
	subtasks := o.splitRoot(o.Workers*tasksPerWorker, pinnedEnergy)
	if len(subtasks) < 2 || o.nodes >= o.limit {
		return 0, 0
	}
	workers = o.Workers
	if workers > len(subtasks) {
		workers = len(subtasks)
	}

	ps.sharedNodes.Store(0)
	ps.next.Store(0)
	ps.stop.Store(false)
	ps.wallHit.Store(false)
	if h.Feasible {
		ps.inc.Store(&incumbent{e: h.Energy, seed: true, task: -1})
	} else {
		ps.inc.Store(nil)
	}
	ps.ensureWorkers(workers, o.p.Platform.Len(), len(o.p.Jobs))

	remaining := int64(o.limit - o.nodes)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go o.runWorker(ps.workers[i], subtasks, remaining, &wg)
	}
	wg.Wait()

	o.nodes += int(ps.sharedNodes.Load())
	if ps.wallHit.Load() {
		o.wallHit = true
	}
	for i := 0; i < workers; i++ {
		w := ps.workers[i]
		o.hitsDelta += w.hits
		o.missDelta += w.misses
		o.warmCuts += w.warmCuts
		w.hits, w.misses, w.warmCuts = 0, 0, 0
	}
	if inc := ps.inc.Load(); inc != nil && !inc.seed {
		o.found = true
		o.bestE = inc.e
		o.bestMap = append(o.bestMap[:0], inc.mapping...)
	}
	return len(subtasks), workers
}

// ensureWorkers sizes the persistent worker pool for this solve.
func (ps *parSearch) ensureWorkers(n, resources, jobs int) {
	for len(ps.workers) < n {
		ps.workers = append(ps.workers, &parWorker{})
	}
	for i := 0; i < n; i++ {
		w := ps.workers[i]
		if len(w.lists) < resources {
			w.lists = append(w.lists, make([]sched.EntryList, resources-len(w.lists))...)
		}
		if cap(w.mapping) < jobs {
			w.mapping = make([]int, jobs)
		}
		w.mapping = w.mapping[:jobs]
	}
}

// runWorker claims tasks from the shared cursor until they run out or the
// budget stops the search. Per task it snapshots the pinned-only base
// state, replays the task prefix, and dives.
func (o *Optimal) runWorker(w *parWorker, tasks []subtask, limit int64, wg *sync.WaitGroup) {
	defer wg.Done()
	ps := &o.par
	n := o.p.Platform.Len()
	for {
		t := int(ps.next.Add(1)) - 1
		if t >= len(tasks) || ps.stop.Load() {
			break
		}
		for r := 0; r < n; r++ {
			w.lists[r].CopyFrom(&o.lists[r])
		}
		copy(w.mapping, o.mapping)
		task := tasks[t]
		for d, ri := range task.choices {
			r := o.resOrder[d][ri]
			w.lists[r].Insert(o.p.Time, o.cand[d][ri])
			w.mapping[o.order[d]] = r
		}
		o.wdfs(w, t, len(task.choices), task.energy, limit)
	}
	// Flush the residual node count so Solve's total is exact.
	if w.local > 0 {
		ps.sharedNodes.Add(w.local)
		w.local = 0
	}
}

// countNode performs the batched node accounting for one expansion. It
// returns false when the shared node limit or the wall budget is hit, at
// which point the whole search stops.
func (w *parWorker) countNode(o *Optimal, limit int64) bool {
	ps := &o.par
	w.local++
	w.wallTick++
	if o.budget.Wall > 0 && w.wallTick&wallCheckMask == 0 &&
		time.Since(o.wallStart) > o.budget.Wall {
		ps.wallHit.Store(true)
		ps.stop.Store(true)
		return false
	}
	if w.local >= nodeBatch || w.seen+w.local >= limit {
		w.seen = ps.sharedNodes.Add(w.local)
		w.local = 0
		if w.seen >= limit {
			ps.stop.Store(true)
			return false
		}
	}
	return true
}

// pruneBound decides whether a subtree with optimistic completion lb can be
// cut against the current incumbent, from the perspective of task myTask.
// Ties lose against the seed and against tasks at or before mine (the
// serial rule); against a later task only a strictly worse subtree may go,
// since a tying leaf of mine would precede that incumbent in the total
// order.
func pruneBound(inc *incumbent, lb float64, myTask int) bool {
	if inc == nil {
		return false
	}
	if inc.seed || inc.task <= myTask {
		return lb >= inc.e-sched.Eps
	}
	return lb > inc.e+sched.Eps
}

// offer proposes a completed leaf. Under the mutex the total order is
// re-checked against the current incumbent, so concurrent offers serialise
// into exactly the order-independent minimum.
func (ps *parSearch) offer(e float64, myTask int, mapping []int) {
	ps.incMu.Lock()
	cur := ps.inc.Load()
	if cur == nil || e < cur.e-sched.Eps ||
		(math.Abs(e-cur.e) <= sched.Eps && !cur.seed && cur.task > myTask) {
		ps.inc.Store(&incumbent{e: e, task: myTask, mapping: append([]int(nil), mapping...)})
	}
	ps.incMu.Unlock()
}

// wdfs is the worker-side depth-first search: the serial dfs with the
// shared incumbent, shared node accounting, and per-worker scratch.
func (o *Optimal) wdfs(w *parWorker, task, depth int, energy float64, limit int64) {
	ps := &o.par
	if ps.stop.Load() || !w.countNode(o, limit) {
		return
	}
	lb := energy + o.sufMinE[depth]
	if pruneBound(ps.inc.Load(), lb, task) {
		return
	}
	// Warm bound (see prepareWarmBound): read-only during the search, so
	// workers share it lock-free; exclusive, so no potential total-order
	// minimum is ever cut. Deliberately absent from splitRoot — the task
	// set, and with it the task numbering the determinism argument orders
	// leaves by, stays identical to a cold solve.
	if lb > o.warmBound+sched.Eps {
		w.warmCuts++
		return
	}
	if depth == len(o.order) {
		ps.offer(energy, task, w.mapping)
		return
	}
	jobIdx := o.order[depth]
	for ri, r := range o.resOrder[depth] {
		pos := w.lists[r].Insert(o.p.Time, o.cand[depth][ri])
		if feasibleList(o.p, &w.lists[r], r, o.cache, &w.edf, &w.hits, &w.misses) {
			w.mapping[jobIdx] = r
			o.wdfs(w, task, depth+1, energy+o.candE[depth][ri], limit)
			w.mapping[jobIdx] = sched.Unmapped
		}
		w.lists[r].Remove(o.p.Time, pos)
	}
}
