// Package exact provides the optimal reference resource manager.
//
// The paper evaluates its heuristic against a MILP (Sec 4.2) whose only
// free decisions are the mapping variables x_{j,i}; given a mapping, the
// schedule is EDF-determined and the objective is a sum of per-assignment
// energies. Package exact therefore searches the mapping space directly
// with branch and bound: depth-first over jobs, resources tried in
// increasing-energy order, partial assignments pruned by per-resource EDF
// infeasibility (adding work to a resource can never repair it) and by an
// energy lower bound against the incumbent. The search is seeded with
// Algorithm 1's solution, so the result is never worse than the heuristic
// and equals the MILP optimum whenever the node budget is not exhausted.
//
// The literal MILP formulation, lowered onto this repository's own
// simplex/branch-and-bound stack, lives in internal/milpform and is
// cross-validated against this package.
package exact

import (
	"math"
	"sort"
	"time"

	"predrm/internal/core"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
)

// DefaultNodeLimit bounds the branch-and-bound tree per solve. Typical
// activations explore well under a thousand nodes; the limit only guards
// pathological overload states, where the solver degrades gracefully into
// an anytime optimiser that still dominates the heuristic.
const DefaultNodeLimit = 300000

// Stats reports what the last Solve did.
type Stats struct {
	// Nodes is the number of branch-and-bound nodes expanded, summed over
	// all workers for a parallel solve. Parallel node counts vary with
	// scheduling (pruning depends on when the shared incumbent tightens);
	// only the returned decision is deterministic.
	Nodes int
	// Truncated reports whether the node budget ran out before the search
	// space was exhausted; if false the result is the exact optimum.
	Truncated bool
	// Tasks is the number of root subtree tasks of a parallel solve
	// (0 when the serial path ran).
	Tasks int
	// Workers is the number of search goroutines used (0 serial).
	Workers int
	// WarmSeeded reports whether the previous activation's mapping was
	// repaired into a feasible solution of this problem and installed as
	// the warm-start pruning bound (WarmStart field).
	WarmSeeded bool
	// WarmCuts counts subtrees cut by the warm-start bound alone — the
	// incumbent bound had not pruned them. Like Nodes, parallel counts
	// vary with scheduling; only the returned decision is deterministic.
	WarmCuts int
}

// Optimal is the exact mapping solver. The zero value is ready to use.
//
// An Optimal is not safe for concurrent use by multiple callers: it keeps
// per-solve state, and Solve must be called from one goroutine at a time.
// With Workers > 1, Solve parallelises internally — it splits the root of
// the branch-and-bound tree into subtree tasks and searches them on its
// own bounded worker pool — while remaining a single-caller API. The
// parallel search is deterministic: a completed (non-truncated) parallel
// Solve returns a decision bit-identical to the serial solver's,
// regardless of worker count, GOMAXPROCS, or scheduling (see DESIGN.md
// §7 for the total-order incumbent argument).
type Optimal struct {
	// NodeLimit overrides DefaultNodeLimit when positive.
	NodeLimit int
	// Workers selects the search concurrency: 0 or 1 is the serial
	// depth-first search, higher values split the root frontier into
	// subtree tasks explored by that many goroutines sharing an atomic
	// incumbent bound.
	Workers int
	// CacheSlots sizes the cross-activation feasibility cache: 0 selects
	// sched.DefaultFeasCacheSlots, negative disables the cache. The cache
	// memoises EDF feasibility probes keyed by a canonical fingerprint of
	// (resource entry list, candidate entry) and persists across Solve
	// calls, so consecutive RM activations — which share almost all of
	// their admitted state — reuse each other's verdicts.
	CacheSlots int
	// WarmStart remembers each solve's mapping and, on the next solve,
	// repairs it into a feasible solution of the new problem (surviving
	// jobs matched by pointer, see sched.WarmState) whose energy becomes
	// an additional pruning bound: subtrees whose optimistic completion is
	// strictly worse than the repaired solution are cut before the search
	// finds its own incumbent there. The bound is exclusive and never
	// returnable, so a completed solve stays bit-identical to a cold start
	// (DESIGN.md §10); only the node count — and therefore where a node or
	// wall budget truncates — can differ.
	WarmStart bool
	// LastStats describes the most recent Solve call.
	LastStats Stats

	// budget is the per-activation bound installed by ApplyBudget
	// (core.BudgetAware); its node count tightens NodeLimit, its wall
	// limit is checked every wallCheckMask+1 nodes during the search.
	budget    core.Budget
	wallStart time.Time
	wallHit   bool

	// Telemetry instruments (nil-safe no-ops until AttachMetrics).
	mSolves, mTruncated, mInfeasible *telemetry.Counter
	mNodes                           *telemetry.Histogram
	mParSolves                       *telemetry.Counter
	hParTasks                        *telemetry.Histogram
	gParWorkers                      *telemetry.Gauge
	mCacheHits, mCacheMisses         *telemetry.Counter
	mCacheEvict                      *telemetry.Counter
	gCacheRate                       *telemetry.Gauge
	mWarmAttempts, mWarmSeeded       *telemetry.Counter
	mWarmFail, mWarmCuts             *telemetry.Counter

	// seeder warms the incumbent with Algorithm 1; reusing one instance
	// keeps its scratch arena alive across solves.
	seeder core.Heuristic

	// prov, when attached, receives one BBStats record per solve (the
	// seeder contributes its own candidate/pick records).
	prov *telemetry.ProvRecorder

	// Scratch state for the current solve. Per-resource entry lists are
	// kept in FeasibleSorted service order with future-release counts
	// (sched.EntryList), so most feasibility probes are allocation-free
	// cumulative scans; edf buffers the occasional full EDF simulation.
	// The remaining slices are reused across solves and merely resliced.
	p        *sched.Problem
	order    []int // free job indices in branching order
	lists    []sched.EntryList
	edf      sched.EDFScratch
	mapping  []int
	free     []int
	bestMap  []int
	bestE    float64
	found    bool
	nodes    int
	limit    int
	minE     []float64 // per free-job minimum EPM (lower-bound term)
	sufMinE  []float64 // suffix sums of minE over the branching order
	resOrder [][]int   // per free job, resources sorted by EPM
	// cand and candE cache the Entry and energy of assigning the job at
	// each branching depth to resOrder[depth][k]; they are invariant
	// during the search.
	cand  [][]sched.Entry
	candE [][]float64

	// Warm-start state (WarmStart field): the previous activation's
	// recorded mapping, the current solve's pruning bound (+Inf when
	// absent — it is read-only during a search, so parallel workers share
	// it without synchronisation), and the serial path's bound-cut count.
	warm       sched.WarmState
	warmBound  float64
	warmSeeded bool
	warmCuts   int

	// Cross-activation feasibility cache (see CacheSlots) and the serial
	// path's batched probe counters, flushed into the cache per Solve.
	cache                *sched.FeasCache
	hitsDelta, missDelta int64
	lastEvict            int64

	// Parallel-search state (see parallel.go): the persistent worker
	// scratch pool and the shared incumbent/termination machinery.
	par parSearch
}

// feasibleList probes one entry list, going through the cache when
// enabled (sched.EntryList.FeasibleCached). hits/misses batch the probe
// statistics caller-side so search workers pay no per-probe atomics.
func feasibleList(p *sched.Problem, l *sched.EntryList, res int, cache *sched.FeasCache,
	edf *sched.EDFScratch, hits, misses *int64) bool {
	return l.FeasibleCached(p.Platform.Resource(res).Preemptable(), p.Time, cache, edf, hits, misses)
}

// feasible checks resource res's current entry list on the serial path.
func (o *Optimal) feasible(res int) bool {
	return feasibleList(o.p, &o.lists[res], res, o.cache, &o.edf, &o.hitsDelta, &o.missDelta)
}

var _ core.Solver = (*Optimal)(nil)
var _ core.BudgetAware = (*Optimal)(nil)
var _ telemetry.Instrumentable = (*Optimal)(nil)
var _ telemetry.ProvenanceAware = (*Optimal)(nil)

// AttachProvenance installs the decision-provenance recorder
// (telemetry.ProvenanceAware) and forwards it to the Algorithm 1 seeder,
// whose candidate verdicts and regret picks describe the incumbent seed.
func (o *Optimal) AttachProvenance(rec *telemetry.ProvRecorder) {
	o.prov = rec
	o.seeder.AttachProvenance(rec)
}

// recordBB appends this solve's branch-and-bound statistics to the
// provenance recorder. Must run before flushCacheStats, which zeroes the
// batched cache probe deltas the record reports.
func (o *Optimal) recordBB() {
	if !o.prov.Enabled() {
		return
	}
	b := telemetry.BBStats{
		Nodes:       o.LastStats.Nodes,
		Truncated:   o.LastStats.Truncated,
		Tasks:       o.LastStats.Tasks,
		Workers:     o.LastStats.Workers,
		CacheHits:   o.hitsDelta,
		CacheMisses: o.missDelta,
	}
	if o.found {
		b.Incumbent = o.bestE
	}
	o.prov.BB(b)
}

// wallCheckMask throttles wall-clock budget checks to every 512 nodes: a
// time.Now call per node would dominate the ~100ns node expansion.
const wallCheckMask = 511

// ApplyBudget installs the per-activation budget for subsequent Solves
// (core.BudgetAware). A node budget tightens NodeLimit; a wall budget
// deadline is polled during the search, which makes results
// timing-dependent — prefer node budgets for reproducible runs.
func (o *Optimal) ApplyBudget(b core.Budget) { o.budget = b }

// BudgetUsed reports the most recent Solve's consumption
// (core.BudgetAware). Exhausted mirrors LastStats.Truncated: the search
// was cut short, so the result is the anytime incumbent — still never
// worse than the heuristic seed when one exists.
func (o *Optimal) BudgetUsed() core.BudgetUse {
	return core.BudgetUse{Nodes: o.LastStats.Nodes, Exhausted: o.LastStats.Truncated}
}

// AttachMetrics registers the solver's instruments on reg: counters
// exact.solves, exact.truncated, and exact.infeasible, plus the histogram
// exact.nodes (branch-and-bound nodes per solve). The parallel search adds
// exact.parallel.solves (parallel-path activations), exact.parallel.tasks
// (root subtree tasks per parallel solve) and exact.parallel.workers
// (goroutines per parallel solve, gauge); the pruning cache adds
// exact.cache.hits / exact.cache.misses / exact.cache.evictions and the
// lifetime exact.cache.hit_rate gauge. Warm starting adds
// exact.warmstart.attempts / .seeded (repairs that produced a bound — the
// seed-feasible rate is their ratio) / .repair_fail / .bound_cuts
// (subtrees cut by the warm bound alone, a nodes-saved proxy).
func (o *Optimal) AttachMetrics(reg *telemetry.Registry) {
	o.mSolves = reg.Counter("exact.solves")
	o.mTruncated = reg.Counter("exact.truncated")
	o.mInfeasible = reg.Counter("exact.infeasible")
	o.mNodes = reg.Histogram("exact.nodes", telemetry.NodeBuckets)
	o.mParSolves = reg.Counter("exact.parallel.solves")
	o.hParTasks = reg.Histogram("exact.parallel.tasks", telemetry.CountBuckets)
	o.gParWorkers = reg.Gauge("exact.parallel.workers")
	o.mCacheHits = reg.Counter("exact.cache.hits")
	o.mCacheMisses = reg.Counter("exact.cache.misses")
	o.mCacheEvict = reg.Counter("exact.cache.evictions")
	o.gCacheRate = reg.Gauge("exact.cache.hit_rate")
	o.mWarmAttempts = reg.Counter("exact.warmstart.attempts")
	o.mWarmSeeded = reg.Counter("exact.warmstart.seeded")
	o.mWarmFail = reg.Counter("exact.warmstart.repair_fail")
	o.mWarmCuts = reg.Counter("exact.warmstart.bound_cuts")
}

// Solve returns the minimum-energy feasible mapping of p, or an infeasible
// decision when none exists.
func (o *Optimal) Solve(p *sched.Problem) core.Decision {
	o.p = p
	o.limit = o.NodeLimit
	if o.limit <= 0 {
		o.limit = DefaultNodeLimit
	}
	if o.budget.Nodes > 0 && o.budget.Nodes < o.limit {
		o.limit = o.budget.Nodes
	}
	o.wallHit = false
	if o.budget.Wall > 0 {
		o.wallStart = time.Now()
	}
	o.nodes = 0
	o.found = false
	o.bestE = math.Inf(1)
	o.warmBound = math.Inf(1)
	o.warmSeeded = false
	o.warmCuts = 0

	if o.cache == nil && o.CacheSlots >= 0 {
		o.cache = sched.NewFeasCache(o.CacheSlots)
	}
	o.cache.Advance()

	n := p.Platform.Len()
	m := len(p.Jobs)
	if cap(o.mapping) < m {
		o.mapping = make([]int, m)
		o.free = make([]int, 0, m)
	}
	o.mapping = o.mapping[:m]
	if len(o.lists) < n {
		o.lists = append(o.lists, make([]sched.EntryList, n-len(o.lists))...)
	}
	for i := 0; i < n; i++ {
		o.lists[i].Reset()
		if o.cache != nil {
			o.lists[i].EnableFingerprint(p.Time)
		}
	}

	// Pre-assign pinned jobs and collect free ones.
	free := o.free[:0]
	pinnedEnergy := 0.0
	for idx, j := range p.Jobs {
		if j.Fixed || j.Pinned(p.Platform) {
			o.mapping[idx] = j.Resource
			o.lists[j.Resource].Insert(p.Time, o.entry(idx, j.Resource))
			pinnedEnergy += j.EPM(j.Resource, p.Policy)
			continue
		}
		o.mapping[idx] = sched.Unmapped
		free = append(free, idx)
	}
	o.free = free
	// Pinned-only feasibility: if the immovable work already misses
	// deadlines nothing can fix it (cannot happen after a sound admission
	// history, but guard anyway).
	for r := 0; r < n; r++ {
		if o.lists[r].Len() > 0 && !o.feasible(r) {
			o.LastStats = Stats{}
			o.mSolves.Inc()
			o.mInfeasible.Inc()
			o.recordBB()
			o.flushCacheStats()
			return core.Decision{Mapping: append([]int(nil), o.mapping...), Feasible: false}
		}
	}

	// Branching order: hardest jobs first — fewest executable resources,
	// then least slack. Resource order per job: cheapest energy first so
	// the first dive is a good incumbent.
	o.prepareOrders(free)

	// Warm start: repair the previous activation's mapping into a pruning
	// bound for this one. Must follow prepareOrders (the bound is summed
	// over candE in branching order) and precede the seeder, whose Solve
	// resets the shared arena Repair borrows.
	o.prepareWarmBound(pinnedEnergy)

	// Seed the incumbent with the heuristic so exact is never worse and
	// pruning starts strong.
	h := o.seeder.Solve(p)
	if h.Feasible {
		o.found = true
		o.bestE = h.Energy
		o.bestMap = append(o.bestMap[:0], h.Mapping...)
	}

	tasks, workers := 0, 0
	if o.Workers > 1 && len(o.order) >= 2 {
		tasks, workers = o.solveParallel(h, pinnedEnergy)
	}
	if workers == 0 {
		// Serial depth-first search: either requested (Workers <= 1) or
		// the root frontier was too small to be worth splitting.
		o.dfs(0, pinnedEnergy)
	}

	o.LastStats = Stats{
		Nodes:      o.nodes,
		Truncated:  o.nodes >= o.limit || o.wallHit,
		Tasks:      tasks,
		Workers:    workers,
		WarmSeeded: o.warmSeeded,
		WarmCuts:   o.warmCuts,
	}
	o.mWarmCuts.Add(int64(o.warmCuts))
	o.mSolves.Inc()
	o.mNodes.Observe(float64(o.nodes))
	if workers > 0 {
		o.mParSolves.Inc()
		o.hParTasks.Observe(float64(tasks))
		o.gParWorkers.Set(float64(workers))
	}
	if o.LastStats.Truncated {
		o.mTruncated.Inc()
	}
	o.recordBB()
	o.flushCacheStats()
	if !o.found {
		// An infeasible solve records nothing: the previous state stays —
		// surviving jobs still match by pointer on the next activation.
		o.mInfeasible.Inc()
		return core.Decision{Mapping: append([]int(nil), o.mapping...), Feasible: false}
	}
	if o.WarmStart {
		o.warm.Record(p, o.bestMap)
	}
	return core.Decision{Mapping: append([]int(nil), o.bestMap...), Feasible: true, Energy: o.bestE}
}

// prepareWarmBound repairs the previous activation's recorded mapping
// onto the current problem (via the seeder's Repair engine) and installs
// its energy as the warm pruning bound. The repaired mapping itself is
// deliberately NOT installed as an incumbent: an incumbent is returnable,
// and returning it would make warm and cold solves diverge whenever the
// repair beats the heuristic seed. As a non-returnable exclusive bound it
// only removes subtrees whose every leaf is strictly worse than a known
// feasible solution — leaves that can never be the returned decision —
// which is what keeps completed solves bit-identical to cold starts
// (DESIGN.md §10).
func (o *Optimal) prepareWarmBound(pinnedEnergy float64) {
	if !o.WarmStart || !o.warm.Valid() {
		return
	}
	o.mWarmAttempts.Inc()
	mapping, _, ok := o.seeder.Repair(o.p, &o.warm)
	if !ok {
		o.mWarmFail.Inc()
		return
	}
	// Re-sum the repaired mapping's energy with the search's own float
	// additions — pinned energy plus candE terms in branching-depth order
	// — so the bound equals the repair leaf's in-search energy exactly and
	// the exclusive comparison can never cut that leaf's own path.
	u := pinnedEnergy
	for d, jobIdx := range o.order {
		r := mapping[jobIdx]
		ri := -1
		for k, rr := range o.resOrder[d] {
			if rr == r {
				ri = k
				break
			}
		}
		if ri < 0 {
			// The repair placed a job outside the branchable resource set
			// (possible for predicted jobs, whose constraint-(2) window is
			// tighter under branching than under repair): no bound.
			o.mWarmFail.Inc()
			return
		}
		u += o.candE[d][ri]
	}
	o.warmBound = u
	o.warmSeeded = true
	o.mWarmSeeded.Inc()
}

// flushCacheStats folds the batched probe counters into the cache and the
// telemetry instruments.
func (o *Optimal) flushCacheStats() {
	if o.cache == nil {
		return
	}
	o.cache.AddStats(o.hitsDelta, o.missDelta)
	o.mCacheHits.Add(o.hitsDelta)
	o.mCacheMisses.Add(o.missDelta)
	o.hitsDelta, o.missDelta = 0, 0
	s := o.cache.Stats()
	o.mCacheEvict.Add(s.Evictions - o.lastEvict)
	o.lastEvict = s.Evictions
	o.gCacheRate.Set(s.HitRate())
}

func (o *Optimal) entry(jobIdx, r int) sched.Entry {
	j := o.p.Jobs[jobIdx]
	return sched.Entry{
		ReadyAt:     math.Max(j.Arrival, o.p.Time),
		Deadline:    j.AbsDeadline,
		Rem:         j.CPM(r, o.p.Policy),
		PinnedFirst: j.Pinned(o.p.Platform) && j.Resource == r,
	}
}

// prepareOrders computes the branching structures for the free jobs,
// reusing the slices of earlier solves.
func (o *Optimal) prepareOrders(free []int) {
	p := o.p
	n := p.Platform.Len()
	k := len(free)
	o.order = append(o.order[:0], free...)
	sort.SliceStable(o.order, func(a, b int) bool {
		ja, jb := p.Jobs[o.order[a]], p.Jobs[o.order[b]]
		ea, eb := ja.Type.NumExecutable(), jb.Type.NumExecutable()
		if ea != eb {
			return ea < eb
		}
		return ja.TimeLeft(p.Time) < jb.TimeLeft(p.Time)
	})
	if cap(o.minE) < k {
		o.minE = make([]float64, k)
	}
	if cap(o.sufMinE) < k+1 {
		o.sufMinE = make([]float64, k+1)
	}
	o.minE = o.minE[:k]
	o.sufMinE = o.sufMinE[:k+1]
	if len(o.resOrder) < k {
		o.resOrder = append(o.resOrder, make([][]int, k-len(o.resOrder))...)
		o.cand = append(o.cand, make([][]sched.Entry, k-len(o.cand))...)
		o.candE = append(o.candE, make([][]float64, k-len(o.candE))...)
	}
	for d, jobIdx := range o.order {
		j := p.Jobs[jobIdx]
		rs := o.resOrder[d][:0]
		for r := 0; r < n; r++ {
			cpm := j.CPM(r, p.Policy)
			if cpm == task.NotExecutable {
				continue
			}
			// Constraint (2): resources where the job cannot meet its own
			// deadline are never part of a feasible mapping.
			if cpm > j.AbsDeadline-math.Max(j.Arrival, p.Time)+sched.Eps {
				continue
			}
			rs = append(rs, r)
		}
		sort.Slice(rs, func(a, b int) bool {
			return j.EPM(rs[a], p.Policy) < j.EPM(rs[b], p.Policy)
		})
		o.resOrder[d] = rs
		if len(rs) == 0 {
			o.minE[d] = math.Inf(1)
		} else {
			o.minE[d] = j.EPM(rs[0], p.Policy)
		}
		cand := o.cand[d][:0]
		candE := o.candE[d][:0]
		for _, r := range rs {
			cand = append(cand, o.entry(jobIdx, r))
			candE = append(candE, j.EPM(r, p.Policy))
		}
		o.cand[d] = cand
		o.candE[d] = candE
	}
	o.sufMinE[k] = 0
	for d := k - 1; d >= 0; d-- {
		o.sufMinE[d] = o.sufMinE[d+1] + o.minE[d]
	}
}

func (o *Optimal) dfs(depth int, energy float64) {
	if o.nodes >= o.limit || o.wallHit {
		return
	}
	o.nodes++
	if o.budget.Wall > 0 && o.nodes&wallCheckMask == 0 && time.Since(o.wallStart) > o.budget.Wall {
		o.wallHit = true
		return
	}
	// Bound: even the cheapest completion cannot beat the incumbent.
	lb := energy + o.sufMinE[depth]
	if lb >= o.bestE-sched.Eps {
		return
	}
	// Warm bound: every leaf below is strictly worse than the repaired
	// previous-activation solution, so none can be the returned decision
	// (the bound is exclusive — see prepareWarmBound). Checked after the
	// incumbent so warmCuts counts only cuts the incumbent missed.
	if lb > o.warmBound+sched.Eps {
		o.warmCuts++
		return
	}
	if depth == len(o.order) {
		o.found = true
		o.bestE = energy
		o.bestMap = append(o.bestMap[:0], o.mapping...)
		return
	}
	jobIdx := o.order[depth]
	for ri, r := range o.resOrder[depth] {
		pos := o.lists[r].Insert(o.p.Time, o.cand[depth][ri])
		if o.feasible(r) {
			o.mapping[jobIdx] = r
			o.dfs(depth+1, energy+o.candE[depth][ri])
			o.mapping[jobIdx] = sched.Unmapped
		}
		o.lists[r].Remove(o.p.Time, pos)
	}
}
