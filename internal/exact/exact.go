// Package exact provides the optimal reference resource manager.
//
// The paper evaluates its heuristic against a MILP (Sec 4.2) whose only
// free decisions are the mapping variables x_{j,i}; given a mapping, the
// schedule is EDF-determined and the objective is a sum of per-assignment
// energies. Package exact therefore searches the mapping space directly
// with branch and bound: depth-first over jobs, resources tried in
// increasing-energy order, partial assignments pruned by per-resource EDF
// infeasibility (adding work to a resource can never repair it) and by an
// energy lower bound against the incumbent. The search is seeded with
// Algorithm 1's solution, so the result is never worse than the heuristic
// and equals the MILP optimum whenever the node budget is not exhausted.
//
// The literal MILP formulation, lowered onto this repository's own
// simplex/branch-and-bound stack, lives in internal/milpform and is
// cross-validated against this package.
package exact

import (
	"math"
	"sort"

	"predrm/internal/core"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
)

// DefaultNodeLimit bounds the branch-and-bound tree per solve. Typical
// activations explore well under a thousand nodes; the limit only guards
// pathological overload states, where the solver degrades gracefully into
// an anytime optimiser that still dominates the heuristic.
const DefaultNodeLimit = 300000

// Stats reports what the last Solve did.
type Stats struct {
	// Nodes is the number of branch-and-bound nodes expanded.
	Nodes int
	// Truncated reports whether the node budget ran out before the search
	// space was exhausted; if false the result is the exact optimum.
	Truncated bool
}

// Optimal is the exact mapping solver. The zero value is ready to use.
// An Optimal is not safe for concurrent use: it keeps per-solve state.
type Optimal struct {
	// NodeLimit overrides DefaultNodeLimit when positive.
	NodeLimit int
	// LastStats describes the most recent Solve call.
	LastStats Stats

	// Telemetry instruments (nil-safe no-ops until AttachMetrics).
	mSolves, mTruncated, mInfeasible *telemetry.Counter
	mNodes                           *telemetry.Histogram

	// Scratch state for the current solve. entries is kept sorted per
	// resource (pinned occupant first, then non-decreasing deadline) so
	// feasibility is an allocation-free cumulative scan; future counts the
	// not-yet-released (predicted) entries per resource, which need the
	// full EDF simulation instead.
	p        *sched.Problem
	order    []int // free job indices in branching order
	entries  [][]sched.Entry
	future   []int
	mapping  []int
	bestMap  []int
	bestE    float64
	found    bool
	nodes    int
	limit    int
	minE     []float64 // per free-job minimum EPM (lower-bound term)
	sufMinE  []float64 // suffix sums of minE over the branching order
	resOrder [][]int   // per free job, resources sorted by EPM
	// cand and candE cache the Entry and energy of assigning the job at
	// each branching depth to resOrder[depth][k]; they are invariant
	// during the search.
	cand  [][]sched.Entry
	candE [][]float64
}

// insert places e into resource res's sorted entry list and returns its
// position for the matching remove.
func (o *Optimal) insert(res int, e sched.Entry) int {
	s := o.entries[res]
	pos := 0
	if !e.PinnedFirst {
		lo := 0
		if len(s) > 0 && s[0].PinnedFirst {
			lo = 1
		}
		pos = lo + sort.Search(len(s)-lo, func(i int) bool {
			return s[lo+i].Deadline > e.Deadline
		})
	}
	s = append(s, sched.Entry{})
	copy(s[pos+1:], s[pos:])
	s[pos] = e
	o.entries[res] = s
	if e.ReadyAt > o.p.Time+sched.Eps {
		o.future[res]++
	}
	return pos
}

// remove undoes insert.
func (o *Optimal) remove(res, pos int) {
	s := o.entries[res]
	if s[pos].ReadyAt > o.p.Time+sched.Eps {
		o.future[res]--
	}
	copy(s[pos:], s[pos+1:])
	o.entries[res] = s[:len(s)-1]
}

// feasible checks resource res's current entry list.
func (o *Optimal) feasible(res int) bool {
	if o.future[res] == 0 {
		return sched.FeasibleSorted(o.p.Time, o.entries[res])
	}
	return sched.ResourceFeasible(o.p.Platform.Resource(res).Preemptable(), o.p.Time, o.entries[res])
}

var _ core.Solver = (*Optimal)(nil)
var _ telemetry.Instrumentable = (*Optimal)(nil)

// AttachMetrics registers the solver's instruments on reg: counters
// exact.solves, exact.truncated, and exact.infeasible, plus the histogram
// exact.nodes (branch-and-bound nodes per solve).
func (o *Optimal) AttachMetrics(reg *telemetry.Registry) {
	o.mSolves = reg.Counter("exact.solves")
	o.mTruncated = reg.Counter("exact.truncated")
	o.mInfeasible = reg.Counter("exact.infeasible")
	o.mNodes = reg.Histogram("exact.nodes", telemetry.NodeBuckets)
}

// Solve returns the minimum-energy feasible mapping of p, or an infeasible
// decision when none exists.
func (o *Optimal) Solve(p *sched.Problem) core.Decision {
	o.p = p
	o.limit = o.NodeLimit
	if o.limit <= 0 {
		o.limit = DefaultNodeLimit
	}
	o.nodes = 0
	o.found = false
	o.bestE = math.Inf(1)

	n := p.Platform.Len()
	o.mapping = make([]int, len(p.Jobs))
	if o.entries == nil || len(o.entries) != n {
		o.entries = make([][]sched.Entry, n)
		o.future = make([]int, n)
	}
	for i := range o.entries {
		o.entries[i] = o.entries[i][:0]
		o.future[i] = 0
	}

	// Pre-assign pinned jobs and collect free ones.
	free := make([]int, 0, len(p.Jobs))
	pinnedEnergy := 0.0
	for idx, j := range p.Jobs {
		if j.Fixed || j.Pinned(p.Platform) {
			o.mapping[idx] = j.Resource
			o.insert(j.Resource, o.entry(idx, j.Resource))
			pinnedEnergy += j.EPM(j.Resource, p.Policy)
			continue
		}
		o.mapping[idx] = sched.Unmapped
		free = append(free, idx)
	}
	// Pinned-only feasibility: if the immovable work already misses
	// deadlines nothing can fix it (cannot happen after a sound admission
	// history, but guard anyway).
	for r := 0; r < n; r++ {
		if len(o.entries[r]) > 0 && !o.feasible(r) {
			o.LastStats = Stats{}
			o.mSolves.Inc()
			o.mInfeasible.Inc()
			return core.Decision{Mapping: o.mapping, Feasible: false}
		}
	}

	// Branching order: hardest jobs first — fewest executable resources,
	// then least slack. Resource order per job: cheapest energy first so
	// the first dive is a good incumbent.
	o.prepareOrders(free)

	// Seed the incumbent with the heuristic so exact is never worse and
	// pruning starts strong.
	h := (&core.Heuristic{}).Solve(p)
	if h.Feasible {
		o.found = true
		o.bestE = h.Energy
		o.bestMap = append([]int(nil), h.Mapping...)
	}

	o.dfs(0, pinnedEnergy)

	o.LastStats = Stats{Nodes: o.nodes, Truncated: o.nodes >= o.limit}
	o.mSolves.Inc()
	o.mNodes.Observe(float64(o.nodes))
	if o.LastStats.Truncated {
		o.mTruncated.Inc()
	}
	if !o.found {
		o.mInfeasible.Inc()
		return core.Decision{Mapping: o.mapping, Feasible: false}
	}
	return core.Decision{Mapping: o.bestMap, Feasible: true, Energy: o.bestE}
}

func (o *Optimal) entry(jobIdx, r int) sched.Entry {
	j := o.p.Jobs[jobIdx]
	return sched.Entry{
		ReadyAt:     math.Max(j.Arrival, o.p.Time),
		Deadline:    j.AbsDeadline,
		Rem:         j.CPM(r, o.p.Policy),
		PinnedFirst: j.Pinned(o.p.Platform) && j.Resource == r,
	}
}

func (o *Optimal) prepareOrders(free []int) {
	p := o.p
	n := p.Platform.Len()
	o.order = append(o.order[:0], free...)
	sort.SliceStable(o.order, func(a, b int) bool {
		ja, jb := p.Jobs[o.order[a]], p.Jobs[o.order[b]]
		ea, eb := ja.Type.NumExecutable(), jb.Type.NumExecutable()
		if ea != eb {
			return ea < eb
		}
		return ja.TimeLeft(p.Time) < jb.TimeLeft(p.Time)
	})
	o.minE = make([]float64, len(o.order))
	o.resOrder = make([][]int, len(o.order))
	for k, jobIdx := range o.order {
		j := p.Jobs[jobIdx]
		var rs []int
		for r := 0; r < n; r++ {
			cpm := j.CPM(r, p.Policy)
			if cpm == task.NotExecutable {
				continue
			}
			// Constraint (2): resources where the job cannot meet its own
			// deadline are never part of a feasible mapping.
			if cpm > j.AbsDeadline-math.Max(j.Arrival, p.Time)+sched.Eps {
				continue
			}
			rs = append(rs, r)
		}
		sort.Slice(rs, func(a, b int) bool {
			return j.EPM(rs[a], p.Policy) < j.EPM(rs[b], p.Policy)
		})
		o.resOrder[k] = rs
		if len(rs) == 0 {
			o.minE[k] = math.Inf(1)
		} else {
			o.minE[k] = j.EPM(rs[0], p.Policy)
		}
	}
	o.cand = make([][]sched.Entry, len(o.order))
	o.candE = make([][]float64, len(o.order))
	for k, jobIdx := range o.order {
		j := p.Jobs[jobIdx]
		o.cand[k] = make([]sched.Entry, len(o.resOrder[k]))
		o.candE[k] = make([]float64, len(o.resOrder[k]))
		for ri, r := range o.resOrder[k] {
			o.cand[k][ri] = o.entry(jobIdx, r)
			o.candE[k][ri] = j.EPM(r, p.Policy)
		}
	}
	o.sufMinE = make([]float64, len(o.order)+1)
	for k := len(o.order) - 1; k >= 0; k-- {
		o.sufMinE[k] = o.sufMinE[k+1] + o.minE[k]
	}
}

func (o *Optimal) dfs(depth int, energy float64) {
	if o.nodes >= o.limit {
		return
	}
	o.nodes++
	// Bound: even the cheapest completion cannot beat the incumbent.
	if energy+o.sufMinE[depth] >= o.bestE-sched.Eps {
		return
	}
	if depth == len(o.order) {
		o.found = true
		o.bestE = energy
		o.bestMap = append(o.bestMap[:0], o.mapping...)
		return
	}
	jobIdx := o.order[depth]
	for ri, r := range o.resOrder[depth] {
		pos := o.insert(r, o.cand[depth][ri])
		if o.feasible(r) {
			o.mapping[jobIdx] = r
			o.dfs(depth+1, energy+o.candE[depth][ri])
			o.mapping[jobIdx] = sched.Unmapped
		}
		o.remove(r, pos)
	}
}
