package exact

import (
	"testing"
	"time"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/task"
)

func TestOptimalBudgetAware(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	h := &core.Heuristic{}
	var o core.BudgetAware = &Optimal{}

	// A one-node budget forces immediate truncation, but the anytime
	// incumbent (the heuristic seed) must survive the cut.
	o.ApplyBudget(core.Budget{Nodes: 1})
	for trial := 0; trial < 30; trial++ {
		p := randomSmallProblem(r, plat, set)
		hd := h.Solve(p)
		od := o.Solve(p)
		if hd.Feasible && (!od.Feasible || od.Energy > hd.Energy+1e-9) {
			t.Fatalf("trial %d: budgeted result worse than seed", trial)
		}
		use := o.BudgetUsed()
		if use.Nodes > 1 {
			t.Fatalf("trial %d: expanded %d nodes under a 1-node budget", trial, use.Nodes)
		}
		if use.Nodes == 1 && !use.Exhausted {
			t.Fatalf("trial %d: budget consumed but not reported exhausted", trial)
		}
	}

	// Clearing the budget restores the default limit: a small problem
	// should then complete without truncation.
	o.ApplyBudget(core.Budget{})
	p := randomSmallProblem(r, plat, set)
	o.Solve(p)
	if o.BudgetUsed().Exhausted {
		t.Fatal("unbudgeted small solve reported exhaustion")
	}
}

func TestOptimalWallBudget(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(47)
	h := &core.Heuristic{}
	o := &Optimal{}
	// A generous wall budget on tiny problems must not perturb results.
	o.ApplyBudget(core.Budget{Wall: time.Minute})
	for trial := 0; trial < 10; trial++ {
		p := randomSmallProblem(r, plat, set)
		hd := h.Solve(p)
		od := o.Solve(p)
		if hd.Feasible && (!od.Feasible || od.Energy > hd.Energy+1e-9) {
			t.Fatalf("trial %d: wall-budgeted result worse than seed", trial)
		}
	}
}
