package sched

import (
	"math"
	"testing"
	"testing/quick"

	"predrm/internal/rng"
)

func segTotal(segs []Segment, idx int) float64 {
	var tot float64
	for _, s := range segs {
		if s.Index == idx {
			tot += s.End - s.Start
		}
	}
	return tot
}

func TestSimulateEDFEmpty(t *testing.T) {
	segs, ok := SimulateEDF(true, 0, nil)
	if !ok || segs != nil {
		t.Fatal("empty entry set must be trivially feasible")
	}
}

func TestSimulateEDFSingle(t *testing.T) {
	segs, ok := SimulateEDF(true, 10, []Entry{{ReadyAt: 10, Deadline: 15, Rem: 5}})
	if !ok {
		t.Fatal("exact-fit entry must be feasible")
	}
	if len(segs) != 1 || segs[0].Start != 10 || segs[0].End != 15 {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestSimulateEDFDeadlineOrder(t *testing.T) {
	// Two ready entries: EDF must run the earlier deadline first.
	entries := []Entry{
		{ReadyAt: 0, Deadline: 20, Rem: 5},
		{ReadyAt: 0, Deadline: 10, Rem: 5},
	}
	segs, ok := SimulateEDF(true, 0, entries)
	if !ok {
		t.Fatal("feasible set rejected")
	}
	if segs[0].Index != 1 || segs[1].Index != 0 {
		t.Fatalf("EDF order wrong: %+v", segs)
	}
}

func TestSimulateEDFMissesDeadline(t *testing.T) {
	entries := []Entry{
		{ReadyAt: 0, Deadline: 4, Rem: 3},
		{ReadyAt: 0, Deadline: 5, Rem: 3},
	}
	if _, ok := SimulateEDF(true, 0, entries); ok {
		t.Fatal("overloaded set accepted")
	}
}

func TestSimulateEDFPreemptionByRelease(t *testing.T) {
	// A long low-priority entry is running; a tighter one releases at 2 and
	// must preempt on a preemptable resource.
	entries := []Entry{
		{ReadyAt: 0, Deadline: 20, Rem: 10},
		{ReadyAt: 2, Deadline: 6, Rem: 3},
	}
	segs, ok := SimulateEDF(true, 0, entries)
	if !ok {
		t.Fatalf("preemptive case must be feasible, segs=%+v", segs)
	}
	// Expect: [0: 0-2], [1: 2-5], [0: 5-13].
	want := []Segment{{0, 0, 2}, {1, 2, 5}, {0, 5, 13}}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments %+v, want %+v", len(segs), segs, want)
	}
	for i := range want {
		if segs[i].Index != want[i].Index ||
			math.Abs(segs[i].Start-want[i].Start) > Eps ||
			math.Abs(segs[i].End-want[i].End) > Eps {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
}

func TestSimulateEDFNonPreemptiveBlocks(t *testing.T) {
	// Same scenario on a non-preemptable resource: the running entry blocks
	// the tight release, which then misses its deadline.
	entries := []Entry{
		{ReadyAt: 0, Deadline: 20, Rem: 10},
		{ReadyAt: 2, Deadline: 6, Rem: 3},
	}
	segs, ok := SimulateEDF(false, 0, entries)
	if ok {
		t.Fatalf("non-preemptive blocking case must be infeasible, segs=%+v", segs)
	}
	// Entry 0 must have run to completion in one piece.
	if segTotal(segs, 0) != 10 || segs[0].Index != 0 || segs[0].End != 10 {
		t.Fatalf("non-preemptive run-to-completion violated: %+v", segs)
	}
}

func TestSimulateEDFNonPreemptiveFeasibleWaiting(t *testing.T) {
	// Non-preemptive but with enough slack: release waits and still makes it.
	entries := []Entry{
		{ReadyAt: 0, Deadline: 20, Rem: 4},
		{ReadyAt: 2, Deadline: 10, Rem: 3},
	}
	segs, ok := SimulateEDF(false, 0, entries)
	if !ok {
		t.Fatalf("waiting case must be feasible: %+v", segs)
	}
	if segs[1].Index != 1 || segs[1].Start != 4 || segs[1].End != 7 {
		t.Fatalf("second entry misplaced: %+v", segs)
	}
}

func TestSimulateEDFPinnedFirst(t *testing.T) {
	// On a GPU the mid-execution occupant runs before a tighter-deadline
	// queued entry.
	entries := []Entry{
		{ReadyAt: 0, Deadline: 30, Rem: 5, PinnedFirst: true},
		{ReadyAt: 0, Deadline: 10, Rem: 4},
	}
	segs, ok := SimulateEDF(false, 0, entries)
	if !ok {
		t.Fatalf("pinned case must be feasible: %+v", segs)
	}
	if segs[0].Index != 0 || segs[0].End != 5 || segs[1].Index != 1 || segs[1].End != 9 {
		t.Fatalf("pinned-first order violated: %+v", segs)
	}
}

func TestSimulateEDFIdleGap(t *testing.T) {
	// Only a future release: the schedule idles until it is ready.
	entries := []Entry{{ReadyAt: 5, Deadline: 9, Rem: 3}}
	segs, ok := SimulateEDF(true, 0, entries)
	if !ok || len(segs) != 1 || segs[0].Start != 5 || segs[0].End != 8 {
		t.Fatalf("idle gap handled wrong: %+v ok=%v", segs, ok)
	}
}

func TestSimulateEDFMergesContiguousSegments(t *testing.T) {
	// A release that does NOT preempt (later deadline) must not split the
	// running entry's segment.
	entries := []Entry{
		{ReadyAt: 0, Deadline: 10, Rem: 6},
		{ReadyAt: 2, Deadline: 30, Rem: 3},
	}
	segs, ok := SimulateEDF(true, 0, entries)
	if !ok {
		t.Fatal("feasible set rejected")
	}
	if len(segs) != 2 || segs[0].End != 6 {
		t.Fatalf("contiguous segments not merged: %+v", segs)
	}
}

func TestResourceFeasibleMatchesSimulation(t *testing.T) {
	// Property: the fast ResourceFeasible decision equals full simulation.
	r := rng.New(99)
	f := func(seedRaw uint64) bool {
		rr := rng.New(seedRaw ^ r.Uint64())
		n := 1 + rr.Intn(6)
		entries := make([]Entry, n)
		t0 := rr.Uniform(0, 10)
		for i := range entries {
			ready := t0
			if rr.Float64() < 0.3 {
				ready = t0 + rr.Uniform(0, 5)
			}
			rem := rr.Uniform(0.5, 5)
			entries[i] = Entry{
				ReadyAt:  ready,
				Deadline: ready + rem*rr.Uniform(0.8, 4),
				Rem:      rem,
			}
		}
		for _, preempt := range []bool{true, false} {
			_, simOK := SimulateEDF(preempt, t0, entries)
			if got := ResourceFeasible(preempt, t0, entries); got != simOK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestResourceFeasibleNecessaryCut(t *testing.T) {
	// A single entry that cannot fit its own window must be rejected even
	// without simulation.
	if ResourceFeasible(true, 0, []Entry{{ReadyAt: 4, Deadline: 6, Rem: 3}}) {
		t.Fatal("entry with Rem > window accepted")
	}
}

func TestSimulateEDFWorkConservation(t *testing.T) {
	// Property: when feasible, every entry receives exactly Rem time and
	// segments never overlap.
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(5)
		entries := make([]Entry, n)
		for i := range entries {
			rem := rr.Uniform(0.5, 3)
			ready := rr.Uniform(0, 4)
			entries[i] = Entry{ReadyAt: ready, Deadline: ready + rem + rr.Uniform(5, 20), Rem: rem}
		}
		for _, preempt := range []bool{true, false} {
			segs, ok := SimulateEDF(preempt, 0, entries)
			if !ok {
				return false // generous deadlines: must be feasible
			}
			for i, e := range entries {
				if math.Abs(segTotal(segs, i)-e.Rem) > 1e-6 {
					return false
				}
			}
			for i := 1; i < len(segs); i++ {
				if segs[i].Start < segs[i-1].End-Eps {
					return false
				}
			}
			// No segment may start before its entry is ready.
			for _, s := range segs {
				if s.Start < entries[s.Index].ReadyAt-Eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
