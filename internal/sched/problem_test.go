package sched

import (
	"math"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/task"
)

// motivProblem builds the paper's motivational scenario (Sec 3, Table 1)
// at time 0: τ1 arrived at 0 (deadline 8), and — when withPred is set — a
// predicted τ2 at time 1 (deadline 5).
func motivProblem(withPred bool) *Problem {
	ts := task.Motivational()
	j1 := NewJob(0, ts.Type(0), 0, 8)
	p := &Problem{
		Platform: platform.Motivational(),
		Time:     0,
		Jobs:     []*Job{j1},
	}
	if withPred {
		jp := NewJob(1, ts.Type(1), 1, 5)
		jp.Predicted = true
		p.Jobs = append(p.Jobs, jp)
	}
	return p
}

func TestWindow(t *testing.T) {
	p := motivProblem(true)
	// K = max t_left: τ1 deadline 8, τp deadline 1+5=6.
	if got := p.Window(); got != 8 {
		t.Fatalf("Window = %v, want 8", got)
	}
}

func TestPredIndexAndWithoutPred(t *testing.T) {
	p := motivProblem(true)
	if p.PredIndex() != 1 {
		t.Fatalf("PredIndex = %d", p.PredIndex())
	}
	q := p.WithoutPred()
	if len(q.Jobs) != 1 || q.PredIndex() != -1 {
		t.Fatalf("WithoutPred left %d jobs, pred at %d", len(q.Jobs), q.PredIndex())
	}
	// Original untouched.
	if len(p.Jobs) != 2 {
		t.Fatal("WithoutPred mutated the original")
	}
}

func TestValidate(t *testing.T) {
	p := motivProblem(true)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	// Future real job.
	bad := motivProblem(false)
	bad.Jobs[0].Arrival = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted real job arriving after activation")
	}
	// Two predicted jobs are allowed (multi-step lookahead extension).
	multi := motivProblem(true)
	extra := multi.Jobs[1].Clone()
	extra.Arrival += 1
	multi.Jobs = append(multi.Jobs, extra)
	if err := multi.Validate(); err != nil {
		t.Fatalf("rejected two predicted jobs: %v", err)
	}
	if multi.NumPredicted() != 2 {
		t.Fatalf("NumPredicted = %d", multi.NumPredicted())
	}
	// Without removes one job.
	if got := multi.Without(2); len(got.Jobs) != 2 || got.NumPredicted() != 1 {
		t.Fatalf("Without(2) left %d jobs, %d predicted", len(got.Jobs), got.NumPredicted())
	}
	// Finished job.
	bad3 := motivProblem(false)
	bad3.Jobs[0].Frac = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("accepted finished job")
	}
	// No platform.
	if err := (&Problem{}).Validate(); err == nil {
		t.Fatal("accepted problem without platform")
	}
}

// TestMotivationalScenarioA reproduces the paper's scenario (a): τ1 on the
// GPU, then τ2 arriving at time 1 cannot be saved.
func TestMotivationalScenarioA(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()

	// At time 0 the no-prediction RM puts τ1 on the GPU (min energy).
	j1 := NewJob(0, ts.Type(0), 0, 8)
	p0 := &Problem{Platform: plat, Time: 0, Jobs: []*Job{j1}}
	if !p0.FeasibleMapping([]int{2}) {
		t.Fatal("τ1 alone on GPU must be feasible")
	}

	// Time 1: τ1 started on the GPU (1ms of 5 done), τ2 arrives with
	// deadline 5. τ1 is pinned; no mapping of τ2 can make it.
	j1.Resource = 2
	j1.Started = true
	j1.ExecRes = j1.Resource
	j1.Frac = 1 - 1.0/5
	j2 := NewJob(1, ts.Type(1), 1, 5)
	p1 := &Problem{Platform: plat, Time: 1, Jobs: []*Job{j1, j2}}
	for r := 0; r < plat.Len(); r++ {
		if p1.FeasibleMapping([]int{2, r}) {
			t.Fatalf("scenario (a): τ2 on %s should be infeasible", plat.Resource(r).Name)
		}
	}
	// And τ1 cannot move (pinned).
	if p1.FeasibleMapping([]int{0, 2}) {
		t.Fatal("pinned τ1 was allowed to migrate")
	}
}

// TestMotivationalScenarioB reproduces scenario (b): with the prediction,
// τ1 goes to CPU1 and the GPU is reserved for τ2; both meet deadlines.
func TestMotivationalScenarioB(t *testing.T) {
	p := motivProblem(true)
	// τ1 on CPU1 (res 0), predicted τ2 on GPU (res 2).
	if !p.FeasibleMapping([]int{0, 2}) {
		t.Fatal("scenario (b) mapping must be feasible")
	}
	// Energy: τ1 on CPU1 = 7.3, τ2 on GPU = 1.5 → 8.8 (the paper's value).
	if got := p.Energy([]int{0, 2}); math.Abs(got-8.8) > 1e-12 {
		t.Fatalf("scenario (b) energy = %v, want 8.8", got)
	}
	// τ1 on the GPU with τ2 predicted there too is infeasible: the GPU is
	// non-preemptable, so τ1 (started at 0, 5ms) blocks τ2 only until 5,
	// then τ2 runs 5..8 but its deadline is 6.
	if p.FeasibleMapping([]int{2, 2}) {
		t.Fatal("GPU double-booking should be infeasible")
	}
}

// TestMotivationalLateArrival reproduces the paper's "inaccurate
// prediction" discussion: if τ2 actually arrives at 3, the no-prediction
// RM serialises both on the GPU for 3.5 J total.
func TestMotivationalLateArrival(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()
	// τ1 started on GPU at 0; at time 3, τ2 (deadline 5) arrives.
	j1 := NewJob(0, ts.Type(0), 0, 8)
	j1.Resource = 2
	j1.Started = true
	j1.ExecRes = j1.Resource
	j1.Frac = 1 - 3.0/5
	j2 := NewJob(1, ts.Type(1), 3, 5)
	p := &Problem{Platform: plat, Time: 3, Jobs: []*Job{j1, j2}}
	if !p.FeasibleMapping([]int{2, 2}) {
		t.Fatal("GPU serialisation must be feasible: τ1 ends at 5, τ2 runs 5..8 ≤ deadline 8")
	}
	// Energy 2 + 1.5 = 3.5 J as in the paper... except τ1 has consumed 3/5
	// of its energy already; the objective counts remaining energy. Verify
	// the remaining-energy objective instead.
	want := 2*(1-3.0/5) + 1.5
	if got := p.Energy([]int{2, 2}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestMappingValid(t *testing.T) {
	p := motivProblem(false)
	if p.MappingValid([]int{-1}) {
		t.Fatal("accepted unmapped job")
	}
	if p.MappingValid([]int{9}) {
		t.Fatal("accepted out-of-range resource")
	}
	if p.MappingValid([]int{0, 1}) {
		t.Fatal("accepted wrong-length mapping")
	}
	if !p.MappingValid([]int{1}) {
		t.Fatal("rejected valid mapping")
	}
}

func TestEnergyIncludesMigration(t *testing.T) {
	ts := task.Motivational()
	plat := platform.Motivational()
	j := NewJob(0, ts.Type(0), 0, 100)
	j.Type = &task.Type{ID: 0,
		WCET:    []float64{8, 12, 5},
		Energy:  []float64{7.3, 8.4, 2},
		MigTime: 1, MigEnergy: 0.5,
	}
	j.Resource = 0
	j.Started = true
	j.ExecRes = j.Resource
	j.Frac = 0.5
	p := &Problem{Platform: plat, Time: 4, Jobs: []*Job{j}}
	// Migrating CPU1→CPU2: 8.4*0.5 + 0.5.
	if got := p.Energy([]int{1}); math.Abs(got-(8.4*0.5+0.5)) > 1e-12 {
		t.Fatalf("Energy = %v", got)
	}
	// Staying: 7.3*0.5.
	if got := p.Energy([]int{0}); math.Abs(got-7.3*0.5) > 1e-12 {
		t.Fatalf("Energy = %v", got)
	}
}

func TestEnergyNotExecutable(t *testing.T) {
	ty := &task.Type{ID: 0,
		WCET:   []float64{5, task.NotExecutable, task.NotExecutable},
		Energy: []float64{2, task.NotExecutable, task.NotExecutable}}
	j := NewJob(0, ty, 0, 10)
	p := &Problem{Platform: platform.Motivational(), Time: 0, Jobs: []*Job{j}}
	if p.Energy([]int{1}) != task.NotExecutable {
		t.Fatal("Energy on non-executable mapping should be NotExecutable")
	}
}

func TestScheduleReconstruction(t *testing.T) {
	p := motivProblem(true)
	segs, ok := p.Schedule([]int{0, 2})
	if !ok {
		t.Fatal("feasible mapping reported infeasible by Schedule")
	}
	// τ1 occupies CPU1 0..8; predicted τ2 occupies GPU 1..4.
	cpu1 := segs[0]
	if len(cpu1) != 1 || cpu1[0].Index != 0 || cpu1[0].Start != 0 || cpu1[0].End != 8 {
		t.Fatalf("CPU1 schedule = %+v", cpu1)
	}
	gpu := segs[2]
	if len(gpu) != 1 || gpu[0].Index != 1 || gpu[0].Start != 1 || gpu[0].End != 4 {
		t.Fatalf("GPU schedule = %+v", gpu)
	}
	if _, ok := p.Schedule([]int{-1, 2}); ok {
		t.Fatal("Schedule accepted invalid mapping")
	}
	// Infeasible but valid mapping: feasible=false, schedule still built.
	segs, ok = p.Schedule([]int{2, 2})
	if ok {
		t.Fatal("double-booked GPU reported feasible")
	}
	if len(segs[2]) == 0 {
		t.Fatal("no schedule reconstructed for infeasible mapping")
	}
}

// TestFeasibleMappingRandomisedConsistency cross-checks FeasibleMapping
// against independently simulating each resource.
func TestFeasibleMappingRandomisedConsistency(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(8)
		jobs := make([]*Job, n)
		mapping := make([]int, n)
		now := r.Uniform(0, 100)
		for i := range jobs {
			ty := set.Type(r.Intn(set.Len()))
			arr := now - r.Uniform(0, 20)
			j := NewJob(i, ty, arr, r.Uniform(10, 200))
			if r.Float64() < 0.5 {
				j.Resource = r.Intn(plat.Len())
				if r.Float64() < 0.5 {
					j.Started = true
					j.ExecRes = j.Resource
					j.Frac = r.Uniform(0.1, 1)
				}
			}
			if j.AbsDeadline <= now {
				j.AbsDeadline = now + r.Uniform(1, 50)
			}
			jobs[i] = j
			if j.Pinned(plat) {
				mapping[i] = j.Resource
			} else {
				mapping[i] = r.Intn(plat.Len())
			}
		}
		p := &Problem{Platform: plat, Time: now, Jobs: jobs}
		got := p.FeasibleMapping(mapping)
		_, want := p.Schedule(mapping)
		if got != want {
			t.Fatalf("trial %d: FeasibleMapping=%v but Schedule says %v", trial, got, want)
		}
	}
}
