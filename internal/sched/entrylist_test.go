package sched

import (
	"testing"

	"predrm/internal/rng"
)

// randomEntry draws an entry around activation time t: mostly ready now,
// sometimes a future release, sometimes pinned.
func randomEntry(r *rng.Rand, t float64) Entry {
	e := Entry{
		ReadyAt:  t,
		Deadline: t + r.Uniform(1, 100),
		Rem:      r.Uniform(0.2, 8),
	}
	if r.Float64() < 0.25 {
		e.ReadyAt = t + r.Uniform(0.1, 6)
	}
	if r.Float64() < 0.15 {
		e.PinnedFirst = true
	}
	return e
}

// TestEntryListInvariantProperty fuzzes arbitrary (non-LIFO) interleavings
// of Insert and Remove and asserts the FeasibleSorted precondition —
// pinned prefix group, non-decreasing deadlines per group — and the
// future-release count after every operation. Equal-deadline entries are
// also exercised to pin down the tie handling.
func TestEntryListInvariantProperty(t *testing.T) {
	r := rng.New(1234)
	now := 25.0
	var l EntryList
	for step := 0; step < 20000; step++ {
		switch {
		case l.Len() > 0 && r.Float64() < 0.45:
			l.Remove(now, r.Intn(l.Len()))
		default:
			e := randomEntry(r, now)
			if r.Float64() < 0.2 {
				e.Deadline = now + float64(1+r.Intn(5)) // force deadline ties
			}
			pos := l.Insert(now, e)
			if got := l.Entries()[pos]; got != e {
				t.Fatalf("step %d: entry at returned position %d is %+v, want %+v", step, pos, got, e)
			}
		}
		if err := l.Invariant(now); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestEntryListFeasibleMatchesResourceFeasible checks that the fast-path
// split of EntryList.Feasible (sorted cumulative scan vs full EDF
// simulation) always agrees with the order-insensitive ResourceFeasible
// reference on random populations, for both resource kinds.
func TestEntryListFeasibleMatchesResourceFeasible(t *testing.T) {
	r := rng.New(4321)
	now := 7.0
	for trial := 0; trial < 4000; trial++ {
		preemptable := r.Float64() < 0.5
		var l EntryList
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			e := randomEntry(r, now)
			if preemptable {
				e.PinnedFirst = false
			}
			l.Insert(now, e)
		}
		var s EDFScratch
		got := l.Feasible(preemptable, now, &s)
		want := ResourceFeasible(preemptable, now, append([]Entry(nil), l.Entries()...))
		if got != want {
			t.Fatalf("trial %d (preemptable=%v): Feasible=%v, ResourceFeasible=%v on %+v",
				trial, preemptable, got, want, l.Entries())
		}
	}
}

// TestResourceFeasibleScratchReuse verifies a reused scratch yields the
// same answers as fresh per-call buffers across differently sized checks.
func TestResourceFeasibleScratchReuse(t *testing.T) {
	r := rng.New(99)
	now := 3.0
	var s EDFScratch
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(10)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = randomEntry(r, now)
		}
		preemptable := r.Float64() < 0.5
		if got, want := ResourceFeasibleScratch(preemptable, now, entries, &s),
			ResourceFeasible(preemptable, now, entries); got != want {
			t.Fatalf("trial %d: scratch %v, fresh %v", trial, got, want)
		}
	}
}

// benchEntries builds a representative per-resource entry load: size
// entries ready at t with staggered deadlines, optionally one future
// release (the predicted job) and one pinned occupant.
func benchEntries(size int, future, pinned bool, t float64) []Entry {
	entries := make([]Entry, 0, size)
	for i := 0; i < size; i++ {
		entries = append(entries, Entry{
			ReadyAt:  t,
			Deadline: t + 12 + 7*float64(i%5) + 0.3*float64(i),
			Rem:      2.5,
		})
	}
	if pinned {
		entries[0].PinnedFirst = true
	}
	if future {
		entries[len(entries)-1].ReadyAt = t + 1.5
	}
	return entries
}

func benchmarkResourceFeasible(b *testing.B, preemptable, future bool) {
	t := 5.0
	entries := benchEntries(8, future, !preemptable, t)
	var s EDFScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResourceFeasibleScratch(preemptable, t, entries, &s)
	}
}

// BenchmarkResourceFeasible measures the feasibility probe on the four hot
// configurations: resource kind × whether a future (predicted) release
// forces the full EDF simulation instead of the cumulative fast path.
func BenchmarkResourceFeasible(b *testing.B) {
	b.Run("preemptable-allready", func(b *testing.B) { benchmarkResourceFeasible(b, true, false) })
	b.Run("preemptable-future", func(b *testing.B) { benchmarkResourceFeasible(b, true, true) })
	b.Run("nonpreemptable-allready", func(b *testing.B) { benchmarkResourceFeasible(b, false, false) })
	b.Run("nonpreemptable-future", func(b *testing.B) { benchmarkResourceFeasible(b, false, true) })
}

func benchmarkSimulateEDF(b *testing.B, preemptable, future bool) {
	t := 5.0
	entries := benchEntries(8, future, !preemptable, t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateEDF(preemptable, t, entries)
	}
}

// BenchmarkSimulateEDF measures full schedule construction on the same
// four configurations, for comparison against the feasibility-only probe.
func BenchmarkSimulateEDF(b *testing.B) {
	b.Run("preemptable-allready", func(b *testing.B) { benchmarkSimulateEDF(b, true, false) })
	b.Run("preemptable-future", func(b *testing.B) { benchmarkSimulateEDF(b, true, true) })
	b.Run("nonpreemptable-allready", func(b *testing.B) { benchmarkSimulateEDF(b, false, false) })
	b.Run("nonpreemptable-future", func(b *testing.B) { benchmarkSimulateEDF(b, false, true) })
}

// BenchmarkFeasibleSorted measures the allocation-free cumulative scan the
// sorted entry lists unlock — the innermost check of both solvers.
func BenchmarkFeasibleSorted(b *testing.B) {
	t := 5.0
	entries := benchEntries(8, false, false, t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FeasibleSorted(t, entries)
	}
}
