package sched

import (
	"fmt"

	"predrm/internal/platform"
	"predrm/internal/task"
)

// Problem is one resource-management decision instance: the state the RM
// sees when it is activated at Time (the paper's set S̄ plus the platform).
//
// Solvers treat a Problem (jobs, platform, policy) as strictly read-only,
// so one Problem may be shared by the concurrent workers of a parallel
// solver without cloning; a snapshot of per-resource trial state is taken
// per worker via EntryList.CopyFrom instead.
type Problem struct {
	// Platform the jobs are mapped onto.
	Platform *platform.Platform
	// Time is the activation time t.
	Time float64
	// Jobs is S̄: all admitted unfinished jobs, the arriving job, and — if
	// prediction is in use — one job with Predicted set per forecast
	// horizon step (the paper uses one; multi-step lookahead is this
	// library's extension). Real jobs have Arrival ≤ Time.
	Jobs []*Job
	// Policy selects migration charging.
	Policy MigrationPolicy
}

// PredIndex returns the index of the first predicted job in Jobs, or -1.
func (p *Problem) PredIndex() int {
	for i, j := range p.Jobs {
		if j.Predicted {
			return i
		}
	}
	return -1
}

// NumPredicted counts the predicted jobs.
func (p *Problem) NumPredicted() int {
	n := 0
	for _, j := range p.Jobs {
		if j.Predicted {
			n++
		}
	}
	return n
}

// Without returns a copy of the problem with Jobs[idx] removed. Jobs are
// shared, not cloned.
func (p *Problem) Without(idx int) *Problem {
	q := &Problem{Platform: p.Platform, Time: p.Time, Policy: p.Policy}
	q.Jobs = make([]*Job, 0, len(p.Jobs)-1)
	for i, j := range p.Jobs {
		if i != idx {
			q.Jobs = append(q.Jobs, j)
		}
	}
	return q
}

// WithoutPred returns a copy of the problem with the predicted job removed
// (the Sec 4.1 fallback). Jobs are shared, not cloned.
func (p *Problem) WithoutPred() *Problem {
	q := &Problem{Platform: p.Platform, Time: p.Time, Policy: p.Policy}
	q.Jobs = make([]*Job, 0, len(p.Jobs))
	for _, j := range p.Jobs {
		if !j.Predicted {
			q.Jobs = append(q.Jobs, j)
		}
	}
	return q
}

// Window returns K̄: the span from Time to the latest absolute deadline in
// S̄ (Sec 4.1).
func (p *Problem) Window() float64 {
	k := 0.0
	for _, j := range p.Jobs {
		if left := j.TimeLeft(p.Time); left > k {
			k = left
		}
	}
	return k
}

// Validate performs structural checks useful in tests and at API
// boundaries.
func (p *Problem) Validate() error {
	if p.Platform == nil {
		return fmt.Errorf("sched: problem has no platform")
	}
	for i, j := range p.Jobs {
		if j == nil {
			return fmt.Errorf("sched: nil job at %d", i)
		}
		if !j.Predicted && !j.Fixed && j.Arrival > p.Time+Eps {
			return fmt.Errorf("sched: real job %d arrives at %v after activation %v", j.ID, j.Arrival, p.Time)
		}
		if j.Fixed && j.Resource == Unmapped {
			return fmt.Errorf("sched: fixed job %d has no static resource", j.ID)
		}
		if j.Frac <= 0 {
			return fmt.Errorf("sched: job %d already finished (frac %v)", j.ID, j.Frac)
		}
		if j.Resource != Unmapped && (j.Resource < 0 || j.Resource >= p.Platform.Len()) {
			return fmt.Errorf("sched: job %d on unknown resource %d", j.ID, j.Resource)
		}
	}
	return nil
}

// entry builds the feasibility Entry for job j assigned to resource r.
func (p *Problem) entry(j *Job, r int) Entry {
	return Entry{
		ReadyAt:     maxf(j.Arrival, p.Time),
		Deadline:    j.AbsDeadline,
		Rem:         j.CPM(r, p.Policy),
		PinnedFirst: j.Pinned(p.Platform) && j.Resource == r,
	}
}

// MappingValid reports whether mapping respects the hard structural
// constraints independent of timing: every job mapped to an executable
// resource and pinned jobs kept in place. mapping[i] == Unmapped is
// invalid here; partial mappings are the RMs' concern.
func (p *Problem) MappingValid(mapping []int) bool {
	if len(mapping) != len(p.Jobs) {
		return false
	}
	for i, j := range p.Jobs {
		r := mapping[i]
		if r < 0 || r >= p.Platform.Len() || !j.Type.ExecutableOn(r) {
			return false
		}
		if (j.Fixed || j.Pinned(p.Platform)) && r != j.Resource {
			return false
		}
	}
	return true
}

// FeasibleMapping reports whether the complete mapping meets every
// deadline under per-resource EDF (Sec 4.1 semantics).
func (p *Problem) FeasibleMapping(mapping []int) bool {
	if !p.MappingValid(mapping) {
		return false
	}
	n := p.Platform.Len()
	buckets := make([][]Entry, n)
	for i, j := range p.Jobs {
		r := mapping[i]
		e := p.entry(j, r)
		if e.Rem > j.TimeLeft(p.Time)+Eps {
			return false // constraint (2)
		}
		buckets[r] = append(buckets[r], e)
	}
	for r := 0; r < n; r++ {
		if len(buckets[r]) == 0 {
			continue
		}
		if !ResourceFeasible(p.Platform.Resource(r).Preemptable(), p.Time, buckets[r]) {
			return false
		}
	}
	return true
}

// Energy returns the paper's objective for the mapping:
// Σ_j (ep_{j,i} + em_{j,k,i}), including the predicted job if present.
// The mapping must be structurally valid.
func (p *Problem) Energy(mapping []int) float64 {
	total := 0.0
	for i, j := range p.Jobs {
		e := j.EPM(mapping[i], p.Policy)
		if e == task.NotExecutable {
			return task.NotExecutable
		}
		total += e
	}
	return total
}

// Schedule reconstructs the per-resource EDF segments for a mapping, for
// diagnostics, examples and the simulator's cross-checks. The second result
// reports overall feasibility.
func (p *Problem) Schedule(mapping []int) (map[int][]Segment, bool) {
	if !p.MappingValid(mapping) {
		return nil, false
	}
	n := p.Platform.Len()
	type slot struct {
		entry Entry
		job   int
	}
	buckets := make([][]slot, n)
	for i, j := range p.Jobs {
		buckets[mapping[i]] = append(buckets[mapping[i]], slot{p.entry(j, mapping[i]), i})
	}
	out := make(map[int][]Segment, n)
	ok := true
	for r := 0; r < n; r++ {
		if len(buckets[r]) == 0 {
			continue
		}
		entries := make([]Entry, len(buckets[r]))
		for k, s := range buckets[r] {
			entries[k] = s.entry
		}
		segs, feasible := SimulateEDF(p.Platform.Resource(r).Preemptable(), p.Time, entries)
		if !feasible {
			ok = false
		}
		// Translate entry indices back to job indices.
		for k := range segs {
			segs[k].Index = buckets[r][segs[k].Index].job
		}
		out[r] = segs
	}
	return out, ok
}
