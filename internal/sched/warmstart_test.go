package sched

import (
	"testing"

	"predrm/internal/platform"
	"predrm/internal/task"
)

func warmProblem() *Problem {
	ts := task.Motivational()
	j1 := NewJob(0, ts.Type(0), 0, 8)
	j2 := NewJob(1, ts.Type(1), 0, 6)
	return &Problem{
		Platform: platform.Motivational(),
		Time:     0,
		Jobs:     []*Job{j1, j2},
	}
}

func TestWarmStateRecordDelta(t *testing.T) {
	p := warmProblem()
	var ws WarmState
	var d MappingDelta
	if ws.Valid() || ws.Delta(p, &d) {
		t.Fatal("zero WarmState claims a recorded activation")
	}
	ws.Record(p, []int{2, 0})
	if !ws.Valid() {
		t.Fatal("Record did not validate the state")
	}
	if !ws.Delta(p, &d) {
		t.Fatal("Delta false against the recorded problem itself")
	}
	if d.Kept != 2 || d.Added != 0 || d.Removed != 0 || d.Drifted != 0 {
		t.Fatalf("self-delta = %+v", d)
	}
	if d.PrevRes[0] != 2 || d.PrevRes[1] != 0 {
		t.Fatalf("PrevRes = %v", d.PrevRes)
	}

	// Next activation: job 0 survives, job 1 completed, one arrival.
	ts := task.Motivational()
	j3 := NewJob(2, ts.Type(1), 1, 6)
	next := &Problem{Platform: p.Platform, Time: 1, Jobs: []*Job{p.Jobs[0], j3}}
	if !ws.Delta(next, &d) {
		t.Fatal("Delta false on the successor activation")
	}
	if d.Kept != 1 || d.Added != 1 || d.Removed != 1 {
		t.Fatalf("successor delta = %+v", d)
	}
	if d.PrevRes[0] != 2 || d.PrevRes[1] != Unmapped {
		t.Fatalf("successor PrevRes = %v", d.PrevRes)
	}

	ws.Invalidate()
	if ws.Valid() || ws.Delta(next, &d) {
		t.Fatal("Invalidate did not clear the state")
	}
}

func TestWarmStateMatchesByPointerNotValue(t *testing.T) {
	// The simulator mutates *Job in place, so pointer identity is the
	// cross-activation job identity; a value-identical clone (a rebuilt
	// predicted job, say) must land on the added side.
	p := warmProblem()
	var ws WarmState
	ws.Record(p, []int{2, 0})
	clone := p.Jobs[0].Clone()
	next := &Problem{Platform: p.Platform, Time: p.Time, Jobs: []*Job{clone, p.Jobs[1]}}
	var d MappingDelta
	if !ws.Delta(next, &d) {
		t.Fatal("Delta false")
	}
	if d.Kept != 1 || d.Added != 1 || d.Removed != 1 {
		t.Fatalf("clone delta = %+v (clone must not match by value)", d)
	}
	if d.PrevRes[0] != Unmapped || d.PrevRes[1] != 0 {
		t.Fatalf("clone PrevRes = %v", d.PrevRes)
	}
}

func TestWarmStateDriftDetection(t *testing.T) {
	// A kept job that executed since the recording changes its remaining
	// work and must be counted as drifted; pure aging (time passing with
	// no execution) must not.
	p := warmProblem()
	var ws WarmState
	ws.Record(p, []int{2, 0})
	var d MappingDelta
	aged := &Problem{Platform: p.Platform, Time: 3, Jobs: p.Jobs}
	if !ws.Delta(aged, &d) || d.Drifted != 0 {
		t.Fatalf("aging counted as drift: %+v", d)
	}
	p.Jobs[0].Frac = 0.5 // executed half its work
	if !ws.Delta(aged, &d) || d.Drifted != 1 {
		t.Fatalf("execution not counted as drift: %+v", d)
	}
	p.Jobs[0].Frac = 1
	p.Jobs[1].MigDebt = 0.25 // picked up migration debt
	if !ws.Delta(aged, &d) || d.Drifted != 1 {
		t.Fatalf("migration debt not counted as drift: %+v", d)
	}
}

func TestWarmStateSkipsUnmapped(t *testing.T) {
	// A job the previous solve did not place (a rejected prediction)
	// carries no assignment worth repairing and must not be recorded.
	p := warmProblem()
	var ws WarmState
	ws.Record(p, []int{2, Unmapped})
	var d MappingDelta
	if !ws.Delta(p, &d) {
		t.Fatal("Delta false")
	}
	if d.Kept != 1 || d.Added != 1 || d.Removed != 0 {
		t.Fatalf("delta = %+v (unmapped job must read as added)", d)
	}
}

func TestEntryFingerprintMatchesListDigest(t *testing.T) {
	// EntryFingerprint is the per-entry term of the incremental multiset
	// digest: a single-entry list's digest must be derived from exactly it,
	// so two entries with equal fingerprints produce equal list digests.
	e := Entry{ReadyAt: 5, Deadline: 25, Rem: 3.5}
	shifted := Entry{ReadyAt: 105, Deadline: 125, Rem: 3.5}
	if EntryFingerprint(5, e) != EntryFingerprint(105, shifted) {
		t.Fatal("time-shifted identical entry changed fingerprint")
	}
	var a, b EntryList
	a.EnableFingerprint(5)
	b.EnableFingerprint(105)
	a.Insert(5, e)
	b.Insert(105, shifted)
	if a.FeasFingerprint(true) != b.FeasFingerprint(true) {
		t.Fatal("entry fingerprints equal but list digests differ")
	}
}
