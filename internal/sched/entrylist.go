package sched

import "fmt"

// EntryList maintains one resource's candidate entries in service order —
// pinned occupants first (by deadline among themselves), then the rest in
// non-decreasing deadline, ties in insertion order — which is exactly the
// FeasibleSorted precondition. It also counts entries released after the
// activation time (a predicted or future fixed job): while that count is
// zero, feasibility is the allocation-free cumulative scan; otherwise the
// full EDF simulation runs. EntryList is the shared incremental substrate
// of the heuristic's and the branch-and-bound solver's hot paths: both
// keep per-resource lists alive across trial insert/remove pairs instead
// of rebuilding slices per probe.
//
// A well-formed simulation state has at most one pinned occupant per
// resource, but the solvers accept arbitrary Problems, so the list keeps
// the pinned group ordered rather than assuming it is a single entry.
//
// The zero value is an empty list. An EntryList is not safe for concurrent
// use.
type EntryList struct {
	entries []Entry
	future  int
	pinned  int // length of the pinned prefix group

	// Incremental feasibility-fingerprint state (see fingerprint.go).
	// While fpOn, fpXor/fpSum hold an order-independent multiset digest
	// of the entries with times normalised to fpT, maintained by
	// Insert/Remove at O(1) extra cost per operation.
	fpOn         bool
	fpT          float64
	fpXor, fpSum uint64
}

// Reset empties the list, retaining capacity and the fingerprint setting.
func (l *EntryList) Reset() {
	l.entries = l.entries[:0]
	l.future = 0
	l.pinned = 0
	l.fpXor, l.fpSum = 0, 0
}

// CopyFrom makes l an independent copy of src — entries, counters, and
// fingerprint state — reusing l's storage. It is how a search worker
// snapshots the shared base state before applying its own trial inserts.
func (l *EntryList) CopyFrom(src *EntryList) {
	l.entries = append(l.entries[:0], src.entries...)
	l.future = src.future
	l.pinned = src.pinned
	l.fpOn = src.fpOn
	l.fpT = src.fpT
	l.fpXor = src.fpXor
	l.fpSum = src.fpSum
}

// Len returns the number of entries.
func (l *EntryList) Len() int { return len(l.entries) }

// Entries returns the ordered entries. The slice is borrowed: it aliases
// the list's storage and is invalidated by the next Insert, Remove, or
// Reset.
func (l *EntryList) Entries() []Entry { return l.entries }

// Future returns the number of entries whose release lies after the
// activation time passed to Insert.
func (l *EntryList) Future() int { return l.future }

// Insert places e at its service position — within the pinned prefix
// group if it is pinned, after the group otherwise, in both cases after
// all group entries with a deadline not exceeding its own — and returns
// that position for the matching Remove. t is the activation time, used to
// classify future releases.
func (l *EntryList) Insert(t float64, e Entry) int {
	s := l.entries
	lo, hi := l.pinned, len(s)
	if e.PinnedFirst {
		lo, hi = 0, l.pinned
		l.pinned++
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Deadline > e.Deadline {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s = append(s, Entry{})
	copy(s[lo+1:], s[lo:])
	s[lo] = e
	l.entries = s
	if e.ReadyAt > t+Eps {
		l.future++
	}
	if l.fpOn {
		h := entryHash(l.fpT, e)
		l.fpXor ^= h
		l.fpSum += h
	}
	return lo
}

// Remove undoes the Insert that returned pos. t must be the activation
// time passed to Insert.
func (l *EntryList) Remove(t float64, pos int) {
	s := l.entries
	if s[pos].ReadyAt > t+Eps {
		l.future--
	}
	if s[pos].PinnedFirst {
		l.pinned--
	}
	if l.fpOn {
		h := entryHash(l.fpT, s[pos])
		l.fpXor ^= h
		l.fpSum -= h
	}
	copy(s[pos:], s[pos+1:])
	l.entries = s[:len(s)-1]
}

// Feasible reports whether the list is EDF-schedulable on its resource
// from time t, taking the allocation-free sorted cumulative scan whenever
// no future release is present and falling back to the scratch-buffered
// EDF simulation otherwise.
func (l *EntryList) Feasible(preemptable bool, t float64, s *EDFScratch) bool {
	if l.future == 0 {
		return FeasibleSorted(t, l.entries)
	}
	return ResourceFeasibleScratch(preemptable, t, l.entries, s)
}

// FeasibleCached is Feasible routed through a feasibility cache: the
// list's incremental fingerprint keys a lookup, and only a miss runs the
// actual check (whose verdict is then stored). A nil cache degrades to a
// plain Feasible. hits/misses batch the probe statistics caller-side so
// concurrent search workers pay no per-probe atomics. The list must have
// fingerprinting enabled when cache is non-nil.
//
// A cached verdict is the verdict Feasible computed for an identical
// normalised entry multiset, so routing probes through a cache never
// changes a caller's decisions (modulo 128-bit fingerprint collisions,
// which PR 5 already accepts for the exact solver).
func (l *EntryList) FeasibleCached(preemptable bool, t float64, cache *FeasCache,
	s *EDFScratch, hits, misses *int64) bool {
	if cache == nil {
		return l.Feasible(preemptable, t, s)
	}
	fp := l.FeasFingerprint(preemptable)
	if v, ok := cache.Lookup(fp); ok {
		*hits++
		return v
	}
	*misses++
	v := l.Feasible(preemptable, t, s)
	cache.Store(fp, v)
	return v
}

// Invariant checks the FeasibleSorted precondition — a pinned prefix
// group, deadlines non-decreasing within each group — and the
// future-release count against activation time t, returning a descriptive
// error on the first violation. It is meant for tests and debugging.
func (l *EntryList) Invariant(t float64) error {
	future, pinned := 0, 0
	for i, e := range l.entries {
		if e.PinnedFirst {
			if i != pinned {
				return fmt.Errorf("sched: pinned entry at position %d outside the prefix group [0,%d)", i, pinned)
			}
			pinned++
		}
		if i > 0 && l.entries[i-1].PinnedFirst == e.PinnedFirst && e.Deadline < l.entries[i-1].Deadline {
			return fmt.Errorf("sched: deadline order violated at %d: %v after %v",
				i, e.Deadline, l.entries[i-1].Deadline)
		}
		if e.ReadyAt > t+Eps {
			future++
		}
	}
	if future != l.future {
		return fmt.Errorf("sched: future count %d, want %d", l.future, future)
	}
	if pinned != l.pinned {
		return fmt.Errorf("sched: pinned count %d, want %d", l.pinned, pinned)
	}
	return nil
}
