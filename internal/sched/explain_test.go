package sched

import (
	"testing"

	"predrm/internal/rng"
)

// TestFeasibleExplainMatchesFeasible fuzzes random entry populations on
// both resource kinds and checks the explain-mode probe agrees with the
// hot-path verdict, and that an infeasible verdict always pins a broken
// deadline with negative slack.
func TestFeasibleExplainMatchesFeasible(t *testing.T) {
	r := rng.New(777)
	now := 10.0
	var scratch EDFScratch
	for trial := 0; trial < 4000; trial++ {
		var l EntryList
		for i, k := 0, r.Intn(7); i < k; i++ {
			l.Insert(now, randomEntry(r, now))
		}
		preempt := r.Float64() < 0.5
		want := l.Feasible(preempt, now, &scratch)
		v := l.FeasibleExplain(preempt, now)
		if v.Feasible != want {
			t.Fatalf("trial %d: FeasibleExplain = %v, Feasible = %v (entries %+v, preempt %v)",
				trial, v.Feasible, want, l.Entries(), preempt)
		}
		if v.EDFPath != (l.Future() > 0) {
			t.Fatalf("trial %d: EDFPath = %v with %d future releases", trial, v.EDFPath, l.Future())
		}
		if !v.Feasible {
			if v.BreachDeadline == 0 {
				t.Fatalf("trial %d: infeasible verdict with no breach deadline: %+v", trial, v)
			}
			if v.Slack >= 0 {
				t.Fatalf("trial %d: infeasible verdict with slack %v", trial, v.Slack)
			}
		}
	}
}

// TestFeasibleExplainEmpty pins the trivial case: an empty list is
// feasible with zero reported slack.
func TestFeasibleExplainEmpty(t *testing.T) {
	var l EntryList
	v := l.FeasibleExplain(true, 5)
	if !v.Feasible || v.Slack != 0 || v.BreachDeadline != 0 || v.EDFPath {
		t.Fatalf("empty-list verdict = %+v", v)
	}
}
