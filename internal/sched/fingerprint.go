package sched

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Feasibility fingerprinting and the cross-activation pruning cache.
//
// The branch-and-bound solver asks the same schedulability question —
// "is this multiset of entries EDF-feasible on this resource?" — over and
// over: sibling subtrees that place the same jobs on a resource probe an
// identical list, the admission protocol re-solves near-identical problems
// with one predicted job dropped, and consecutive RM activations share
// almost all of their admitted state. FeasCache memoises those probes.
//
// Keys are content fingerprints of the entry multiset with all times
// normalised to the activation time t (ReadyAt-t, Deadline-t), so a state
// that recurs at a later activation — the common case for an arriving job
// probed against an empty or lightly loaded resource — maps to the same
// key. EDF feasibility is shift-invariant in exact arithmetic; float
// rounding can in principle flip a verdict that sits within Eps of the
// boundary between two activation times, the same measure-zero boundary
// class the solvers' Eps tolerance already absorbs (see DESIGN.md).
//
// Because keys are content-addressed, a cached verdict can never go stale:
// when a job finishes it simply stops appearing in probed lists, and its
// fingerprints stop being asked for. Invalidation is therefore a capacity
// concern, not a correctness one — Advance (called once per solver
// activation) retires slots that have not been touched for TTLEpochs
// activations with an incremental clock sweep, so the table tracks the
// live working set instead of accumulating every state ever probed.
type FeasCache struct {
	slots  []atomic.Uint64 // tag word: (hi &^ 1) | feasible bit; 0 = empty
	epochs []atomic.Uint32 // last-touched epoch per slot, for the sweep
	mask   uint64
	epoch  atomic.Uint32
	sweep  int // next slot the incremental sweep will examine

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	sweeps    atomic.Int64 // slots retired by Advance
}

// DefaultFeasCacheSlots is the default table size: 1<<15 slots of 12 bytes
// (~400 KiB), far beyond the working set of one activation but small
// enough to allocate per solver instance.
const DefaultFeasCacheSlots = 1 << 15

// TTLEpochs is how many Advance calls (solver activations) an untouched
// slot survives before the incremental sweep retires it.
const TTLEpochs = 64

// sweepChunk slots are examined per Advance call, so a full cycle over the
// default table takes len/sweepChunk ≈ 128 activations — the sweep stays
// O(1) per activation while retiring finished jobs' states within a
// bounded number of activations of their last use.
const sweepChunk = 256

// NewFeasCache builds a cache with at least the given number of slots
// (rounded up to a power of two; n <= 0 selects the default size).
func NewFeasCache(n int) *FeasCache {
	if n <= 0 {
		n = DefaultFeasCacheSlots
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &FeasCache{
		slots:  make([]atomic.Uint64, size),
		epochs: make([]atomic.Uint32, size),
		mask:   uint64(size - 1),
	}
}

// Fp is a 128-bit feasibility-probe fingerprint.
type Fp struct {
	Hi, Lo uint64
}

// Lookup returns the cached verdict for fp. The second result reports
// whether the key was present. Lookup is safe for concurrent use and does
// not touch the hit/miss statistics — callers batch those via AddStats so
// search workers pay no per-probe atomics.
func (c *FeasCache) Lookup(fp Fp) (feasible, ok bool) {
	if c == nil {
		return false, false
	}
	i := fp.Lo & c.mask
	w := c.slots[i].Load()
	if w == 0 || w&^1 != fp.Hi&^1 {
		return false, false
	}
	c.epochs[i].Store(c.epoch.Load()) // keep hot entries alive
	return w&1 == 1, true
}

// Store records the verdict for fp, evicting whatever occupied the slot.
// Safe for concurrent use; on a racing double store the last writer wins,
// which is harmless because both record the same truth for the same key.
func (c *FeasCache) Store(fp Fp, feasible bool) {
	if c == nil {
		return
	}
	w := fp.Hi &^ 1
	if w == 0 {
		w = 0x9e3779b97f4a7c14 // keep 0 reserved for "empty"
	}
	if feasible {
		w |= 1
	}
	i := fp.Lo & c.mask
	if old := c.slots[i].Load(); old != 0 && old&^1 != w&^1 {
		c.evictions.Add(1)
	}
	c.slots[i].Store(w)
	c.epochs[i].Store(c.epoch.Load())
}

// Advance starts a new epoch (one solver activation) and runs one
// increment of the clock sweep: the next sweepChunk slots are examined and
// those untouched for TTLEpochs epochs are retired. Advance must not race
// with Lookup/Store from search workers; solvers call it between
// activations, never during a search.
func (c *FeasCache) Advance() {
	if c == nil {
		return
	}
	e := c.epoch.Add(1)
	n := len(c.slots)
	chunk := sweepChunk
	if chunk > n {
		chunk = n
	}
	for k := 0; k < chunk; k++ {
		i := c.sweep
		c.sweep++
		if c.sweep == n {
			c.sweep = 0
		}
		if c.slots[i].Load() == 0 {
			continue
		}
		if e-c.epochs[i].Load() > TTLEpochs {
			c.slots[i].Store(0)
			c.sweeps.Add(1)
		}
	}
}

// AddStats folds a worker's batched hit/miss counts into the cache totals.
func (c *FeasCache) AddStats(hits, misses int64) {
	if c == nil {
		return
	}
	c.hits.Add(hits)
	c.misses.Add(misses)
}

// CacheStats is a snapshot of a FeasCache's lifetime behaviour.
type CacheStats struct {
	// Hits and Misses count probes answered from / absent from the table
	// (as reported through AddStats).
	Hits, Misses int64
	// Evictions counts slots overwritten by a colliding key.
	Evictions int64
	// Swept counts slots retired by the epoch sweep.
	Swept int64
	// Epoch is the number of Advance calls.
	Epoch uint32
}

// HitRate returns Hits/(Hits+Misses), or 0 before any probe.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's lifetime statistics. Nil-safe.
func (c *FeasCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Swept:     c.sweeps.Load(),
		Epoch:     c.epoch.Load(),
	}
}

// mix64 is the splitmix64 finaliser: a fast, well-dispersed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// entryHash hashes one entry with all times normalised to t. The hash is
// order-sensitive in its fields but the accumulators below combine entry
// hashes into an order-independent multiset digest, which is exactly the
// identity of a feasibility probe: EntryList keeps a canonical service
// order determined by content alone.
func entryHash(t float64, e Entry) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	h = mix64(h ^ math.Float64bits(e.ReadyAt-t))
	h = mix64(h ^ math.Float64bits(e.Deadline-t))
	h = mix64(h ^ math.Float64bits(e.Rem))
	if e.PinnedFirst {
		h = mix64(h ^ 0x9e3779b97f4a7c15)
	}
	// Never contribute 0: a zero hash would make the entry invisible to
	// the xor accumulator.
	if h == 0 {
		h = 1
	}
	return h
}

// EnableFingerprint switches on incremental fingerprint maintenance for a
// list that is (or will be) populated at activation time t. It must be
// called on an empty list; Insert and Remove then keep a multiset digest
// of the entries at O(1) extra cost, and FeasFingerprint reads it without
// touching the entries. Reset preserves the setting; CopyFrom copies it
// from the source. Lists that never consult a FeasCache (the heuristic's)
// leave it off and pay nothing.
func (l *EntryList) EnableFingerprint(t float64) {
	l.fpOn = true
	l.fpT = t
	l.fpXor = 0
	l.fpSum = 0
}

// FeasFingerprint returns the cache key for "are the current entries
// EDF-feasible on a resource with this preemption mode". It panics if
// EnableFingerprint was not called.
func (l *EntryList) FeasFingerprint(preemptable bool) Fp {
	if !l.fpOn {
		panic("sched: FeasFingerprint without EnableFingerprint")
	}
	seed := uint64(len(l.entries))<<1 | uint64(l.future)<<32
	if preemptable {
		seed |= 1
	}
	a := mix64(l.fpXor ^ seed)
	b := mix64(l.fpSum + 0x2545f4914f6cdd1d + seed)
	return Fp{
		Hi: mix64(a ^ bits.RotateLeft64(b, 23)),
		Lo: mix64(b ^ bits.RotateLeft64(a, 41)),
	}
}
