package sched

import "math"

// FeasVerdict is the explained result of one feasibility probe: besides
// the boolean the hot path computes, it reports how tight the schedule is
// and, when infeasible, which deadline broke. It feeds the decision-
// provenance plane; the allocation-free Feasible path is untouched.
type FeasVerdict struct {
	// Feasible mirrors EntryList.Feasible for the same state.
	Feasible bool
	// Slack is the tightest deadline slack over the served entries
	// (deadline minus completion; negative exactly when infeasible under
	// the sorted scan, and for the first missed entry under EDF).
	Slack float64
	// BreachDeadline is the absolute deadline of the first entry that
	// missed, when infeasible; 0 otherwise.
	BreachDeadline float64
	// EDFPath reports the probe required the full EDF simulation (a
	// future release was present) instead of the sorted cumulative scan.
	EDFPath bool
}

// FeasibleExplain is EntryList.Feasible with provenance: same verdict,
// plus the tightest slack and the deadline that broke. It allocates (the
// EDF path builds the full schedule) and is meant for the opt-in
// provenance recording path only.
func (l *EntryList) FeasibleExplain(preemptable bool, t float64) FeasVerdict {
	if l.future == 0 {
		return feasibleSortedExplain(t, l.entries)
	}
	return feasibleEDFExplain(preemptable, t, l.entries)
}

// feasibleSortedExplain is FeasibleSorted with slack tracking. Unlike the
// hot scan it keeps going past the first miss so Slack reports the
// tightest (most negative) margin, but BreachDeadline pins the first
// entry that missed — the deadline the verdict hinges on.
func feasibleSortedExplain(t float64, entries []Entry) FeasVerdict {
	v := FeasVerdict{Feasible: true, Slack: math.Inf(1)}
	finish := t
	for i := range entries {
		finish += entries[i].Rem
		slack := entries[i].Deadline - finish
		if slack < v.Slack {
			v.Slack = slack
		}
		if v.Feasible && finish > entries[i].Deadline+Eps {
			v.Feasible = false
			v.BreachDeadline = entries[i].Deadline
		}
	}
	if math.IsInf(v.Slack, 1) {
		v.Slack = 0 // empty list: trivially feasible, no margin to report
	}
	return v
}

// feasibleEDFExplain runs the full EDF construction and derives per-entry
// completion times from the segments.
func feasibleEDFExplain(preemptable bool, t float64, entries []Entry) FeasVerdict {
	segs, feasible := SimulateEDF(preemptable, t, entries)
	v := FeasVerdict{Feasible: feasible, Slack: math.Inf(1), EDFPath: true}
	finish := make([]float64, len(entries))
	for _, s := range segs {
		if s.End > finish[s.Index] {
			finish[s.Index] = s.End
		}
	}
	for i := range entries {
		if finish[i] == 0 {
			continue // never served (zero demand)
		}
		slack := entries[i].Deadline - finish[i]
		if slack < v.Slack {
			v.Slack = slack
		}
		if slack < -Eps && v.BreachDeadline == 0 {
			v.BreachDeadline = entries[i].Deadline
		}
	}
	if math.IsInf(v.Slack, 1) {
		v.Slack = 0
	}
	return v
}
