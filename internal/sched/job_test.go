package sched

import (
	"strings"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/task"
)

func motivType(t *testing.T, id int) *task.Type {
	t.Helper()
	return task.Motivational().Type(id)
}

func TestNewJob(t *testing.T) {
	ty := motivType(t, 0)
	j := NewJob(3, ty, 10, 8)
	if j.AbsDeadline != 18 {
		t.Fatalf("AbsDeadline = %v, want 18", j.AbsDeadline)
	}
	if j.Resource != Unmapped || j.Started || j.Frac != 1 {
		t.Fatalf("fresh job state wrong: %+v", j)
	}
	if got := j.TimeLeft(12); got != 6 {
		t.Fatalf("TimeLeft = %v, want 6", got)
	}
}

func TestRemScalesWithProgress(t *testing.T) {
	ty := motivType(t, 0) // WCET CPU1=8, CPU2=12, GPU=5
	j := NewJob(0, ty, 0, 8)
	j.Frac = 0.5
	if got := j.Rem(0); got != 4 {
		t.Fatalf("Rem(CPU1) = %v, want 4", got)
	}
	// The paper's migration scaling: cp_{j,k} = c_{j,k} x (cp_{j,i}/c_{j,i}).
	if got := j.Rem(1); got != 6 {
		t.Fatalf("Rem(CPU2) = %v, want 6", got)
	}
	if got := j.Rem(2); got != 2.5 {
		t.Fatalf("Rem(GPU) = %v, want 2.5", got)
	}
}

func TestRemEnergyScales(t *testing.T) {
	ty := motivType(t, 0) // Energy CPU1=7.3
	j := NewJob(0, ty, 0, 8)
	j.Frac = 0.25
	if got := j.RemEnergy(0); got != 7.3*0.25 {
		t.Fatalf("RemEnergy = %v", got)
	}
}

func TestRemNotExecutable(t *testing.T) {
	ty := &task.Type{ID: 0,
		WCET:   []float64{5, task.NotExecutable},
		Energy: []float64{2, task.NotExecutable}}
	j := NewJob(0, ty, 0, 10)
	if j.Rem(1) != task.NotExecutable || j.RemEnergy(1) != task.NotExecutable {
		t.Fatal("Rem on non-executable resource should be NotExecutable")
	}
	if j.CPM(1, ChargeStartedOnly) != task.NotExecutable {
		t.Fatal("CPM on non-executable resource should be NotExecutable")
	}
	if j.EPM(1, ChargeStartedOnly) != task.NotExecutable {
		t.Fatal("EPM on non-executable resource should be NotExecutable")
	}
}

func TestMigrationChargingPolicies(t *testing.T) {
	ty := &task.Type{ID: 0,
		WCET:      []float64{10, 20},
		Energy:    []float64{4, 8},
		MigTime:   2,
		MigEnergy: 1,
	}
	j := NewJob(0, ty, 0, 100)

	// Unmapped: never charged.
	if j.CPM(0, ChargeAlways) != 10 || j.EPM(0, ChargeAlways) != 4 {
		t.Fatal("unmapped job must not be charged migration")
	}

	// Mapped but not started.
	j.Resource = 0
	if j.CPM(1, ChargeStartedOnly) != 20 {
		t.Fatalf("unstarted remap charged under started-only: %v", j.CPM(1, ChargeStartedOnly))
	}
	if j.CPM(1, ChargeAlways) != 22 {
		t.Fatalf("unstarted remap not charged under always: %v", j.CPM(1, ChargeAlways))
	}

	// Started and moving.
	j.Started = true
	j.Frac = 0.5
	if got := j.CPM(1, ChargeStartedOnly); got != 10+2 {
		t.Fatalf("started migration CPM = %v, want 12", got)
	}
	if got := j.EPM(1, ChargeStartedOnly); got != 4+1 {
		t.Fatalf("started migration EPM = %v, want 5", got)
	}
	// Staying put: no charge.
	if got := j.CPM(0, ChargeStartedOnly); got != 5 {
		t.Fatalf("stay-put CPM = %v, want 5", got)
	}
}

func TestMigDebtCountsAsWork(t *testing.T) {
	ty := &task.Type{ID: 0, WCET: []float64{10}, Energy: []float64{4}}
	j := NewJob(0, ty, 0, 100)
	j.MigDebt = 3
	if got := j.Rem(0); got != 13 {
		t.Fatalf("Rem with debt = %v, want 13", got)
	}
}

func TestPinned(t *testing.T) {
	p := platform.Motivational() // CPU,CPU,GPU
	ty := motivType(t, 0)
	j := NewJob(0, ty, 0, 8)
	if j.Pinned(p) {
		t.Fatal("unmapped job pinned")
	}
	j.Resource = 2 // GPU
	if j.Pinned(p) {
		t.Fatal("unstarted GPU job pinned")
	}
	j.Started = true
	j.ExecRes = 0 // started on a CPU, migrated to the GPU: not yet pinned
	if j.Pinned(p) {
		t.Fatal("migrated-in GPU job pinned before executing there")
	}
	j.ExecRes = 2 // has actually run on the GPU
	if !j.Pinned(p) {
		t.Fatal("GPU occupant not pinned")
	}
	j.Resource = 0 // CPU
	j.ExecRes = 0
	if j.Pinned(p) {
		t.Fatal("started CPU job pinned")
	}
}

func TestDoneAndClone(t *testing.T) {
	ty := motivType(t, 1)
	j := NewJob(0, ty, 0, 5)
	if j.Done() {
		t.Fatal("fresh job done")
	}
	c := j.Clone()
	c.Frac = 0
	if j.Frac == 0 {
		t.Fatal("Clone shares state")
	}
	if !c.Done() {
		t.Fatal("finished clone not done")
	}
	c.MigDebt = 1
	if c.Done() {
		t.Fatal("job with migration debt is not done")
	}
}

func TestJobString(t *testing.T) {
	ty := motivType(t, 0)
	j := NewJob(7, ty, 1, 8)
	if !strings.Contains(j.String(), "job(7") {
		t.Fatalf("String = %q", j.String())
	}
	j.Predicted = true
	if !strings.Contains(j.String(), "pred(") {
		t.Fatalf("String = %q", j.String())
	}
}

func TestMigrationPolicyString(t *testing.T) {
	if ChargeStartedOnly.String() != "started-only" || ChargeAlways.String() != "always" {
		t.Fatal("policy strings wrong")
	}
	if !strings.HasPrefix(MigrationPolicy(5).String(), "MigrationPolicy(") {
		t.Fatal("unknown policy string")
	}
}
