package sched

import (
	"testing"

	"predrm/internal/rng"
)

func TestLoadIndexUpdateKeepsOrder(t *testing.T) {
	const n = 13
	x := NewLoadIndex(n)
	if err := x.Invariant(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	for step := 0; step < 2000; step++ {
		id := r.Intn(n)
		load := float64(r.Intn(7)) // small range: plenty of ties
		x.Update(id, load)
		if err := x.Invariant(); err != nil {
			t.Fatalf("step %d (id %d load %.0f): %v", step, id, load, err)
		}
		if x.Load(id) != load {
			t.Fatalf("step %d: Load(%d) = %v, want %v", step, id, x.Load(id), load)
		}
	}
}

func TestLoadIndexLeastAndTies(t *testing.T) {
	x := NewLoadIndex(4)
	x.Update(0, 3)
	x.Update(1, 1)
	x.Update(2, 1)
	x.Update(3, 2)
	// Ties resolve to the lower id: expect 1, 2, 3, 0.
	want := []int{1, 2, 3, 0}
	for k, id := range want {
		if got := x.At(k); got != id {
			t.Fatalf("At(%d) = %d, want %d", k, got, id)
		}
	}
	// Moving the least-loaded to the top re-ranks the rest.
	x.Update(1, 9)
	if x.At(0) != 2 || x.At(3) != 1 {
		t.Fatalf("after update: order %v", []int{x.At(0), x.At(1), x.At(2), x.At(3)})
	}
	if err := x.Invariant(); err != nil {
		t.Fatal(err)
	}
}
