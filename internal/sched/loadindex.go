package sched

import (
	"fmt"
	"sort"
)

// LoadIndex keeps a fixed population of candidates (platform shards, or
// resources) ordered by a load score, supporting O(log n) repositioning
// when one candidate's load changes — the same binary-search discipline
// EntryList uses for service order. The order is strict and total:
// ascending (load, id), so equal loads resolve to the lower id and every
// walk over the index is deterministic.
//
// The shard router walks the index from least loaded upward and takes
// the first eligible candidate, which makes the placement pre-filter
// O(log n) for the reposition plus the (typically 1-step) eligibility
// walk, instead of a full scan per arrival.
type LoadIndex struct {
	load []float64 // id -> current load
	rank []int     // position -> id, ordered by (load, id)
	pos  []int     // id -> position in rank
}

// NewLoadIndex builds an index over ids 0..n-1, all at load 0.
func NewLoadIndex(n int) *LoadIndex {
	x := &LoadIndex{
		load: make([]float64, n),
		rank: make([]int, n),
		pos:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		x.rank[i] = i
		x.pos[i] = i
	}
	return x
}

// Len returns the population size.
func (x *LoadIndex) Len() int { return len(x.rank) }

// Load returns id's current load.
func (x *LoadIndex) Load(id int) float64 { return x.load[id] }

// At returns the id at position k of the ascending (load, id) order;
// At(0) is the least loaded.
func (x *LoadIndex) At(k int) int { return x.rank[k] }

// less reports whether candidate a orders strictly before (load, id) b.
func (x *LoadIndex) less(a int, load float64, b int) bool {
	if x.load[a] != load {
		return x.load[a] < load
	}
	return a < b
}

// Update sets id's load and repositions it: the entry is lifted out of
// the order, a binary search over the remaining (still sorted) entries
// finds its new rank, and the block in between shifts by one.
func (x *LoadIndex) Update(id int, load float64) {
	old := x.pos[id]
	x.load[id] = load
	n := len(x.rank)
	copy(x.rank[old:], x.rank[old+1:])
	rest := x.rank[:n-1]
	target := sort.Search(len(rest), func(k int) bool {
		return !x.less(rest[k], load, id)
	})
	copy(x.rank[target+1:], x.rank[target:n-1])
	x.rank[target] = id
	lo, hi := old, target
	if lo > hi {
		lo, hi = hi, lo
	}
	for k := lo; k <= hi; k++ {
		x.pos[x.rank[k]] = k
	}
}

// Invariant verifies internal consistency (tests).
func (x *LoadIndex) Invariant() error {
	for k, id := range x.rank {
		if x.pos[id] != k {
			return fmt.Errorf("loadindex: pos[%d]=%d but rank[%d]=%d", id, x.pos[id], k, id)
		}
		if k > 0 {
			prev := x.rank[k-1]
			if !x.less(prev, x.load[id], id) {
				return fmt.Errorf("loadindex: order broken at %d: id %d (%.3f) !< id %d (%.3f)",
					k, prev, x.load[prev], id, x.load[id])
			}
		}
	}
	return nil
}
