package sched

import "math"

// Cross-activation warm-start state.
//
// Consecutive RM activations differ by one arrival or one completion
// (PR 5's feasibility cache measured ~95% content overlap), so a solver
// that remembers its previous answer can delta-solve: retain the
// assignments of surviving jobs, place only the new ones, and verify the
// result instead of rebuilding it. WarmState is that memory — the jobs a
// solver last mapped, where it put them, and a per-job fingerprint of the
// work remaining — and MappingDelta is the difference between the
// remembered activation and the problem now being solved.
//
// Jobs are matched by pointer identity: the simulator keeps *Job values
// alive across activations (progress is mutated in place), so the same
// pointer appearing in two consecutive problems is the same runtime job by
// construction. Predicted jobs are rebuilt fresh per activation and
// therefore always land on the "added" side, which is the correct reading:
// a forecast is re-decided every time.

// WarmState records one solver's previous activation: which jobs it
// mapped, the resources it chose, and a drift fingerprint per job. The
// zero value is an empty (invalid) state. Like the solvers that embed it,
// a WarmState is single-caller: Record and Delta must not race.
type WarmState struct {
	jobs []*Job
	res  []int
	fps  []uint64
	// byJob indexes jobs by pointer; values are indices into jobs/res/fps.
	// Rebuilt (not reallocated) on every Record.
	byJob map[*Job]int
	valid bool
}

// Valid reports whether the state holds a recorded activation.
func (ws *WarmState) Valid() bool { return ws != nil && ws.valid }

// Invalidate empties the state; the next Delta reports no previous solve.
func (ws *WarmState) Invalidate() {
	if ws == nil {
		return
	}
	ws.valid = false
	ws.jobs = ws.jobs[:0]
	ws.res = ws.res[:0]
	ws.fps = ws.fps[:0]
	clear(ws.byJob)
}

// Record remembers mapping as the solution of p. Jobs mapped to Unmapped
// (a rejected predicted job, say) are skipped: they carry no assignment
// worth repairing. The jobs slice is retained by pointer, which also keeps
// the Job values reachable; callers that tear down a simulation should
// Invalidate or drop the WarmState with it.
func (ws *WarmState) Record(p *Problem, mapping []int) {
	ws.jobs = ws.jobs[:0]
	ws.res = ws.res[:0]
	ws.fps = ws.fps[:0]
	if ws.byJob == nil {
		ws.byJob = make(map[*Job]int, len(p.Jobs))
	} else {
		clear(ws.byJob)
	}
	for i, j := range p.Jobs {
		r := mapping[i]
		if r == Unmapped {
			continue
		}
		ws.byJob[j] = len(ws.jobs)
		ws.jobs = append(ws.jobs, j)
		ws.res = append(ws.res, r)
		ws.fps = append(ws.fps, driftHash(j, r))
	}
	ws.valid = true
}

// driftHash fingerprints the part of a job's feasibility entry that
// changes only when the job actually executed or migrated since the
// previous activation: the remaining work on the assigned resource
// (entry times are excluded deliberately — every real job ages between
// activations, and aging alone does not drift an assignment). It reuses
// the entry-hash mixer of the PR 5 fingerprint machinery.
func driftHash(j *Job, r int) uint64 {
	return mix64(math.Float64bits(j.Rem(r)) ^ 0xd6e8feb86659fd93)
}

// EntryFingerprint exposes the fingerprint of a single entry normalised
// to activation time t — the per-entry term of the multiset digest that
// EntryList maintains incrementally (see fingerprint.go). It exists for
// tests and external consumers of the fingerprint machinery; EntryList
// users get the digest for free via FeasFingerprint.
func EntryFingerprint(t float64, e Entry) uint64 { return entryHash(t, e) }

// MappingDelta describes how a problem differs from the activation a
// WarmState recorded. The zero value is ready to use; Delta reuses its
// storage across calls.
type MappingDelta struct {
	// PrevRes holds, per p.Jobs[i], the resource the job was mapped to in
	// the recorded activation, or Unmapped for a job the previous solve
	// did not place (an added job).
	PrevRes []int
	// Kept counts jobs present in both activations, Added the jobs only in
	// the current problem, Removed the recorded jobs that are gone
	// (finished, or a dropped prediction).
	Kept, Added, Removed int
	// Drifted counts kept jobs whose remaining-work fingerprint changed —
	// the job executed or picked up migration debt since the recording —
	// so its retained assignment costs a different energy than before.
	Drifted int
}

// Delta computes the difference between p and the recorded activation
// into d, reusing d's storage. It reports false — leaving d unspecified —
// when no activation is recorded.
func (ws *WarmState) Delta(p *Problem, d *MappingDelta) bool {
	if !ws.Valid() {
		return false
	}
	m := len(p.Jobs)
	if cap(d.PrevRes) < m {
		d.PrevRes = make([]int, m)
	}
	d.PrevRes = d.PrevRes[:m]
	d.Kept, d.Added, d.Drifted = 0, 0, 0
	for i, j := range p.Jobs {
		pi, ok := ws.byJob[j]
		if !ok {
			d.PrevRes[i] = Unmapped
			d.Added++
			continue
		}
		d.PrevRes[i] = ws.res[pi]
		d.Kept++
		if driftHash(j, ws.res[pi]) != ws.fps[pi] {
			d.Drifted++
		}
	}
	d.Removed = len(ws.jobs) - d.Kept
	return true
}
