// Package sched provides the scheduling substrate shared by every resource
// manager in this repository: runtime job state with progress and migration
// accounting (the paper's cp/ep/cpm quantities, Sec 4.1/4.2), and exact EDF
// feasibility checks on single resources — preemptive for CPUs,
// non-preemptive for GPUs — including a single future release for the
// predicted task.
package sched

import (
	"fmt"

	"predrm/internal/platform"
	"predrm/internal/task"
)

// Unmapped marks a job without a resource assignment.
const Unmapped = -1

// MigrationPolicy selects when relocating a job is charged cm/em.
type MigrationPolicy int

const (
	// ChargeStartedOnly charges migration overhead only when a job that
	// has begun execution changes resource. Relocating a queued job is
	// free: nothing has been loaded yet. This is the default reading of
	// the paper's model and the library default.
	ChargeStartedOnly MigrationPolicy = iota
	// ChargeAlways charges migration overhead whenever a previously mapped
	// job changes resource, started or not. Available for ablation.
	ChargeAlways
)

// String returns a short label for the policy.
func (m MigrationPolicy) String() string {
	switch m {
	case ChargeStartedOnly:
		return "started-only"
	case ChargeAlways:
		return "always"
	default:
		return fmt.Sprintf("MigrationPolicy(%d)", int(m))
	}
}

// Job is a runtime task instance τ_j under management: an admitted request
// that has not finished, the arriving request under decision, or the
// predicted request used as a planning constraint.
type Job struct {
	// ID is the request index within its trace (unique per simulation).
	ID int
	// Type is the task type triggered by the request.
	Type *task.Type
	// Arrival is the absolute arrival time s_j. For a predicted job this
	// is the predicted arrival s_p and may lie in the future.
	Arrival float64
	// AbsDeadline is the absolute deadline s_j + d_j.
	AbsDeadline float64
	// Resource is the job's current mapping, or Unmapped.
	Resource int
	// Frac is the fraction of the job's work remaining in (0, 1]; 1 means
	// untouched. Progress is resource-independent: executing dt on
	// resource i reduces Frac by dt/c_{j,i} (Sec 4.1).
	Frac float64
	// Started reports whether the job has executed at all; a started job
	// that migrates is charged cm/em.
	Started bool
	// ExecRes is the resource the job last actually executed on, or
	// Unmapped. It distinguishes the true occupant of a non-preemptable
	// resource from a job that started elsewhere and was migrated in: only
	// the former is pinned and dispatched first.
	ExecRes int
	// MigDebt is migration time already owed but not yet served: extra
	// occupancy the job must consume on its current resource before doing
	// useful work. It is set when a migration is applied and drained by
	// the simulator.
	MigDebt float64
	// Predicted marks the planning-only job for the predicted request.
	Predicted bool
	// Fixed marks a job whose mapping is not the resource manager's
	// decision: a design-time-allocated safety-critical job (Sec 2). The
	// solvers plan around it on its static Resource; unlike Predicted
	// jobs, Fixed jobs really execute. A Fixed job's Arrival may lie in
	// the future (a known upcoming critical release).
	Fixed bool
}

// NewJob builds a fresh, unmapped job for a request of type ty arriving at
// arrival with relative deadline relDeadline.
func NewJob(id int, ty *task.Type, arrival, relDeadline float64) *Job {
	return &Job{
		ID:          id,
		Type:        ty,
		Arrival:     arrival,
		AbsDeadline: arrival + relDeadline,
		Resource:    Unmapped,
		ExecRes:     Unmapped,
		Frac:        1,
	}
}

// TimeLeft returns t_left = AbsDeadline − t.
func (j *Job) TimeLeft(t float64) float64 { return j.AbsDeadline - t }

// Rem returns cp_{j,r}: the worst-case execution time still to be served if
// the job runs (or continues) on resource r, excluding migration overhead
// but including any unserved migration debt. Returns task.NotExecutable if
// the type cannot run on r.
func (j *Job) Rem(r int) float64 {
	if !j.Type.ExecutableOn(r) {
		return task.NotExecutable
	}
	return j.Type.WCET[r]*j.Frac + j.MigDebt
}

// RemEnergy returns ep_{j,r}: the average energy still to be consumed on
// resource r, or task.NotExecutable.
func (j *Job) RemEnergy(r int) float64 {
	if !j.Type.ExecutableOn(r) {
		return task.NotExecutable
	}
	return j.Type.Energy[r] * j.Frac
}

// migrates reports whether assigning the job to r constitutes a charged
// migration under the policy.
func (j *Job) migrates(r int, policy MigrationPolicy) bool {
	if j.Resource == Unmapped || j.Resource == r {
		return false
	}
	if policy == ChargeAlways {
		return true
	}
	return j.Started
}

// CPM returns cpm_{j,r}: remaining execution time on r including the
// migration time overhead if assigning to r relocates the job (Sec 4.2).
func (j *Job) CPM(r int, policy MigrationPolicy) float64 {
	rem := j.Rem(r)
	if rem == task.NotExecutable {
		return task.NotExecutable
	}
	if j.migrates(r, policy) {
		rem += j.Type.MigTime
	}
	return rem
}

// EPM returns ep_{j,r} + em: remaining energy on r including the migration
// energy overhead if assigning to r relocates the job.
func (j *Job) EPM(r int, policy MigrationPolicy) float64 {
	e := j.RemEnergy(r)
	if e == task.NotExecutable {
		return task.NotExecutable
	}
	if j.migrates(r, policy) {
		e += j.Type.MigEnergy
	}
	return e
}

// Pinned reports whether the job is stuck on its current resource: it has
// begun executing on a non-preemptable resource and must run there to
// completion (Sec 2). A job that started elsewhere and was migrated onto
// the resource is not pinned until it actually executes there.
func (j *Job) Pinned(p *platform.Platform) bool {
	return j.Resource != Unmapped && j.ExecRes == j.Resource &&
		!p.Resource(j.Resource).Preemptable()
}

// Done reports whether the job has finished all work and served any
// migration debt.
func (j *Job) Done() bool { return j.Frac <= 0 && j.MigDebt <= 0 }

// Clone returns a copy of the job (Type is shared; it is immutable).
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

// String formats the job for diagnostics.
func (j *Job) String() string {
	kind := "job"
	if j.Predicted {
		kind = "pred"
	}
	return fmt.Sprintf("%s(%d type=%d s=%.3f d=%.3f res=%d frac=%.3f)",
		kind, j.ID, j.Type.ID, j.Arrival, j.AbsDeadline, j.Resource, j.Frac)
}
