package sched

// EDFScratch holds the reusable buffers of the EDF feasibility routines
// (ResourceFeasibleScratch and EntryList.Feasible): the remaining-work
// vector of the event simulation and the index buffer of the synchronous
// cumulative check. Solvers own one scratch per instance and thread it
// through every probe, making the decision hot path allocation-free in
// steady state. The zero value is ready to use; buffers grow on demand and
// are retained across calls. An EDFScratch is not safe for concurrent use.
type EDFScratch struct {
	rem   []float64
	order []int
}
