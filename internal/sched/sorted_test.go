package sched

import (
	"sort"
	"testing"
	"testing/quick"

	"predrm/internal/rng"
)

// TestFeasibleSortedMatchesResourceFeasible cross-checks the branch-and-
// bound hot path against the general checker on synchronous-release entry
// sets.
func TestFeasibleSortedMatchesResourceFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		t0 := r.Uniform(0, 20)
		n := 1 + r.Intn(8)
		entries := make([]Entry, n)
		for i := range entries {
			rem := r.Uniform(0.5, 6)
			entries[i] = Entry{
				ReadyAt:  t0,
				Deadline: t0 + rem*r.Uniform(0.7, 4),
				Rem:      rem,
			}
		}
		// Sort ascending by deadline (no pinned entries here: that is the
		// preemptive-resource case).
		sort.Slice(entries, func(a, b int) bool { return entries[a].Deadline < entries[b].Deadline })
		want := ResourceFeasible(true, t0, entries)
		got := FeasibleSorted(t0, entries)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestFeasibleSortedPinnedFirst checks the non-preemptable occupant case.
func TestFeasibleSortedPinnedFirst(t *testing.T) {
	// Pinned occupant (late deadline) first, then a tight entry that fits
	// only if the occupant is accounted first.
	entries := []Entry{
		{ReadyAt: 0, Deadline: 30, Rem: 4, PinnedFirst: true},
		{ReadyAt: 0, Deadline: 10, Rem: 5},
	}
	if !FeasibleSorted(0, entries) {
		t.Fatal("feasible pinned layout rejected")
	}
	got := ResourceFeasible(false, 0, entries)
	if !got {
		t.Fatal("ResourceFeasible disagrees on pinned layout")
	}
	// Tighten: the tight entry now misses behind the occupant.
	entries[1].Deadline = 8.5
	if FeasibleSorted(0, entries) {
		t.Fatal("infeasible pinned layout accepted")
	}
	if ResourceFeasible(false, 0, entries) {
		t.Fatal("ResourceFeasible disagrees on infeasible pinned layout")
	}
}

// TestFeasibleSortedEmpty is the trivial case.
func TestFeasibleSortedEmpty(t *testing.T) {
	if !FeasibleSorted(5, nil) {
		t.Fatal("empty set must be feasible")
	}
}
