package sched

import (
	"sync"
	"testing"

	"predrm/internal/rng"
)

// randEntry draws an entry around activation time t, occasionally released
// in the future (the predicted job) or pinned.
func randEntry(r *rng.Rand, t float64) Entry {
	e := Entry{
		ReadyAt:  t,
		Deadline: t + r.Uniform(1, 100),
		Rem:      r.Uniform(0.5, 5),
	}
	if r.Float64() < 0.2 {
		e.ReadyAt = t + r.Uniform(0.1, 5)
	}
	if r.Float64() < 0.15 {
		e.PinnedFirst = true
	}
	return e
}

// TestFingerprintMultiset: the digest must identify the entry multiset —
// independent of insertion order — and distinguish different multisets,
// preemption modes, and duplicated entries.
func TestFingerprintMultiset(t *testing.T) {
	r := rng.New(99)
	now := 42.5
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(6)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = randEntry(r, now)
		}
		var a, b EntryList
		a.EnableFingerprint(now)
		b.EnableFingerprint(now)
		for _, e := range entries {
			a.Insert(now, e)
		}
		// Insert into b in reverse order: same multiset, different history.
		for i := n - 1; i >= 0; i-- {
			b.Insert(now, entries[i])
		}
		if a.FeasFingerprint(true) != b.FeasFingerprint(true) {
			t.Fatalf("trial %d: same multiset, different fingerprints", trial)
		}
		if a.FeasFingerprint(true) == a.FeasFingerprint(false) {
			t.Fatalf("trial %d: preemption mode not part of the key", trial)
		}
		// A duplicated entry must not cancel out of the digest.
		dup := entries[r.Intn(n)]
		pos1 := a.Insert(now, dup)
		pos2 := a.Insert(now, dup)
		with2 := a.FeasFingerprint(true)
		a.Remove(now, pos2)
		with1 := a.FeasFingerprint(true)
		a.Remove(now, pos1)
		back := a.FeasFingerprint(true)
		if with2 == back || with1 == back || with2 == with1 {
			t.Fatalf("trial %d: duplicate entries collapsed in the digest", trial)
		}
		if back != b.FeasFingerprint(true) {
			t.Fatalf("trial %d: insert/remove did not restore the digest", trial)
		}
	}
}

// TestFingerprintChurn: under an arbitrary interleaving of Insert and
// Remove — the exact access pattern of the repair path, which retains a
// previous mapping and then trial-places the delta — the incrementally
// maintained digest must at every step equal the digest of a fresh list
// rebuilt from the surviving multiset. A divergence here would silently
// poison the cross-activation feasibility cache.
func TestFingerprintChurn(t *testing.T) {
	r := rng.New(1234)
	now := 17.25
	for trial := 0; trial < 50; trial++ {
		var l EntryList
		l.EnableFingerprint(now)
		var live []Entry
		var pos []int // pos[i] is the list position entry live[i] occupies
		for step := 0; step < 120; step++ {
			if len(live) == 0 || r.Float64() < 0.55 {
				e := randEntry(r, now)
				p := l.Insert(now, e)
				// Insertion at p shifts every tracked position >= p.
				for i := range pos {
					if pos[i] >= p {
						pos[i]++
					}
				}
				live = append(live, e)
				pos = append(pos, p)
			} else {
				i := r.Intn(len(live))
				p := pos[i]
				l.Remove(now, p)
				for k := range pos {
					if pos[k] > p {
						pos[k]--
					}
				}
				live[i] = live[len(live)-1]
				pos[i] = pos[len(pos)-1]
				live, pos = live[:len(live)-1], pos[:len(pos)-1]
			}
			if err := l.Invariant(now); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			var fresh EntryList
			fresh.EnableFingerprint(now)
			for _, e := range live {
				fresh.Insert(now, e)
			}
			for _, pre := range []bool{false, true} {
				if l.FeasFingerprint(pre) != fresh.FeasFingerprint(pre) {
					t.Fatalf("trial %d step %d preemptable=%v: incremental digest diverged from rebuilt list (%d live entries)",
						trial, step, pre, len(live))
				}
			}
		}
	}
}

// TestFingerprintShiftInvariance: the same relative state at two different
// activation times must produce the same key — that is what makes the
// cache effective across RM activations.
func TestFingerprintShiftInvariance(t *testing.T) {
	var a, b EntryList
	a.EnableFingerprint(10)
	b.EnableFingerprint(500)
	for _, rel := range []struct{ ready, dl, rem float64 }{
		{0, 20, 5}, {3.5, 40, 7.25}, {0, 12.5, 1},
	} {
		a.Insert(10, Entry{ReadyAt: 10 + rel.ready, Deadline: 10 + rel.dl, Rem: rel.rem})
		b.Insert(500, Entry{ReadyAt: 500 + rel.ready, Deadline: 500 + rel.dl, Rem: rel.rem})
	}
	if a.FeasFingerprint(true) != b.FeasFingerprint(true) {
		t.Fatal("time-shifted identical relative state produced different keys")
	}
}

// TestCopyFrom: the copy must be deep (mutations independent) and carry
// counters and fingerprint state.
func TestCopyFrom(t *testing.T) {
	r := rng.New(7)
	now := 5.0
	var src EntryList
	src.EnableFingerprint(now)
	for i := 0; i < 8; i++ {
		src.Insert(now, randEntry(r, now))
	}
	var dst EntryList
	dst.CopyFrom(&src)
	if err := dst.Invariant(now); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() || dst.Future() != src.Future() {
		t.Fatalf("copy mismatch: len %d/%d future %d/%d", dst.Len(), src.Len(), dst.Future(), src.Future())
	}
	if dst.FeasFingerprint(true) != src.FeasFingerprint(true) {
		t.Fatal("fingerprint not carried by CopyFrom")
	}
	// Mutating the copy must not disturb the source.
	before := src.FeasFingerprint(true)
	dst.Insert(now, randEntry(r, now))
	if src.FeasFingerprint(true) != before || src.Len() == dst.Len() {
		t.Fatal("CopyFrom aliases the source storage")
	}
	// And a second CopyFrom resets the destination.
	dst.CopyFrom(&src)
	if dst.FeasFingerprint(true) != before {
		t.Fatal("repeated CopyFrom did not restore the source state")
	}
}

// TestFeasCacheBasics: store/lookup round-trips, unknown keys miss, and
// the sweep retires entries that stop being touched.
func TestFeasCacheBasics(t *testing.T) {
	c := NewFeasCache(64)
	fp := Fp{Hi: 0xdeadbeefcafef00d, Lo: 0x12345}
	if _, ok := c.Lookup(fp); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Store(fp, true)
	if v, ok := c.Lookup(fp); !ok || !v {
		t.Fatalf("lookup after store: v=%v ok=%v", v, ok)
	}
	c.Store(fp, false) // same key, updated verdict (cannot happen in use, but must not corrupt)
	if v, ok := c.Lookup(fp); !ok || v {
		t.Fatalf("overwrite lost: v=%v ok=%v", v, ok)
	}
	// A colliding key (same slot, different tag) evicts.
	fp2 := Fp{Hi: 0x1111111111111110, Lo: fp.Lo}
	c.Store(fp2, true)
	if _, ok := c.Lookup(fp); ok {
		t.Fatal("evicted key still present")
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatal("eviction not counted")
	}
	// Epoch sweep: untouched entries die after TTLEpochs+slack advances.
	for i := 0; i < TTLEpochs+3; i++ {
		c.Advance()
	}
	if _, ok := c.Lookup(fp2); ok {
		t.Fatal("sweep did not retire a stale entry")
	}
	if s := c.Stats(); s.Swept == 0 {
		t.Fatal("sweep not counted")
	}
}

// TestFeasCacheKeepsHotEntries: a key touched every epoch survives far
// beyond the TTL.
func TestFeasCacheKeepsHotEntries(t *testing.T) {
	c := NewFeasCache(64)
	fp := Fp{Hi: 0xabcdef, Lo: 7}
	c.Store(fp, true)
	for i := 0; i < 4*TTLEpochs; i++ {
		c.Advance()
		if _, ok := c.Lookup(fp); !ok {
			t.Fatalf("hot entry retired at epoch %d", i)
		}
	}
}

// TestFeasCacheConcurrent hammers one cache from several goroutines under
// the race detector: concurrent Lookup/Store on overlapping keys must stay
// safe, and any hit must return the stored truth for that key (keys encode
// their verdict here so a cross-key corruption is detectable).
func TestFeasCacheConcurrent(t *testing.T) {
	c := NewFeasCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 20000; i++ {
				k := uint64(r.Intn(512))
				// Verdict derived from the key: hits are verifiable.
				want := k%3 == 0
				fp := Fp{Hi: mix64(k) &^ 1, Lo: mix64(k ^ 0x5bd1e995)}
				if v, ok := c.Lookup(fp); ok && v != want {
					panic("cache returned a verdict for the wrong key")
				}
				c.Store(fp, want)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	c.AddStats(10, 5)
	if s := c.Stats(); s.Hits != 10 || s.Misses != 5 || s.HitRate() < 0.6 || s.HitRate() > 0.7 {
		t.Fatalf("stats: %+v rate %v", s, s.HitRate())
	}
}

// TestFeasCacheNil: every method must be nil-safe so a disabled cache
// costs one branch.
func TestFeasCacheNil(t *testing.T) {
	var c *FeasCache
	if _, ok := c.Lookup(Fp{Hi: 1, Lo: 1}); ok {
		t.Fatal("nil cache hit")
	}
	c.Store(Fp{Hi: 1, Lo: 1}, true)
	c.Advance()
	c.AddStats(1, 1)
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil stats: %+v", s)
	}
}
