package sched

// Eps is the absolute tolerance used in schedule arithmetic. Times in the
// simulated system are O(1..1e4), so 1e-9 is far below any meaningful gap.
const Eps = 1e-9

// Entry is one job proposed on one resource for a feasibility check.
type Entry struct {
	// ReadyAt is when the entry becomes available, never before the check
	// time. Real jobs are ready immediately; the predicted job at
	// max(s_p, t).
	ReadyAt float64
	// Deadline is the absolute deadline.
	Deadline float64
	// Rem is the execution demand on this resource, including migration
	// overhead (cpm).
	Rem float64
	// PinnedFirst marks the job currently executing on a non-preemptable
	// resource; it must be served before anything else there.
	PinnedFirst bool
}

// Segment is a contiguous piece of the constructed schedule: entry Index
// runs on the resource during [Start, End).
type Segment struct {
	Index      int
	Start, End float64
}

// SimulateEDF constructs the earliest-deadline-first schedule of entries on
// a single resource starting at time t and reports whether every entry
// meets its deadline. On preemptable resources EDF is preemptive (a release
// may preempt the running entry); on non-preemptable resources dispatch is
// non-preemptive: once an entry starts it runs to completion, and a
// PinnedFirst entry (already mid-execution) is served before all others.
//
// This event simulation is exactly the schedule the paper's MILP
// constraints (3)-(14) encode piecewise: EDF ordering per resource, the
// predicted task starting at max(s_p, q_i) when its deadline is latest, and
// the two-chunk preemption split otherwise.
//
// The returned segments describe the schedule even when infeasible (up to
// the point each entry completes); feasible is false as soon as any entry
// finishes past its deadline.
func SimulateEDF(preemptable bool, t float64, entries []Entry) (segs []Segment, feasible bool) {
	n := len(entries)
	if n == 0 {
		return nil, true
	}
	rem := make([]float64, n)
	for i, e := range entries {
		rem[i] = e.Rem
	}
	feasible = true
	now := t
	var running = Unmapped // entry currently committed on a non-preemptable resource
	for {
		// Find the entry to run now.
		pick := Unmapped
		if !preemptable && running != Unmapped && rem[running] > Eps {
			pick = running
		} else {
			running = Unmapped
			pinnedPick := Unmapped
			for i := range entries {
				if rem[i] <= Eps || entries[i].ReadyAt > now+Eps {
					continue
				}
				if !preemptable && entries[i].PinnedFirst {
					// A mid-execution occupant goes before everything else;
					// among several (an impossible state for a real
					// simulation, but solvers accept arbitrary Problems)
					// the earliest deadline is served first, so dispatch
					// does not depend on entry order.
					if pinnedPick == Unmapped || entries[i].Deadline < entries[pinnedPick].Deadline-Eps {
						pinnedPick = i
					}
					continue
				}
				if pick == Unmapped || entries[i].Deadline < entries[pick].Deadline-Eps {
					pick = i
				}
			}
			if pinnedPick != Unmapped {
				pick = pinnedPick
			}
		}
		if pick == Unmapped {
			// Idle: jump to the next release, or finish.
			next := 0.0
			found := false
			for i := range entries {
				if rem[i] > Eps && (!found || entries[i].ReadyAt < next) {
					next = entries[i].ReadyAt
					found = true
				}
			}
			if !found {
				return segs, feasible
			}
			now = next
			continue
		}
		until := now + rem[pick]
		if preemptable {
			// Break at the next future release so a newly ready entry can
			// preempt. With at most one future release (the predicted
			// task) this costs one extra segment.
			for i := range entries {
				if rem[i] > Eps && entries[i].ReadyAt > now+Eps && entries[i].ReadyAt < until {
					until = entries[i].ReadyAt
				}
			}
		} else {
			running = pick
		}
		ran := until - now
		rem[pick] -= ran
		if len(segs) > 0 && segs[len(segs)-1].Index == pick && segs[len(segs)-1].End >= now-Eps {
			segs[len(segs)-1].End = until
		} else {
			segs = append(segs, Segment{Index: pick, Start: now, End: until})
		}
		now = until
		if rem[pick] <= Eps {
			rem[pick] = 0
			if !preemptable {
				running = Unmapped
			}
			if now > entries[pick].Deadline+Eps {
				feasible = false
			}
		}
	}
}

// ResourceFeasible reports whether entries are EDF-schedulable on a single
// resource from time t. It is SimulateEDF without schedule construction,
// plus cheap necessary-condition cuts, and is the hot path of every RM.
// Callers in a solver loop should prefer ResourceFeasibleScratch with a
// reused EDFScratch to avoid the per-call buffer allocations.
func ResourceFeasible(preemptable bool, t float64, entries []Entry) bool {
	return ResourceFeasibleScratch(preemptable, t, entries, nil)
}

// ResourceFeasibleScratch is ResourceFeasible with caller-provided scratch
// buffers; with a reused non-nil scratch the check performs no allocations
// in steady state. A nil scratch falls back to per-call buffers.
func ResourceFeasibleScratch(preemptable bool, t float64, entries []Entry, s *EDFScratch) bool {
	// Necessary condition: each entry alone must fit its window.
	for _, e := range entries {
		if e.Rem > e.Deadline-maxf(e.ReadyAt, t)+Eps {
			return false
		}
	}
	if len(entries) <= 1 {
		return true
	}
	var local EDFScratch
	if s == nil {
		s = &local
	}
	// Fast path: all ready now, no pinned entry ordering concerns beyond
	// EDF — cumulative EDF check without simulation.
	simple := true
	for _, e := range entries {
		if e.ReadyAt > t+Eps {
			simple = false
			break
		}
	}
	if simple {
		return allReadyFeasible(preemptable, t, entries, s)
	}
	return feasibleEDF(preemptable, t, entries, s)
}

// allReadyFeasible checks EDF feasibility when every entry is ready at t.
// With synchronous release, preemptive and non-preemptive EDF coincide and
// feasibility is the cumulative-demand check over the deadline order — with
// the exception that a pinned entry is served first on non-preemptable
// resources. The service order is built in the scratch's index buffer with
// an insertion sort: entry counts per resource are small, and the stable
// in-place sort keeps the check allocation-free.
func allReadyFeasible(preemptable bool, t float64, entries []Entry, s *EDFScratch) bool {
	order := s.order[:0]
	if cap(order) < len(entries) {
		order = make([]int, 0, len(entries))
	}
	for i := range entries {
		order = append(order, i)
	}
	s.order = order
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && entryBefore(preemptable, &entries[order[k]], &entries[order[k-1]]); k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	finish := t
	for _, idx := range order {
		finish += entries[idx].Rem
		if finish > entries[idx].Deadline+Eps {
			return false
		}
	}
	return true
}

// entryBefore is the strict service order of allReadyFeasible: the pinned
// occupant of a non-preemptable resource first, then ascending deadline.
// Equal keys keep input order via the stable insertion sort.
func entryBefore(preemptable bool, a, b *Entry) bool {
	if !preemptable && a.PinnedFirst != b.PinnedFirst {
		return a.PinnedFirst
	}
	return a.Deadline < b.Deadline
}

// feasibleEDF is SimulateEDF without schedule construction: it reports
// deadline feasibility only, returning at the first miss, and takes its
// remaining-work buffer from the scratch. The dispatch rules are identical
// to SimulateEDF's.
func feasibleEDF(preemptable bool, t float64, entries []Entry, s *EDFScratch) bool {
	n := len(entries)
	rem := s.rem
	if cap(rem) < n {
		rem = make([]float64, n)
	}
	rem = rem[:n]
	s.rem = rem
	for i, e := range entries {
		rem[i] = e.Rem
	}
	now := t
	var running = Unmapped // entry currently committed on a non-preemptable resource
	for {
		pick := Unmapped
		if !preemptable && running != Unmapped && rem[running] > Eps {
			pick = running
		} else {
			running = Unmapped
			pinnedPick := Unmapped
			for i := range entries {
				if rem[i] <= Eps || entries[i].ReadyAt > now+Eps {
					continue
				}
				if !preemptable && entries[i].PinnedFirst {
					// Earliest-deadline pinned occupant first (see
					// SimulateEDF): dispatch independent of entry order.
					if pinnedPick == Unmapped || entries[i].Deadline < entries[pinnedPick].Deadline-Eps {
						pinnedPick = i
					}
					continue
				}
				if pick == Unmapped || entries[i].Deadline < entries[pick].Deadline-Eps {
					pick = i
				}
			}
			if pinnedPick != Unmapped {
				pick = pinnedPick
			}
		}
		if pick == Unmapped {
			// Idle: jump to the next release, or finish.
			next := 0.0
			found := false
			for i := range entries {
				if rem[i] > Eps && (!found || entries[i].ReadyAt < next) {
					next = entries[i].ReadyAt
					found = true
				}
			}
			if !found {
				return true
			}
			now = next
			continue
		}
		until := now + rem[pick]
		if preemptable {
			// Break at the next future release so a newly ready entry can
			// preempt.
			for i := range entries {
				if rem[i] > Eps && entries[i].ReadyAt > now+Eps && entries[i].ReadyAt < until {
					until = entries[i].ReadyAt
				}
			}
		} else {
			running = pick
		}
		rem[pick] -= until - now
		now = until
		if rem[pick] <= Eps {
			rem[pick] = 0
			if !preemptable {
				running = Unmapped
			}
			if now > entries[pick].Deadline+Eps {
				return false
			}
		}
	}
}

// FeasibleSorted checks EDF feasibility of entries that are all ready at t
// and already ordered for service — pinned occupants first (by deadline
// among themselves), then non-decreasing deadline, i.e. the order
// EntryList maintains. With synchronous release the cumulative-demand scan
// is exact for both preemptive and non-preemptive resources; it is the
// allocation-free hot path of the mapping solvers, which keep their
// per-resource entry lists sorted incrementally.
func FeasibleSorted(t float64, entries []Entry) bool {
	finish := t
	for i := range entries {
		finish += entries[i].Rem
		if finish > entries[i].Deadline+Eps {
			return false
		}
	}
	return true
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
