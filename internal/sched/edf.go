package sched

import "sort"

// Eps is the absolute tolerance used in schedule arithmetic. Times in the
// simulated system are O(1..1e4), so 1e-9 is far below any meaningful gap.
const Eps = 1e-9

// Entry is one job proposed on one resource for a feasibility check.
type Entry struct {
	// ReadyAt is when the entry becomes available, never before the check
	// time. Real jobs are ready immediately; the predicted job at
	// max(s_p, t).
	ReadyAt float64
	// Deadline is the absolute deadline.
	Deadline float64
	// Rem is the execution demand on this resource, including migration
	// overhead (cpm).
	Rem float64
	// PinnedFirst marks the job currently executing on a non-preemptable
	// resource; it must be served before anything else there.
	PinnedFirst bool
}

// Segment is a contiguous piece of the constructed schedule: entry Index
// runs on the resource during [Start, End).
type Segment struct {
	Index      int
	Start, End float64
}

// SimulateEDF constructs the earliest-deadline-first schedule of entries on
// a single resource starting at time t and reports whether every entry
// meets its deadline. On preemptable resources EDF is preemptive (a release
// may preempt the running entry); on non-preemptable resources dispatch is
// non-preemptive: once an entry starts it runs to completion, and a
// PinnedFirst entry (already mid-execution) is served before all others.
//
// This event simulation is exactly the schedule the paper's MILP
// constraints (3)-(14) encode piecewise: EDF ordering per resource, the
// predicted task starting at max(s_p, q_i) when its deadline is latest, and
// the two-chunk preemption split otherwise.
//
// The returned segments describe the schedule even when infeasible (up to
// the point each entry completes); feasible is false as soon as any entry
// finishes past its deadline.
func SimulateEDF(preemptable bool, t float64, entries []Entry) (segs []Segment, feasible bool) {
	n := len(entries)
	if n == 0 {
		return nil, true
	}
	rem := make([]float64, n)
	for i, e := range entries {
		rem[i] = e.Rem
	}
	feasible = true
	now := t
	started := make([]bool, n) // for non-preemptive run-to-completion
	var running = Unmapped     // entry currently committed on a non-preemptable resource
	for {
		// Find the entry to run now.
		pick := Unmapped
		if !preemptable && running != Unmapped && rem[running] > Eps {
			pick = running
		} else {
			running = Unmapped
			for i := range entries {
				if rem[i] <= Eps || entries[i].ReadyAt > now+Eps {
					continue
				}
				if !preemptable && entries[i].PinnedFirst {
					// The mid-execution occupant goes first, always.
					pick = i
					break
				}
				if pick == Unmapped || entries[i].Deadline < entries[pick].Deadline-Eps {
					pick = i
				}
			}
		}
		if pick == Unmapped {
			// Idle: jump to the next release, or finish.
			next := 0.0
			found := false
			for i := range entries {
				if rem[i] > Eps && (!found || entries[i].ReadyAt < next) {
					next = entries[i].ReadyAt
					found = true
				}
			}
			if !found {
				return segs, feasible
			}
			now = next
			continue
		}
		until := now + rem[pick]
		if preemptable {
			// Break at the next future release so a newly ready entry can
			// preempt. With at most one future release (the predicted
			// task) this costs one extra segment.
			for i := range entries {
				if rem[i] > Eps && entries[i].ReadyAt > now+Eps && entries[i].ReadyAt < until {
					until = entries[i].ReadyAt
				}
			}
		} else {
			started[pick] = true
			running = pick
		}
		ran := until - now
		rem[pick] -= ran
		if len(segs) > 0 && segs[len(segs)-1].Index == pick && segs[len(segs)-1].End >= now-Eps {
			segs[len(segs)-1].End = until
		} else {
			segs = append(segs, Segment{Index: pick, Start: now, End: until})
		}
		now = until
		if rem[pick] <= Eps {
			rem[pick] = 0
			if !preemptable {
				running = Unmapped
			}
			if now > entries[pick].Deadline+Eps {
				feasible = false
			}
		}
	}
}

// ResourceFeasible reports whether entries are EDF-schedulable on a single
// resource from time t. It is SimulateEDF without schedule construction,
// plus cheap necessary-condition cuts, and is the hot path of every RM.
func ResourceFeasible(preemptable bool, t float64, entries []Entry) bool {
	// Necessary condition: each entry alone must fit its window.
	for _, e := range entries {
		if e.Rem > e.Deadline-maxf(e.ReadyAt, t)+Eps {
			return false
		}
	}
	if len(entries) <= 1 {
		return true
	}
	// Fast path: all ready now, no pinned entry ordering concerns beyond
	// EDF — cumulative EDF check without simulation.
	simple := true
	for _, e := range entries {
		if e.ReadyAt > t+Eps {
			simple = false
			break
		}
	}
	if simple {
		return allReadyFeasible(preemptable, t, entries)
	}
	_, ok := SimulateEDF(preemptable, t, entries)
	return ok
}

// allReadyFeasible checks EDF feasibility when every entry is ready at t.
// With synchronous release, preemptive and non-preemptive EDF coincide and
// feasibility is the cumulative-demand check over the deadline order — with
// the exception that a pinned entry is served first on non-preemptable
// resources.
func allReadyFeasible(preemptable bool, t float64, entries []Entry) bool {
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := entries[order[a]], entries[order[b]]
		if !preemptable {
			if ea.PinnedFirst != eb.PinnedFirst {
				return ea.PinnedFirst
			}
		}
		if ea.Deadline != eb.Deadline {
			return ea.Deadline < eb.Deadline
		}
		return order[a] < order[b]
	})
	finish := t
	for _, idx := range order {
		finish += entries[idx].Rem
		if finish > entries[idx].Deadline+Eps {
			return false
		}
	}
	return true
}

// FeasibleSorted checks EDF feasibility of entries that are all ready at t
// and already ordered for service — a pinned occupant first, then
// non-decreasing deadline. With synchronous release the cumulative-demand
// scan is exact for both preemptive and non-preemptive resources; it is
// the allocation-free hot path of the branch-and-bound solver, which keeps
// its per-resource entry lists sorted incrementally.
func FeasibleSorted(t float64, entries []Entry) bool {
	finish := t
	for i := range entries {
		finish += entries[i].Rem
		if finish > entries[i].Deadline+Eps {
			return false
		}
	}
	return true
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
