// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  a_iᵀx {≤,=,≥} b_i,   x ≥ 0.
//
// It exists because this repository must encode the paper's MILP
// formulation (Sec 4.2) without any external solver: internal/milp adds
// branch and bound on top, and internal/milpform lowers the paper's
// constraints onto it. The implementation favours clarity and numerical
// robustness (Bland's anti-cycling rule, explicit tolerances) over speed;
// problem sizes here are tens of variables.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int

const (
	// LE is a_iᵀx ≤ b_i.
	LE Sense = iota
	// GE is a_iᵀx ≥ b_i.
	GE
	// EQ is a_iᵀx = b_i.
	EQ
)

// String returns the relation symbol.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Constraint is one linear constraint. Coeffs is indexed by variable and
// may be shorter than the problem's variable count (missing entries are
// zero).
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over NumVars non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // minimized; may be shorter than NumVars
	Constraints []Constraint
}

// Validate checks structural sanity.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return errors.New("lp: NumVars must be positive")
	}
	if len(p.Objective) > p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients for %d variables", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", i, len(c.Coeffs), p.NumVars)
		}
		if c.Sense != LE && c.Sense != GE && c.Sense != EQ {
			return fmt.Errorf("lp: constraint %d has unknown sense", i)
		}
		for _, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: constraint %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has non-finite RHS", i)
		}
	}
	return nil
}

// Status classifies a solve outcome.
type Status int

const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraint set is empty.
	Infeasible
	// Unbounded: the objective decreases without bound.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values when Optimal
	Objective float64   // cᵀx when Optimal
}

const (
	tol      = 1e-9
	maxIters = 200000
)

// tableau is a dense simplex tableau in equality form.
type tableau struct {
	rows, cols int // cols excludes the RHS column
	a          [][]float64
	rhs        []float64
	basis      []int
}

// Solve minimizes the problem with the two-phase primal simplex method.
func Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	m := len(p.Constraints)
	n := p.NumVars

	// Count auxiliary columns.
	slacks := 0
	for _, c := range p.Constraints {
		if c.Sense != EQ {
			slacks++
		}
	}
	// One artificial per row keeps the construction simple; unneeded ones
	// (rows whose slack can serve as basis) are skipped below.
	t := &tableau{rows: m}
	t.cols = n + slacks + m
	t.a = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)

	artStart := n + slacks
	numArt := 0
	slackIdx := n
	for i, c := range p.Constraints {
		row := make([]float64, t.cols)
		for j, v := range c.Coeffs {
			row[j] = v
		}
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			row[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artStart+numArt] = 1
			t.basis[i] = artStart + numArt
			numArt++
		case EQ:
			row[artStart+numArt] = 1
			t.basis[i] = artStart + numArt
			numArt++
		}
		t.a[i] = row
		t.rhs[i] = rhs
	}
	t.cols = artStart + numArt
	for i := range t.a {
		t.a[i] = t.a[i][:t.cols]
	}

	// Phase 1: minimize the sum of artificials.
	if numArt > 0 {
		phase1 := make([]float64, t.cols)
		for j := artStart; j < t.cols; j++ {
			phase1[j] = 1
		}
		status, err := t.optimize(phase1, artStart)
		if err != nil {
			return Solution{}, err
		}
		if status == Unbounded {
			return Solution{}, errors.New("lp: phase 1 unbounded (internal error)")
		}
		if t.objectiveValue(phase1) > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			// If no structural column can replace it the row is redundant;
			// the artificial then stays basic at zero, which is harmless
			// because artificials are barred from re-entering in phase 2.
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > tol {
					t.pivot(i, j)
					break
				}
			}
		}
	}

	// Phase 2: original objective, artificial columns barred.
	obj := make([]float64, t.cols)
	for j, v := range p.Objective {
		obj[j] = v
	}
	status, err := t.optimize(obj, artStart)
	if err != nil {
		return Solution{}, err
	}
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.rhs[i]
		}
	}
	val := 0.0
	for j, v := range p.Objective {
		val += v * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: val}, nil
}

// objectiveValue computes cᵀx_B for the current basis.
func (t *tableau) objectiveValue(c []float64) float64 {
	v := 0.0
	for i, b := range t.basis {
		v += c[b] * t.rhs[i]
	}
	return v
}

// optimize runs primal simplex for cost vector c. Columns ≥ barFrom may
// not enter the basis (used to bar artificials in phase 2).
func (t *tableau) optimize(c []float64, barFrom int) (Status, error) {
	for iter := 0; iter < maxIters; iter++ {
		// Reduced costs: r_j = c_j − c_Bᵀ B⁻¹ A_j. In tableau form the
		// rows already hold B⁻¹A, so r_j = c_j − Σ_i c_{basis_i} a_{i,j}.
		// Artificial columns (index ≥ barFrom) may never (re-)enter: once
		// driven out they are conceptually deleted.
		enter := -1
		for j := 0; j < barFrom && enter == -1; j++ {
			r := c[j]
			for i, b := range t.basis {
				if cb := c[b]; cb != 0 {
					r -= cb * t.a[i][j]
				}
			}
			if r < -tol {
				enter = j // Bland: first improving index
			}
		}
		if enter == -1 {
			return Optimal, nil
		}
		// Ratio test (Bland ties: smallest basis variable index).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			if t.a[i][enter] > tol {
				ratio := t.rhs[i] / t.a[i][enter]
				if ratio < best-tol || (ratio < best+tol && (leave == -1 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
	return 0, errors.New("lp: iteration limit exceeded")
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	for j := 0; j < t.cols; j++ {
		t.a[leave][j] *= inv
	}
	t.rhs[leave] *= inv
	t.a[leave][enter] = 1 // exact
	for i := 0; i < t.rows; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.a[i][j] -= f * t.a[leave][j]
		}
		t.a[i][enter] = 0 // exact
		t.rhs[i] -= f * t.rhs[leave]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	t.basis[leave] = enter
}
