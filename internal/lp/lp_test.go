package lp

import (
	"math"
	"strings"
	"testing"

	"predrm/internal/rng"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleMaximizationAsMin(t *testing.T) {
	// max 3x + 2y s.t. x+y ≤ 4, x+3y ≤ 6  → min −3x −2y; optimum x=4,y=0.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Sense: LE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Objective-(-12)) > 1e-7 || math.Abs(s.X[0]-4) > 1e-7 {
		t.Fatalf("got obj %v x %v", s.Objective, s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + y s.t. x + y = 2, x ≥ 0.5 → obj 2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 2},
			{Coeffs: []float64{1, 0}, Sense: GE, RHS: 0.5},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-2) > 1e-7 {
		t.Fatalf("got %v obj %v", s.Status, s.Objective)
	}
	if s.X[0] < 0.5-1e-7 {
		t.Fatalf("x = %v violates x ≥ 0.5", s.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1}, // min −x, x ≥ 0 unconstrained above
	}
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// −x ≤ −2  ⇔  x ≥ 2; min x → 2.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Sense: LE, RHS: -2},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-2) > 1e-7 {
		t.Fatalf("got %v obj %v", s.Status, s.Objective)
	}
}

func TestDegenerateCycleGuard(t *testing.T) {
	// Beale's classic cycling example (with standard pivoting); Bland's
	// rule must terminate at the optimum −0.05.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Sense: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-(-0.05)) > 1e-7 {
		t.Fatalf("got %v obj %v, want optimal -0.05", s.Status, s.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicated equality rows create a redundant artificial.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 3},
			{Coeffs: []float64{2, 2}, Sense: EQ, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Objective-3) > 1e-7 {
		t.Fatalf("got %v obj %v, want 3 (x=3,y=0)", s.Status, s.Objective)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []*Problem{
		{NumVars: 0},
		{NumVars: 1, Objective: []float64{1, 2}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1, 2}}}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1}, Sense: Sense(9)}}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{math.NaN()}}}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1}, RHS: math.Inf(1)}}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: Solve accepted invalid problem", i)
		}
	}
}

func TestStatusAndSenseStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings wrong")
	}
	if !strings.HasPrefix(Status(9).String(), "Status(") {
		t.Fatal("unknown status string")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("sense strings wrong")
	}
	if !strings.HasPrefix(Sense(9).String(), "Sense(") {
		t.Fatal("unknown sense string")
	}
}

// bruteForceVertex enumerates basic solutions of small problems by solving
// every square subsystem (via Gaussian elimination) and returns the best
// feasible objective — an independent check of simplex optimality.
func bruteForceVertex(p *Problem) (float64, bool) {
	// Build equality system with slacks: A x = b over n + s variables.
	type row struct {
		coeffs []float64
		rhs    float64
	}
	n := p.NumVars
	var rows []row
	slack := 0
	for _, c := range p.Constraints {
		if c.Sense != EQ {
			slack++
		}
	}
	total := n + slack
	si := 0
	for _, c := range p.Constraints {
		r := row{coeffs: make([]float64, total), rhs: c.RHS}
		copy(r.coeffs, c.Coeffs)
		switch c.Sense {
		case LE:
			r.coeffs[n+si] = 1
			si++
		case GE:
			r.coeffs[n+si] = -1
			si++
		}
		rows = append(rows, r)
	}
	m := len(rows)
	best := math.Inf(1)
	found := false
	// Choose m basic columns out of total.
	var choose func(start int, cols []int)
	feasCheck := func(cols []int) {
		// Solve the m x m system for basic values; others zero.
		a := make([][]float64, m)
		for i := range a {
			a[i] = make([]float64, m+1)
			for k, cidx := range cols {
				a[i][k] = rows[i].coeffs[cidx]
			}
			a[i][m] = rows[i].rhs
		}
		// Gaussian elimination with partial pivoting.
		for col := 0; col < m; col++ {
			piv := -1
			bestAbs := 1e-9
			for r := col; r < m; r++ {
				if math.Abs(a[r][col]) > bestAbs {
					bestAbs = math.Abs(a[r][col])
					piv = r
				}
			}
			if piv == -1 {
				return // singular
			}
			a[col], a[piv] = a[piv], a[col]
			inv := 1 / a[col][col]
			for j := col; j <= m; j++ {
				a[col][j] *= inv
			}
			for r := 0; r < m; r++ {
				if r == col {
					continue
				}
				f := a[r][col]
				for j := col; j <= m; j++ {
					a[r][j] -= f * a[col][j]
				}
			}
		}
		x := make([]float64, total)
		for k, cidx := range cols {
			if a[k][m] < -1e-7 {
				return // negative basic variable: infeasible vertex
			}
			x[cidx] = a[k][m]
		}
		obj := 0.0
		for j, v := range p.Objective {
			obj += v * x[j]
		}
		if obj < best {
			best = obj
			found = true
		}
	}
	var cols []int
	choose = func(start int, cols []int) {
		if len(cols) == m {
			feasCheck(cols)
			return
		}
		for c := start; c < total; c++ {
			choose(c+1, append(cols, c))
		}
	}
	choose(0, cols)
	return best, found
}

func TestRandomisedAgainstVertexEnumeration(t *testing.T) {
	r := rng.New(55)
	checked := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(3)
		m := 1 + r.Intn(3)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = r.Uniform(0.1, 5) // positive costs: bounded
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), RHS: r.Uniform(1, 10)}
			for j := range c.Coeffs {
				c.Coeffs[j] = r.Uniform(0, 3)
			}
			switch r.Intn(3) {
			case 0:
				c.Sense = LE
			case 1:
				c.Sense = GE
			case 2:
				c.Sense = EQ
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feas := bruteForceVertex(p)
		if s.Status == Optimal != feas {
			// A GE/EQ row with all-zero coefficients and positive RHS can
			// make vertex enumeration disagree only through tolerance;
			// report loudly.
			t.Fatalf("trial %d: simplex %v, enumeration feasible=%v", trial, s.Status, feas)
		}
		if s.Status != Optimal {
			continue
		}
		checked++
		if math.Abs(s.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: simplex obj %v, enumeration %v", trial, s.Objective, want)
		}
		// Primal feasibility of the returned point.
		for ci, c := range p.Constraints {
			lhs := 0.0
			for j, v := range c.Coeffs {
				lhs += v * s.X[j]
			}
			switch c.Sense {
			case LE:
				if lhs > c.RHS+1e-6 {
					t.Fatalf("trial %d: constraint %d violated", trial, ci)
				}
			case GE:
				if lhs < c.RHS-1e-6 {
					t.Fatalf("trial %d: constraint %d violated", trial, ci)
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > 1e-6 {
					t.Fatalf("trial %d: constraint %d violated", trial, ci)
				}
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d optimal instances checked", checked)
	}
}
