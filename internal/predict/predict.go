// Package predict supplies workload predictors for the resource manager.
//
// The paper deliberately separates prediction from management: its
// evaluation injects predictions of controlled accuracy (Sec 5.4) and
// controlled runtime overhead (Sec 5.5) rather than running a concrete
// predictor. Oracle reproduces that: it knows the trace and corrupts the
// predicted task type with a configurable error probability and the
// predicted arrival time with Gaussian noise calibrated to a target
// normalized RMS error.
//
// For end-to-end use the package also ships lightweight online predictors
// in the spirit of the authors' prior work ([12], [13] in the paper):
// a first-order Markov chain over task types and EWMA / two-phase
// interarrival estimators.
package predict

import (
	"errors"

	"predrm/internal/rng"
	"predrm/internal/trace"
)

// Prediction is the RM-facing forecast of the next request.
type Prediction struct {
	// Type is the predicted task type.
	Type int
	// Arrival is the predicted absolute arrival time s_p.
	Arrival float64
	// Deadline is the predicted relative deadline.
	Deadline float64
}

// Predictor forecasts the next request. Observe is called once per actual
// arrival, in trace order; Predict returns the forecast for the following
// request and false when no forecast is available (cold start or end of
// trace for oracles).
type Predictor interface {
	// Observe feeds the actual request with trace index idx.
	Observe(idx int, req trace.Request)
	// Predict forecasts the request after the last observed one.
	Predict() (Prediction, bool)
	// Overhead returns the prediction's runtime cost in simulated time,
	// charged as RM decision latency (Sec 5.5).
	Overhead() float64
	// Reset clears learned state so the predictor can serve a new trace.
	Reset()
}

// MultiPredictor additionally forecasts several requests ahead — the
// lookahead-horizon extension of the paper's single-step prediction.
type MultiPredictor interface {
	Predictor
	// PredictK forecasts up to k upcoming requests in arrival order; it
	// may return fewer (end of trace, cold start).
	PredictK(k int) []Prediction
}

// Oracle is the evaluation predictor: it reads the true next request from
// the trace and degrades it to the configured accuracy. The zero value is
// not usable; construct with NewOracle.
type Oracle struct {
	trace *trace.Trace
	// typeAccuracy is the probability the predicted type is correct.
	typeAccuracy float64
	// timeError is the target normalized RMS error of predicted arrival
	// times (normalizer: the trace's mean interarrival).
	timeError float64
	overhead  float64
	numTypes  int
	rand      *rng.Rand
	last      int
	sigma     float64
}

// OracleConfig parameterises NewOracle.
type OracleConfig struct {
	// TypeAccuracy in [0,1]: probability the task type is predicted
	// correctly (Fig 4a's accuracy axis). 1 = always right.
	TypeAccuracy float64
	// TimeError in [0,∞): target normalized RMSE of the arrival-time
	// prediction (Fig 4b plots accuracy = 1 − TimeError). 0 = exact.
	TimeError float64
	// Overhead is the prediction latency in simulated time units
	// (Fig 5's x-axis, already multiplied out).
	Overhead float64
	// NumTypes is the task-set size, needed to draw wrong types.
	NumTypes int
	// Seed drives the corruption noise.
	Seed uint64
}

// NewOracle builds an oracle over tr with the given degradation.
func NewOracle(tr *trace.Trace, cfg OracleConfig) (*Oracle, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, errors.New("predict: oracle needs a non-empty trace")
	}
	if cfg.TypeAccuracy < 0 || cfg.TypeAccuracy > 1 {
		return nil, errors.New("predict: TypeAccuracy outside [0,1]")
	}
	if cfg.TimeError < 0 {
		return nil, errors.New("predict: negative TimeError")
	}
	if cfg.Overhead < 0 {
		return nil, errors.New("predict: negative Overhead")
	}
	if cfg.NumTypes <= 0 {
		return nil, errors.New("predict: NumTypes must be positive")
	}
	o := &Oracle{
		trace:        tr,
		typeAccuracy: cfg.TypeAccuracy,
		timeError:    cfg.TimeError,
		overhead:     cfg.Overhead,
		numTypes:     cfg.NumTypes,
		rand:         rng.New(cfg.Seed),
		last:         -1,
	}
	// Gaussian noise with σ = TimeError × mean interarrival yields an
	// expected normalized RMSE of exactly TimeError.
	o.sigma = cfg.TimeError * tr.MeanInterarrival()
	return o, nil
}

// Observe records that request idx has arrived.
func (o *Oracle) Observe(idx int, _ trace.Request) { o.last = idx }

// Predict returns the (degraded) next request.
func (o *Oracle) Predict() (Prediction, bool) {
	ps := o.PredictK(1)
	if len(ps) == 0 {
		return Prediction{}, false
	}
	return ps[0], true
}

// PredictK returns up to k upcoming requests, each independently degraded.
func (o *Oracle) PredictK(k int) []Prediction {
	var out []Prediction
	for step := 1; step <= k; step++ {
		next := o.last + step
		if next >= o.trace.Len() {
			break
		}
		req := o.trace.Requests[next]
		p := Prediction{Type: req.Type, Arrival: req.Arrival, Deadline: req.Deadline}
		if o.typeAccuracy < 1 && o.rand.Float64() >= o.typeAccuracy {
			// Draw a uniformly random *wrong* type.
			wrong := o.rand.Intn(o.numTypes - 1)
			if wrong >= req.Type {
				wrong++
			}
			p.Type = wrong
		}
		if o.sigma > 0 {
			p.Arrival += o.rand.Gaussian(0, o.sigma)
		}
		out = append(out, p)
	}
	return out
}

var _ MultiPredictor = (*Oracle)(nil)

// Overhead returns the configured prediction latency.
func (o *Oracle) Overhead() float64 { return o.overhead }

// Reset rewinds the oracle to the beginning of its trace.
func (o *Oracle) Reset() {
	o.last = -1
	// Note: the corruption stream is deliberately not reseeded; distinct
	// passes see fresh noise. Use a fresh Oracle for exact repeatability.
}

var _ Predictor = (*Oracle)(nil)
