package predict

import (
	"math"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/task"
	"predrm/internal/trace"
)

func testTrace(t *testing.T, n int, seed uint64) *trace.Trace {
	t.Helper()
	set, err := task.Generate(platform.Default(), task.DefaultGenConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultGenConfig(trace.VeryTight)
	cfg.Length = n
	tr, err := trace.Generate(set, cfg, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestOraclePerfect(t *testing.T) {
	tr := testTrace(t, 50, 1)
	o, err := NewOracle(tr, OracleConfig{TypeAccuracy: 1, NumTypes: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len()-1; i++ {
		o.Observe(i, tr.Requests[i])
		p, ok := o.Predict()
		if !ok {
			t.Fatalf("no prediction after observing %d", i)
		}
		next := tr.Requests[i+1]
		if p.Type != next.Type || p.Arrival != next.Arrival || p.Deadline != next.Deadline {
			t.Fatalf("perfect oracle wrong at %d: %+v vs %+v", i, p, next)
		}
	}
	o.Observe(tr.Len()-1, tr.Requests[tr.Len()-1])
	if _, ok := o.Predict(); ok {
		t.Fatal("prediction past end of trace")
	}
}

func TestOracleTypeAccuracy(t *testing.T) {
	tr := testTrace(t, 4000, 2)
	o, err := NewOracle(tr, OracleConfig{TypeAccuracy: 0.75, NumTypes: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < tr.Len()-1; i++ {
		o.Observe(i, tr.Requests[i])
		p, ok := o.Predict()
		if !ok {
			t.Fatal("missing prediction")
		}
		if p.Type == tr.Requests[i+1].Type {
			correct++
		}
	}
	rate := float64(correct) / float64(tr.Len()-1)
	if math.Abs(rate-0.75) > 0.03 {
		t.Fatalf("empirical type accuracy %.3f, want ~0.75", rate)
	}
}

func TestOracleWrongTypeIsNeverTruth(t *testing.T) {
	tr := testTrace(t, 2000, 4)
	o, err := NewOracle(tr, OracleConfig{TypeAccuracy: 0, NumTypes: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len()-1; i++ {
		o.Observe(i, tr.Requests[i])
		p, _ := o.Predict()
		if p.Type == tr.Requests[i+1].Type {
			t.Fatalf("accuracy-0 oracle predicted the true type at %d", i)
		}
		if p.Type < 0 || p.Type >= 100 {
			t.Fatalf("wrong type out of range: %d", p.Type)
		}
	}
}

func TestOracleTimeErrorCalibration(t *testing.T) {
	tr := testTrace(t, 5000, 6)
	const target = 0.25
	o, err := NewOracle(tr, OracleConfig{TypeAccuracy: 1, TimeError: target, NumTypes: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	n := 0
	for i := 0; i < tr.Len()-1; i++ {
		o.Observe(i, tr.Requests[i])
		p, _ := o.Predict()
		d := p.Arrival - tr.Requests[i+1].Arrival
		sumSq += d * d
		n++
	}
	nrmse := math.Sqrt(sumSq/float64(n)) / tr.MeanInterarrival()
	if math.Abs(nrmse-target) > 0.02 {
		t.Fatalf("empirical NRMSE %.4f, want ~%.2f", nrmse, target)
	}
}

func TestOracleOverheadAndValidation(t *testing.T) {
	tr := testTrace(t, 10, 8)
	o, err := NewOracle(tr, OracleConfig{TypeAccuracy: 1, Overhead: 0.3, NumTypes: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Overhead() != 0.3 {
		t.Fatalf("Overhead = %v", o.Overhead())
	}
	bad := []OracleConfig{
		{TypeAccuracy: -0.1, NumTypes: 5},
		{TypeAccuracy: 1.1, NumTypes: 5},
		{TypeAccuracy: 1, TimeError: -1, NumTypes: 5},
		{TypeAccuracy: 1, Overhead: -1, NumTypes: 5},
		{TypeAccuracy: 1},
	}
	for i, cfg := range bad {
		if _, err := NewOracle(tr, cfg); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
	if _, err := NewOracle(nil, OracleConfig{TypeAccuracy: 1, NumTypes: 5}); err == nil {
		t.Error("accepted nil trace")
	}
}

func TestOracleReset(t *testing.T) {
	tr := testTrace(t, 20, 10)
	o, err := NewOracle(tr, OracleConfig{TypeAccuracy: 1, NumTypes: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		o.Observe(i, tr.Requests[i])
	}
	o.Reset()
	o.Observe(0, tr.Requests[0])
	p, ok := o.Predict()
	if !ok || p.Arrival != tr.Requests[1].Arrival {
		t.Fatalf("after Reset, prediction should be request 1: %+v ok=%v", p, ok)
	}
}

func TestMarkovLearnsDeterministicCycle(t *testing.T) {
	// A strict 0→1→2→0 cycle with constant gaps must become perfectly
	// predictable.
	m, err := NewMarkov(3, NewEWMA(0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 30; i++ {
		m.Observe(i, trace.Request{Arrival: now, Type: i % 3, Deadline: 10})
		now += 2
	}
	p, ok := m.Predict()
	if !ok {
		t.Fatal("no prediction")
	}
	if p.Type != 30%3 {
		t.Fatalf("predicted type %d, want %d", p.Type, 30%3)
	}
	if math.Abs(p.Arrival-now) > 1e-9 {
		t.Fatalf("predicted arrival %v, want %v", p.Arrival, now)
	}
	if math.Abs(p.Deadline-10) > 1e-9 {
		t.Fatalf("predicted deadline %v, want 10", p.Deadline)
	}
}

func TestMarkovColdStartAndReset(t *testing.T) {
	m, err := NewMarkov(3, nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Predict(); ok {
		t.Fatal("prediction before any observation")
	}
	if m.Overhead() != 0.1 {
		t.Fatalf("Overhead = %v", m.Overhead())
	}
	m.Observe(0, trace.Request{Arrival: 0, Type: 1, Deadline: 5})
	// One observation: no gap yet → EWMA empty → no prediction.
	if _, ok := m.Predict(); ok {
		t.Fatal("prediction without any interarrival observation")
	}
	m.Observe(1, trace.Request{Arrival: 3, Type: 2, Deadline: 5})
	if _, ok := m.Predict(); !ok {
		t.Fatal("prediction missing after two observations")
	}
	m.Reset()
	if _, ok := m.Predict(); ok {
		t.Fatal("prediction survives Reset")
	}
}

func TestMarkovValidation(t *testing.T) {
	if _, err := NewMarkov(0, nil, 0); err == nil {
		t.Fatal("accepted zero types")
	}
	if _, err := NewMarkov(3, nil, -1); err == nil {
		t.Fatal("accepted negative overhead")
	}
}

func TestMarkovFallbackToMarginal(t *testing.T) {
	// Last observed type has no outgoing transitions: fall back to the
	// marginal mode.
	m, err := NewMarkov(4, NewEWMA(0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(0, trace.Request{Arrival: 0, Type: 1, Deadline: 4})
	m.Observe(1, trace.Request{Arrival: 1, Type: 1, Deadline: 4})
	m.Observe(2, trace.Request{Arrival: 2, Type: 3, Deadline: 6})
	// Type 3 has never been followed by anything; marginal mode is 1.
	p, ok := m.Predict()
	if !ok || p.Type != 1 {
		t.Fatalf("fallback prediction %+v ok=%v, want type 1", p, ok)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if _, ok := e.Predict(); ok {
		t.Fatal("EWMA predicted before data")
	}
	e.Observe(4)
	if g, _ := e.Predict(); g != 4 {
		t.Fatalf("first gap %v, want 4", g)
	}
	e.Observe(8)
	if g, _ := e.Predict(); g != 6 {
		t.Fatalf("smoothed gap %v, want 6", g)
	}
	e.Reset()
	if _, ok := e.Predict(); ok {
		t.Fatal("EWMA survives Reset")
	}
	// Constructor clamps bad alpha.
	if NewEWMA(-1).alpha != 0.2 {
		t.Fatal("bad alpha not clamped")
	}
}

func TestTwoPhaseAlternation(t *testing.T) {
	// Strictly alternating short/long gaps: after the pattern locks in,
	// forecasts should alternate with the phases.
	tp := NewTwoPhase(0.5)
	if _, ok := tp.Predict(); ok {
		t.Fatal("TwoPhase predicted before data")
	}
	gaps := []float64{1, 9, 1, 9, 1, 9, 1, 9, 1, 9}
	for _, g := range gaps {
		tp.Observe(g)
	}
	// Last gap was long (9): next should be short (~1).
	g, ok := tp.Predict()
	if !ok {
		t.Fatal("no prediction")
	}
	if g > 5 {
		t.Fatalf("after long phase predicted %v, want short", g)
	}
	tp.Observe(1)
	g, _ = tp.Predict()
	if g < 5 {
		t.Fatalf("after short phase predicted %v, want long", g)
	}
	tp.Reset()
	if _, ok := tp.Predict(); ok {
		t.Fatal("TwoPhase survives Reset")
	}
}

func TestTwoPhaseSingleObservation(t *testing.T) {
	tp := NewTwoPhase(0.3)
	tp.Observe(3)
	g, ok := tp.Predict()
	if !ok || g != 3 {
		t.Fatalf("single-observation prediction %v ok=%v", g, ok)
	}
}

func TestMarkovAccuracyOnRealTraceBeatsChance(t *testing.T) {
	// On a uniform-random type stream Markov cannot beat chance on types,
	// but its interarrival forecasts must be close to the mean gap.
	tr := testTrace(t, 2000, 12)
	m, err := NewMarkov(100, NewEWMA(0.2), 0)
	if err != nil {
		t.Fatal(err)
	}
	var absErr float64
	n := 0
	for i := 0; i < tr.Len()-1; i++ {
		m.Observe(i, tr.Requests[i])
		if p, ok := m.Predict(); ok {
			absErr += math.Abs(p.Arrival - tr.Requests[i+1].Arrival)
			n++
		}
	}
	mean := tr.MeanInterarrival()
	if n < tr.Len()/2 {
		t.Fatalf("too few predictions: %d", n)
	}
	if avg := absErr / float64(n); avg > mean {
		t.Fatalf("mean arrival error %.3f worse than predicting nothing (mean gap %.3f)", avg, mean)
	}
}
