package predict

import (
	"errors"
	"math"

	"predrm/internal/trace"
)

// Markov predicts the next task type with a first-order Markov chain over
// observed type transitions, falling back to the marginal distribution
// before any transition from the current type has been seen. It estimates
// the next arrival with a pluggable interarrival estimator and the next
// deadline with the running mean relative deadline per type.
//
// This is the "real predictor" counterpart of Oracle: it learns online
// with O(1) inference, matching the paper's requirement of small runtime
// overhead.
type Markov struct {
	numTypes int
	inter    InterarrivalEstimator
	overhead float64

	counts    [][]int // counts[a][b]: transitions a→b
	marginal  []int
	lastType  int
	lastTime  float64
	observed  int
	deadSum   []float64
	deadCount []int
}

// NewMarkov builds an online predictor for numTypes task types using the
// given interarrival estimator (nil defaults to an EWMA with α = 0.2) and
// charging the given overhead per prediction.
func NewMarkov(numTypes int, inter InterarrivalEstimator, overhead float64) (*Markov, error) {
	if numTypes <= 0 {
		return nil, errors.New("predict: NumTypes must be positive")
	}
	if overhead < 0 {
		return nil, errors.New("predict: negative overhead")
	}
	if inter == nil {
		inter = NewEWMA(0.2)
	}
	m := &Markov{numTypes: numTypes, inter: inter, overhead: overhead}
	m.Reset()
	return m, nil
}

var _ Predictor = (*Markov)(nil)

// Observe updates the transition table and interarrival estimator.
func (m *Markov) Observe(_ int, req trace.Request) {
	if m.observed > 0 {
		m.counts[m.lastType][req.Type]++
		m.inter.Observe(req.Arrival - m.lastTime)
	}
	m.marginal[req.Type]++
	m.deadSum[req.Type] += req.Deadline
	m.deadCount[req.Type]++
	m.lastType = req.Type
	m.lastTime = req.Arrival
	m.observed++
}

// Predict forecasts the next request; it needs at least one observation.
func (m *Markov) Predict() (Prediction, bool) {
	if m.observed == 0 {
		return Prediction{}, false
	}
	// Most likely successor of the last type; marginal mode as fallback.
	best, bestCount := -1, 0
	for b, c := range m.counts[m.lastType] {
		if c > bestCount {
			best, bestCount = b, c
		}
	}
	if best == -1 {
		for b, c := range m.marginal {
			if c > bestCount {
				best, bestCount = b, c
			}
		}
	}
	gap, ok := m.inter.Predict()
	if !ok {
		return Prediction{}, false
	}
	deadline := math.NaN()
	if m.deadCount[best] > 0 {
		deadline = m.deadSum[best] / float64(m.deadCount[best])
	} else {
		// Never seen this type's deadline: average over all types.
		var s float64
		var c int
		for ty := range m.deadSum {
			s += m.deadSum[ty]
			c += m.deadCount[ty]
		}
		deadline = s / float64(c)
	}
	return Prediction{Type: best, Arrival: m.lastTime + gap, Deadline: deadline}, true
}

// PredictK chains the Markov argmax k steps ahead, accumulating the gap
// estimate; forecast confidence decays quickly with the horizon, which is
// exactly what the lookahead experiments are meant to expose.
func (m *Markov) PredictK(k int) []Prediction {
	if m.observed == 0 {
		return nil
	}
	gap, ok := m.inter.Predict()
	if !ok {
		return nil
	}
	out := make([]Prediction, 0, k)
	cur := m.lastType
	arrival := m.lastTime
	for step := 0; step < k; step++ {
		best, bestCount := -1, 0
		for b, c := range m.counts[cur] {
			if c > bestCount {
				best, bestCount = b, c
			}
		}
		if best == -1 {
			for b, c := range m.marginal {
				if c > bestCount {
					best, bestCount = b, c
				}
			}
		}
		arrival += gap
		deadline := 0.0
		if m.deadCount[best] > 0 {
			deadline = m.deadSum[best] / float64(m.deadCount[best])
		} else {
			var s float64
			var c int
			for ty := range m.deadSum {
				s += m.deadSum[ty]
				c += m.deadCount[ty]
			}
			deadline = s / float64(c)
		}
		out = append(out, Prediction{Type: best, Arrival: arrival, Deadline: deadline})
		cur = best
	}
	return out
}

var _ MultiPredictor = (*Markov)(nil)

// Overhead returns the configured prediction latency.
func (m *Markov) Overhead() float64 { return m.overhead }

// Reset clears all learned state.
func (m *Markov) Reset() {
	m.counts = make([][]int, m.numTypes)
	for i := range m.counts {
		m.counts[i] = make([]int, m.numTypes)
	}
	m.marginal = make([]int, m.numTypes)
	m.deadSum = make([]float64, m.numTypes)
	m.deadCount = make([]int, m.numTypes)
	m.observed = 0
	m.inter.Reset()
}

// InterarrivalEstimator learns the gap process between request arrivals.
type InterarrivalEstimator interface {
	// Observe feeds one gap (always > 0).
	Observe(gap float64)
	// Predict estimates the next gap; false before any observation.
	Predict() (float64, bool)
	// Reset clears state.
	Reset()
}

// EWMA is an exponentially weighted moving-average gap estimator.
type EWMA struct {
	alpha float64
	mean  float64
	seen  bool
}

// NewEWMA builds an EWMA estimator with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

var _ InterarrivalEstimator = (*EWMA)(nil)

// Observe folds one gap into the running average.
func (e *EWMA) Observe(gap float64) {
	if !e.seen {
		e.mean = gap
		e.seen = true
		return
	}
	e.mean += e.alpha * (gap - e.mean)
}

// Predict returns the current smoothed gap.
func (e *EWMA) Predict() (float64, bool) { return e.mean, e.seen }

// Reset clears the average.
func (e *EWMA) Reset() { e.seen = false; e.mean = 0 }

// TwoPhase is a simplified version of the authors' two-phase interarrival
// predictor [12]: recent gaps are classified into "burst" and "idle"
// phases by a running threshold, a per-phase mean is maintained, and the
// phase-to-phase transition decides which mean to forecast.
type TwoPhase struct {
	alpha      float64
	mean       float64 // overall running mean (threshold)
	phaseMean  [2]float64
	phaseSeen  [2]bool
	trans      [2][2]int
	lastPhase  int
	seenAny    bool
	seenSecond bool
}

// NewTwoPhase builds the estimator; alpha smooths the per-phase means.
func NewTwoPhase(alpha float64) *TwoPhase {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &TwoPhase{alpha: alpha}
}

var _ InterarrivalEstimator = (*TwoPhase)(nil)

// Observe classifies the gap against the running mean and updates the
// phase statistics.
func (t *TwoPhase) Observe(gap float64) {
	if !t.seenAny {
		t.mean = gap
	} else {
		t.mean += 0.1 * (gap - t.mean)
	}
	phase := 0 // burst: shorter than typical
	if gap > t.mean {
		phase = 1 // idle: longer than typical
	}
	if !t.phaseSeen[phase] {
		t.phaseMean[phase] = gap
		t.phaseSeen[phase] = true
	} else {
		t.phaseMean[phase] += t.alpha * (gap - t.phaseMean[phase])
	}
	if t.seenAny {
		t.trans[t.lastPhase][phase]++
		t.seenSecond = true
	}
	t.lastPhase = phase
	t.seenAny = true
}

// Predict forecasts the mean gap of the most likely next phase.
func (t *TwoPhase) Predict() (float64, bool) {
	if !t.seenAny {
		return 0, false
	}
	if !t.seenSecond {
		return t.phaseMean[t.lastPhase], true
	}
	next := 0
	if t.trans[t.lastPhase][1] > t.trans[t.lastPhase][0] {
		next = 1
	}
	if !t.phaseSeen[next] {
		next = t.lastPhase
	}
	return t.phaseMean[next], true
}

// Reset clears all phase statistics.
func (t *TwoPhase) Reset() { *t = TwoPhase{alpha: t.alpha} }
