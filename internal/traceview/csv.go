package traceview

import (
	"encoding/csv"
	"io"
	"strconv"

	"predrm/internal/telemetry"
)

// WriteCSV exports the decoded trace as a decision-level timeseries: one
// row per state-changing event (admissions, rejections, completions,
// migrations, solver returns) with the running aggregates after it. The
// columns make the paper's headline curves — rejection rate, energy,
// solver overhead — plottable directly from a saved trace.
func WriteCSV(w io.Writer, d *Decoded) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"t", "event", "req", "res", "in_flight",
		"admitted", "rejected",
		"cum_energy", "cum_migration_energy", "cum_critical_energy",
		"solver_wall_ns",
	}); err != nil {
		return err
	}
	// Per-request migration energy, pre-summed so a completion row can add
	// only the job's execution share (migrations were charged when they
	// happened).
	migByReq := make(map[int]float64)
	for _, e := range d.Events {
		if e.Type == telemetry.EvMigration && e.Req >= 0 {
			migByReq[e.Req] += e.Value
		}
	}
	var (
		inFlight, admitted, rejected  int
		energy, migEnergy, critEnergy float64
	)
	ftoa := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	row := func(e telemetry.Event, wallNs int64) error {
		return cw.Write([]string{
			ftoa(e.T), string(e.Type),
			strconv.Itoa(e.Req), strconv.Itoa(e.Res),
			strconv.Itoa(inFlight),
			strconv.Itoa(admitted), strconv.Itoa(rejected),
			ftoa(energy), ftoa(migEnergy), ftoa(critEnergy),
			strconv.FormatInt(wallNs, 10),
		})
	}
	for _, e := range d.Events {
		wallNs := int64(0)
		switch e.Type {
		case telemetry.EvAdmit:
			admitted++
			inFlight++
		case telemetry.EvReject:
			rejected++
		case telemetry.EvMigration:
			migEnergy += e.Value
			energy += e.Value
		case telemetry.EvJobFinish:
			if e.Req >= 0 {
				inFlight--
				energy += e.Value - migByReq[e.Req]
			} else {
				critEnergy += e.Value
			}
		case telemetry.EvSolverReturned:
			wallNs = e.WallNs
		default:
			continue
		}
		if err := row(e, wallNs); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
