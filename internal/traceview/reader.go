// Package traceview consumes the structured JSONL event traces emitted by
// internal/telemetry: a validating streaming reader, a timeline
// reconstructor that folds the event stream back into per-resource
// execution/idle/reserved intervals and derived series, exporters (Chrome
// trace-event JSON for Perfetto, CSV timeseries, a gantt text report), a
// replay auditor that re-checks the resource manager's invariants purely
// from the trace, and a two-trace diff. cmd/tracetool wires it all into a
// CLI.
//
// The package is deliberately decoupled from the simulator: everything is
// reconstructed from the event schema alone, so any saved trace — from
// this repository or a foreign emitter speaking the same schema — can be
// analysed and audited after the fact.
package traceview

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"predrm/internal/telemetry"
)

// DiagKind classifies a reader diagnostic.
type DiagKind int

const (
	// DiagMalformedLine marks a line that did not decode into the event
	// schema; the line is skipped.
	DiagMalformedLine DiagKind = iota
	// DiagUnknownEventType marks an event whose type is not part of the
	// known schema (newer emitter, foreign trace); the event is kept.
	DiagUnknownEventType
	// DiagSequenceGap marks missing sequence numbers — ring-buffer drops
	// or a truncated file. Decoded.Dropped totals the missing events.
	DiagSequenceGap
	// DiagSequenceRegression marks a sequence number at or below its
	// predecessor (concatenated or corrupted streams).
	DiagSequenceRegression
	// DiagTimeRegression marks simulated time moving backwards between
	// consecutive events. Regressions are legitimate under non-zero
	// decision overhead — activations are processed sequentially even
	// when their windows overlap the next arrival — so this is a
	// warning, not an error.
	DiagTimeRegression
	// DiagUnknownReason marks an event whose reason string is not in the
	// enumerated vocabulary for its type (telemetry.KnownReason): a renamed
	// constant, a free-text reason, or a foreign emitter. The event is
	// kept.
	DiagUnknownReason
)

// String names the kind.
func (k DiagKind) String() string {
	switch k {
	case DiagMalformedLine:
		return "malformed_line"
	case DiagUnknownEventType:
		return "unknown_event_type"
	case DiagSequenceGap:
		return "sequence_gap"
	case DiagSequenceRegression:
		return "sequence_regression"
	case DiagTimeRegression:
		return "time_regression"
	case DiagUnknownReason:
		return "unknown_reason"
	default:
		return fmt.Sprintf("DiagKind(%d)", int(k))
	}
}

// Diagnostic is one typed reader finding. Diagnostics never abort a read:
// a damaged trace decodes into whatever survives plus the list of what is
// wrong with it.
type Diagnostic struct {
	// Line is the 1-based line number in the stream.
	Line int
	// Seq is the sequence number involved, or -1 when unavailable.
	Seq int64
	// Kind classifies the problem.
	Kind DiagKind
	// Detail is a human-readable elaboration.
	Detail string
}

// String formats the diagnostic for reports.
func (d Diagnostic) String() string {
	return fmt.Sprintf("line %d (seq %d): %s: %s", d.Line, d.Seq, d.Kind, d.Detail)
}

// Decoded is the result of reading one JSONL trace.
type Decoded struct {
	// Events holds every decoded event in stream order.
	Events []telemetry.Event
	// Diags lists schema problems found while reading.
	Diags []Diagnostic
	// Dropped is the total number of events lost to sequence gaps (ring
	// overwrites or truncation), inferred from the gaps themselves.
	Dropped int64
}

// knownTypes is the schema's event-type set.
var knownTypes = func() map[telemetry.EventType]bool {
	m := make(map[telemetry.EventType]bool)
	for _, t := range telemetry.KnownEventTypes() {
		m[t] = true
	}
	return m
}()

// Decoder validates a JSONL event stream one line at a time, carrying the
// cross-line state (line numbers, sequence and time continuity) between
// calls. Read wraps it for whole files; the tracetool tail follower feeds
// it incrementally as a trace file grows.
type Decoder struct {
	line    int
	prevSeq int64
	prevT   float64
	dropped int64
}

// NewDecoder returns a decoder at the start of a stream.
func NewDecoder() *Decoder {
	return &Decoder{prevSeq: -1, prevT: math.Inf(-1)}
}

// Dropped totals the events lost to sequence gaps seen so far.
func (d *Decoder) Dropped() int64 { return d.dropped }

// Line returns the number of lines consumed so far.
func (d *Decoder) Line() int { return d.line }

// Decode validates one raw line. ok reports whether e holds a decoded
// event (blank and malformed lines yield ok == false); diags lists any
// findings for the line, in the same typed form Read accumulates.
func (d *Decoder) Decode(raw []byte) (e telemetry.Event, diags []Diagnostic, ok bool) {
	d.line++
	if len(raw) == 0 {
		return telemetry.Event{}, nil, false
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		return telemetry.Event{}, []Diagnostic{{
			Line: d.line, Seq: -1, Kind: DiagMalformedLine, Detail: err.Error(),
		}}, false
	}
	if !knownTypes[e.Type] {
		diags = append(diags, Diagnostic{
			Line: d.line, Seq: e.Seq, Kind: DiagUnknownEventType,
			Detail: fmt.Sprintf("event type %q is not in the schema", e.Type),
		})
	} else if !telemetry.KnownReason(e.Type, e.Reason) {
		// Only validate reasons on known types: a foreign type's reasons
		// are not ours to judge, and the unknown-type diagnostic already
		// flags the line.
		diags = append(diags, Diagnostic{
			Line: d.line, Seq: e.Seq, Kind: DiagUnknownReason,
			Detail: fmt.Sprintf("reason %q is not in %q's vocabulary", e.Reason, e.Type),
		})
	}
	switch {
	case e.Seq > d.prevSeq+1:
		missing := e.Seq - d.prevSeq - 1
		d.dropped += missing
		diags = append(diags, Diagnostic{
			Line: d.line, Seq: e.Seq, Kind: DiagSequenceGap,
			Detail: fmt.Sprintf("%d event(s) missing before seq %d (ring drop or truncation)", missing, e.Seq),
		})
	case e.Seq <= d.prevSeq:
		diags = append(diags, Diagnostic{
			Line: d.line, Seq: e.Seq, Kind: DiagSequenceRegression,
			Detail: fmt.Sprintf("seq %d follows seq %d", e.Seq, d.prevSeq),
		})
	}
	if e.T < d.prevT-timeEps {
		diags = append(diags, Diagnostic{
			Line: d.line, Seq: e.Seq, Kind: DiagTimeRegression,
			Detail: fmt.Sprintf("t=%.6f follows t=%.6f", e.T, d.prevT),
		})
	}
	d.prevSeq = e.Seq
	d.prevT = e.T
	return e, diags, true
}

// Read decodes a JSONL event stream. It returns an error only for I/O
// failures; content problems become typed diagnostics on the result.
func Read(r io.Reader) (*Decoded, error) {
	d := &Decoded{}
	dec := NewDecoder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		e, diags, ok := dec.Decode(sc.Bytes())
		d.Diags = append(d.Diags, diags...)
		if ok {
			d.Events = append(d.Events, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceview: read: %w", err)
	}
	d.Dropped = dec.Dropped()
	return d, nil
}

// ReadFile decodes the JSONL trace at path.
func ReadFile(path string) (*Decoded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// timeEps is the tolerance for simulated-time comparisons throughout the
// package, matching the simulator's own epsilon regime.
const timeEps = 1e-6
