package traceview

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"strings"
	"testing"

	"predrm/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// randomEvents builds a schema-conforming event stream with non-decreasing
// simulated time: the round-trip property holds for any such stream, not
// just the simulator's.
func randomEvents(r *rand.Rand, n int) []telemetry.Event {
	types := telemetry.KnownEventTypes()
	vocab := telemetry.ReasonVocabulary()
	out := make([]telemetry.Event, n)
	t := 0.0
	for i := range out {
		t += r.Float64()
		e := telemetry.NewEvent(t, types[r.Intn(len(types))])
		if r.Intn(2) == 0 {
			e.Req = r.Intn(100)
		}
		if r.Intn(2) == 0 {
			e.Task = r.Intn(20)
		}
		if r.Intn(2) == 0 {
			e.Res = r.Intn(6)
		}
		e.Value = float64(r.Intn(1000)) / 8 // exactly representable
		e.WallNs = int64(r.Intn(100_000))
		// Reasons must come from the type's enumerated vocabulary; the
		// reader flags anything else as a DiagUnknownReason.
		if reasons := vocab[e.Type]; len(reasons) > 0 && r.Intn(3) == 0 {
			e.Reason = reasons[r.Intn(len(reasons))]
		}
		out[i] = e
	}
	return out
}

// TestReadRoundTrip checks Event -> Tracer sink (JSONL) -> Read is the
// identity on random schema-conforming streams, with zero diagnostics.
func TestReadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		events := randomEvents(r, 1+r.Intn(200))
		var sink bytes.Buffer
		tracer := telemetry.NewTracer(telemetry.TracerOptions{Sink: &sink})
		for _, e := range events {
			tracer.Emit(e)
		}
		if err := tracer.Flush(); err != nil {
			t.Fatal(err)
		}

		d, err := Read(&sink)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Diags) != 0 {
			t.Fatalf("round %d: unexpected diagnostics: %v", round, d.Diags)
		}
		if d.Dropped != 0 {
			t.Fatalf("round %d: dropped %d from a gap-free stream", round, d.Dropped)
		}
		if len(d.Events) != len(events) {
			t.Fatalf("round %d: got %d events, want %d", round, len(d.Events), len(events))
		}
		for i, got := range d.Events {
			want := events[i]
			want.Seq = int64(i) // the tracer assigns sequence numbers
			if got != want {
				t.Fatalf("round %d event %d: got %+v, want %+v", round, i, got, want)
			}
		}
	}
}

// TestReadRingDrop checks that dumping an overflowed ring produces a
// leading sequence-gap diagnostic whose inferred drop count matches the
// tracer's own accounting.
func TestReadRingDrop(t *testing.T) {
	const ringSize, emitted = 8, 20
	r := rand.New(rand.NewSource(7))
	tracer := telemetry.NewTracer(telemetry.TracerOptions{RingSize: ringSize})
	for _, e := range randomEvents(r, emitted) {
		tracer.Emit(e)
	}
	if got := tracer.Dropped(); got != emitted-ringSize {
		t.Fatalf("tracer dropped %d, want %d", got, emitted-ringSize)
	}

	var buf bytes.Buffer
	for _, e := range tracer.Events() {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	d, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != ringSize {
		t.Fatalf("got %d events, want %d", len(d.Events), ringSize)
	}
	if d.Dropped != emitted-ringSize {
		t.Fatalf("inferred %d dropped, want %d", d.Dropped, emitted-ringSize)
	}
	if len(d.Diags) != 1 || d.Diags[0].Kind != DiagSequenceGap {
		t.Fatalf("want one leading %v diagnostic, got %v", DiagSequenceGap, d.Diags)
	}
	if d.Diags[0].Line != 1 {
		t.Fatalf("gap reported on line %d, want 1", d.Diags[0].Line)
	}
}

// TestReadDiagnostics checks each damage mode surfaces as its typed
// diagnostic without aborting the read.
func TestReadDiagnostics(t *testing.T) {
	stream := strings.Join([]string{
		`{"seq":0,"t":1,"type":"arrival","req":0,"task":1,"res":-1,"value":4}`,
		`not json at all`,
		`{"seq":1,"t":2,"type":"wormhole","req":-1,"task":-1,"res":-1}`,
		`{"seq":1,"t":2,"type":"admit","req":0,"task":1,"res":0}`,
		`{"seq":2,"t":1.5,"type":"job_start","req":0,"task":1,"res":0}`,
	}, "\n") + "\n"
	d, err := Read(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 4 { // the malformed line is skipped, the rest kept
		t.Fatalf("got %d events, want 4", len(d.Events))
	}
	kinds := make(map[DiagKind]int)
	for _, diag := range d.Diags {
		kinds[diag.Kind]++
	}
	for _, want := range []DiagKind{
		DiagMalformedLine, DiagUnknownEventType, DiagSequenceRegression, DiagTimeRegression,
	} {
		if kinds[want] != 1 {
			t.Errorf("want exactly one %v, got %d (all: %v)", want, kinds[want], d.Diags)
		}
	}
}
