package traceview

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the reconstructed timeline as a JSON file
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. One track
// (thread) per resource carries execution and reservation slices; a
// counter track shows the in-flight admitted job count. One simulated
// time unit is exported as one second (ts/dur are microseconds).

// chromeSlice is a complete ("X") duration event.
type chromeSlice struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Args chromeSliceArgs `json:"args"`
}

type chromeSliceArgs struct {
	Job  int `json:"job"`
	Task int `json:"task"`
}

// chromeMeta is a metadata ("M") event naming a process or thread.
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args chromeMetaArgs `json:"args"`
}

type chromeMetaArgs struct {
	Name string `json:"name"`
}

// chromeCounter is a counter ("C") sample.
type chromeCounter struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Ts   float64           `json:"ts"`
	Args chromeCounterArgs `json:"args"`
}

type chromeCounterArgs struct {
	Jobs float64 `json:"jobs"`
}

const chromePid = 1

// usec converts simulated time to exported microseconds (1 unit = 1 s).
func usec(t float64) float64 { return t * 1e6 }

// WriteChromeTrace exports the timeline in Chrome trace-event format.
// names labels the resource tracks; missing entries fall back to "R<id>".
func WriteChromeTrace(w io.Writer, tl *Timeline, names []string) error {
	var events []any
	events = append(events, chromeMeta{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: chromeMetaArgs{Name: "predrm simulation"},
	})
	for res := 0; res < tl.Resources; res++ {
		name := fmt.Sprintf("R%d", res)
		if res < len(names) && names[res] != "" {
			name = names[res]
		}
		// tid 0 is reserved for the process metadata row.
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: res + 1,
			Args: chromeMetaArgs{Name: name},
		})
	}
	for _, iv := range tl.Intervals {
		if iv.End <= iv.Start {
			continue
		}
		s := chromeSlice{
			Ph: "X", Pid: chromePid, Tid: iv.Resource + 1,
			Ts: usec(iv.Start), Dur: usec(iv.End - iv.Start),
			Args: chromeSliceArgs{Job: iv.Job, Task: iv.Task},
		}
		switch {
		case iv.Kind == IntervalReserved:
			s.Name, s.Cat = "reservation", "reserved"
		case iv.Job < 0:
			s.Name, s.Cat = fmt.Sprintf("critical %d", -iv.Job), "critical"
		default:
			s.Name, s.Cat = fmt.Sprintf("job %d", iv.Job), "exec"
		}
		events = append(events, s)
	}
	for _, p := range tl.InFlight {
		events = append(events, chromeCounter{
			Name: "in_flight", Ph: "C", Pid: chromePid,
			Ts: usec(p.T), Args: chromeCounterArgs{Jobs: p.V},
		})
	}

	// One event per line keeps the export diffable and golden-testable
	// while remaining a single valid JSON document.
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(line, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
