package traceview

import (
	"bufio"
	"io"
	"sync/atomic"
	"time"

	"predrm/internal/telemetry"
)

// DefaultPoll is how often a following Tailer re-probes its reader for
// new data after hitting end-of-file.
const DefaultPoll = 200 * time.Millisecond

// Tailer incrementally decodes a JSONL event stream that may still be
// growing — the `tracetool tail -f` engine. It reuses the validating
// Decoder, so a followed stream gets the same typed diagnostics
// (malformed lines, sequence gaps, time regressions) as a post-hoc Read.
//
// Partial trailing lines (the emitter's buffered writer flushes
// mid-line) are held back until their newline arrives; in follow mode
// end-of-file means "wait for more", re-probing every Poll.
type Tailer struct {
	// Follow keeps Next polling for growth at EOF instead of returning
	// io.EOF.
	Follow bool
	// Poll overrides the re-probe interval (0 = DefaultPoll).
	Poll time.Duration
	// OnDiag, when non-nil, receives every decoder diagnostic as it is
	// found.
	OnDiag func(Diagnostic)

	br      *bufio.Reader
	dec     *Decoder
	pending []byte
	closed  atomic.Bool
}

// NewTailer wraps r. For follow mode the reader must return fresh data on
// reads after EOF when the source grows, as *os.File does.
func NewTailer(r io.Reader) *Tailer {
	return &Tailer{br: bufio.NewReader(r), dec: NewDecoder()}
}

// Decoder exposes the underlying validating decoder (drop totals, line
// count).
func (t *Tailer) Decoder() *Decoder { return t.dec }

// Close makes a blocked Next return io.EOF at its next poll. Safe to call
// from another goroutine.
func (t *Tailer) Close() { t.closed.Store(true) }

func (t *Tailer) poll() time.Duration {
	if t.Poll > 0 {
		return t.Poll
	}
	return DefaultPoll
}

// Next returns the next decoded event. Blank and malformed lines are
// skipped (reported through OnDiag); io.EOF means the stream ended (never
// in follow mode unless Close was called); other errors are I/O failures.
func (t *Tailer) Next() (telemetry.Event, error) {
	for {
		if t.closed.Load() {
			return telemetry.Event{}, io.EOF
		}
		chunk, err := t.br.ReadBytes('\n')
		if n := len(chunk); n > 0 && chunk[n-1] == '\n' {
			t.pending = append(t.pending, chunk[:n-1]...)
			e, ok := t.decodePending()
			if ok {
				return e, nil
			}
			continue
		}
		t.pending = append(t.pending, chunk...)
		switch err {
		case nil:
			continue
		case io.EOF:
			if t.Follow {
				time.Sleep(t.poll())
				continue
			}
			// A trailing line without newline is still a line.
			if len(t.pending) > 0 {
				if e, ok := t.decodePending(); ok {
					return e, nil
				}
			}
			return telemetry.Event{}, io.EOF
		default:
			return telemetry.Event{}, err
		}
	}
}

// decodePending runs the decoder over the buffered line and clears it.
func (t *Tailer) decodePending() (telemetry.Event, bool) {
	e, diags, ok := t.dec.Decode(t.pending)
	t.pending = t.pending[:0]
	if t.OnDiag != nil {
		for _, d := range diags {
			t.OnDiag(d)
		}
	}
	return e, ok
}
