package traceview

import (
	"fmt"
	"io"
	"sort"

	"predrm/internal/metrics"
)

// Summary condenses a timeline into the headline numbers the paper
// compares across runs (rejection rate, energy, solver overhead,
// utilization). Two summaries of the same workload under different
// configurations — predictive vs. baseline — are the inputs of WriteDiff.
type Summary struct {
	Requests, Admitted, Rejected int
	// RejectionPct is the rejected share of decided requests in percent.
	RejectionPct float64
	// Energy attribution; TotalEnergy = ExecEnergy + MigrationEnergy
	// (critical consumption is reported separately, as in sim.Result).
	ExecEnergy, MigrationEnergy, CriticalEnergy, TotalEnergy float64
	Migrations                                               int
	ResvPlanned, ResvHonoured, ResvBackfilled                int
	DeadlineMisses                                           int
	// MakeSpan is the last adaptive completion time.
	MakeSpan float64
	// MeanUtilization averages the per-resource busy fractions.
	MeanUtilization float64
	// Solver latency percentiles in seconds.
	SolverP50, SolverP95, SolverMax float64
	InFlightPeak                    int
	// AdmitReasons and RejectReasons histogram the enumerated decision
	// reasons (telemetry reason vocabulary) over the decided requests.
	AdmitReasons, RejectReasons map[string]int
}

// Summarize condenses the timeline.
func (tl *Timeline) Summarize() Summary {
	s := Summary{
		ExecEnergy:      tl.ExecEnergy,
		MigrationEnergy: tl.MigrationEnergy,
		CriticalEnergy:  tl.CriticalEnergy,
		TotalEnergy:     tl.ExecEnergy + tl.MigrationEnergy,
		ResvPlanned:     tl.ResvPlanned,
		ResvHonoured:    tl.ResvHonoured,
		ResvBackfilled:  tl.ResvBackfilled,
		InFlightPeak:    tl.InFlightPeak(),
	}
	s.AdmitReasons = make(map[string]int)
	s.RejectReasons = make(map[string]int)
	for _, o := range tl.Requests {
		if o.HasArrival {
			s.Requests++
		}
		if o.Admitted {
			s.Admitted++
			if o.AdmitReason != "" {
				s.AdmitReasons[o.AdmitReason]++
			}
		}
		if o.Rejected {
			s.Rejected++
			if o.RejectReason != "" {
				s.RejectReasons[o.RejectReason]++
			}
		}
		s.Migrations += o.Migrations
		if o.Finished && o.HasArrival {
			if o.Slack() < -timeEps {
				s.DeadlineMisses++
			}
			if o.FinishTime > s.MakeSpan {
				s.MakeSpan = o.FinishTime
			}
		}
	}
	if decided := s.Admitted + s.Rejected; decided > 0 {
		s.RejectionPct = 100 * float64(s.Rejected) / float64(decided)
	}
	if util := tl.Utilization(); len(util) > 0 {
		sum := 0.0
		for _, u := range util {
			sum += u
		}
		s.MeanUtilization = sum / float64(len(util))
	}
	if wall := tl.SolverWallSec; len(wall) > 0 {
		s.SolverP50, _ = metrics.Percentile(wall, 50)
		s.SolverP95, _ = metrics.Percentile(wall, 95)
		s.SolverMax, _ = metrics.Percentile(wall, 100)
	}
	return s
}

// WriteDiff prints the two summaries side by side with deltas (b − a):
// the record → analyze → diff workflow for comparing a predictive run
// against its baseline on the same workload.
func WriteDiff(w io.Writer, labelA string, a Summary, labelB string, b Summary) error {
	type rowSpec struct {
		name    string
		a, b    float64
		unit    string
		integer bool
	}
	rows := []rowSpec{
		{"requests", float64(a.Requests), float64(b.Requests), "", true},
		{"admitted", float64(a.Admitted), float64(b.Admitted), "", true},
		{"rejected", float64(a.Rejected), float64(b.Rejected), "", true},
		{"rejection rate", a.RejectionPct, b.RejectionPct, "%", false},
		{"total energy", a.TotalEnergy, b.TotalEnergy, " J", false},
		{"exec energy", a.ExecEnergy, b.ExecEnergy, " J", false},
		{"migration energy", a.MigrationEnergy, b.MigrationEnergy, " J", false},
		{"critical energy", a.CriticalEnergy, b.CriticalEnergy, " J", false},
		{"migrations", float64(a.Migrations), float64(b.Migrations), "", true},
		{"resv planned", float64(a.ResvPlanned), float64(b.ResvPlanned), "", true},
		{"resv honoured", float64(a.ResvHonoured), float64(b.ResvHonoured), "", true},
		{"resv backfilled", float64(a.ResvBackfilled), float64(b.ResvBackfilled), "", true},
		{"deadline misses", float64(a.DeadlineMisses), float64(b.DeadlineMisses), "", true},
		{"makespan", a.MakeSpan, b.MakeSpan, "", false},
		{"mean utilization", 100 * a.MeanUtilization, 100 * b.MeanUtilization, "%", false},
		{"solver p50", a.SolverP50 * 1e6, b.SolverP50 * 1e6, " µs", false},
		{"solver p95", a.SolverP95 * 1e6, b.SolverP95 * 1e6, " µs", false},
		{"solver max", a.SolverMax * 1e6, b.SolverMax * 1e6, " µs", false},
		{"in-flight peak", float64(a.InFlightPeak), float64(b.InFlightPeak), "", true},
	}
	// Reason-level comparison: one row per enumerated decision reason seen
	// in either trace, in sorted order for deterministic output.
	for _, reason := range unionReasons(a.AdmitReasons, b.AdmitReasons) {
		rows = append(rows, rowSpec{"admit: " + reason,
			float64(a.AdmitReasons[reason]), float64(b.AdmitReasons[reason]), "", true})
	}
	for _, reason := range unionReasons(a.RejectReasons, b.RejectReasons) {
		rows = append(rows, rowSpec{"reject: " + reason,
			float64(a.RejectReasons[reason]), float64(b.RejectReasons[reason]), "", true})
	}
	if _, err := fmt.Fprintf(w, "%-26s %16s %16s %16s\n", "metric", labelA, labelB, "delta (b-a)"); err != nil {
		return err
	}
	fmtv := func(v float64, r rowSpec) string {
		if r.integer {
			return fmt.Sprintf("%.0f%s", v, r.unit)
		}
		return fmt.Sprintf("%.3f%s", v, r.unit)
	}
	for _, r := range rows {
		delta := r.b - r.a
		sign := ""
		if delta > 0 {
			sign = "+"
		}
		if _, err := fmt.Fprintf(w, "%-26s %16s %16s %15s\n",
			r.name, fmtv(r.a, r), fmtv(r.b, r), sign+fmtv(delta, r)); err != nil {
			return err
		}
	}
	return nil
}

// unionReasons returns the sorted union of the reason keys of a and b.
func unionReasons(a, b map[string]int) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for r := range a {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for r := range b {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}
