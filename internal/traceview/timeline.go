package traceview

import (
	"math"
	"sort"

	"predrm/internal/sim"
	"predrm/internal/telemetry"
)

// IntervalKind classifies a reconstructed schedule interval.
type IntervalKind int

const (
	// IntervalExec is time a job actually executed on the resource.
	IntervalExec IntervalKind = iota
	// IntervalReserved is time the resource was held idle for a predicted
	// job (a reservation honoured under plan-based execution).
	IntervalReserved
)

// Interval is one contiguous piece of reconstructed schedule: on Resource,
// during [Start, End), Job was executing (IntervalExec) or the resource
// idled inside a reservation window (IntervalReserved, Job is -1).
type Interval struct {
	Resource int
	Kind     IntervalKind
	// Job is the request id (negative for critical releases), or -1 for
	// reservations.
	Job int
	// Task is the job's task type, or -1.
	Task       int
	Start, End float64
}

// RequestOutcome folds every event about one trace request into its
// reconstructed fate.
type RequestOutcome struct {
	// Req is the request id; Task its task type (-1 until an arrival or
	// lifecycle event names it).
	Req, Task int
	// HasArrival reports whether the arrival event survived (ring drops
	// can lose it); Arrival and Deadline are absolute times from it.
	HasArrival        bool
	Arrival, Deadline float64
	// Admitted/Rejected reflect the admission protocol's decision events.
	Admitted    bool
	AdmitTime   float64
	AdmitRes    int
	AdmitReason string
	Rejected    bool
	// RejectReason is the enumerated rejection cause from the reject event.
	RejectReason string
	// Decision points at the request's decision-provenance record
	// (EvDecision), when the trace was recorded with provenance on.
	Decision *telemetry.Event
	// Executed reports whether any job_start names this request.
	Executed bool
	// Finished reports a job_finish; FinishTime its time and Energy the
	// job's total consumption (including migrations) from the event.
	Finished   bool
	FinishTime float64
	Energy     float64
	// Migrations and MigrationEnergy accumulate the request's charged
	// relocations.
	Migrations      int
	MigrationEnergy float64
}

// Slack returns the finished request's deadline slack (positive = early).
func (o *RequestOutcome) Slack() float64 { return o.Deadline - o.FinishTime }

// Point is one step of a reconstructed time series.
type Point struct {
	T float64
	V float64
}

// Timeline is the reconstruction of one event trace: per-resource
// intervals, per-request outcomes, and the derived series the report,
// exporters, auditor, and diff all consume.
type Timeline struct {
	// Resources is the number of resources referenced by the trace
	// (max id + 1); the platform itself is not serialised into traces.
	Resources int
	// Start and End bound the trace's simulated time.
	Start, End float64
	// Intervals holds execution and reservation intervals, sorted by
	// resource then start time.
	Intervals []Interval
	// Requests maps request id to its outcome (use SortedRequests for
	// deterministic iteration).
	Requests map[int]*RequestOutcome
	// InFlight is the admitted-but-unfinished job count over time.
	InFlight []Point
	// SolverWallSec holds each activation's measured solver latency in
	// seconds (from solver_returned WallNs; zero entries are kept so
	// counts match activations).
	SolverWallSec []float64
	// SolverJobs holds each activation's problem size (solver_invoked).
	SolverJobs []float64
	// Energy attribution across the run: execution of admitted requests,
	// charged migrations, and critical releases.
	ExecEnergy, MigrationEnergy, CriticalEnergy float64
	// Reservation and critical counters.
	ResvPlanned, ResvHonoured, ResvBackfilled int
	CriticalReleases                          int
	// CriticalFinishes counts job_finish events of critical releases.
	CriticalFinishes int
	// Dropped and Diags carry the reader's findings into downstream
	// consumers (the auditor softens missing-event checks when Dropped>0).
	Dropped int64
	Diags   []Diagnostic
}

// openExec tracks one in-progress execution interval during reconstruction.
type openExec struct {
	job, task int
	start     float64
}

// resvKey identifies a planned reservation: honoured/backfilled events
// carry the same resource and predicted arrival as the planning event (the
// flush for batch N is emitted after batch N+1 is planned, so resource
// alone is ambiguous).
type resvKey struct {
	res     int
	arrival float64
}

// BuildTimeline folds a decoded event stream into a Timeline.
func BuildTimeline(d *Decoded) *Timeline {
	tl := &Timeline{
		Requests: make(map[int]*RequestOutcome),
		Start:    math.Inf(1),
		End:      math.Inf(-1),
		Dropped:  d.Dropped,
		Diags:    d.Diags,
	}
	open := make(map[int]openExec)    // resource -> running job
	resv := make(map[resvKey]float64) // pending reservation -> planned time
	inFlight := 0
	step := func(t float64, delta int) {
		inFlight += delta
		tl.InFlight = append(tl.InFlight, Point{T: t, V: float64(inFlight)})
	}
	for _, e := range d.Events {
		if e.T < tl.Start {
			tl.Start = e.T
		}
		if e.T > tl.End {
			tl.End = e.T
		}
		if e.Res >= tl.Resources {
			tl.Resources = e.Res + 1
		}
		switch e.Type {
		case telemetry.EvArrival:
			o := tl.request(e.Req, e.Task)
			o.HasArrival = true
			o.Arrival = e.T
			o.Deadline = e.Value
		case telemetry.EvAdmit:
			o := tl.request(e.Req, e.Task)
			o.Admitted = true
			o.AdmitTime = e.T
			o.AdmitRes = e.Res
			o.AdmitReason = e.Reason
			step(e.T, +1)
		case telemetry.EvReject:
			o := tl.request(e.Req, e.Task)
			o.Rejected = true
			o.RejectReason = e.Reason
		case telemetry.EvDecision:
			e := e
			tl.request(e.Req, e.Task).Decision = &e
		case telemetry.EvMigration:
			o := tl.request(e.Req, -1)
			o.Migrations++
			o.MigrationEnergy += e.Value
			tl.MigrationEnergy += e.Value
		case telemetry.EvSolverInvoked:
			tl.SolverJobs = append(tl.SolverJobs, e.Value)
		case telemetry.EvSolverReturned:
			tl.SolverWallSec = append(tl.SolverWallSec, float64(e.WallNs)/1e9)
		case telemetry.EvCriticalRelease:
			tl.CriticalReleases++
		case telemetry.EvReservationPlanned:
			tl.ResvPlanned++
			resv[resvKey{e.Res, e.Value}] = e.T
		case telemetry.EvReservationHonoured:
			tl.ResvHonoured++
			key := resvKey{e.Res, e.Value}
			start := e.Value
			if planned, ok := resv[key]; ok && planned > start {
				start = planned
			}
			delete(resv, key)
			if e.T > start {
				tl.Intervals = append(tl.Intervals, Interval{
					Resource: e.Res, Kind: IntervalReserved, Job: -1, Task: -1,
					Start: start, End: e.T,
				})
			}
		case telemetry.EvReservationBackfilled:
			tl.ResvBackfilled++
			delete(resv, resvKey{e.Res, e.Value})
		case telemetry.EvJobStart:
			// Defensive: close anything the emitter forgot to close.
			for res, oe := range open {
				if res == e.Res || oe.job == e.Req {
					tl.closeExec(res, oe, e.T)
					delete(open, res)
				}
			}
			open[e.Res] = openExec{job: e.Req, task: e.Task, start: e.T}
			if e.Req >= 0 {
				tl.request(e.Req, e.Task).Executed = true
			}
		case telemetry.EvJobPreempt:
			if oe, ok := open[e.Res]; ok && oe.job == e.Req {
				tl.closeExec(e.Res, oe, e.T)
				delete(open, e.Res)
			}
		case telemetry.EvJobFinish:
			if oe, ok := open[e.Res]; ok && oe.job == e.Req {
				tl.closeExec(e.Res, oe, e.T)
				delete(open, e.Res)
			}
			if e.Req >= 0 {
				o := tl.request(e.Req, e.Task)
				o.Finished = true
				o.FinishTime = e.T
				o.Energy = e.Value
				tl.ExecEnergy += e.Value
				step(e.T, -1)
			} else {
				tl.CriticalFinishes++
				tl.CriticalEnergy += e.Value
			}
		}
	}
	if math.IsInf(tl.Start, 1) {
		tl.Start, tl.End = 0, 0
	}
	// Execution energy excludes the separately attributed migration share.
	tl.ExecEnergy -= tl.MigrationEnergy
	for res, oe := range open {
		tl.closeExec(res, oe, tl.End)
	}
	sort.SliceStable(tl.Intervals, func(a, b int) bool {
		if tl.Intervals[a].Resource != tl.Intervals[b].Resource {
			return tl.Intervals[a].Resource < tl.Intervals[b].Resource
		}
		return tl.Intervals[a].Start < tl.Intervals[b].Start
	})
	return tl
}

// request returns (creating if needed) the outcome record for req,
// remembering the task type when an event names it.
func (tl *Timeline) request(req, task int) *RequestOutcome {
	o, ok := tl.Requests[req]
	if !ok {
		o = &RequestOutcome{Req: req, Task: -1, AdmitRes: -1}
		tl.Requests[req] = o
	}
	if task >= 0 {
		o.Task = task
	}
	return o
}

// closeExec appends the finished execution interval (zero-length slices
// are kept: they witness that the job touched the resource).
func (tl *Timeline) closeExec(res int, oe openExec, end float64) {
	if end < oe.start {
		end = oe.start
	}
	tl.Intervals = append(tl.Intervals, Interval{
		Resource: res, Kind: IntervalExec, Job: oe.job, Task: oe.task,
		Start: oe.start, End: end,
	})
}

// SortedRequests returns the request outcomes ordered by id.
func (tl *Timeline) SortedRequests() []*RequestOutcome {
	out := make([]*RequestOutcome, 0, len(tl.Requests))
	for _, o := range tl.Requests {
		out = append(out, o)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Req < out[b].Req })
	return out
}

// Span returns the trace's duration.
func (tl *Timeline) Span() float64 { return tl.End - tl.Start }

// Utilization returns each resource's executing fraction of the span.
func (tl *Timeline) Utilization() []float64 {
	busy := make([]float64, tl.Resources)
	for _, iv := range tl.Intervals {
		if iv.Kind == IntervalExec {
			busy[iv.Resource] += iv.End - iv.Start
		}
	}
	if span := tl.Span(); span > 0 {
		for i := range busy {
			busy[i] /= span
		}
	}
	return busy
}

// Slacks returns the deadline slack (deadline − finish, positive = early)
// of every finished request whose arrival survived in the trace.
func (tl *Timeline) Slacks() []float64 {
	var out []float64
	for _, o := range tl.SortedRequests() {
		if o.Finished && o.HasArrival {
			out = append(out, o.Slack())
		}
	}
	return out
}

// ExecSegments converts the execution intervals into the simulator's
// segment type for gantt rendering.
func (tl *Timeline) ExecSegments() []sim.ExecSegment {
	var segs []sim.ExecSegment
	for _, iv := range tl.Intervals {
		if iv.Kind != IntervalExec || iv.End <= iv.Start {
			continue
		}
		segs = append(segs, sim.ExecSegment{
			Resource: iv.Resource, JobID: iv.Job, Start: iv.Start, End: iv.End,
		})
	}
	return segs
}

// InFlightPeak returns the maximum admitted-but-unfinished job count.
func (tl *Timeline) InFlightPeak() int {
	peak := 0.0
	for _, p := range tl.InFlight {
		if p.V > peak {
			peak = p.V
		}
	}
	return int(peak)
}
