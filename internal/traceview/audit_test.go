package traceview

import (
	"testing"

	"predrm/internal/platform"
	"predrm/internal/telemetry"
)

// simGolden is the simulator's golden event trace (a full fixture run with
// prediction); the auditor must find it spotless.
const simGolden = "../sim/testdata/events.golden.jsonl"

func readGolden(t *testing.T) *Decoded {
	t.Helper()
	d, err := ReadFile(simGolden)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Diags) != 0 {
		t.Fatalf("golden trace has reader diagnostics: %v", d.Diags)
	}
	return d
}

// auditOpts supplies the fixture's platform (5 CPUs + 1 GPU); it is not
// serialised into traces.
func auditOpts() AuditOptions {
	return AuditOptions{Platform: platform.Default()}
}

// TestAuditGoldenClean checks the recorded fixture run satisfies every
// resource-manager invariant.
func TestAuditGoldenClean(t *testing.T) {
	if vs := Audit(readGolden(t), auditOpts()); len(vs) != 0 {
		t.Fatalf("golden trace has violations:\n%v", vs)
	}
}

// kindCensus counts violations by kind.
func kindCensus(vs []Violation) map[ViolationKind]int {
	m := make(map[ViolationKind]int)
	for _, v := range vs {
		m[v.Kind]++
	}
	return m
}

// TestAuditDetectsDeadlineMiss injects a deadline violation into the golden
// trace — one admitted request's completion is pushed past its deadline —
// and checks the auditor flags exactly that request.
func TestAuditDetectsDeadlineMiss(t *testing.T) {
	d := readGolden(t)
	tl := BuildTimeline(d)

	// Pick the first admitted request that finished, then stamp its
	// job_finish past the deadline.
	victim := -1
	for _, o := range tl.SortedRequests() {
		if o.Admitted && o.HasArrival && o.Finished {
			victim = o.Req
			break
		}
	}
	if victim < 0 {
		t.Fatal("golden trace has no finished admitted request")
	}
	deadline := tl.Requests[victim].Deadline
	for i := range d.Events {
		e := &d.Events[i]
		if e.Type == telemetry.EvJobFinish && e.Req == victim {
			e.T = deadline + 1
		}
	}

	vs := Audit(d, auditOpts())
	if len(vs) == 0 {
		t.Fatal("auditor missed the injected deadline violation")
	}
	found := false
	for _, v := range vs {
		if v.Kind == VDeadlineMiss && v.Req == victim {
			found = true
		} else if v.Kind == VDeadlineMiss {
			t.Errorf("deadline miss reported for untouched request %d", v.Req)
		}
	}
	if !found {
		t.Fatalf("no %v for request %d in %v", VDeadlineMiss, victim, vs)
	}
}

// TestAuditDetectsMissingCompletion deletes an admitted request's
// job_finish: with no ring drops to blame, the absence is a violation.
func TestAuditDetectsMissingCompletion(t *testing.T) {
	d := readGolden(t)
	tl := BuildTimeline(d)

	// The victim's deadline must precede the trace end, or silence would
	// be legitimate (the run may simply stop before the job is due).
	victim := -1
	for _, o := range tl.SortedRequests() {
		if o.Admitted && o.HasArrival && o.Finished && o.Deadline < tl.End {
			victim = o.Req
			break
		}
	}
	if victim < 0 {
		t.Fatal("no finished request with deadline inside the trace span")
	}
	kept := d.Events[:0]
	for _, e := range d.Events {
		if e.Type == telemetry.EvJobFinish && e.Req == victim {
			continue
		}
		kept = append(kept, e)
	}
	d.Events = kept

	census := kindCensus(Audit(d, auditOpts()))
	if census[VMissingCompletion] != 1 {
		t.Fatalf("want one %v, census %v", VMissingCompletion, census)
	}
}

// TestAuditDetectsGPUPreemption injects a preemption on the fixture's
// non-preemptable GPU (resource 5).
func TestAuditDetectsGPUPreemption(t *testing.T) {
	d := readGolden(t)
	plat := platform.Default()
	gpu := plat.Len() - 1
	if plat.Resource(gpu).Preemptable() {
		t.Fatalf("fixture resource %d unexpectedly preemptable", gpu)
	}
	last := d.Events[len(d.Events)-1]
	ev := telemetry.NewEvent(last.T, telemetry.EvJobPreempt)
	ev.Seq = last.Seq + 1
	ev.Req = 0
	ev.Res = gpu
	ev.Reason = "displaced"
	d.Events = append(d.Events, ev)

	census := kindCensus(Audit(d, AuditOptions{Platform: plat}))
	if census[VGPUPreempted] != 1 {
		t.Fatalf("want one %v, census %v", VGPUPreempted, census)
	}
}

// TestAuditDetectsRejectedExecuted puts a rejected request on a resource.
func TestAuditDetectsRejectedExecuted(t *testing.T) {
	d := readGolden(t)
	tl := BuildTimeline(d)
	victim := -1
	for _, o := range tl.SortedRequests() {
		if o.Rejected && !o.Admitted {
			victim = o.Req
			break
		}
	}
	if victim < 0 {
		t.Fatal("golden trace has no rejected request")
	}
	last := d.Events[len(d.Events)-1]
	ev := telemetry.NewEvent(last.T, telemetry.EvJobStart)
	ev.Seq = last.Seq + 1
	ev.Req = victim
	ev.Res = 0
	ev.Reason = "start"
	d.Events = append(d.Events, ev)

	census := kindCensus(Audit(d, auditOpts()))
	if census[VRejectedExecuted] != 1 {
		t.Fatalf("want one %v, census %v", VRejectedExecuted, census)
	}
}

// TestAuditRingDropSoftensAbsence checks that with Dropped > 0 the
// absence-based checks stand down: deleting a completion from a trace that
// also lost events to the ring must not report a violation.
func TestAuditRingDropSoftensAbsence(t *testing.T) {
	d := readGolden(t)
	tl := BuildTimeline(d)
	victim := -1
	for _, o := range tl.SortedRequests() {
		if o.Admitted && o.HasArrival && o.Finished && o.Deadline < tl.End {
			victim = o.Req
			break
		}
	}
	if victim < 0 {
		t.Fatal("no suitable victim")
	}
	kept := d.Events[:0]
	for _, e := range d.Events {
		if e.Type == telemetry.EvJobFinish && e.Req == victim {
			continue
		}
		kept = append(kept, e)
	}
	d.Events = kept
	d.Dropped = 3 // pretend the ring overwrote events

	census := kindCensus(Audit(d, auditOpts()))
	if census[VMissingCompletion] != 0 {
		t.Fatalf("absence check fired despite ring drops: %v", census)
	}
}
