package traceview

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// runTraced simulates the telemetry fixture workload (same seeds as the
// sim package's golden test) and returns both the simulator's result and
// the decoded event stream, so trace-derived numbers can be checked
// against ground truth.
func runTraced(t *testing.T, predictive bool) (*sim.Result, *Decoded) {
	t.Helper()
	plat := platform.Default()
	tcfg := task.DefaultGenConfig()
	tcfg.NumTypes = 20
	set, err := task.Generate(plat, tcfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(set, trace.GenConfig{
		Length:           30,
		InterarrivalMean: 0.8,
		InterarrivalStd:  0.25,
		Tightness:        trace.VeryTight,
	}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Platform: plat,
		TaskSet:  set,
		Solver:   &core.Heuristic{},
	}
	if predictive {
		oracle, err := predict.NewOracle(tr, predict.OracleConfig{
			TypeAccuracy: 1,
			NumTypes:     set.Len(),
			Seed:         13,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Predictor = oracle
	}
	var sink bytes.Buffer
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Sink: &sink})
	cfg.Tracer = tracer
	res, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := Read(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Diags) != 0 {
		t.Fatalf("fixture trace has diagnostics: %v", d.Diags)
	}
	return res, d
}

// TestSummaryMatchesSimulator checks the numbers reconstructed purely from
// the trace agree with the simulator's own accounting, for both the
// predictive and the baseline run.
func TestSummaryMatchesSimulator(t *testing.T) {
	for _, tc := range []struct {
		name       string
		predictive bool
	}{
		{"baseline", false},
		{"predictive", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, d := runTraced(t, tc.predictive)
			s := BuildTimeline(d).Summarize()
			if s.Requests != res.Requests {
				t.Errorf("requests: trace %d, sim %d", s.Requests, res.Requests)
			}
			if s.Admitted != res.Accepted || s.Rejected != res.Rejected {
				t.Errorf("decisions: trace %d/%d, sim %d/%d",
					s.Admitted, s.Rejected, res.Accepted, res.Rejected)
			}
			if math.Abs(s.RejectionPct-res.RejectionPct()) > 1e-9 {
				t.Errorf("rejection pct: trace %.6f, sim %.6f", s.RejectionPct, res.RejectionPct())
			}
			if math.Abs(s.TotalEnergy-res.TotalEnergy) > 1e-6 {
				t.Errorf("total energy: trace %.6f, sim %.6f", s.TotalEnergy, res.TotalEnergy)
			}
			if math.Abs(s.MigrationEnergy-res.MigrationEnergy) > 1e-6 {
				t.Errorf("migration energy: trace %.6f, sim %.6f", s.MigrationEnergy, res.MigrationEnergy)
			}
			if s.Migrations != res.Migrations {
				t.Errorf("migrations: trace %d, sim %d", s.Migrations, res.Migrations)
			}
			if s.DeadlineMisses != res.DeadlineMisses {
				t.Errorf("deadline misses: trace %d, sim %d", s.DeadlineMisses, res.DeadlineMisses)
			}
			if math.Abs(s.MakeSpan-res.MakeSpan) > 1e-6 {
				t.Errorf("makespan: trace %.6f, sim %.6f", s.MakeSpan, res.MakeSpan)
			}
			if vs := Audit(d, AuditOptions{Platform: platform.Default()}); len(vs) != 0 {
				t.Errorf("fixture run violates invariants:\n%v", vs)
			}
		})
	}
}

// TestDiffPredictiveVsBaseline runs the same workload with and without
// prediction and checks the diff's rejection-rate delta matches the
// simulator's — the paper's Fig 2 effect, recovered from traces alone.
func TestDiffPredictiveVsBaseline(t *testing.T) {
	resBase, dBase := runTraced(t, false)
	resPred, dPred := runTraced(t, true)
	base := BuildTimeline(dBase).Summarize()
	pred := BuildTimeline(dPred).Summarize()

	wantDelta := resPred.RejectionPct() - resBase.RejectionPct()
	gotDelta := pred.RejectionPct - base.RejectionPct
	if math.Abs(gotDelta-wantDelta) > 1e-9 {
		t.Errorf("rejection delta: trace %.6f, sim %.6f", gotDelta, wantDelta)
	}
	if pred.Admitted != resPred.Accepted || base.Admitted != resBase.Accepted {
		t.Errorf("admissions: trace %d/%d, sim %d/%d",
			pred.Admitted, base.Admitted, resPred.Accepted, resBase.Accepted)
	}
	if base.ResvPlanned != 0 || pred.ResvPlanned == 0 {
		t.Errorf("reservations: base %d (want 0), pred %d (want >0)",
			base.ResvPlanned, pred.ResvPlanned)
	}

	var out bytes.Buffer
	if err := WriteDiff(&out, "base", base, "pred", pred); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"rejection rate", "total energy", "resv planned", "delta (b-a)"} {
		if !strings.Contains(text, want) {
			t.Errorf("diff output missing %q:\n%s", want, text)
		}
	}
}
