package traceview

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"predrm/internal/telemetry"
)

func line(t *testing.T, seq int64, at float64) []byte {
	t.Helper()
	e := telemetry.NewEvent(at, telemetry.EvArrival)
	e.Seq = seq
	buf, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

// TestTailerReadsWholeFile covers the non-follow mode: decode everything,
// including a trailing line without a newline, then io.EOF.
func TestTailerReadsWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var data []byte
	data = append(data, line(t, 0, 0)...)
	data = append(data, line(t, 1, 1)...)
	trailing := line(t, 2, 2)
	data = append(data, trailing[:len(trailing)-1]...) // no final newline
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tl := NewTailer(f)
	var seqs []int64
	for {
		e, err := tl.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 0 || seqs[2] != 2 {
		t.Fatalf("decoded seqs %v, want [0 1 2]", seqs)
	}
}

// TestTailerFollowsGrowth appends to the file while a following Tailer
// reads it, including a write split mid-line: the partial line must be
// held back until its remainder lands.
func TestTailerFollowsGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(line(t, 0, 0)); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tl := NewTailer(rf)
	tl.Follow = true
	tl.Poll = time.Millisecond

	type next struct {
		e   telemetry.Event
		err error
	}
	results := make(chan next, 8)
	go func() {
		for {
			e, err := tl.Next()
			results <- next{e, err}
			if err != nil {
				return
			}
		}
	}()
	expect := func(seq int64) {
		t.Helper()
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("next: %v", r.err)
			}
			if r.e.Seq != seq {
				t.Fatalf("got seq %d, want %d", r.e.Seq, seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for seq %d", seq)
		}
	}
	expect(0)

	// Grow the file: one whole line, then a line split across two writes.
	if _, err := f.Write(line(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	expect(1)
	split := line(t, 2, 2)
	if _, err := f.Write(split[:5]); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-results:
		t.Fatalf("partial line produced an event: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := f.Write(split[5:]); err != nil {
		t.Fatal(err)
	}
	expect(2)

	// Close unblocks the follower with io.EOF.
	tl.Close()
	select {
	case r := <-results:
		if r.err != io.EOF {
			t.Fatalf("after Close: %v, want io.EOF", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Next")
	}
}

// TestTailerDiagnostics routes decoder findings through OnDiag while the
// stream keeps going: a malformed line is skipped, a sequence gap is
// reported and counted as dropped.
func TestTailerDiagnostics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var data []byte
	data = append(data, line(t, 0, 0)...)
	data = append(data, []byte("{not json\n")...)
	data = append(data, line(t, 5, 1)...) // gap: 1..4 missing
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tl := NewTailer(f)
	var kinds []DiagKind
	tl.OnDiag = func(d Diagnostic) { kinds = append(kinds, d.Kind) }
	var seqs []int64
	for {
		e, err := tl.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 5 {
		t.Fatalf("decoded seqs %v, want [0 5]", seqs)
	}
	wantKinds := []DiagKind{DiagMalformedLine, DiagSequenceGap}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("diagnostics %v, want %v", kinds, wantKinds)
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("diagnostic %d is %v, want %v", i, kinds[i], wantKinds[i])
		}
	}
	if d := tl.Decoder().Dropped(); d != 4 {
		t.Fatalf("dropped %d, want 4", d)
	}
}

// TestDecoderMatchesRead pins the refactor: feeding a stream through the
// incremental Decoder line by line must produce exactly what Read does.
func TestDecoderMatchesRead(t *testing.T) {
	var data []byte
	data = append(data, line(t, 0, 0)...)
	data = append(data, []byte("garbage\n")...)
	data = append(data, line(t, 3, 2)...)
	data = append(data, line(t, 4, 1)...) // time regression

	whole, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	var events []telemetry.Event
	var diags []Diagnostic
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] != '\n' {
			continue
		}
		e, ds, ok := dec.Decode(data[start:i])
		diags = append(diags, ds...)
		if ok {
			events = append(events, e)
		}
		start = i + 1
	}
	if len(events) != len(whole.Events) {
		t.Fatalf("decoder %d events, Read %d", len(events), len(whole.Events))
	}
	if len(diags) != len(whole.Diags) {
		t.Fatalf("decoder diags %v, Read %v", diags, whole.Diags)
	}
	for i := range diags {
		if diags[i] != whole.Diags[i] {
			t.Fatalf("diag %d: %v vs %v", i, diags[i], whole.Diags[i])
		}
	}
	if dec.Dropped() != whole.Dropped {
		t.Fatalf("dropped %d vs %d", dec.Dropped(), whole.Dropped)
	}
}
