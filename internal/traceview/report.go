package traceview

import (
	"fmt"
	"io"

	"predrm/internal/gantt"
	"predrm/internal/metrics"
	"predrm/internal/platform"
)

// WriteReport renders a human-readable analysis of the timeline: admission
// and energy totals, reservation behaviour, deadline-slack distribution,
// solver-latency percentiles, per-resource utilization, and (when the
// platform is known and execution events are present) the executed
// schedule as a gantt chart. ganttCols <= 0 disables the chart.
func WriteReport(w io.Writer, tl *Timeline, plat *platform.Platform, ganttCols int) error {
	sum := tl.Summarize()
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	p("trace span:        t=[%.3f, %.3f] (%d resources referenced)", tl.Start, tl.End, tl.Resources)
	p("requests:          %d arrivals, %d admitted, %d rejected (%.2f%%)",
		sum.Requests, sum.Admitted, sum.Rejected, sum.RejectionPct)
	p("energy:            %.2f J total = %.2f exec + %.2f migration (%d migrations); critical %.2f J",
		sum.TotalEnergy, sum.ExecEnergy, sum.MigrationEnergy, sum.Migrations, sum.CriticalEnergy)
	p("reservations:      %d planned, %d honoured, %d backfilled",
		sum.ResvPlanned, sum.ResvHonoured, sum.ResvBackfilled)
	if tl.CriticalReleases > 0 || tl.CriticalFinishes > 0 {
		p("critical:          %d releases, %d completions", tl.CriticalReleases, tl.CriticalFinishes)
	}
	p("deadline misses:   %d", sum.DeadlineMisses)
	if slacks := tl.Slacks(); len(slacks) > 0 {
		s := metrics.Summarise(slacks)
		p10, _ := metrics.Percentile(slacks, 10)
		p50, _ := metrics.Percentile(slacks, 50)
		p("deadline slack:    min %.3f, p10 %.3f, p50 %.3f, max %.3f (%d finished)",
			s.Min, p10, p50, s.Max, s.N)
	}
	if len(tl.SolverWallSec) > 0 {
		p("solver latency:    p50 %.1f µs, p95 %.1f µs, max %.1f µs (%d activations)",
			sum.SolverP50*1e6, sum.SolverP95*1e6, sum.SolverMax*1e6, len(tl.SolverWallSec))
	}
	if n := len(tl.SolverJobs); n > 0 {
		js := metrics.Summarise(tl.SolverJobs)
		p("problem size:      mean %.1f jobs, max %.0f", js.Mean, js.Max)
	}
	p("in-flight peak:    %d jobs", sum.InFlightPeak)

	util := tl.Utilization()
	for res, u := range util {
		p("utilization %-6s %5.1f%%", resourceName(plat, res)+":", 100*u)
	}
	if tl.Dropped > 0 {
		p("ring drops:        %d events lost (derived numbers are lower bounds)", tl.Dropped)
	}
	for _, d := range tl.Diags {
		p("diagnostic:        %s", d)
	}

	if ganttCols > 0 && plat != nil && plat.Len() >= tl.Resources {
		if segs := tl.ExecSegments(); len(segs) > 0 {
			p("")
			p("executed schedule (reconstructed from lifecycle events):")
			chart, err := gantt.New(plat, segs)
			if err != nil {
				return err
			}
			if err := chart.Render(w, ganttCols); err != nil {
				return err
			}
		}
	}
	return nil
}

// resourceName labels resource res from the platform when it covers it,
// falling back to a generic id for traces from unknown hardware.
func resourceName(plat *platform.Platform, res int) string {
	if plat != nil && res < plat.Len() {
		return plat.Resource(res).Name
	}
	return fmt.Sprintf("R%d", res)
}
