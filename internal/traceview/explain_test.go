package traceview

import (
	"bytes"
	"strings"
	"testing"

	"predrm/internal/telemetry"
)

// goldenTimeline loads the simulator's golden trace (recorded with
// provenance enabled) and builds its timeline.
func goldenTimeline(t *testing.T) *Timeline {
	t.Helper()
	d, err := ReadFile("../sim/testdata/events.golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Diags) != 0 {
		t.Fatalf("golden trace has diagnostics: %v", d.Diags)
	}
	return BuildTimeline(d)
}

// TestExplainGoldenRejections checks the acceptance criterion: every
// rejection in the golden trace reconstructs into a complete decision
// narrative — a per-candidate feasibility verdict and the solver-chain
// hops — not just the terminal reason string.
func TestExplainGoldenRejections(t *testing.T) {
	tl := goldenTimeline(t)
	rejected := tl.RejectedRequests()
	if len(rejected) == 0 {
		t.Fatal("golden trace has no rejections; the fixture should produce some")
	}
	for _, req := range rejected {
		x, err := Explain(tl, req)
		if err != nil {
			t.Fatalf("request %d: %v", req, err)
		}
		if x.Prov == nil {
			t.Fatalf("request %d: no provenance record attached to the rejection", req)
		}
		if len(x.Prov.Attempts) == 0 {
			t.Errorf("request %d: no protocol attempts recorded", req)
		}
		if len(x.Prov.Stages) == 0 {
			t.Errorf("request %d: no solver-chain hops recorded", req)
		}
		if len(x.Prov.Candidates) == 0 {
			t.Errorf("request %d: no candidate feasibility verdicts recorded", req)
		}

		var buf bytes.Buffer
		if err := WriteExplanation(&buf, x); err != nil {
			t.Fatalf("request %d: render: %v", req, err)
		}
		text := buf.String()
		for _, want := range []string{
			"REJECTED", string(telemetry.ReasonNoFeasibleMapping),
			"solver chain:", "candidate feasibility verdicts:",
			"admission protocol",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("request %d: explanation missing %q:\n%s", req, want, text)
			}
		}
		// The narrative names a concrete per-candidate cause, not a bare
		// outcome: at least one exclusion verdict must appear.
		if !strings.Contains(text, string(telemetry.VerdictEDFInfeasible)) &&
			!strings.Contains(text, string(telemetry.VerdictNoCapacity)) &&
			!strings.Contains(text, string(telemetry.VerdictNotExecutable)) {
			t.Errorf("request %d: no exclusion verdict in narrative:\n%s", req, text)
		}
	}
}

// TestExplainGoldenAdmissions checks admitted requests render with their
// chosen resource and placement order.
func TestExplainGoldenAdmissions(t *testing.T) {
	tl := goldenTimeline(t)
	checked := 0
	for _, o := range tl.SortedRequests() {
		if !o.Admitted {
			continue
		}
		checked++
		x, err := Explain(tl, o.Req)
		if err != nil {
			t.Fatalf("request %d: %v", o.Req, err)
		}
		var buf bytes.Buffer
		if err := WriteExplanation(&buf, x); err != nil {
			t.Fatal(err)
		}
		text := buf.String()
		if !strings.Contains(text, "ADMITTED") {
			t.Fatalf("request %d: missing ADMITTED header:\n%s", o.Req, text)
		}
		if x.Prov != nil && len(x.Prov.Picks) > 0 &&
			!strings.Contains(text, "placement order") {
			t.Errorf("request %d: picks recorded but not rendered:\n%s", o.Req, text)
		}
	}
	if checked == 0 {
		t.Fatal("golden trace has no admissions")
	}
}

// TestExplainUnknownRequest checks the error paths.
func TestExplainUnknownRequest(t *testing.T) {
	tl := goldenTimeline(t)
	if _, err := Explain(tl, 999_999); err == nil {
		t.Fatal("want error for a request outside the trace")
	}
}

// TestExplainWithoutProvenance checks the renderer degrades gracefully on
// traces recorded with provenance off.
func TestExplainWithoutProvenance(t *testing.T) {
	tl := &Timeline{Requests: map[int]*RequestOutcome{
		3: {Req: 3, Task: 1, Rejected: true,
			RejectReason: string(telemetry.ReasonNoFeasibleMapping)},
	}}
	x, err := Explain(tl, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExplanation(&buf, x); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no provenance record") {
		t.Fatalf("want pointer to enabling provenance, got:\n%s", buf.String())
	}
}

// TestDecoderUnknownReason checks a free-text reason on a known event type
// surfaces as the typed DiagUnknownReason diagnostic (and the event is
// kept), while unknown event types skip reason validation.
func TestDecoderUnknownReason(t *testing.T) {
	stream := strings.Join([]string{
		`{"seq":0,"t":1,"type":"reject","req":0,"task":1,"res":-1,"reason":"solver said no"}`,
		`{"seq":1,"t":2,"type":"wormhole","req":-1,"task":-1,"res":-1,"reason":"free text"}`,
		`{"seq":2,"t":3,"type":"reject","req":1,"task":1,"res":-1,"reason":"no_feasible_mapping"}`,
	}, "\n") + "\n"
	d, err := Read(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 3 {
		t.Fatalf("got %d events, want 3 (unknown reasons keep the event)", len(d.Events))
	}
	var unknownReason []Diagnostic
	for _, diag := range d.Diags {
		if diag.Kind == DiagUnknownReason {
			unknownReason = append(unknownReason, diag)
		}
	}
	if len(unknownReason) != 1 {
		t.Fatalf("want exactly one %v (line 1 only), got %v", DiagUnknownReason, d.Diags)
	}
	if unknownReason[0].Line != 1 {
		t.Fatalf("diagnostic on line %d, want 1", unknownReason[0].Line)
	}
	if !strings.Contains(unknownReason[0].Detail, "solver said no") {
		t.Fatalf("detail should quote the reason: %s", unknownReason[0].Detail)
	}
}

// TestDiffReasonRows checks WriteDiff grows one row per decision reason
// seen in either summary.
func TestDiffReasonRows(t *testing.T) {
	tl := goldenTimeline(t)
	s := tl.Summarize()
	if s.Rejected > 0 && len(s.RejectReasons) == 0 {
		t.Fatal("summary lost the rejection reasons")
	}
	var buf bytes.Buffer
	if err := WriteDiff(&buf, "a", s, "b", s); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "reject: "+string(telemetry.ReasonNoFeasibleMapping)) {
		t.Fatalf("diff missing reject reason row:\n%s", text)
	}
	if !strings.Contains(text, "admit: ") {
		t.Fatalf("diff missing admit reason rows:\n%s", text)
	}
}
