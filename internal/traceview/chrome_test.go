package traceview

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"predrm/internal/telemetry"
)

// chromeFixture is a small handcrafted stream exercising every slice kind:
// plain execution on two resources, a reserved gap that is honoured, and a
// critical release on the GPU.
func chromeFixture() *Decoded {
	mk := func(seq int64, t float64, typ telemetry.EventType, req, task, res int, value float64, reason string) telemetry.Event {
		return telemetry.Event{Seq: seq, T: t, Type: typ, Req: req, Task: task, Res: res, Value: value, Reason: reason}
	}
	return &Decoded{Events: []telemetry.Event{
		mk(0, 0, telemetry.EvArrival, 0, 3, -1, 5, ""),
		mk(1, 0, telemetry.EvAdmit, 0, 3, 0, 0, "plain"),
		mk(2, 0, telemetry.EvJobStart, 0, 3, 0, 1, "start"),
		mk(3, 0, telemetry.EvJobStart, -2, 7, 2, 1, "start"),
		mk(4, 0.5, telemetry.EvReservationPlanned, 1, 4, 1, 0.8, ""),
		mk(5, 0.7, telemetry.EvJobFinish, -2, 7, 2, 1.0, "critical"),
		mk(6, 1.0, telemetry.EvArrival, 1, 4, -1, 6, ""),
		mk(7, 1.0, telemetry.EvAdmit, 1, 4, 1, 0, "plain"),
		mk(8, 1.0, telemetry.EvReservationHonoured, 1, 4, 1, 0.8, ""),
		mk(9, 1.0, telemetry.EvJobStart, 1, 4, 1, 1, "start"),
		mk(10, 2.0, telemetry.EvJobFinish, 0, 3, 0, 3.5, ""),
		mk(11, 3.0, telemetry.EvJobFinish, 1, 4, 1, 2.0, ""),
	}}
}

// TestChromeTraceGolden locks the Perfetto export byte-for-byte and checks
// the output is one valid JSON document of well-formed trace events.
// Regenerate with: go test ./internal/traceview -run Chrome -update-golden
func TestChromeTraceGolden(t *testing.T) {
	tl := BuildTimeline(chromeFixture())
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tl, []string{"CPU1", "CPU2", "GPU1"}); err != nil {
		t.Fatal(err)
	}

	// The whole export must parse as a single trace-event document.
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for i, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d has no phase: %v", i, e)
		}
		phases[ph]++
	}
	// 1 process + 3 thread metadata rows, 4 slices (2 exec + 1 critical +
	// 1 reservation), and one counter sample per in-flight step.
	if phases["M"] != 4 || phases["X"] != 4 || phases["C"] != 4 {
		t.Fatalf("phase census M=%d X=%d C=%d, want 4/4/4", phases["M"], phases["X"], phases["C"])
	}

	golden := filepath.Join("testdata", "chrome.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export diverged from %s (rerun with -update-golden if intended);\ngot:\n%s", golden, buf.Bytes())
	}
}
