package traceview

import (
	"fmt"
	"math"
	"sort"

	"predrm/internal/platform"
	"predrm/internal/telemetry"
)

// ViolationKind classifies an invariant the replayed trace broke.
type ViolationKind int

const (
	// VDeadlineMiss: an admitted request finished after its deadline.
	VDeadlineMiss ViolationKind = iota
	// VMissingCompletion: an admitted request never finished although the
	// trace extends past its deadline.
	VMissingCompletion
	// VGPUPreempted: a job stopped executing on a non-preemptable
	// resource before completing.
	VGPUPreempted
	// VReservationDropped: a reservation planned under plan-based
	// execution was neither honoured nor explicitly backfilled although
	// its window began before the next activation replaced it.
	VReservationDropped
	// VRejectedExecuted: a rejected request appeared on a resource.
	VRejectedExecuted
	// VConflictingDecision: a request was both admitted and rejected.
	VConflictingDecision
	// VOrphanAdmission: a request was admitted but has no arrival event
	// (only reported for gap-free traces).
	VOrphanAdmission
	// VExecBeforeArrival: a request executed before it arrived.
	VExecBeforeArrival
	// VOrphanFallback: the resilience chain reported a solver_fallback for
	// a request that has no solver_invoked event — a fallback can only
	// happen inside a running admission protocol (only reported for
	// gap-free traces).
	VOrphanFallback
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case VDeadlineMiss:
		return "deadline_miss"
	case VMissingCompletion:
		return "missing_completion"
	case VGPUPreempted:
		return "gpu_preempted"
	case VReservationDropped:
		return "reservation_dropped"
	case VRejectedExecuted:
		return "rejected_executed"
	case VConflictingDecision:
		return "conflicting_decision"
	case VOrphanAdmission:
		return "orphan_admission"
	case VExecBeforeArrival:
		return "exec_before_arrival"
	case VOrphanFallback:
		return "orphan_fallback"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation is one broken invariant found by replaying a trace.
type Violation struct {
	Kind ViolationKind
	// Req is the request involved, or -1.
	Req int
	// Res is the resource involved, or -1.
	Res int
	// T locates the violation in simulated time.
	T float64
	// Detail elaborates.
	Detail string
}

// String formats the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f req=%d res=%d %s: %s", v.T, v.Req, v.Res, v.Kind, v.Detail)
}

// AuditOptions configures Audit.
type AuditOptions struct {
	// Platform, when non-nil, enables the preemption-kind check (which
	// resources are non-preemptable is not serialised into traces). It
	// must have at least as many resources as the trace references.
	Platform *platform.Platform
}

// Audit replays a decoded trace against the resource manager's invariants
// and returns every violation found: admitted requests complete before
// their deadlines, non-preemptable resources are never preempted, planned
// reservations are honoured or explicitly backfilled, and rejected
// requests never execute. A clean trace returns nil. Ring drops
// (d.Dropped > 0) soften the absence checks — a missing event is then
// indistinguishable from a dropped one — but never the positive checks.
func Audit(d *Decoded, opts AuditOptions) []Violation {
	tl := BuildTimeline(d)
	var vs []Violation

	for _, o := range tl.SortedRequests() {
		switch {
		case o.Admitted && o.Rejected:
			vs = append(vs, Violation{Kind: VConflictingDecision, Req: o.Req, Res: -1, T: o.AdmitTime,
				Detail: "request both admitted and rejected"})
		case o.Rejected && (o.Executed || o.Finished || o.Migrations > 0):
			vs = append(vs, Violation{Kind: VRejectedExecuted, Req: o.Req, Res: -1, T: o.Arrival,
				Detail: "rejected request appeared on a resource"})
		case o.Admitted && !o.HasArrival && tl.Dropped == 0:
			vs = append(vs, Violation{Kind: VOrphanAdmission, Req: o.Req, Res: o.AdmitRes, T: o.AdmitTime,
				Detail: "admitted request has no arrival event"})
		case o.Admitted && o.HasArrival && o.Finished && o.FinishTime > o.Deadline+timeEps:
			vs = append(vs, Violation{Kind: VDeadlineMiss, Req: o.Req, Res: o.AdmitRes, T: o.FinishTime,
				Detail: fmt.Sprintf("finished %.6f after deadline %.6f (slack %.6f)",
					o.FinishTime, o.Deadline, o.Slack())})
		case o.Admitted && o.HasArrival && !o.Finished && tl.Dropped == 0 && tl.End > o.Deadline+timeEps:
			vs = append(vs, Violation{Kind: VMissingCompletion, Req: o.Req, Res: o.AdmitRes, T: o.Deadline,
				Detail: fmt.Sprintf("no completion although the trace extends to %.6f, past the deadline %.6f",
					tl.End, o.Deadline)})
		}
	}

	// Execution must not precede arrival.
	for _, e := range d.Events {
		if e.Type != telemetry.EvJobStart || e.Req < 0 {
			continue
		}
		if o, ok := tl.Requests[e.Req]; ok && o.HasArrival && e.T < o.Arrival-timeEps {
			vs = append(vs, Violation{Kind: VExecBeforeArrival, Req: e.Req, Res: e.Res, T: e.T,
				Detail: fmt.Sprintf("started %.6f before arrival %.6f", e.T, o.Arrival)})
		}
	}

	// Non-preemptable resources run every started job to completion.
	if p := opts.Platform; p != nil {
		for _, e := range d.Events {
			if e.Type != telemetry.EvJobPreempt || e.Res < 0 || e.Res >= p.Len() {
				continue
			}
			if !p.Resource(e.Res).Preemptable() {
				vs = append(vs, Violation{Kind: VGPUPreempted, Req: e.Req, Res: e.Res, T: e.T,
					Detail: fmt.Sprintf("%s (%s) preempted a started job",
						p.Resource(e.Res).Name, e.Reason)})
			}
		}
	}

	vs = append(vs, auditReservations(d)...)
	if tl.Dropped == 0 {
		vs = append(vs, auditFallbacks(d)...)
	}

	sort.SliceStable(vs, func(a, b int) bool {
		if vs[a].T != vs[b].T {
			return vs[a].T < vs[b].T
		}
		return vs[a].Req < vs[b].Req
	})
	return vs
}

// auditReservations checks that every planned reservation was honoured or
// explicitly backfilled. A reservation is installed at an activation and
// replaced at the next one (admission, rejection, or critical release —
// each triggers a replan that reports the fate of the standing batch); it
// only owes an outcome when its window began before that boundary.
func auditReservations(d *Decoded) []Violation {
	var vs []Violation
	for i, e := range d.Events {
		if e.Type != telemetry.EvReservationPlanned {
			continue
		}
		arrival := e.Value
		resolved := false
		for _, f := range d.Events[i+1:] {
			if (f.Type == telemetry.EvReservationHonoured || f.Type == telemetry.EvReservationBackfilled) &&
				f.Res == e.Res && math.Abs(f.Value-arrival) <= timeEps {
				resolved = true
				break
			}
		}
		if resolved {
			continue
		}
		// The batch is replaced at the first boundary after planning; with
		// no boundary the end-of-run flush reports everything pending. If
		// the reserved window began before that point, an outcome was owed.
		flushT := math.Inf(-1)
		if n := len(d.Events); n > 0 {
			flushT = d.Events[n-1].T
		}
		if bound, ok := firstBoundaryAfter(d.Events, i); ok {
			flushT = bound
		}
		if flushT+timeEps >= arrival {
			vs = append(vs, Violation{Kind: VReservationDropped, Req: e.Req, Res: e.Res, T: e.T,
				Detail: fmt.Sprintf("reservation for predicted arrival %.6f neither honoured nor backfilled by the next activation (t=%.6f)",
					arrival, flushT)})
		}
	}
	return vs
}

// auditFallbacks checks that every solver_fallback event (the resilience
// chain degrading, see core.BudgetedSolver) is anchored to a request whose
// admission protocol actually ran: a fallback for a request with no
// solver_invoked event means the chain was driven outside the protocol the
// trace describes. Only meaningful for gap-free traces — the caller gates
// on Dropped == 0.
func auditFallbacks(d *Decoded) []Violation {
	invoked := make(map[int]bool)
	for _, e := range d.Events {
		if e.Type == telemetry.EvSolverInvoked && e.Req >= 0 {
			invoked[e.Req] = true
		}
	}
	var vs []Violation
	for _, e := range d.Events {
		if e.Type != telemetry.EvSolverFallback || e.Req < 0 || invoked[e.Req] {
			continue
		}
		vs = append(vs, Violation{Kind: VOrphanFallback, Req: e.Req, Res: -1, T: e.T,
			Detail: fmt.Sprintf("solver fallback to stage %d (%s) for a request never handed to the solver",
				int(e.Value), e.Reason)})
	}
	return vs
}

// firstBoundaryAfter returns the time of the first replan boundary
// (admission, rejection, or critical release) after event index i.
func firstBoundaryAfter(events []telemetry.Event, i int) (float64, bool) {
	for _, f := range events[i+1:] {
		switch f.Type {
		case telemetry.EvAdmit, telemetry.EvReject, telemetry.EvCriticalRelease:
			return f.T, true
		}
	}
	return 0, false
}
