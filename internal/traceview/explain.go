package traceview

import (
	"fmt"
	"io"
	"sort"

	"predrm/internal/telemetry"
)

// Explanation is the reconstructed decision narrative of one request: the
// admission outcome from the admit/reject events plus, when the trace was
// recorded with provenance on, the full causal record of how the decision
// was reached.
type Explanation struct {
	// Outcome is the request's folded fate from the timeline.
	Outcome *RequestOutcome
	// Prov is the decision-provenance record, nil when the trace carries
	// no EvDecision for the request (provenance was off).
	Prov *telemetry.Provenance
}

// Explain reconstructs the decision narrative of request req from a built
// timeline. It fails when the trace holds no admission decision for the
// request — an id outside the trace, or a stream whose decision events
// were lost to ring drops.
func Explain(tl *Timeline, req int) (*Explanation, error) {
	o, ok := tl.Requests[req]
	if !ok {
		return nil, fmt.Errorf("traceview: request %d does not appear in the trace", req)
	}
	if !o.Admitted && !o.Rejected {
		return nil, fmt.Errorf("traceview: request %d has no admission decision in the trace", req)
	}
	x := &Explanation{Outcome: o}
	if o.Decision != nil {
		x.Prov = o.Decision.Prov
	}
	return x, nil
}

// WriteExplanation renders the narrative as a text report: outcome,
// protocol attempts, solver-chain hops, per-candidate feasibility
// verdicts, regret placement order, branch-and-bound effort, and remapping
// deltas. Sections absent from the record are omitted.
func WriteExplanation(w io.Writer, x *Explanation) error {
	o := x.Outcome
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	switch {
	case o.Rejected:
		p("request %d (task %d): REJECTED — %s\n", o.Req, o.Task, o.RejectReason)
	case o.Admitted:
		p("request %d (task %d): ADMITTED — %s onto resource %d\n",
			o.Req, o.Task, o.AdmitReason, o.AdmitRes)
	}
	if o.HasArrival {
		p("  arrival t=%.3f, absolute deadline t=%.3f\n", o.Arrival, o.Deadline)
	}
	if o.Admitted {
		p("  decided t=%.3f\n", o.AdmitTime)
	}

	pr := x.Prov
	if pr == nil {
		p("\nno provenance record in the trace (record with provenance enabled\n")
		p("— sim.Config.Provenance or rmsim -provenance — for the full causal chain)\n")
		return err
	}
	if d := o.Decision; d != nil && o.Admitted && d.Value > 0 {
		p("  decision energy %.3f\n", d.Value)
	}

	if len(pr.Attempts) > 0 {
		p("\nadmission protocol (solve, then drop predictions one at a time):\n")
		for i, a := range pr.Attempts {
			verdict := "infeasible"
			if a.Feasible {
				verdict = fmt.Sprintf("feasible, energy %.3f", a.Energy)
			}
			p("  attempt %d: %d job(s), %d predicted -> %s\n", i, a.Jobs, a.Predicted, verdict)
		}
	}

	if len(pr.Stages) > 0 {
		p("\nsolver chain:\n")
		for _, h := range pr.Stages {
			p("  [attempt %d] stage %d", h.Attempt, h.Stage)
			if h.Name != "" {
				p(" %q", h.Name)
			}
			p(": %s", h.Outcome)
			if h.Nodes > 0 {
				p(", %d node(s)", h.Nodes)
			}
			if h.WallNs > 0 {
				p(", %.1fµs", float64(h.WallNs)/1e3)
			}
			if h.Err != "" {
				p(" (%s)", h.Err)
			}
			p("\n")
		}
	}

	if len(pr.Candidates) > 0 {
		p("\ncandidate feasibility verdicts:\n")
		for _, c := range pr.Candidates {
			p("  [attempt %d] job %d on res %d: %s", c.Attempt, c.Job, c.Res, c.Verdict)
			switch c.Verdict {
			case telemetry.VerdictChosen:
				p(" (des %.3f, slack %.3f)", c.Des, c.Slack)
			case telemetry.VerdictEDFInfeasible:
				path := "sorted scan"
				if c.EDFPath {
					path = "EDF simulation"
				}
				p(" (des %.3f, slack %.3f, breaks deadline t=%.3f, %s)",
					c.Des, c.Slack, c.Deadline, path)
			case telemetry.VerdictNoCapacity, telemetry.VerdictNotTried:
				p(" (des %.3f)", c.Des)
			}
			p("\n")
		}
	}

	if len(pr.Picks) > 0 {
		p("\nplacement order (max regret first):\n")
		for _, s := range pr.Picks {
			p("  [attempt %d] job %d -> res %d", s.Attempt, s.Job, s.Res)
			if s.Forced {
				p(" (forced: single feasible resource)")
			} else {
				p(" (regret %.3f)", s.Regret)
			}
			p("\n")
		}
	}

	if len(pr.BB) > 0 {
		p("\nbranch & bound:\n")
		for _, b := range pr.BB {
			p("  [attempt %d] %d node(s)", b.Attempt, b.Nodes)
			if b.Truncated {
				p(" (budget truncated)")
			}
			if b.Workers > 0 {
				p(", %d task(s) on %d worker(s)", b.Tasks, b.Workers)
			}
			if b.CacheHits+b.CacheMisses > 0 {
				p(", cache %d hit / %d miss", b.CacheHits, b.CacheMisses)
			}
			if b.Incumbent > 0 {
				p(", incumbent %.3f", b.Incumbent)
			}
			p("\n")
		}
	}

	if len(pr.Remaps) > 0 {
		p("\nremapped standing jobs (vs previous activation):\n")
		for _, m := range pr.Remaps {
			charge := "uncharged"
			if m.Charged {
				charge = "charged migration"
			}
			p("  job %d: res %d -> res %d (%s)\n", m.Job, m.From, m.To, charge)
		}
	}
	return err
}

// RejectedRequests returns the ids of every rejected request, sorted.
func (tl *Timeline) RejectedRequests() []int {
	var out []int
	for req, o := range tl.Requests {
		if o.Rejected {
			out = append(out, req)
		}
	}
	sort.Ints(out)
	return out
}
