// Package engine is the activation engine shared by every driver of the
// paper's admission protocol: one request's worth of RM work — arrival
// intake, problem assembly (active jobs + arriving job + predicted jobs +
// upcoming critical releases), the admission protocol, applying the
// resulting mapping with migration charging, and executing the planned
// EDF schedule (including reservations for predicted tasks) between
// activations.
//
// The engine is clock-agnostic: it never reads wall time. A driver owns
// the clock and pushes time into the engine — the discrete-event
// simulator (internal/sim) jumps virtual time from arrival to arrival,
// while the wall-clock server (internal/serve) calls AdvanceTo with the
// current wall reading and schedules its next call from NextWake. Both
// drivers therefore run byte-identical decision logic: for the same
// sequence of (arrival time, request) activations the engine produces the
// same admissions, mappings, migrations and completions regardless of who
// is driving (DESIGN.md §11).
//
// Between RM activations the platform executes the decision's *planned*
// EDF schedule, including the capacity reserved for the predicted task: a
// queued job planned after the predicted one waits for it. This is what
// makes a reservation on a non-preemptable resource effective — under
// work-conserving execution the next queued job would grab the reserved
// gap, get pinned, and block the real task when it arrives, silently
// cancelling the benefit prediction is supposed to deliver. The
// work-conserving alternative is available as Config.WorkConserving for
// ablation. With no prediction the two coincide (the planned schedule is
// the work-conserving EDF schedule), preserving the paper's "no preemption
// between two activations" property.
//
// An Engine is not safe for concurrent use: Activate, AdvanceTo, Drain
// and Finalize must be externally serialised, matching the Solver and
// BudgetedSolver concurrency contracts (one activation at a time per
// solver instance). internal/serve holds one mutex around the engine and
// its solver for exactly this reason.
package engine

import (
	"errors"
	"fmt"
	"math"
	"time"

	"predrm/internal/core"
	"predrm/internal/critical"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// Config assembles one engine (one run's worth of RM state).
type Config struct {
	// Platform to execute on.
	Platform *platform.Platform
	// TaskSet resolving request types.
	TaskSet *task.Set
	// Solver is the mapping engine (heuristic, exact, or MILP).
	Solver core.Solver
	// Predictor provides next-request forecasts; nil disables prediction.
	Predictor predict.Predictor
	// Lookahead is the forecast horizon: how many upcoming requests are
	// included as planning constraints. 0 and 1 both mean the paper's
	// single-step prediction; larger values require a Predictor that
	// implements predict.MultiPredictor (the library's extension).
	Lookahead int
	// Critical is the design-time safety-critical workload (Sec 2); nil
	// disables it. Critical jobs release periodically on their static
	// resources with guaranteed service: every adaptive admission accounts
	// for the upcoming critical releases inside its decision window.
	Critical *critical.Set
	// Policy selects migration charging (default ChargeStartedOnly).
	Policy sched.MigrationPolicy
	// ExtraOverhead is added to the predictor's own overhead as decision
	// latency, in engine time.
	ExtraOverhead float64
	// OverheadHook, when non-nil, contributes additional per-request
	// decision latency (engine time): it is called once per arrival
	// with the request index and arrival time, and its result is added to
	// ExtraOverhead and the predictor overhead. internal/faultinject uses
	// it to inject latency spikes; it must be deterministic in (req,
	// arrival) for reproducible runs and must not return a negative value.
	OverheadHook func(req int, arrival float64) float64
	// WorkConserving switches execution between activations from the
	// planned schedule (default: reservations for the predicted task are
	// honoured) to greedy EDF dispatch that backfills reserved gaps.
	// Ablation A4 quantifies the difference; without prediction the modes
	// are identical.
	WorkConserving bool
	// Audit re-verifies at every activation that the active jobs' current
	// mappings are still EDF-feasible, reporting the first violation
	// through the returned error. Meant for tests and debugging; the
	// invariant must hold for a sound RM.
	Audit bool
	// RecordExecution captures the executed schedule as Result.Execution
	// (per-resource segments), for Gantt rendering and post-hoc analysis.
	RecordExecution bool
	// Tracer receives structured events (arrivals, predictions, solver
	// latencies, admissions, migrations, reservations); nil disables
	// tracing at near-zero cost.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, collects counters and latency histograms for
	// the run; the snapshot is surfaced as Result.Telemetry. Solvers
	// implementing telemetry.Instrumentable are attached automatically.
	Metrics *telemetry.Registry
	// StateProbe, when non-nil, receives a point-in-time StateSample after
	// every admission decision and once more when the run drains — the
	// clock-agnostic hook the live introspection plane (internal/obs)
	// mounts to publish RM state and feed SLO burn-rate windows. It is
	// called synchronously from the activation, so it must be fast and
	// must not retain the sample's Resources slice beyond the call.
	StateProbe func(StateSample)
	// Provenance enables per-activation decision-provenance recording: a
	// ProvRecorder is attached to the solver (telemetry.ProvenanceAware)
	// and every admission decision is followed by an EvDecision event
	// carrying the full causal record — solver-chain hops, candidate
	// feasibility verdicts, regret picks, branch-and-bound statistics, and
	// remapping deltas. Off by default: recording widens the solver's
	// feasibility probes to explain mode and allocates per activation, so
	// the hot path keeps its allocation-free benchmark gate when disabled.
	// Requires Tracer to be useful (the record rides the event stream).
	Provenance bool
}

// StateSample is the RM state handed to Config.StateProbe: cumulative
// admission counters plus the current in-flight picture. Counters are
// cumulative since the start of the run so samplers can window them.
type StateSample struct {
	// Time is the engine time of the sample.
	Time float64 `json:"time"`
	// Req is the request index just decided, or -1 for the final
	// end-of-run sample.
	Req int `json:"req"`
	// Requests counts arrivals decided so far (== Accepted + Rejected).
	Requests int `json:"requests"`
	// Accepted and Rejected are cumulative admission outcomes.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Finished counts adaptive jobs that completed so far.
	Finished int `json:"finished"`
	// DeadlineMisses counts accepted jobs that finished late so far (0 for
	// a sound RM).
	DeadlineMisses int `json:"deadline_misses"`
	// InFlight is the number of currently active jobs (adaptive and
	// critical).
	InFlight int `json:"in_flight"`
	// Resources holds one entry per platform resource, indexed by id.
	Resources []ResourceSample `json:"resources"`
}

// ResourceSample is one resource's slice of a StateSample.
type ResourceSample struct {
	// Jobs counts active jobs currently mapped to the resource.
	Jobs int `json:"jobs"`
	// Reserved counts standing reservations for predicted jobs on it.
	Reserved int `json:"reserved"`
	// NextDeadline is the earliest absolute deadline among the mapped
	// jobs, or 0 when the resource is empty (JSON cannot carry +Inf).
	NextDeadline float64 `json:"next_deadline"`
}

// ExecSegment is one contiguous piece of executed schedule: job JobID ran
// on Resource during [Start, End). Migration-debt service is included in
// the job's occupancy.
type ExecSegment struct {
	Resource int     `json:"resource"`
	JobID    int     `json:"job"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Platform == nil:
		return errors.New("engine: no platform")
	case c.TaskSet == nil:
		return errors.New("engine: no task set")
	case c.Solver == nil:
		return errors.New("engine: no solver")
	case c.ExtraOverhead < 0:
		return errors.New("engine: negative overhead")
	case c.Lookahead < 0:
		return errors.New("engine: negative lookahead")
	case c.Lookahead > 1 && c.Predictor == nil:
		return errors.New("engine: lookahead needs a predictor")
	}
	return nil
}

// JobRecord is the per-request outcome.
type JobRecord struct {
	// ID is the request's index in the activation sequence.
	ID int
	// Type is the task type.
	Type int
	// Arrival and AbsDeadline are absolute times.
	Arrival, AbsDeadline float64
	// Accepted reports admission.
	Accepted bool
	// FinishTime is the completion time of accepted jobs.
	FinishTime float64
	// Energy is the energy this job consumed, including its migrations.
	Energy float64
	// Migrations counts charged relocations.
	Migrations int
	// MissedDeadline flags an accepted job finishing late — an invariant
	// violation of the resource manager.
	MissedDeadline bool
}

// Result aggregates one run.
type Result struct {
	// Requests is the number of activations; Accepted + Rejected == Requests.
	Requests, Accepted, Rejected int
	// TotalEnergy is the energy of all executed work plus migrations.
	TotalEnergy float64
	// MigrationEnergy is the migration share of TotalEnergy.
	MigrationEnergy float64
	// Migrations counts charged relocations.
	Migrations int
	// DeadlineMisses counts accepted jobs that finished late (must be 0
	// for a sound RM).
	DeadlineMisses int
	// CriticalJobs counts critical releases served; CriticalEnergy their
	// consumption (not included in TotalEnergy); CriticalMisses their
	// deadline violations (must be 0).
	CriticalJobs   int
	CriticalEnergy float64
	CriticalMisses int
	// MakeSpan is when the last accepted job finished.
	MakeSpan float64
	// Execution is the executed schedule when Config.RecordExecution is
	// set, ordered by start time within each resource.
	Execution []ExecSegment
	// Jobs holds one record per request, in activation order.
	Jobs []JobRecord
	// Telemetry is the metrics snapshot of the run when Config.Metrics was
	// set (solver-latency histogram, event counters, solver instruments);
	// nil otherwise.
	Telemetry *telemetry.Snapshot
}

// RejectionPct returns the rejected percentage of requests.
func (r *Result) RejectionPct() float64 {
	if r.Requests == 0 {
		return 0
	}
	return 100 * float64(r.Rejected) / float64(r.Requests)
}

// Outcome is one activation's admission decision as seen by the driver.
type Outcome struct {
	// Req is the request id the driver passed to Activate.
	Req int
	// Time is the engine time the decision was taken at (arrival plus
	// decision overhead, never before the previous decision).
	Time float64
	// Accepted reports admission.
	Accepted bool
	// Resource is the arriving job's mapped resource, or sched.Unmapped
	// for a rejection.
	Resource int
	// Reason is the enumerated telemetry reason for the decision.
	Reason string
	// Energy is the admitted decision's planned energy (0 on rejection).
	Energy float64
}

// planSeg is one piece of the standing schedule: job runs on its resource
// during [start, end); a nil job is a reservation for the predicted task
// (the resource idles through it).
type planSeg struct {
	job        *sched.Job
	start, end float64
}

// instruments bundles the engine's registered metrics. All fields are
// nil when the run has no registry, making every operation a no-op.
type instruments struct {
	requests, accepted, rejected     *telemetry.Counter
	predictions, migrations          *telemetry.Counter
	criticalReleases                 *telemetry.Counter
	resvPlanned, resvHonoured        *telemetry.Counter
	resvBackfilled                   *telemetry.Counter
	solverSec, replanSec, advanceSec *telemetry.Histogram
	activeJobs                       *telemetry.Histogram
	activePeak                       *telemetry.Gauge
}

// newInstruments registers the engine's instruments on reg (nil-safe).
// Instrument names keep their historical sim.* prefix: every dashboard,
// golden exposition file and /statusz field reads them by that name, and
// the metrics describe the same admission protocol regardless of driver.
func newInstruments(reg *telemetry.Registry) instruments {
	return instruments{
		requests:         reg.Counter("sim.requests"),
		accepted:         reg.Counter("sim.accepted"),
		rejected:         reg.Counter("sim.rejected"),
		predictions:      reg.Counter("sim.predictions"),
		migrations:       reg.Counter("sim.migrations"),
		criticalReleases: reg.Counter("sim.critical_releases"),
		resvPlanned:      reg.Counter("sim.reservations_planned"),
		resvHonoured:     reg.Counter("sim.reservations_honoured"),
		resvBackfilled:   reg.Counter("sim.reservations_backfilled"),
		solverSec:        reg.Histogram("sim.solver_seconds", telemetry.LatencyBuckets),
		replanSec:        reg.Histogram("sim.replan_seconds", telemetry.LatencyBuckets),
		advanceSec:       reg.Histogram("sim.advance_seconds", telemetry.LatencyBuckets),
		activeJobs:       reg.Histogram("sim.active_jobs", telemetry.CountBuckets),
		activePeak:       reg.Gauge("sim.active_jobs_peak"),
	}
}

// Engine is the mutable activation-engine state. Create with New; drive
// with Activate (one request), AdvanceTo (execute up to a time), Drain
// (run remaining work out in engine time) and Finalize (assemble the
// Result). Not safe for concurrent use.
type Engine struct {
	cfg    Config
	now    float64
	active []*sched.Job
	rec    []JobRecord
	res    *Result
	// plan holds the standing schedule per resource (plan-based mode).
	plan [][]planSeg
	// exec accumulates executed segments per resource (RecordExecution).
	exec [][]ExecSegment
	// criticalNext tracks the next release index per critical task.
	criticalNext []int
	// trc and ins are the run's telemetry handles (nil-safe no-ops when
	// telemetry is disabled).
	trc *telemetry.Tracer
	ins instruments
	// pendingResv holds the reservations installed by the last replan, so
	// the next activation can report whether they were held (plan mode).
	pendingResv []ghostRef
	// running tracks, per resource, the job currently mid-execution there.
	// It exists only to emit job_start/job_preempt/job_finish lifecycle
	// events and is nil when tracing is disabled.
	running []*sched.Job
	// prov is the decision-provenance arena, non-nil only when
	// Config.Provenance is on; it is Reset at every activation and
	// snapshotted into the EvDecision event.
	prov *telemetry.ProvRecorder
	// critEnergy accumulates per-job energy for critical releases (adaptive
	// jobs use their JobRecord), so job_finish can report consumption.
	// Trace-only, like running.
	critEnergy map[*sched.Job]float64
	// finished counts completed adaptive jobs, for StateProbe samples.
	finished int
	// finalized guards Finalize's one-shot bookkeeping.
	finalized bool
}

// New builds an engine from cfg. The predictor (when present) is Reset so
// successive engines over the same predictor instance start clean.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Predictor != nil {
		cfg.Predictor.Reset()
	}
	r := &Engine{
		cfg: cfg,
		res: &Result{},
		trc: cfg.Tracer,
		ins: newInstruments(cfg.Metrics),
	}
	if r.trc != nil {
		r.running = make([]*sched.Job, cfg.Platform.Len())
		r.critEnergy = make(map[*sched.Job]float64)
	}
	if cfg.Metrics != nil {
		if inst, ok := cfg.Solver.(telemetry.Instrumentable); ok {
			inst.AttachMetrics(cfg.Metrics)
		}
	}
	if cfg.Provenance {
		r.prov = telemetry.NewProvRecorder()
		if pa, ok := cfg.Solver.(telemetry.ProvenanceAware); ok {
			pa.AttachProvenance(r.prov)
		}
	}
	if cfg.Critical != nil {
		if err := cfg.Critical.Validate(cfg.Platform); err != nil {
			return nil, err
		}
		r.criticalNext = make([]int, len(cfg.Critical.Tasks))
	}
	return r, nil
}

// Now returns the engine's current time.
func (r *Engine) Now() float64 { return r.now }

// InFlight returns the number of currently active jobs (adaptive and
// critical).
func (r *Engine) InFlight() int { return len(r.active) }

// Requests returns the number of activations so far.
func (r *Engine) Requests() int { return len(r.rec) }

// AdvanceTo executes the standing schedule up to time t, materialising
// critical releases on the way. Times before the engine's current time
// are a no-op, so a wall-clock driver may call it freely.
func (r *Engine) AdvanceTo(t float64) error {
	return r.advanceTo(t)
}

// Activate runs one full RM activation for request req with driver-issued
// id idx: advance to the arrival, charge decision overhead, assemble the
// S̄ problem, run the admission protocol, apply the mapping and rebuild
// the standing plan. Ids must be issued densely from 0 in activation
// order (they index the per-request records).
func (r *Engine) Activate(idx int, req trace.Request) (Outcome, error) {
	if idx != len(r.rec) {
		return Outcome{}, fmt.Errorf("engine: activation id %d out of order (want %d)", idx, len(r.rec))
	}
	if r.cfg.TaskSet != nil && (req.Type < 0 || req.Type >= r.cfg.TaskSet.Len()) {
		return Outcome{}, fmt.Errorf("engine: request %d references unknown type %d", idx, req.Type)
	}
	if req.Deadline <= 0 {
		return Outcome{}, fmt.Errorf("engine: request %d has non-positive deadline %v", idx, req.Deadline)
	}
	r.rec = append(r.rec, JobRecord{
		ID:          idx,
		Type:        req.Type,
		Arrival:     req.Arrival,
		AbsDeadline: req.Arrival + req.Deadline,
	})
	r.res.Requests++
	r.ins.requests.Inc()
	if err := r.advanceTo(req.Arrival); err != nil {
		return Outcome{}, err
	}
	// Emitted after advancing so the stream stays time-ordered: the
	// execution events between two arrivals carry earlier timestamps.
	if r.trc != nil {
		e := telemetry.NewEvent(req.Arrival, telemetry.EvArrival)
		e.Req = idx
		e.Task = req.Type
		e.Value = req.Arrival + req.Deadline
		r.trc.Emit(e)
	}

	overhead := r.cfg.ExtraOverhead
	if r.cfg.Predictor != nil {
		overhead += r.cfg.Predictor.Overhead()
	}
	if r.cfg.OverheadHook != nil {
		overhead += r.cfg.OverheadHook(idx, req.Arrival)
	}
	decisionTime := math.Max(r.now, req.Arrival+overhead)
	if err := r.advanceTo(decisionTime); err != nil {
		return Outcome{}, err
	}

	if r.cfg.Audit {
		if err := r.auditState(idx); err != nil {
			return Outcome{}, err
		}
	}

	newJob := sched.NewJob(idx, r.cfg.TaskSet.Type(req.Type), req.Arrival, req.Deadline)
	jobs := make([]*sched.Job, 0, len(r.active)+2)
	jobs = append(jobs, r.active...)
	newIdx := len(jobs)
	jobs = append(jobs, newJob)
	jobs = append(jobs, r.upcomingCritical(jobs)...)

	predicting := false
	if r.cfg.Predictor != nil {
		r.cfg.Predictor.Observe(idx, req)
		var preds []predict.Prediction
		if mp, ok := r.cfg.Predictor.(predict.MultiPredictor); ok && r.cfg.Lookahead > 1 {
			preds = mp.PredictK(r.cfg.Lookahead)
		} else if pred, ok := r.cfg.Predictor.Predict(); ok {
			preds = []predict.Prediction{pred}
		}
		for step, pred := range preds {
			if pred.Type >= 0 && pred.Type < r.cfg.TaskSet.Len() && pred.Deadline > 0 {
				pj := sched.NewJob(-1-step, r.cfg.TaskSet.Type(pred.Type), pred.Arrival, pred.Deadline)
				pj.Predicted = true
				jobs = append(jobs, pj)
				predicting = true
				r.ins.predictions.Inc()
				if r.trc != nil {
					e := telemetry.NewEvent(r.now, telemetry.EvPrediction)
					e.Req = idx
					e.Task = pred.Type
					e.Value = pred.Arrival
					r.trc.Emit(e)
				}
			}
		}
	}

	problem := &sched.Problem{
		Platform: r.cfg.Platform,
		Time:     r.now,
		Jobs:     jobs,
		Policy:   r.cfg.Policy,
	}
	if r.trc != nil {
		e := telemetry.NewEvent(r.now, telemetry.EvSolverInvoked)
		e.Req = idx
		e.Task = req.Type
		e.Value = float64(len(jobs))
		r.trc.Emit(e)
	}
	measuring := r.trc != nil || r.ins.solverSec != nil
	var solveStart time.Time
	if measuring {
		solveStart = time.Now()
	}
	r.prov.Reset()
	decision, admitted, solveErr := core.AdmitProv(r.cfg.Solver, problem, r.prov)
	var wall time.Duration
	if measuring {
		wall = time.Since(solveStart)
		r.ins.solverSec.Observe(wall.Seconds())
	}
	if solveErr != nil {
		// A fallible solver failed outright (core.FallibleSolver) with no
		// resilience chain to absorb it. Report the failure with its
		// request coordinates and abort the run — continuing would
		// silently convert a solver outage into rejections.
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvSolverReturned)
			e.Req = idx
			e.WallNs = wall.Nanoseconds()
			e.Reason = telemetry.ReasonError
			r.trc.Emit(e)
		}
		return Outcome{}, fmt.Errorf("engine: solver failed at request %d (t=%.6f): %w", idx, r.now, solveErr)
	}
	if r.trc != nil {
		e := telemetry.NewEvent(r.now, telemetry.EvSolverReturned)
		e.Req = idx
		e.WallNs = wall.Nanoseconds()
		if admitted {
			e.Reason = telemetry.ReasonFeasible
			e.Value = decision.Energy
		} else {
			e.Reason = telemetry.ReasonInfeasible
		}
		r.trc.Emit(e)
	}
	if !admitted {
		r.res.Rejected++
		r.ins.rejected.Inc()
		r.reasonCounter("sim.reject_reason.", telemetry.ReasonNoFeasibleMapping)
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvReject)
			e.Req = idx
			e.Task = req.Type
			e.Reason = telemetry.ReasonNoFeasibleMapping
			r.trc.Emit(e)
		}
		r.emitDecision(idx, req.Type, sched.Unmapped, telemetry.ReasonNoFeasibleMapping, 0)
		// Drop any stale reservation (its request has now arrived) but
		// keep the standing mappings.
		if err := r.replan(nil); err != nil {
			return Outcome{}, err
		}
		r.probe(idx)
		return Outcome{
			Req:      idx,
			Time:     r.now,
			Accepted: false,
			Resource: sched.Unmapped,
			Reason:   telemetry.ReasonNoFeasibleMapping,
		}, nil
	}
	r.res.Accepted++
	r.ins.accepted.Inc()
	r.rec[idx].Accepted = true
	r.apply(problem, decision, newJob)
	var ghosts []ghostRef
	for i, j := range problem.Jobs {
		if j.Predicted && decision.Mapping[i] != sched.Unmapped {
			ghosts = append(ghosts, ghostRef{job: j, res: decision.Mapping[i]})
		}
	}
	admitReason := telemetry.ReasonPlain
	switch {
	case len(ghosts) > 0:
		admitReason = telemetry.ReasonWithReservation
	case predicting:
		admitReason = telemetry.ReasonPredictionDropped
	}
	r.reasonCounter("sim.admit_reason.", admitReason)
	if r.trc != nil {
		e := telemetry.NewEvent(r.now, telemetry.EvAdmit)
		e.Req = idx
		e.Task = req.Type
		e.Res = decision.Mapping[newIdx]
		e.Reason = admitReason
		r.trc.Emit(e)
	}
	r.emitDecision(idx, req.Type, decision.Mapping[newIdx], admitReason, decision.Energy)
	for _, g := range ghosts {
		r.ins.resvPlanned.Inc()
		if r.cfg.WorkConserving {
			r.ins.resvBackfilled.Inc()
		}
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvReservationPlanned)
			e.Req = idx
			e.Res = g.res
			e.Value = g.job.Arrival
			r.trc.Emit(e)
			if r.cfg.WorkConserving {
				e.Type = telemetry.EvReservationBackfilled
				r.trc.Emit(e)
			}
		}
	}
	r.ins.activeJobs.Observe(float64(len(r.active)))
	r.ins.activePeak.Set(float64(len(r.active)))
	if err := r.replan(ghosts); err != nil {
		return Outcome{}, err
	}
	r.probe(idx)
	return Outcome{
		Req:      idx,
		Time:     r.now,
		Accepted: true,
		Resource: decision.Mapping[newIdx],
		Reason:   admitReason,
		Energy:   decision.Energy,
	}, nil
}

// Drain runs the remaining work out in engine time: critical releases are
// served while adaptive work remains, then everything executes to
// completion. The discrete-event simulator calls this after the last
// arrival; a wall-clock driver that must not skip ahead of its clock
// drains by polling AdvanceTo/HasAdaptiveWork instead and calls Drain
// only to settle the final bookkeeping.
func (r *Engine) Drain() error {
	for r.HasAdaptiveWork() {
		rel, ok := r.nextCriticalReleaseIfAny()
		if !ok {
			break
		}
		r.advance(rel)
		if r.HasAdaptiveWork() {
			r.materializeCritical(rel)
			if err := r.replan(nil); err != nil {
				return err
			}
		}
	}
	r.advance(math.Inf(1))
	return nil
}

// Finalize reports the fate of standing reservations, publishes the final
// state sample and assembles the Result. Idempotent: later calls return
// the same Result without re-running the bookkeeping.
func (r *Engine) Finalize() *Result {
	if r.finalized {
		return r.res
	}
	r.finalized = true
	r.flushReservations()
	r.probe(-1)
	r.res.Jobs = r.rec
	for _, segs := range r.exec {
		r.res.Execution = append(r.res.Execution, segs...)
	}
	if r.cfg.Metrics != nil {
		if r.cfg.Tracer != nil {
			// Ring overwrites silently lose events; surface the count so
			// summaries and /metrics can warn about a lossy recording.
			r.cfg.Metrics.Gauge("telemetry.tracer.dropped").Set(float64(r.cfg.Tracer.Dropped()))
		}
		r.res.Telemetry = r.cfg.Metrics.Snapshot()
	}
	return r.res
}
