package engine

import (
	"fmt"
	"math"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/sched"
	"predrm/internal/telemetry"
)

// probe reports the current RM state through Config.StateProbe.
func (r *Engine) probe(req int) {
	if r.cfg.StateProbe == nil {
		return
	}
	s := StateSample{
		Time:           r.now,
		Req:            req,
		Requests:       r.res.Accepted + r.res.Rejected,
		Accepted:       r.res.Accepted,
		Rejected:       r.res.Rejected,
		Finished:       r.finished,
		DeadlineMisses: r.res.DeadlineMisses,
		InFlight:       len(r.active),
		Resources:      make([]ResourceSample, r.cfg.Platform.Len()),
	}
	for _, j := range r.active {
		if j.Resource == sched.Unmapped {
			continue
		}
		rs := &s.Resources[j.Resource]
		rs.Jobs++
		if rs.NextDeadline == 0 || j.AbsDeadline < rs.NextDeadline {
			rs.NextDeadline = j.AbsDeadline
		}
	}
	for _, g := range r.pendingResv {
		s.Resources[g.res].Reserved++
	}
	r.cfg.StateProbe(s)
}

// emitLifecycle reports a job execution transition on resource res.
func (r *Engine) emitLifecycle(typ telemetry.EventType, j *sched.Job, res int, reason string) {
	e := telemetry.NewEvent(r.now, typ)
	e.Req = j.ID
	e.Task = j.Type.ID
	e.Res = res
	e.Reason = reason
	e.Value = j.Frac
	r.trc.Emit(e)
}

// reasonCounter bumps the per-reason outcome counter (e.g.
// sim.reject_reason.no_feasible_mapping). The registry's get-or-create
// lookup makes the counter set self-defining: a reason appears the first
// time it is charged.
func (r *Engine) reasonCounter(prefix, reason string) {
	if r.cfg.Metrics == nil {
		return
	}
	r.cfg.Metrics.Counter(prefix + reason).Inc()
}

// emitDecision publishes the activation's decision-provenance record as an
// EvDecision event carrying a deep-copied snapshot of the arena (the
// tracer ring outlives the next Reset).
func (r *Engine) emitDecision(req, taskType, res int, reason string, energy float64) {
	if r.prov == nil || r.trc == nil {
		return
	}
	e := telemetry.NewEvent(r.now, telemetry.EvDecision)
	e.Req = req
	e.Task = taskType
	e.Res = res
	e.Reason = reason
	e.Value = energy
	e.Prov = r.prov.Snapshot()
	r.trc.Emit(e)
}

// noteExec registers that j is about to execute on res, emitting job_start
// when the resource's occupancy changes. Called only when tracing.
func (r *Engine) noteExec(j *sched.Job, res int) {
	if r.running[res] == j {
		return
	}
	reason := telemetry.ReasonStart
	if j.Started {
		reason = telemetry.ReasonResume
	}
	r.emitLifecycle(telemetry.EvJobStart, j, res, reason)
	r.running[res] = j
}

// notePauses closes the occupancy slot of every resource whose current
// occupant does not continue executing there in the step about to run,
// emitting job_preempt with the transition cause. Finished occupants are
// reported by reap instead. Called only when tracing.
func (r *Engine) notePauses(acts []execAction) {
	for res, occ := range r.running {
		if occ == nil {
			continue
		}
		continues, migrates := false, false
		var displacer *sched.Job
		for _, a := range acts {
			switch {
			case a.res == res && a.job == occ:
				continues = true
			case a.res == res:
				displacer = a.job
			case a.job == occ:
				migrates = true
			}
		}
		if continues {
			continue
		}
		if occ.Done() {
			r.running[res] = nil // reap emits job_finish
			continue
		}
		reason := telemetry.ReasonPaused
		if displacer != nil {
			reason = telemetry.ReasonDisplaced
		}
		if migrates {
			reason = telemetry.ReasonMigrated
		}
		r.emitLifecycle(telemetry.EvJobPreempt, occ, res, reason)
		r.running[res] = nil
	}
}

// execAction is one (resource, job) dispatch of an execution step.
type execAction struct {
	res int
	job *sched.Job
}

// flushReservations reports the fate of the standing reservations once the
// next activation replaces them: a reservation whose window had begun was
// held idle by the planned schedule (honoured).
func (r *Engine) flushReservations() {
	for _, g := range r.pendingResv {
		if r.now+sched.Eps >= g.job.Arrival {
			r.ins.resvHonoured.Inc()
			e := telemetry.NewEvent(r.now, telemetry.EvReservationHonoured)
			e.Res = g.res
			e.Value = g.job.Arrival
			r.trc.Emit(e)
		}
	}
	r.pendingResv = nil
}

// advanceTo advances execution to target, materialising critical releases
// on the way (each release joins the active set and triggers a replan).
func (r *Engine) advanceTo(target float64) error {
	if r.cfg.Critical == nil {
		r.advance(target)
		return nil
	}
	for {
		rel, ok := r.nextCriticalRelease()
		if !ok || rel >= target-sched.Eps {
			break
		}
		r.advance(rel)
		r.materializeCritical(rel)
		if err := r.replan(nil); err != nil {
			return err
		}
	}
	r.advance(target)
	return nil
}

// nextCriticalRelease returns the earliest unmaterialised release time.
func (r *Engine) nextCriticalRelease() (float64, bool) {
	best := math.Inf(1)
	found := false
	for tid, t := range r.cfg.Critical.Tasks {
		if rel := t.ReleaseAt(r.criticalNext[tid]); rel < best {
			best = rel
			found = true
		}
	}
	return best, found
}

// nextCriticalReleaseIfAny is nextCriticalRelease tolerating a nil set.
func (r *Engine) nextCriticalReleaseIfAny() (float64, bool) {
	if r.cfg.Critical == nil {
		return 0, false
	}
	return r.nextCriticalRelease()
}

// HasAdaptiveWork reports whether any driver-submitted job is still
// active (critical releases do not count).
func (r *Engine) HasAdaptiveWork() bool {
	for _, j := range r.active {
		if j.ID >= 0 {
			return true
		}
	}
	return false
}

// NextWake returns the next engine time at which state changes on its own
// — a running job completes, a plan-segment or reservation boundary
// passes, or a critical release materialises — and false when nothing is
// pending. A wall-clock driver sleeps until the wake time and calls
// AdvanceTo; waking early is harmless (AdvanceTo is monotone), and the
// reported time is exact, so completions are stamped at their true engine
// times regardless of when the driver observes them.
func (r *Engine) NextWake() (float64, bool) {
	best := math.Inf(1)
	if r.cfg.WorkConserving {
		for _, j := range r.active {
			if j.Done() || j.Resource == sched.Unmapped {
				continue
			}
			need := j.MigDebt + j.Frac*j.Type.WCET[j.Resource]
			if t := r.now + need; t < best {
				best = t
			}
		}
	} else {
		for res, segs := range r.plan {
			for _, s := range segs {
				if s.end <= r.now+sched.Eps {
					continue // past
				}
				if s.job != nil && s.job.Done() {
					continue // completed (slightly early by rounding)
				}
				var cand float64
				switch {
				case s.start > r.now+sched.Eps:
					cand = s.start // idle until the next segment starts
				case s.job == nil:
					cand = s.end // reservation: idle through it
				default:
					need := s.job.MigDebt + s.job.Frac*s.job.Type.WCET[res]
					cand = r.now + math.Min(need, s.end-r.now)
				}
				if cand < best {
					best = cand
				}
				break
			}
		}
	}
	if rel, ok := r.nextCriticalReleaseIfAny(); ok && rel < best {
		best = rel
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// materializeCritical activates every critical job releasing at time rel.
func (r *Engine) materializeCritical(rel float64) {
	for tid, t := range r.cfg.Critical.Tasks {
		k := r.criticalNext[tid]
		if math.Abs(t.ReleaseAt(k)-rel) > sched.Eps {
			continue
		}
		r.criticalNext[tid] = k + 1
		j := r.cfg.Critical.Release(r.cfg.Platform, tid, k)
		r.active = append(r.active, j)
		r.res.CriticalJobs++
		r.ins.criticalReleases.Inc()
		if r.trc != nil {
			e := telemetry.NewEvent(rel, telemetry.EvCriticalRelease)
			e.Task = tid
			e.Res = j.Resource
			e.Value = float64(k)
			r.trc.Emit(e)
		}
	}
}

// upcomingCritical returns planning copies of the critical releases within
// the adaptive decision window of jobs.
func (r *Engine) upcomingCritical(jobs []*sched.Job) []*sched.Job {
	if r.cfg.Critical == nil {
		return nil
	}
	horizon := r.now
	for _, j := range jobs {
		if j.AbsDeadline > horizon {
			horizon = j.AbsDeadline
		}
	}
	return r.cfg.Critical.UpcomingJobs(r.cfg.Platform, r.now, horizon)
}

// auditState verifies the standing schedule is still feasible (Config.Audit).
func (r *Engine) auditState(beforeRequest int) error {
	if len(r.active) == 0 {
		return nil
	}
	p := &sched.Problem{Platform: r.cfg.Platform, Time: r.now, Jobs: r.active, Policy: r.cfg.Policy}
	mapping := make([]int, len(r.active))
	for i, j := range r.active {
		mapping[i] = j.Resource
	}
	if !p.FeasibleMapping(mapping) {
		return fmt.Errorf("engine: audit before request %d at t=%.6f: standing schedule infeasible; jobs=%v",
			beforeRequest, r.now, r.active)
	}
	return nil
}

// apply installs an admission decision: remaps active jobs (charging
// migrations) and activates the new job.
func (r *Engine) apply(p *sched.Problem, d core.Decision, newJob *sched.Job) {
	for i, j := range p.Jobs {
		if j.Predicted {
			continue // planning constraint only (Sec 4.1)
		}
		target := d.Mapping[i]
		if target == sched.Unmapped {
			// Cannot happen for an admitted decision; guard loudly.
			panic(fmt.Sprintf("engine: admitted decision leaves %v unmapped", j))
		}
		if j.Resource != sched.Unmapped && j.Resource != target {
			charged := j.Started || p.Policy == sched.ChargeAlways
			r.prov.Remap(j.ID, j.Resource, target, charged)
			if charged {
				j.MigDebt += j.Type.MigTime
				rec := &r.rec[j.ID]
				rec.Migrations++
				rec.Energy += j.Type.MigEnergy
				r.res.Migrations++
				r.res.MigrationEnergy += j.Type.MigEnergy
				r.res.TotalEnergy += j.Type.MigEnergy
				r.ins.migrations.Inc()
				if r.trc != nil {
					e := telemetry.NewEvent(r.now, telemetry.EvMigration)
					e.Req = j.ID
					e.Res = target
					e.Value = j.Type.MigEnergy
					r.trc.Emit(e)
				}
			}
		}
		j.Resource = target
	}
	r.active = append(r.active, newJob)
}

// ghostRef is one mapped predicted job carried into the standing plan.
type ghostRef struct {
	job *sched.Job
	res int
}

// replan rebuilds the standing schedule from the active jobs' current
// mappings, optionally reserving capacity for the mapped predicted jobs.
// A failure to reconstruct a feasible schedule means the RM's invariant
// broke; it is surfaced as an error.
func (r *Engine) replan(ghosts []ghostRef) error {
	if r.cfg.WorkConserving {
		return nil // greedy dispatch reads job state directly
	}
	defer telemetry.StartTimer(r.ins.replanSec).Stop()
	// The previous activation's reservations end here; report their fate.
	r.flushReservations()
	r.pendingResv = ghosts
	jobs := make([]*sched.Job, 0, len(r.active)+len(ghosts))
	jobs = append(jobs, r.active...)
	mapping := make([]int, 0, cap(jobs))
	for _, j := range jobs {
		mapping = append(mapping, j.Resource)
	}
	for _, g := range ghosts {
		jobs = append(jobs, g.job)
		mapping = append(mapping, g.res)
	}
	if len(jobs) == 0 {
		r.plan = nil
		return nil
	}
	p := &sched.Problem{Platform: r.cfg.Platform, Time: r.now, Jobs: jobs, Policy: r.cfg.Policy}
	segsByRes, ok := p.Schedule(mapping)
	if !ok {
		return fmt.Errorf("engine: replan at t=%.6f produced an infeasible schedule (RM invariant broken); jobs=%v",
			r.now, jobs)
	}
	plan := make([][]planSeg, r.cfg.Platform.Len())
	for res, segs := range segsByRes {
		for _, s := range segs {
			ps := planSeg{start: s.Start, end: s.End}
			if !jobs[s.Index].Predicted {
				ps.job = jobs[s.Index]
			}
			plan[res] = append(plan[res], ps)
		}
	}
	r.plan = plan
	return nil
}

// advance executes the standing schedule up to time target.
func (r *Engine) advance(target float64) {
	defer telemetry.StartTimer(r.ins.advanceSec).Stop()
	if r.cfg.WorkConserving {
		r.advanceGreedy(target)
		return
	}
	for r.now < target-sched.Eps {
		if len(r.active) == 0 {
			break // reap keeps only unfinished jobs
		}
		var acts []execAction
		step := math.Inf(1)
		if !math.IsInf(target, 1) {
			step = target - r.now
		}
		for res, segs := range r.plan {
			for _, s := range segs {
				if s.end <= r.now+sched.Eps {
					continue // past
				}
				if s.job != nil && s.job.Done() {
					continue // completed (slightly early by rounding)
				}
				if s.start > r.now+sched.Eps {
					// Idle until the next segment starts.
					if d := s.start - r.now; d < step {
						step = d
					}
					break
				}
				if s.job == nil {
					// Inside a ghost reservation: idle through it.
					if d := s.end - r.now; d < step {
						step = d
					}
					break
				}
				need := s.job.MigDebt + s.job.Frac*s.job.Type.WCET[res]
				bound := math.Min(need, s.end-r.now)
				if bound < step {
					step = bound
				}
				acts = append(acts, execAction{res, s.job})
				break
			}
		}
		if len(acts) == 0 && math.IsInf(step, 1) {
			break // no runnable segment and no upcoming boundary
		}
		if step <= 0 {
			step = sched.Eps
		}
		if r.running != nil {
			r.notePauses(acts)
		}
		for _, a := range acts {
			r.execute(a.job, a.res, step)
		}
		r.now += step
		r.reap()
	}
	if !math.IsInf(target, 1) && target > r.now {
		r.now = target
	}
}

// advanceGreedy executes work-conserving EDF dispatch up to target
// (Config.WorkConserving).
func (r *Engine) advanceGreedy(target float64) {
	for r.now < target-sched.Eps {
		// Pick each resource's EDF head.
		heads := make(map[int]*sched.Job, r.cfg.Platform.Len())
		for _, j := range r.active {
			if j.Done() || j.Resource == sched.Unmapped {
				continue
			}
			cur, ok := heads[j.Resource]
			if !ok {
				heads[j.Resource] = j
				continue
			}
			heads[j.Resource] = preferHead(r.cfg.Platform, cur, j)
		}
		if len(heads) == 0 {
			break // idle until target
		}
		// Next event: earliest head completion, capped at target.
		step := target - r.now
		for res, j := range heads {
			need := j.MigDebt + j.Frac*j.Type.WCET[res]
			if need < step {
				step = need
			}
		}
		if step <= 0 {
			step = sched.Eps
		}
		// Dispatch in resource order so trace emission is deterministic.
		acts := make([]execAction, 0, len(heads))
		for res := 0; res < r.cfg.Platform.Len(); res++ {
			if j, ok := heads[res]; ok {
				acts = append(acts, execAction{res, j})
			}
		}
		if r.running != nil {
			r.notePauses(acts)
		}
		for _, a := range acts {
			r.execute(a.job, a.res, step)
		}
		r.now += step
		r.reap()
	}
	if !math.IsInf(target, 1) && target > r.now {
		r.now = target
	}
}

// preferHead picks which of two jobs on the same resource runs now: the
// mid-execution occupant on non-preemptable resources, otherwise the
// earlier deadline (ties: lower ID, deterministic).
func preferHead(p *platform.Platform, a, b *sched.Job) *sched.Job {
	if !p.Resource(a.Resource).Preemptable() {
		ao := a.ExecRes == a.Resource
		bo := b.ExecRes == b.Resource
		if ao != bo {
			if ao {
				return a
			}
			return b
		}
	}
	if a.AbsDeadline != b.AbsDeadline {
		if a.AbsDeadline < b.AbsDeadline {
			return a
		}
		return b
	}
	if a.ID <= b.ID {
		return a
	}
	return b
}

// execute serves dt time of job j on resource res: migration debt first,
// then useful work with energy accounting.
func (r *Engine) execute(j *sched.Job, res int, dt float64) {
	if r.running != nil {
		r.noteExec(j, res)
	}
	j.Started = true
	j.ExecRes = res
	if r.cfg.RecordExecution {
		r.record(res, j.ID, dt)
	}
	if j.MigDebt > 0 {
		served := math.Min(j.MigDebt, dt)
		j.MigDebt -= served
		dt -= served
		if j.MigDebt < sched.Eps {
			j.MigDebt = 0
		}
		if dt <= 0 {
			return
		}
	}
	wcet := j.Type.WCET[res]
	frac := dt / wcet
	if frac > j.Frac {
		frac = j.Frac
	}
	j.Frac -= frac
	energy := j.Type.Energy[res] * frac
	if j.ID >= 0 {
		r.rec[j.ID].Energy += energy
		r.res.TotalEnergy += energy
	} else {
		r.res.CriticalEnergy += energy
		if r.critEnergy != nil {
			r.critEnergy[j] += energy
		}
	}
	if j.Frac < sched.Eps {
		j.Frac = 0
	}
}

// record appends execution time to the per-resource trace, merging
// contiguous segments of the same job.
func (r *Engine) record(res, jobID int, dt float64) {
	if r.exec == nil {
		r.exec = make([][]ExecSegment, r.cfg.Platform.Len())
	}
	segs := r.exec[res]
	if n := len(segs); n > 0 {
		last := &segs[n-1]
		if last.JobID == jobID && last.End >= r.now-sched.Eps {
			last.End = r.now + dt
			return
		}
	}
	r.exec[res] = append(segs, ExecSegment{
		Resource: res, JobID: jobID, Start: r.now, End: r.now + dt,
	})
}

// noteFinish emits job_finish for a completed job and releases its
// occupancy slot. Called only when tracing.
func (r *Engine) noteFinish(j *sched.Job) {
	res := j.ExecRes
	for i, occ := range r.running {
		if occ == j {
			r.running[i] = nil
			res = i
		}
	}
	e := telemetry.NewEvent(r.now, telemetry.EvJobFinish)
	e.Req = j.ID
	e.Task = j.Type.ID
	e.Res = res
	if j.ID >= 0 {
		e.Value = r.rec[j.ID].Energy
	} else {
		e.Value = r.critEnergy[j]
		e.Reason = telemetry.ReasonCritical
		delete(r.critEnergy, j)
	}
	r.trc.Emit(e)
}

// reap retires completed jobs, auditing the deadline invariant.
func (r *Engine) reap() {
	kept := r.active[:0]
	for _, j := range r.active {
		if !j.Done() {
			kept = append(kept, j)
			continue
		}
		if r.running != nil {
			r.noteFinish(j)
		}
		if j.ID < 0 {
			// Critical job: only the deadline audit applies.
			if r.now > j.AbsDeadline+1e-6 {
				r.res.CriticalMisses++
			}
			continue
		}
		r.finished++
		rec := &r.rec[j.ID]
		rec.FinishTime = r.now
		if r.now > j.AbsDeadline+1e-6 {
			rec.MissedDeadline = true
			r.res.DeadlineMisses++
		}
		if r.now > r.res.MakeSpan {
			r.res.MakeSpan = r.now
		}
	}
	r.active = kept
}
