// Scale-out admission: a platform partitioned into shards, each owning
// its resources and EDF state, behind the same Driver surface as a
// single Engine.
//
// The admission problem is solved per shard: an arrival is routed by a
// cheap load/affinity pre-filter (a sched.LoadIndex over the shards,
// walked from least loaded upward to the first shard whose projected
// task set can execute the type), then admitted by that shard's own
// engine against only the shard's resources. Decision cost therefore
// scales with shard size, not platform size, and batch epochs solve the
// per-shard groups concurrently. The price is optimality: a job is
// mapped to the best resource of its shard, not of the whole platform —
// DESIGN.md §12 develops the argument and the determinism guarantees.
//
// With one shard the engine is the engine: NewSharded wires the single
// sub-engine with the caller's Config untouched and every method
// delegates, so a 1-shard Sharded is byte-identical to a bare Engine —
// the differential tests pin this.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/sched"
	"predrm/internal/trace"
)

// ShardConfig parameterises the scale-out engine.
type ShardConfig struct {
	// Shards is the number of partitions (≥ 1). One shard delegates to a
	// single Engine unchanged.
	Shards int
	// BatchWindow is the epoch length drivers should collect arrivals
	// over before calling ActivateEpoch; 0 means one-by-one admission.
	// The engine itself does not window — the field rides here so one
	// config names the whole scale-out setup (sim.RunSharded reads it).
	BatchWindow float64
	// Workers bounds how many shard solves run concurrently during an
	// epoch; 0 means min(Shards, GOMAXPROCS).
	Workers int
	// NewSolver builds one solver per shard — engines are not safe for
	// concurrent use and neither are solvers, so shards cannot share
	// cfg.Solver. Required when Shards > 1.
	NewSolver func() core.Solver
}

// shardState is one partition's engine and routing metadata.
type shardState struct {
	eng *Engine
	sub platform.Shard
	// locals maps the shard's local request ids back to global ids, in
	// activation order (local id == index).
	locals []int
}

// Sharded drives one engine per platform shard behind the Driver
// interface. Not safe for concurrent use (like Engine); the concurrency
// inside ActivateEpoch stays behind the call.
type Sharded struct {
	cfg     Config
	sc      ShardConfig
	shards  []shardState
	loads   *sched.LoadIndex
	elig    [][]bool // [typeID][shard]
	workers int
	// routes maps global request id -> shard index (the local id is the
	// position in that shard's locals).
	routes []int
	single *Engine // set when Shards == 1: full delegation
	res    *Result // merged result, built once by Finalize
}

// NewSharded partitions cfg.Platform into sc.Shards shards and builds
// one engine per shard. With one shard the caller's Config is used
// unchanged (full delegation). With more, the features whose state is
// inherently global — tracing, provenance, critical workloads,
// prediction, the overhead hook — are rejected rather than silently
// given per-shard semantics; Metrics and StateProbe are supported
// globally (a shared registry, and globally merged samples).
func NewSharded(cfg Config, sc ShardConfig) (*Sharded, error) {
	if sc.Shards <= 0 {
		return nil, errors.New("engine: sharded needs at least one shard")
	}
	if sc.Shards == 1 {
		if cfg.Solver == nil && sc.NewSolver != nil {
			cfg.Solver = sc.NewSolver()
		}
		eng, err := New(cfg)
		if err != nil {
			return nil, err
		}
		return &Sharded{cfg: cfg, sc: sc, single: eng}, nil
	}
	switch {
	case sc.NewSolver == nil:
		return nil, errors.New("engine: sharded needs ShardConfig.NewSolver (one solver per shard)")
	case cfg.Tracer != nil:
		return nil, errors.New("engine: sharded does not support a tracer (per-shard event streams would interleave)")
	case cfg.Provenance:
		return nil, errors.New("engine: sharded does not support provenance recording")
	case cfg.Critical != nil:
		return nil, errors.New("engine: sharded does not support critical workloads (static global placements)")
	case cfg.Predictor != nil:
		return nil, errors.New("engine: sharded does not support prediction (per-shard predictors would observe partial streams)")
	case cfg.OverheadHook != nil:
		return nil, errors.New("engine: sharded does not support an overhead hook (hooks see per-shard request ids)")
	}
	if cfg.Platform == nil || cfg.TaskSet == nil {
		return nil, errors.New("engine: sharded needs a platform and task set")
	}
	parts, err := cfg.Platform.Partition(sc.Shards)
	if err != nil {
		return nil, err
	}
	globalProbe := cfg.StateProbe
	s := &Sharded{
		cfg:    cfg,
		sc:     sc,
		shards: make([]shardState, 0, len(parts)),
		loads:  sched.NewLoadIndex(len(parts)),
	}
	for _, part := range parts {
		sub, err := cfg.TaskSet.Project(part.Platform, part.GlobalIDs)
		if err != nil {
			return nil, err
		}
		scfg := cfg
		scfg.Platform = part.Platform
		scfg.TaskSet = sub
		scfg.Solver = sc.NewSolver()
		scfg.StateProbe = nil // Sharded emits merged global samples itself
		eng, err := New(scfg)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, shardState{eng: eng, sub: part})
	}
	s.cfg.StateProbe = globalProbe
	s.elig = make([][]bool, cfg.TaskSet.Len())
	for t := range s.elig {
		ty := cfg.TaskSet.Type(t)
		row := make([]bool, len(s.shards))
		for si, sh := range s.shards {
			for _, g := range sh.sub.GlobalIDs {
				if ty.ExecutableOn(g) {
					row[si] = true
					break
				}
			}
		}
		s.elig[t] = row
	}
	s.workers = sc.Workers
	if s.workers <= 0 {
		s.workers = len(s.shards)
		if p := runtime.GOMAXPROCS(0); p < s.workers {
			s.workers = p
		}
	}
	return s, nil
}

// syncLoads refreshes the shard load index from the engines' in-flight
// counts. Only shards whose count changed since the last sync pay the
// O(log shards) reposition.
func (s *Sharded) syncLoads() {
	for si := range s.shards {
		if load := float64(s.shards[si].eng.InFlight()); s.loads.Load(si) != load {
			s.loads.Update(si, load)
		}
	}
}

// route picks the shard for a request: the least-loaded shard whose
// projected task set can execute the type, walking the load index in its
// deterministic ascending (load, id) order. The returned shard index is
// a pure function of the engine state, so replaying a trace reproduces
// the routing exactly.
func (s *Sharded) route(typeID int) (int, error) {
	if typeID < 0 || typeID >= len(s.elig) {
		return 0, fmt.Errorf("engine: route: unknown type %d", typeID)
	}
	row := s.elig[typeID]
	for k := 0; k < s.loads.Len(); k++ {
		if si := s.loads.At(k); row[si] {
			return si, nil
		}
	}
	return 0, fmt.Errorf("engine: no shard can execute type %d", typeID)
}

// Activate routes one request to a shard and runs its admission there.
func (s *Sharded) Activate(idx int, req trace.Request) (Outcome, error) {
	if s.single != nil {
		return s.single.Activate(idx, req)
	}
	if idx != len(s.routes) {
		return Outcome{}, fmt.Errorf("engine: activation id %d out of order (want %d)", idx, len(s.routes))
	}
	// Advance every shard to the arrival first: completions free capacity
	// (and shrink loads) platform-wide before the routing decision.
	for si := range s.shards {
		if err := s.shards[si].eng.AdvanceTo(req.Arrival); err != nil {
			return Outcome{}, err
		}
	}
	s.syncLoads()
	si, err := s.route(req.Type)
	if err != nil {
		return Outcome{}, err
	}
	sh := &s.shards[si]
	local := sh.eng.Requests()
	out, err := sh.eng.Activate(local, req)
	if err != nil {
		return Outcome{}, fmt.Errorf("shard %d: %w", si, err)
	}
	s.routes = append(s.routes, si)
	sh.locals = append(sh.locals, idx)
	s.globalize(&out, si, idx)
	s.probeGlobal(idx)
	return out, nil
}

// ActivateEpoch routes a batch of arrivals across the shards and runs
// the per-shard epochs concurrently (bounded by ShardConfig.Workers).
// Shards are independent — separate platforms, task sets, solvers and
// plans — so concurrent solving is deterministic; outcomes are returned
// in global request order.
func (s *Sharded) ActivateEpoch(startIdx int, reqs []trace.Request, close float64) ([]Outcome, error) {
	if s.single != nil {
		return s.single.ActivateEpoch(startIdx, reqs, close)
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	if startIdx != len(s.routes) {
		return nil, fmt.Errorf("engine: epoch activation id %d out of order (want %d)", startIdx, len(s.routes))
	}
	// Advance everyone to the first arrival, then route the whole batch.
	// Routing adds a tentative +1 load per assignment so a burst spreads
	// over the shards instead of piling onto the one that was least
	// loaded when the epoch opened.
	for si := range s.shards {
		if err := s.shards[si].eng.AdvanceTo(reqs[0].Arrival); err != nil {
			return nil, err
		}
	}
	s.syncLoads()
	groups := make([][]trace.Request, len(s.shards))
	for i, req := range reqs {
		si, err := s.route(req.Type)
		if err != nil {
			return nil, err
		}
		groups[si] = append(groups[si], req)
		s.routes = append(s.routes, si)
		s.shards[si].locals = append(s.shards[si].locals, startIdx+i)
		s.loads.Update(si, s.loads.Load(si)+1)
	}

	type shardRun struct {
		outs []Outcome
		err  error
	}
	runs := make([]shardRun, len(s.shards))
	sem := make(chan struct{}, s.workers)
	var wg sync.WaitGroup
	for si := range s.shards {
		if len(groups[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sh := &s.shards[si]
			local := sh.eng.Requests()
			outs, err := sh.eng.ActivateEpoch(local, groups[si], close)
			runs[si] = shardRun{outs: outs, err: err}
		}(si)
	}
	wg.Wait()
	for si := range runs {
		if runs[si].err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, runs[si].err)
		}
	}
	// Idle shards still advance to the close so the cluster clock moves
	// together.
	for si := range s.shards {
		if len(groups[si]) == 0 {
			if err := s.shards[si].eng.AdvanceTo(close); err != nil {
				return nil, err
			}
		}
	}
	// Reassemble outcomes in global order: each shard's outcomes are in
	// its group order, and the group order is the global order filtered
	// by route.
	taken := make([]int, len(s.shards))
	outs := make([]Outcome, len(reqs))
	for i := range reqs {
		si := s.routes[startIdx+i]
		out := runs[si].outs[taken[si]]
		taken[si]++
		s.globalize(&out, si, startIdx+i)
		outs[i] = out
	}
	for i := range reqs {
		s.probeGlobal(startIdx + i)
	}
	return outs, nil
}

// globalize rewrites a shard-local outcome into global coordinates.
func (s *Sharded) globalize(out *Outcome, si, globalID int) {
	out.Req = globalID
	if out.Resource != sched.Unmapped {
		out.Resource = s.shards[si].sub.GlobalIDs[out.Resource]
	}
}

// probeGlobal emits one merged platform-wide StateSample (same package
// as Engine, so the shard engines' state is read directly).
func (s *Sharded) probeGlobal(req int) {
	if s.cfg.StateProbe == nil {
		return
	}
	sample := StateSample{
		Time:      s.Now(),
		Req:       req,
		Resources: make([]ResourceSample, s.cfg.Platform.Len()),
	}
	for si := range s.shards {
		e := s.shards[si].eng
		sample.Requests += e.res.Accepted + e.res.Rejected
		sample.Accepted += e.res.Accepted
		sample.Rejected += e.res.Rejected
		sample.Finished += e.finished
		sample.DeadlineMisses += e.res.DeadlineMisses
		sample.InFlight += len(e.active)
		ids := s.shards[si].sub.GlobalIDs
		for _, j := range e.active {
			if j.Resource == sched.Unmapped {
				continue
			}
			rs := &sample.Resources[ids[j.Resource]]
			rs.Jobs++
			if rs.NextDeadline == 0 || j.AbsDeadline < rs.NextDeadline {
				rs.NextDeadline = j.AbsDeadline
			}
		}
		for _, g := range e.pendingResv {
			sample.Resources[ids[g.res]].Reserved++
		}
	}
	s.cfg.StateProbe(sample)
}

// AdvanceTo advances every shard (monotone, like Engine.AdvanceTo).
func (s *Sharded) AdvanceTo(t float64) error {
	if s.single != nil {
		return s.single.AdvanceTo(t)
	}
	for si := range s.shards {
		if err := s.shards[si].eng.AdvanceTo(t); err != nil {
			return err
		}
	}
	return nil
}

// NextWake is the earliest wake time over the shards.
func (s *Sharded) NextWake() (float64, bool) {
	if s.single != nil {
		return s.single.NextWake()
	}
	best, found := math.Inf(1), false
	for si := range s.shards {
		if t, ok := s.shards[si].eng.NextWake(); ok && t < best {
			best, found = t, true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// Drain runs every shard's remaining work out.
func (s *Sharded) Drain() error {
	if s.single != nil {
		return s.single.Drain()
	}
	for si := range s.shards {
		if err := s.shards[si].eng.Drain(); err != nil {
			return err
		}
	}
	return nil
}

// Now is the most advanced shard clock.
func (s *Sharded) Now() float64 {
	if s.single != nil {
		return s.single.Now()
	}
	now := 0.0
	for si := range s.shards {
		if t := s.shards[si].eng.Now(); t > now {
			now = t
		}
	}
	return now
}

// InFlight sums the shards' active jobs.
func (s *Sharded) InFlight() int {
	if s.single != nil {
		return s.single.InFlight()
	}
	n := 0
	for si := range s.shards {
		n += s.shards[si].eng.InFlight()
	}
	return n
}

// Requests counts activations routed so far.
func (s *Sharded) Requests() int {
	if s.single != nil {
		return s.single.Requests()
	}
	return len(s.routes)
}

// HasAdaptiveWork reports whether any shard still has active jobs.
func (s *Sharded) HasAdaptiveWork() bool {
	if s.single != nil {
		return s.single.HasAdaptiveWork()
	}
	for si := range s.shards {
		if s.shards[si].eng.HasAdaptiveWork() {
			return true
		}
	}
	return false
}

// Finalize merges the shard results into one platform-wide Result:
// counters sum, MakeSpan is the max, job records return to global ids
// and activation order, executed segments return to global resource
// ids, and the telemetry snapshot is taken once from the shared
// registry. Idempotent, like Engine.Finalize.
func (s *Sharded) Finalize() *Result {
	if s.single != nil {
		return s.single.Finalize()
	}
	if s.res != nil {
		return s.res
	}
	subs := make([]*Result, len(s.shards))
	for si := range s.shards {
		subs[si] = s.shards[si].eng.Finalize()
	}
	res := &Result{}
	for _, r := range subs {
		res.Requests += r.Requests
		res.Accepted += r.Accepted
		res.Rejected += r.Rejected
		res.TotalEnergy += r.TotalEnergy
		res.MigrationEnergy += r.MigrationEnergy
		res.Migrations += r.Migrations
		res.DeadlineMisses += r.DeadlineMisses
		if r.MakeSpan > res.MakeSpan {
			res.MakeSpan = r.MakeSpan
		}
	}
	// Job records in global activation order.
	taken := make([]int, len(s.shards))
	res.Jobs = make([]JobRecord, len(s.routes))
	for g, si := range s.routes {
		rec := subs[si].Jobs[taken[si]]
		taken[si]++
		rec.ID = g
		res.Jobs[g] = rec
	}
	// Executed segments per global resource, in resource order; each
	// global resource lives on exactly one shard, so its segments arrive
	// already start-ordered.
	if s.cfg.RecordExecution {
		byRes := make([][]ExecSegment, s.cfg.Platform.Len())
		for si := range s.shards {
			ids := s.shards[si].sub.GlobalIDs
			locals := s.shards[si].locals
			for _, seg := range subs[si].Execution {
				seg.Resource = ids[seg.Resource]
				if seg.JobID >= 0 {
					seg.JobID = locals[seg.JobID]
				}
				byRes[seg.Resource] = append(byRes[seg.Resource], seg)
			}
		}
		for _, segs := range byRes {
			res.Execution = append(res.Execution, segs...)
		}
	}
	if s.cfg.Metrics != nil {
		res.Telemetry = s.cfg.Metrics.Snapshot()
	}
	s.res = res
	return res
}
