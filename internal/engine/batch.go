// Batch admission epochs: deciding a window of arrivals together.
//
// The paper's protocol is strictly one-by-one — every arrival triggers a
// full solver activation. At scale that makes solver setup (problem
// assembly, prediction, replanning) the dominant cost: a burst of k
// arrivals pays k replans even though only the last plan survives.
// ActivateEpoch amortises that: the driver collects arrivals over a
// configurable window, the engine advances through them (they queue,
// executing nothing — they are not yet admitted), and all decisions are
// taken sequentially at the epoch close. Earlier epoch admissions are
// active state for later ones, so the decision sequence is the paper's
// protocol evaluated at a single deferred decision time; only the final
// decision's reservation plan is installed, and the standing schedule is
// rebuilt once per epoch instead of once per arrival (DESIGN.md §12
// discusses how this differs from the paper's semantics).
package engine

import (
	"fmt"
	"math"
	"time"

	"predrm/internal/core"
	"predrm/internal/predict"
	"predrm/internal/sched"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// ActivateEpoch admits reqs — arrival-ordered, with dense driver ids
// startIdx, startIdx+1, ... — as one batch epoch that closes at time
// close. Decisions are taken sequentially at max(now, close + overhead),
// where the per-activation overhead (ExtraOverhead, predictor overhead,
// OverheadHook) is charged once per epoch rather than once per arrival:
// that is the amortisation batching buys.
//
// A single-request epoch closing at its own arrival is exactly one
// Activate call and is delegated to it, which is what makes a zero
// batch-window driver byte-identical to the one-by-one protocol.
//
// With a predictor, every request is observed in arrival order and one
// forecast is made at the close; the predicted jobs constrain every
// decision of the epoch. State probes fire per decision, as in the
// one-by-one protocol; mid-epoch samples show the pre-epoch reservation
// picture since the plan is only rebuilt at the close.
func (r *Engine) ActivateEpoch(startIdx int, reqs []trace.Request, close float64) ([]Outcome, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(reqs) == 1 && close <= reqs[0].Arrival+sched.Eps {
		out, err := r.Activate(startIdx, reqs[0])
		if err != nil {
			return nil, err
		}
		return []Outcome{out}, nil
	}
	for i, req := range reqs {
		idx := startIdx + i
		if idx != len(r.rec)+i {
			return nil, fmt.Errorf("engine: epoch activation id %d out of order (want %d)", idx, len(r.rec)+i)
		}
		if r.cfg.TaskSet != nil && (req.Type < 0 || req.Type >= r.cfg.TaskSet.Len()) {
			return nil, fmt.Errorf("engine: request %d references unknown type %d", idx, req.Type)
		}
		if req.Deadline <= 0 {
			return nil, fmt.Errorf("engine: request %d has non-positive deadline %v", idx, req.Deadline)
		}
		if i > 0 && req.Arrival < reqs[i-1].Arrival {
			return nil, fmt.Errorf("engine: epoch requests out of arrival order at %d", idx)
		}
	}

	// Intake: record every arrival, advance execution through it, observe
	// it for prediction. Nothing is admitted yet.
	for i, req := range reqs {
		idx := startIdx + i
		r.rec = append(r.rec, JobRecord{
			ID:          idx,
			Type:        req.Type,
			Arrival:     req.Arrival,
			AbsDeadline: req.Arrival + req.Deadline,
		})
		r.res.Requests++
		r.ins.requests.Inc()
		if err := r.advanceTo(req.Arrival); err != nil {
			return nil, err
		}
		if r.trc != nil {
			e := telemetry.NewEvent(req.Arrival, telemetry.EvArrival)
			e.Req = idx
			e.Task = req.Type
			e.Value = req.Arrival + req.Deadline
			r.trc.Emit(e)
		}
		if r.cfg.Predictor != nil {
			r.cfg.Predictor.Observe(idx, req)
		}
	}

	// One overhead charge for the whole epoch.
	overhead := r.cfg.ExtraOverhead
	if r.cfg.Predictor != nil {
		overhead += r.cfg.Predictor.Overhead()
	}
	if r.cfg.OverheadHook != nil {
		overhead += r.cfg.OverheadHook(startIdx, reqs[0].Arrival)
	}
	decisionTime := math.Max(r.now, close+overhead)
	if err := r.advanceTo(decisionTime); err != nil {
		return nil, err
	}
	if r.cfg.Audit {
		if err := r.auditState(startIdx); err != nil {
			return nil, err
		}
	}

	// One forecast at the close, constraining every decision of the epoch.
	var predJobs []*sched.Job
	predicting := false
	if r.cfg.Predictor != nil {
		var preds []predict.Prediction
		if mp, ok := r.cfg.Predictor.(predict.MultiPredictor); ok && r.cfg.Lookahead > 1 {
			preds = mp.PredictK(r.cfg.Lookahead)
		} else if pred, ok := r.cfg.Predictor.Predict(); ok {
			preds = []predict.Prediction{pred}
		}
		for step, pred := range preds {
			if pred.Type >= 0 && pred.Type < r.cfg.TaskSet.Len() && pred.Deadline > 0 {
				pj := sched.NewJob(-1-step, r.cfg.TaskSet.Type(pred.Type), pred.Arrival, pred.Deadline)
				pj.Predicted = true
				predJobs = append(predJobs, pj)
				predicting = true
				r.ins.predictions.Inc()
				if r.trc != nil {
					e := telemetry.NewEvent(r.now, telemetry.EvPrediction)
					e.Req = startIdx
					e.Task = pred.Type
					e.Value = pred.Arrival
					r.trc.Emit(e)
				}
			}
		}
	}

	outs := make([]Outcome, 0, len(reqs))
	var lastGhosts []ghostRef
	for i, req := range reqs {
		idx := startIdx + i
		newJob := sched.NewJob(idx, r.cfg.TaskSet.Type(req.Type), req.Arrival, req.Deadline)
		jobs := make([]*sched.Job, 0, len(r.active)+1+len(predJobs))
		jobs = append(jobs, r.active...)
		newIdx := len(jobs)
		jobs = append(jobs, newJob)
		jobs = append(jobs, r.upcomingCritical(jobs)...)
		jobs = append(jobs, predJobs...)

		problem := &sched.Problem{
			Platform: r.cfg.Platform,
			Time:     r.now,
			Jobs:     jobs,
			Policy:   r.cfg.Policy,
		}
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvSolverInvoked)
			e.Req = idx
			e.Task = req.Type
			e.Value = float64(len(jobs))
			r.trc.Emit(e)
		}
		measuring := r.trc != nil || r.ins.solverSec != nil
		var solveStart time.Time
		if measuring {
			solveStart = time.Now()
		}
		r.prov.Reset()
		decision, admitted, solveErr := core.AdmitProv(r.cfg.Solver, problem, r.prov)
		var wall time.Duration
		if measuring {
			wall = time.Since(solveStart)
			r.ins.solverSec.Observe(wall.Seconds())
		}
		if solveErr != nil {
			if r.trc != nil {
				e := telemetry.NewEvent(r.now, telemetry.EvSolverReturned)
				e.Req = idx
				e.WallNs = wall.Nanoseconds()
				e.Reason = telemetry.ReasonError
				r.trc.Emit(e)
			}
			return nil, fmt.Errorf("engine: solver failed at request %d (t=%.6f): %w", idx, r.now, solveErr)
		}
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvSolverReturned)
			e.Req = idx
			e.WallNs = wall.Nanoseconds()
			if admitted {
				e.Reason = telemetry.ReasonFeasible
				e.Value = decision.Energy
			} else {
				e.Reason = telemetry.ReasonInfeasible
			}
			r.trc.Emit(e)
		}
		if !admitted {
			r.res.Rejected++
			r.ins.rejected.Inc()
			r.reasonCounter("sim.reject_reason.", telemetry.ReasonNoFeasibleMapping)
			if r.trc != nil {
				e := telemetry.NewEvent(r.now, telemetry.EvReject)
				e.Req = idx
				e.Task = req.Type
				e.Reason = telemetry.ReasonNoFeasibleMapping
				r.trc.Emit(e)
			}
			r.emitDecision(idx, req.Type, sched.Unmapped, telemetry.ReasonNoFeasibleMapping, 0)
			lastGhosts = nil
			r.probe(idx)
			outs = append(outs, Outcome{
				Req:      idx,
				Time:     r.now,
				Accepted: false,
				Resource: sched.Unmapped,
				Reason:   telemetry.ReasonNoFeasibleMapping,
			})
			continue
		}
		r.res.Accepted++
		r.ins.accepted.Inc()
		r.rec[idx].Accepted = true
		r.apply(problem, decision, newJob)
		lastGhosts = lastGhosts[:0]
		for gi, j := range problem.Jobs {
			if j.Predicted && decision.Mapping[gi] != sched.Unmapped {
				lastGhosts = append(lastGhosts, ghostRef{job: j, res: decision.Mapping[gi]})
			}
		}
		admitReason := telemetry.ReasonPlain
		switch {
		case len(lastGhosts) > 0:
			admitReason = telemetry.ReasonWithReservation
		case predicting:
			admitReason = telemetry.ReasonPredictionDropped
		}
		r.reasonCounter("sim.admit_reason.", admitReason)
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvAdmit)
			e.Req = idx
			e.Task = req.Type
			e.Res = decision.Mapping[newIdx]
			e.Reason = admitReason
			r.trc.Emit(e)
		}
		r.emitDecision(idx, req.Type, decision.Mapping[newIdx], admitReason, decision.Energy)
		r.ins.activeJobs.Observe(float64(len(r.active)))
		r.ins.activePeak.Set(float64(len(r.active)))
		r.probe(idx)
		outs = append(outs, Outcome{
			Req:      idx,
			Time:     r.now,
			Accepted: true,
			Resource: decision.Mapping[newIdx],
			Reason:   admitReason,
			Energy:   decision.Energy,
		})
	}

	// One replan for the whole epoch, installing only the reservations of
	// the final decision — earlier ones were planning constraints whose
	// decisions are already superseded, exactly as in the one-by-one
	// protocol where each replan replaces the previous reservations.
	for _, g := range lastGhosts {
		r.ins.resvPlanned.Inc()
		if r.cfg.WorkConserving {
			r.ins.resvBackfilled.Inc()
		}
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvReservationPlanned)
			e.Req = startIdx + len(reqs) - 1
			e.Res = g.res
			e.Value = g.job.Arrival
			r.trc.Emit(e)
			if r.cfg.WorkConserving {
				e.Type = telemetry.EvReservationBackfilled
				r.trc.Emit(e)
			}
		}
	}
	if err := r.replan(lastGhosts); err != nil {
		return nil, err
	}
	return outs, nil
}
