package engine

import "predrm/internal/trace"

// Driver is the activation surface a clock owner programs against: the
// discrete-event simulator and the wall-clock server both drive exactly
// this interface, so either can run a single Engine or a Sharded
// scale-out engine without knowing which (DESIGN.md §11, §12).
//
// Implementations are not safe for concurrent use; callers serialise all
// methods, exactly as with a bare *Engine.
type Driver interface {
	// Activate runs one request's admission (Engine.Activate).
	Activate(idx int, req trace.Request) (Outcome, error)
	// ActivateEpoch admits a batch of requests collected over one epoch
	// window, deciding them together at the epoch close
	// (Engine.ActivateEpoch).
	ActivateEpoch(startIdx int, reqs []trace.Request, close float64) ([]Outcome, error)
	// AdvanceTo executes standing work up to time t (monotone; early or
	// late calls are harmless).
	AdvanceTo(t float64) error
	// NextWake reports the next self-inflicted state change, if any.
	NextWake() (float64, bool)
	// Drain runs remaining work out in engine time.
	Drain() error
	// Finalize assembles the run's Result (idempotent).
	Finalize() *Result
	// Now is the engine clock (for Sharded: the most advanced shard).
	Now() float64
	// InFlight counts active jobs across the whole platform.
	InFlight() int
	// Requests counts activations so far.
	Requests() int
	// HasAdaptiveWork reports whether driver-submitted jobs remain active.
	HasAdaptiveWork() bool
}

var (
	_ Driver = (*Engine)(nil)
	_ Driver = (*Sharded)(nil)
)
