package engine

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/task"
	"predrm/internal/trace"
)

// shardFixture builds a large-platform workload and a fresh sharded
// engine factory over it.
func shardFixture(t *testing.T, spec string, shards, length int, meanIA float64, seed uint64) (*trace.Trace, func() *Sharded) {
	t.Helper()
	plat, err := platform.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	gc := trace.DefaultGenConfig(trace.VeryTight)
	gc.Length = length
	gc.InterarrivalMean = meanIA
	gc.InterarrivalStd = meanIA / 3
	tr, err := trace.Generate(set, gc, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return tr, func() *Sharded {
		s, err := NewSharded(Config{Platform: plat, TaskSet: set}, ShardConfig{
			Shards:    shards,
			NewSolver: func() core.Solver { return &core.Heuristic{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

// TestShardedNextWakeIsMin: the scale-out engine's next wake time is the
// minimum over its shards' own wake times — the property the wall-clock
// dispatcher's timer depends on at shard boundaries.
func TestShardedNextWakeIsMin(t *testing.T) {
	tr, build := shardFixture(t, "16c2g", 4, 60, 1.0, 71)
	s := build()
	sawWake := false
	for i, req := range tr.Requests {
		if _, err := s.Activate(i, req); err != nil {
			t.Fatal(err)
		}
		want, wantOK := math.Inf(1), false
		for si := range s.shards {
			if w, ok := s.shards[si].eng.NextWake(); ok && w < want {
				want, wantOK = w, true
			}
		}
		got, gotOK := s.NextWake()
		if gotOK != wantOK || (wantOK && got != want) {
			t.Fatalf("after req %d: NextWake = (%v, %v), min over shards = (%v, %v)", i, got, gotOK, want, wantOK)
		}
		if wantOK {
			sawWake = true
			if got < req.Arrival {
				t.Fatalf("after req %d: next wake %v before engine time %v", i, got, req.Arrival)
			}
		}
	}
	if !sawWake {
		t.Fatal("no activation left a pending wake; fixture too idle to test anything")
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NextWake(); ok {
		t.Fatal("drained engine still reports a pending wake")
	}
}

// TestShardedAdvanceToLateHarmless: advancing far past many pending
// events in one late call lands in exactly the state reached by stepping
// wake-by-wake, and a stale (earlier) AdvanceTo after that is a no-op —
// DESIGN.md §11's contract, here across shard boundaries where each
// shard replays a different event backlog.
func TestShardedAdvanceToLateHarmless(t *testing.T) {
	tr, build := shardFixture(t, "16c2g", 4, 80, 0.8, 81)
	mid := len(tr.Requests) / 2

	stepped, late := build(), build()
	for i, req := range tr.Requests[:mid] {
		if _, err := stepped.Activate(i, req); err != nil {
			t.Fatal(err)
		}
		if _, err := late.Activate(i, req); err != nil {
			t.Fatal(err)
		}
	}
	horizon := stepped.Now() + 50
	// One driver follows every wake; the other sleeps through all of them
	// and pushes the clock once.
	for {
		w, ok := stepped.NextWake()
		if !ok || w > horizon {
			break
		}
		if err := stepped.AdvanceTo(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := stepped.AdvanceTo(horizon); err != nil {
		t.Fatal(err)
	}
	if err := late.AdvanceTo(horizon); err != nil {
		t.Fatal(err)
	}
	// Stale advance: strictly earlier than the clock; must change nothing.
	if err := late.AdvanceTo(horizon - 25); err != nil {
		t.Fatalf("stale AdvanceTo errored: %v", err)
	}
	if got := late.Now(); got != horizon {
		t.Fatalf("stale AdvanceTo moved the clock: %v, want %v", got, horizon)
	}
	if a, b := stepped.InFlight(), late.InFlight(); a != b {
		t.Fatalf("in-flight diverges: stepped %d, late %d", a, b)
	}

	// Both continue identically to the end of the trace.
	for i, req := range tr.Requests[mid:] {
		if _, err := stepped.Activate(mid+i, req); err != nil {
			t.Fatal(err)
		}
		if _, err := late.Activate(mid+i, req); err != nil {
			t.Fatal(err)
		}
	}
	if err := stepped.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := late.Drain(); err != nil {
		t.Fatal(err)
	}
	a, b := stepped.Finalize(), late.Finalize()
	// Decisions and counters must agree exactly. Energies and finish
	// times are accumulated per executed segment, and the two drivers
	// split segments at different AdvanceTo boundaries, so those float
	// sums may differ in the last ulp — that is the only slack granted.
	if a.Requests != b.Requests || a.Accepted != b.Accepted || a.Rejected != b.Rejected ||
		a.Migrations != b.Migrations || a.DeadlineMisses != b.DeadlineMisses {
		t.Fatalf("late advance changed the run: %+v vs %+v", a, b)
	}
	if math.Abs(a.TotalEnergy-b.TotalEnergy) > 1e-9 {
		t.Fatalf("total energy diverges: %v vs %v", a.TotalEnergy, b.TotalEnergy)
	}
	if math.Abs(a.MakeSpan-b.MakeSpan) > 1e-9 {
		t.Fatalf("makespan diverges: %v vs %v", a.MakeSpan, b.MakeSpan)
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Accepted != jb.Accepted || ja.Migrations != jb.Migrations || ja.MissedDeadline != jb.MissedDeadline {
			t.Fatalf("job %d diverges: %+v vs %+v", i, ja, jb)
		}
		if math.Abs(ja.FinishTime-jb.FinishTime) > 1e-9 {
			t.Fatalf("job %d finish time diverges: %v vs %v", i, ja.FinishTime, jb.FinishTime)
		}
		if math.Abs(ja.Energy-jb.Energy) > 1e-9 {
			t.Fatalf("job %d energy diverges: %v vs %v", i, ja.Energy, jb.Energy)
		}
	}
}

// TestBatchEpochSingletonDelegates: a one-request epoch closing at its
// own arrival is the one-by-one protocol — byte-identical Results on a
// bare (unsharded) Engine.
func TestBatchEpochSingletonDelegates(t *testing.T) {
	set, err := task.Generate(platform.Default(), task.DefaultGenConfig(), rng.New(91))
	if err != nil {
		t.Fatal(err)
	}
	gc := trace.DefaultGenConfig(trace.VeryTight)
	gc.Length = 100
	gc.InterarrivalMean = 4
	gc.InterarrivalStd = 4.0 / 3
	tr, err := trace.Generate(set, gc, rng.New(92))
	if err != nil {
		t.Fatal(err)
	}
	newEng := func() *Engine {
		e, err := New(Config{Platform: platform.Default(), TaskSet: set, Solver: &core.Heuristic{}})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	oneByOne, epochs := newEng(), newEng()
	for i, req := range tr.Requests {
		if _, err := oneByOne.Activate(i, req); err != nil {
			t.Fatal(err)
		}
		outs, err := epochs.ActivateEpoch(i, tr.Requests[i:i+1], req.Arrival)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != 1 || outs[0].Req != i {
			t.Fatalf("epoch %d: bad outcomes %+v", i, outs)
		}
	}
	if err := oneByOne.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := epochs.Drain(); err != nil {
		t.Fatal(err)
	}
	aJSON, _ := json.Marshal(oneByOne.Finalize())
	bJSON, _ := json.Marshal(epochs.Finalize())
	if !bytes.Equal(aJSON, bJSON) {
		t.Fatalf("singleton epochs diverge from Activate:\n%s\n%s", aJSON, bJSON)
	}
}

// TestBatchEpochDecidesAtClose: every decision of a multi-request epoch
// is taken at the epoch close (no overhead configured), and the arrivals
// were all recorded at their own times.
func TestBatchEpochDecidesAtClose(t *testing.T) {
	set, err := task.Generate(platform.Default(), task.DefaultGenConfig(), rng.New(95))
	if err != nil {
		t.Fatal(err)
	}
	gc := trace.DefaultGenConfig(trace.LessTight)
	gc.Length = 8
	gc.InterarrivalMean = 1
	gc.InterarrivalStd = 0.3
	tr, err := trace.Generate(set, gc, rng.New(96))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Platform: platform.Default(), TaskSet: set, Solver: &core.Heuristic{}})
	if err != nil {
		t.Fatal(err)
	}
	close := tr.Requests[len(tr.Requests)-1].Arrival + 2
	outs, err := e.ActivateEpoch(0, tr.Requests, close)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(tr.Requests) {
		t.Fatalf("got %d outcomes for %d requests", len(outs), len(tr.Requests))
	}
	for i, out := range outs {
		if out.Req != i {
			t.Fatalf("outcome %d has req %d", i, out.Req)
		}
		if out.Time != close {
			t.Fatalf("outcome %d decided at %v, want epoch close %v", i, out.Time, close)
		}
	}
	if e.Requests() != len(tr.Requests) {
		t.Fatalf("engine counted %d requests, want %d", e.Requests(), len(tr.Requests))
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	res := e.Finalize()
	for i, rec := range res.Jobs {
		if rec.Arrival != tr.Requests[i].Arrival {
			t.Fatalf("job %d arrival %v, want %v", i, rec.Arrival, tr.Requests[i].Arrival)
		}
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d accepted jobs missed deadlines", res.DeadlineMisses)
	}
}
