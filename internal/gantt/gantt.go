// Package gantt renders executed or planned schedules as text charts and
// machine-readable exports. It gives the simulator's RecordExecution
// output (and the paper's Fig 1-style scenarios) a human-readable form:
//
//	CPU1 |  0000000...
//	GPU1 |.11122......
//
// Each column is one time quantum; digits identify jobs (modulo 10 with a
// legend), '.' is idle.
package gantt

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"predrm/internal/platform"
	"predrm/internal/sim"
)

// Chart is a renderable schedule.
type Chart struct {
	plat *platform.Platform
	segs []sim.ExecSegment
	from float64
	to   float64
}

// New builds a chart over segments. The time range is inferred from the
// segments; it errors on an empty or malformed input.
func New(plat *platform.Platform, segs []sim.ExecSegment) (*Chart, error) {
	if plat == nil {
		return nil, errors.New("gantt: nil platform")
	}
	if len(segs) == 0 {
		return nil, errors.New("gantt: no segments")
	}
	c := &Chart{plat: plat, segs: append([]sim.ExecSegment(nil), segs...)}
	c.from, c.to = segs[0].Start, segs[0].End
	for _, s := range segs {
		if s.End < s.Start {
			return nil, fmt.Errorf("gantt: segment ends before it starts: %+v", s)
		}
		if s.Resource < 0 || s.Resource >= plat.Len() {
			return nil, fmt.Errorf("gantt: unknown resource %d", s.Resource)
		}
		if s.Start < c.from {
			c.from = s.Start
		}
		if s.End > c.to {
			c.to = s.End
		}
	}
	sort.SliceStable(c.segs, func(a, b int) bool {
		if c.segs[a].Resource != c.segs[b].Resource {
			return c.segs[a].Resource < c.segs[b].Resource
		}
		return c.segs[a].Start < c.segs[b].Start
	})
	return c, nil
}

// Clip returns the segments restricted to the window [from, to): segments
// outside it are dropped, segments straddling a boundary are trimmed. The
// input is not modified. Renderers use it to chart an opening window of a
// long schedule.
func Clip(segs []sim.ExecSegment, from, to float64) []sim.ExecSegment {
	var out []sim.ExecSegment
	for _, s := range segs {
		if s.End <= from || s.Start >= to {
			continue
		}
		if s.Start < from {
			s.Start = from
		}
		if s.End > to {
			s.End = to
		}
		out = append(out, s)
	}
	return out
}

// Span returns the chart's time range.
func (c *Chart) Span() (from, to float64) { return c.from, c.to }

// Render writes an ASCII chart with the given number of columns.
func (c *Chart) Render(w io.Writer, columns int) error {
	if columns <= 0 {
		columns = 80
	}
	span := c.to - c.from
	if span <= 0 {
		span = 1
	}
	quantum := span / float64(columns)

	rows := make([][]byte, c.plat.Len())
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", columns))
	}
	jobs := map[int]bool{}
	for _, s := range c.segs {
		jobs[s.JobID] = true
		lo := int((s.Start - c.from) / quantum)
		hi := int((s.End - c.from) / quantum)
		if hi >= columns {
			hi = columns - 1
		}
		for col := lo; col <= hi; col++ {
			rows[s.Resource][col] = glyph(s.JobID)
		}
	}

	if _, err := fmt.Fprintf(w, "t=[%.2f, %.2f], quantum %.3f\n", c.from, c.to, quantum); err != nil {
		return err
	}
	width := 0
	for i := 0; i < c.plat.Len(); i++ {
		if n := len(c.plat.Resource(i).Name); n > width {
			width = n
		}
	}
	for i := 0; i < c.plat.Len(); i++ {
		name := c.plat.Resource(i).Name
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", width, name, rows[i]); err != nil {
			return err
		}
	}
	ids := make([]int, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	legend := make([]string, 0, len(ids))
	for _, id := range ids {
		legend = append(legend, fmt.Sprintf("%c=job%d", glyph(id), id))
	}
	_, err := fmt.Fprintf(w, "legend: %s\n", strings.Join(legend, " "))
	return err
}

// glyph maps a job ID to its chart character: digits for trace requests,
// letters for critical (negative-ID) jobs.
func glyph(id int) byte {
	if id >= 0 {
		return byte('0' + id%10)
	}
	return byte('a' + (-id-1)%26)
}

// WriteTSV exports the segments as tab-separated values (resource name,
// job id, start, end) for external plotting.
func (c *Chart) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "resource\tjob\tstart\tend"); err != nil {
		return err
	}
	for _, s := range c.segs {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%.6f\t%.6f\n",
			c.plat.Resource(s.Resource).Name, s.JobID, s.Start, s.End); err != nil {
			return err
		}
	}
	return nil
}

// Utilization returns each resource's busy fraction over the chart span.
func (c *Chart) Utilization() []float64 {
	busy := make([]float64, c.plat.Len())
	for _, s := range c.segs {
		busy[s.Resource] += s.End - s.Start
	}
	span := c.to - c.from
	if span <= 0 {
		return busy
	}
	for i := range busy {
		busy[i] /= span
	}
	return busy
}
