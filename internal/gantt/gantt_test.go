package gantt

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/trace"
)

func TestNewValidation(t *testing.T) {
	plat := platform.Motivational()
	if _, err := New(nil, nil); err == nil {
		t.Error("accepted nil platform")
	}
	if _, err := New(plat, nil); err == nil {
		t.Error("accepted empty segments")
	}
	if _, err := New(plat, []sim.ExecSegment{{Resource: 9, Start: 0, End: 1}}); err == nil {
		t.Error("accepted unknown resource")
	}
	if _, err := New(plat, []sim.ExecSegment{{Resource: 0, Start: 2, End: 1}}); err == nil {
		t.Error("accepted inverted segment")
	}
}

func TestRenderAndLegend(t *testing.T) {
	plat := platform.Motivational()
	segs := []sim.ExecSegment{
		{Resource: 0, JobID: 0, Start: 0, End: 8},
		{Resource: 2, JobID: 1, Start: 1, End: 4},
	}
	c, err := New(plat, segs)
	if err != nil {
		t.Fatal(err)
	}
	from, to := c.Span()
	if from != 0 || to != 8 {
		t.Fatalf("span [%v, %v]", from, to)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CPU1", "CPU2", "GPU1", "legend:", "0=job0", "1=job1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// CPU2 is fully idle.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "CPU2") && strings.Contains(line, "0") {
			t.Fatalf("idle resource shows work: %s", line)
		}
	}
}

func TestRenderDefaultColumns(t *testing.T) {
	plat := platform.Motivational()
	c, err := New(plat, []sim.ExecSegment{{Resource: 0, JobID: 3, Start: 0, End: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), strings.Repeat("3", 10)) {
		t.Fatal("default-width render wrong")
	}
}

func TestWriteTSV(t *testing.T) {
	plat := platform.Motivational()
	c, err := New(plat, []sim.ExecSegment{
		{Resource: 2, JobID: 7, Start: 1.5, End: 2.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "resource\tjob\tstart\tend\nGPU1\t7\t1.500000\t2.250000\n"
	if buf.String() != want {
		t.Fatalf("TSV = %q", buf.String())
	}
}

func TestUtilization(t *testing.T) {
	plat := platform.Motivational()
	c, err := New(plat, []sim.ExecSegment{
		{Resource: 0, JobID: 0, Start: 0, End: 5},
		{Resource: 2, JobID: 1, Start: 0, End: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	u := c.Utilization()
	if math.Abs(u[0]-0.5) > 1e-12 || u[1] != 0 || math.Abs(u[2]-1) > 1e-12 {
		t.Fatalf("utilization = %v", u)
	}
}

// TestEndToEndFromSimulator renders a real recorded execution and checks
// the recorded occupancy against the simulator's energy accounting.
func TestEndToEndFromSimulator(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	gcfg := trace.DefaultGenConfig(trace.VeryTight)
	gcfg.Length = 40
	gcfg.InterarrivalMean = 4
	gcfg.InterarrivalStd = 1
	tr, err := trace.Generate(set, gcfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Platform:        plat,
		TaskSet:         set,
		Solver:          &core.Heuristic{},
		Predictor:       o,
		RecordExecution: true,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Execution) == 0 {
		t.Fatal("no execution recorded")
	}
	c, err := New(plat, res.Execution)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf, 100); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(buf.String(), "\n")) < plat.Len()+2 {
		t.Fatalf("render too short:\n%s", buf.String())
	}
	// Every accepted job's recorded occupancy must be positive; rejected
	// jobs must not appear.
	occupancy := map[int]float64{}
	for _, s := range res.Execution {
		occupancy[s.JobID] += s.End - s.Start
	}
	for _, j := range res.Jobs {
		if j.Accepted && occupancy[j.ID] <= 0 {
			t.Errorf("accepted job %d has no recorded execution", j.ID)
		}
		if !j.Accepted && occupancy[j.ID] > 0 {
			t.Errorf("rejected job %d appears in the execution record", j.ID)
		}
	}
}
