// Package faultinject provides deterministic fault injection for the
// resource manager: solver errors, decision-latency spikes, and predictor
// outages/corruption, driven by a seed-only Plan.
//
// Every fault decision is a pure function of (plan seed, fault stream,
// site key) — the site key is the activation's simulated time for solver
// faults and the request index for latency and predictor faults — so a
// plan fires at exactly the same sites on every run regardless of solver
// internals, goroutine scheduling, or wall-clock speed. No time.Now enters
// any decision; two simulations of the same trace under the same plan are
// byte-identical.
//
// The wrappers compose with the resilience layer: wrap the primary stage
// of a core.BudgetedSolver with Plan.Solver so injected errors fall
// through the chain instead of aborting the run, or wrap a bare solver to
// test that failures propagate promptly (internal/experiments does both).
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"predrm/internal/core"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// Fault streams: each concern draws from an independent deterministic
// stream so enabling one fault type never shifts another's sites.
const (
	streamSolver uint64 = 0xf5a1 + iota
	streamLatency
	streamOutage
	streamCorrupt
	streamCorruptShift
)

// Plan is a deterministic fault plan. The zero value injects nothing.
type Plan struct {
	// Seed drives every fault decision.
	Seed uint64
	// SolverErrorRate is the probability an activation's wrapped solver
	// fails outright (all Solve calls of that activation fail together —
	// faults are keyed on the activation's simulated time).
	SolverErrorRate float64
	// LatencyRate is the per-request probability of a decision-latency
	// spike of LatencySpike simulated time units.
	LatencyRate float64
	// LatencySpike is the spike magnitude (simulated time).
	LatencySpike float64
	// PredictorOutageRate is the per-request probability the predictor
	// returns no forecast.
	PredictorOutageRate float64
	// PredictorCorruptRate is the per-request probability a forecast's
	// arrival time is shifted by up to ±CorruptShift.
	PredictorCorruptRate float64
	// CorruptShift is the maximum arrival-time corruption (simulated time).
	CorruptShift float64
}

// Validate checks the plan's parameters.
func (p *Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"solver-error", p.SolverErrorRate},
		{"latency-rate", p.LatencyRate},
		{"pred-outage", p.PredictorOutageRate},
		{"pred-corrupt", p.PredictorCorruptRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faultinject: %s %g outside [0,1]", r.name, r.v)
		}
	}
	switch {
	case p.LatencySpike < 0:
		return errors.New("faultinject: negative latency magnitude")
	case p.CorruptShift < 0:
		return errors.New("faultinject: negative corrupt-shift")
	case p.LatencyRate > 0 && p.LatencySpike == 0:
		return errors.New("faultinject: latency-rate needs latency (spike magnitude)")
	case p.PredictorCorruptRate > 0 && p.CorruptShift == 0:
		return errors.New("faultinject: pred-corrupt needs corrupt-shift")
	}
	return nil
}

// IsZero reports whether the plan injects nothing.
func (p *Plan) IsZero() bool {
	return p.SolverErrorRate == 0 && p.LatencyRate == 0 &&
		p.PredictorOutageRate == 0 && p.PredictorCorruptRate == 0
}

// ParsePlan parses the -fault-plan flag syntax: comma-separated key=value
// pairs with keys seed, solver-error, latency-rate, latency, pred-outage,
// pred-corrupt, corrupt-shift. Example:
//
//	seed=7,solver-error=0.2,latency-rate=0.1,latency=0.5,pred-outage=0.1
func ParsePlan(s string) (Plan, error) {
	var p Plan
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faultinject: %q is not key=value", field)
		}
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faultinject: seed %q: %v", val, err)
			}
			p.Seed = seed
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("faultinject: %s=%q: %v", key, val, err)
		}
		switch key {
		case "solver-error":
			p.SolverErrorRate = f
		case "latency-rate":
			p.LatencyRate = f
		case "latency":
			p.LatencySpike = f
		case "pred-outage":
			p.PredictorOutageRate = f
		case "pred-corrupt":
			p.PredictorCorruptRate = f
		case "corrupt-shift":
			p.CorruptShift = f
		default:
			return Plan{}, fmt.Errorf("faultinject: unknown key %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// roll returns the deterministic uniform [0,1) draw for one fault site.
// Sites are independent: the draw depends only on (seed, stream, key).
func (p *Plan) roll(stream, key uint64) float64 {
	return p.site(stream, key).Float64()
}

// site derives the site's private generator, for faults that need more
// than one variate.
func (p *Plan) site(stream, key uint64) *rng.Rand {
	// Mix with distinct odd constants so nearby keys land far apart.
	return rng.New(p.Seed ^ stream*0x9e3779b97f4a7c15 ^ key*0xbf58476d1ce4e5b9)
}

// Solver wraps inner with planned error injection. The wrapped solver
// implements core.FallibleSolver: SolveChecked fails on planned
// activations (keyed by the problem's simulated time, so every Solve of
// one admission protocol run fails together), while plain Solve maps a
// planned fault to an infeasible (reject) decision. tracer may be nil.
func (p *Plan) Solver(inner core.Solver, tracer *telemetry.Tracer) *FaultySolver {
	return &FaultySolver{inner: inner, plan: p, trc: tracer}
}

// FaultySolver injects planned solver errors around an inner solver.
type FaultySolver struct {
	inner core.Solver
	plan  *Plan
	trc   *telemetry.Tracer

	mErrors *telemetry.Counter
}

var _ core.FallibleSolver = (*FaultySolver)(nil)
var _ telemetry.Instrumentable = (*FaultySolver)(nil)

// AttachMetrics registers the counter faultinject.solver_errors and
// forwards the registry to the inner solver when it is Instrumentable.
func (f *FaultySolver) AttachMetrics(reg *telemetry.Registry) {
	f.mErrors = reg.Counter("faultinject.solver_errors")
	if inst, ok := f.inner.(telemetry.Instrumentable); ok {
		inst.AttachMetrics(reg)
	}
}

// faulted reports whether the plan fails the activation at time t.
func (f *FaultySolver) faulted(t float64) bool {
	rate := f.plan.SolverErrorRate
	return rate > 0 && f.plan.roll(streamSolver, math.Float64bits(t)) < rate
}

// SolveChecked solves pr unless the plan fails this activation.
func (f *FaultySolver) SolveChecked(pr *sched.Problem) (core.Decision, error) {
	if f.faulted(pr.Time) {
		f.mErrors.Inc()
		if f.trc != nil {
			e := telemetry.NewEvent(pr.Time, telemetry.EvFaultInjected)
			e.Req = ArrivingID(pr)
			e.Reason = telemetry.ReasonSolverError
			f.trc.Emit(e)
		}
		return core.Decision{}, fmt.Errorf("faultinject: planned solver fault at t=%.6f", pr.Time)
	}
	if fs, ok := f.inner.(core.FallibleSolver); ok {
		return fs.SolveChecked(pr)
	}
	return f.inner.Solve(pr), nil
}

// Solve maps planned faults to infeasible decisions (core.Solver).
func (f *FaultySolver) Solve(pr *sched.Problem) core.Decision {
	d, err := f.SolveChecked(pr)
	if err != nil {
		mapping := make([]int, len(pr.Jobs))
		for i := range mapping {
			mapping[i] = sched.Unmapped
		}
		return core.Decision{Mapping: mapping, Feasible: false}
	}
	return d
}

// ApplyBudget forwards the budget to the inner solver (core.BudgetAware
// passthrough, so a FaultySolver can wrap a budgeted chain stage).
func (f *FaultySolver) ApplyBudget(b core.Budget) {
	if ba, ok := f.inner.(core.BudgetAware); ok {
		ba.ApplyBudget(b)
	}
}

// BudgetUsed forwards the inner solver's budget report.
func (f *FaultySolver) BudgetUsed() core.BudgetUse {
	if ba, ok := f.inner.(core.BudgetAware); ok {
		return ba.BudgetUsed()
	}
	return core.BudgetUse{}
}

// ArrivingID returns the trace id of the arriving request in pr (the
// largest job id; predicted and critical planning copies are negative),
// or -1 when none.
func ArrivingID(pr *sched.Problem) int {
	id := -1
	for _, j := range pr.Jobs {
		if j.ID > id {
			id = j.ID
		}
	}
	return id
}

// Hook returns a sim.Config.OverheadHook injecting planned latency
// spikes: on planned requests the decision is delayed by LatencySpike
// simulated time units. tracer and reg may be nil.
func (p *Plan) Hook(tracer *telemetry.Tracer, reg *telemetry.Registry) func(req int, arrival float64) float64 {
	if p.LatencyRate == 0 {
		return nil
	}
	spikes := reg.Counter("faultinject.latency_spikes")
	return func(req int, arrival float64) float64 {
		if p.roll(streamLatency, uint64(req)) >= p.LatencyRate {
			return 0
		}
		spikes.Inc()
		if tracer != nil {
			e := telemetry.NewEvent(arrival, telemetry.EvFaultInjected)
			e.Req = req
			e.Value = p.LatencySpike
			e.Reason = telemetry.ReasonLatencySpike
			tracer.Emit(e)
		}
		return p.LatencySpike
	}
}

// Predictor wraps inner with planned outages and forecast corruption,
// keyed by the index of the last observed request. tracer and reg may be
// nil. The wrapper intentionally does not forward predict.MultiPredictor:
// under an active fault plan the simulator degrades to single-step
// prediction.
func (p *Plan) Predictor(inner predict.Predictor, tracer *telemetry.Tracer, reg *telemetry.Registry) predict.Predictor {
	return &faultyPredictor{
		inner:     inner,
		plan:      p,
		trc:       tracer,
		outages:   reg.Counter("faultinject.predictor_outages"),
		corrupted: reg.Counter("faultinject.predictor_corruptions"),
		last:      -1,
	}
}

// faultyPredictor injects predictor outages and corruption.
type faultyPredictor struct {
	inner predict.Predictor
	plan  *Plan
	trc   *telemetry.Tracer

	outages, corrupted *telemetry.Counter

	last     int
	lastTime float64
}

var _ predict.Predictor = (*faultyPredictor)(nil)

// Observe forwards the observation, remembering the site key.
func (f *faultyPredictor) Observe(idx int, req trace.Request) {
	f.last = idx
	f.lastTime = req.Arrival
	f.inner.Observe(idx, req)
}

// Predict forwards to the inner predictor unless the plan blacks out or
// corrupts this activation's forecast.
func (f *faultyPredictor) Predict() (predict.Prediction, bool) {
	key := uint64(f.last)
	if r := f.plan.PredictorOutageRate; r > 0 && f.plan.roll(streamOutage, key) < r {
		f.outages.Inc()
		f.emit(telemetry.ReasonPredictorOutage, 0)
		return predict.Prediction{}, false
	}
	pred, ok := f.inner.Predict()
	if !ok {
		return pred, false
	}
	if r := f.plan.PredictorCorruptRate; r > 0 && f.plan.roll(streamCorrupt, key) < r {
		// Uniform shift in [-CorruptShift, CorruptShift], deterministic
		// per site.
		shift := f.plan.site(streamCorruptShift, key).Uniform(-f.plan.CorruptShift, f.plan.CorruptShift)
		pred.Arrival += shift
		f.corrupted.Inc()
		f.emit(telemetry.ReasonPredictorCorrupt, shift)
	}
	return pred, ok
}

// emit reports a predictor fault at the last observed arrival.
func (f *faultyPredictor) emit(reason string, value float64) {
	if f.trc == nil {
		return
	}
	e := telemetry.NewEvent(f.lastTime, telemetry.EvFaultInjected)
	e.Req = f.last
	e.Value = value
	e.Reason = reason
	f.trc.Emit(e)
}

// Overhead forwards the inner predictor's runtime cost.
func (f *faultyPredictor) Overhead() float64 { return f.inner.Overhead() }

// Reset forwards to the inner predictor and clears the site key.
func (f *faultyPredictor) Reset() {
	f.last = -1
	f.lastTime = 0
	f.inner.Reset()
}
