package faultinject

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
	"predrm/internal/traceview"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,solver-error=0.2,latency-rate=0.1,latency=0.5,pred-outage=0.1,pred-corrupt=0.05,corrupt-shift=0.4")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, SolverErrorRate: 0.2, LatencyRate: 0.1, LatencySpike: 0.5,
		PredictorOutageRate: 0.1, PredictorCorruptRate: 0.05, CorruptShift: 0.4}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if p.IsZero() {
		t.Fatal("non-trivial plan reported zero")
	}

	empty, err := ParsePlan("")
	if err != nil || !empty.IsZero() {
		t.Fatalf("empty spec: %+v, %v", empty, err)
	}

	for _, bad := range []string{
		"frobnicate=1",          // unknown key
		"solver-error",          // not key=value
		"solver-error=lots",     // not a number
		"solver-error=1.5",      // rate out of range
		"latency-rate=0.1",      // rate without magnitude
		"pred-corrupt=0.1",      // rate without shift
		"latency=-1",            // negative magnitude
		"seed=-3",               // seed is unsigned
		"solver-error=0.2,seed", // malformed tail
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestRollDeterministicAndStreamIndependent(t *testing.T) {
	p := &Plan{Seed: 42}
	q := &Plan{Seed: 42}
	for key := uint64(0); key < 64; key++ {
		if p.roll(streamSolver, key) != q.roll(streamSolver, key) {
			t.Fatalf("key %d: roll not deterministic", key)
		}
	}
	// Distinct streams must not be correlated: count agreement of
	// threshold crossings at 0.5 — identical streams would agree always.
	agree := 0
	const n = 256
	for key := uint64(0); key < n; key++ {
		a := p.roll(streamSolver, key) < 0.5
		b := p.roll(streamLatency, key) < 0.5
		if a == b {
			agree++
		}
	}
	if agree == n {
		t.Fatal("solver and latency streams are identical")
	}
	// And a different seed must change the sites.
	r := &Plan{Seed: 43}
	same := 0
	for key := uint64(0); key < n; key++ {
		if p.roll(streamSolver, key) == r.roll(streamSolver, key) {
			same++
		}
	}
	if same == n {
		t.Fatal("seed does not influence rolls")
	}
}

// faultFixture builds a small deterministic simulation with the hardened
// chain: a faulty exact primary falling back to the heuristic, predictor
// and latency faults active.
func faultFixture(t testing.TB, plan *Plan, tracer *telemetry.Tracer, reg *telemetry.Registry) (sim.Config, *trace.Trace) {
	t.Helper()
	plat := platform.Default()
	tcfg := task.DefaultGenConfig()
	tcfg.NumTypes = 20
	set, err := task.Generate(plat, tcfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(set, trace.GenConfig{
		Length:           40,
		InterarrivalMean: 0.8,
		InterarrivalStd:  0.25,
		Tightness:        trace.VeryTight,
	}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := predict.NewOracle(tr, predict.OracleConfig{
		TypeAccuracy: 1,
		NumTypes:     set.Len(),
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Platform: plat,
		TaskSet:  set,
		Solver: &core.BudgetedSolver{
			Stages: []core.Stage{
				{Name: "primary", Solver: plan.Solver(&core.Heuristic{}, tracer)},
				{Name: "heuristic", Solver: &core.Heuristic{}},
			},
			Tracer: tracer,
		},
		Predictor:    plan.Predictor(oracle, tracer, reg),
		OverheadHook: plan.Hook(tracer, reg),
		Tracer:       tracer,
		Metrics:      reg,
	}
	return cfg, tr
}

func heavyPlan() *Plan {
	return &Plan{
		Seed:                 5,
		SolverErrorRate:      0.3,
		LatencyRate:          0.2,
		LatencySpike:         0.1,
		PredictorOutageRate:  0.2,
		PredictorCorruptRate: 0.2,
		CorruptShift:         0.4,
	}
}

// TestSimDeterminism locks the headline resilience property: two runs under
// the same fault-plan seed produce byte-identical results (metrics are
// excluded — histogram contents include nondeterministic wall-clock data).
func TestSimDeterminism(t *testing.T) {
	run := func() []byte {
		cfg, tr := faultFixture(t, heavyPlan(), nil, nil)
		cfg.Metrics = nil
		res, err := sim.Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		res.Telemetry = nil
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same fault-plan seed produced different results")
	}

	// A different plan seed must actually change the run (otherwise the
	// determinism above is vacuous).
	cfg, tr := faultFixture(t, &Plan{Seed: 99, SolverErrorRate: 0.3}, nil, nil)
	cfg.Metrics = nil
	res, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res.Telemetry = nil
	c, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("plan seed has no effect on the run")
	}
}

// TestEndToEndTraceAudits drives a faulted, hardened simulation with full
// tracing and checks the whole observability pipeline: the JSONL stream
// decodes without unknown-type diagnostics, the replay auditor finds no
// violations, and the degraded-mode events actually appear.
func TestEndToEndTraceAudits(t *testing.T) {
	var sink bytes.Buffer
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Sink: &sink})
	reg := telemetry.NewRegistry()
	cfg, tr := faultFixture(t, heavyPlan(), tracer, reg)

	res, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d deadline misses under faults", res.DeadlineMisses)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	d, err := traceview.Read(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, diag := range d.Diags {
		if diag.Kind == traceview.DiagUnknownEventType {
			t.Fatalf("unknown event type in stream: %v", diag)
		}
	}
	var fallbacks, faults int
	for _, e := range d.Events {
		switch e.Type {
		case telemetry.EvSolverFallback:
			fallbacks++
		case telemetry.EvFaultInjected:
			faults++
		}
	}
	if fallbacks == 0 || faults == 0 {
		t.Fatalf("degraded-mode events missing: %d fallbacks, %d faults", fallbacks, faults)
	}
	if vs := traceview.Audit(d, traceview.AuditOptions{Platform: cfg.Platform}); len(vs) > 0 {
		t.Fatalf("audit violations under graceful degradation: %v", vs)
	}

	// The metrics snapshot carries the degraded-mode accounting.
	snap := reg.Snapshot()
	if snap.Counters["faultinject.solver_errors"] == 0 {
		t.Fatal("no solver faults recorded")
	}
	if snap.Counters["resilience.fallbacks"] == 0 {
		t.Fatal("no fallbacks recorded")
	}
	if _, ok := snap.Histograms["resilience.fallback_depth"]; !ok {
		t.Fatal("fallback depth histogram missing")
	}
}

// TestFaultySolverWithoutChain proves prompt, coordinate-bearing error
// propagation when a failing solver is wired bare (no resilience chain).
func TestFaultySolverWithoutChain(t *testing.T) {
	plan := &Plan{Seed: 5, SolverErrorRate: 1} // fail the first activation
	cfg, tr := faultFixture(t, &Plan{}, nil, nil)
	cfg.Solver = plan.Solver(&core.Heuristic{}, nil)
	_, err := sim.Run(cfg, tr)
	if err == nil {
		t.Fatal("bare faulty solver must abort the run")
	}
	if !strings.Contains(err.Error(), "request 0") {
		t.Fatalf("error lacks request coordinates: %v", err)
	}
}

func TestOrphanFallbackViolation(t *testing.T) {
	// A solver_fallback with no solver_invoked for its request must be
	// flagged by the auditor.
	tracer := telemetry.NewTracer(telemetry.TracerOptions{})
	e := telemetry.NewEvent(1, telemetry.EvSolverFallback)
	e.Req = 3
	e.Value = 1
	e.Reason = "error"
	tracer.Emit(e)
	var sink bytes.Buffer
	enc := json.NewEncoder(&sink)
	for _, ev := range tracer.Events() {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	d, err := traceview.Read(&sink)
	if err != nil {
		t.Fatal(err)
	}
	vs := traceview.Audit(d, traceview.AuditOptions{})
	found := false
	for _, v := range vs {
		if v.Kind == traceview.VOrphanFallback && v.Req == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphan fallback not flagged: %v", vs)
	}
}
