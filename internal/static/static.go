// Package static implements a quasi-static baseline resource manager in
// the spirit of the related work the paper contrasts itself against
// ([11], [15], [6] in its bibliography): per-task mappings are derived at
// design time from the task set alone, and the runtime system only
// *applies* them — it never remaps an admitted task.
//
// The design-time artefact is a preference table: for every task type, the
// executable resources ordered by increasing energy. At runtime an
// arriving task is placed on the first preference that passes the EDF
// schedulability check against the standing (immutable) assignments;
// if none passes, it is rejected. Comparing this baseline against the
// paper's heuristic and exact RMs quantifies how much of their quality
// comes from dynamic remapping rather than from the placement rule.
package static

import (
	"math"

	"predrm/internal/core"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// Table is the design-time artefact: Table[typeID] lists resource indices
// in preference order.
type Table [][]int

// BuildTable derives the preference table from a task set: executable
// resources sorted by ascending energy (ties by WCET, then index) — the
// design-time proxy for "near-optimal static mappings".
func BuildTable(set *task.Set) Table {
	t := make(Table, set.Len())
	n := set.Platform.Len()
	for id, ty := range set.Types {
		var rs []int
		for r := 0; r < n; r++ {
			if ty.ExecutableOn(r) {
				rs = append(rs, r)
			}
		}
		// Insertion sort by (energy, wcet, index): small n, no closures.
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0; j-- {
				a, b := rs[j-1], rs[j]
				if ty.Energy[a] < ty.Energy[b] ||
					(ty.Energy[a] == ty.Energy[b] && ty.WCET[a] <= ty.WCET[b]) {
					break
				}
				rs[j-1], rs[j] = rs[j], rs[j-1]
			}
		}
		t[id] = rs
	}
	return t
}

// RM is the quasi-static resource manager. Construct with New.
type RM struct {
	table Table
}

// New builds the runtime RM over a design-time table.
func New(table Table) *RM { return &RM{table: table} }

var _ core.Solver = (*RM)(nil)

// Solve keeps every already-mapped job in place and assigns each unmapped
// job (normally just the arriving one) to its first schedulable
// design-time preference. Predicted jobs are ignored: a quasi-static RM
// has no use for forecasts (their slots are reported mapped to their
// preference too, so the admission wrapper behaves uniformly).
func (s *RM) Solve(p *sched.Problem) core.Decision {
	n := p.Platform.Len()
	mapping := make([]int, len(p.Jobs))
	entries := make([][]sched.Entry, n)
	place := func(idx, r int) {
		j := p.Jobs[idx]
		mapping[idx] = r
		entries[r] = append(entries[r], sched.Entry{
			ReadyAt:     math.Max(j.Arrival, p.Time),
			Deadline:    j.AbsDeadline,
			Rem:         j.CPM(r, p.Policy),
			PinnedFirst: j.Pinned(p.Platform) && j.Resource == r,
		})
	}

	// Standing assignments are immutable.
	var free []int
	for idx, j := range p.Jobs {
		if j.Resource != sched.Unmapped {
			place(idx, j.Resource)
			continue
		}
		mapping[idx] = sched.Unmapped
		free = append(free, idx)
	}
	for _, idx := range free {
		j := p.Jobs[idx]
		if j.Type.ID < 0 || j.Type.ID >= len(s.table) {
			return core.Decision{Mapping: mapping, Feasible: false}
		}
		placed := false
		for _, r := range s.table[j.Type.ID] {
			cand := sched.Entry{
				ReadyAt:  math.Max(j.Arrival, p.Time),
				Deadline: j.AbsDeadline,
				Rem:      j.CPM(r, p.Policy),
			}
			trial := append(append(make([]sched.Entry, 0, len(entries[r])+1), entries[r]...), cand)
			if sched.ResourceFeasible(p.Platform.Resource(r).Preemptable(), p.Time, trial) {
				place(idx, r)
				placed = true
				break
			}
		}
		if !placed {
			return core.Decision{Mapping: mapping, Feasible: false}
		}
	}
	return core.Decision{Mapping: mapping, Feasible: true, Energy: p.Energy(mapping)}
}
