package static

import (
	"testing"

	"predrm/internal/core"
	"predrm/internal/exact"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/trace"
)

func TestBuildTableOrdersByEnergy(t *testing.T) {
	set := task.Motivational() // energies τ1: 7.3, 8.4, 2 → GPU first
	tab := BuildTable(set)
	if len(tab) != 2 {
		t.Fatalf("table size %d", len(tab))
	}
	if tab[0][0] != 2 || tab[0][1] != 0 || tab[0][2] != 1 {
		t.Fatalf("τ1 preference = %v, want [2 0 1]", tab[0])
	}
}

func TestBuildTableSkipsNonExecutable(t *testing.T) {
	set := &task.Set{
		Platform: platform.New(2, 0),
		Types: []*task.Type{{
			ID:     0,
			WCET:   []float64{5, task.NotExecutable},
			Energy: []float64{2, task.NotExecutable},
		}},
	}
	tab := BuildTable(set)
	if len(tab[0]) != 1 || tab[0][0] != 0 {
		t.Fatalf("preference = %v", tab[0])
	}
}

func TestSolvePlacesOnFirstFeasiblePreference(t *testing.T) {
	set := task.Motivational()
	tab := BuildTable(set)
	rm := New(tab)
	// Fresh τ1: goes to the GPU (first preference).
	j1 := sched.NewJob(0, set.Type(0), 0, 8)
	p := &sched.Problem{Platform: set.Platform, Time: 0, Jobs: []*sched.Job{j1}}
	d := rm.Solve(p)
	if !d.Feasible || d.Mapping[0] != 2 {
		t.Fatalf("decision %+v", d)
	}
	// With the GPU held by an immutable earlier-deadline job such that
	// queueing behind it busts τ2's deadline, τ2 falls to CPU1:
	// blocker occupies GPU [0,5]; τ2 (GPU WCET 3) would finish at 8 > 7.2,
	// while CPU1 (WCET 7) makes it.
	blocker := sched.NewJob(1, set.Type(0), 0, 6)
	blocker.Resource = 2
	blocker.Started = true
	blocker.ExecRes = 2
	j2 := sched.NewJob(2, set.Type(1), 0, 7.2)
	p2 := &sched.Problem{Platform: set.Platform, Time: 0, Jobs: []*sched.Job{blocker, j2}}
	d2 := rm.Solve(p2)
	if !d2.Feasible {
		t.Fatal("should be feasible on CPU1")
	}
	if d2.Mapping[0] != 2 {
		t.Fatal("standing assignment moved")
	}
	if d2.Mapping[1] != 0 {
		t.Fatalf("τ2 on %d, want CPU1 fallback", d2.Mapping[1])
	}
}

func TestSolveNeverRemaps(t *testing.T) {
	// Even when remapping would admit the arrival, the static RM refuses.
	// Platform: 1 CPU + 1 GPU. j1 is flexible (CPU 12, GPU 10) and sits
	// queued on the GPU with deadline 15; j2 is GPU-only (WCET 8,
	// deadline 9). On the GPU alone no order fits both; moving j1 to the
	// CPU admits both — but only a dynamic RM may do that.
	plat := platform.New(1, 1)
	tyFlex := &task.Type{ID: 0, WCET: []float64{12, 10}, Energy: []float64{6, 2}}
	tyGPU := &task.Type{ID: 1, WCET: []float64{task.NotExecutable, 8}, Energy: []float64{task.NotExecutable, 3}}
	set := &task.Set{Platform: plat, Types: []*task.Type{tyFlex, tyGPU}}
	rm := New(BuildTable(set))

	j1 := sched.NewJob(0, tyFlex, 0, 15)
	j1.Resource = 1 // queued on the GPU, not started
	j2 := sched.NewJob(1, tyGPU, 0, 9)
	p := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j1, j2}}
	if d := rm.Solve(p); d.Feasible {
		t.Fatalf("static RM admitted by remapping: %v", d.Mapping)
	}
	// The dynamic heuristic admits the same instance by moving j1.
	d := (&core.Heuristic{}).Solve(p)
	if !d.Feasible || d.Mapping[0] != 0 || d.Mapping[1] != 1 {
		t.Fatalf("dynamic heuristic should remap j1 to the CPU: %+v", d)
	}
}

func TestStaticEndToEndWeakerThanDynamic(t *testing.T) {
	plat := platform.Default()
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	gcfg := trace.DefaultGenConfig(trace.VeryTight)
	gcfg.Length = 200
	gcfg.InterarrivalMean = 2.2
	gcfg.InterarrivalStd = 0.7
	var rejStatic, rejExact float64
	r := rng.New(9)
	for i := 0; i < 5; i++ {
		tr, err := trace.Generate(set, gcfg, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{Platform: plat, TaskSet: set, Solver: New(BuildTable(set))}
		rs, err := sim.Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if rs.DeadlineMisses != 0 {
			t.Fatalf("static RM missed %d deadlines", rs.DeadlineMisses)
		}
		cfg.Solver = &exact.Optimal{}
		rd, err := sim.Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		rejStatic += rs.RejectionPct()
		rejExact += rd.RejectionPct()
	}
	// The fully dynamic exact RM must dominate the no-remap baseline.
	// (Interestingly, Algorithm 1 does NOT always: its aggressive
	// energy-driven remapping can crowd the GPU — see ablation notes.)
	if rejStatic <= rejExact {
		t.Fatalf("static (%.2f%%) should reject more than exact dynamic (%.2f%%)", rejStatic/5, rejExact/5)
	}
}

func TestSolveRejectsUnknownType(t *testing.T) {
	set := task.Motivational()
	rm := New(BuildTable(set))
	alien := &task.Type{ID: 99, WCET: []float64{1, 1, 1}, Energy: []float64{1, 1, 1}}
	j := sched.NewJob(0, alien, 0, 10)
	p := &sched.Problem{Platform: set.Platform, Time: 0, Jobs: []*sched.Job{j}}
	if d := rm.Solve(p); d.Feasible {
		t.Fatal("accepted type outside the design-time table")
	}
}
