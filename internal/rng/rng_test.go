package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split children collided at step %d", i)
		}
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() []uint64 {
		p := New(99)
		c := p.Split()
		out := make([]uint64, 10)
		for i := range out {
			out[i] = c.Uint64()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split stream not deterministic at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		f := r.Uniform(2, 10)
		if f < 2 || f >= 10 {
			t.Fatalf("Uniform out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] == 0 {
			t.Fatalf("Intn never produced %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestGaussianMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	const mean, std = 40.0, 9.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Gaussian(mean, std)
		sum += x
		sumSq += x * x
	}
	m := sum / n
	v := sumSq/n - m*m
	if math.Abs(m-mean) > 0.2 {
		t.Errorf("sample mean %.3f, want ~%.1f", m, mean)
	}
	if math.Abs(math.Sqrt(v)-std) > 0.2 {
		t.Errorf("sample stddev %.3f, want ~%.1f", math.Sqrt(v), std)
	}
}

func TestTruncGaussianBounds(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		x := r.TruncGaussian(40, 9, 1, 100)
		if x < 1 || x > 100 {
			t.Fatalf("TruncGaussian out of bounds: %v", x)
		}
	}
}

func TestTruncGaussianDegenerateTail(t *testing.T) {
	r := New(9)
	// Interval 100 sigma away from the mean: rejection will fail, the
	// uniform fallback must still respect the bounds.
	for i := 0; i < 100; i++ {
		x := r.TruncGaussian(0, 1, 100, 101)
		if x < 100 || x > 101 {
			t.Fatalf("fallback out of bounds: %v", x)
		}
	}
}

func TestTruncGaussianPanicsOnEmptyInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty interval")
		}
	}()
	New(1).TruncGaussian(0, 1, 5, 5)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse chi-square uniformity check over 16 buckets.
	r := New(11)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*16)]++
	}
	expected := float64(n) / 16
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-square %.2f too high for uniformity", chi2)
	}
}

func TestGaussianSpareIsUsed(t *testing.T) {
	// Two consecutive Gaussian draws must consume the Box-Muller pair:
	// drawing 2 then 2 with a fresh peer should match 4 in a row.
	a := New(12)
	b := New(12)
	var av, bv [4]float64
	for i := 0; i < 4; i++ {
		av[i] = a.Gaussian(0, 1)
	}
	bv[0] = b.Gaussian(0, 1)
	bv[1] = b.Gaussian(0, 1)
	bv[2] = b.Gaussian(0, 1)
	bv[3] = b.Gaussian(0, 1)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("Gaussian stream mismatch at %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkGaussian(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gaussian(40, 9)
	}
}
