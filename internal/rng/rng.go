// Package rng provides a small, deterministic random number generator with
// the distributions the workload generators and predictors need.
//
// Experiments in this repository must be exactly reproducible from a single
// seed, including when work is distributed over goroutines. The standard
// library's math/rand global source is unsuitable for that (shared state,
// seed semantics that changed across Go versions), so this package
// implements a fixed PCG XSL-RR 128/64 generator: the sequence for a given
// seed is frozen by the tests and will never change under us.
//
// A Rand is not safe for concurrent use; use Split to derive independent
// streams for concurrent consumers.
package rng

import "math"

// Rand is a deterministic pseudo-random generator (PCG XSL-RR 128/64).
// The zero value is not usable; construct with New.
type Rand struct {
	hi, lo uint64 // 128-bit state
	// spare holds a cached second Gaussian variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// Multiplier for the 128-bit PCG LCG step (Melissa O'Neill's constant).
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// New returns a generator seeded from seed. Distinct seeds give
// independent-looking streams.
func New(seed uint64) *Rand {
	r := &Rand{hi: seed, lo: seed ^ 0x9e3779b97f4a7c15}
	// Scramble the trivially-related initial state.
	for i := 0; i < 6; i++ {
		r.Uint64()
	}
	return r
}

// Split derives a new independent stream from r. The parent stream
// advances, so repeated Splits give distinct children deterministically.
func (r *Rand) Split() *Rand {
	s := r.Uint64()
	t := r.Uint64()
	c := &Rand{hi: s, lo: t | 1}
	for i := 0; i < 4; i++ {
		c.Uint64()
	}
	return c
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	// Advance: state = state*mul + inc (128-bit).
	lo, carry := bits128Mul64Add(r.lo, mulLo, incLo)
	hi := r.hi*mulLo + r.lo*mulHi + carry + incHi
	r.hi, r.lo = hi, lo
	// Output: XSL-RR.
	xored := r.hi ^ r.lo
	rot := uint(r.hi >> 58)
	return xored>>rot | xored<<((64-rot)&63)
}

// bits128Mul64Add computes a*b+c returning (low64, high64-carry-in-part).
// It mirrors math/bits.Mul64/Add64 but is inlined here to keep the package
// dependency-free beyond math.
func bits128Mul64Add(a, b, c uint64) (lo, hi uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a0 * b0
	w0 := t & mask32
	k := t >> 32
	t = a1*b0 + k
	w1 := t & mask32
	w2 := t >> 32
	t = a0*b1 + w1
	k = t >> 32
	hi = a1*b1 + w2 + k
	lo = t<<32 + w0
	lo2 := lo + c
	if lo2 < lo {
		hi++
	}
	return lo2, hi
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection to remove modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Gaussian returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *Rand) Gaussian(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return mean + stddev*u*f
}

// TruncGaussian samples a Gaussian truncated to [lo, hi] by rejection.
// It panics if the interval is empty. The truncation keeps generated WCETs
// and energies strictly positive without distorting the bulk of the
// distribution (the paper's parameters put lo at >4 sigma).
func (r *Rand) TruncGaussian(mean, stddev, lo, hi float64) float64 {
	if lo >= hi {
		panic("rng: TruncGaussian with empty interval")
	}
	for i := 0; i < 1024; i++ {
		x := r.Gaussian(mean, stddev)
		if x >= lo && x <= hi {
			return x
		}
	}
	// Degenerate parameters (interval far in a tail): fall back to uniform
	// so callers never hang.
	return r.Uniform(lo, hi)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
