package sim

import (
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/task"
	"predrm/internal/trace"
)

// TestMotivationalEndToEnd drives the paper's Sec 3 example through the
// full simulator: without prediction τ2 must be rejected (acceptance 1/2);
// with a perfect oracle both are accepted (acceptance 2/2).
func TestMotivationalEndToEnd(t *testing.T) {
	set := task.Motivational()
	tr := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, Type: 0, Deadline: 8},
		{Arrival: 1, Type: 1, Deadline: 5},
	}}
	if err := tr.Validate(set); err != nil {
		t.Fatal(err)
	}

	cfg := Config{Platform: set.Platform, TaskSet: set, Solver: &core.Heuristic{}, Audit: true}
	off, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if off.Accepted != 1 || off.Rejected != 1 {
		t.Fatalf("no prediction: accepted %d rejected %d, want 1/1", off.Accepted, off.Rejected)
	}

	o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Predictor = o
	on, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if on.Accepted != 2 {
		t.Fatalf("with prediction: accepted %d, want 2 (jobs: %+v)", on.Accepted, on.Jobs)
	}
	if on.DeadlineMisses != 0 {
		t.Fatal("deadline misses in scenario (b)")
	}
}

// TestReservationSemantics documents a structural property of the paper's
// formulation: predicted-task reservations act through *mapping steering*
// only (see TestMotivationalEndToEnd), never through inserted idle time —
// the EDF dispatch inside the planner is work-conserving, exactly like the
// MILP's constraints (4)-(14). Consequently plan-honouring and
// work-conserving execution produce identical outcomes, and a tight task
// whose only resource is blocked by an already-pinned job cannot be saved
// by prediction at the following arrival.
func TestReservationSemantics(t *testing.T) {
	// Platform: 1 CPU + 1 GPU. Types (index order CPU, GPU):
	//   0: long flexible job   WCET {30, 10}, energy {10, 2}
	//   1: tight GPU-only job  WCET {NE, 5},  energy {NE, 1}
	set := &task.Set{
		Platform: platform.New(1, 1),
		Types: []*task.Type{
			{ID: 0, WCET: []float64{30, 10}, Energy: []float64{10, 2}},
			{ID: 1, WCET: []float64{task.NotExecutable, 5}, Energy: []float64{task.NotExecutable, 1}},
		},
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	// Request 0: long job at t=0, deadline 60 (fits either resource).
	// Request 1: another long job at t=1, deadline 61.
	// Request 2: tight GPU-only job at t=4, deadline 7.
	// With lookahead-1 prediction at request 1, the RM knows the GPU must
	// stay free from t=4: the second long job must not start on the GPU.
	tr := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, Type: 0, Deadline: 60},
		{Arrival: 1, Type: 0, Deadline: 61},
		{Arrival: 4, Type: 1, Deadline: 7},
	}}
	if err := tr.Validate(set); err != nil {
		t.Fatal(err)
	}

	run := func(workConserving bool) *Result {
		o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Platform:       set.Platform,
			TaskSet:        set,
			Solver:         &core.Heuristic{},
			Predictor:      o,
			WorkConserving: workConserving,
			Audit:          true,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	planned := run(false)
	conserving := run(true)
	// The prediction at request 1 cannot save request 2: job 0 is pinned
	// on the GPU until t=10, past the tight task's deadline, with or
	// without a reservation.
	if planned.Accepted != 2 || conserving.Accepted != 2 {
		t.Fatalf("accepted %d (planned) / %d (work-conserving), want 2/2",
			planned.Accepted, conserving.Accepted)
	}
	// And the two execution modes agree on everything observable.
	if planned.TotalEnergy != conserving.TotalEnergy ||
		planned.MakeSpan != conserving.MakeSpan ||
		planned.Migrations != conserving.Migrations {
		t.Fatalf("execution modes diverged: %+v vs %+v", planned, conserving)
	}
	if planned.DeadlineMisses != 0 || conserving.DeadlineMisses != 0 {
		t.Fatal("deadline misses")
	}
}
