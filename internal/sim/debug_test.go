package sim

import (
	"testing"

	"predrm/internal/exact"
	"predrm/internal/trace"
)

// TestAuditRegressionMigratedOccupant pins the fix for a soundness bug: a
// job that started on a CPU and was migrated to the GPU must not be treated
// as the GPU's mid-execution occupant — doing so reorders the GPU queue
// against the admission-time feasibility check and causes deadline misses.
// This workload reproduced 14 misses before the fix.
func TestAuditRegressionMigratedOccupant(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 120, 4, 7)
	cfg := baseConfig(set)
	cfg.Solver = &exact.Optimal{}
	cfg.Audit = true
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatalf("audit failed: %v", err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d deadline misses", res.DeadlineMisses)
	}
}
