package sim

import (
	"bytes"
	"encoding/json"
	"regexp"
	"testing"

	"predrm/internal/core"
	"predrm/internal/engine"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// scaleWorkload generates a task set and trace sized to an arbitrary
// platform spec (the shard tests run on larger machines than Default).
func scaleWorkload(t *testing.T, spec string, tight trace.Tightness, length int, meanIA float64, seed uint64) (*platform.Platform, *task.Set, *trace.Trace) {
	t.Helper()
	plat, err := platform.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	set, err := task.Generate(plat, task.DefaultGenConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultGenConfig(tight)
	cfg.Length = length
	cfg.InterarrivalMean = meanIA
	cfg.InterarrivalStd = meanIA / 3
	tr, err := trace.Generate(set, cfg, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return plat, set, tr
}

// TestShardedOneShardMatchesUnsharded pins the scale-out engine's
// degenerate configuration to the paper path: one shard, zero batch
// window, same trace — the Result JSON and the JSONL telemetry stream
// must match sim.Run to the byte (only the measured wall_ns of each
// solver call is real time and is normalised away).
func TestShardedOneShardMatchesUnsharded(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 150, 4, 11)

	var plainTrace bytes.Buffer
	plainCfg := baseConfig(set)
	plainCfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: &plainTrace})
	plainRes, err := Run(plainCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := plainCfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	var shardTrace bytes.Buffer
	shardCfg := baseConfig(set)
	shardCfg.Solver = nil // built through the factory, as a sharded driver would
	shardCfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: &shardTrace})
	shardRes, err := RunSharded(shardCfg, ShardConfig{
		Shards:    1,
		NewSolver: func() core.Solver { return &core.Heuristic{} },
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := shardCfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	plainJSON, _ := json.Marshal(plainRes)
	shardJSON, _ := json.Marshal(shardRes)
	if !bytes.Equal(plainJSON, shardJSON) {
		t.Fatalf("results diverge:\nplain:   %s\nsharded: %s", plainJSON, shardJSON)
	}
	wallNS := regexp.MustCompile(`"wall_ns":\d+`)
	plainEvents := wallNS.ReplaceAll(plainTrace.Bytes(), []byte(`"wall_ns":0`))
	shardEvents := wallNS.ReplaceAll(shardTrace.Bytes(), []byte(`"wall_ns":0`))
	if !bytes.Equal(plainEvents, shardEvents) {
		t.Fatalf("telemetry streams diverge (%d vs %d bytes)", len(plainEvents), len(shardEvents))
	}
}

// TestShardedOneShardMatchesUnshardedGolden runs the differential on
// the golden-trace fixture workload — the full-feature configuration
// (budgeted solver chain, oracle predictor, provenance, tracer) that a
// sharded engine refuses at S > 1 but must carry untouched at S = 1 via
// full delegation. Result JSON and the JSONL telemetry stream must
// match sim.Run to the byte (wall_ns normalised, as in the golden test).
func TestShardedOneShardMatchesUnshardedGolden(t *testing.T) {
	var plainTrace bytes.Buffer
	plainCfg, tr := telemetryFixture(t)
	plainCfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: &plainTrace})
	plainRes, err := Run(plainCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := plainCfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	var shardTrace bytes.Buffer
	shardCfg, _ := telemetryFixture(t) // fresh solver chain, same workload
	shardCfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: &shardTrace})
	shardRes, err := RunSharded(shardCfg, ShardConfig{Shards: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := shardCfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	plainJSON, _ := json.Marshal(plainRes)
	shardJSON, _ := json.Marshal(shardRes)
	if !bytes.Equal(plainJSON, shardJSON) {
		t.Fatalf("results diverge:\nplain:   %s\nsharded: %s", plainJSON, shardJSON)
	}
	wallNS := regexp.MustCompile(`"wall_ns":\d+`)
	plainEvents := wallNS.ReplaceAll(plainTrace.Bytes(), []byte(`"wall_ns":0`))
	shardEvents := wallNS.ReplaceAll(shardTrace.Bytes(), []byte(`"wall_ns":0`))
	if !bytes.Equal(plainEvents, shardEvents) {
		t.Fatalf("telemetry streams diverge (%d vs %d bytes)", len(plainEvents), len(shardEvents))
	}
}

// TestBatchEpochWindowZeroMatchesOneByOne: a singleton epoch closing at
// its own arrival is exactly one Activate call — driving every request
// through ActivateEpoch that way must be byte-identical to the window-0
// one-by-one path, for any shard count (here 4, so routing too).
func TestBatchEpochWindowZeroMatchesOneByOne(t *testing.T) {
	plat, set, tr := scaleWorkload(t, "16c2g", trace.VeryTight, 200, 1.0, 21)
	newCfg := func() Config {
		return Config{Platform: plat, TaskSet: set}
	}
	sc := ShardConfig{Shards: 4, NewSolver: func() core.Solver { return &core.Heuristic{} }}

	oneByOne, err := RunSharded(newCfg(), sc, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Same engine, but drive it through ActivateEpoch with singleton
	// epochs closing at each arrival (what a zero batch window means).
	eng, err := engine.NewSharded(newCfg(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range tr.Requests {
		if _, err := eng.ActivateEpoch(i, tr.Requests[i:i+1], req.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	epochs := eng.Finalize()

	aJSON, _ := json.Marshal(oneByOne)
	bJSON, _ := json.Marshal(epochs)
	if !bytes.Equal(aJSON, bJSON) {
		t.Fatalf("singleton epochs diverge from one-by-one:\n%s\n%s", aJSON, bJSON)
	}
	if oneByOne.Requests != 200 || oneByOne.Accepted+oneByOne.Rejected != 200 {
		t.Fatalf("count mismatch: %+v", oneByOne)
	}
	if oneByOne.DeadlineMisses != 0 {
		t.Fatalf("%d accepted jobs missed deadlines", oneByOne.DeadlineMisses)
	}
}

// TestShardedRunDeterministic: concurrency inside an epoch must not leak
// into outcomes — two sharded batched runs over the same trace produce
// byte-identical Results.
func TestShardedRunDeterministic(t *testing.T) {
	plat, set, tr := scaleWorkload(t, "64c8g", trace.VeryTight, 300, 0.5, 31)
	sc := ShardConfig{
		Shards:      4,
		BatchWindow: 2.0,
		NewSolver:   func() core.Solver { return &core.Heuristic{} },
	}
	run := func() []byte {
		res, err := RunSharded(Config{Platform: plat, TaskSet: set}, sc, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != 300 || res.Accepted+res.Rejected != 300 {
			t.Fatalf("count mismatch: %+v", res)
		}
		if res.DeadlineMisses != 0 {
			t.Fatalf("%d accepted jobs missed deadlines", res.DeadlineMisses)
		}
		if res.Accepted == 0 {
			t.Fatal("nothing accepted")
		}
		b, _ := json.Marshal(res)
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("sharded batched run not deterministic:\n%s\n%s", a, b)
	}
}

// TestShardedBatchingTradesDecisions: batching defers decisions to the
// epoch close, so it must still produce a sound run (no misses) and
// account for every request; acceptance may differ from one-by-one.
func TestShardedBatchingTradesDecisions(t *testing.T) {
	plat, set, tr := scaleWorkload(t, "32c4g", trace.VeryTight, 250, 0.8, 41)
	newSC := func(window float64) ShardConfig {
		return ShardConfig{Shards: 4, BatchWindow: window, NewSolver: func() core.Solver { return &core.Heuristic{} }}
	}
	for _, window := range []float64{0, 1.5, 5} {
		res, err := RunSharded(Config{Platform: plat, TaskSet: set}, newSC(window), tr)
		if err != nil {
			t.Fatalf("window %v: %v", window, err)
		}
		if res.Requests != 250 || res.Accepted+res.Rejected != 250 {
			t.Fatalf("window %v: count mismatch: %+v", window, res)
		}
		if res.DeadlineMisses != 0 {
			t.Fatalf("window %v: %d accepted jobs missed deadlines", window, res.DeadlineMisses)
		}
	}
}

// TestShardedRejectsGlobalFeatures: configurations whose state is
// inherently global fail loudly instead of getting per-shard semantics.
func TestShardedRejectsGlobalFeatures(t *testing.T) {
	plat, set, tr := scaleWorkload(t, "16c2g", trace.VeryTight, 10, 5, 51)
	sc := ShardConfig{Shards: 4, NewSolver: func() core.Solver { return &core.Heuristic{} }}

	cfg := Config{Platform: plat, TaskSet: set}
	cfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: &bytes.Buffer{}})
	if _, err := RunSharded(cfg, sc, tr); err == nil {
		t.Fatal("tracer accepted on a multi-shard engine")
	}
	cfg = Config{Platform: plat, TaskSet: set, Provenance: true}
	if _, err := RunSharded(cfg, sc, tr); err == nil {
		t.Fatal("provenance accepted on a multi-shard engine")
	}
	cfg = Config{Platform: plat, TaskSet: set}
	if _, err := RunSharded(cfg, ShardConfig{Shards: 4}, tr); err == nil {
		t.Fatal("missing NewSolver accepted on a multi-shard engine")
	}
}
