package sim

import (
	"math"
	"testing"

	"predrm/internal/core"
	"predrm/internal/critical"
	"predrm/internal/exact"
	"predrm/internal/predict"
	"predrm/internal/trace"
)

func testCriticalSet() *critical.Set {
	return &critical.Set{Tasks: []*critical.Task{
		{ID: 0, Name: "ctrl", Resource: 0, Period: 12, WCET: 3, Energy: 1.5, Deadline: 6},
		{ID: 1, Name: "sense", Resource: 1, Period: 25, Offset: 5, WCET: 5, Energy: 2, Deadline: 15},
	}}
}

func TestCriticalJobsAlwaysServed(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 150, 2.2, 31)
	cfg := baseConfig(set)
	cfg.Critical = testCriticalSet()
	cfg.Audit = true
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalJobs == 0 {
		t.Fatal("no critical releases served")
	}
	if res.CriticalMisses != 0 {
		t.Fatalf("%d critical deadline misses — the design-time guarantee broke", res.CriticalMisses)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d adaptive deadline misses", res.DeadlineMisses)
	}
	if res.CriticalEnergy <= 0 {
		t.Fatal("critical energy not accounted")
	}
	// Rough release count: trace spans ~150 x 2.2 time units.
	span := tr.Requests[tr.Len()-1].Arrival
	expect0 := int(span / 12)
	if res.CriticalJobs < expect0 {
		t.Fatalf("only %d critical jobs over span %.0f", res.CriticalJobs, span)
	}
}

func TestCriticalReducesAdaptiveCapacity(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 150, 2.2, 32)
	without, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(set)
	// A hungry critical load on two CPUs.
	cfg.Critical = &critical.Set{Tasks: []*critical.Task{
		{ID: 0, Resource: 0, Period: 10, WCET: 6, Energy: 2, Deadline: 10},
		{ID: 1, Resource: 1, Period: 10, WCET: 6, Energy: 2, Deadline: 10},
	}}
	with, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if with.CriticalMisses != 0 || with.DeadlineMisses != 0 {
		t.Fatal("deadline misses under critical load")
	}
	if with.Rejected <= without.Rejected {
		t.Fatalf("critical load did not reduce adaptive capacity: %d vs %d rejected",
			with.Rejected, without.Rejected)
	}
}

func TestCriticalWithPredictionAndExact(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 100, 3, 33)
	cfg := baseConfig(set)
	cfg.Solver = &exact.Optimal{}
	cfg.Critical = testCriticalSet()
	cfg.Audit = true
	o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 0.9, TimeError: 0.1, NumTypes: set.Len(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Predictor = o
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalMisses != 0 || res.DeadlineMisses != 0 {
		t.Fatalf("misses: %d critical, %d adaptive", res.CriticalMisses, res.DeadlineMisses)
	}
}

func TestCriticalEnergySeparateFromAdaptive(t *testing.T) {
	set, tr := testWorkload(t, trace.LessTight, 60, 20, 34)
	cfg := baseConfig(set)
	cfg.Critical = testCriticalSet()
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	var adaptive float64
	for _, j := range res.Jobs {
		adaptive += j.Energy
	}
	if math.Abs(adaptive-res.TotalEnergy) > 1e-6 {
		t.Fatalf("critical energy leaked into TotalEnergy: %v vs %v", adaptive, res.TotalEnergy)
	}
}

func TestCriticalValidationSurfacesEarly(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 10, 5, 35)
	cfg := baseConfig(set)
	cfg.Critical = &critical.Set{Tasks: []*critical.Task{
		{ID: 0, Resource: 5, Period: 10, WCET: 2, Energy: 1, Deadline: 10}, // GPU: invalid
	}}
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("accepted critical task on a non-preemptable resource")
	}
}

func TestCriticalDenseLoadStillSound(t *testing.T) {
	// Near-saturating critical density on one CPU with tight deadlines;
	// the adaptive RM must work around it without any miss.
	set, tr := testWorkload(t, trace.VeryTight, 80, 2.5, 36)
	cfg := baseConfig(set)
	cfg.Solver = &core.Heuristic{}
	cfg.Critical = &critical.Set{Tasks: []*critical.Task{
		{ID: 0, Resource: 2, Period: 5, WCET: 3, Energy: 1, Deadline: 4},
	}}
	cfg.Audit = true
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalMisses != 0 || res.DeadlineMisses != 0 {
		t.Fatalf("misses under dense critical load: %d/%d", res.CriticalMisses, res.DeadlineMisses)
	}
}
