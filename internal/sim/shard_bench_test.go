package sim

import (
	"fmt"
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/trace"
)

// BenchmarkShardedRun is the scale-out scaling curve: per-activation
// admission cost as the platform grows, with load held proportional to
// capacity and shard size held at ~9 resources. Sublinear growth of
// ns/activation with platform size is the point — the indexed candidate
// scan keeps per-shard solves cheap and routing is O(log shards).
//
// Recorded in BENCH.json as NEW entries, not gated: the numbers are
// multicore (concurrent shard solves) and the bench box is one core, so
// run-to-run noise swamps a ±15% gate (see BENCH.md).
func BenchmarkShardedRun(b *testing.B) {
	for _, tc := range []struct {
		spec   string
		shards int
	}{
		{"8c1g", 1},
		{"16c2g", 2},
		{"32c4g", 4},
		{"64c8g", 8},
		{"112c16g", 14},
	} {
		b.Run(fmt.Sprintf("%s-x%d", tc.spec, tc.shards), func(b *testing.B) {
			plat, err := platform.Parse(tc.spec)
			if err != nil {
				b.Fatal(err)
			}
			root := rng.New(97)
			tcfg := task.DefaultGenConfig()
			if min := 2 * plat.Len(); tcfg.NumTypes < min {
				tcfg.NumTypes = min
			}
			set, err := task.Generate(plat, tcfg, root.Split())
			if err != nil {
				b.Fatal(err)
			}
			// Offered load proportional to capacity, as in ScaleSweep.
			ia := 2.2 * float64(platform.Default().Len()) / float64(plat.Len())
			const length = 300
			tr, err := trace.Generate(set, trace.GenConfig{
				Length:           length,
				InterarrivalMean: ia,
				InterarrivalStd:  ia / 3,
				Tightness:        trace.VeryTight,
			}, root.Split())
			if err != nil {
				b.Fatal(err)
			}
			sc := ShardConfig{
				Shards:      tc.shards,
				BatchWindow: 4 * ia,
				NewSolver: func() core.Solver {
					return &core.Heuristic{Cache: sched.NewFeasCache(0)}
				},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunSharded(Config{Platform: plat, TaskSet: set}, sc, tr)
				if err != nil {
					b.Fatal(err)
				}
				if res.Requests != length {
					b.Fatalf("lost requests: %+v", res)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*length), "ns/activation")
		})
	}
}
