package sim

import (
	"math"
	"testing"

	"predrm/internal/core"
	"predrm/internal/exact"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/trace"
)

func testWorkload(t *testing.T, tight trace.Tightness, length int, meanIA float64, seed uint64) (*task.Set, *trace.Trace) {
	t.Helper()
	set, err := task.Generate(platform.Default(), task.DefaultGenConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultGenConfig(tight)
	cfg.Length = length
	cfg.InterarrivalMean = meanIA
	cfg.InterarrivalStd = meanIA / 3
	tr, err := trace.Generate(set, cfg, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return set, tr
}

func baseConfig(set *task.Set) Config {
	return Config{
		Platform: platform.Default(),
		TaskSet:  set,
		Solver:   &core.Heuristic{},
	}
}

func oracle(t *testing.T, tr *trace.Trace, set *task.Set, cfg predict.OracleConfig) *predict.Oracle {
	t.Helper()
	cfg.NumTypes = set.Len()
	o, err := predict.NewOracle(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestRunBasicInvariants(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 200, 5, 1)
	res, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 || res.Accepted+res.Rejected != 200 {
		t.Fatalf("count mismatch: %+v", res)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d accepted jobs missed deadlines", res.DeadlineMisses)
	}
	if res.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	// Energy closure: per-job energies sum to the total.
	var sum float64
	for _, j := range res.Jobs {
		sum += j.Energy
		if j.Accepted && j.FinishTime == 0 {
			t.Fatalf("accepted job %d never finished", j.ID)
		}
		if !j.Accepted && j.Energy != 0 {
			t.Fatalf("rejected job %d consumed energy", j.ID)
		}
	}
	if math.Abs(sum-res.TotalEnergy) > 1e-6 {
		t.Fatalf("energy closure violated: jobs %.9f vs total %.9f", sum, res.TotalEnergy)
	}
}

func TestRunDeterminism(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 100, 4, 2)
	a, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accepted != b.Accepted || math.Abs(a.TotalEnergy-b.TotalEnergy) > 1e-12 {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunAllAcceptedWhenUnderloaded(t *testing.T) {
	// Huge interarrival: every job should fit easily.
	set, tr := testWorkload(t, trace.LessTight, 60, 500, 3)
	res, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("underloaded trace rejected %d requests", res.Rejected)
	}
	if res.DeadlineMisses != 0 {
		t.Fatal("deadline misses in underloaded trace")
	}
	// Idle platform: every job lands on its min-energy resource, so the
	// total is the sum of per-type minimum energies.
	var want float64
	for _, req := range tr.Requests {
		e, _ := set.Type(req.Type).MinEnergy()
		want += e
	}
	if math.Abs(res.TotalEnergy-want) > 1e-6 {
		t.Fatalf("energy %v, want %v (all at min)", res.TotalEnergy, want)
	}
}

func TestRunRejectsUnderOverload(t *testing.T) {
	// Tiny interarrival: the platform cannot keep up and must reject.
	set, tr := testWorkload(t, trace.VeryTight, 200, 0.3, 4)
	res, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("overloaded trace had no rejections")
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d deadline misses under overload", res.DeadlineMisses)
	}
}

func TestPredictionReducesRejection(t *testing.T) {
	// The paper's headline effect (Fig 2): with accurate prediction the
	// rejection percentage drops for tight deadlines. Aggregate over
	// several traces to avoid single-trace noise.
	set, _ := testWorkload(t, trace.VeryTight, 1, 1, 5)
	gcfg := trace.DefaultGenConfig(trace.VeryTight)
	gcfg.Length = 150
	gcfg.InterarrivalMean = 5
	gcfg.InterarrivalStd = 5.0 / 3
	r := rng.New(99)
	var rejOff, rejOn float64
	traces := 8
	for i := 0; i < traces; i++ {
		tr, err := trace.Generate(set, gcfg, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(set)
		off, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Predictor = oracle(t, tr, set, predict.OracleConfig{TypeAccuracy: 1, Seed: uint64(i)})
		on, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		rejOff += off.RejectionPct()
		rejOn += on.RejectionPct()
		if on.DeadlineMisses != 0 || off.DeadlineMisses != 0 {
			t.Fatal("deadline misses")
		}
	}
	rejOff /= float64(traces)
	rejOn /= float64(traces)
	if rejOn >= rejOff {
		t.Fatalf("prediction did not reduce rejection: off %.2f%% vs on %.2f%%", rejOff, rejOn)
	}
}

func TestOverheadHurts(t *testing.T) {
	// Fig 5's mechanism: a large decision latency eats slack and increases
	// rejection even with perfect prediction.
	set, _ := testWorkload(t, trace.VeryTight, 1, 1, 6)
	gcfg := trace.DefaultGenConfig(trace.VeryTight)
	gcfg.Length = 150
	gcfg.InterarrivalMean = 5
	gcfg.InterarrivalStd = 5.0 / 3
	r := rng.New(123)
	var lo, hi float64
	for i := 0; i < 6; i++ {
		tr, err := trace.Generate(set, gcfg, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(set)
		cfg.Predictor = oracle(t, tr, set, predict.OracleConfig{TypeAccuracy: 1, Seed: 1})
		a, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Predictor = oracle(t, tr, set, predict.OracleConfig{TypeAccuracy: 1, Overhead: 2.5, Seed: 1})
		b, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		lo += a.RejectionPct()
		hi += b.RejectionPct()
	}
	if hi <= lo {
		t.Fatalf("overhead did not hurt: %.2f%% vs %.2f%%", lo/6, hi/6)
	}
}

func TestExactSolverNoMisses(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 120, 4, 7)
	cfg := baseConfig(set)
	cfg.Solver = &exact.Optimal{}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("exact RM missed %d deadlines", res.DeadlineMisses)
	}
	if res.Accepted == 0 {
		t.Fatal("exact RM accepted nothing")
	}
}

func TestExactAcceptsAtLeastAsManyPerDecision(t *testing.T) {
	// Not a strict global guarantee (the paper itself observes 88%, not
	// 100%), but on moderate load the exact RM should not be wildly worse.
	set, tr := testWorkload(t, trace.VeryTight, 150, 4, 8)
	h, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(set)
	cfg.Solver = &exact.Optimal{}
	e, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if e.Accepted < h.Accepted-8 {
		t.Fatalf("exact accepted %d, heuristic %d", e.Accepted, h.Accepted)
	}
}

func TestMigrationAccounting(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 250, 1.5, 9)
	res, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	var migs int
	for _, j := range res.Jobs {
		migs += j.Migrations
	}
	if migs != res.Migrations {
		t.Fatalf("per-job migrations %d != total %d", migs, res.Migrations)
	}
	if res.MigrationEnergy > res.TotalEnergy {
		t.Fatal("migration energy exceeds total")
	}
}

func TestChargeAlwaysAtLeastAsManyMigrations(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 150, 2, 10)
	a := baseConfig(set)
	resA, err := Run(a, tr)
	if err != nil {
		t.Fatal(err)
	}
	b := baseConfig(set)
	b.Policy = sched.ChargeAlways
	resB, err := Run(b, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Under ChargeAlways every remap of a mapped job is charged, so the
	// charged-migration count can only grow for similar decisions; the
	// decisions themselves shift, so allow slack but catch inversions.
	if resB.Migrations+20 < resA.Migrations {
		t.Fatalf("ChargeAlways %d migrations, ChargeStartedOnly %d", resB.Migrations, resA.Migrations)
	}
	if resB.DeadlineMisses != 0 {
		t.Fatal("deadline misses under ChargeAlways")
	}
}

func TestMarkovPredictorRuns(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 120, 4, 11)
	cfg := baseConfig(set)
	m, err := predict.NewMarkov(set.Len(), predict.NewEWMA(0.2), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Predictor = m
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("online predictor led to %d deadline misses", res.DeadlineMisses)
	}
}

func TestConfigValidation(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 10, 5, 12)
	bad := []Config{
		{},
		{Platform: platform.Default()},
		{Platform: platform.Default(), TaskSet: set},
		{Platform: platform.Default(), TaskSet: set, Solver: &core.Heuristic{}, ExtraOverhead: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, tr); err == nil {
			t.Errorf("case %d: Run accepted invalid config", i)
		}
	}
	// Invalid trace.
	if _, err := Run(baseConfig(set), &trace.Trace{}); err == nil {
		t.Error("Run accepted empty trace")
	}
}

func TestMakeSpanAndFinishTimes(t *testing.T) {
	set, tr := testWorkload(t, trace.LessTight, 40, 50, 13)
	res, err := Run(baseConfig(set), tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if !j.Accepted {
			continue
		}
		if j.FinishTime < j.Arrival {
			t.Fatalf("job %d finished before arriving", j.ID)
		}
		if j.FinishTime > res.MakeSpan+sched.Eps {
			t.Fatalf("job %d finished after makespan", j.ID)
		}
		if j.FinishTime > j.AbsDeadline+1e-6 {
			t.Fatalf("job %d: finish %.4f after deadline %.4f", j.ID, j.FinishTime, j.AbsDeadline)
		}
	}
}

func TestPropertyNoMissesAcrossSeeds(t *testing.T) {
	// The central soundness property over a spread of loads and engines.
	if testing.Short() {
		t.Skip("long property test")
	}
	set, _ := testWorkload(t, trace.VeryTight, 1, 1, 20)
	r := rng.New(500)
	for trial := 0; trial < 12; trial++ {
		gcfg := trace.DefaultGenConfig(trace.Tightness(trial % 2))
		gcfg.Length = 80
		gcfg.InterarrivalMean = []float64{0.5, 2, 6, 20}[trial%4]
		gcfg.InterarrivalStd = gcfg.InterarrivalMean / 3
		tr, err := trace.Generate(set, gcfg, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		for _, pred := range []bool{false, true} {
			cfg := baseConfig(set)
			if trial%3 == 0 {
				cfg.Solver = &exact.Optimal{}
			}
			if pred {
				cfg.Predictor = oracle(t, tr, set, predict.OracleConfig{
					TypeAccuracy: 0.8, TimeError: 0.1, Seed: uint64(trial)})
			}
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeadlineMisses != 0 {
				t.Fatalf("trial %d pred=%v: %d deadline misses", trial, pred, res.DeadlineMisses)
			}
		}
	}
}
