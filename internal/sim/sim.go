// Package sim drives a request trace through the platform and a resource
// manager: the discrete-event simulation behind every experiment in the
// paper's evaluation (Sec 5).
//
// Event loop per request: advance execution to the arrival, advance
// further by the prediction/decision overhead (Sec 5.5), build the S̄
// problem (active jobs + arriving job + optional predicted job), run the
// admission protocol, apply the resulting mapping (charging migrations),
// and continue.
//
// Between RM activations the platform executes the decision's *planned*
// EDF schedule, including the capacity reserved for the predicted task: a
// queued job planned after the predicted one waits for it. This is what
// makes a reservation on a non-preemptable resource effective — under
// work-conserving execution the next queued job would grab the reserved
// gap, get pinned, and block the real task when it arrives, silently
// cancelling the benefit prediction is supposed to deliver. The
// work-conserving alternative is available as Config.WorkConserving for
// ablation. With no prediction the two coincide (the planned schedule is
// the work-conserving EDF schedule), preserving the paper's "no preemption
// between two activations" property.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"predrm/internal/core"
	"predrm/internal/critical"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/sched"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

// Config assembles one simulation.
type Config struct {
	// Platform to execute on.
	Platform *platform.Platform
	// TaskSet resolving request types.
	TaskSet *task.Set
	// Solver is the mapping engine (heuristic, exact, or MILP).
	Solver core.Solver
	// Predictor provides next-request forecasts; nil disables prediction.
	Predictor predict.Predictor
	// Lookahead is the forecast horizon: how many upcoming requests are
	// included as planning constraints. 0 and 1 both mean the paper's
	// single-step prediction; larger values require a Predictor that
	// implements predict.MultiPredictor (the library's extension).
	Lookahead int
	// Critical is the design-time safety-critical workload (Sec 2); nil
	// disables it. Critical jobs release periodically on their static
	// resources with guaranteed service: every adaptive admission accounts
	// for the upcoming critical releases inside its decision window.
	Critical *critical.Set
	// Policy selects migration charging (default ChargeStartedOnly).
	Policy sched.MigrationPolicy
	// ExtraOverhead is added to the predictor's own overhead as decision
	// latency, in simulated time.
	ExtraOverhead float64
	// OverheadHook, when non-nil, contributes additional per-request
	// decision latency (simulated time): it is called once per arrival
	// with the request index and arrival time, and its result is added to
	// ExtraOverhead and the predictor overhead. internal/faultinject uses
	// it to inject latency spikes; it must be deterministic in (req,
	// arrival) for reproducible runs and must not return a negative value.
	OverheadHook func(req int, arrival float64) float64
	// WorkConserving switches execution between activations from the
	// planned schedule (default: reservations for the predicted task are
	// honoured) to greedy EDF dispatch that backfills reserved gaps.
	// Ablation A4 quantifies the difference; without prediction the modes
	// are identical.
	WorkConserving bool
	// Audit re-verifies at every activation that the active jobs' current
	// mappings are still EDF-feasible, reporting the first violation
	// through the returned error. Meant for tests and debugging; the
	// invariant must hold for a sound RM.
	Audit bool
	// RecordExecution captures the executed schedule as Result.Execution
	// (per-resource segments), for Gantt rendering and post-hoc analysis.
	RecordExecution bool
	// Tracer receives structured simulation events (arrivals, predictions,
	// solver latencies, admissions, migrations, reservations); nil disables
	// tracing at near-zero cost.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, collects counters and latency histograms for
	// the run; the snapshot is surfaced as Result.Telemetry. Solvers
	// implementing telemetry.Instrumentable are attached automatically.
	Metrics *telemetry.Registry
	// StateProbe, when non-nil, receives a point-in-time StateSample after
	// every admission decision and once more when the run drains — the
	// virtual-clock hook the live introspection plane (internal/obs) mounts
	// to publish RM state and feed SLO burn-rate windows. It is called
	// synchronously from the event loop, so it must be fast and must not
	// retain the sample's Resources slice beyond the call.
	StateProbe func(StateSample)
	// Provenance enables per-activation decision-provenance recording: a
	// ProvRecorder is attached to the solver (telemetry.ProvenanceAware)
	// and every admission decision is followed by an EvDecision event
	// carrying the full causal record — solver-chain hops, candidate
	// feasibility verdicts, regret picks, branch-and-bound statistics, and
	// remapping deltas. Off by default: recording widens the solver's
	// feasibility probes to explain mode and allocates per activation, so
	// the hot path keeps its allocation-free benchmark gate when disabled.
	// Requires Tracer to be useful (the record rides the event stream).
	Provenance bool
}

// StateSample is the RM state handed to Config.StateProbe: cumulative
// admission counters plus the current in-flight picture. Counters are
// cumulative since the start of the run so samplers can window them.
type StateSample struct {
	// Time is the simulated time of the sample.
	Time float64 `json:"time"`
	// Req is the request index just decided, or -1 for the final
	// end-of-run sample.
	Req int `json:"req"`
	// Requests counts arrivals decided so far (== Accepted + Rejected).
	Requests int `json:"requests"`
	// Accepted and Rejected are cumulative admission outcomes.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Finished counts adaptive jobs that completed so far.
	Finished int `json:"finished"`
	// DeadlineMisses counts accepted jobs that finished late so far (0 for
	// a sound RM).
	DeadlineMisses int `json:"deadline_misses"`
	// InFlight is the number of currently active jobs (adaptive and
	// critical).
	InFlight int `json:"in_flight"`
	// Resources holds one entry per platform resource, indexed by id.
	Resources []ResourceSample `json:"resources"`
}

// ResourceSample is one resource's slice of a StateSample.
type ResourceSample struct {
	// Jobs counts active jobs currently mapped to the resource.
	Jobs int `json:"jobs"`
	// Reserved counts standing reservations for predicted jobs on it.
	Reserved int `json:"reserved"`
	// NextDeadline is the earliest absolute deadline among the mapped
	// jobs, or 0 when the resource is empty (JSON cannot carry +Inf).
	NextDeadline float64 `json:"next_deadline"`
}

// ExecSegment is one contiguous piece of executed schedule: job JobID ran
// on Resource during [Start, End). Migration-debt service is included in
// the job's occupancy.
type ExecSegment struct {
	Resource int     `json:"resource"`
	JobID    int     `json:"job"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Platform == nil:
		return errors.New("sim: no platform")
	case c.TaskSet == nil:
		return errors.New("sim: no task set")
	case c.Solver == nil:
		return errors.New("sim: no solver")
	case c.ExtraOverhead < 0:
		return errors.New("sim: negative overhead")
	case c.Lookahead < 0:
		return errors.New("sim: negative lookahead")
	case c.Lookahead > 1 && c.Predictor == nil:
		return errors.New("sim: lookahead needs a predictor")
	}
	return nil
}

// JobRecord is the per-request outcome.
type JobRecord struct {
	// ID is the request's index in the trace.
	ID int
	// Type is the task type.
	Type int
	// Arrival and AbsDeadline are absolute times.
	Arrival, AbsDeadline float64
	// Accepted reports admission.
	Accepted bool
	// FinishTime is the completion time of accepted jobs.
	FinishTime float64
	// Energy is the energy this job consumed, including its migrations.
	Energy float64
	// Migrations counts charged relocations.
	Migrations int
	// MissedDeadline flags an accepted job finishing late — an invariant
	// violation of the resource manager.
	MissedDeadline bool
}

// Result aggregates one trace's simulation.
type Result struct {
	// Requests is the trace length; Accepted + Rejected == Requests.
	Requests, Accepted, Rejected int
	// TotalEnergy is the energy of all executed work plus migrations.
	TotalEnergy float64
	// MigrationEnergy is the migration share of TotalEnergy.
	MigrationEnergy float64
	// Migrations counts charged relocations.
	Migrations int
	// DeadlineMisses counts accepted jobs that finished late (must be 0
	// for a sound RM).
	DeadlineMisses int
	// CriticalJobs counts critical releases served; CriticalEnergy their
	// consumption (not included in TotalEnergy); CriticalMisses their
	// deadline violations (must be 0).
	CriticalJobs   int
	CriticalEnergy float64
	CriticalMisses int
	// MakeSpan is when the last accepted job finished.
	MakeSpan float64
	// Execution is the executed schedule when Config.RecordExecution is
	// set, ordered by start time within each resource.
	Execution []ExecSegment
	// Jobs holds one record per request, in trace order.
	Jobs []JobRecord
	// Telemetry is the metrics snapshot of the run when Config.Metrics was
	// set (solver-latency histogram, event counters, solver instruments);
	// nil otherwise.
	Telemetry *telemetry.Snapshot
}

// RejectionPct returns the rejected percentage of requests.
func (r *Result) RejectionPct() float64 {
	if r.Requests == 0 {
		return 0
	}
	return 100 * float64(r.Rejected) / float64(r.Requests)
}

// planSeg is one piece of the standing schedule: job runs on its resource
// during [start, end); a nil job is a reservation for the predicted task
// (the resource idles through it).
type planSeg struct {
	job        *sched.Job
	start, end float64
}

// instruments bundles the simulator's registered metrics. All fields are
// nil when the run has no registry, making every operation a no-op.
type instruments struct {
	requests, accepted, rejected     *telemetry.Counter
	predictions, migrations          *telemetry.Counter
	criticalReleases                 *telemetry.Counter
	resvPlanned, resvHonoured        *telemetry.Counter
	resvBackfilled                   *telemetry.Counter
	solverSec, replanSec, advanceSec *telemetry.Histogram
	activeJobs                       *telemetry.Histogram
	activePeak                       *telemetry.Gauge
}

// newInstruments registers the simulator's instruments on reg (nil-safe).
func newInstruments(reg *telemetry.Registry) instruments {
	return instruments{
		requests:         reg.Counter("sim.requests"),
		accepted:         reg.Counter("sim.accepted"),
		rejected:         reg.Counter("sim.rejected"),
		predictions:      reg.Counter("sim.predictions"),
		migrations:       reg.Counter("sim.migrations"),
		criticalReleases: reg.Counter("sim.critical_releases"),
		resvPlanned:      reg.Counter("sim.reservations_planned"),
		resvHonoured:     reg.Counter("sim.reservations_honoured"),
		resvBackfilled:   reg.Counter("sim.reservations_backfilled"),
		solverSec:        reg.Histogram("sim.solver_seconds", telemetry.LatencyBuckets),
		replanSec:        reg.Histogram("sim.replan_seconds", telemetry.LatencyBuckets),
		advanceSec:       reg.Histogram("sim.advance_seconds", telemetry.LatencyBuckets),
		activeJobs:       reg.Histogram("sim.active_jobs", telemetry.CountBuckets),
		activePeak:       reg.Gauge("sim.active_jobs_peak"),
	}
}

// runner is the mutable simulation state.
type runner struct {
	cfg    Config
	now    float64
	active []*sched.Job
	rec    []JobRecord
	res    *Result
	// plan holds the standing schedule per resource (plan-based mode).
	plan [][]planSeg
	// exec accumulates executed segments per resource (RecordExecution).
	exec [][]ExecSegment
	// criticalNext tracks the next release index per critical task.
	criticalNext []int
	// trc and ins are the run's telemetry handles (nil-safe no-ops when
	// telemetry is disabled).
	trc *telemetry.Tracer
	ins instruments
	// pendingResv holds the reservations installed by the last replan, so
	// the next activation can report whether they were held (plan mode).
	pendingResv []ghostRef
	// running tracks, per resource, the job currently mid-execution there.
	// It exists only to emit job_start/job_preempt/job_finish lifecycle
	// events and is nil when tracing is disabled.
	running []*sched.Job
	// prov is the decision-provenance arena, non-nil only when
	// Config.Provenance is on; it is Reset at every activation and
	// snapshotted into the EvDecision event.
	prov *telemetry.ProvRecorder
	// critEnergy accumulates per-job energy for critical releases (adaptive
	// jobs use their JobRecord), so job_finish can report consumption.
	// Trace-only, like running.
	critEnergy map[*sched.Job]float64
	// finished counts completed adaptive jobs, for StateProbe samples.
	finished int
}

// probe reports the current RM state through Config.StateProbe.
func (r *runner) probe(req int) {
	if r.cfg.StateProbe == nil {
		return
	}
	s := StateSample{
		Time:           r.now,
		Req:            req,
		Requests:       r.res.Accepted + r.res.Rejected,
		Accepted:       r.res.Accepted,
		Rejected:       r.res.Rejected,
		Finished:       r.finished,
		DeadlineMisses: r.res.DeadlineMisses,
		InFlight:       len(r.active),
		Resources:      make([]ResourceSample, r.cfg.Platform.Len()),
	}
	for _, j := range r.active {
		if j.Resource == sched.Unmapped {
			continue
		}
		rs := &s.Resources[j.Resource]
		rs.Jobs++
		if rs.NextDeadline == 0 || j.AbsDeadline < rs.NextDeadline {
			rs.NextDeadline = j.AbsDeadline
		}
	}
	for _, g := range r.pendingResv {
		s.Resources[g.res].Reserved++
	}
	r.cfg.StateProbe(s)
}

// emitLifecycle reports a job execution transition on resource res.
func (r *runner) emitLifecycle(typ telemetry.EventType, j *sched.Job, res int, reason string) {
	e := telemetry.NewEvent(r.now, typ)
	e.Req = j.ID
	e.Task = j.Type.ID
	e.Res = res
	e.Reason = reason
	e.Value = j.Frac
	r.trc.Emit(e)
}

// reasonCounter bumps the per-reason outcome counter (e.g.
// sim.reject_reason.no_feasible_mapping). The registry's get-or-create
// lookup makes the counter set self-defining: a reason appears the first
// time it is charged.
func (r *runner) reasonCounter(prefix, reason string) {
	if r.cfg.Metrics == nil {
		return
	}
	r.cfg.Metrics.Counter(prefix + reason).Inc()
}

// emitDecision publishes the activation's decision-provenance record as an
// EvDecision event carrying a deep-copied snapshot of the arena (the
// tracer ring outlives the next Reset).
func (r *runner) emitDecision(req, taskType, res int, reason string, energy float64) {
	if r.prov == nil || r.trc == nil {
		return
	}
	e := telemetry.NewEvent(r.now, telemetry.EvDecision)
	e.Req = req
	e.Task = taskType
	e.Res = res
	e.Reason = reason
	e.Value = energy
	e.Prov = r.prov.Snapshot()
	r.trc.Emit(e)
}

// noteExec registers that j is about to execute on res, emitting job_start
// when the resource's occupancy changes. Called only when tracing.
func (r *runner) noteExec(j *sched.Job, res int) {
	if r.running[res] == j {
		return
	}
	reason := telemetry.ReasonStart
	if j.Started {
		reason = telemetry.ReasonResume
	}
	r.emitLifecycle(telemetry.EvJobStart, j, res, reason)
	r.running[res] = j
}

// notePauses closes the occupancy slot of every resource whose current
// occupant does not continue executing there in the step about to run,
// emitting job_preempt with the transition cause. Finished occupants are
// reported by reap instead. Called only when tracing.
func (r *runner) notePauses(acts []execAction) {
	for res, occ := range r.running {
		if occ == nil {
			continue
		}
		continues, migrates := false, false
		var displacer *sched.Job
		for _, a := range acts {
			switch {
			case a.res == res && a.job == occ:
				continues = true
			case a.res == res:
				displacer = a.job
			case a.job == occ:
				migrates = true
			}
		}
		if continues {
			continue
		}
		if occ.Done() {
			r.running[res] = nil // reap emits job_finish
			continue
		}
		reason := telemetry.ReasonPaused
		if displacer != nil {
			reason = telemetry.ReasonDisplaced
		}
		if migrates {
			reason = telemetry.ReasonMigrated
		}
		r.emitLifecycle(telemetry.EvJobPreempt, occ, res, reason)
		r.running[res] = nil
	}
}

// execAction is one (resource, job) dispatch of an execution step.
type execAction struct {
	res int
	job *sched.Job
}

// flushReservations reports the fate of the standing reservations once the
// next activation replaces them: a reservation whose window had begun was
// held idle by the planned schedule (honoured).
func (r *runner) flushReservations() {
	for _, g := range r.pendingResv {
		if r.now+sched.Eps >= g.job.Arrival {
			r.ins.resvHonoured.Inc()
			e := telemetry.NewEvent(r.now, telemetry.EvReservationHonoured)
			e.Res = g.res
			e.Value = g.job.Arrival
			r.trc.Emit(e)
		}
	}
	r.pendingResv = nil
}

// advanceTo advances execution to target, materialising critical releases
// on the way (each release joins the active set and triggers a replan).
func (r *runner) advanceTo(target float64) error {
	if r.cfg.Critical == nil {
		r.advance(target)
		return nil
	}
	for {
		rel, ok := r.nextCriticalRelease()
		if !ok || rel >= target-sched.Eps {
			break
		}
		r.advance(rel)
		r.materializeCritical(rel)
		if err := r.replan(nil); err != nil {
			return err
		}
	}
	r.advance(target)
	return nil
}

// nextCriticalRelease returns the earliest unmaterialised release time.
func (r *runner) nextCriticalRelease() (float64, bool) {
	best := math.Inf(1)
	found := false
	for tid, t := range r.cfg.Critical.Tasks {
		if rel := t.ReleaseAt(r.criticalNext[tid]); rel < best {
			best = rel
			found = true
		}
	}
	return best, found
}

// nextCriticalReleaseIfAny is nextCriticalRelease tolerating a nil set.
func (r *runner) nextCriticalReleaseIfAny() (float64, bool) {
	if r.cfg.Critical == nil {
		return 0, false
	}
	return r.nextCriticalRelease()
}

// hasAdaptiveWork reports whether any trace-driven job is still active.
func (r *runner) hasAdaptiveWork() bool {
	for _, j := range r.active {
		if j.ID >= 0 {
			return true
		}
	}
	return false
}

// materializeCritical activates every critical job releasing at time rel.
func (r *runner) materializeCritical(rel float64) {
	for tid, t := range r.cfg.Critical.Tasks {
		k := r.criticalNext[tid]
		if math.Abs(t.ReleaseAt(k)-rel) > sched.Eps {
			continue
		}
		r.criticalNext[tid] = k + 1
		j := r.cfg.Critical.Release(r.cfg.Platform, tid, k)
		r.active = append(r.active, j)
		r.res.CriticalJobs++
		r.ins.criticalReleases.Inc()
		if r.trc != nil {
			e := telemetry.NewEvent(rel, telemetry.EvCriticalRelease)
			e.Task = tid
			e.Res = j.Resource
			e.Value = float64(k)
			r.trc.Emit(e)
		}
	}
}

// upcomingCritical returns planning copies of the critical releases within
// the adaptive decision window of jobs.
func (r *runner) upcomingCritical(jobs []*sched.Job) []*sched.Job {
	if r.cfg.Critical == nil {
		return nil
	}
	horizon := r.now
	for _, j := range jobs {
		if j.AbsDeadline > horizon {
			horizon = j.AbsDeadline
		}
	}
	return r.cfg.Critical.UpcomingJobs(r.cfg.Platform, r.now, horizon)
}

// Run simulates tr under cfg and returns per-trace results. The trace must
// be valid against cfg.TaskSet.
func Run(cfg Config, tr *trace.Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(cfg.TaskSet); err != nil {
		return nil, err
	}
	if cfg.Predictor != nil {
		cfg.Predictor.Reset()
	}
	r := &runner{
		cfg: cfg,
		res: &Result{Requests: tr.Len()},
		rec: make([]JobRecord, tr.Len()),
		trc: cfg.Tracer,
		ins: newInstruments(cfg.Metrics),
	}
	if r.trc != nil {
		r.running = make([]*sched.Job, cfg.Platform.Len())
		r.critEnergy = make(map[*sched.Job]float64)
	}
	if cfg.Metrics != nil {
		if inst, ok := cfg.Solver.(telemetry.Instrumentable); ok {
			inst.AttachMetrics(cfg.Metrics)
		}
	}
	if cfg.Provenance {
		r.prov = telemetry.NewProvRecorder()
		if pa, ok := cfg.Solver.(telemetry.ProvenanceAware); ok {
			pa.AttachProvenance(r.prov)
		}
	}
	if cfg.Critical != nil {
		if err := cfg.Critical.Validate(cfg.Platform); err != nil {
			return nil, err
		}
		r.criticalNext = make([]int, len(cfg.Critical.Tasks))
	}
	for idx, req := range tr.Requests {
		r.rec[idx] = JobRecord{
			ID:          idx,
			Type:        req.Type,
			Arrival:     req.Arrival,
			AbsDeadline: req.Arrival + req.Deadline,
		}
		r.ins.requests.Inc()
		if err := r.advanceTo(req.Arrival); err != nil {
			return nil, err
		}
		// Emitted after advancing so the stream stays time-ordered: the
		// execution events between two arrivals carry earlier timestamps.
		if r.trc != nil {
			e := telemetry.NewEvent(req.Arrival, telemetry.EvArrival)
			e.Req = idx
			e.Task = req.Type
			e.Value = req.Arrival + req.Deadline
			r.trc.Emit(e)
		}

		overhead := cfg.ExtraOverhead
		if cfg.Predictor != nil {
			overhead += cfg.Predictor.Overhead()
		}
		if cfg.OverheadHook != nil {
			overhead += cfg.OverheadHook(idx, req.Arrival)
		}
		decisionTime := math.Max(r.now, req.Arrival+overhead)
		if err := r.advanceTo(decisionTime); err != nil {
			return nil, err
		}

		if cfg.Audit {
			if err := r.auditState(idx); err != nil {
				return nil, err
			}
		}

		newJob := sched.NewJob(idx, cfg.TaskSet.Type(req.Type), req.Arrival, req.Deadline)
		jobs := make([]*sched.Job, 0, len(r.active)+2)
		jobs = append(jobs, r.active...)
		newIdx := len(jobs)
		jobs = append(jobs, newJob)
		jobs = append(jobs, r.upcomingCritical(jobs)...)

		predicting := false
		if cfg.Predictor != nil {
			cfg.Predictor.Observe(idx, req)
			var preds []predict.Prediction
			if mp, ok := cfg.Predictor.(predict.MultiPredictor); ok && cfg.Lookahead > 1 {
				preds = mp.PredictK(cfg.Lookahead)
			} else if pred, ok := cfg.Predictor.Predict(); ok {
				preds = []predict.Prediction{pred}
			}
			for step, pred := range preds {
				if pred.Type >= 0 && pred.Type < cfg.TaskSet.Len() && pred.Deadline > 0 {
					pj := sched.NewJob(-1-step, cfg.TaskSet.Type(pred.Type), pred.Arrival, pred.Deadline)
					pj.Predicted = true
					jobs = append(jobs, pj)
					predicting = true
					r.ins.predictions.Inc()
					if r.trc != nil {
						e := telemetry.NewEvent(r.now, telemetry.EvPrediction)
						e.Req = idx
						e.Task = pred.Type
						e.Value = pred.Arrival
						r.trc.Emit(e)
					}
				}
			}
		}

		problem := &sched.Problem{
			Platform: cfg.Platform,
			Time:     r.now,
			Jobs:     jobs,
			Policy:   cfg.Policy,
		}
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvSolverInvoked)
			e.Req = idx
			e.Task = req.Type
			e.Value = float64(len(jobs))
			r.trc.Emit(e)
		}
		measuring := r.trc != nil || r.ins.solverSec != nil
		var solveStart time.Time
		if measuring {
			solveStart = time.Now()
		}
		r.prov.Reset()
		decision, admitted, solveErr := core.AdmitProv(cfg.Solver, problem, r.prov)
		var wall time.Duration
		if measuring {
			wall = time.Since(solveStart)
			r.ins.solverSec.Observe(wall.Seconds())
		}
		if solveErr != nil {
			// A fallible solver failed outright (core.FallibleSolver) with no
			// resilience chain to absorb it. Report the failure with its
			// request coordinates and abort the run — continuing would
			// silently convert a solver outage into rejections.
			if r.trc != nil {
				e := telemetry.NewEvent(r.now, telemetry.EvSolverReturned)
				e.Req = idx
				e.WallNs = wall.Nanoseconds()
				e.Reason = telemetry.ReasonError
				r.trc.Emit(e)
			}
			return nil, fmt.Errorf("sim: solver failed at request %d (t=%.6f): %w", idx, r.now, solveErr)
		}
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvSolverReturned)
			e.Req = idx
			e.WallNs = wall.Nanoseconds()
			if admitted {
				e.Reason = telemetry.ReasonFeasible
				e.Value = decision.Energy
			} else {
				e.Reason = telemetry.ReasonInfeasible
			}
			r.trc.Emit(e)
		}
		if !admitted {
			r.res.Rejected++
			r.ins.rejected.Inc()
			r.reasonCounter("sim.reject_reason.", telemetry.ReasonNoFeasibleMapping)
			if r.trc != nil {
				e := telemetry.NewEvent(r.now, telemetry.EvReject)
				e.Req = idx
				e.Task = req.Type
				e.Reason = telemetry.ReasonNoFeasibleMapping
				r.trc.Emit(e)
			}
			r.emitDecision(idx, req.Type, sched.Unmapped, telemetry.ReasonNoFeasibleMapping, 0)
			// Drop any stale reservation (its request has now arrived) but
			// keep the standing mappings.
			if err := r.replan(nil); err != nil {
				return nil, err
			}
			r.probe(idx)
			continue
		}
		r.res.Accepted++
		r.ins.accepted.Inc()
		r.rec[idx].Accepted = true
		r.apply(problem, decision, newJob)
		var ghosts []ghostRef
		for i, j := range problem.Jobs {
			if j.Predicted && decision.Mapping[i] != sched.Unmapped {
				ghosts = append(ghosts, ghostRef{job: j, res: decision.Mapping[i]})
			}
		}
		admitReason := telemetry.ReasonPlain
		switch {
		case len(ghosts) > 0:
			admitReason = telemetry.ReasonWithReservation
		case predicting:
			admitReason = telemetry.ReasonPredictionDropped
		}
		r.reasonCounter("sim.admit_reason.", admitReason)
		if r.trc != nil {
			e := telemetry.NewEvent(r.now, telemetry.EvAdmit)
			e.Req = idx
			e.Task = req.Type
			e.Res = decision.Mapping[newIdx]
			e.Reason = admitReason
			r.trc.Emit(e)
		}
		r.emitDecision(idx, req.Type, decision.Mapping[newIdx], admitReason, decision.Energy)
		for _, g := range ghosts {
			r.ins.resvPlanned.Inc()
			if cfg.WorkConserving {
				r.ins.resvBackfilled.Inc()
			}
			if r.trc != nil {
				e := telemetry.NewEvent(r.now, telemetry.EvReservationPlanned)
				e.Req = idx
				e.Res = g.res
				e.Value = g.job.Arrival
				r.trc.Emit(e)
				if cfg.WorkConserving {
					e.Type = telemetry.EvReservationBackfilled
					r.trc.Emit(e)
				}
			}
		}
		r.ins.activeJobs.Observe(float64(len(r.active)))
		r.ins.activePeak.Set(float64(len(r.active)))
		if err := r.replan(ghosts); err != nil {
			return nil, err
		}
		r.probe(idx)
	}
	// Drain: run until all adaptive work finishes, serving critical
	// releases along the way, then let already-released critical jobs run
	// out.
	for r.hasAdaptiveWork() {
		rel, ok := r.nextCriticalReleaseIfAny()
		if !ok {
			break
		}
		r.advance(rel)
		if r.hasAdaptiveWork() {
			r.materializeCritical(rel)
			if err := r.replan(nil); err != nil {
				return nil, err
			}
		}
	}
	r.advance(math.Inf(1))
	r.flushReservations()
	r.probe(-1)
	r.res.Jobs = r.rec
	for _, segs := range r.exec {
		r.res.Execution = append(r.res.Execution, segs...)
	}
	if cfg.Metrics != nil {
		if cfg.Tracer != nil {
			// Ring overwrites silently lose events; surface the count so
			// summaries and /metrics can warn about a lossy recording.
			cfg.Metrics.Gauge("telemetry.tracer.dropped").Set(float64(cfg.Tracer.Dropped()))
		}
		r.res.Telemetry = cfg.Metrics.Snapshot()
	}
	return r.res, nil
}

// auditState verifies the standing schedule is still feasible (Config.Audit).
func (r *runner) auditState(beforeRequest int) error {
	if len(r.active) == 0 {
		return nil
	}
	p := &sched.Problem{Platform: r.cfg.Platform, Time: r.now, Jobs: r.active, Policy: r.cfg.Policy}
	mapping := make([]int, len(r.active))
	for i, j := range r.active {
		mapping[i] = j.Resource
	}
	if !p.FeasibleMapping(mapping) {
		return fmt.Errorf("sim: audit before request %d at t=%.6f: standing schedule infeasible; jobs=%v",
			beforeRequest, r.now, r.active)
	}
	return nil
}

// apply installs an admission decision: remaps active jobs (charging
// migrations) and activates the new job.
func (r *runner) apply(p *sched.Problem, d core.Decision, newJob *sched.Job) {
	for i, j := range p.Jobs {
		if j.Predicted {
			continue // planning constraint only (Sec 4.1)
		}
		target := d.Mapping[i]
		if target == sched.Unmapped {
			// Cannot happen for an admitted decision; guard loudly.
			panic(fmt.Sprintf("sim: admitted decision leaves %v unmapped", j))
		}
		if j.Resource != sched.Unmapped && j.Resource != target {
			charged := j.Started || p.Policy == sched.ChargeAlways
			r.prov.Remap(j.ID, j.Resource, target, charged)
			if charged {
				j.MigDebt += j.Type.MigTime
				rec := &r.rec[j.ID]
				rec.Migrations++
				rec.Energy += j.Type.MigEnergy
				r.res.Migrations++
				r.res.MigrationEnergy += j.Type.MigEnergy
				r.res.TotalEnergy += j.Type.MigEnergy
				r.ins.migrations.Inc()
				if r.trc != nil {
					e := telemetry.NewEvent(r.now, telemetry.EvMigration)
					e.Req = j.ID
					e.Res = target
					e.Value = j.Type.MigEnergy
					r.trc.Emit(e)
				}
			}
		}
		j.Resource = target
	}
	r.active = append(r.active, newJob)
}

// ghostRef is one mapped predicted job carried into the standing plan.
type ghostRef struct {
	job *sched.Job
	res int
}

// replan rebuilds the standing schedule from the active jobs' current
// mappings, optionally reserving capacity for the mapped predicted jobs.
// A failure to reconstruct a feasible schedule means the RM's invariant
// broke; it is surfaced as an error.
func (r *runner) replan(ghosts []ghostRef) error {
	if r.cfg.WorkConserving {
		return nil // greedy dispatch reads job state directly
	}
	defer telemetry.StartTimer(r.ins.replanSec).Stop()
	// The previous activation's reservations end here; report their fate.
	r.flushReservations()
	r.pendingResv = ghosts
	jobs := make([]*sched.Job, 0, len(r.active)+len(ghosts))
	jobs = append(jobs, r.active...)
	mapping := make([]int, 0, cap(jobs))
	for _, j := range jobs {
		mapping = append(mapping, j.Resource)
	}
	for _, g := range ghosts {
		jobs = append(jobs, g.job)
		mapping = append(mapping, g.res)
	}
	if len(jobs) == 0 {
		r.plan = nil
		return nil
	}
	p := &sched.Problem{Platform: r.cfg.Platform, Time: r.now, Jobs: jobs, Policy: r.cfg.Policy}
	segsByRes, ok := p.Schedule(mapping)
	if !ok {
		return fmt.Errorf("sim: replan at t=%.6f produced an infeasible schedule (RM invariant broken); jobs=%v",
			r.now, jobs)
	}
	plan := make([][]planSeg, r.cfg.Platform.Len())
	for res, segs := range segsByRes {
		for _, s := range segs {
			ps := planSeg{start: s.Start, end: s.End}
			if !jobs[s.Index].Predicted {
				ps.job = jobs[s.Index]
			}
			plan[res] = append(plan[res], ps)
		}
	}
	r.plan = plan
	return nil
}

// advance executes the standing schedule up to time target.
func (r *runner) advance(target float64) {
	defer telemetry.StartTimer(r.ins.advanceSec).Stop()
	if r.cfg.WorkConserving {
		r.advanceGreedy(target)
		return
	}
	for r.now < target-sched.Eps {
		if len(r.active) == 0 {
			break // reap keeps only unfinished jobs
		}
		var acts []execAction
		step := math.Inf(1)
		if !math.IsInf(target, 1) {
			step = target - r.now
		}
		for res, segs := range r.plan {
			for _, s := range segs {
				if s.end <= r.now+sched.Eps {
					continue // past
				}
				if s.job != nil && s.job.Done() {
					continue // completed (slightly early by rounding)
				}
				if s.start > r.now+sched.Eps {
					// Idle until the next segment starts.
					if d := s.start - r.now; d < step {
						step = d
					}
					break
				}
				if s.job == nil {
					// Inside a ghost reservation: idle through it.
					if d := s.end - r.now; d < step {
						step = d
					}
					break
				}
				need := s.job.MigDebt + s.job.Frac*s.job.Type.WCET[res]
				bound := math.Min(need, s.end-r.now)
				if bound < step {
					step = bound
				}
				acts = append(acts, execAction{res, s.job})
				break
			}
		}
		if len(acts) == 0 && math.IsInf(step, 1) {
			break // no runnable segment and no upcoming boundary
		}
		if step <= 0 {
			step = sched.Eps
		}
		if r.running != nil {
			r.notePauses(acts)
		}
		for _, a := range acts {
			r.execute(a.job, a.res, step)
		}
		r.now += step
		r.reap()
	}
	if !math.IsInf(target, 1) && target > r.now {
		r.now = target
	}
}

// advanceGreedy executes work-conserving EDF dispatch up to target
// (Config.WorkConserving).
func (r *runner) advanceGreedy(target float64) {
	for r.now < target-sched.Eps {
		// Pick each resource's EDF head.
		heads := make(map[int]*sched.Job, r.cfg.Platform.Len())
		for _, j := range r.active {
			if j.Done() || j.Resource == sched.Unmapped {
				continue
			}
			cur, ok := heads[j.Resource]
			if !ok {
				heads[j.Resource] = j
				continue
			}
			heads[j.Resource] = preferHead(r.cfg.Platform, cur, j)
		}
		if len(heads) == 0 {
			break // idle until target
		}
		// Next event: earliest head completion, capped at target.
		step := target - r.now
		for res, j := range heads {
			need := j.MigDebt + j.Frac*j.Type.WCET[res]
			if need < step {
				step = need
			}
		}
		if step <= 0 {
			step = sched.Eps
		}
		// Dispatch in resource order so trace emission is deterministic.
		acts := make([]execAction, 0, len(heads))
		for res := 0; res < r.cfg.Platform.Len(); res++ {
			if j, ok := heads[res]; ok {
				acts = append(acts, execAction{res, j})
			}
		}
		if r.running != nil {
			r.notePauses(acts)
		}
		for _, a := range acts {
			r.execute(a.job, a.res, step)
		}
		r.now += step
		r.reap()
	}
	if !math.IsInf(target, 1) && target > r.now {
		r.now = target
	}
}

// preferHead picks which of two jobs on the same resource runs now: the
// mid-execution occupant on non-preemptable resources, otherwise the
// earlier deadline (ties: lower ID, deterministic).
func preferHead(p *platform.Platform, a, b *sched.Job) *sched.Job {
	if !p.Resource(a.Resource).Preemptable() {
		ao := a.ExecRes == a.Resource
		bo := b.ExecRes == b.Resource
		if ao != bo {
			if ao {
				return a
			}
			return b
		}
	}
	if a.AbsDeadline != b.AbsDeadline {
		if a.AbsDeadline < b.AbsDeadline {
			return a
		}
		return b
	}
	if a.ID <= b.ID {
		return a
	}
	return b
}

// execute serves dt time of job j on resource res: migration debt first,
// then useful work with energy accounting.
func (r *runner) execute(j *sched.Job, res int, dt float64) {
	if r.running != nil {
		r.noteExec(j, res)
	}
	j.Started = true
	j.ExecRes = res
	if r.cfg.RecordExecution {
		r.record(res, j.ID, dt)
	}
	if j.MigDebt > 0 {
		served := math.Min(j.MigDebt, dt)
		j.MigDebt -= served
		dt -= served
		if j.MigDebt < sched.Eps {
			j.MigDebt = 0
		}
		if dt <= 0 {
			return
		}
	}
	wcet := j.Type.WCET[res]
	frac := dt / wcet
	if frac > j.Frac {
		frac = j.Frac
	}
	j.Frac -= frac
	energy := j.Type.Energy[res] * frac
	if j.ID >= 0 {
		r.rec[j.ID].Energy += energy
		r.res.TotalEnergy += energy
	} else {
		r.res.CriticalEnergy += energy
		if r.critEnergy != nil {
			r.critEnergy[j] += energy
		}
	}
	if j.Frac < sched.Eps {
		j.Frac = 0
	}
}

// record appends execution time to the per-resource trace, merging
// contiguous segments of the same job.
func (r *runner) record(res, jobID int, dt float64) {
	if r.exec == nil {
		r.exec = make([][]ExecSegment, r.cfg.Platform.Len())
	}
	segs := r.exec[res]
	if n := len(segs); n > 0 {
		last := &segs[n-1]
		if last.JobID == jobID && last.End >= r.now-sched.Eps {
			last.End = r.now + dt
			return
		}
	}
	r.exec[res] = append(segs, ExecSegment{
		Resource: res, JobID: jobID, Start: r.now, End: r.now + dt,
	})
}

// noteFinish emits job_finish for a completed job and releases its
// occupancy slot. Called only when tracing.
func (r *runner) noteFinish(j *sched.Job) {
	res := j.ExecRes
	for i, occ := range r.running {
		if occ == j {
			r.running[i] = nil
			res = i
		}
	}
	e := telemetry.NewEvent(r.now, telemetry.EvJobFinish)
	e.Req = j.ID
	e.Task = j.Type.ID
	e.Res = res
	if j.ID >= 0 {
		e.Value = r.rec[j.ID].Energy
	} else {
		e.Value = r.critEnergy[j]
		e.Reason = telemetry.ReasonCritical
		delete(r.critEnergy, j)
	}
	r.trc.Emit(e)
}

// reap retires completed jobs, auditing the deadline invariant.
func (r *runner) reap() {
	kept := r.active[:0]
	for _, j := range r.active {
		if !j.Done() {
			kept = append(kept, j)
			continue
		}
		if r.running != nil {
			r.noteFinish(j)
		}
		if j.ID < 0 {
			// Critical job: only the deadline audit applies.
			if r.now > j.AbsDeadline+1e-6 {
				r.res.CriticalMisses++
			}
			continue
		}
		r.finished++
		rec := &r.rec[j.ID]
		rec.FinishTime = r.now
		if r.now > j.AbsDeadline+1e-6 {
			rec.MissedDeadline = true
			r.res.DeadlineMisses++
		}
		if r.now > r.res.MakeSpan {
			r.res.MakeSpan = r.now
		}
	}
	r.active = kept
}
