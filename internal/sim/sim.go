// Package sim drives a request trace through the platform and a resource
// manager: the discrete-event simulation behind every experiment in the
// paper's evaluation (Sec 5).
//
// Since the activation engine moved to internal/engine, sim is a
// virtual-clock driver of it: Run walks the trace and hands each request
// to engine.Activate, which advances engine time to the arrival, charges
// the prediction/decision overhead (Sec 5.5), builds the S̄ problem
// (active jobs + arriving job + optional predicted job), runs the
// admission protocol, applies the resulting mapping (charging
// migrations), and continues. The wall-clock server (internal/serve)
// drives the very same engine from real time; DESIGN.md §11 states the
// equivalence argument, and internal/serve's differential test enforces
// it byte for byte.
//
// The Config/Result/StateSample types are aliases of the engine's — the
// simulator adds no state of its own — so existing callers (experiments,
// obs, gantt, the public predrm wrappers) keep compiling unchanged.
package sim

import (
	"predrm/internal/engine"
	"predrm/internal/trace"
)

// Config assembles one simulation (alias of engine.Config; the simulator
// is a trace-driven front end to the shared activation engine).
type Config = engine.Config

// StateSample is the RM state handed to Config.StateProbe.
type StateSample = engine.StateSample

// ResourceSample is one resource's slice of a StateSample.
type ResourceSample = engine.ResourceSample

// ExecSegment is one contiguous piece of executed schedule.
type ExecSegment = engine.ExecSegment

// JobRecord is the per-request outcome.
type JobRecord = engine.JobRecord

// Result aggregates one trace's simulation.
type Result = engine.Result

// Run simulates tr under cfg and returns per-trace results. The trace must
// be valid against cfg.TaskSet.
func Run(cfg Config, tr *trace.Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(cfg.TaskSet); err != nil {
		return nil, err
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	for idx, req := range tr.Requests {
		if _, err := eng.Activate(idx, req); err != nil {
			return nil, err
		}
	}
	// Drain: run until all adaptive work finishes, serving critical
	// releases along the way, then let already-released critical jobs run
	// out.
	if err := eng.Drain(); err != nil {
		return nil, err
	}
	return eng.Finalize(), nil
}
