package sim

import (
	"testing"

	"predrm/internal/predict"
	"predrm/internal/trace"
)

func TestLookaheadValidation(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 10, 5, 41)
	cfg := baseConfig(set)
	cfg.Lookahead = -1
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("accepted negative lookahead")
	}
	cfg.Lookahead = 3
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("accepted lookahead without predictor")
	}
}

func TestLookaheadSoundAcrossHorizons(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 120, 2.6, 42)
	for _, k := range []int{1, 2, 4} {
		o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: uint64(k)})
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(set)
		cfg.Predictor = o
		cfg.Lookahead = k
		cfg.Audit = true
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.DeadlineMisses != 0 {
			t.Fatalf("k=%d: %d deadline misses", k, res.DeadlineMisses)
		}
		if res.Accepted == 0 {
			t.Fatalf("k=%d: nothing accepted", k)
		}
	}
}

func TestLookaheadAtLeastSingleStepAdmission(t *testing.T) {
	// With incremental prediction dropping (farthest horizon first), a
	// larger horizon can only constrain the plan earlier, never block an
	// admission outright: the k=1 fallback chain is always reachable.
	// Verify statistically: the k=3 run must admit at least as much as a
	// heavily deprived run would, and within noise of k=1.
	set, tr := testWorkload(t, trace.VeryTight, 150, 2.6, 43)
	rej := map[int]float64{}
	for _, k := range []int{1, 3} {
		o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(set)
		cfg.Predictor = o
		cfg.Lookahead = k
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		rej[k] = res.RejectionPct()
	}
	if rej[3] > rej[1]+10 {
		t.Fatalf("k=3 rejection %.2f far above k=1 %.2f", rej[3], rej[1])
	}
}

func TestMarkovLookahead(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 80, 3, 44)
	m, err := predict.NewMarkov(set.Len(), predict.NewEWMA(0.2), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(set)
	cfg.Predictor = m
	cfg.Lookahead = 2
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d misses with Markov lookahead", res.DeadlineMisses)
	}
}
