package sim

import (
	"math"
	"testing"

	"predrm/internal/predict"
	"predrm/internal/trace"
)

// TestExecutionModesIdenticalWithoutPrediction: with no predicted jobs the
// planned schedule IS the work-conserving EDF schedule, so the two
// execution modes must agree bit-for-bit.
func TestExecutionModesIdenticalWithoutPrediction(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 150, 2.2, 51)
	a := baseConfig(set)
	ra, err := Run(a, tr)
	if err != nil {
		t.Fatal(err)
	}
	b := baseConfig(set)
	b.WorkConserving = true
	rb, err := Run(b, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Accepted != rb.Accepted || ra.Migrations != rb.Migrations {
		t.Fatalf("modes diverged: %d/%d accepted, %d/%d migrations",
			ra.Accepted, rb.Accepted, ra.Migrations, rb.Migrations)
	}
	if math.Abs(ra.TotalEnergy-rb.TotalEnergy) > 1e-9 {
		t.Fatalf("energy diverged: %v vs %v", ra.TotalEnergy, rb.TotalEnergy)
	}
	for i := range ra.Jobs {
		if math.Abs(ra.Jobs[i].FinishTime-rb.Jobs[i].FinishTime) > 1e-6 {
			t.Fatalf("job %d finish diverged: %v vs %v",
				i, ra.Jobs[i].FinishTime, rb.Jobs[i].FinishTime)
		}
	}
}

// TestExecutionModesAgreeWithPrediction documents the structural finding
// (see TestReservationSemantics): because the planner's EDF dispatch is
// itself work-conserving, plan-honouring execution and greedy dispatch
// coincide even with reservations, on aggregate outcomes.
func TestExecutionModesAgreeWithPrediction(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 150, 2.2, 52)
	run := func(workConserving bool) *Result {
		o, err := predict.NewOracle(tr, predict.OracleConfig{TypeAccuracy: 1, NumTypes: set.Len(), Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(set)
		cfg.Predictor = o
		cfg.WorkConserving = workConserving
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ra, rb := run(false), run(true)
	if ra.Accepted != rb.Accepted {
		t.Fatalf("acceptance diverged with prediction: %d vs %d", ra.Accepted, rb.Accepted)
	}
	if ra.DeadlineMisses != 0 || rb.DeadlineMisses != 0 {
		t.Fatal("deadline misses")
	}
}
