package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"predrm/internal/core"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// telemetryFixture builds a small deterministic simulation: seeded task
// set and trace, perfect oracle prediction, and enough load that the event
// stream contains arrivals, solver latencies, admissions, rejections,
// migrations, and reservations. The solver is a single-stage resilience
// chain around Algorithm 1 with provenance on, so every decision event
// carries both candidate verdicts and stage hops (behaviorally identical
// to the bare heuristic).
func telemetryFixture(t testing.TB) (Config, *trace.Trace) {
	t.Helper()
	plat := platform.Default()
	tcfg := task.DefaultGenConfig()
	tcfg.NumTypes = 20
	set, err := task.Generate(plat, tcfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(set, trace.GenConfig{
		Length:           30,
		InterarrivalMean: 0.8,
		InterarrivalStd:  0.25,
		Tightness:        trace.VeryTight,
	}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := predict.NewOracle(tr, predict.OracleConfig{
		TypeAccuracy: 1,
		NumTypes:     set.Len(),
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Platform: plat,
		TaskSet:  set,
		Solver: &core.BudgetedSolver{
			Stages: []core.Stage{{Name: "heuristic", Solver: &core.Heuristic{}}},
		},
		Predictor:  oracle,
		Provenance: true,
	}, tr
}

// TestTelemetryGoldenEvents locks the JSONL event stream of the fixture
// trace: every line must unmarshal into the typed schema, the stream must
// contain the headline event types, and — after clearing the
// nondeterministic wall-clock field — it must match the golden file
// byte-for-byte. Regenerate with: go test ./internal/sim -run Golden -update-golden
func TestTelemetryGoldenEvents(t *testing.T) {
	cfg, tr := telemetryFixture(t)
	var sink bytes.Buffer
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Sink: &sink})
	reg := telemetry.NewRegistry()
	cfg.Tracer = tracer
	cfg.Metrics = reg

	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every sink line unmarshals into the typed event schema.
	lines := bytes.Split(bytes.TrimSpace(sink.Bytes()), []byte("\n"))
	seen := map[telemetry.EventType]int{}
	for i, line := range lines {
		var e telemetry.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		if e.Seq != int64(i) {
			t.Fatalf("line %d: seq %d", i, e.Seq)
		}
		seen[e.Type]++
	}
	for _, want := range []telemetry.EventType{
		telemetry.EvArrival, telemetry.EvPrediction,
		telemetry.EvSolverInvoked, telemetry.EvSolverReturned,
		telemetry.EvAdmit, telemetry.EvReject, telemetry.EvMigration,
		telemetry.EvReservationPlanned, telemetry.EvReservationHonoured,
		telemetry.EvJobStart, telemetry.EvJobFinish, telemetry.EvJobPreempt,
		telemetry.EvDecision,
	} {
		if seen[want] == 0 {
			t.Errorf("event type %q missing from stream (have %v)", want, seen)
		}
	}
	if seen[telemetry.EvArrival] != tr.Len() {
		t.Errorf("arrivals: got %d, want %d", seen[telemetry.EvArrival], tr.Len())
	}

	// The ring buffer holds the same events as the sink (no drops here).
	if tracer.Dropped() != 0 || tracer.Len() != len(lines) {
		t.Fatalf("ring: %d events, %d dropped; sink has %d", tracer.Len(), tracer.Dropped(), len(lines))
	}

	// Result.Telemetry surfaces the populated solver-latency histogram.
	if res.Telemetry == nil {
		t.Fatal("Result.Telemetry not set")
	}
	lat := res.Telemetry.Histograms["sim.solver_seconds"]
	if lat.Count != int64(tr.Len()) {
		t.Fatalf("solver latency observations: got %d, want %d", lat.Count, tr.Len())
	}
	if res.Telemetry.Counters["sim.accepted"] != int64(res.Accepted) ||
		res.Telemetry.Counters["sim.rejected"] != int64(res.Rejected) ||
		res.Telemetry.Counters["sim.migrations"] != int64(res.Migrations) {
		t.Fatalf("counter/result mismatch: %+v vs %+v", res.Telemetry.Counters, res)
	}

	// Golden comparison on the deterministic projection (WallNs cleared,
	// including the nested per-stage wall spend of provenance records).
	var normalized bytes.Buffer
	for _, e := range tracer.Events() {
		e.WallNs = 0
		if e.Prov != nil {
			for i := range e.Prov.Stages {
				e.Prov.Stages[i].WallNs = 0
			}
		}
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		normalized.Write(line)
		normalized.WriteByte('\n')
	}
	golden := filepath.Join("testdata", "events.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, normalized.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalized.Bytes(), want) {
		t.Fatalf("event stream diverged from %s (rerun with -update-golden if intended);\ngot %d bytes, want %d",
			golden, normalized.Len(), len(want))
	}
}

// TestTelemetryDisabledIsInert checks a run without telemetry attaches
// nothing and behaves identically to an instrumented run.
func TestTelemetryDisabledIsInert(t *testing.T) {
	cfg, tr := telemetryFixture(t)
	plain, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatal("Telemetry must be nil without a registry")
	}
	cfg2, tr2 := telemetryFixture(t)
	cfg2.Tracer = telemetry.NewTracer(telemetry.TracerOptions{})
	cfg2.Metrics = telemetry.NewRegistry()
	traced, err := Run(cfg2, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Accepted != traced.Accepted || plain.Rejected != traced.Rejected ||
		plain.TotalEnergy != traced.TotalEnergy || plain.Migrations != traced.Migrations {
		t.Fatalf("telemetry changed simulation outcomes: %+v vs %+v", plain, traced)
	}
}
