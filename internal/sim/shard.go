package sim

import (
	"predrm/internal/engine"
	"predrm/internal/sched"
	"predrm/internal/trace"
)

// ShardConfig parameterises a scale-out run (alias of the engine's).
type ShardConfig = engine.ShardConfig

// RunSharded simulates tr on a sharded platform: arrivals are grouped
// into batch epochs of sc.BatchWindow engine-time units (0 keeps the
// paper's one-by-one admission) and each epoch is admitted through
// engine.Sharded — routed across the shards and solved per shard.
//
// With one shard and a zero window this is byte-identical to Run: the
// sharded engine delegates to a bare Engine and a single-request epoch
// closing at its own arrival delegates to Activate. The shardcheck gate
// pins both equivalences.
func RunSharded(cfg Config, sc ShardConfig, tr *trace.Trace) (*Result, error) {
	if err := tr.Validate(cfg.TaskSet); err != nil {
		return nil, err
	}
	eng, err := engine.NewSharded(cfg, sc)
	if err != nil {
		return nil, err
	}
	reqs := tr.Requests
	for i := 0; i < len(reqs); {
		if sc.BatchWindow <= 0 {
			if _, err := eng.Activate(i, reqs[i]); err != nil {
				return nil, err
			}
			i++
			continue
		}
		// Epoch: the maximal run of arrivals within BatchWindow of the
		// first; it closes when the window ends (or at the last arrival,
		// if a request landed exactly on the boundary past it).
		first := reqs[i].Arrival
		j := i + 1
		for j < len(reqs) && reqs[j].Arrival <= first+sc.BatchWindow+sched.Eps {
			j++
		}
		close := first + sc.BatchWindow
		if last := reqs[j-1].Arrival; last > close {
			close = last
		}
		if _, err := eng.ActivateEpoch(i, reqs[i:j], close); err != nil {
			return nil, err
		}
		i = j
	}
	if err := eng.Drain(); err != nil {
		return nil, err
	}
	return eng.Finalize(), nil
}
