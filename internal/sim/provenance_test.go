package sim

import (
	"testing"

	"predrm/internal/telemetry"
)

// TestDecisionEventProvenance checks the simulator's decision-provenance
// wiring end to end: with Config.Provenance on, every admission decision
// is followed by an EvDecision event whose record reconstructs the causal
// chain — protocol attempts, solver-chain hops, and (for rejections) the
// per-candidate feasibility verdicts of the job that could not be placed —
// and the per-reason outcome counters reconcile with the run totals.
func TestDecisionEventProvenance(t *testing.T) {
	cfg, tr := telemetryFixture(t)
	tracer := telemetry.NewTracer(telemetry.TracerOptions{})
	reg := telemetry.NewRegistry()
	cfg.Tracer = tracer
	cfg.Metrics = reg

	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 || res.Accepted == 0 {
		t.Fatalf("fixture must exercise both outcomes: %+v", res)
	}

	decisions := map[int]telemetry.Event{}
	rejected := map[int]bool{}
	for _, e := range tracer.Events() {
		switch e.Type {
		case telemetry.EvDecision:
			decisions[e.Req] = e
		case telemetry.EvReject:
			rejected[e.Req] = true
		}
	}
	if len(decisions) != tr.Len() {
		t.Fatalf("decision events: got %d, want one per request (%d)", len(decisions), tr.Len())
	}

	for req, e := range decisions {
		p := e.Prov
		if p == nil {
			t.Fatalf("request %d: decision event without provenance", req)
		}
		if len(p.Attempts) == 0 {
			t.Fatalf("request %d: no protocol attempts recorded", req)
		}
		if len(p.Stages) < len(p.Attempts) {
			t.Fatalf("request %d: %d stage hops for %d attempts", req, len(p.Stages), len(p.Attempts))
		}
		if !rejected[req] {
			if e.Reason == telemetry.ReasonNoFeasibleMapping || e.Res < 0 {
				t.Fatalf("request %d: admitted but decision says %+v", req, e)
			}
			if len(p.Picks) == 0 {
				t.Fatalf("request %d: admitted with no placement picks", req)
			}
			continue
		}
		// Rejection narrative: the reason is enumerated, every attempt
		// failed, and the final attempt explains why each candidate
		// resource was ruled out.
		if e.Reason != telemetry.ReasonNoFeasibleMapping || e.Res != -1 {
			t.Fatalf("request %d: rejected but decision says %+v", req, e)
		}
		for _, a := range p.Attempts {
			if a.Feasible {
				t.Fatalf("request %d: rejected with a feasible attempt: %+v", req, p.Attempts)
			}
		}
		last := len(p.Attempts) - 1
		verdicts := 0
		for _, c := range p.Candidates {
			if c.Attempt != last {
				continue
			}
			verdicts++
			switch c.Verdict {
			case telemetry.VerdictEDFInfeasible:
				if c.Deadline <= 0 {
					t.Fatalf("request %d: breach verdict without deadline: %+v", req, c)
				}
			case telemetry.VerdictChosen, telemetry.VerdictNotTried,
				telemetry.VerdictNoCapacity, telemetry.VerdictNotExecutable:
			default:
				t.Fatalf("request %d: unknown verdict %+v", req, c)
			}
		}
		if verdicts == 0 {
			t.Fatalf("request %d: rejection's final attempt has no candidate verdicts", req)
		}
	}

	// Per-reason outcome counters reconcile with the run totals.
	snap := reg.Snapshot()
	if got := snap.Counters["sim.reject_reason."+telemetry.ReasonNoFeasibleMapping]; got != int64(res.Rejected) {
		t.Fatalf("reject reason counter = %d, want %d", got, res.Rejected)
	}
	admits := int64(0)
	for _, reason := range []string{
		telemetry.ReasonWithReservation, telemetry.ReasonPredictionDropped, telemetry.ReasonPlain,
	} {
		admits += snap.Counters["sim.admit_reason."+reason]
	}
	if admits != int64(res.Accepted) {
		t.Fatalf("admit reason counters sum to %d, want %d", admits, res.Accepted)
	}
}

// TestProvenanceDisabledEmitsNoDecisions pins the default: without
// Config.Provenance the stream carries no decision events and no recorder
// is attached.
func TestProvenanceDisabledEmitsNoDecisions(t *testing.T) {
	cfg, tr := telemetryFixture(t)
	cfg.Provenance = false
	tracer := telemetry.NewTracer(telemetry.TracerOptions{})
	cfg.Tracer = tracer
	if _, err := Run(cfg, tr); err != nil {
		t.Fatal(err)
	}
	for _, e := range tracer.Events() {
		if e.Type == telemetry.EvDecision || e.Prov != nil {
			t.Fatalf("provenance disabled but stream has %+v", e)
		}
	}
}
