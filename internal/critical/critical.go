// Package critical models the safety-critical hard real-time workload the
// paper sets aside in Sec 2: applications whose resource demand is known
// at design time and whose allocations are decided offline ("well
// established static or quasi-static techniques"), stored for online use.
// At runtime the resource manager grants these tasks their static
// resources and runs the adaptive policy over the remaining capacity.
//
// A critical task is periodic, statically mapped to one preemptable
// resource, and released forever from its offset. The design-time
// admission check is the classic density bound per resource
// (Σ WCET/min(Deadline, Period) ≤ 1), sufficient for EDF; at runtime every
// adaptive admission additionally accounts for each upcoming critical
// release inside its decision window, so critical deadlines hold by
// construction (the simulator audits them).
package critical

import (
	"errors"
	"fmt"
	"math"

	"predrm/internal/platform"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// Task is one design-time-allocated hard real-time task.
type Task struct {
	// ID identifies the task within its Set (0-based).
	ID int
	// Name is a human-readable label.
	Name string
	// Resource is the static design-time mapping (must be preemptable).
	Resource int
	// Period between releases; the first release is at Offset.
	Period float64
	// Offset of the first release.
	Offset float64
	// WCET on the static resource.
	WCET float64
	// Energy consumed per job on the static resource.
	Energy float64
	// Deadline relative to each release (0 < Deadline ≤ Period).
	Deadline float64
}

// Density returns the task's processor density WCET/min(Deadline, Period).
func (t *Task) Density() float64 {
	return t.WCET / math.Min(t.Deadline, t.Period)
}

// ReleaseAt returns the k-th release time (k ≥ 0).
func (t *Task) ReleaseAt(k int) float64 { return t.Offset + float64(k)*t.Period }

// NextReleaseIndex returns the smallest k with ReleaseAt(k) >= at.
func (t *Task) NextReleaseIndex(at float64) int {
	if at <= t.Offset {
		return 0
	}
	return int(math.Ceil((at - t.Offset - sched.Eps) / t.Period))
}

// Validate checks the task against a platform.
func (t *Task) Validate(p *platform.Platform) error {
	switch {
	case t.Resource < 0 || t.Resource >= p.Len():
		return fmt.Errorf("critical: task %d on unknown resource %d", t.ID, t.Resource)
	case !p.Resource(t.Resource).Preemptable():
		return fmt.Errorf("critical: task %d statically mapped to non-preemptable %s; design-time guarantees require a preemptable resource",
			t.ID, p.Resource(t.Resource).Name)
	case t.Period <= 0 || t.WCET <= 0 || t.Energy < 0 || t.Offset < 0:
		return fmt.Errorf("critical: task %d has non-positive parameters", t.ID)
	case t.Deadline <= 0 || t.Deadline > t.Period+sched.Eps:
		return fmt.Errorf("critical: task %d needs 0 < deadline ≤ period", t.ID)
	case t.WCET > t.Deadline+sched.Eps:
		return fmt.Errorf("critical: task %d cannot meet its own deadline", t.ID)
	}
	return nil
}

// Set is a design-time critical workload.
type Set struct {
	Tasks []*Task
}

// Validate performs the design-time admission check: per-task sanity and
// the per-resource density bound.
func (s *Set) Validate(p *platform.Platform) error {
	if s == nil || len(s.Tasks) == 0 {
		return errors.New("critical: empty set")
	}
	density := make([]float64, p.Len())
	for i, t := range s.Tasks {
		if t.ID != i {
			return fmt.Errorf("critical: task at index %d has ID %d", i, t.ID)
		}
		if err := t.Validate(p); err != nil {
			return err
		}
		density[t.Resource] += t.Density()
	}
	for r, d := range density {
		if d > 1+sched.Eps {
			return fmt.Errorf("critical: resource %s over-committed (density %.3f > 1)",
				p.Resource(r).Name, d)
		}
	}
	return nil
}

// Utilization returns the per-resource critical density.
func (s *Set) Utilization(p *platform.Platform) []float64 {
	density := make([]float64, p.Len())
	for _, t := range s.Tasks {
		density[t.Resource] += t.Density()
	}
	return density
}

// jobType builds the single-resource task.Type backing a critical task's
// runtime jobs.
func (s *Set) jobType(t *Task, p *platform.Platform) *task.Type {
	wcet := make([]float64, p.Len())
	energy := make([]float64, p.Len())
	for i := range wcet {
		wcet[i] = task.NotExecutable
		energy[i] = task.NotExecutable
	}
	wcet[t.Resource] = t.WCET
	energy[t.Resource] = t.Energy
	return &task.Type{ID: -1 - t.ID, WCET: wcet, Energy: energy}
}

// JobID encodes critical task tid's k-th release as a negative job ID so
// critical jobs never collide with trace request indices.
func JobID(tid, k int) int { return -1 - tid - k*1000 }

// Release materialises the k-th job of task tid, mapped and fixed on its
// static resource.
func (s *Set) Release(p *platform.Platform, tid, k int) *sched.Job {
	t := s.Tasks[tid]
	j := sched.NewJob(JobID(tid, k), s.jobType(t, p), t.ReleaseAt(k), t.Deadline)
	j.Resource = t.Resource
	j.Fixed = true
	return j
}

// UpcomingJobs returns fixed future jobs for every release in (from, to],
// for inclusion in an adaptive admission problem. The caller owns the
// returned jobs; they are planning copies, not runtime state.
func (s *Set) UpcomingJobs(p *platform.Platform, from, to float64) []*sched.Job {
	var jobs []*sched.Job
	for tid, t := range s.Tasks {
		for k := t.NextReleaseIndex(from + sched.Eps); ; k++ {
			rel := t.ReleaseAt(k)
			if rel > to {
				break
			}
			if rel <= from+sched.Eps {
				continue
			}
			jobs = append(jobs, s.Release(p, tid, k))
		}
	}
	return jobs
}

// NextRelease returns the earliest release time strictly after at, and
// false if the set is empty.
func (s *Set) NextRelease(at float64) (float64, bool) {
	if s == nil || len(s.Tasks) == 0 {
		return 0, false
	}
	best := math.Inf(1)
	for _, t := range s.Tasks {
		k := t.NextReleaseIndex(at + sched.Eps)
		rel := t.ReleaseAt(k)
		if rel <= at+sched.Eps {
			rel = t.ReleaseAt(k + 1)
		}
		if rel < best {
			best = rel
		}
	}
	return best, true
}

// ReleasesAt returns the task indices releasing exactly at time at.
func (s *Set) ReleasesAt(at float64) []int {
	var ids []int
	for tid, t := range s.Tasks {
		k := t.NextReleaseIndex(at)
		if math.Abs(t.ReleaseAt(k)-at) <= sched.Eps {
			ids = append(ids, tid)
		}
	}
	return ids
}
