package critical

import (
	"math"
	"testing"

	"predrm/internal/platform"
	"predrm/internal/sched"
)

func validSet() *Set {
	return &Set{Tasks: []*Task{
		{ID: 0, Name: "ctrl", Resource: 0, Period: 10, WCET: 2, Energy: 1, Deadline: 5},
		{ID: 1, Name: "log", Resource: 1, Period: 20, Offset: 3, WCET: 4, Energy: 2, Deadline: 20},
	}}
}

func TestValidate(t *testing.T) {
	plat := platform.Default()
	if err := validSet().Validate(plat); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Set)
	}{
		{"empty", func(s *Set) { s.Tasks = nil }},
		{"bad-id", func(s *Set) { s.Tasks[1].ID = 5 }},
		{"unknown-resource", func(s *Set) { s.Tasks[0].Resource = 99 }},
		{"gpu", func(s *Set) { s.Tasks[0].Resource = 5 }},
		{"zero-period", func(s *Set) { s.Tasks[0].Period = 0 }},
		{"deadline-over-period", func(s *Set) { s.Tasks[0].Deadline = 11 }},
		{"wcet-over-deadline", func(s *Set) { s.Tasks[0].WCET = 6 }},
		{"negative-offset", func(s *Set) { s.Tasks[0].Offset = -1 }},
	}
	for _, c := range cases {
		s := validSet()
		c.mutate(s)
		if err := s.Validate(plat); err == nil {
			t.Errorf("%s: accepted invalid set", c.name)
		}
	}
	// Density over 1 on one resource.
	over := &Set{Tasks: []*Task{
		{ID: 0, Resource: 0, Period: 10, WCET: 6, Energy: 1, Deadline: 10},
		{ID: 1, Resource: 0, Period: 10, WCET: 5, Energy: 1, Deadline: 10},
	}}
	if err := over.Validate(plat); err == nil {
		t.Error("accepted over-committed resource")
	}
}

func TestReleaseArithmetic(t *testing.T) {
	task := &Task{ID: 0, Resource: 0, Period: 10, Offset: 3, WCET: 2, Energy: 1, Deadline: 5}
	if task.ReleaseAt(0) != 3 || task.ReleaseAt(2) != 23 {
		t.Fatal("ReleaseAt wrong")
	}
	cases := []struct {
		at   float64
		want int
	}{
		{0, 0}, {3, 0}, {3.1, 1}, {13, 1}, {13.5, 2}, {23.5, 3},
	}
	for _, c := range cases {
		if got := task.NextReleaseIndex(c.at); got != c.want {
			t.Errorf("NextReleaseIndex(%v) = %d, want %d", c.at, got, c.want)
		}
	}
	if d := task.Density(); math.Abs(d-0.4) > 1e-12 {
		t.Fatalf("Density = %v", d)
	}
}

func TestUpcomingJobs(t *testing.T) {
	plat := platform.Default()
	s := validSet()
	jobs := s.UpcomingJobs(plat, 0, 25)
	// Task 0 releases at 0 (excluded: not strictly after from=0? release 0
	// is at t=0 which equals from), 10, 20; task 1 at 3, 23.
	var t0, t1 int
	for _, j := range jobs {
		if !j.Fixed {
			t.Fatalf("upcoming job not fixed: %v", j)
		}
		if j.Resource == 0 {
			t0++
		} else {
			t1++
		}
		if j.Arrival <= 0 || j.Arrival > 25 {
			t.Fatalf("release outside window: %v", j.Arrival)
		}
	}
	if t0 != 2 || t1 != 2 {
		t.Fatalf("got %d/%d releases, want 2/2 (jobs %v)", t0, t1, jobs)
	}
}

func TestNextReleaseAndReleasesAt(t *testing.T) {
	s := validSet()
	rel, ok := s.NextRelease(0)
	if !ok || rel != 3 {
		t.Fatalf("NextRelease(0) = %v %v, want 3", rel, ok)
	}
	rel, _ = s.NextRelease(9.5)
	if rel != 10 {
		t.Fatalf("NextRelease(9.5) = %v, want 10", rel)
	}
	if _, ok := (*Set)(nil).NextRelease(0); ok {
		t.Fatal("nil set has releases")
	}
	ids := s.ReleasesAt(10)
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("ReleasesAt(10) = %v", ids)
	}
}

func TestReleaseJob(t *testing.T) {
	plat := platform.Default()
	s := validSet()
	j := s.Release(plat, 0, 3)
	if j.Arrival != 30 || j.AbsDeadline != 35 {
		t.Fatalf("release timing wrong: %v", j)
	}
	if !j.Fixed || j.Resource != 0 {
		t.Fatalf("release not fixed to static resource: %v", j)
	}
	if j.Type.WCET[0] != 2 || j.Type.ExecutableOn(1) {
		t.Fatal("release type wrong")
	}
	if JobID(0, 3) != j.ID || j.ID >= 0 {
		t.Fatalf("job ID %d", j.ID)
	}
	// Distinct releases and tasks give distinct IDs.
	seen := map[int]bool{}
	for tid := 0; tid < 2; tid++ {
		for k := 0; k < 5; k++ {
			id := JobID(tid, k)
			if seen[id] {
				t.Fatalf("JobID collision at task %d release %d", tid, k)
			}
			seen[id] = true
		}
	}
}

func TestUtilization(t *testing.T) {
	plat := platform.Default()
	u := validSet().Utilization(plat)
	if math.Abs(u[0]-0.4) > 1e-12 || math.Abs(u[1]-0.2) > 1e-12 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestSchedIntegrationFixedFutureJob(t *testing.T) {
	// A future critical release participates in feasibility as a fixed
	// future entry.
	plat := platform.Default()
	s := validSet()
	jobs := s.UpcomingJobs(plat, 5, 15) // task 0 release at 10
	if len(jobs) != 1 {
		t.Fatalf("want 1 release, got %d", len(jobs))
	}
	p := &sched.Problem{Platform: plat, Time: 5, Jobs: jobs}
	if err := p.Validate(); err != nil {
		t.Fatalf("future fixed job rejected by Validate: %v", err)
	}
	if !p.FeasibleMapping([]int{0}) {
		t.Fatal("lone critical release infeasible")
	}
	if p.FeasibleMapping([]int{1}) {
		t.Fatal("fixed job allowed on a different resource")
	}
}
