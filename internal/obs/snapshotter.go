package obs

import "sync"

// Snapshotter gates periodic work onto a virtual-clock cadence: Due
// reports whether at least Interval simulated time passed since the last
// due tick (and latches the new tick when it did). With Interval 0 every
// tick is due. The first tick is always due.
//
// This is the piece that lets the introspection plane run under the
// discrete-event simulator before wall-clock serving exists: the
// simulator calls the plane's probe per activation, and the snapshotter
// decides — in simulated time, deterministically — when to publish. A
// wall-clock driver can feed it time.Since(start).Seconds() instead.
type Snapshotter struct {
	// Interval is the minimum simulated time between due ticks.
	Interval float64

	mu      sync.Mutex
	started bool
	last    float64
}

// Due latches and reports whether a snapshot is due at virtual time now.
// Safe for concurrent use.
func (s *Snapshotter) Due(now float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A reading behind the last tick means the time source restarted (a
	// fresh run reusing the plane, or a driver reset): re-latch and report
	// due instead of going silent until the new timeline catches up to the
	// stale mark — the same restart rule the SLO tracker applies.
	if s.started && now >= s.last && now-s.last < s.Interval {
		return false
	}
	s.started = true
	s.last = now
	return true
}
