package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"predrm/internal/exact"
	"predrm/internal/platform"
	"predrm/internal/predict"
	"predrm/internal/rng"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
	"predrm/internal/traceview"
)

// fixture builds a small deterministic simulation with the exact solver so
// the FeasCache and solver counters the plane surfaces are live.
func fixture(t testing.TB) (sim.Config, *trace.Trace) {
	t.Helper()
	plat := platform.Default()
	tcfg := task.DefaultGenConfig()
	tcfg.NumTypes = 20
	set, err := task.Generate(plat, tcfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(set, trace.GenConfig{
		Length:           30,
		InterarrivalMean: 0.8,
		InterarrivalStd:  0.25,
		Tightness:        trace.VeryTight,
	}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := predict.NewOracle(tr, predict.OracleConfig{
		TypeAccuracy: 1,
		NumTypes:     set.Len(),
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Platform:   plat,
		TaskSet:    set,
		Solver:     &exact.Optimal{},
		Predictor:  oracle,
		Provenance: true,
	}, tr
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp, body
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOpsServerSmoke is the end-to-end acceptance check: serve a plane on
// a random port, attach a live tail, run a simulation through it, and
// verify every endpoint — including that /trace/tail streamed exactly the
// bytes the JSONL sink recorded and that /statusz agrees with the run's
// own result.
func TestOpsServerSmoke(t *testing.T) {
	cfg, tr := fixture(t)
	var sink bytes.Buffer
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Sink: &sink, RingSize: 1 << 16})
	reg := telemetry.NewRegistry()
	cfg.Tracer = tracer
	cfg.Metrics = reg
	plane := NewPlane(Options{Snapshot: reg.Snapshot, Tracer: tracer})
	cfg.StateProbe = plane.Probe

	srv, err := Serve("127.0.0.1:0", plane)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Attach the tail before the run starts so it observes every event.
	tailBody := make(chan []byte, 1)
	tailErr := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/trace/tail")
		if err != nil {
			tailErr <- err
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			tailErr <- fmt.Errorf("tail content-type %q", ct)
			return
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			tailErr <- err
			return
		}
		tailBody <- b
	}()
	waitFor(t, "tail subscriber", func() bool { return tracer.Subscribers() == 1 })

	res, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	// /healthz and the index.
	resp, body := get(t, srv.URL()+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	if _, body = get(t, srv.URL()+"/"); !bytes.Contains(body, []byte("/statusz")) {
		t.Fatalf("index does not list endpoints: %q", body)
	}

	// /metrics passes the exposition validator and carries both the
	// driver's instruments and the plane's own SLO gauges.
	resp, body = get(t, srv.URL()+"/metrics")
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Fatalf("metrics content-type %q, want %q", got, ContentType)
	}
	if errs := ValidateExposition(bytes.NewReader(body)); len(errs) > 0 {
		t.Fatalf("metrics failed validation: %v\n%s", errs, body)
	}
	for _, want := range []string{
		"exact_cache_hits", "slo_rejection_burn_w50", "telemetry_tracer_dropped",
		"sim_solver_seconds_bucket",
		"sim_reject_reason_no_feasible_mapping", "sim_admit_reason_",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing family %q:\n%s", want, body)
		}
	}

	// /statusz agrees with the run's own result and live counters.
	_, body = get(t, srv.URL()+"/statusz")
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statusz: %v\n%s", err, body)
	}
	if st.RM == nil || st.RM.Req != -1 {
		t.Fatalf("statusz RM sample is not the final one: %+v", st.RM)
	}
	if st.RM.Requests != res.Requests || st.RM.Accepted != res.Accepted || st.RM.Rejected != res.Rejected {
		t.Fatalf("statusz counters %+v disagree with result %d/%d/%d",
			st.RM, res.Requests, res.Accepted, res.Rejected)
	}
	if st.RM.InFlight != 0 {
		t.Fatalf("drained run reports %d in-flight jobs", st.RM.InFlight)
	}
	if len(st.RM.Resources) != cfg.Platform.Len() {
		t.Fatalf("statusz has %d resources, platform has %d", len(st.RM.Resources), cfg.Platform.Len())
	}
	snap := reg.Snapshot()
	hits, misses := snap.Counters["exact.cache.hits"], snap.Counters["exact.cache.misses"]
	if hits+misses == 0 {
		t.Fatal("exact solver ran but FeasCache saw no probes")
	}
	if st.FeasCache.Hits != hits || st.FeasCache.Misses != misses {
		t.Fatalf("statusz feascache %+v, registry %d/%d", st.FeasCache, hits, misses)
	}
	wantRate := float64(hits) / float64(hits+misses)
	if math.Abs(st.FeasCache.HitRate-wantRate) > 1e-9 {
		t.Fatalf("statusz hit rate %v, want %v", st.FeasCache.HitRate, wantRate)
	}
	wantRej := float64(res.Rejected) / float64(res.Requests)
	if math.Abs(st.SLO.TotalRejectionRate-wantRej) > 1e-9 {
		t.Fatalf("SLO total rejection rate %v, result %v", st.SLO.TotalRejectionRate, wantRej)
	}
	if res.Accepted > 0 {
		wantMiss := float64(res.DeadlineMisses) / float64(res.Accepted)
		if math.Abs(st.SLO.TotalMissRate-wantMiss) > 1e-9 {
			t.Fatalf("SLO total miss rate %v, result %v", st.SLO.TotalMissRate, wantMiss)
		}
	}
	if len(st.SLO.Windows) != 2 {
		t.Fatalf("SLO windows %+v", st.SLO.Windows)
	}

	// Per-reason admission histograms agree with the run's result.
	if res.Rejected == 0 {
		t.Fatal("fixture produced no rejections; reason histograms untested")
	}
	if got := st.Reasons.Reject[telemetry.ReasonNoFeasibleMapping]; got != int64(res.Rejected) {
		t.Fatalf("statusz reject reasons %v, result rejected %d", st.Reasons.Reject, res.Rejected)
	}
	var admitTotal int64
	for _, v := range st.Reasons.Admit {
		admitTotal += v
	}
	if admitTotal != int64(res.Accepted) {
		t.Fatalf("statusz admit reasons %v sum %d, result accepted %d",
			st.Reasons.Admit, admitTotal, res.Accepted)
	}

	// /explainz reconstructs a rejected request's decision narrative from
	// the tracer's ring.
	tl := traceview.BuildTimeline(&traceview.Decoded{Events: tracer.Events()})
	rejected := tl.RejectedRequests()
	if len(rejected) == 0 {
		t.Fatal("timeline lost the rejections")
	}
	resp, body = get(t, fmt.Sprintf("%s/explainz?req=%d", srv.URL(), rejected[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explainz: %d\n%s", resp.StatusCode, body)
	}
	var x traceview.Explanation
	if err := json.Unmarshal(body, &x); err != nil {
		t.Fatalf("explainz: %v\n%s", err, body)
	}
	if x.Prov == nil || len(x.Prov.Attempts) == 0 {
		t.Fatalf("explainz carries no provenance record:\n%s", body)
	}
	resp, body = get(t, fmt.Sprintf("%s/explainz?req=%d&text=1", srv.URL(), rejected[0]))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "REJECTED") {
		t.Fatalf("explainz text: %d\n%s", resp.StatusCode, body)
	}

	// /debug/pprof is mounted.
	if resp, _ := get(t, srv.URL()+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}

	// Ending the run closes the tail stream; its NDJSON body must be
	// byte-identical to the JSONL trace the sink recorded.
	plane.Close()
	var streamed []byte
	select {
	case streamed = <-tailBody:
	case err := <-tailErr:
		t.Fatalf("tail: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("tail stream did not terminate after plane.Close")
	}
	if d := tracer.FanoutDropped(); d != 0 {
		t.Fatalf("tail dropped %d events; byte-match comparison void", d)
	}
	if !bytes.Equal(streamed, sink.Bytes()) {
		t.Fatalf("tail stream (%d bytes) differs from sink trace (%d bytes)", len(streamed), len(sink.Bytes()))
	}
}

// TestTailWithoutTracer: the endpoint must refuse cleanly when the driver
// attached no tracer.
func TestTailWithoutTracer(t *testing.T) {
	plane := NewPlane(Options{})
	srv, err := Serve("127.0.0.1:0", plane)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, _ := get(t, srv.URL()+"/trace/tail")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tail without tracer: %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL()+"/trace/tail?buf=0"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tail without tracer (buf): %d, want 503", resp.StatusCode)
	}
}

// TestTailSSE checks the Server-Sent-Events framing.
func TestTailSSE(t *testing.T) {
	tracer := telemetry.NewTracer(telemetry.TracerOptions{})
	plane := NewPlane(Options{Tracer: tracer})
	srv, err := Serve("127.0.0.1:0", plane)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/trace/tail?sse=1")
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		if resp.Header.Get("Content-Type") != "text/event-stream" {
			done <- nil
			return
		}
		b, _ := io.ReadAll(resp.Body)
		done <- b
	}()
	waitFor(t, "sse subscriber", func() bool { return tracer.Subscribers() == 1 })
	e := telemetry.NewEvent(1.5, telemetry.EvArrival)
	tracer.Emit(e)
	plane.Close()
	body := <-done
	if body == nil {
		t.Fatal("sse request failed")
	}
	line, _ := json.Marshal(func() telemetry.Event { e.Seq = 0; return e }())
	want := "data: " + string(line) + "\n\n" + "event: end\ndata: {}\n\n"
	if string(body) != want {
		t.Fatalf("sse body %q, want %q", body, want)
	}
}

// TestTailBadBuf rejects malformed ?buf values.
func TestTailBadBuf(t *testing.T) {
	tracer := telemetry.NewTracer(telemetry.TracerOptions{})
	plane := NewPlane(Options{Tracer: tracer})
	srv, err := Serve("127.0.0.1:0", plane)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range []string{"buf=-1", "buf=0", "buf=zebra"} {
		if resp, _ := get(t, srv.URL()+"/trace/tail?"+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestExplainzErrors pins the endpoint's refusal modes: no tracer (503),
// missing or malformed ?req (400), and a request outside the ring (404).
func TestExplainzErrors(t *testing.T) {
	bare := NewPlane(Options{})
	srvBare, err := Serve("127.0.0.1:0", bare)
	if err != nil {
		t.Fatal(err)
	}
	defer srvBare.Close()
	if resp, _ := get(t, srvBare.URL()+"/explainz?req=0"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("explainz without tracer: %d, want 503", resp.StatusCode)
	}

	tracer := telemetry.NewTracer(telemetry.TracerOptions{})
	plane := NewPlane(Options{Tracer: tracer})
	srv, err := Serve("127.0.0.1:0", plane)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range []string{"", "?req=", "?req=zebra"} {
		if resp, _ := get(t, srv.URL()+"/explainz"+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("explainz%s: %d, want 400", q, resp.StatusCode)
		}
	}
	if resp, _ := get(t, srv.URL()+"/explainz?req=42"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("explainz for absent request: %d, want 404", resp.StatusCode)
	}
}

// TestPlaneProbeConcurrentStatusz drives StateProbe, the per-reason
// counters, and tracer emission from a writer goroutine while /statusz,
// /metrics, and /explainz scrape concurrently — the race detector guards
// the plane's synchronization (run via the obscheck -race gate).
func TestPlaneProbeConcurrentStatusz(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.TracerOptions{RingSize: 256})
	plane := NewPlane(Options{Snapshot: reg.Snapshot, Tracer: tracer})
	srv, err := Serve("127.0.0.1:0", plane)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		resources := []sim.ResourceSample{{Jobs: 1}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			plane.Probe(sim.StateSample{
				Time: float64(i), Req: i, Requests: i + 1, Resources: resources,
			})
			reg.Counter("sim.reject_reason." + telemetry.ReasonNoFeasibleMapping).Add(1)
			reg.Counter("sim.admit_reason." + telemetry.ReasonPlain).Add(1)
			e := telemetry.NewEvent(float64(i), telemetry.EvReject)
			e.Req, e.Task, e.Reason = i, 0, telemetry.ReasonNoFeasibleMapping
			tracer.Emit(e)
		}
	}()

	var scrapers sync.WaitGroup
	for _, path := range []string{"/statusz", "/metrics", "/explainz?req=0", "/explainz?req=0&text=1"} {
		path := path
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(srv.URL() + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writer.Wait()

	_, body := get(t, srv.URL()+"/statusz")
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statusz: %v\n%s", err, body)
	}
	if st.Reasons.Reject[telemetry.ReasonNoFeasibleMapping] == 0 {
		t.Fatalf("reject reason counter missing after concurrent run: %+v", st.Reasons)
	}
}

// TestSnapshotterCadence pins the virtual-clock gate: first tick due,
// then only after Interval elapses; Interval 0 is always due.
func TestSnapshotterCadence(t *testing.T) {
	s := Snapshotter{Interval: 10}
	ticks := []struct {
		now  float64
		want bool
	}{
		{0, true}, {5, false}, {9.99, false}, {10, true}, {15, false}, {20.5, true},
	}
	for _, tick := range ticks {
		if got := s.Due(tick.now); got != tick.want {
			t.Fatalf("Due(%v) = %v, want %v", tick.now, got, tick.want)
		}
	}
	always := Snapshotter{}
	for _, now := range []float64{0, 0, 1} {
		if !always.Due(now) {
			t.Fatalf("zero-interval snapshotter not due at %v", now)
		}
	}
}

// TestSnapshotterTimeRegression: a virtual-time reading behind the last
// due tick means the time source restarted (a fresh run reusing the
// plane), so Due must latch the restart and report due instead of going
// dark until the new timeline passes the stale mark — mirroring
// TestSLOTimeRegressionResets for the SLO tracker.
func TestSnapshotterTimeRegression(t *testing.T) {
	s := Snapshotter{Interval: 10}
	if !s.Due(100) {
		t.Fatal("first tick not due")
	}
	if !s.Due(2) {
		t.Fatal("regressed tick (restarted time source) not due")
	}
	if s.Due(5) {
		t.Fatal("tick inside Interval of the re-latched mark reported due")
	}
	if !s.Due(12) {
		t.Fatal("tick one Interval past the re-latched mark not due")
	}
}

// TestPlaneProbePublishes: the final Req == -1 sample must always be
// published even when the snapshot interval would suppress it, and the
// published copy must not alias the caller's Resources slice.
func TestPlaneProbePublishes(t *testing.T) {
	plane := NewPlane(Options{SnapshotInterval: 100})
	resources := []sim.ResourceSample{{Jobs: 1}}
	plane.Probe(sim.StateSample{Time: 0, Req: 0, Resources: resources})
	plane.Probe(sim.StateSample{Time: 1, Req: 1, Requests: 2, Resources: resources})
	if got := plane.state.Load(); got.Req != 0 {
		t.Fatalf("interval-suppressed sample was published: %+v", got)
	}
	plane.Probe(sim.StateSample{Time: 2, Req: -1, Requests: 2, Resources: resources})
	got := plane.state.Load()
	if got.Req != -1 || got.Requests != 2 {
		t.Fatalf("final sample not published: %+v", got)
	}
	resources[0].Jobs = 99
	if got.Resources[0].Jobs != 1 {
		t.Fatal("published sample aliases the probe's Resources slice")
	}
}
