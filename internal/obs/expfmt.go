package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-exposition stream against
// the format rules this repository relies on, returning one error per
// violation (nil for a clean stream). It is deliberately a validator, not
// a full parser: it enforces
//
//   - metric-name charset ([a-zA-Z_:][a-zA-Z0-9_:]*) on HELP, TYPE and
//     sample lines;
//   - at most one TYPE per family, declared before the family's samples,
//     with a known type keyword;
//   - every sample belongs to a family with HELP and TYPE lines
//     (histogram _bucket/_sum/_count samples resolve to their base name);
//   - parseable sample values and le labels;
//   - histogram coherence: le values strictly increasing, cumulative
//     bucket counts non-decreasing, a closing le="+Inf" bucket whose count
//     equals <name>_count;
//   - no duplicate samples (same name and label set).
//
// Tests use it against WritePrometheus output; make obscheck scrapes a
// live server and runs it on /metrics.
func ValidateExposition(r io.Reader) []error {
	var errs []error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	typeOf := make(map[string]string)   // family -> declared type
	helped := make(map[string]bool)     // family -> HELP seen
	sampled := make(map[string]bool)    // family -> sample seen
	seenSample := make(map[string]bool) // name+labels -> dup detection
	hists := make(map[string]*histCheck)

	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			kind, name, rest, ok := parseComment(text)
			if !ok {
				continue // free-form comment: legal, ignored
			}
			if !validMetricName(name) {
				errs = append(errs, fmt.Errorf("line %d: %s for invalid metric name %q", line, kind, name))
				continue
			}
			switch kind {
			case "HELP":
				helped[name] = true
			case "TYPE":
				if _, dup := typeOf[name]; dup {
					errs = append(errs, fmt.Errorf("line %d: duplicate TYPE for %q", line, name))
					continue
				}
				if sampled[name] {
					errs = append(errs, fmt.Errorf("line %d: TYPE for %q after its samples", line, name))
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					typeOf[name] = rest
				default:
					errs = append(errs, fmt.Errorf("line %d: unknown type %q for %q", line, rest, name))
				}
			}
			continue
		}

		name, labels, value, err := parseSample(text)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %v", line, err))
			continue
		}
		if !validMetricName(name) {
			errs = append(errs, fmt.Errorf("line %d: invalid metric name %q", line, name))
			continue
		}
		key := name + "{" + labels + "}"
		if seenSample[key] {
			errs = append(errs, fmt.Errorf("line %d: duplicate sample %s", line, key))
		}
		seenSample[key] = true

		family := name
		if base, suffix := histFamily(name, typeOf); base != "" {
			family = base
			hc := hists[base]
			if hc == nil {
				hc = &histCheck{}
				hists[base] = hc
			}
			switch suffix {
			case "_bucket":
				le, err := parseLE(labels)
				if err != nil {
					errs = append(errs, fmt.Errorf("line %d: %s: %v", line, name, err))
					break
				}
				hc.les = append(hc.les, le)
				hc.counts = append(hc.counts, value)
				hc.bucketLine = line
			case "_count":
				hc.count = value
				hc.hasCount = true
			}
		}
		sampled[family] = true
		if _, ok := typeOf[family]; !ok {
			errs = append(errs, fmt.Errorf("line %d: sample %q has no preceding TYPE for family %q", line, name, family))
		}
		if !helped[family] {
			errs = append(errs, fmt.Errorf("line %d: sample %q has no HELP for family %q", line, name, family))
		}
	}
	if err := sc.Err(); err != nil {
		return append(errs, fmt.Errorf("read: %w", err))
	}

	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		errs = append(errs, hists[name].validate(name)...)
	}
	return errs
}

// histCheck accumulates one histogram family's buckets for coherence
// checking after the stream is fully read.
type histCheck struct {
	les        []float64
	counts     []float64
	count      float64
	hasCount   bool
	bucketLine int
}

func (h *histCheck) validate(name string) []error {
	var errs []error
	if len(h.les) == 0 {
		return []error{fmt.Errorf("histogram %q has no _bucket samples", name)}
	}
	for i := 1; i < len(h.les); i++ {
		if !(h.les[i] > h.les[i-1]) {
			errs = append(errs, fmt.Errorf("histogram %q: le=%g does not increase over le=%g", name, h.les[i], h.les[i-1]))
		}
		if h.counts[i] < h.counts[i-1] {
			errs = append(errs, fmt.Errorf("histogram %q: bucket le=%g count %g below previous %g (not cumulative)",
				name, h.les[i], h.counts[i], h.counts[i-1]))
		}
	}
	last := h.les[len(h.les)-1]
	if !math.IsInf(last, 1) {
		errs = append(errs, fmt.Errorf("histogram %q: missing closing le=\"+Inf\" bucket", name))
	} else if h.hasCount && h.counts[len(h.counts)-1] != h.count {
		errs = append(errs, fmt.Errorf("histogram %q: +Inf bucket %g != _count %g", name, h.counts[len(h.counts)-1], h.count))
	}
	if !h.hasCount {
		errs = append(errs, fmt.Errorf("histogram %q: missing _count sample", name))
	}
	return errs
}

// histFamily resolves a histogram component sample to its declared family:
// "x_bucket" -> ("x", "_bucket") when TYPE x histogram was seen.
func histFamily(name string, typeOf map[string]string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			b := strings.TrimSuffix(name, s)
			if typeOf[b] == "histogram" {
				return b, s
			}
		}
	}
	return "", ""
}

// parseComment splits "# KIND name rest"; ok is false for free-form
// comments.
func parseComment(text string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(strings.TrimSpace(text[1:]), " ", 3)
	if len(fields) < 2 {
		return "", "", "", false
	}
	kind = fields[0]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", false
	}
	name = fields[1]
	if len(fields) == 3 {
		rest = strings.TrimSpace(fields[2])
	}
	return kind, name, rest, true
}

// parseSample splits a sample line into name, raw label body (without
// braces, "" when absent) and value. Timestamps (a trailing integer
// field) are accepted and ignored.
func parseSample(text string) (name, labels string, value float64, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", text)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("sample %q has no value", text)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("sample %q malformed", text)
	}
	value, err = parseFloat(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("sample %q: bad value: %v", text, err)
	}
	return name, labels, value, nil
}

// parseLE extracts the le label from a bucket's label body.
func parseLE(labels string) (float64, error) {
	for _, part := range strings.Split(labels, ",") {
		part = strings.TrimSpace(part)
		if !strings.HasPrefix(part, "le=") {
			continue
		}
		raw := strings.TrimPrefix(part, "le=")
		raw = strings.Trim(raw, `"`)
		return parseFloat(raw)
	}
	return 0, fmt.Errorf("bucket has no le label (labels %q)", labels)
}

// parseFloat parses an exposition value, accepting the +Inf/-Inf/NaN
// literals Go's strconv already understands.
func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
