package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"predrm/internal/telemetry"
)

// Prometheus text exposition (version 0.0.4) rendering of a
// telemetry.Snapshot.
//
// Instrument names in this repository are dotted ("sim.solver_seconds",
// "exact.cache.hit_rate"); the exposition format only allows
// [a-zA-Z_:][a-zA-Z0-9_:]*, so names are sanitised by mapping every
// disallowed character to '_' and prefixing '_' when the first character
// is a digit. The original dotted name is preserved in the HELP line so
// scrapes stay attributable to registry instruments. Two registry names
// that collide after sanitisation ("a.b" and "a_b") would yield duplicate
// families; the repository's instrument namespace avoids this and
// ValidateExposition rejects it.

// ContentType is the Content-Type an HTTP handler should declare for
// WritePrometheus output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeMetricName maps an instrument name into the exposition
// format's metric-name charset.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	out := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// formatValue renders a sample value. Prometheus accepts Go's scientific
// notation as well as the literals +Inf, -Inf and NaN, which FormatFloat
// produces for the special values.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders s in Prometheus text exposition format:
// counters and gauges as their native types (gauge high-water marks as an
// extra <name>_max gauge), histograms with cumulative _bucket series, _sum
// and _count. Families are emitted in sorted name order so output is
// deterministic for a given snapshot. A nil snapshot renders nothing.
func WritePrometheus(w io.Writer, s *telemetry.Snapshot) error {
	if s == nil {
		return nil
	}
	for _, name := range sortedKeys(s.Counters) {
		m := SanitizeMetricName(name)
		if err := writeHeader(w, m, "counter", name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", m, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		m := SanitizeMetricName(name)
		if err := writeHeader(w, m, "gauge", name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m, formatValue(g.Value)); err != nil {
			return err
		}
		if err := writeHeader(w, m+"_max", "gauge", name+" high-water mark"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_max %s\n", m, formatValue(g.Max)); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		m := SanitizeMetricName(name)
		if err := writeHeader(w, m, "histogram", name); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m, formatValue(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", m, formatValue(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", m, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeHeader emits the HELP/TYPE comment pair for one family. The HELP
// text carries the original dotted instrument name; backslashes and
// newlines (illegal unescaped in HELP) cannot occur in registry names.
func writeHeader(w io.Writer, metric, kind, help string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s %s\n", metric, kind, help); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", metric, kind)
	return err
}

// sortedKeys returns m's keys ordered by their sanitised metric name (ties
// broken by the raw name) so families render deterministically and grouped
// the way a scraper sees them.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := SanitizeMetricName(keys[i]), SanitizeMetricName(keys[j])
		if a != b {
			return a < b
		}
		return keys[i] < keys[j]
	})
	return keys
}

// inf guards against NaN leaking into JSON encoders; used by statusz.
func finiteOr(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}
