package obs

import (
	"fmt"
	"sync"

	"predrm/internal/telemetry"
)

// SLOConfig parameterises the error-budget tracker. The two objectives
// mirror the RM's contract: rejections are expected and budgeted (the
// paper's evaluation operates around a 25-30% rejection band), while
// deadline misses are an invariant violation, so their budget is tiny and
// any miss burns it visibly.
type SLOConfig struct {
	// RejectionTarget is the budgeted rejected fraction of requests
	// (default 0.30).
	RejectionTarget float64
	// MissTarget is the budgeted deadline-miss fraction of completed jobs
	// (default 0.001).
	MissTarget float64
	// Windows are the sliding-window lengths, in simulated time units,
	// over which burn rates are computed (default 50 and 500 — a fast
	// window that reacts to load spikes and a slow one that matches
	// sustained drift; the multi-window pairing follows SRE burn-rate
	// alerting practice).
	Windows []float64
}

// withDefaults fills zero fields.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.RejectionTarget <= 0 {
		c.RejectionTarget = 0.30
	}
	if c.MissTarget <= 0 {
		c.MissTarget = 0.001
	}
	if len(c.Windows) == 0 {
		c.Windows = []float64{50, 500}
	}
	return c
}

// SLO computes rolling error-budget burn rates from the cumulative
// admission counters carried by sim.StateSample probes. A burn rate is
// the observed bad-event rate over a window divided by the budgeted rate:
// 1.0 means the budget is being consumed exactly as provisioned, >1 means
// the budget will be exhausted early. Safe for concurrent use (the
// simulator records while HTTP handlers report).
type SLO struct {
	mu      sync.Mutex
	cfg     SLOConfig
	maxW    float64
	samples []sloSample // time-ordered cumulative samples
	// Gauges per window, published on every Record so /metrics always
	// carries the current burn rates. Nil (no-op) without a registry.
	gRejRate, gRejBurn   []*telemetry.Gauge
	gMissRate, gMissBurn []*telemetry.Gauge
}

// sloSample is one cumulative observation.
type sloSample struct {
	t                  float64
	requests, rejected int
	finished, missed   int
}

// NewSLO builds a tracker, registering slo.* gauges on reg (nil-safe):
// per window W, slo.rejection.rate_wW, slo.rejection.burn_wW,
// slo.deadline_miss.rate_wW and slo.deadline_miss.burn_wW.
func NewSLO(cfg SLOConfig, reg *telemetry.Registry) *SLO {
	cfg = cfg.withDefaults()
	s := &SLO{cfg: cfg}
	for _, w := range cfg.Windows {
		if w > s.maxW {
			s.maxW = w
		}
		suffix := fmt.Sprintf("_w%g", w)
		s.gRejRate = append(s.gRejRate, reg.Gauge("slo.rejection.rate"+suffix))
		s.gRejBurn = append(s.gRejBurn, reg.Gauge("slo.rejection.burn"+suffix))
		s.gMissRate = append(s.gMissRate, reg.Gauge("slo.deadline_miss.rate"+suffix))
		s.gMissBurn = append(s.gMissBurn, reg.Gauge("slo.deadline_miss.burn"+suffix))
	}
	return s
}

// Record folds one cumulative observation into the windows and refreshes
// the slo.* gauges. Observations must arrive in non-decreasing time order
// within a run (the simulator's event loop guarantees this); a time
// regression marks a new run starting (experiments restart virtual time
// at zero per simulated trace) and resets the window history so stale
// samples from the previous run cannot pollute the deltas.
func (s *SLO) Record(t float64, requests, rejected, finished, missed int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if n := len(s.samples); n > 0 && t < s.samples[n-1].t {
		s.samples = s.samples[:0]
	}
	s.samples = append(s.samples, sloSample{t, requests, rejected, finished, missed})
	// Prune history older than the longest window, keeping one sample at
	// or before the boundary so window deltas stay anchored.
	cut := 0
	for cut+1 < len(s.samples) && s.samples[cut+1].t <= t-s.maxW {
		cut++
	}
	if cut > 0 {
		s.samples = append(s.samples[:0], s.samples[cut:]...)
	}
	rep := s.reportLocked()
	s.mu.Unlock()
	for i, w := range rep.Windows {
		s.gRejRate[i].Set(w.RejectionRate)
		s.gRejBurn[i].Set(w.RejectionBurn)
		s.gMissRate[i].Set(w.MissRate)
		s.gMissBurn[i].Set(w.MissBurn)
	}
}

// SLOWindow is one window's burn-rate reading.
type SLOWindow struct {
	// Window is the sliding-window length in simulated time units.
	Window float64 `json:"window"`
	// RejectionRate is the rejected fraction of requests decided inside
	// the window; RejectionBurn is that rate over the budgeted rate.
	RejectionRate float64 `json:"rejection_rate"`
	RejectionBurn float64 `json:"rejection_burn"`
	// MissRate is the deadline-miss fraction of jobs completed inside the
	// window; MissBurn is that rate over the budgeted rate.
	MissRate float64 `json:"miss_rate"`
	MissBurn float64 `json:"miss_burn"`
}

// SLOReport is a point-in-time view of the tracker.
type SLOReport struct {
	// RejectionTarget and MissTarget echo the configured budgets.
	RejectionTarget float64 `json:"rejection_target"`
	MissTarget      float64 `json:"miss_target"`
	// Windows holds one reading per configured window, in config order.
	Windows []SLOWindow `json:"windows"`
	// TotalRejectionRate and TotalMissRate are lifetime rates (whole run,
	// not windowed) — these are what the end-of-run summary prints.
	TotalRejectionRate float64 `json:"total_rejection_rate"`
	TotalMissRate      float64 `json:"total_miss_rate"`
}

// Report returns the current burn rates. Nil-safe (zero report).
func (s *SLO) Report() SLOReport {
	if s == nil {
		return SLOReport{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reportLocked()
}

func (s *SLO) reportLocked() SLOReport {
	rep := SLOReport{
		RejectionTarget: s.cfg.RejectionTarget,
		MissTarget:      s.cfg.MissTarget,
		Windows:         make([]SLOWindow, len(s.cfg.Windows)),
	}
	if len(s.samples) == 0 {
		for i, w := range s.cfg.Windows {
			rep.Windows[i].Window = w
		}
		return rep
	}
	cur := s.samples[len(s.samples)-1]
	rep.TotalRejectionRate = ratio(cur.rejected, cur.requests)
	rep.TotalMissRate = ratio(cur.missed, cur.finished)
	for i, w := range s.cfg.Windows {
		base := s.baseline(cur.t - w)
		win := SLOWindow{
			Window:        w,
			RejectionRate: ratio(cur.rejected-base.rejected, cur.requests-base.requests),
			MissRate:      ratio(cur.missed-base.missed, cur.finished-base.finished),
		}
		win.RejectionBurn = win.RejectionRate / s.cfg.RejectionTarget
		win.MissBurn = win.MissRate / s.cfg.MissTarget
		rep.Windows[i] = win
	}
	return rep
}

// baseline returns the newest sample at or before time t, or a zero
// sample when the whole history is newer (run shorter than the window).
func (s *SLO) baseline(t float64) sloSample {
	var base sloSample
	for _, smp := range s.samples {
		if smp.t > t {
			break
		}
		base = smp
	}
	return base
}

// ratio returns num/den, or 0 when the denominator is empty.
func ratio(num, den int) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
