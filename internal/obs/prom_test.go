package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predrm/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// promFixture builds a snapshot exercising every rendered shape: counters,
// gauges (with a distinct high-water mark), a histogram with an overflow
// observation, and a name that needs every sanitisation rule.
func promFixture() *telemetry.Snapshot {
	reg := telemetry.NewRegistry()
	reg.Counter("sim.events.admit").Add(42)
	reg.Counter("exact.solves").Add(7)
	reg.Counter("9weird-name.pct").Inc()
	g := reg.Gauge("exact.cache.hit_rate")
	g.Set(0.5)
	g.Set(0.25)
	h := reg.Histogram("sim.solver_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 0.05, 2} {
		h.Observe(v)
	}
	return reg.Snapshot()
}

// TestWritePrometheusGolden pins the exposition output byte-for-byte.
// Regenerate with: go test ./internal/obs -run Golden -update-golden
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promFixture()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden.prom")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from golden file (rerun with -update-golden to accept):\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusValidates runs the repository's own exposition
// validator over the writer's output: the two must agree on the format.
func TestWritePrometheusValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promFixture()); err != nil {
		t.Fatal(err)
	}
	if errs := ValidateExposition(bytes.NewReader(buf.Bytes())); len(errs) > 0 {
		t.Fatalf("validator rejected writer output: %v", errs)
	}
	out := buf.String()
	for _, want := range []string{
		"_9weird_name_pct 1\n",                              // sanitised leading digit and punctuation
		"# HELP _9weird_name_pct counter 9weird-name.pct\n", // original name preserved
		`sim_solver_seconds_bucket{le="+Inf"} 5`,            // closing bucket covers overflow
		"sim_solver_seconds_count 5\n",
		"exact_cache_hit_rate 0.25\n",
		"exact_cache_hit_rate_max 0.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusNil renders nothing for a nil snapshot.
func TestWritePrometheusNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil snapshot rendered %q", buf.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"sim.solver_seconds", "sim_solver_seconds"},
		{"exact.cache.hit_rate", "exact_cache_hit_rate"},
		{"9lives", "_9lives"},
		{"a-b c%d", "a_b_c_d"},
		{"already_fine:ok", "already_fine:ok"},
		{"", "_"},
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
		if got := SanitizeMetricName(c.in); !validMetricName(got) {
			t.Errorf("SanitizeMetricName(%q) = %q is not a valid metric name", c.in, got)
		}
	}
}

// TestValidateExpositionRejects feeds crafted violations and checks each
// is caught with a recognisable error.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{
			"invalid name",
			"# HELP bad.name counter x\n# TYPE bad.name counter\nbad.name 1\n",
			"invalid metric name",
		},
		{
			"missing TYPE",
			"# HELP a counter a\na 1\n",
			"no preceding TYPE",
		},
		{
			"missing HELP",
			"# TYPE a counter\na 1\n",
			"no HELP",
		},
		{
			"TYPE after samples",
			"# HELP a counter a\na 1\n# TYPE a counter\n",
			"after its samples",
		},
		{
			"duplicate TYPE",
			"# HELP a counter a\n# TYPE a counter\n# TYPE a counter\na 1\n",
			"duplicate TYPE",
		},
		{
			"unknown type keyword",
			"# HELP a counter a\n# TYPE a exponential\na 1\n",
			"unknown type",
		},
		{
			"duplicate sample",
			"# HELP a counter a\n# TYPE a counter\na 1\na 2\n",
			"duplicate sample",
		},
		{
			"non-cumulative buckets",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" + "h_sum 4\nh_count 5\n",
			"not cumulative",
		},
		{
			"non-increasing le",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" +
				`h_bucket{le="+Inf"} 2` + "\n" + "h_sum 1\nh_count 2\n",
			"does not increase",
		},
		{
			"missing +Inf bucket",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\n" + "h_sum 1\nh_count 1\n",
			"missing closing",
		},
		{
			"+Inf disagrees with count",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\n" +
				"h_sum 1\nh_count 3\n",
			"!= _count",
		},
		{
			"histogram without count",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 1` + "\n" + "h_sum 1\n",
			"missing _count",
		},
		{
			"unparseable value",
			"# HELP a counter a\n# TYPE a counter\na pony\n",
			"bad value",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := ValidateExposition(strings.NewReader(c.in))
			if len(errs) == 0 {
				t.Fatalf("validator accepted:\n%s", c.in)
			}
			for _, err := range errs {
				if strings.Contains(err.Error(), c.want) {
					return
				}
			}
			t.Fatalf("no error mentions %q; got %v", c.want, errs)
		})
	}
}

// TestValidateExpositionAccepts covers legal constructs the validator
// must not flag: free-form comments, timestamps, untyped label sets.
func TestValidateExpositionAccepts(t *testing.T) {
	in := "# a free-form comment\n" +
		"# HELP up liveness\n# TYPE up gauge\n" +
		`up{job="rm",instance="a:1"} 1 1712345678000` + "\n"
	if errs := ValidateExposition(strings.NewReader(in)); len(errs) > 0 {
		t.Fatalf("validator rejected legal stream: %v", errs)
	}
}
