// Package obs is the live introspection plane: an embeddable ops HTTP
// server that makes an in-flight resource-manager run observable, where
// PR 1-2's JSONL traces and metrics snapshots are post-hoc only.
//
// A driver (cmd/rmsim, cmd/experiments, or a future long-running server)
// builds a Plane around its telemetry handles and mounts it on a
// listener:
//
//	plane := obs.NewPlane(obs.Options{
//		Snapshot: reg.Snapshot, // live /metrics source
//		Tracer:   tracer,       // /trace/tail + drop counters
//	})
//	cfg.StateProbe = plane.Probe // virtual-clock RM state + SLO feed
//	srv, _ := obs.Serve(":0", plane)
//	defer srv.Close()
//
// Endpoints:
//
//	/metrics      Prometheus text exposition of the driver's registry
//	              snapshot merged with the plane's own slo.* and
//	              telemetry.tracer.* instruments
//	/healthz      liveness ("ok")
//	/statusz      JSON RM state: in-flight jobs, per-resource occupancy
//	              and reservations, FeasCache hit rate, solver
//	              fallback/budget counters, per-reason admission
//	              histograms, tracer drop counts, SLO burn rates
//	/explainz     ?req=N: the request's decision-provenance narrative
//	              reconstructed from the tracer's ring (JSON; ?text=1
//	              renders the tracetool-explain text report). Needs the
//	              run recorded with provenance on to carry full detail.
//	/trace/tail   live structured-event stream (NDJSON; SSE with
//	              Accept: text/event-stream or ?sse=1) from a bounded
//	              non-blocking telemetry.Subscriber tap
//	/debug/pprof  stdlib profiling handlers
//
// The plane is clocked by the simulator's virtual time, not wall time:
// sim.Config.StateProbe hands it a StateSample at every admission
// decision, and a Snapshotter throttles state publication to a
// virtual-time cadence. The same plane therefore serves identically under
// the discrete-event simulator today and under wall-clock serving later —
// only the probe cadence changes.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"predrm/internal/sim"
	"predrm/internal/telemetry"
	"predrm/internal/traceview"
)

// Options configures a Plane.
type Options struct {
	// Snapshot supplies the driver's live metrics for /metrics and
	// /statusz (typically Registry.Snapshot of the run's registry). Nil
	// is allowed: only the plane's own instruments are exposed.
	Snapshot func() *telemetry.Snapshot
	// Tracer is tapped by /trace/tail and read for drop counters. Nil
	// disables tailing (the endpoint answers 503).
	Tracer *telemetry.Tracer
	// SLO parameterises the burn-rate tracker (zero value = defaults).
	SLO SLOConfig
	// SnapshotInterval throttles RM-state publication to one sample per
	// interval of simulated time (0 publishes every probe). SLO windows
	// always see every probe; the final end-of-run sample is always
	// published.
	SnapshotInterval float64
	// TailBuffer is the default per-connection subscriber buffer for
	// /trace/tail (0 = telemetry.DefaultSubscriberBuffer; overridable
	// per request with ?buf=N).
	TailBuffer int
}

// Plane is the mounted introspection state. Create with NewPlane; all
// methods are safe for concurrent use.
type Plane struct {
	opts    Options
	reg     *telemetry.Registry // plane-owned instruments (slo.*, tracer gauges)
	slo     *SLO
	snap    Snapshotter
	state   atomic.Pointer[sim.StateSample]
	started time.Time
	mux     *http.ServeMux
}

// NewPlane builds a plane around the driver's telemetry handles.
func NewPlane(opts Options) *Plane {
	p := &Plane{
		opts:    opts,
		reg:     telemetry.NewRegistry(),
		snap:    Snapshotter{Interval: opts.SnapshotInterval},
		started: time.Now(),
	}
	p.slo = NewSLO(opts.SLO, p.reg)
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("/", p.handleIndex)
	p.mux.HandleFunc("/metrics", p.handleMetrics)
	p.mux.HandleFunc("/healthz", p.handleHealthz)
	p.mux.HandleFunc("/statusz", p.handleStatusz)
	p.mux.HandleFunc("/explainz", p.handleExplainz)
	p.mux.HandleFunc("/trace/tail", p.handleTail)
	p.mux.HandleFunc("/debug/pprof/", pprof.Index)
	p.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	p.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	p.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	p.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return p
}

// Probe is the sim.Config.StateProbe hook: it feeds the SLO windows with
// every sample and publishes the RM state on the snapshotter's
// virtual-time cadence (always for the final Req == -1 sample).
func (p *Plane) Probe(s sim.StateSample) {
	p.slo.Record(s.Time, s.Requests, s.Rejected, s.Finished, s.DeadlineMisses)
	if s.Req >= 0 && !p.snap.Due(s.Time) {
		return
	}
	// The simulator may reuse the sample's backing storage; keep a copy.
	s.Resources = append([]sim.ResourceSample(nil), s.Resources...)
	p.state.Store(&s)
}

// SLO exposes the plane's burn-rate tracker (for end-of-run summaries).
func (p *Plane) SLO() *SLO { return p.slo }

// Handler returns the plane's HTTP handler (also usable without Serve,
// e.g. mounted into a larger mux or an httptest server).
func (p *Plane) Handler() http.Handler { return p.mux }

// Close terminates open /trace/tail streams by closing the tracer's
// subscribers. Call when the observed run is finished.
func (p *Plane) Close() {
	if p.opts.Tracer != nil {
		p.opts.Tracer.CloseSubscribers()
	}
}

// ownSnapshot refreshes the plane-owned tracer gauges and snapshots the
// plane registry.
func (p *Plane) ownSnapshot() *telemetry.Snapshot {
	if t := p.opts.Tracer; t != nil {
		p.reg.Gauge("telemetry.tracer.dropped").Set(float64(t.Dropped()))
		p.reg.Gauge("telemetry.tracer.fanout_dropped").Set(float64(t.FanoutDropped()))
		p.reg.Gauge("telemetry.tracer.subscribers").Set(float64(t.Subscribers()))
	}
	return p.reg.Snapshot()
}

// driverSnapshot returns the driver's metrics, or nil.
func (p *Plane) driverSnapshot() *telemetry.Snapshot {
	if p.opts.Snapshot == nil {
		return nil
	}
	return p.opts.Snapshot()
}

func (p *Plane) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `predrm ops server
  /metrics      Prometheus text exposition
  /healthz      liveness
  /statusz      JSON RM state + SLO burn rates
  /explainz     ?req=N decision-provenance narrative (&text=1 for text)
  /trace/tail   live event stream (NDJSON; SSE with Accept: text/event-stream)
  /debug/pprof  profiling
`)
}

func (p *Plane) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (p *Plane) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Driver snapshot first, plane-owned second: on name collisions
	// (telemetry.tracer.dropped is also set by sim.Run at run end) the
	// plane's live reading wins in the merge.
	snap := telemetry.Merge(p.driverSnapshot(), p.ownSnapshot())
	w.Header().Set("Content-Type", ContentType)
	if err := WritePrometheus(w, snap); err != nil {
		// Headers are gone; all we can do is stop writing.
		return
	}
}

// Status is the /statusz document.
type Status struct {
	// UptimeSeconds is wall-clock time since the plane was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RM is the last published state sample (null before the first probe).
	RM *sim.StateSample `json:"rm"`
	// SLO carries the current burn-rate readings.
	SLO SLOReport `json:"slo"`
	// FeasCache summarises the exact solver's cross-activation pruning
	// cache (zero when the heuristic engine is running).
	FeasCache CacheStatus `json:"feascache"`
	// HeuristicCache summarises the heuristic's probe cache
	// (core.Heuristic.Cache; zero unless warm-starting a heuristic engine).
	HeuristicCache CacheStatus `json:"heuristic_cache"`
	// Warmstart reports cross-activation warm-start activity: repair
	// attempts and outcomes plus the warm bound's pruning work.
	Warmstart WarmstartStatus `json:"warmstart"`
	// Solver carries the resilience chain's fallback/budget counters.
	Solver SolverStatus `json:"solver"`
	// Reasons histograms the enumerated admission-decision reasons seen so
	// far (from the sim.admit_reason.* / sim.reject_reason.* counters;
	// empty maps until the driver records decisions).
	Reasons ReasonStatus `json:"reasons"`
	// Tracer reports event-loss accounting for the ring and the fan-out.
	Tracer TracerStatus `json:"tracer"`
}

// CacheStatus mirrors sched.CacheStats as exposed through telemetry.
type CacheStatus struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hit_rate"`
	Evictions int64   `json:"evictions"`
}

// WarmstartStatus aggregates the exact.warmstart.* and core.warmstart.*
// counters: how often the previous activation's mapping was repaired into
// a warm seed, how often repair fell back, and how many subtrees the warm
// bound cut that the incumbent bound had missed.
type WarmstartStatus struct {
	Attempts       int64   `json:"attempts"`
	Seeded         int64   `json:"seeded"`
	SeedRate       float64 `json:"seed_rate"`
	RepairFailed   int64   `json:"repair_failed"`
	BoundCuts      int64   `json:"bound_cuts"`
	HeuristicFails int64   `json:"heuristic_repair_failed"`
}

// SolverStatus aggregates solver activity and resilience counters.
type SolverStatus struct {
	ExactSolves     int64 `json:"exact_solves"`
	ExactTruncated  int64 `json:"exact_truncated"`
	Fallbacks       int64 `json:"fallbacks"`
	StageErrors     int64 `json:"stage_errors"`
	BudgetExhausted int64 `json:"budget_exhausted"`
	RejectOnly      int64 `json:"reject_only"`
}

// ReasonStatus breaks admission decisions down by their enumerated
// telemetry reason.
type ReasonStatus struct {
	Admit  map[string]int64 `json:"admit"`
	Reject map[string]int64 `json:"reject"`
}

// TracerStatus reports event-loss accounting.
type TracerStatus struct {
	RingDropped   int64 `json:"ring_dropped"`
	FanoutDropped int64 `json:"fanout_dropped"`
	Subscribers   int   `json:"subscribers"`
}

// CurrentStatus assembles the /statusz document (exported for the
// end-of-run summary and tests).
func (p *Plane) CurrentStatus() Status {
	st := Status{
		UptimeSeconds: time.Since(p.started).Seconds(),
		RM:            p.state.Load(),
		SLO:           p.slo.Report(),
	}
	if snap := p.driverSnapshot(); snap != nil {
		c := snap.Counters
		hits, misses := c["exact.cache.hits"], c["exact.cache.misses"]
		st.FeasCache = CacheStatus{
			Hits:      hits,
			Misses:    misses,
			HitRate:   finiteOr(float64(hits)/float64(hits+misses), 0),
			Evictions: c["exact.cache.evictions"],
		}
		hHits, hMisses := c["core.cache.hits"], c["core.cache.misses"]
		st.HeuristicCache = CacheStatus{
			Hits:    hHits,
			Misses:  hMisses,
			HitRate: finiteOr(float64(hHits)/float64(hHits+hMisses), 0),
		}
		st.Warmstart = WarmstartStatus{
			Attempts:       c["exact.warmstart.attempts"],
			Seeded:         c["exact.warmstart.seeded"],
			SeedRate:       finiteOr(float64(c["exact.warmstart.seeded"])/float64(c["exact.warmstart.attempts"]), 0),
			RepairFailed:   c["exact.warmstart.repair_fail"],
			BoundCuts:      c["exact.warmstart.bound_cuts"],
			HeuristicFails: c["core.warmstart.repair_fail"],
		}
		st.Solver = SolverStatus{
			ExactSolves:     c["exact.solves"],
			ExactTruncated:  c["exact.truncated"],
			Fallbacks:       c["resilience.fallbacks"],
			StageErrors:     c["resilience.stage_errors"],
			BudgetExhausted: c["resilience.budget_exhausted"],
			RejectOnly:      c["resilience.reject_only"],
		}
		st.Reasons = ReasonStatus{
			Admit:  reasonCounters(c, "sim.admit_reason."),
			Reject: reasonCounters(c, "sim.reject_reason."),
		}
	}
	if t := p.opts.Tracer; t != nil {
		st.Tracer = TracerStatus{
			RingDropped:   t.Dropped(),
			FanoutDropped: t.FanoutDropped(),
			Subscribers:   t.Subscribers(),
		}
	}
	return st
}

func (p *Plane) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p.CurrentStatus())
}

// reasonCounters extracts the counters under one reason-histogram prefix.
func reasonCounters(c map[string]int64, prefix string) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range c {
		if strings.HasPrefix(name, prefix) {
			out[strings.TrimPrefix(name, prefix)] = v
		}
	}
	return out
}

// handleExplainz answers "why was request N admitted/rejected?" live: it
// rebuilds the timeline from the tracer's ring and renders the request's
// decision-provenance record. The ring bounds the lookback — requests
// whose decision events were overwritten answer 404.
func (p *Plane) handleExplainz(w http.ResponseWriter, r *http.Request) {
	t := p.opts.Tracer
	if t == nil {
		http.Error(w, "no tracer attached", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query().Get("req")
	if q == "" {
		http.Error(w, "explainz requires ?req=<request id>", http.StatusBadRequest)
		return
	}
	req, err := strconv.Atoi(q)
	if err != nil {
		http.Error(w, fmt.Sprintf("req %q is not an integer", q), http.StatusBadRequest)
		return
	}
	tl := traceview.BuildTimeline(&traceview.Decoded{Events: t.Events()})
	x, err := traceview.Explain(tl, req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("text") == "1" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = traceview.WriteExplanation(w, x)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(x)
}

// handleTail streams live events. The subscriber is bounded and
// non-blocking on the emitting side: a slow client loses events (counted
// on /statusz and /metrics) instead of stalling the run.
func (p *Plane) handleTail(w http.ResponseWriter, r *http.Request) {
	t := p.opts.Tracer
	if t == nil {
		http.Error(w, "no tracer attached", http.StatusServiceUnavailable)
		return
	}
	buf := p.opts.TailBuffer
	if s := r.URL.Query().Get("buf"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			http.Error(w, "buf must be a positive integer", http.StatusBadRequest)
			return
		}
		buf = n
	}
	sse := r.URL.Query().Get("sse") == "1" ||
		r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers before the first event arrives
	}

	sub := t.Subscribe(buf)
	defer sub.Close()
	enc := json.NewEncoder(w)
	for {
		select {
		case e, ok := <-sub.Events():
			if !ok {
				// Run finished (Plane.Close). SSE clients get a terminal
				// event so they can tell a clean end from a severed
				// connection; NDJSON stays pure event lines.
				if sse {
					_, _ = fmt.Fprint(w, "event: end\ndata: {}\n\n")
					if flusher != nil {
						flusher.Flush()
					}
				}
				return
			}
			if sse {
				if _, err := fmt.Fprint(w, "data: "); err != nil {
					return
				}
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if sse {
				if _, err := fmt.Fprint(w, "\n"); err != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// Server is a Plane bound to a listener.
type Server struct {
	plane *Plane
	ln    net.Listener
	srv   *http.Server

	// ShutdownTimeout bounds Close's graceful drain before it falls back
	// to severing connections (default 2s).
	ShutdownTimeout time.Duration
}

// Serve binds the plane to addr (":0" picks a free port) and serves it in
// the background.
func Serve(addr string, p *Plane) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{plane: p, ln: ln, srv: &http.Server{Handler: p.Handler()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close ends open tail streams and stops the server. Closing the plane
// unsubscribes every tailer, so the graceful Shutdown that follows lets
// each stream flush its terminal event and return before the listener
// goes away; only if that takes longer than ShutdownTimeout are the
// remaining connections severed.
func (s *Server) Close() error {
	s.plane.Close()
	d := s.ShutdownTimeout
	if d <= 0 {
		d = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
