package obs

import (
	"math"
	"testing"

	"predrm/internal/telemetry"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestSLOWindows checks the windowed rates and burn arithmetic against
// hand-computed values.
func TestSLOWindows(t *testing.T) {
	s := NewSLO(SLOConfig{
		RejectionTarget: 0.5,
		MissTarget:      0.1,
		Windows:         []float64{10},
	}, nil)
	s.Record(0, 0, 0, 0, 0)
	s.Record(5, 10, 2, 4, 0)
	s.Record(12, 20, 8, 10, 1)

	rep := s.Report()
	if !approx(rep.TotalRejectionRate, 0.4) {
		t.Fatalf("total rejection rate %v, want 0.4", rep.TotalRejectionRate)
	}
	if !approx(rep.TotalMissRate, 0.1) {
		t.Fatalf("total miss rate %v, want 0.1", rep.TotalMissRate)
	}
	if len(rep.Windows) != 1 {
		t.Fatalf("got %d windows", len(rep.Windows))
	}
	w := rep.Windows[0]
	// Window [2, 12]: baseline is the t=0 sample (newest at or before t=2),
	// so the deltas cover the whole run: 8/20 rejected, 1/10 missed.
	if !approx(w.RejectionRate, 0.4) || !approx(w.RejectionBurn, 0.8) {
		t.Fatalf("rejection rate/burn %v/%v, want 0.4/0.8", w.RejectionRate, w.RejectionBurn)
	}
	if !approx(w.MissRate, 0.1) || !approx(w.MissBurn, 1.0) {
		t.Fatalf("miss rate/burn %v/%v, want 0.1/1.0", w.MissRate, w.MissBurn)
	}
}

// TestSLOWindowSlides verifies that samples older than the window stop
// influencing the windowed rate while totals keep the whole history.
func TestSLOWindowSlides(t *testing.T) {
	s := NewSLO(SLOConfig{RejectionTarget: 0.5, Windows: []float64{10}}, nil)
	// A burst of rejections early, then a long clean stretch.
	s.Record(0, 10, 10, 0, 0)
	s.Record(100, 110, 10, 0, 0)
	rep := s.Report()
	if !approx(rep.TotalRejectionRate, 10.0/110) {
		t.Fatalf("total %v, want %v", rep.TotalRejectionRate, 10.0/110)
	}
	w := rep.Windows[0]
	// The t=0 burst is far outside the [90, 100] window; the baseline is
	// the burst sample itself, so the windowed delta is all-clean.
	if !approx(w.RejectionRate, 0) || !approx(w.RejectionBurn, 0) {
		t.Fatalf("windowed rate/burn %v/%v, want 0/0", w.RejectionRate, w.RejectionBurn)
	}
}

// TestSLOPrunesHistory checks that old samples are discarded but one
// boundary sample survives to anchor window deltas.
func TestSLOPrunesHistory(t *testing.T) {
	s := NewSLO(SLOConfig{Windows: []float64{10}}, nil)
	for i := 0; i <= 100; i++ {
		s.Record(float64(i), i, 0, 0, 0)
	}
	s.mu.Lock()
	n := len(s.samples)
	oldest := s.samples[0].t
	s.mu.Unlock()
	if n > 13 {
		t.Fatalf("history holds %d samples after pruning, want ~window+1", n)
	}
	if oldest > 90 {
		t.Fatalf("oldest retained sample t=%v; the window boundary (90) lost its anchor", oldest)
	}
}

// TestSLOTimeRegressionResets: virtual time restarting (a new simulated
// run in a sweep) must clear the window history instead of mixing runs.
func TestSLOTimeRegressionResets(t *testing.T) {
	s := NewSLO(SLOConfig{RejectionTarget: 0.5, Windows: []float64{10}}, nil)
	s.Record(100, 50, 25, 0, 0)
	s.Record(0, 4, 0, 0, 0) // new run: time went backwards
	rep := s.Report()
	if !approx(rep.TotalRejectionRate, 0) {
		t.Fatalf("total rejection rate %v after reset, want 0 (stale run leaked)", rep.TotalRejectionRate)
	}
}

// TestSLOGauges checks that Record publishes the per-window gauges on the
// registry under the documented names.
func TestSLOGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSLO(SLOConfig{RejectionTarget: 0.5, Windows: []float64{10}}, reg)
	s.Record(0, 0, 0, 0, 0)
	s.Record(1, 10, 5, 0, 0)
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"slo.rejection.rate_w10":     0.5,
		"slo.rejection.burn_w10":     1.0,
		"slo.deadline_miss.rate_w10": 0,
		"slo.deadline_miss.burn_w10": 0,
	} {
		g, ok := snap.Gauges[name]
		if !ok {
			t.Fatalf("gauge %q not registered", name)
		}
		if !approx(g.Value, want) {
			t.Errorf("gauge %q = %v, want %v", name, g.Value, want)
		}
	}
}

// TestSLODefaultsAndNil covers the zero-config path and the nil-receiver
// conventions.
func TestSLODefaultsAndNil(t *testing.T) {
	s := NewSLO(SLOConfig{}, nil)
	rep := s.Report()
	if rep.RejectionTarget != 0.30 || rep.MissTarget != 0.001 {
		t.Fatalf("defaults %v/%v, want 0.30/0.001", rep.RejectionTarget, rep.MissTarget)
	}
	if len(rep.Windows) != 2 || rep.Windows[0].Window != 50 || rep.Windows[1].Window != 500 {
		t.Fatalf("default windows %v", rep.Windows)
	}
	var nilSLO *SLO
	nilSLO.Record(0, 1, 1, 1, 1) // must not panic
	if got := nilSLO.Report(); got.RejectionTarget != 0 {
		t.Fatalf("nil SLO report %v", got)
	}
}
