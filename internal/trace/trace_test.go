package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/task"
)

func testSet(t *testing.T) *task.Set {
	t.Helper()
	s, err := task.Generate(platform.Default(), task.DefaultGenConfig(), rng.New(1))
	if err != nil {
		t.Fatalf("task.Generate: %v", err)
	}
	return s
}

func TestGenerateBasics(t *testing.T) {
	ts := testSet(t)
	tr, err := Generate(ts, DefaultGenConfig(VeryTight), rng.New(2))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tr.Len() != 500 {
		t.Fatalf("trace length %d, want 500", tr.Len())
	}
	if err := tr.Validate(ts); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Requests[0].Arrival != 0 {
		t.Fatalf("first arrival %v, want 0", tr.Requests[0].Arrival)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ts := testSet(t)
	a, _ := Generate(ts, DefaultGenConfig(LessTight), rng.New(5))
	b, _ := Generate(ts, DefaultGenConfig(LessTight), rng.New(5))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
}

func TestMeanInterarrival(t *testing.T) {
	ts := testSet(t)
	cfg := DefaultGenConfig(VeryTight)
	cfg.Length = 5000
	tr, err := Generate(ts, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if m := tr.MeanInterarrival(); math.Abs(m-1.2) > 0.05 {
		t.Fatalf("mean interarrival %.4f, want ~1.2", m)
	}
	empty := &Trace{Requests: []Request{{Arrival: 1, Deadline: 1}}}
	if empty.MeanInterarrival() != 0 {
		t.Fatal("single-request trace should have zero mean interarrival")
	}
}

func TestDeadlineCoefficientsWithinGroupRange(t *testing.T) {
	ts := testSet(t)
	for _, tt := range []Tightness{VeryTight, LessTight} {
		lo, hi := tt.CoeffRange()
		tr, err := Generate(ts, DefaultGenConfig(tt), rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range tr.Requests {
			ty := ts.Type(r.Type)
			// Deadline must be some executable WCET times a coefficient in
			// [lo, hi]: check that at least one resource satisfies that.
			ok := false
			for ri := range ty.WCET {
				if !ty.ExecutableOn(ri) {
					continue
				}
				c := r.Deadline / ty.WCET[ri]
				if c >= lo-1e-9 && c <= hi+1e-9 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("%v request %d: deadline %.3f matches no WCETxcoeff", tt, i, r.Deadline)
			}
		}
	}
}

func TestVTTighterThanLT(t *testing.T) {
	ts := testSet(t)
	vt, _ := Generate(ts, DefaultGenConfig(VeryTight), rng.New(8))
	lt, _ := Generate(ts, DefaultGenConfig(LessTight), rng.New(8))
	mean := func(tr *Trace) float64 {
		var s float64
		for _, r := range tr.Requests {
			s += r.Deadline
		}
		return s / float64(tr.Len())
	}
	if mean(vt) >= mean(lt) {
		t.Fatalf("VT mean deadline %.2f not tighter than LT %.2f", mean(vt), mean(lt))
	}
}

func TestGenerateGroup(t *testing.T) {
	ts := testSet(t)
	cfg := DefaultGenConfig(VeryTight)
	cfg.Length = 50
	trs, err := GenerateGroup(ts, cfg, 10, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 10 {
		t.Fatalf("got %d traces, want 10", len(trs))
	}
	if reflect.DeepEqual(trs[0], trs[1]) {
		t.Fatal("group traces identical; streams not split")
	}
	if _, err := GenerateGroup(ts, cfg, 0, rng.New(4)); err == nil {
		t.Fatal("accepted zero count")
	}
}

func TestValidateRejects(t *testing.T) {
	ts := testSet(t)
	cases := []struct {
		name string
		tr   Trace
	}{
		{"empty", Trace{}},
		{"unordered", Trace{Requests: []Request{{Arrival: 2, Type: 0, Deadline: 1}, {Arrival: 1, Type: 0, Deadline: 1}}}},
		{"bad-deadline", Trace{Requests: []Request{{Arrival: 0, Type: 0, Deadline: 0}}}},
		{"bad-type", Trace{Requests: []Request{{Arrival: 0, Type: 1000, Deadline: 1}}}},
	}
	for _, c := range cases {
		if err := c.tr.Validate(ts); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", c.name)
		}
	}
}

func TestGenConfigValidate(t *testing.T) {
	good := DefaultGenConfig(VeryTight)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []GenConfig{
		{},
		{Length: 5, InterarrivalMean: -1},
		{Length: 5, InterarrivalMean: 1, InterarrivalStd: -1},
		{Length: 5, InterarrivalMean: 1, Tightness: Tightness(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted bad config", i)
		}
	}
}

func TestTightnessString(t *testing.T) {
	if VeryTight.String() != "VT" || LessTight.String() != "LT" {
		t.Fatal("Tightness.String mismatch")
	}
	if !strings.HasPrefix(Tightness(4).String(), "Tightness(") {
		t.Fatal("unknown tightness string")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ts := testSet(t)
	cfg := DefaultGenConfig(LessTight)
	cfg.Length = 100
	tr, err := Generate(ts, cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("JSON round trip changed the trace")
	}
}

func TestFileRoundTrip(t *testing.T) {
	ts := testSet(t)
	cfg := DefaultGenConfig(VeryTight)
	cfg.Length = 20
	tr, err := Generate(ts, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("file round trip changed the trace")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("Read accepted garbage")
	}
	if _, err := Read(strings.NewReader(`{"requests":[]}`)); err == nil {
		t.Fatal("Read accepted empty trace")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("ReadFile accepted missing file")
	}
}

func TestPropertyArrivalsMonotone(t *testing.T) {
	ts := testSet(t)
	f := func(seed uint64, vt bool) bool {
		tt := LessTight
		if vt {
			tt = VeryTight
		}
		cfg := DefaultGenConfig(tt)
		cfg.Length = 200
		tr, err := Generate(ts, cfg, rng.New(seed))
		if err != nil {
			return false
		}
		for i := 1; i < tr.Len(); i++ {
			if tr.Requests[i].Arrival <= tr.Requests[i-1].Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
