package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Write serialises the trace as indented JSON to w.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Read parses a JSON trace from r and validates its ordering (without a
// task set, since the reader may not have one).
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(nil); err != nil {
		return nil, err
	}
	return &t, nil
}

// WriteFile writes the trace to the named file.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := t.Write(w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("trace: flush %s: %w", path, err)
	}
	return f.Close()
}

// ReadFile reads a trace from the named file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}
