// Package trace models request streams and implements the paper's trace
// generator (Sec 5.1): arrival times from a Gaussian interarrival process,
// uniformly random task types, and relative deadlines set to a random
// resource's WCET scaled by a tightness coefficient.
package trace

import (
	"errors"
	"fmt"

	"predrm/internal/rng"
	"predrm/internal/task"
)

// Request is one incoming request req_j: the trigger for task τ_j.
type Request struct {
	// Arrival is the absolute arrival time s_j.
	Arrival float64 `json:"arrival"`
	// Type is the task type triggered by the request.
	Type int `json:"type"`
	// Deadline is the relative deadline d_j; the absolute deadline is
	// Arrival + Deadline.
	Deadline float64 `json:"deadline"`
}

// Trace is an ordered stream of requests.
type Trace struct {
	// Requests in non-decreasing arrival order.
	Requests []Request `json:"requests"`
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// MeanInterarrival returns the average gap between consecutive arrivals.
// For traces with fewer than two requests it returns 0.
func (t *Trace) MeanInterarrival() float64 {
	if len(t.Requests) < 2 {
		return 0
	}
	span := t.Requests[len(t.Requests)-1].Arrival - t.Requests[0].Arrival
	return span / float64(len(t.Requests)-1)
}

// Validate checks ordering and referential integrity against a task set.
func (t *Trace) Validate(ts *task.Set) error {
	if len(t.Requests) == 0 {
		return errors.New("trace: empty trace")
	}
	prev := 0.0
	for i, r := range t.Requests {
		if r.Arrival < prev {
			return fmt.Errorf("trace: request %d arrives at %v before previous %v", i, r.Arrival, prev)
		}
		prev = r.Arrival
		if r.Deadline <= 0 {
			return fmt.Errorf("trace: request %d has non-positive deadline %v", i, r.Deadline)
		}
		if ts != nil && (r.Type < 0 || r.Type >= ts.Len()) {
			return fmt.Errorf("trace: request %d references unknown type %d", i, r.Type)
		}
	}
	return nil
}

// Tightness selects the deadline-coefficient range of a generated trace.
type Tightness int

const (
	// VeryTight is the paper's VT group: coefficients uniform in [1.5, 2].
	VeryTight Tightness = iota
	// LessTight is the paper's LT group: coefficients uniform in [2, 6].
	LessTight
)

// String returns the paper's group label ("VT" or "LT").
func (tt Tightness) String() string {
	switch tt {
	case VeryTight:
		return "VT"
	case LessTight:
		return "LT"
	default:
		return fmt.Sprintf("Tightness(%d)", int(tt))
	}
}

// CoeffRange returns the deadline coefficient bounds for the group.
func (tt Tightness) CoeffRange() (lo, hi float64) {
	if tt == VeryTight {
		return 1.5, 2
	}
	return 2, 6
}

// GenConfig parameterises the trace generator.
type GenConfig struct {
	// Length is the number of requests per trace (paper: 500).
	Length int
	// InterarrivalMean/Std parameterise the Gaussian increments between
	// consecutive arrivals (paper: 1.2, 0.4).
	InterarrivalMean, InterarrivalStd float64
	// Tightness selects the VT or LT deadline coefficient range.
	Tightness Tightness
}

// DefaultGenConfig returns the paper's literal Sec 5.1 parameters for the
// given tightness group.
func DefaultGenConfig(tt Tightness) GenConfig {
	return GenConfig{
		Length:           500,
		InterarrivalMean: 1.2,
		InterarrivalStd:  0.4,
		Tightness:        tt,
	}
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	switch {
	case c.Length <= 0:
		return errors.New("trace: Length must be positive")
	case c.InterarrivalMean <= 0 || c.InterarrivalStd < 0:
		return errors.New("trace: invalid interarrival distribution")
	case c.Tightness != VeryTight && c.Tightness != LessTight:
		return errors.New("trace: unknown tightness group")
	}
	return nil
}

// Generate creates one trace over the given task set, deterministically in
// r. Following Sec 5.1:
//
//   - arrivals start at 0 and advance by Gaussian(InterarrivalMean,
//     InterarrivalStd²) increments (clamped to a small positive floor so
//     time never goes backwards);
//   - each request's type is uniform over the task set;
//   - the relative deadline is RWCET×C, where RWCET is the WCET on a
//     uniformly random executable resource of that type and C is uniform in
//     the group's coefficient range.
func Generate(ts *task.Set, cfg GenConfig, r *rng.Rand) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	coeffLo, coeffHi := cfg.Tightness.CoeffRange()
	tr := &Trace{Requests: make([]Request, 0, cfg.Length)}
	now := 0.0
	floor := cfg.InterarrivalMean / 100
	for i := 0; i < cfg.Length; i++ {
		if i > 0 {
			gap := r.Gaussian(cfg.InterarrivalMean, cfg.InterarrivalStd)
			if gap < floor {
				gap = floor
			}
			now += gap
		}
		typeID := r.Intn(ts.Len())
		ty := ts.Type(typeID)
		// RWCET: WCET on a uniformly random executable resource.
		exec := make([]int, 0, len(ty.WCET))
		for ri := range ty.WCET {
			if ty.ExecutableOn(ri) {
				exec = append(exec, ri)
			}
		}
		rwcet := ty.WCET[exec[r.Intn(len(exec))]]
		deadline := rwcet * r.Uniform(coeffLo, coeffHi)
		tr.Requests = append(tr.Requests, Request{
			Arrival:  now,
			Type:     typeID,
			Deadline: deadline,
		})
	}
	return tr, nil
}

// GenerateGroup creates count traces with independent streams split from r.
func GenerateGroup(ts *task.Set, cfg GenConfig, count int, r *rng.Rand) ([]*Trace, error) {
	if count <= 0 {
		return nil, errors.New("trace: count must be positive")
	}
	out := make([]*Trace, 0, count)
	for i := 0; i < count; i++ {
		tr, err := Generate(ts, cfg, r.Split())
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}
