package telemetry

import (
	"math"
	"sort"
)

// Snapshot is a point-in-time copy of a registry's instruments, suitable
// for JSON export, merging across runs, and summarisation by
// internal/metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// GaugeSnapshot is a gauge's exported state.
type GaugeSnapshot struct {
	Value float64 `json:"value"`
	Max   float64 `json:"max"`
}

// HistogramSnapshot is a histogram's exported state. Counts has one entry
// per bucket in Bounds plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	SumSq  float64   `json:"sum_sq"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Snapshot copies the registry's current state. Nil-safe: a nil registry
// yields nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
			SumSq:  math.Float64frombits(h.sumSq.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		if hs.Count > 0 {
			hs.Min = math.Float64frombits(h.min.Load())
			hs.Max = math.Float64frombits(h.max.Load())
		}
		s.Histograms[name] = hs
	}
	return s
}

// Mean returns the average observation, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Std returns the sample standard deviation (n−1) reconstructed from the
// tracked moments, or 0 for fewer than two observations.
func (h HistogramSnapshot) Std() float64 {
	if h.Count < 2 {
		return 0
	}
	n := float64(h.Count)
	ss := h.SumSq - h.Sum*h.Sum/n
	if ss < 0 {
		ss = 0 // floating-point cancellation
	}
	return math.Sqrt(ss / (n - 1))
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation inside the containing bucket, clamped to the observed
// [Min, Max]. It returns 0 when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		lo := h.Min
		if i > 0 {
			lo = math.Max(h.Min, h.Bounds[i-1])
		}
		hi := h.Max
		if i < len(h.Bounds) {
			hi = math.Min(h.Max, h.Bounds[i])
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.Max
}

// Merge combines snapshots into a new one: counters and histogram buckets
// sum (histograms with mismatched bounds keep the first occurrence and are
// not merged further), gauge values take the last snapshot's reading while
// maxima take the overall high-water mark. Nil snapshots are skipped; the
// result is non-nil.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, g := range s.Gauges {
			prev, ok := out.Gauges[name]
			if !ok {
				out.Gauges[name] = g
				continue
			}
			prev.Value = g.Value
			if g.Max > prev.Max {
				prev.Max = g.Max
			}
			out.Gauges[name] = prev
		}
		for name, h := range s.Histograms {
			prev, ok := out.Histograms[name]
			if !ok {
				out.Histograms[name] = cloneHist(h)
				continue
			}
			if !equalBounds(prev.Bounds, h.Bounds) {
				continue
			}
			for i := range prev.Counts {
				prev.Counts[i] += h.Counts[i]
			}
			prev.Sum += h.Sum
			prev.SumSq += h.SumSq
			if h.Count > 0 {
				if prev.Count == 0 || h.Min < prev.Min {
					prev.Min = h.Min
				}
				if prev.Count == 0 || h.Max > prev.Max {
					prev.Max = h.Max
				}
			}
			prev.Count += h.Count
			out.Histograms[name] = prev
		}
	}
	return out
}

func cloneHist(h HistogramSnapshot) HistogramSnapshot {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterNames returns the snapshot's counter names, sorted, for stable
// report rendering.
func (s *Snapshot) CounterNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the snapshot's histogram names, sorted.
func (s *Snapshot) HistogramNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
