package telemetry

import (
	"encoding/json"
	"testing"
)

// TestProvenanceRecorderNilSafe exercises every hook on a nil recorder:
// the disabled path must be a pure no-op.
func TestProvenanceRecorderNilSafe(t *testing.T) {
	var r *ProvRecorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Reset()
	r.BeginAttempt(3, 1)
	r.EndAttempt(true, 1.5)
	r.Candidate(CandidateVerdict{Job: 1, Res: 2, Verdict: VerdictChosen})
	r.Pick(1, 0.5, 2)
	r.Stage(StageHop{Stage: 0, Outcome: StageServed})
	r.BB(BBStats{Nodes: 10})
	r.Remap(1, 0, 2, true)
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil recorder snapshot = %+v, want nil", s)
	}
}

// TestProvenanceRecorderAttemptStamping checks that records carry the
// attempt index of the protocol solve they belong to, and that attempts
// close with their outcome.
func TestProvenanceRecorderAttemptStamping(t *testing.T) {
	r := NewProvRecorder()
	r.Candidate(CandidateVerdict{Job: 9, Res: 0, Verdict: VerdictNotTried})
	r.BeginAttempt(5, 1)
	r.Candidate(CandidateVerdict{Job: 4, Res: 1, Verdict: VerdictEDFInfeasible})
	r.Stage(StageHop{Stage: 0, Name: "exact", Outcome: StageBudget, Nodes: 128})
	r.EndAttempt(false, 0)
	r.BeginAttempt(4, 0)
	r.Pick(4, 2.5, 3)
	r.BB(BBStats{Nodes: 77, Incumbent: 9.5})
	r.EndAttempt(true, 9.5)
	r.Remap(2, 0, 3, true)

	p := r.Snapshot()
	if len(p.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(p.Attempts))
	}
	if p.Attempts[0].Feasible || !p.Attempts[1].Feasible || p.Attempts[1].Energy != 9.5 {
		t.Fatalf("attempt outcomes wrong: %+v", p.Attempts)
	}
	if p.Candidates[0].Attempt != -1 {
		t.Fatalf("pre-protocol candidate stamped %d, want -1", p.Candidates[0].Attempt)
	}
	if p.Candidates[1].Attempt != 0 || p.Stages[0].Attempt != 0 {
		t.Fatalf("attempt-0 records stamped wrong: %+v %+v", p.Candidates[1], p.Stages[0])
	}
	if p.Picks[0].Attempt != 1 || p.BB[0].Attempt != 1 {
		t.Fatalf("attempt-1 records stamped wrong: %+v %+v", p.Picks[0], p.BB[0])
	}
	if len(p.Remaps) != 1 || p.Remaps[0] != (Remap{Job: 2, From: 0, To: 3, Charged: true}) {
		t.Fatalf("remaps = %+v", p.Remaps)
	}
}

// TestProvenanceSnapshotIndependent pins the arena contract: a snapshot
// must not alias the recorder's slices, since the tracer ring keeps
// emitted events alive across later activations that Reset and refill the
// arena.
func TestProvenanceSnapshotIndependent(t *testing.T) {
	r := NewProvRecorder()
	r.BeginAttempt(2, 0)
	r.Candidate(CandidateVerdict{Job: 1, Res: 0, Verdict: VerdictChosen})
	snap := r.Snapshot()

	r.Reset()
	r.BeginAttempt(9, 9)
	r.Candidate(CandidateVerdict{Job: 99, Res: 5, Verdict: VerdictNoCapacity})

	if len(snap.Candidates) != 1 || snap.Candidates[0].Job != 1 {
		t.Fatalf("snapshot mutated by arena reuse: %+v", snap.Candidates)
	}
	if len(snap.Attempts) != 1 || snap.Attempts[0].Jobs != 2 {
		t.Fatalf("snapshot attempts mutated: %+v", snap.Attempts)
	}
}

// TestProvenanceEventRoundTrip checks that an EvDecision event with a
// provenance record survives the JSONL encode/decode cycle, and that
// events without one stay free of a prov key.
func TestProvenanceEventRoundTrip(t *testing.T) {
	r := NewProvRecorder()
	r.BeginAttempt(3, 1)
	r.Stage(StageHop{Stage: 0, Name: "heuristic", Outcome: StageServed})
	r.EndAttempt(true, 4.25)

	e := NewEvent(1.5, EvDecision)
	e.Req = 7
	e.Reason = ReasonPlain
	e.Prov = r.Snapshot()
	buf, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Prov == nil || len(back.Prov.Stages) != 1 || back.Prov.Stages[0].Name != "heuristic" {
		t.Fatalf("provenance lost in round trip: %+v", back.Prov)
	}

	plain := NewEvent(1.5, EvAdmit)
	buf, err = json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != `{"seq":0,"t":1.5,"type":"admit","req":-1,"task":-1,"res":-1}` {
		t.Fatalf("prov-free event gained fields: %s", buf)
	}
}
