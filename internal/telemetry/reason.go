package telemetry

// Enumerated reason vocabulary. Every Event.Reason emitted by this
// repository is one of these constants; free-text reasons are not part of
// the schema. Trace consumers (internal/traceview) validate decoded events
// against KnownReason and flag foreign strings as typed diagnostics, so a
// renamed or ad-hoc reason cannot silently drift out of dashboards and
// reports.
const (
	// EvSolverReturned: the admission protocol's verdict.
	ReasonFeasible   = "feasible"
	ReasonInfeasible = "infeasible"
	ReasonError      = "error"

	// EvAdmit / EvDecision: how the request was accepted.
	ReasonWithReservation   = "with_reservation"
	ReasonPredictionDropped = "prediction_dropped"
	ReasonPlain             = "plain"

	// EvReject / EvDecision: why the request was refused. The admission
	// protocol rejects only when no feasible mapping exists after dropping
	// every prediction; the finer cause (which candidate broke, which chain
	// stage handed off) lives in the decision's provenance record.
	ReasonNoFeasibleMapping = "no_feasible_mapping"

	// EvSolverFallback: why a chain stage handed the problem off.
	ReasonPanic      = "panic"
	ReasonBudget     = "budget"
	ReasonRejectOnly = "reject_only"
	// ReasonError (above) is shared: a stage that returned an error.

	// EvJobStart / EvJobPreempt: execution lifecycle transitions.
	ReasonStart     = "start"
	ReasonResume    = "resume"
	ReasonDisplaced = "displaced"
	ReasonMigrated  = "migrated"
	ReasonPaused    = "paused"

	// EvJobFinish: critical releases are tagged; adaptive jobs carry no
	// reason.
	ReasonCritical = "critical"

	// EvFaultInjected: which fault of the plan fired.
	ReasonSolverError      = "solver_error"
	ReasonLatencySpike     = "latency_spike"
	ReasonPredictorOutage  = "predictor_outage"
	ReasonPredictorCorrupt = "predictor_corrupt"
)

// ReasonVocabulary returns the closed reason set of every event type that
// carries reasons, in schema order. Event types absent from the map never
// carry a reason.
func ReasonVocabulary() map[EventType][]string {
	return map[EventType][]string{
		EvSolverReturned: {ReasonFeasible, ReasonInfeasible, ReasonError},
		EvAdmit:          {ReasonWithReservation, ReasonPredictionDropped, ReasonPlain},
		EvReject:         {ReasonNoFeasibleMapping},
		EvDecision: {ReasonWithReservation, ReasonPredictionDropped, ReasonPlain,
			ReasonNoFeasibleMapping},
		EvSolverFallback: {ReasonError, ReasonPanic, ReasonBudget, ReasonRejectOnly},
		EvJobStart:       {ReasonStart, ReasonResume},
		EvJobPreempt:     {ReasonDisplaced, ReasonMigrated, ReasonPaused},
		EvJobFinish:      {ReasonCritical},
		EvFaultInjected: {ReasonSolverError, ReasonLatencySpike,
			ReasonPredictorOutage, ReasonPredictorCorrupt},
	}
}

// reasonSets indexes ReasonVocabulary for KnownReason.
var reasonSets = func() map[EventType]map[string]bool {
	m := make(map[EventType]map[string]bool)
	for typ, reasons := range ReasonVocabulary() {
		set := make(map[string]bool, len(reasons))
		for _, r := range reasons {
			set[r] = true
		}
		m[typ] = set
	}
	return m
}()

// KnownReason reports whether reason belongs to typ's vocabulary. The
// empty reason is always known (most event kinds carry none); a non-empty
// reason on a type with no vocabulary is unknown.
func KnownReason(typ EventType, reason string) bool {
	if reason == "" {
		return true
	}
	return reasonSets[typ][reason]
}
