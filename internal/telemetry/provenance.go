package telemetry

import "math"

// Decision provenance: the structured causal record behind one admission
// decision. Where the admit/reject events state the outcome, the
// provenance record answers *why* — which solver-chain stages ran and why
// each handed off, which candidate resources the heuristic weighed and the
// exact feasibility verdict per candidate, the regret order tasks were
// placed in, the branch-and-bound effort of the exact path, and which
// standing jobs the decision remapped.
//
// Recording is opt-in (sim.Config.Provenance) and arena-backed: solvers
// append into a ProvRecorder whose slices are reset — not reallocated —
// every activation, and the simulator snapshots the arena into the emitted
// decision event. With no recorder attached every hook is a nil-receiver
// no-op, so the decision hot path keeps its +0 allocs/op benchmark gate.

// Candidate feasibility verdicts (CandidateVerdict.Verdict).
const (
	// VerdictChosen: the job was placed on this resource.
	VerdictChosen = "chosen"
	// VerdictEDFInfeasible: the trial insert failed the EDF
	// schedulability probe; Slack and Deadline locate the breach.
	VerdictEDFInfeasible = "edf_infeasible"
	// VerdictNoCapacity: the resource's remaining window capacity K̄ no
	// longer fits the job (Algorithm 1 line 10), so it left the job's
	// feasible set before any EDF probe.
	VerdictNoCapacity = "no_capacity"
	// VerdictNotExecutable: the task type cannot run on the resource.
	VerdictNotExecutable = "not_executable"
	// VerdictNotTried: the resource stayed in the feasible set but a more
	// desirable candidate won first.
	VerdictNotTried = "not_tried"
)

// Chain-stage outcomes (StageHop.Outcome).
const (
	// StageServed: the stage produced the decision used.
	StageServed = "served"
	// StageError / StagePanic / StageBudget: why the stage handed off.
	StageError  = "error"
	StagePanic  = "panic"
	StageBudget = "budget"
	// StageRejectOnly: the chain bottomed out in the terminal reject.
	StageRejectOnly = "reject_only"
)

// CandidateVerdict records one (job, resource) consideration of the
// mapping heuristic with its specific feasibility outcome.
type CandidateVerdict struct {
	// Attempt is the admission-protocol attempt this probe belongs to
	// (index into Provenance.Attempts), or -1 outside the protocol.
	Attempt int `json:"attempt"`
	// Job is the trace id of the job being placed (negative for predicted
	// or critical planning copies).
	Job int `json:"job"`
	// Res is the candidate resource.
	Res int `json:"res"`
	// Verdict is one of the Verdict* constants.
	Verdict string `json:"verdict"`
	// Des is the Algorithm 1 desirability f_{j,i} of the candidate
	// (energy + big-M slack penalty), when the type is executable there.
	Des float64 `json:"des,omitempty"`
	// Slack is the tightest deadline slack the feasibility probe saw
	// (negative when Verdict is edf_infeasible).
	Slack float64 `json:"slack,omitempty"`
	// Deadline is the absolute deadline that broke the EDF probe, when
	// Verdict is edf_infeasible.
	Deadline float64 `json:"deadline,omitempty"`
	// Preempt reports the probe ran under preemptive EDF.
	Preempt bool `json:"preempt,omitempty"`
	// EDFPath reports the probe took the full EDF simulation instead of
	// the sorted cumulative scan (a future release was present).
	EDFPath bool `json:"edf_path,omitempty"`
}

// PickStep records one max-regret selection: job was placed next with the
// given regret (second-best minus best desirability) onto Res. A job with a
// single feasible resource has infinite regret (Algorithm 1 line 14); since
// +Inf is not representable in JSON, such steps carry Forced instead.
type PickStep struct {
	Attempt int     `json:"attempt"`
	Job     int     `json:"job"`
	Regret  float64 `json:"regret"`
	Forced  bool    `json:"forced,omitempty"`
	Res     int     `json:"res"`
}

// StageHop records one BudgetedSolver chain stage attempt.
type StageHop struct {
	Attempt int `json:"attempt"`
	// Stage is the chain index; Name its configured label (empty for the
	// synthetic terminal reject-only stage).
	Stage int    `json:"stage"`
	Name  string `json:"name,omitempty"`
	// Outcome is one of the Stage* constants.
	Outcome string `json:"outcome"`
	// Err carries the stage's error (or recovered panic) text.
	Err string `json:"err,omitempty"`
	// Nodes is the budgeted node spend of a BudgetAware stage.
	Nodes int `json:"nodes,omitempty"`
	// WallNs is the stage's measured wall-clock spend (nondeterministic;
	// golden tests must clear it like Event.WallNs).
	WallNs int64 `json:"wall_ns,omitempty"`
}

// Attempt records one admission-protocol solve: the Sec 4.1 loop solves
// with all predictions first and re-solves as it drops them.
type Attempt struct {
	// Jobs is the sub-problem size; Predicted how many predicted planning
	// jobs it still contained.
	Jobs      int `json:"jobs"`
	Predicted int `json:"predicted"`
	// Feasible and Energy report the solve's outcome.
	Feasible bool    `json:"feasible"`
	Energy   float64 `json:"energy,omitempty"`
}

// BBStats records one exact (branch-and-bound) solve's search effort.
type BBStats struct {
	Attempt int `json:"attempt"`
	// Nodes expanded; Truncated when the budget cut the search short.
	Nodes     int  `json:"nodes"`
	Truncated bool `json:"truncated,omitempty"`
	// Tasks/Workers describe the parallel split (0 = serial path).
	Tasks   int `json:"tasks,omitempty"`
	Workers int `json:"workers,omitempty"`
	// CacheHits/CacheMisses are the FeasCache probe counts of this solve.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// Incumbent is the best energy found (0 when no feasible mapping).
	Incumbent float64 `json:"incumbent,omitempty"`
}

// Remap records one standing job the decision moved, relative to the
// previous activation's mapping.
type Remap struct {
	Job  int `json:"job"`
	From int `json:"from"`
	To   int `json:"to"`
	// Charged reports whether the move cost migration energy (started
	// jobs, or any move under ChargeAlways).
	Charged bool `json:"charged,omitempty"`
}

// Provenance is the full causal record of one admission decision, carried
// by an EvDecision event.
type Provenance struct {
	// Attempts are the admission protocol's solves, in order.
	Attempts []Attempt `json:"attempts,omitempty"`
	// Stages are the solver-chain hops across all attempts.
	Stages []StageHop `json:"stages,omitempty"`
	// Picks is the regret-order placement sequence.
	Picks []PickStep `json:"picks,omitempty"`
	// Candidates are the per-(job, resource) feasibility verdicts.
	Candidates []CandidateVerdict `json:"candidates,omitempty"`
	// BB holds the exact solver's per-solve search statistics.
	BB []BBStats `json:"bb,omitempty"`
	// Remaps are the standing-mapping deltas vs the previous activation.
	Remaps []Remap `json:"remaps,omitempty"`
}

// ProvRecorder is the arena provenance sinks record into. A nil recorder
// is a no-op (every method nil-receiver-safe), which is how the hot path
// stays allocation-free when provenance is off; a live recorder reuses its
// slices across activations via Reset. Like the solvers that feed it, a
// recorder is not safe for concurrent use.
type ProvRecorder struct {
	prov    Provenance
	attempt int
}

// NewProvRecorder returns an empty recorder.
func NewProvRecorder() *ProvRecorder {
	return &ProvRecorder{attempt: -1}
}

// Enabled reports whether recording is live; sinks guard any non-trivial
// bookkeeping (explain-mode feasibility probes, wall timers) behind it.
func (r *ProvRecorder) Enabled() bool { return r != nil }

// Reset empties the arena for the next activation, retaining capacity.
func (r *ProvRecorder) Reset() {
	if r == nil {
		return
	}
	r.prov.Attempts = r.prov.Attempts[:0]
	r.prov.Stages = r.prov.Stages[:0]
	r.prov.Picks = r.prov.Picks[:0]
	r.prov.Candidates = r.prov.Candidates[:0]
	r.prov.BB = r.prov.BB[:0]
	r.prov.Remaps = r.prov.Remaps[:0]
	r.attempt = -1
}

// BeginAttempt opens the next admission-protocol attempt; subsequent
// records are stamped with its index.
func (r *ProvRecorder) BeginAttempt(jobs, predicted int) {
	if r == nil {
		return
	}
	r.prov.Attempts = append(r.prov.Attempts, Attempt{Jobs: jobs, Predicted: predicted})
	r.attempt = len(r.prov.Attempts) - 1
}

// EndAttempt closes the current attempt with the solve's outcome.
func (r *ProvRecorder) EndAttempt(feasible bool, energy float64) {
	if r == nil || r.attempt < 0 {
		return
	}
	a := &r.prov.Attempts[r.attempt]
	a.Feasible = feasible
	a.Energy = energy
}

// Candidate appends one feasibility verdict, stamped with the current
// attempt.
func (r *ProvRecorder) Candidate(c CandidateVerdict) {
	if r == nil {
		return
	}
	c.Attempt = r.attempt
	r.prov.Candidates = append(r.prov.Candidates, c)
}

// Pick appends one max-regret placement step. An infinite regret (single
// feasible resource) is normalised to the JSON-safe Forced flag.
func (r *ProvRecorder) Pick(job int, regret float64, res int) {
	if r == nil {
		return
	}
	s := PickStep{Attempt: r.attempt, Job: job, Regret: regret, Res: res}
	if math.IsInf(regret, 1) {
		s.Regret, s.Forced = 0, true
	}
	r.prov.Picks = append(r.prov.Picks, s)
}

// Stage appends one solver-chain hop.
func (r *ProvRecorder) Stage(h StageHop) {
	if r == nil {
		return
	}
	h.Attempt = r.attempt
	r.prov.Stages = append(r.prov.Stages, h)
}

// BB appends one exact-solve search record.
func (r *ProvRecorder) BB(b BBStats) {
	if r == nil {
		return
	}
	b.Attempt = r.attempt
	r.prov.BB = append(r.prov.BB, b)
}

// Remap appends one standing-mapping delta.
func (r *ProvRecorder) Remap(job, from, to int, charged bool) {
	if r == nil {
		return
	}
	r.prov.Remaps = append(r.prov.Remaps, Remap{Job: job, From: from, To: to, Charged: charged})
}

// Snapshot deep-copies the arena into an independent record for emission.
// The copy is what makes arena reuse safe: the tracer's ring (and any
// subscriber) holds events beyond the activation that produced them.
func (r *ProvRecorder) Snapshot() *Provenance {
	if r == nil {
		return nil
	}
	p := &Provenance{}
	if len(r.prov.Attempts) > 0 {
		p.Attempts = append([]Attempt(nil), r.prov.Attempts...)
	}
	if len(r.prov.Stages) > 0 {
		p.Stages = append([]StageHop(nil), r.prov.Stages...)
	}
	if len(r.prov.Picks) > 0 {
		p.Picks = append([]PickStep(nil), r.prov.Picks...)
	}
	if len(r.prov.Candidates) > 0 {
		p.Candidates = append([]CandidateVerdict(nil), r.prov.Candidates...)
	}
	if len(r.prov.BB) > 0 {
		p.BB = append([]BBStats(nil), r.prov.BB...)
	}
	if len(r.prov.Remaps) > 0 {
		p.Remaps = append([]Remap(nil), r.prov.Remaps...)
	}
	return p
}

// ProvenanceAware is implemented by solvers that can record decision
// provenance. The simulator attaches its recorder before a run, exactly
// like Instrumentable and AttachMetrics; chain solvers forward the
// recorder to their stages.
type ProvenanceAware interface {
	AttachProvenance(*ProvRecorder)
}
