package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a get-or-create store of named instruments. A nil *Registry
// hands out nil instruments, so a disabled telemetry path costs one nil
// check per operation. A non-nil Registry and all its instruments are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = newGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds must be sorted ascending; an implicit
// +Inf overflow bucket is added). If the histogram already exists the
// bounds argument is ignored. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. Nil-safe.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written float value with a tracked maximum.
type Gauge struct {
	bits atomic.Uint64 // current value
	max  atomic.Uint64 // high-water mark
}

func newGauge() *Gauge {
	g := &Gauge{}
	g.max.Store(math.Float64bits(math.Inf(-1)))
	return g
}

// Set stores v and raises the high-water mark. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	casMax(&g.max, v)
}

// Value returns the last Set value. Nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Max returns the high-water mark (0 before the first Set). Nil-safe.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	m := math.Float64frombits(g.max.Load())
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Histogram counts observations into fixed buckets and tracks count, sum,
// sum of squares, min, and max, enabling mean/std/quantile estimates
// without storing observations.
type Histogram struct {
	bounds []float64      // ascending upper bounds; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	sumSq  atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits, +Inf initially
	max    atomic.Uint64 // float64 bits, -Inf initially
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records v. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; len(bounds) = overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	casAdd(&h.sum, v)
	casAdd(&h.sumSq, v*v)
	casMin(&h.min, v)
	casMax(&h.max, v)
}

// Count returns the number of observations. Nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// casAdd atomically adds v to the float64 stored in bits.
func casAdd(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// casMin atomically lowers the float64 stored in bits to v if smaller.
func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casMax atomically raises the float64 stored in bits to v if larger.
func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// LatencyBuckets are the default wall-clock histogram bounds, in seconds:
// a 1-2.5-5 ladder from 1µs to 10s.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// CountBuckets are default bounds for small cardinalities (jobs per
// problem, active jobs, …).
var CountBuckets = []float64{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233}

// NodeBuckets are default bounds for search-tree sizes (branch-and-bound
// nodes per solve).
var NodeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6}
