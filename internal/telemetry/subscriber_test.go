package telemetry

import (
	"sync"
	"testing"
)

func ev(t float64) Event { return NewEvent(t, EvArrival) }

// TestSubscriberOrder verifies that a draining subscriber sees every
// emitted event, in emission order, with the tracer-assigned sequence
// numbers.
func TestSubscriberOrder(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	sub := tr.Subscribe(16)
	for i := 0; i < 10; i++ {
		tr.Emit(ev(float64(i)))
	}
	sub.Close()
	var got int64
	for e := range sub.Events() {
		if e.Seq != got {
			t.Fatalf("event %d: seq %d", got, e.Seq)
		}
		if e.T != float64(got) {
			t.Fatalf("event %d: t=%v", got, e.T)
		}
		got++
	}
	if got != 10 {
		t.Fatalf("received %d events, want 10", got)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("dropped %d, want 0", d)
	}
}

// TestSubscriberNonBlockingDrop fills a tiny buffer without draining:
// Emit must keep returning (this test would deadlock otherwise) and the
// overflow must be counted on the subscriber and the tracer total.
func TestSubscriberNonBlockingDrop(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	sub := tr.Subscribe(2)
	for i := 0; i < 10; i++ {
		tr.Emit(ev(float64(i))) // no reader: events 2..9 overflow
	}
	if d := sub.Dropped(); d != 8 {
		t.Fatalf("subscriber dropped %d, want 8", d)
	}
	if d := tr.FanoutDropped(); d != 8 {
		t.Fatalf("tracer fan-out dropped %d, want 8", d)
	}
	sub.Close()
	var kept []Event
	for e := range sub.Events() {
		kept = append(kept, e)
	}
	if len(kept) != 2 || kept[0].Seq != 0 || kept[1].Seq != 1 {
		t.Fatalf("kept %v, want the first two events", kept)
	}
	// Ring drops are a separate ledger: nothing overflowed the ring here.
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("ring dropped %d, want 0", d)
	}
}

// TestSubscriberDetach checks that a closed subscriber stops receiving
// and that emission continues unharmed for the remaining ones.
func TestSubscriberDetach(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	a := tr.Subscribe(16)
	b := tr.Subscribe(16)
	tr.Emit(ev(0))
	a.Close()
	a.Close() // idempotent
	tr.Emit(ev(1))
	if n := tr.Subscribers(); n != 1 {
		t.Fatalf("subscribers %d, want 1", n)
	}
	var aGot int
	for range a.Events() {
		aGot++
	}
	if aGot != 1 {
		t.Fatalf("closed subscriber saw %d events, want 1", aGot)
	}
	b.Close()
	var bGot int
	for range b.Events() {
		bGot++
	}
	if bGot != 2 {
		t.Fatalf("live subscriber saw %d events, want 2", bGot)
	}
}

// TestCloseSubscribers verifies the tracer-side shutdown: every channel
// closes, the list empties, and a later Close on a subscriber is a no-op.
func TestCloseSubscribers(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	a := tr.Subscribe(4)
	b := tr.Subscribe(4)
	tr.Emit(ev(0))
	tr.CloseSubscribers()
	if n := tr.Subscribers(); n != 0 {
		t.Fatalf("subscribers %d after CloseSubscribers, want 0", n)
	}
	for _, sub := range []*Subscriber{a, b} {
		var got int
		for range sub.Events() {
			got++
		}
		if got != 1 {
			t.Fatalf("subscriber saw %d events, want 1", got)
		}
		sub.Close() // must not panic on the already-closed channel
	}
	tr.Emit(ev(1)) // no subscribers left; must not panic
}

// TestSubscriberNilSafety covers the nil-tracer conventions drivers rely
// on: tracing disabled means every tap operation is a no-op.
func TestSubscriberNilSafety(t *testing.T) {
	var tr *Tracer
	if sub := tr.Subscribe(8); sub != nil {
		t.Fatalf("nil tracer returned subscriber %v", sub)
	}
	if n := tr.Subscribers(); n != 0 {
		t.Fatalf("nil tracer has %d subscribers", n)
	}
	if d := tr.FanoutDropped(); d != 0 {
		t.Fatalf("nil tracer fan-out dropped %d", d)
	}
	tr.CloseSubscribers()
}

// TestSubscriberConcurrent hammers the tap from several emitters while
// subscribers attach, drain, and detach — run under -race this pins the
// locking contract (fan-out under the tracer mutex, close-once).
func TestSubscriberConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	const emitters, events = 4, 200
	var emit, drain sync.WaitGroup
	for g := 0; g < emitters; g++ {
		emit.Add(1)
		go func() {
			defer emit.Done()
			for i := 0; i < events; i++ {
				tr.Emit(ev(float64(i)))
			}
		}()
	}
	for s := 0; s < 3; s++ {
		sub := tr.Subscribe(8) // attach before CloseSubscribers can run
		drain.Add(1)
		go func() {
			defer drain.Done()
			n := 0
			for range sub.Events() {
				if n++; n == 50 {
					sub.Close() // detach mid-stream, then drain the close
				}
			}
		}()
	}
	emit.Wait()
	tr.CloseSubscribers() // unblocks any subscriber still short of 50
	drain.Wait()
	total := int64(emitters * events)
	if got := tr.Dropped() + int64(tr.Len()); got != total {
		t.Fatalf("ring accounting: dropped+buffered = %d, want %d", got, total)
	}
}
