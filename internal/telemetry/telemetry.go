// Package telemetry is the repository's observability layer: a structured
// event tracer, a dependency-free metrics registry (counters, gauges,
// fixed-bucket histograms), and a wall-clock timer helper for attributing
// runtime between the solver, the schedulability machinery, and trace
// advancement.
//
// Everything is nil-safe by design: the zero value of every handle — a nil
// *Tracer, *Registry, *Counter, *Gauge, or *Histogram — is a no-op whose
// methods return immediately, so instrumented code paths cost one nil
// check when telemetry is disabled. This is what lets internal/sim keep
// its event loop uninstrumented-fast while still being fully traceable
// (see BenchmarkRunWithTelemetry at the repository root).
//
// Event schema (JSONL, one object per line when a sink is attached):
//
//	{"seq":12,"t":3.25,"type":"solver_returned","req":4,"task":-1,"res":-1,
//	 "value":18.7,"wall_ns":41250,"reason":"feasible"}
//
// Field conventions: t is simulated time; req/task/res are -1 when the
// event is not scoped to a request, task type, or resource; value carries
// the event-specific magnitude (deadline, energy, job count, …); wall_ns
// is measured wall-clock time and is therefore nondeterministic; reason is
// a short machine-readable cause ("no_feasible_mapping",
// "with_reservation", …).
package telemetry

// EventType names one kind of structured simulation event.
type EventType string

// Event types emitted by internal/sim. The per-type meaning of the Event
// fields is documented in the README's Observability section.
const (
	// EvArrival: a trace request arrived. Req/Task set; Value is the
	// absolute deadline.
	EvArrival EventType = "arrival"
	// EvPrediction: the predictor issued a forecast at the activation for
	// request Req. Task is the predicted type; Value the predicted arrival.
	EvPrediction EventType = "prediction"
	// EvSolverInvoked: the admission protocol started for request Req.
	// Value is the number of jobs in the problem (active + arriving +
	// critical + predicted).
	EvSolverInvoked EventType = "solver_invoked"
	// EvSolverReturned: the admission protocol finished. WallNs is the
	// measured solver latency; Reason is "feasible", "infeasible", or
	// "error" (a fallible solver failed and the run aborted); Value is the
	// decision's energy objective when feasible.
	EvSolverReturned EventType = "solver_returned"
	// EvAdmit: request Req was accepted onto resource Res. Reason is
	// "with_reservation" when a predicted job was co-mapped,
	// "prediction_dropped" when a predictor was active but its forecast had
	// to be discarded to admit, and "plain" otherwise.
	EvAdmit EventType = "admit"
	// EvReject: request Req was rejected; Reason is the cause.
	EvReject EventType = "reject"
	// EvMigration: the job of request Req was remapped to resource Res and
	// charged; Value is the migration energy.
	EvMigration EventType = "migration"
	// EvCriticalRelease: critical task Task released onto its static
	// resource Res; Value is the release index.
	EvCriticalRelease EventType = "critical_release"
	// EvReservationPlanned: a reservation for a predicted job was installed
	// on resource Res at the activation for request Req; Value is the
	// predicted arrival.
	EvReservationPlanned EventType = "reservation_planned"
	// EvReservationHonoured: a standing reservation on resource Res was
	// held idle until the next activation (plan-based execution).
	EvReservationHonoured EventType = "reservation_honoured"
	// EvReservationBackfilled: a reservation on resource Res was planned
	// under work-conserving execution, which backfills reserved gaps
	// instead of honouring them (ablation A4).
	EvReservationBackfilled EventType = "reservation_backfilled"
	// EvJobStart: the job of request Req (negative for a critical release)
	// began or resumed executing on resource Res. Reason is "start" for the
	// first dispatch and "resume" afterwards; Value is the remaining work
	// fraction.
	EvJobStart EventType = "job_start"
	// EvJobPreempt: the job of request Req stopped executing on resource
	// Res before completing. Reason is "displaced" (another job took the
	// resource), "migrated" (the job continued on another resource), or
	// "paused" (the planned schedule idles the resource, e.g. through a
	// reservation gap); Value is the remaining work fraction. Must never
	// occur on a non-preemptable resource.
	EvJobPreempt EventType = "job_preempt"
	// EvJobFinish: the job of request Req completed on resource Res.
	// Value is the job's total consumed energy (including migrations);
	// Reason is "critical" for critical releases.
	EvJobFinish EventType = "job_finish"
	// EvSolverFallback: the budgeted solver chain (core.BudgetedSolver)
	// fell through to a deeper stage during the activation for request
	// Req. Value is the stage index fallen to (== the chain length when it
	// bottomed out in reject-only); Reason is "error" (the stage failed),
	// "panic" (the stage panicked and was recovered), "budget" (its budget
	// ran out with no feasible incumbent), or "reject_only".
	EvSolverFallback EventType = "solver_fallback"
	// EvFaultInjected: a fault plan (internal/faultinject) fired. Reason
	// identifies the fault ("solver_error", "latency_spike",
	// "predictor_outage", "predictor_corrupt"); Value carries its
	// magnitude where meaningful (spike duration, arrival shift).
	EvFaultInjected EventType = "fault_injected"
	// EvDecision: the per-activation decision-provenance record, emitted
	// after the admit/reject event of the same request when
	// sim.Config.Provenance is on. Req/Task are the request; Res is the
	// admitted resource or -1; Value is the decision energy when admitted;
	// Reason repeats the admit/reject reason; Prov carries the full causal
	// record (solver-chain hops, candidate verdicts, regret picks, B&B
	// statistics, remap deltas).
	EvDecision EventType = "decision"
)

// KnownEventTypes returns every event type internal/sim emits, in schema
// order. Trace consumers (internal/traceview) use it to flag records from
// a newer or foreign schema.
func KnownEventTypes() []EventType {
	return []EventType{
		EvArrival, EvPrediction, EvSolverInvoked, EvSolverReturned,
		EvAdmit, EvReject, EvMigration, EvCriticalRelease,
		EvReservationPlanned, EvReservationHonoured, EvReservationBackfilled,
		EvJobStart, EvJobPreempt, EvJobFinish,
		EvSolverFallback, EvFaultInjected, EvDecision,
	}
}

// Event is one structured trace record. The zero value is not meaningful;
// build events with NewEvent so the -1 conventions hold.
type Event struct {
	// Seq is the tracer-assigned emission index (starts at 0).
	Seq int64 `json:"seq"`
	// T is the simulated time of the event.
	T float64 `json:"t"`
	// Type discriminates the schema.
	Type EventType `json:"type"`
	// Req is the trace request id, or -1.
	Req int `json:"req"`
	// Task is the task type id, or -1.
	Task int `json:"task"`
	// Res is the resource id, or -1.
	Res int `json:"res"`
	// Value is the event-specific magnitude (see the type's doc).
	Value float64 `json:"value,omitempty"`
	// WallNs is measured wall-clock time in nanoseconds. It is the only
	// nondeterministic field; golden tests must clear it.
	WallNs int64 `json:"wall_ns,omitempty"`
	// Reason is a machine-readable cause from the enumerated vocabulary
	// (see reason.go and KnownReason).
	Reason string `json:"reason,omitempty"`
	// Prov is the decision-provenance record of an EvDecision event; nil
	// on every other event type (and whenever provenance is disabled).
	Prov *Provenance `json:"prov,omitempty"`
}

// NewEvent builds an event at simulated time t with the request/task/
// resource fields initialised to the -1 "not applicable" convention.
func NewEvent(t float64, typ EventType) Event {
	return Event{T: t, Type: typ, Req: -1, Task: -1, Res: -1}
}

// Instrumentable is implemented by solvers (and other components) that can
// register instruments on a metrics registry. internal/sim attaches its
// configured registry to the solver before a run.
type Instrumentable interface {
	AttachMetrics(*Registry)
}
