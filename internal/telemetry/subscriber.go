package telemetry

import (
	"sync"
	"sync/atomic"
)

// DefaultSubscriberBuffer bounds a subscriber's event channel when
// Subscribe is called with a non-positive buffer size.
const DefaultSubscriberBuffer = 4096

// Subscriber is a bounded, lossy live tap on a Tracer's event stream,
// created by Tracer.Subscribe. Events are delivered on a buffered channel;
// when the consumer falls behind and the buffer fills, Emit drops the
// event for that subscriber (counting it) instead of blocking — the
// emitting hot path must never wait on an observer.
//
// The channel is closed by Close (or Tracer.CloseSubscribers), after which
// no further events arrive. Dropped stays readable after Close.
type Subscriber struct {
	ch      chan Event
	dropped atomic.Int64
	t       *Tracer
	once    sync.Once
}

// Events returns the delivery channel. It is closed when the subscriber
// detaches (Close) or the tracer shuts its taps (CloseSubscribers).
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped returns how many events were discarded for this subscriber
// because its buffer was full.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscriber from its tracer and closes the event
// channel. Safe to call more than once and concurrently with Emit.
func (s *Subscriber) Close() {
	if s.t != nil {
		s.t.unsubscribe(s)
	}
	// The channel close must happen after detaching (emitters send only
	// while the subscriber is in the tracer's list, under the tracer's
	// mutex), and exactly once.
	s.once.Do(func() { close(s.ch) })
}

// Subscribe attaches a live tap delivering every subsequent Emit to the
// returned subscriber's channel (buffer size buf; <=0 means
// DefaultSubscriberBuffer). Delivery is non-blocking: events that do not
// fit the buffer are dropped and counted per subscriber and on the
// tracer's fan-out total. A nil tracer returns nil (callers treat a nil
// subscriber as "tracing disabled").
func (t *Tracer) Subscribe(buf int) *Subscriber {
	if t == nil {
		return nil
	}
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	s := &Subscriber{ch: make(chan Event, buf), t: t}
	t.mu.Lock()
	t.subs = append(t.subs, s)
	t.mu.Unlock()
	return s
}

// unsubscribe removes s from the fan-out list.
func (t *Tracer) unsubscribe(s *Subscriber) {
	t.mu.Lock()
	for i, cur := range t.subs {
		if cur == s {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// Subscribers returns the number of attached live taps. Nil-safe.
func (t *Tracer) Subscribers() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}

// FanoutDropped returns the total number of events dropped across all
// subscribers (past and present) because their buffers were full.
// Nil-safe.
func (t *Tracer) FanoutDropped() int64 {
	if t == nil {
		return 0
	}
	return t.fanDropped.Load()
}

// CloseSubscribers detaches and closes every attached subscriber. Streams
// reading from their channels observe end-of-stream. Nil-safe.
func (t *Tracer) CloseSubscribers() {
	if t == nil {
		return
	}
	t.mu.Lock()
	subs := t.subs
	t.subs = nil
	t.mu.Unlock()
	for _, s := range subs {
		s.once.Do(func() { close(s.ch) })
	}
}

// fanout delivers e to every subscriber without blocking. Called by Emit
// with t.mu held, so delivery order matches emission order and no send
// races a Close.
func (t *Tracer) fanout(e Event) {
	for _, s := range t.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			t.fanDropped.Add(1)
		}
	}
}
