package telemetry

import "time"

// Timer attributes wall-clock time to a latency histogram. Obtain one with
// StartTimer and call Stop when the measured section ends:
//
//	t := telemetry.StartTimer(hist)
//	doWork()
//	t.Stop()
//
// When the histogram is nil (telemetry disabled) StartTimer returns an
// inert Timer without reading the clock, so the disabled path costs only
// the nil check.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer starts timing into h. A nil h yields a no-op timer.
func StartTimer(h *Histogram) Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed seconds into the histogram and returns the
// elapsed duration (0 for a no-op timer).
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}
