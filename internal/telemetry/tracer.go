package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultRingSize bounds the in-memory event buffer when TracerOptions
// leaves RingSize zero.
const DefaultRingSize = 4096

// TracerOptions configures NewTracer.
type TracerOptions struct {
	// RingSize caps the in-memory event buffer (0 = DefaultRingSize).
	// When the ring is full the oldest events are overwritten; Dropped
	// reports how many were lost.
	RingSize int
	// Sink, when non-nil, receives every event as one JSON object per line
	// (JSONL), unaffected by ring overwrites. Writes are buffered; call
	// Flush (or Close) to drain them.
	Sink io.Writer
}

// Tracer records structured events into a bounded ring and, optionally,
// streams them to a JSONL sink. A nil *Tracer is a valid no-op; a non-nil
// Tracer is safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	seq     int64
	ring    []Event
	next    int // ring insertion index
	full    bool
	dropped int64
	bw      *bufio.Writer
	err     error
	// subs are the live fan-out taps (see subscriber.go); fanDropped
	// counts events discarded across all taps because a buffer was full.
	subs       []*Subscriber
	fanDropped atomic.Int64
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	t := &Tracer{ring: make([]Event, 0, size)}
	if opts.Sink != nil {
		t.bw = bufio.NewWriter(opts.Sink)
	}
	return t
}

// Emit records e, assigning its sequence number. Nil-safe.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = t.seq
	t.seq++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % cap(t.ring)
		t.full = true
		t.dropped++
	}
	if t.bw != nil && t.err == nil {
		line, err := json.Marshal(e)
		if err == nil {
			_, err = t.bw.Write(append(line, '\n'))
		}
		t.err = err
	}
	if len(t.subs) > 0 {
		t.fanout(e)
	}
}

// Events returns the buffered events in emission order. Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Len returns the number of buffered events. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many events were overwritten in the ring (they were
// still written to the sink, if any). Nil-safe.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Err returns the first sink write error encountered so far, without
// flushing. Once a write fails the tracer stops writing to the sink (the
// ring keeps recording), so a non-nil Err means the sink holds a
// truncated stream. Nil-safe.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush drains buffered sink writes and returns the first write error
// encountered so far. Nil-safe.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
