package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Emit(NewEvent(1, EvArrival))
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 || tr.Flush() != nil {
		t.Fatal("nil tracer must be inert")
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must be inert")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge must be inert")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram must be inert")
	}
	StartTimer(nil).Stop() // must not panic or read the clock's result
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 7, 100} {
		h.Observe(v)
	}
	// Buckets: (-inf,1] (-1,2] (2,5] (5,+inf) with le semantics:
	// 0.5,1 -> b0; 1.5,2 -> b1; 3,5 -> b2; 7,100 -> overflow.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count: got %d, want 8", h.Count())
	}
	hs := NewRegistry().Histogram("h", []float64{1, 2, 5})
	_ = hs // creation path covered; detailed assertions below via snapshot

	reg := NewRegistry()
	rh := reg.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 3, 7} {
		rh.Observe(v)
	}
	snap := reg.Snapshot()
	got := snap.Histograms["lat"]
	if got.Count != 4 || got.Min != 0.5 || got.Max != 7 {
		t.Fatalf("snapshot stats: %+v", got)
	}
	if m := got.Mean(); math.Abs(m-3) > 1e-12 {
		t.Errorf("mean: got %v, want 3", m)
	}
	if s := got.Std(); math.Abs(s-2.85774) > 1e-4 {
		t.Errorf("std: got %v", s)
	}
	if q := got.Quantile(0); q != 0.5 {
		t.Errorf("q0: got %v", q)
	}
	if q := got.Quantile(1); q != 7 {
		t.Errorf("q1: got %v", q)
	}
	if q := got.Quantile(0.5); q < 0.5 || q > 3 {
		t.Errorf("median out of range: %v", q)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := newHistogram([]float64{5, 1, 2})
	h.Observe(1.5)
	if h.counts[1].Load() != 1 {
		t.Fatal("bounds must be sorted at construction")
	}
}

func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			h := reg.Histogram("hist", CountBuckets)
			g := reg.Gauge("gauge")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 10))
				g.Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*per {
		t.Fatalf("counter: got %d, want %d", got, workers*per)
	}
	snap := reg.Snapshot()
	if snap.Histograms["hist"].Count != workers*per {
		t.Fatalf("histogram count: %+v", snap.Histograms["hist"])
	}
	if snap.Gauges["gauge"].Max != per-1 {
		t.Fatalf("gauge max: %+v", snap.Gauges["gauge"])
	}
}

func TestTracerRingAndSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerOptions{RingSize: 4, Sink: &buf})
	for i := 0; i < 6; i++ {
		e := NewEvent(float64(i), EvArrival)
		e.Req = i
		tr.Emit(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("ring length: got %d, want 4", len(events))
	}
	// Oldest two overwritten; survivors are 2..5 in order with seq intact.
	for i, e := range events {
		if e.Req != i+2 || e.Seq != int64(i+2) {
			t.Fatalf("event %d: %+v", i, e)
		}
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped: got %d, want 2", tr.Dropped())
	}
	// The sink saw all six lines, each valid JSON.
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 6 {
		t.Fatalf("sink lines: got %d, want 6", len(lines))
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("unmarshal %q: %v", line, err)
		}
		if e.Type != EvArrival || e.Task != -1 || e.Res != -1 {
			t.Fatalf("decoded event: %+v", e)
		}
	}
}

func TestMerge(t *testing.T) {
	mk := func(n int64, obs ...float64) *Snapshot {
		reg := NewRegistry()
		reg.Counter("c").Add(n)
		h := reg.Histogram("h", []float64{1, 10})
		for _, v := range obs {
			h.Observe(v)
		}
		reg.Gauge("g").Set(float64(n))
		return reg.Snapshot()
	}
	m := Merge(mk(2, 0.5, 5), nil, mk(3, 20))
	if m.Counters["c"] != 5 {
		t.Fatalf("counters: %+v", m.Counters)
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Min != 0.5 || h.Max != 20 {
		t.Fatalf("merged histogram: %+v", h)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("merged buckets: %+v", h.Counts)
	}
	if m.Gauges["g"].Value != 3 || m.Gauges["g"].Max != 3 {
		t.Fatalf("merged gauge: %+v", m.Gauges["g"])
	}
	// Merging must not alias the inputs.
	src := mk(1, 2)
	out := Merge(src)
	out.Histograms["h"].Counts[0] = 99
	if src.Histograms["h"].Counts[0] == 99 {
		t.Fatal("merge aliases input buckets")
	}
}

func TestTimer(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sec", LatencyBuckets)
	tm := StartTimer(h)
	if d := tm.Stop(); d <= 0 {
		t.Fatal("timer must measure positive elapsed time")
	}
	if h.Count() != 1 {
		t.Fatal("timer must observe into the histogram")
	}
}
