package telemetry

import "testing"

// TestReasonVocabularyKnown checks membership semantics: every vocabulary
// entry is known for its own type, the empty reason is always known, and
// foreign strings (or a known reason on the wrong type) are not.
func TestReasonVocabularyKnown(t *testing.T) {
	for typ, reasons := range ReasonVocabulary() {
		for _, reason := range reasons {
			if !KnownReason(typ, reason) {
				t.Errorf("KnownReason(%s, %s) = false", typ, reason)
			}
		}
	}
	for _, typ := range KnownEventTypes() {
		if !KnownReason(typ, "") {
			t.Errorf("empty reason unknown for %s", typ)
		}
	}
	if KnownReason(EvAdmit, "because") {
		t.Error("free-text reason accepted on admit")
	}
	if KnownReason(EvAdmit, ReasonBudget) {
		t.Error("fallback reason accepted on admit")
	}
	if KnownReason(EvArrival, ReasonPlain) {
		t.Error("reason accepted on a type with no vocabulary")
	}
}

// TestReasonVocabularyTypesAreKnown pins the vocabulary to the schema:
// every type with a reason set must be a known event type.
func TestReasonVocabularyTypesAreKnown(t *testing.T) {
	known := make(map[EventType]bool)
	for _, typ := range KnownEventTypes() {
		known[typ] = true
	}
	for typ := range ReasonVocabulary() {
		if !known[typ] {
			t.Errorf("vocabulary names unknown event type %q", typ)
		}
	}
}
