package meta

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The Makefile's test gates (faultcheck, obscheck, explaincheck) select
// their tests with -run regexes. A renamed test silently hollows out a
// gate: `go test -run NoSuchTest` exits zero having run nothing. This
// meta-test keeps every gate honest by asserting each |-alternative of
// every quoted -run pattern still matches at least one Test/Benchmark
// function in the packages the gate lists.

// funcRe extracts top-level test and benchmark function names.
var funcRe = regexp.MustCompile(`(?m)^func (Test\w*|Benchmark\w*)\b`)

// testNames collects the Test/Benchmark function names declared in dir.
func testNames(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*_test.go"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range funcRe.FindAllStringSubmatch(string(src), -1) {
			names = append(names, m[1])
		}
	}
	return names
}

// joinContinuations folds backslash-continued Makefile lines into single
// logical lines so a -run pattern and its package list are seen together.
func joinContinuations(src string) []string {
	var out []string
	cur := ""
	for _, l := range strings.Split(src, "\n") {
		if strings.HasSuffix(l, "\\") {
			cur += strings.TrimSuffix(l, "\\") + " "
			continue
		}
		out = append(out, cur+l)
		cur = ""
	}
	return out
}

// TestGateRegexesMatchTests parses every quoted `-run '...'` pattern in
// the Makefile and verifies each alternative selects a real test in the
// gate's package list.
func TestGateRegexesMatchTests(t *testing.T) {
	raw, err := os.ReadFile("../../Makefile")
	if err != nil {
		t.Fatal(err)
	}
	runRe := regexp.MustCompile(`-run '([^']+)'`)
	pkgRe := regexp.MustCompile(`\./[\w./-]+`)
	gates := 0
	for _, line := range joinContinuations(string(raw)) {
		m := runRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		gates++
		pkgs := pkgRe.FindAllString(line, -1)
		if len(pkgs) == 0 {
			t.Errorf("gate %q lists no packages", strings.TrimSpace(line))
			continue
		}
		var names []string
		for _, p := range pkgs {
			names = append(names, testNames(t, filepath.Join("../..", p))...)
		}
		if len(names) == 0 {
			t.Errorf("gate packages %v declare no tests at all", pkgs)
			continue
		}
		for _, alt := range strings.Split(m[1], "|") {
			re, err := regexp.Compile(alt)
			if err != nil {
				t.Errorf("gate regex term %q does not compile: %v", alt, err)
				continue
			}
			matched := false
			for _, n := range names {
				if re.MatchString(n) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("gate regex term %q matches no Test/Benchmark function in %v (renamed test? dead gate?)", alt, pkgs)
			}
		}
	}
	// faultcheck, obscheck, and explaincheck each carry a quoted -run.
	if gates < 3 {
		t.Fatalf("found %d quoted -run gate(s) in the Makefile, want at least 3", gates)
	}
}
