// Package meta holds repository-level consistency tests: checks on the
// build and CI machinery itself — Makefile gate regexes, committed
// baselines — rather than on any runtime package. It exports no runtime
// code.
package meta
