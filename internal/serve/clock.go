package serve

import (
	"sync"
	"time"
)

// Clock maps between engine time (the float64 timeline every WCET,
// deadline and interarrival in this repo is expressed in) and the
// server's real schedule. The server never reads time.Now directly: all
// timing flows through the configured clock, which is what lets the
// differential test drive the identical code path deterministically.
type Clock interface {
	// Now returns the current engine time.
	Now() float64
	// Until returns the real duration to sleep before engine time t is
	// reached (non-positive when t has passed).
	Until(t float64) time.Duration
}

// WallClock is the production clock: engine time advances with wall time
// from the moment the clock is created, scaled by Speed. Speed 1 means
// one engine time unit per second; Speed 100 compresses a 500-unit trace
// into five real seconds — useful for demos, load tests and the
// race-enabled end-to-end suite, without touching any decision logic
// (the engine only ever sees engine time).
type WallClock struct {
	start time.Time
	speed float64
}

// NewWallClock builds a wall clock running at speed engine time units per
// real second (speed <= 0 means 1).
func NewWallClock(speed float64) *WallClock {
	if speed <= 0 {
		speed = 1
	}
	return &WallClock{start: time.Now(), speed: speed}
}

// Now returns the engine time elapsed since the clock was created.
func (c *WallClock) Now() float64 {
	return time.Since(c.start).Seconds() * c.speed
}

// Until returns the real duration until engine time t.
func (c *WallClock) Until(t float64) time.Duration {
	return time.Duration((t - c.Now()) / c.speed * float64(time.Second))
}

// ManualClock is a test clock: engine time moves only when the test sets
// it. A Server configured with a ManualClock runs in step mode — no
// dispatcher goroutine, and Shutdown drains in engine time via
// engine.Drain — so a request sequence replayed at exact trace arrival
// times is processed identically to a sim.Run of the same trace. This is
// the harness behind the sim/server differential test.
type ManualClock struct {
	mu  sync.Mutex
	now float64
}

// Now returns the manually set engine time.
func (c *ManualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set moves engine time to t; regressions are ignored (time is monotone).
func (c *ManualClock) Set(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Until reports no real wait: step-mode servers never sleep on the clock.
func (c *ManualClock) Until(float64) time.Duration { return 0 }
