package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"predrm/internal/trace"
)

// SubmitRequest is the POST /v1/requests body: one arriving adaptive
// request. The arrival time is the server's clock reading at intake —
// callers do not timestamp their own requests.
type SubmitRequest struct {
	// Type indexes the configured task set.
	Type int `json:"type"`
	// Deadline is the relative deadline in engine time units.
	Deadline float64 `json:"deadline"`
}

// DecisionRecord is the admission decision for one request, returned
// synchronously from POST /v1/requests and re-readable at
// GET /v1/decisions/{id}.
type DecisionRecord struct {
	// ID is the dense request id (the engine's request index).
	ID int `json:"id"`
	// Type echoes the submitted task type.
	Type int `json:"type"`
	// Arrival is the engine time the request was taken in at.
	Arrival float64 `json:"arrival"`
	// Deadline echoes the submitted relative deadline.
	Deadline float64 `json:"deadline"`
	// Time is the engine time the decision was taken at (arrival plus
	// decision overhead).
	Time float64 `json:"time"`
	// Accepted reports admission.
	Accepted bool `json:"accepted"`
	// Resource is the mapped resource id, or -1 (sched.Unmapped) on
	// rejection.
	Resource int `json:"resource"`
	// Reason is the enumerated decision reason (telemetry vocabulary).
	Reason string `json:"reason"`
	// Energy is the admitted decision's planned energy (0 on rejection).
	Energy float64 `json:"energy"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/requests: stamp the arrival from the clock,
// run one activation of the admission protocol, and return the decision.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var in SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if ts := s.cfg.Engine.TaskSet; in.Type < 0 || (ts != nil && in.Type >= ts.Len()) {
		writeError(w, http.StatusBadRequest, "unknown task type %d", in.Type)
		return
	}
	if in.Deadline <= 0 {
		writeError(w, http.StatusBadRequest, "deadline must be positive, got %g", in.Deadline)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if s.failure != nil {
		err := s.failure
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "engine failed: %v", err)
		return
	}
	// Engine time is monotone across decisions; a clock reading taken just
	// before a slow activation finished may trail the engine, so clamp.
	arr := s.clock.Now()
	if n := s.eng.Now(); n > arr {
		arr = n
	}
	id := s.eng.Requests()
	out, err := s.eng.Activate(id, trace.Request{Arrival: arr, Type: in.Type, Deadline: in.Deadline})
	if err != nil {
		s.failure = err
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "activation failed: %v", err)
		return
	}
	rec := DecisionRecord{
		ID:       id,
		Type:     in.Type,
		Arrival:  arr,
		Deadline: in.Deadline,
		Time:     out.Time,
		Accepted: out.Accepted,
		Resource: out.Resource,
		Reason:   out.Reason,
		Energy:   out.Energy,
	}
	s.decisions = append(s.decisions, rec)
	s.mu.Unlock()

	// The admitted job changed the standing plan; wake the dispatcher so
	// its timer tracks the new next event.
	s.kickDispatcher()
	writeJSON(w, http.StatusOK, rec)
}

// handleDecision is GET /v1/decisions/{id}.
func (s *Server) handleDecision(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad decision id %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.decisions) {
		writeError(w, http.StatusNotFound, "no decision %d (have %d)", id, len(s.decisions))
		return
	}
	writeJSON(w, http.StatusOK, s.decisions[id])
}

// Decisions returns a copy of every decision taken so far, in request-id
// order.
func (s *Server) Decisions() []DecisionRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DecisionRecord, len(s.decisions))
	copy(out, s.decisions)
	return out
}
