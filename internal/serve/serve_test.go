package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"predrm/internal/core"
	"predrm/internal/engine"
	"predrm/internal/obs"
	"predrm/internal/platform"
	"predrm/internal/rng"
	"predrm/internal/sim"
	"predrm/internal/task"
	"predrm/internal/telemetry"
	"predrm/internal/trace"
)

func testWorkload(t *testing.T, tight trace.Tightness, length int, meanIA float64, seed uint64) (*task.Set, *trace.Trace) {
	t.Helper()
	set, err := task.Generate(platform.Default(), task.DefaultGenConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultGenConfig(tight)
	cfg.Length = length
	cfg.InterarrivalMean = meanIA
	cfg.InterarrivalStd = meanIA / 3
	tr, err := trace.Generate(set, cfg, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return set, tr
}

// baseEngine is the zero-overhead configuration both drivers share in the
// differential test: with no decision overhead the engine never runs
// ahead of the next arrival, so the server's intake clamp
// (max(clock.Now(), eng.Now())) is a no-op and the (arrival, request)
// sequence — the only input admission depends on — is identical under
// both drivers.
func baseEngine(set *task.Set) engine.Config {
	return engine.Config{
		Platform: platform.Default(),
		TaskSet:  set,
		Solver:   &core.Heuristic{},
	}
}

func postRequest(t *testing.T, url string, typ int, deadline float64) (DecisionRecord, int) {
	t.Helper()
	body, _ := json.Marshal(SubmitRequest{Type: typ, Deadline: deadline})
	resp, err := http.Post(url+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var rec DecisionRecord
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatalf("decode decision: %v\n%s", err, b)
		}
	}
	return rec, resp.StatusCode
}

// TestServeDifferentialMatchesSim replays one generated trace through
// both drivers of the shared engine — sim.Run in virtual time and the
// HTTP server in step mode (ManualClock pinned to each arrival) — and
// requires byte-identical outcomes: the full Result JSON and the JSONL
// telemetry streams must match exactly, and every synchronous HTTP
// decision must agree with the simulator's record for the same request.
func TestServeDifferentialMatchesSim(t *testing.T) {
	set, tr := testWorkload(t, trace.VeryTight, 120, 5, 7)

	var simTrace bytes.Buffer
	simCfg := baseEngine(set)
	simCfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: &simTrace})
	simRes, err := sim.Run(simCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := simCfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	var srvTrace bytes.Buffer
	srvCfg := baseEngine(set)
	srvCfg.Tracer = telemetry.NewTracer(telemetry.TracerOptions{Sink: &srvTrace})
	clock := &ManualClock{}
	srv, err := New(Config{Engine: srvCfg, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for i, req := range tr.Requests {
		clock.Set(req.Arrival)
		rec, code := postRequest(t, srv.URL(), req.Type, req.Deadline)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if rec.ID != i || rec.Arrival != req.Arrival {
			t.Fatalf("request %d: got id %d arrival %v, want arrival %v", i, rec.ID, rec.Arrival, req.Arrival)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := srvCfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	srvRes := srv.Result()
	if srvRes == nil {
		t.Fatal("no result after shutdown")
	}

	simJSON, _ := json.Marshal(simRes)
	srvJSON, _ := json.Marshal(srvRes)
	if !bytes.Equal(simJSON, srvJSON) {
		t.Fatalf("results diverge:\nsim:   %s\nserve: %s", simJSON, srvJSON)
	}
	// wall_ns is the one real-time field in the stream (measured solver
	// latency); everything else — sequence, engine timestamps, decisions,
	// lifecycle order — must agree to the byte.
	wallNS := regexp.MustCompile(`"wall_ns":\d+`)
	simEvents := wallNS.ReplaceAll(simTrace.Bytes(), []byte(`"wall_ns":0`))
	srvEvents := wallNS.ReplaceAll(srvTrace.Bytes(), []byte(`"wall_ns":0`))
	if !bytes.Equal(simEvents, srvEvents) {
		t.Fatalf("telemetry streams diverge (%d vs %d bytes)", len(simEvents), len(srvEvents))
	}
	for i, rec := range srv.Decisions() {
		j := simRes.Jobs[i]
		if rec.Accepted != j.Accepted || rec.Arrival != j.Arrival {
			t.Fatalf("decision %d diverges from sim record: %+v vs %+v", i, rec, j)
		}
	}
	if simRes.Requests != len(tr.Requests) || simRes.Accepted == 0 {
		t.Fatalf("degenerate differential run: %+v", simRes)
	}
}

// TestServeWallClockDrain runs the server against a fast wall clock,
// submits a paced request stream over HTTP, and checks graceful
// shutdown: every in-flight activation drains, no accepted job misses
// its deadline, and the finalised result accounts for every submission.
func TestServeWallClockDrain(t *testing.T) {
	set, tr := testWorkload(t, trace.LessTight, 40, 8, 11)
	const speed = 400 // engine time units per real second

	srv, err := New(Config{Engine: baseEngine(set), Clock: NewWallClock(speed)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i, req := range tr.Requests {
		rec, code := postRequest(t, srv.URL(), req.Type, req.Deadline)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if rec.Accepted {
			accepted++
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("engine failure: %v", err)
	}
	res := srv.Result()
	if res == nil {
		t.Fatal("no result after shutdown")
	}
	if res.Requests != len(tr.Requests) || res.Accepted != accepted {
		t.Fatalf("result counts diverge from HTTP decisions: %+v (saw %d accepted)", res, accepted)
	}
	if res.DeadlineMisses > 0 {
		t.Fatalf("%d accepted jobs missed deadlines under the wall clock", res.DeadlineMisses)
	}
	for _, j := range res.Jobs {
		if j.Accepted && j.FinishTime == 0 {
			t.Fatalf("accepted job %d never finished: shutdown dropped in-flight work", j.ID)
		}
	}
}

// TestServeConcurrentSubmits hammers the intake from many goroutines to
// exercise the serialized-activation contract under the race detector:
// ids must come out dense and every decision re-readable.
func TestServeConcurrentSubmits(t *testing.T) {
	set, _ := testWorkload(t, trace.LessTight, 1, 100, 3)
	srv, err := New(Config{Engine: baseEngine(set), Clock: NewWallClock(1000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	ids := make(chan int, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec, code := postRequest(t, srv.URL(), 0, 50)
				if code == http.StatusOK {
					ids <- rec.ID
				}
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[int]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate decision id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d decisions, want %d", len(seen), workers*perWorker)
	}
	for id := range seen {
		var rec DecisionRecord
		resp, err := http.Get(fmt.Sprintf("%s/v1/decisions/%d", srv.URL(), id))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decision %d: status %d", id, resp.StatusCode)
		}
		if err := json.Unmarshal(b, &rec); err != nil || rec.ID != id {
			t.Fatalf("decision %d: %v\n%s", id, err, b)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeObsPlaneMounted checks the introspection plane rides on the
// same listener as the API and sees the server's decisions through the
// chained state probe.
func TestServeObsPlaneMounted(t *testing.T) {
	set, _ := testWorkload(t, trace.LessTight, 1, 100, 5)
	tracer := telemetry.NewTracer(telemetry.TracerOptions{})
	cfg := baseEngine(set)
	cfg.Tracer = tracer
	plane := obs.NewPlane(obs.Options{Tracer: tracer})
	srv, err := New(Config{Engine: cfg, Clock: NewWallClock(1000), Plane: plane})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, code := postRequest(t, srv.URL(), 0, 50); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	get := func(path string) string {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d\n%s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	if s := get("/healthz"); !strings.Contains(s, "ok") {
		t.Fatalf("healthz: %q", s)
	}
	if s := get("/statusz"); !strings.Contains(s, "\"requests\"") && !strings.Contains(s, "Requests") {
		t.Fatalf("statusz missing state: %q", s)
	}
	get("/metrics")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeAPIValidation covers the rejection paths: malformed bodies,
// out-of-range types, non-positive deadlines, unknown decision ids, and
// the 503 intake fence after shutdown begins.
func TestServeAPIValidation(t *testing.T) {
	set, _ := testWorkload(t, trace.LessTight, 1, 100, 9)
	srv, err := New(Config{Engine: baseEngine(set), Clock: NewWallClock(1000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	post := func(body string) int {
		resp, err := http.Post(srv.URL()+"/v1/requests", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", code)
	}
	if code := post(`{"type": 999, "deadline": 10}`); code != http.StatusBadRequest {
		t.Fatalf("unknown type: status %d", code)
	}
	if code := post(`{"type": 0, "deadline": 0}`); code != http.StatusBadRequest {
		t.Fatalf("zero deadline: status %d", code)
	}
	if code := post(`{"type": 0, "deadline": 10, "bogus": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", code)
	}
	resp, err := http.Get(srv.URL() + "/v1/decisions/0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing decision: status %d", resp.StatusCode)
	}
	handler := srv.Handler()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is gone; the handler itself must fence intake.
	req, _ := http.NewRequest(http.MethodPost, "/v1/requests", strings.NewReader(`{"type": 0, "deadline": 10}`))
	rw := &recordingWriter{header: http.Header{}}
	handler.ServeHTTP(rw, req)
	if rw.status != http.StatusServiceUnavailable {
		t.Fatalf("post after shutdown: status %d", rw.status)
	}
}

type recordingWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (w *recordingWriter) Header() http.Header { return w.header }
func (w *recordingWriter) WriteHeader(s int)   { w.status = s }
func (w *recordingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.buf.Write(b)
}
