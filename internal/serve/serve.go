// Package serve runs the admission protocol as a long-lived wall-clock
// service: the paper's RM activation loop (internal/engine) behind a
// streaming HTTP/JSON API instead of a recorded trace.
//
//	srv, _ := serve.New(serve.Config{Engine: engCfg, Plane: plane})
//	_ = srv.Listen(":8080")
//	...
//	_ = srv.Shutdown(ctx) // stop intake, drain in-flight jobs
//	res := srv.Result()
//
// Endpoints:
//
//	POST /v1/requests        submit one request ({"type": T, "deadline": D});
//	                         the admission decision is returned synchronously
//	GET  /v1/decisions/{id}  re-read a past decision by request id
//	(everything else)        the mounted obs.Plane: /metrics, /statusz,
//	                         /explainz, /trace/tail, /debug/pprof
//
// Arrival intake, the admission protocol, EDF dispatch and completion
// bookkeeping all live in the shared engine; this package contributes
// only the wall-clock driver around it. A dispatcher goroutine executes
// the engine's planned EDF schedule against real time: after every
// activation (and whenever the engine's NextWake time arrives) it pushes
// the clock reading into engine.AdvanceTo, so preemptions, reservations
// held for predicted tasks, and job completions happen at their exact
// engine times — the timer only controls when they are observed, never
// what they are.
//
// Concurrency: HTTP requests are served concurrently, but the engine —
// and with it the solver — admits one activation at a time under the
// server's mutex, honouring the documented Solver/BudgetedSolver
// contracts (solver instances are not safe for concurrent Solve; see
// core.BudgetedSolver). Cross-activation warm-start state
// (sched.WarmState inside exact.Optimal, the heuristic's probe cache)
// therefore carries forward exactly as it does under the simulator.
// Overload degrades gracefully by configuring a core.BudgetedSolver as
// Config.Engine.Solver: per-activation budgets bound decision latency
// and fall through to cheaper solvers, with reject-only as the always-
// sound floor.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"predrm/internal/engine"
	"predrm/internal/obs"
)

// minTick floors the dispatcher's timer so a wake time sitting exactly on
// the current clock reading cannot spin the loop.
const minTick = 200 * time.Microsecond

// Config assembles a server.
type Config struct {
	// Engine configures the shared activation engine (platform, task set,
	// solver, optional tracer/metrics/provenance). A StateProbe set here
	// is chained after the plane's.
	Engine engine.Config
	// Shard, when Shard.Shards > 1, runs the service on an engine.Sharded
	// scale-out engine instead of a bare Engine: arrivals are routed to
	// platform shards by load and type affinity (DESIGN.md §12). The
	// sharded engine's feature restrictions apply (no tracer, provenance,
	// predictor, critical tasks or overhead hook). Shards <= 1 keeps the
	// single-engine path.
	Shard engine.ShardConfig
	// Clock drives the server; nil means a WallClock at speed 1 started
	// when New is called. A *ManualClock switches the server to step mode:
	// no dispatcher goroutine runs and Shutdown drains in engine time,
	// making request replays deterministic (the differential test's mode).
	Clock Clock
	// Plane, when non-nil, is mounted for every non-/v1 path and fed by
	// the engine's StateProbe, giving the wall-clock server the same live
	// introspection surface the simulator has.
	Plane *obs.Plane
	// DrainPoll caps how long Shutdown sleeps between drain checks
	// (default 25ms of real time).
	DrainPoll time.Duration
}

// Server is a running wall-clock RM service. Create with New, expose with
// Listen (or mount Handler yourself), and always call Shutdown — it stops
// intake, drains in-flight work and finalises the Result.
type Server struct {
	cfg   Config
	clock Clock
	step  bool // ManualClock: no dispatcher, engine-time drain

	mu        sync.Mutex
	eng       engine.Driver
	decisions []DecisionRecord
	closed    bool
	failure   error // first engine invariant breakage; poisons intake
	result    *engine.Result
	shutErr   error

	kick     chan struct{}
	stopDisp chan struct{}
	dispDone chan struct{}

	mux  *http.ServeMux
	ln   net.Listener
	hsrv *http.Server
}

// New builds a server around cfg and, unless the clock is manual, starts
// its real-time dispatcher.
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		cfg.Clock = NewWallClock(1)
	}
	if cfg.DrainPoll <= 0 {
		cfg.DrainPoll = 25 * time.Millisecond
	}
	if cfg.Plane != nil {
		// The plane publishes every decision; a caller-supplied probe still
		// sees each sample afterwards.
		probe := cfg.Engine.StateProbe
		plane := cfg.Plane
		cfg.Engine.StateProbe = func(s engine.StateSample) {
			plane.Probe(s)
			if probe != nil {
				probe(s)
			}
		}
	}
	var eng engine.Driver
	var err error
	if cfg.Shard.Shards > 1 {
		eng, err = engine.NewSharded(cfg.Engine, cfg.Shard)
	} else {
		eng, err = engine.New(cfg.Engine)
	}
	if err != nil {
		return nil, err
	}
	_, manual := cfg.Clock.(*ManualClock)
	s := &Server{
		cfg:   cfg,
		clock: cfg.Clock,
		step:  manual,
		eng:   eng,
		kick:  make(chan struct{}, 1),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/requests", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/decisions/{id}", s.handleDecision)
	if cfg.Plane != nil {
		s.mux.Handle("/", cfg.Plane.Handler())
	}
	if !s.step {
		s.stopDisp = make(chan struct{})
		s.dispDone = make(chan struct{})
		go s.dispatch()
	}
	return s, nil
}

// Handler returns the server's HTTP handler (API plus mounted plane), for
// callers that manage their own listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr (":0" picks a free port) and serves in the
// background.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.mux}
	go func() { _ = s.hsrv.Serve(ln) }()
	return nil
}

// Addr returns the bound address (host:port); empty before Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL; empty before Listen.
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// kickDispatcher wakes the dispatcher after a plan change (non-blocking;
// a pending kick already covers it).
func (s *Server) kickDispatcher() {
	if s.step {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// dispatch is the real-time executor: it repeatedly pushes the current
// clock reading into the engine and sleeps until the engine's next
// self-induced state change (job completion, plan-segment or reservation
// boundary, critical release) — the wall-clock analogue of the
// simulator's event loop, including the preemption points of the planned
// EDF schedule.
func (s *Server) dispatch() {
	defer close(s.dispDone)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		if s.failure == nil {
			if err := s.eng.AdvanceTo(s.clock.Now()); err != nil {
				s.failure = err
			}
		}
		next, ok := s.eng.NextWake()
		s.mu.Unlock()
		d := time.Hour // idle: only a kick (new arrival) changes anything
		if ok {
			if d = s.clock.Until(next); d < minTick {
				d = minTick
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case <-timer.C:
		case <-s.kick:
		case <-s.stopDisp:
			return
		}
	}
}

// Shutdown stops intake, severs the introspection streams cleanly, waits
// for in-flight HTTP activations, drains the engine's remaining jobs and
// finalises the Result. The context bounds the whole sequence: on expiry
// the HTTP front end is closed forcefully and the drain reports how many
// in-flight jobs it abandoned. Idempotent — later calls return the first
// outcome.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		err := s.shutErr
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()

	// Tail streams first (they are the only endless handlers), then the
	// listener: Shutdown returns once every in-flight handler — admission
	// activations included — has finished, so no decision is cut off
	// mid-flight.
	if s.cfg.Plane != nil {
		s.cfg.Plane.Close()
	}
	var httpErr error
	if s.hsrv != nil {
		httpErr = s.hsrv.Shutdown(ctx)
		if httpErr != nil {
			_ = s.hsrv.Close()
		}
	}
	if s.dispDone != nil {
		close(s.stopDisp)
		<-s.dispDone
	}
	drainErr := s.drain(ctx)

	s.mu.Lock()
	s.result = s.eng.Finalize()
	s.shutErr = errors.Join(drainErr, httpErr)
	err := s.shutErr
	s.mu.Unlock()
	return err
}

// drain waits for the engine's in-flight jobs to run out. In step mode
// (manual clock) it completes them in engine time, exactly like the
// simulator's end-of-trace drain; under a wall clock it follows real time
// until the work is gone or the context expires.
func (s *Server) drain(ctx context.Context) error {
	if s.step {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.eng.Drain()
	}
	for {
		s.mu.Lock()
		err := s.eng.AdvanceTo(s.clock.Now())
		working := s.eng.HasAdaptiveWork()
		inFlight := s.eng.InFlight()
		next, ok := s.eng.NextWake()
		s.mu.Unlock()
		if err != nil {
			return err
		}
		if !working {
			return nil
		}
		if !ok {
			return fmt.Errorf("serve: drain stalled with %d job(s) in flight and no pending event", inFlight)
		}
		d := s.clock.Until(next)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		if d > s.cfg.DrainPoll {
			d = s.cfg.DrainPoll
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: shutdown deadline with %d in-flight job(s) undrained: %w", inFlight, ctx.Err())
		case <-time.After(d):
		}
	}
}

// Result returns the finalised run result; nil until Shutdown completes.
func (s *Server) Result() *engine.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result
}

// Err returns the first engine failure (an RM invariant breakage that
// poisoned intake), or nil.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}
