// Package milp solves mixed-integer linear programs by LP-based branch and
// bound over internal/lp. It supports minimization with a subset of
// variables restricted to integers (binaries are integers with an explicit
// x ≤ 1 bound constraint added by the caller or via AddBinaryBounds).
package milp

import (
	"errors"
	"fmt"
	"math"

	"predrm/internal/lp"
	"predrm/internal/telemetry"
)

// Problem is a MILP: an LP plus integrality marks.
type Problem struct {
	lp.Problem
	// Integer[j] restricts variable j to integral values. May be shorter
	// than NumVars (missing entries are continuous).
	Integer []bool
}

// AddBinaryBounds appends x_j ≤ 1 rows for every integer variable in js
// and marks them integral, making them binary (variables are ≥ 0 already).
func (p *Problem) AddBinaryBounds(js ...int) {
	if len(p.Integer) < p.NumVars {
		grown := make([]bool, p.NumVars)
		copy(grown, p.Integer)
		p.Integer = grown
	}
	for _, j := range js {
		p.Integer[j] = true
		coeffs := make([]float64, j+1)
		coeffs[j] = 1
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: coeffs, Sense: lp.LE, RHS: 1})
	}
}

// Options controls the search.
type Options struct {
	// MaxNodes bounds the number of branch-and-bound nodes (0 = default).
	MaxNodes int
	// IntTol is the integrality tolerance (0 = default 1e-6).
	IntTol float64
	// Metrics, when non-nil, records per-solve instruments: counters
	// milp.solves, milp.nodes (cumulative branch-and-bound nodes), and
	// milp.truncated.
	Metrics *telemetry.Registry
}

// DefaultMaxNodes bounds the search tree; the paper-formulation instances
// explored in this repository stay well under it.
const DefaultMaxNodes = 200000

// Status classifies a MILP solve.
type Status int

const (
	// Optimal: proven optimal integral solution.
	Optimal Status = iota
	// Infeasible: no integral solution exists.
	Infeasible
	// Unbounded: the LP relaxation is unbounded.
	Unbounded
	// Truncated: node budget exhausted; Best holds the incumbent if any.
	Truncated
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Truncated:
		return "truncated"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Nodes is the number of branch-and-bound nodes solved.
	Nodes int
	// HasIncumbent reports whether X/Objective are meaningful (always for
	// Optimal; possibly for Truncated).
	HasIncumbent bool
}

type bound struct {
	variable int
	leq      bool // true: x ≤ value, false: x ≥ value
	value    float64
}

// Solve minimizes the MILP by depth-first branch and bound, branching on
// the most fractional integer variable.
func Solve(p *Problem, opts Options) (Solution, error) {
	sol, err := solve(p, opts)
	if opts.Metrics != nil && err == nil {
		opts.Metrics.Counter("milp.solves").Inc()
		opts.Metrics.Counter("milp.nodes").Add(int64(sol.Nodes))
		if sol.Status == Truncated {
			opts.Metrics.Counter("milp.truncated").Inc()
		}
	}
	return sol, err
}

func solve(p *Problem, opts Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if len(p.Integer) > p.NumVars {
		return Solution{}, errors.New("milp: Integer longer than NumVars")
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	intTol := opts.IntTol
	if intTol <= 0 {
		intTol = 1e-6
	}

	sol := Solution{Status: Infeasible, Objective: math.Inf(1)}
	var stack [][]bound
	stack = append(stack, nil)

	for len(stack) > 0 {
		if sol.Nodes >= maxNodes {
			sol.Status = Truncated
			return sol, nil
		}
		sol.Nodes++
		bounds := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		sub := lp.Problem{
			NumVars:     p.NumVars,
			Objective:   p.Objective,
			Constraints: append(append([]lp.Constraint(nil), p.Constraints...), boundsToConstraints(bounds)...),
		}
		res, err := lp.Solve(&sub)
		if err != nil {
			return Solution{}, err
		}
		switch res.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the MILP is
			// unbounded or infeasible; report unbounded (callers here
			// always have bounded formulations).
			if len(bounds) == 0 {
				sol.Status = Unbounded
				return sol, nil
			}
			continue
		}
		if sol.HasIncumbent && res.Objective >= sol.Objective-1e-9 {
			continue // bound
		}
		// Find the most fractional integer variable.
		branch := -1
		worst := intTol
		for j := range p.Integer {
			if !p.Integer[j] {
				continue
			}
			f := math.Abs(res.X[j] - math.Round(res.X[j]))
			if f > worst {
				worst = f
				branch = j
			}
		}
		if branch == -1 {
			// Integral: new incumbent.
			x := append([]float64(nil), res.X...)
			for j := range p.Integer {
				if p.Integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			sol.X = x
			sol.Objective = res.Objective
			sol.HasIncumbent = true
			sol.Status = Optimal
			continue
		}
		v := res.X[branch]
		down := append(append([]bound(nil), bounds...), bound{branch, true, math.Floor(v)})
		up := append(append([]bound(nil), bounds...), bound{branch, false, math.Ceil(v)})
		// Depth-first; push the child closer to the relaxation first so it
		// is explored... last. Push the more promising (closer) child last
		// so it pops first.
		if v-math.Floor(v) < 0.5 {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
	}
	if sol.HasIncumbent {
		sol.Status = Optimal
	}
	return sol, nil
}

func boundsToConstraints(bs []bound) []lp.Constraint {
	out := make([]lp.Constraint, 0, len(bs))
	for _, b := range bs {
		coeffs := make([]float64, b.variable+1)
		coeffs[b.variable] = 1
		sense := lp.LE
		if !b.leq {
			sense = lp.GE
		}
		out = append(out, lp.Constraint{Coeffs: coeffs, Sense: sense, RHS: b.value})
	}
	return out
}
