package milp

import (
	"math"
	"strings"
	"testing"

	"predrm/internal/lp"
	"predrm/internal/rng"
)

func TestKnapsack(t *testing.T) {
	// max 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d ≤ 14, binaries.
	// Optimum: a=b=c=1 (weight 16 > 14? 5+7+4=16 no!) — recompute:
	// feasible best is a,b,d = 8+11+4=23 weight 15>14 no; b,c,d = 21 w=14 ✓.
	p := &Problem{
		Problem: lp.Problem{
			NumVars:   4,
			Objective: []float64{-8, -11, -6, -4},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{5, 7, 4, 3}, Sense: lp.LE, RHS: 14},
			},
		},
	}
	p.AddBinaryBounds(0, 1, 2, 3)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Objective-(-21)) > 1e-6 {
		t.Fatalf("objective %v, want -21", s.Objective)
	}
	want := []float64{0, 1, 1, 1}
	for j, v := range want {
		if math.Abs(s.X[j]-v) > 1e-6 {
			t.Fatalf("X = %v, want %v", s.X, want)
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x s.t. 2x ≥ 5, x integer → x = 3.
	p := &Problem{
		Problem: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2}, Sense: lp.GE, RHS: 5},
			},
		},
		Integer: []bool{true},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.X[0]-3) > 1e-6 {
		t.Fatalf("got %v X=%v", s.Status, s.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y − x, x binary, y continuous: y ≥ 1.5x, y ≤ 2.
	// x=1: min y = 1.5 → obj 0.5. x=0: obj y=0. Optimum 0 at x=0... make
	// x rewarding: min y − 2x → x=1, y=1.5, obj −0.5.
	p := &Problem{
		Problem: lp.Problem{
			NumVars:   2,
			Objective: []float64{-2, 1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{-1.5, 1}, Sense: lp.GE, RHS: 0},
				{Coeffs: []float64{0, 1}, Sense: lp.LE, RHS: 2},
			},
		},
	}
	p.AddBinaryBounds(0)
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-(-0.5)) > 1e-6 {
		t.Fatalf("got %v obj=%v", s.Status, s.Objective)
	}
	if math.Abs(s.X[0]-1) > 1e-6 || math.Abs(s.X[1]-1.5) > 1e-6 {
		t.Fatalf("X = %v", s.X)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// Binary x with 0.4 ≤ x ≤ 0.6: LP feasible, MILP infeasible.
	p := &Problem{
		Problem: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1}, Sense: lp.GE, RHS: 0.4},
				{Coeffs: []float64{1}, Sense: lp.LE, RHS: 0.6},
			},
		},
		Integer: []bool{true},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnboundedRoot(t *testing.T) {
	p := &Problem{
		Problem: lp.Problem{NumVars: 1, Objective: []float64{-1}},
		Integer: []bool{true},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestTruncation(t *testing.T) {
	p := &Problem{
		Problem: lp.Problem{
			NumVars:   3,
			Objective: []float64{-1, -1, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1.3, 1.7, 2.1}, Sense: lp.LE, RHS: 2.5},
			},
		},
	}
	p.AddBinaryBounds(0, 1, 2)
	s, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Truncated {
		t.Fatalf("status %v, want truncated", s.Status)
	}
}

func TestValidateErrors(t *testing.T) {
	p := &Problem{Problem: lp.Problem{NumVars: 0}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("accepted invalid LP")
	}
	p2 := &Problem{Problem: lp.Problem{NumVars: 1}, Integer: []bool{true, true}}
	if _, err := Solve(p2, Options{}); err == nil {
		t.Fatal("accepted Integer longer than NumVars")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", Truncated: "truncated",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if !strings.HasPrefix(Status(9).String(), "Status(") {
		t.Error("unknown status string")
	}
}

// bruteForceBinary enumerates all binary assignments for problems whose
// integer variables are all binary, fixing them and checking the remaining
// pure-LP feasibility.
func bruteForceBinary(p *Problem) (float64, bool) {
	var bins []int
	for j, isInt := range p.Integer {
		if isInt {
			bins = append(bins, j)
		}
	}
	best := math.Inf(1)
	found := false
	for mask := 0; mask < 1<<len(bins); mask++ {
		sub := lp.Problem{
			NumVars:     p.NumVars,
			Objective:   p.Objective,
			Constraints: append([]lp.Constraint(nil), p.Constraints...),
		}
		for bi, j := range bins {
			v := float64((mask >> bi) & 1)
			coeffs := make([]float64, j+1)
			coeffs[j] = 1
			sub.Constraints = append(sub.Constraints, lp.Constraint{Coeffs: coeffs, Sense: lp.EQ, RHS: v})
		}
		res, err := lp.Solve(&sub)
		if err != nil || res.Status != lp.Optimal {
			continue
		}
		if res.Objective < best {
			best = res.Objective
			found = true
		}
	}
	return best, found
}

func TestRandomisedAgainstEnumeration(t *testing.T) {
	r := rng.New(77)
	checked := 0
	for trial := 0; trial < 120; trial++ {
		nb := 2 + r.Intn(3) // binaries
		nc := r.Intn(2)     // continuous
		n := nb + nc
		p := &Problem{Problem: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
		for j := 0; j < n; j++ {
			p.Objective[j] = r.Uniform(-5, 5)
		}
		for i := 0; i < 1+r.Intn(3); i++ {
			c := lp.Constraint{Coeffs: make([]float64, n), Sense: lp.LE, RHS: r.Uniform(1, 6)}
			for j := range c.Coeffs {
				c.Coeffs[j] = r.Uniform(0, 3)
			}
			p.Constraints = append(p.Constraints, c)
		}
		// Bound continuous vars so nothing is unbounded.
		for j := nb; j < n; j++ {
			coeffs := make([]float64, j+1)
			coeffs[j] = 1
			p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: coeffs, Sense: lp.LE, RHS: 4})
		}
		binIdx := make([]int, nb)
		for j := 0; j < nb; j++ {
			binIdx[j] = j
		}
		p.AddBinaryBounds(binIdx...)

		s, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feasible := bruteForceBinary(p)
		if (s.Status == Optimal) != feasible {
			t.Fatalf("trial %d: milp %v, enumeration feasible=%v", trial, s.Status, feasible)
		}
		if s.Status != Optimal {
			continue
		}
		checked++
		if math.Abs(s.Objective-want) > 1e-5 {
			t.Fatalf("trial %d: milp obj %v, enumeration %v", trial, s.Objective, want)
		}
	}
	if checked < 40 {
		t.Fatalf("only %d optimal instances checked", checked)
	}
}
