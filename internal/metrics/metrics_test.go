package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"predrm/internal/telemetry"
)

func TestSummarise(t *testing.T) {
	s := Summarise([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d mean=%v", s.N, s.Mean)
	}
	// Sample std with n-1: sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummariseEmptyAndSingle(t *testing.T) {
	if s := Summarise(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty: %+v", s)
	}
	s := Summarise([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.CI95() != 0 {
		t.Fatalf("single: %+v", s)
	}
}

func TestCI95(t *testing.T) {
	s := Summarise([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	want := 1.96 * s.Std / math.Sqrt(10)
	if math.Abs(s.CI95()-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("accepted empty sample")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("accepted p<0")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("accepted p>100")
	}
	if v, _ := Percentile([]float64{7}, 50); v != 7 {
		t.Error("single-element percentile wrong")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	if _, err := Percentile(in, 50); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestWinRate(t *testing.T) {
	r, err := WinRate([]float64{1, 5, 3}, []float64{2, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("win rate %v", r)
	}
	if _, err := WinRate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := WinRate(nil, nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestPaired(t *testing.T) {
	s, err := Paired([]float64{3, 5, 7}, []float64{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || math.Abs(s.Mean-(2+0-3)/3.0) > 1e-12 {
		t.Fatalf("paired sample %+v", s)
	}
	if _, err := Paired([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := Paired(nil, nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestNormalizeBy(t *testing.T) {
	out := NormalizeBy([]float64{2, 4, 1})
	want := []float64{0.5, 1, 0.25}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("out = %v", out)
		}
	}
	// All-zero input unchanged.
	z := NormalizeBy([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero input mishandled")
	}
	// Input not mutated.
	in := []float64{2, 4}
	NormalizeBy(in)
	if in[0] != 2 {
		t.Fatal("NormalizeBy mutated input")
	}
}

func TestSummariseMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip degenerate fuzz input
			}
		}
		s := Summarise(xs)
		if s.N != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return true
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return math.Abs(s.Mean-sum/float64(len(xs))) < 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleIsZero(t *testing.T) {
	if !Summarise(nil).IsZero() {
		t.Fatal("empty input must yield a zero Sample")
	}
	if Summarise([]float64{0, 0, 0}).IsZero() {
		t.Fatal("an all-zeros sample is data, not a zero Sample")
	}
}

func TestFromHistogram(t *testing.T) {
	if !FromHistogram(telemetry.HistogramSnapshot{}).IsZero() {
		t.Fatal("empty histogram must yield a zero Sample")
	}
	reg := telemetry.NewRegistry()
	h := reg.Histogram("x", []float64{1, 10})
	obs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range obs {
		h.Observe(v)
	}
	got := FromHistogram(reg.Snapshot().Histograms["x"])
	want := Summarise(obs)
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-9 || math.Abs(got.Std-want.Std) > 1e-9 {
		t.Fatalf("moments: got %+v, want %+v", got, want)
	}
}
