// Package metrics aggregates per-trace simulation results into the
// statistics the paper reports: mean rejection percentages, normalized
// energies, paired win rates, and confidence intervals.
package metrics

import (
	"errors"
	"math"
	"sort"

	"predrm/internal/telemetry"
)

// Sample summarises a set of observations.
type Sample struct {
	N        int
	Mean     float64
	Std      float64 // sample standard deviation (n−1)
	Min, Max float64
}

// IsZero reports whether the sample holds no observations (N == 0) — the
// value Summarise returns for empty input. It distinguishes "no data" from
// a genuine sample whose observations are all zero (N > 0, zero stats).
func (s Sample) IsZero() bool { return s.N == 0 }

// Summarise computes a Sample over xs.
//
// Contract on empty input: Summarise returns the zero Sample rather than
// an error — use Sample.IsZero to detect it. This deliberately differs
// from Percentile, which must error on empty input because no percentile
// value exists, whereas a zero Sample is a safe additive identity for
// aggregation.
func Summarise(xs []float64) Sample {
	s := Sample{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Sample) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation.
//
// Contract on empty input: unlike Summarise — which returns a zero Sample
// detectable via Sample.IsZero — Percentile errors, because there is no
// meaningful percentile of nothing and a silent 0 would be
// indistinguishable from a real observation. It also errors on p outside
// [0,100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("metrics: empty sample")
	}
	if p < 0 || p > 100 {
		return 0, errors.New("metrics: percentile outside [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// WinRate returns the fraction of paired observations where a[i] <= b[i]
// (a "wins" when lower is better, e.g. rejection percentage). It errors on
// length mismatch or empty input.
func WinRate(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("metrics: paired samples differ in length")
	}
	if len(a) == 0 {
		return 0, errors.New("metrics: empty sample")
	}
	wins := 0
	for i := range a {
		if a[i] <= b[i] {
			wins++
		}
	}
	return float64(wins) / float64(len(a)), nil
}

// Paired summarises the per-index differences a[i] − b[i] of two paired
// samples (e.g. the same traces simulated with and without prediction).
// Paired differences cancel per-trace variance, exposing effects far
// smaller than either sample's spread.
func Paired(a, b []float64) (Sample, error) {
	if len(a) != len(b) {
		return Sample{}, errors.New("metrics: paired samples differ in length")
	}
	if len(a) == 0 {
		return Sample{}, errors.New("metrics: empty sample")
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return Summarise(d), nil
}

// FromHistogram converts a telemetry histogram snapshot into a Sample:
// count, mean, standard deviation (reconstructed from the tracked
// moments), and the exact observed min/max. An empty histogram yields the
// zero Sample (see Sample.IsZero). Unlike Summarise the input observations
// are not retained individually, so quantiles must come from
// telemetry.HistogramSnapshot.Quantile instead.
func FromHistogram(h telemetry.HistogramSnapshot) Sample {
	if h.Count == 0 {
		return Sample{}
	}
	return Sample{
		N:    int(h.Count),
		Mean: h.Mean(),
		Std:  h.Std(),
		Min:  h.Min,
		Max:  h.Max,
	}
}

// NormalizeBy divides each value by the maximum over xs, yielding values in
// [0, 1] with the largest equal to 1 — the presentation used for the
// paper's Fig 3 energy bars. A zero or negative maximum returns a copy
// unchanged.
func NormalizeBy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max <= 0 {
		return out
	}
	for i := range out {
		out[i] /= max
	}
	return out
}
