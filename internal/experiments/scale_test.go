package experiments

import "testing"

func TestScaleSweepSmall(t *testing.T) {
	cfg := smallConfig()
	r, err := ScaleSweep(cfg, []string{"8c1g", "16c2g"})
	if err != nil {
		t.Fatal(err)
	}
	// Two modes per platform spec.
	if len(r.Points) != 4 {
		t.Fatalf("want 4 points, got %d", len(r.Points))
	}
	if len(r.Table.Rows) != 4 {
		t.Fatalf("want 4 table rows, got %d", len(r.Table.Rows))
	}
	for _, p := range r.Points {
		if p.Rejection.Mean < 0 || p.Rejection.Mean > 100 {
			t.Fatalf("%s shards=%d: rejection %.2f out of range", p.Spec, p.Shards, p.Rejection.Mean)
		}
		if p.Energy.Mean <= 0 {
			t.Fatalf("%s shards=%d: no energy recorded", p.Spec, p.Shards)
		}
		if p.SolverMicros.Mean <= 0 {
			t.Fatalf("%s shards=%d: no solver latency recorded", p.Spec, p.Shards)
		}
	}
	// The reference mode is unsharded one-by-one; the scaled mode shards
	// the 16c2g platform.
	if r.Points[0].Shards != 1 || r.Points[0].BatchWindow != 0 {
		t.Fatalf("first point is not the one-by-one reference: %+v", r.Points[0])
	}
	if r.Points[3].Shards != 2 || r.Points[3].BatchWindow <= 0 {
		t.Fatalf("16c2g batched point not sharded: %+v", r.Points[3])
	}
	if _, err := ScaleSweep(cfg, nil); err == nil {
		t.Fatal("empty spec list accepted")
	}
	if _, err := ScaleSweep(cfg, []string{"bogus"}); err == nil {
		t.Fatal("bad spec accepted")
	}
}
