package experiments

import (
	"errors"
	"fmt"

	"predrm/internal/core"
	"predrm/internal/exact"
	"predrm/internal/platform"
	"predrm/internal/sched"
	"predrm/internal/task"
)

// MotivationalResult replays the paper's Sec 3 example (Table 1 / Fig 1)
// with the actual solvers, confirming each narrative step.
type MotivationalResult struct {
	// NoPredMapsGPU: at t=0 without prediction, τ1 goes to the GPU.
	NoPredMapsGPU bool
	// NoPredRejectsTau2: at t=1, τ2 cannot be admitted (scenario a).
	NoPredRejectsTau2 bool
	// PredMapsCPU1: with the prediction, τ1 goes to CPU1 and the predicted
	// τ2 to the GPU (scenario b).
	PredMapsCPU1 bool
	// PredEnergy is scenario (b)'s planned energy (paper: 8.8 J).
	PredEnergy float64
	// Table is the printable result.
	Table *Table
}

// Motivational runs the Sec 3 scenario through both engines.
func Motivational() (*MotivationalResult, error) {
	ts := task.Motivational()
	plat := platform.Motivational()
	solver := &exact.Optimal{}
	res := &MotivationalResult{}

	// Scenario (a), step 1: τ1 alone at t=0, no prediction.
	j1 := sched.NewJob(0, ts.Type(0), 0, 8)
	p0 := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j1}}
	d0, ok := core.Admit(solver, p0)
	if !ok {
		return nil, errors.New("experiments: motivational step 1 rejected τ1")
	}
	res.NoPredMapsGPU = d0.Mapping[0] == 2

	// Step 2: τ1 has run 1ms of 5 on the GPU; τ2 arrives at t=1.
	j1.Resource = 2
	j1.Started = true
	j1.ExecRes = 2
	j1.Frac = 1 - 1.0/5
	j2 := sched.NewJob(1, ts.Type(1), 1, 5)
	p1 := &sched.Problem{Platform: plat, Time: 1, Jobs: []*sched.Job{j1, j2}}
	_, admitted := core.Admit(solver, p1)
	res.NoPredRejectsTau2 = !admitted

	// Scenario (b): at t=0 with predicted τ2 (arrival 1, deadline 5).
	j1b := sched.NewJob(0, ts.Type(0), 0, 8)
	jp := sched.NewJob(1, ts.Type(1), 1, 5)
	jp.Predicted = true
	pb := &sched.Problem{Platform: plat, Time: 0, Jobs: []*sched.Job{j1b, jp}}
	db, ok := core.Admit(solver, pb)
	if !ok {
		return nil, errors.New("experiments: motivational scenario (b) rejected")
	}
	res.PredMapsCPU1 = db.Mapping[0] == 0 && db.Mapping[1] == 2
	res.PredEnergy = db.Energy

	// The heuristic must reach the same plan here.
	dh, ok := core.Admit(&core.Heuristic{}, pb)
	heurAgrees := ok && dh.Mapping[0] == db.Mapping[0] && dh.Mapping[1] == db.Mapping[1]

	t := &Table{
		Title:  "Sec 3 / Table 1: motivational example",
		Header: []string{"check", "result", "paper"},
	}
	bs := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	t.AddRow("no-pred RM maps tau1 to GPU at t=0", bs(res.NoPredMapsGPU), "yes")
	t.AddRow("no-pred RM rejects tau2 at t=1 (acceptance 1/2)", bs(res.NoPredRejectsTau2), "yes")
	t.AddRow("pred RM maps tau1 to CPU1, reserves GPU (acceptance 2/2)", bs(res.PredMapsCPU1), "yes")
	t.AddRow("scenario (b) planned energy", fmt.Sprintf("%.1f J", res.PredEnergy), "8.8 J")
	t.AddRow("heuristic agrees with MILP on scenario (b)", bs(heurAgrees), "-")
	res.Table = t
	return res, nil
}
