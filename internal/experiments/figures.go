package experiments

import (
	"fmt"

	"predrm/internal/core"
	"predrm/internal/metrics"
	"predrm/internal/predict"
	"predrm/internal/sched"
	"predrm/internal/static"
	"predrm/internal/task"
	"predrm/internal/trace"
)

// Sec52Result is the Sec 5.2 comparison: exact optimization versus the
// heuristic, prediction off, over VT+LT traces.
type Sec52Result struct {
	// RejExact/RejHeuristic summarise per-trace rejection percentages over
	// both groups pooled (the paper pools VT+LT: 24.5% vs 31%).
	RejExact, RejHeuristic metrics.Sample
	// ExactWinRate is the fraction of traces where the exact RM's
	// acceptance was at least the heuristic's (paper: 88%).
	ExactWinRate float64
	// Table is the printable result.
	Table *Table
}

// MILPvsHeuristic runs the Sec 5.2 experiment.
func MILPvsHeuristic(cfg Config) (*Sec52Result, error) {
	variants := []variant{
		{name: "MILP off", engine: engineExact},
		{name: "heur off", engine: engineHeuristic},
	}
	var rejE, rejH []float64
	for _, tight := range []trace.Tightness{trace.VeryTight, trace.LessTight} {
		g, err := runGrid(cfg, tight, variants)
		if err != nil {
			return nil, err
		}
		if n := g.misses(); n > 0 {
			return nil, fmt.Errorf("experiments: %d deadline misses (RM unsound)", n)
		}
		rejE = append(rejE, g.rejections(0)...)
		rejH = append(rejH, g.rejections(1)...)
	}
	win, err := metrics.WinRate(rejE, rejH)
	if err != nil {
		return nil, err
	}
	res := &Sec52Result{
		RejExact:     metrics.Summarise(rejE),
		RejHeuristic: metrics.Summarise(rejH),
		ExactWinRate: win,
	}
	t := &Table{
		Title:  fmt.Sprintf("Sec 5.2: MILP vs heuristic, prediction off (profile=%s, %d traces x %d reqs per group)", cfg.Profile.Name, cfg.Traces, cfg.TraceLen),
		Header: []string{"engine", "rejection %", "+-95% CI"},
		Notes: []string{
			"paper: MILP 24.5%, heuristic 31%, MILP better on 88% of traces",
			fmt.Sprintf("measured win rate (MILP <= heuristic): %.0f%%", 100*win),
		},
	}
	t.AddRow("MILP", f2(res.RejExact.Mean), f2(res.RejExact.CI95()))
	t.AddRow("heuristic", f2(res.RejHeuristic.Mean), f2(res.RejHeuristic.CI95()))
	res.Table = t
	return res, nil
}

// ImpactResult holds Fig 2 (rejection) and Fig 3 (normalized energy) for
// one tightness group: the {MILP, heuristic} x {prediction on, off} grid
// with an accurate predictor.
type ImpactResult struct {
	Group trace.Tightness
	// Labels orders the four configurations.
	Labels [4]string
	// Rejection summaries per configuration (Fig 2).
	Rejection [4]metrics.Sample
	// Energy summaries per configuration, and the normalized means
	// (largest = 1.0) as plotted in Fig 3.
	Energy           [4]metrics.Sample
	NormalizedEnergy [4]float64
	// DeltaExact/DeltaHeuristic summarise the per-trace paired rejection
	// differences (on − off); negative means prediction helped. Paired
	// differences cancel trace-to-trace variance, so these carry the
	// statistically meaningful version of the paper's "prediction reduces
	// rejection by X%" claims.
	DeltaExact, DeltaHeuristic metrics.Sample
	// RejectionTable and EnergyTable are the printable results.
	RejectionTable, EnergyTable *Table
}

// PredictionImpact runs the Fig 2 + Fig 3 grid for one group.
func PredictionImpact(cfg Config, tight trace.Tightness) (*ImpactResult, error) {
	variants := []variant{
		{name: "MILP on", engine: engineExact, predict: accurate()},
		{name: "MILP off", engine: engineExact},
		{name: "heuristic on", engine: engineHeuristic, predict: accurate()},
		{name: "heuristic off", engine: engineHeuristic},
	}
	g, err := runGrid(cfg, tight, variants)
	if err != nil {
		return nil, err
	}
	if n := g.misses(); n > 0 {
		return nil, fmt.Errorf("experiments: %d deadline misses (RM unsound)", n)
	}
	res := &ImpactResult{Group: tight}
	means := make([]float64, 4)
	for v := 0; v < 4; v++ {
		res.Labels[v] = variants[v].name
		res.Rejection[v] = metrics.Summarise(g.rejections(v))
		res.Energy[v] = metrics.Summarise(g.energies(v))
		means[v] = res.Energy[v].Mean
	}
	norm := metrics.NormalizeBy(means)
	copy(res.NormalizedEnergy[:], norm)
	var err2 error
	res.DeltaExact, err2 = metrics.Paired(g.rejections(0), g.rejections(1))
	if err2 != nil {
		return nil, err2
	}
	res.DeltaHeuristic, err2 = metrics.Paired(g.rejections(2), g.rejections(3))
	if err2 != nil {
		return nil, err2
	}

	fig2 := "2a"
	fig3 := "3b"
	if tight == trace.VeryTight {
		fig2, fig3 = "2b", "3a"
	}
	rt := &Table{
		Title:  fmt.Sprintf("Fig %s: average rejection %% (%s group, accurate prediction, profile=%s)", fig2, tight, cfg.Profile.Name),
		Header: []string{"config", "rejection %", "+-95% CI"},
	}
	et := &Table{
		Title:  fmt.Sprintf("Fig %s: average normalized energy (%s group, profile=%s)", fig3, tight, cfg.Profile.Name),
		Header: []string{"config", "normalized energy", "mean energy (J)"},
	}
	for v := 0; v < 4; v++ {
		rt.AddRow(res.Labels[v], f2(res.Rejection[v].Mean), f2(res.Rejection[v].CI95()))
		et.AddRow(res.Labels[v], f3(res.NormalizedEnergy[v]), f1(res.Energy[v].Mean))
	}
	rt.Notes = append(rt.Notes,
		fmt.Sprintf("paired on-off delta: MILP %+.2f (+-%.2f), heuristic %+.2f (+-%.2f) pp",
			res.DeltaExact.Mean, res.DeltaExact.CI95(),
			res.DeltaHeuristic.Mean, res.DeltaHeuristic.CI95()))
	switch tight {
	case trace.VeryTight:
		rt.Notes = append(rt.Notes, "paper (VT): prediction reduces rejection by 9.17% (MILP) and 10.2% (heuristic)")
	case trace.LessTight:
		rt.Notes = append(rt.Notes, "paper (LT): prediction reduces rejection by 1% (MILP) and 2.6% (heuristic)")
	}
	et.Notes = append(et.Notes, "paper: energy tracks acceptance; more admitted work means more energy")
	res.RejectionTable, res.EnergyTable = rt, et
	return res, nil
}

// SweepResult is a rejection-vs-x curve per engine plus the predictor-off
// reference levels (Fig 4a, 4b, 5).
type SweepResult struct {
	// X holds the sweep axis values (accuracy or overhead coefficient).
	X []float64
	// RejExact/RejHeuristic are the per-point rejection summaries.
	RejExact, RejHeuristic []metrics.Sample
	// DeltaExact/DeltaHeuristic are the paired per-point differences
	// against the predictor-off baseline (negative = prediction helped).
	DeltaExact, DeltaHeuristic []metrics.Sample
	// OffExact/OffHeuristic are the predictor-off baselines.
	OffExact, OffHeuristic metrics.Sample
	// Table is the printable result.
	Table *Table
}

func runSweep(cfg Config, title, xlabel string, xs []float64, mk func(x float64) (pred *predict.OracleConfig, overheadCoeff float64), notes []string) (*SweepResult, error) {
	variants := []variant{
		{name: "MILP off", engine: engineExact},
		{name: "heuristic off", engine: engineHeuristic},
	}
	for _, x := range xs {
		p, oc := mk(x)
		variants = append(variants,
			variant{name: fmt.Sprintf("MILP %.2f", x), engine: engineExact, predict: p, overheadCoeff: oc},
			variant{name: fmt.Sprintf("heur %.2f", x), engine: engineHeuristic, predict: p, overheadCoeff: oc},
		)
	}
	g, err := runGrid(cfg, trace.VeryTight, variants)
	if err != nil {
		return nil, err
	}
	if n := g.misses(); n > 0 {
		return nil, fmt.Errorf("experiments: %d deadline misses (RM unsound)", n)
	}
	res := &SweepResult{
		X:            xs,
		OffExact:     metrics.Summarise(g.rejections(0)),
		OffHeuristic: metrics.Summarise(g.rejections(1)),
	}
	t := &Table{
		Title:  title,
		Header: []string{xlabel, "MILP rej %", "heuristic rej %", "MILP d(off)", "heur d(off)"},
		Notes:  notes,
	}
	for i := range xs {
		e := metrics.Summarise(g.rejections(2 + 2*i))
		h := metrics.Summarise(g.rejections(3 + 2*i))
		de, err := metrics.Paired(g.rejections(2+2*i), g.rejections(0))
		if err != nil {
			return nil, err
		}
		dh, err := metrics.Paired(g.rejections(3+2*i), g.rejections(1))
		if err != nil {
			return nil, err
		}
		res.RejExact = append(res.RejExact, e)
		res.RejHeuristic = append(res.RejHeuristic, h)
		res.DeltaExact = append(res.DeltaExact, de)
		res.DeltaHeuristic = append(res.DeltaHeuristic, dh)
		t.AddRow(f2(xs[i]), f2(e.Mean), f2(h.Mean),
			fmt.Sprintf("%+.2f", de.Mean), fmt.Sprintf("%+.2f", dh.Mean))
	}
	t.AddRow("off", f2(res.OffExact.Mean), f2(res.OffHeuristic.Mean), "0.00", "0.00")
	res.Table = t
	return res, nil
}

// Fig4a sweeps task-type prediction accuracy (arrival time exact) on the
// VT group.
func Fig4a(cfg Config, accuracies []float64) (*SweepResult, error) {
	return runSweep(cfg,
		fmt.Sprintf("Fig 4a: rejection %% vs task-type accuracy (VT, profile=%s)", cfg.Profile.Name),
		"type accuracy",
		accuracies,
		func(x float64) (*predict.OracleConfig, float64) {
			return &predict.OracleConfig{TypeAccuracy: x, TimeError: 0}, 0
		},
		[]string{"paper: accuracy <= 0.25 offers no sensible benefit over predictor off"},
	)
}

// Fig4b sweeps arrival-time prediction accuracy (task type exact) on the
// VT group; accuracy a corresponds to a normalized RMSE of 1−a.
func Fig4b(cfg Config, accuracies []float64) (*SweepResult, error) {
	return runSweep(cfg,
		fmt.Sprintf("Fig 4b: rejection %% vs arrival-time accuracy (VT, profile=%s)", cfg.Profile.Name),
		"time accuracy",
		accuracies,
		func(x float64) (*predict.OracleConfig, float64) {
			return &predict.OracleConfig{TypeAccuracy: 1, TimeError: 1 - x}, 0
		},
		[]string{"accuracy a = 1 - normalized RMSE of predicted arrival times"},
	)
}

// Fig5 sweeps prediction overhead with perfect accuracy on the VT group.
// Coefficients are fractions of the mean interarrival time; the paper's
// x-axis is coefficient x 100.
func Fig5(cfg Config, coeffs []float64) (*SweepResult, error) {
	res, err := runSweep(cfg,
		fmt.Sprintf("Fig 5: rejection %% vs prediction overhead (VT, accurate prediction, profile=%s)", cfg.Profile.Name),
		"overhead coeff",
		coeffs,
		func(x float64) (*predict.OracleConfig, float64) {
			return &predict.OracleConfig{TypeAccuracy: 1, TimeError: 0}, x
		},
		[]string{"paper: overhead beyond 2-4% of the mean interarrival makes prediction worse than none"},
	)
	return res, err
}

// AblationResult compares two engine or policy variants head to head.
type AblationResult struct {
	Labels   [2]string
	Rej      [2]metrics.Sample
	Energy   [2]metrics.Sample
	WinRateA float64 // fraction of traces where variant A rejected no more than B
	Table    *Table
}

func runAblation(cfg Config, title string, a, b variant, notes []string) (*AblationResult, error) {
	g, err := runGrid(cfg, trace.VeryTight, []variant{a, b})
	if err != nil {
		return nil, err
	}
	if n := g.misses(); n > 0 {
		return nil, fmt.Errorf("experiments: %d deadline misses (RM unsound)", n)
	}
	win, err := metrics.WinRate(g.rejections(0), g.rejections(1))
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Labels:   [2]string{a.name, b.name},
		Rej:      [2]metrics.Sample{metrics.Summarise(g.rejections(0)), metrics.Summarise(g.rejections(1))},
		Energy:   [2]metrics.Sample{metrics.Summarise(g.energies(0)), metrics.Summarise(g.energies(1))},
		WinRateA: win,
	}
	t := &Table{
		Title:  title,
		Header: []string{"variant", "rejection %", "mean energy (J)"},
		Notes:  append(notes, fmt.Sprintf("win rate (%s <= %s): %.0f%%", a.name, b.name, 100*win)),
	}
	t.AddRow(a.name, f2(res.Rej[0].Mean), f1(res.Energy[0].Mean))
	t.AddRow(b.name, f2(res.Rej[1].Mean), f1(res.Energy[1].Mean))
	res.Table = t
	return res, nil
}

// AblationRegret compares Algorithm 1's max-regret task ordering against
// plain greedy order (ablation A1, VT group, prediction on).
func AblationRegret(cfg Config) (*AblationResult, error) {
	return runAblation(cfg,
		fmt.Sprintf("Ablation A1: max-regret vs greedy ordering (VT, accurate prediction, profile=%s)", cfg.Profile.Name),
		variant{name: "max-regret", engine: engineHeuristic, predict: accurate()},
		variant{name: "greedy", engine: engineGreedy, predict: accurate()},
		[]string{"Algorithm 1's max-regret selection should reject no more than greedy order"},
	)
}

// AblationMigration compares migration-charging policies (ablation A2).
func AblationMigration(cfg Config) (*AblationResult, error) {
	return runAblation(cfg,
		fmt.Sprintf("Ablation A2: migration charging policy (VT, heuristic, profile=%s)", cfg.Profile.Name),
		variant{name: "charge-started-only", engine: engineHeuristic, predict: accurate()},
		variant{name: "charge-always", engine: engineHeuristic, predict: accurate(), policy: sched.ChargeAlways},
		[]string{"charging unstarted remaps inflates cpm and should not lower rejection"},
	)
}

// LookaheadResult sweeps the forecast horizon (extension experiment X1).
type LookaheadResult struct {
	Horizons []int
	Rej      []metrics.Sample
	// Delta are paired per-trace differences against horizon 0 (off).
	Delta []metrics.Sample
	Table *Table
}

// LookaheadSweep measures rejection versus forecast horizon on the VT
// group with a perfect oracle and the heuristic engine — this library's
// extension of the paper's single-step prediction.
func LookaheadSweep(cfg Config, horizons []int) (*LookaheadResult, error) {
	variants := []variant{{name: "off", engine: engineHeuristic}}
	for _, h := range horizons {
		if h <= 0 {
			continue
		}
		variants = append(variants, variant{
			name:      fmt.Sprintf("k=%d", h),
			engine:    engineHeuristic,
			predict:   accurate(),
			lookahead: h,
		})
	}
	g, err := runGrid(cfg, trace.VeryTight, variants)
	if err != nil {
		return nil, err
	}
	if n := g.misses(); n > 0 {
		return nil, fmt.Errorf("experiments: %d deadline misses (RM unsound)", n)
	}
	res := &LookaheadResult{}
	t := &Table{
		Title:  fmt.Sprintf("Extension X1: rejection %% vs forecast horizon (VT, heuristic, perfect oracle, profile=%s)", cfg.Profile.Name),
		Header: []string{"horizon", "rejection %", "paired d(off)"},
		Notes:  []string{"k=1 is the paper's predictor; larger horizons are this library's extension"},
	}
	off := g.rejections(0)
	res.Horizons = append(res.Horizons, 0)
	res.Rej = append(res.Rej, metrics.Summarise(off))
	res.Delta = append(res.Delta, metrics.Sample{N: len(off)})
	t.AddRow("off", f2(res.Rej[0].Mean), "+0.00")
	for v := 1; v < len(variants); v++ {
		s := metrics.Summarise(g.rejections(v))
		d, err := metrics.Paired(g.rejections(v), off)
		if err != nil {
			return nil, err
		}
		res.Horizons = append(res.Horizons, variants[v].lookahead)
		res.Rej = append(res.Rej, s)
		res.Delta = append(res.Delta, d)
		t.AddRow(variants[v].name, f2(s.Mean), fmt.Sprintf("%+.2f", d.Mean))
	}
	res.Table = t
	return res, nil
}

// OnlineResult compares online predictors against the oracle and no
// prediction (ablation A3).
type OnlineResult struct {
	Labels []string
	Rej    []metrics.Sample
	Table  *Table
}

// OnlinePredictors runs ablation A3 on the VT group with the heuristic.
func OnlinePredictors(cfg Config) (*OnlineResult, error) {
	variants := []variant{
		{name: "off", engine: engineHeuristic},
		{name: "oracle", engine: engineHeuristic, predict: accurate()},
		{name: "markov+ewma", engine: engineHeuristic, online: func(n int) predict.Predictor {
			m, err := predict.NewMarkov(n, predict.NewEWMA(0.2), 0)
			if err != nil {
				panic(err) // n > 0 by construction
			}
			return m
		}},
		{name: "markov+two-phase", engine: engineHeuristic, online: func(n int) predict.Predictor {
			m, err := predict.NewMarkov(n, predict.NewTwoPhase(0.3), 0)
			if err != nil {
				panic(err)
			}
			return m
		}},
	}
	g, err := runGrid(cfg, trace.VeryTight, variants)
	if err != nil {
		return nil, err
	}
	if n := g.misses(); n > 0 {
		return nil, fmt.Errorf("experiments: %d deadline misses (RM unsound)", n)
	}
	res := &OnlineResult{}
	t := &Table{
		Title:  fmt.Sprintf("Ablation A3: online predictors (VT, heuristic, profile=%s)", cfg.Profile.Name),
		Header: []string{"predictor", "rejection %", "+-95% CI"},
		Notes:  []string{"online predictors learn on a uniform-random type stream: expect them between off and oracle"},
	}
	for v := range variants {
		s := metrics.Summarise(g.rejections(v))
		res.Labels = append(res.Labels, variants[v].name)
		res.Rej = append(res.Rej, s)
		t.AddRow(variants[v].name, f2(s.Mean), f2(s.CI95()))
	}
	res.Table = t
	return res, nil
}

// BaselineStatic compares the dynamic RMs against a quasi-static baseline
// that applies design-time per-type mappings and never remaps admitted
// tasks (the related-work family the paper positions itself against).
func BaselineStatic(cfg Config) (*OnlineResult, error) {
	variants := []variant{
		{name: "quasi-static", engine: engineHeuristic, solver: func(set *task.Set) core.Solver {
			return static.New(static.BuildTable(set))
		}},
		{name: "heuristic", engine: engineHeuristic},
		{name: "MILP", engine: engineExact},
	}
	g, err := runGrid(cfg, trace.VeryTight, variants)
	if err != nil {
		return nil, err
	}
	if n := g.misses(); n > 0 {
		return nil, fmt.Errorf("experiments: %d deadline misses (RM unsound)", n)
	}
	res := &OnlineResult{}
	t := &Table{
		Title:  fmt.Sprintf("Baseline B1: quasi-static vs dynamic RMs (VT, prediction off, profile=%s)", cfg.Profile.Name),
		Header: []string{"resource manager", "rejection %", "mean energy (J)"},
		Notes: []string{
			"quasi-static: design-time per-type placement, no remapping (related work [11][15][6])",
		},
	}
	for v := range variants {
		s := metrics.Summarise(g.rejections(v))
		res.Labels = append(res.Labels, variants[v].name)
		res.Rej = append(res.Rej, s)
		t.AddRow(variants[v].name, f2(s.Mean), f1(metrics.Summarise(g.energies(v)).Mean))
	}
	res.Table = t
	return res, nil
}

// LoadSurfaceResult maps offered load to rejection for both engines and
// groups — the calibration surface relating this reproduction's load knob
// to the paper's reported operating points.
type LoadSurfaceResult struct {
	// Interarrivals is the sweep axis (mean gap between requests).
	Interarrivals []float64
	// RejExactVT etc. hold the per-point rejection summaries.
	RejExactVT, RejHeurVT, RejExactLT, RejHeurLT []metrics.Sample
	// Table is the printable result.
	Table *Table
}

// LoadSurface sweeps the mean interarrival time, keeping every other
// profile parameter fixed, and reports predictor-off rejection levels for
// both engines and both deadline groups. This is the experiment behind
// the calibrated profile (EXPERIMENTS.md).
func LoadSurface(cfg Config, interarrivals []float64) (*LoadSurfaceResult, error) {
	res := &LoadSurfaceResult{Interarrivals: interarrivals}
	t := &Table{
		Title:  fmt.Sprintf("Load surface: rejection %% vs mean interarrival (prediction off, %d traces x %d reqs)", cfg.Traces, cfg.TraceLen),
		Header: []string{"interarrival", "MILP VT", "heur VT", "MILP LT", "heur LT"},
		Notes: []string{
			"paper's literal load is 1.2; the calibrated profile uses 2.2 (see EXPERIMENTS.md)",
		},
	}
	variants := []variant{
		{name: "MILP off", engine: engineExact},
		{name: "heur off", engine: engineHeuristic},
	}
	for _, ia := range interarrivals {
		sub := cfg
		sub.Profile.InterarrivalMean = ia
		sub.Profile.InterarrivalStd = ia / 3
		var cells [4]metrics.Sample
		for gi, tight := range []trace.Tightness{trace.VeryTight, trace.LessTight} {
			g, err := runGrid(sub, tight, variants)
			if err != nil {
				return nil, err
			}
			if n := g.misses(); n > 0 {
				return nil, fmt.Errorf("experiments: %d deadline misses (RM unsound)", n)
			}
			cells[2*gi] = metrics.Summarise(g.rejections(0))
			cells[2*gi+1] = metrics.Summarise(g.rejections(1))
		}
		res.RejExactVT = append(res.RejExactVT, cells[0])
		res.RejHeurVT = append(res.RejHeurVT, cells[1])
		res.RejExactLT = append(res.RejExactLT, cells[2])
		res.RejHeurLT = append(res.RejHeurLT, cells[3])
		t.AddRow(f2(ia), f2(cells[0].Mean), f2(cells[1].Mean), f2(cells[2].Mean), f2(cells[3].Mean))
	}
	res.Table = t
	return res, nil
}
